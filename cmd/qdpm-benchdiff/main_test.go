package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCTReplicaTableCell 	     100	    675788 ns/op	    1568 B/op	      29 allocs/op
BenchmarkFleet1kCT 	       3	  37021045 ns/op	     27012 devices/s	    335995 events/op	       110.2 ns/event	 1902856 B/op	   20019 allocs/op
PASS
pkg: repro/internal/eventq
BenchmarkScheduleAndFire-4   	85702724	        12.74 ns/op	       0 B/op	       0 allocs/op
BenchmarkNotInBaseline-4     	     100	       100.0 ns/op	       0 B/op	       0 allocs/op
ok  	repro/internal/eventq	1.2s
`

const sampleBaseline = `{
  "benchmarks": {
    "BenchmarkCTReplicaTableCell": {"ns_per_op": 675788, "bytes_per_op": 1568, "allocs_per_op": 29},
    "BenchmarkFleet1kCT": {"ns_per_op": 37021045, "bytes_per_op": 1902856, "allocs_per_op": 20019},
    "eventq/BenchmarkScheduleAndFire": {"ns_per_op": 12.74, "bytes_per_op": 0, "allocs_per_op": 0},
    "BenchmarkNeverRan": {"ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0}
  }
}`

// writeBaseline drops a baseline file into a temp dir.
func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestParseBenchKeysAndFields: names are keyed by package suffix (root
// package unprefixed), the -N worker suffix is stripped, and custom
// metrics do not confuse the ns/B/allocs extraction.
func TestParseBenchKeysAndFields(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleBench), "repro")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(res), res)
	}
	byKey := map[string]result{}
	for _, r := range res {
		byKey[r.Key] = r
	}
	cell := byKey["BenchmarkCTReplicaTableCell"]
	if cell.NsPerOp != 675788 || cell.AllocsPerOp != 29 {
		t.Fatalf("root benchmark misparsed: %+v", cell)
	}
	fleet := byKey["BenchmarkFleet1kCT"]
	if fleet.NsPerOp != 37021045 || fleet.AllocsPerOp != 20019 {
		t.Fatalf("custom-metric benchmark misparsed: %+v", fleet)
	}
	sched := byKey["eventq/BenchmarkScheduleAndFire"]
	if sched.NsPerOp != 12.74 || sched.AllocsPerOp != 0 {
		t.Fatalf("pkg-prefixed benchmark misparsed: %+v", sched)
	}
}

// TestGatePasses: a run matching its baseline exits clean and reports
// missing benchmarks without failing them.
func TestGatePasses(t *testing.T) {
	base := writeBaseline(t, sampleBaseline)
	var out bytes.Buffer
	err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", base})
	if err != nil {
		t.Fatalf("gate failed on matching run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "not in baseline") {
		t.Fatalf("missing-benchmark report absent:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "3 compared, 1 missing") {
		t.Fatalf("summary line wrong:\n%s", out.String())
	}
}

// TestGateFailsOnNsRegression: ns/op beyond tolerance fails the gate.
func TestGateFailsOnNsRegression(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks": {
		"eventq/BenchmarkScheduleAndFire": {"ns_per_op": 9.0, "bytes_per_op": 0, "allocs_per_op": 0}}}`)
	var out bytes.Buffer
	err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", base, "-ns-tol", "0.25"})
	if err == nil {
		t.Fatalf("12.74 ns/op vs 9.0 baseline passed a 25%% gate:\n%s", out.String())
	}
	// The same regression passes a looser gate.
	out.Reset()
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", base, "-ns-tol", "0.60"}); err != nil {
		t.Fatalf("60%% gate rejected a 42%% regression: %v", err)
	}
}

// TestGateFailsOnAllocRegression: any allocation on a zero-alloc
// baseline fails regardless of tolerance; non-zero baselines use the
// fractional tolerance.
func TestGateFailsOnAllocRegression(t *testing.T) {
	bench := `pkg: repro/internal/eventq
BenchmarkScheduleAndFire-4  	 1000000	        12.00 ns/op	       8 B/op	       1 allocs/op
`
	base := writeBaseline(t, `{"benchmarks": {
		"eventq/BenchmarkScheduleAndFire": {"ns_per_op": 12.74, "bytes_per_op": 0, "allocs_per_op": 0}}}`)
	var out bytes.Buffer
	err := run(strings.NewReader(bench), &out, []string{"-baseline", base, "-alloc-tol", "1000"})
	if err == nil {
		t.Fatalf("allocation on a 0-alloc path passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "zero-allocation baseline") {
		t.Fatalf("failure reason wrong:\n%s", out.String())
	}

	// Non-zero baseline: within tolerance passes, beyond fails.
	bench2 := `pkg: repro
BenchmarkCTReplicaTableCell 	     100	    675788 ns/op	    1568 B/op	      31 allocs/op
`
	base2 := writeBaseline(t, `{"benchmarks": {
		"BenchmarkCTReplicaTableCell": {"ns_per_op": 675788, "bytes_per_op": 1568, "allocs_per_op": 29}}}`)
	out.Reset()
	if err := run(strings.NewReader(bench2), &out, []string{"-baseline", base2}); err != nil {
		t.Fatalf("31 vs 29 allocs failed a 10%% gate: %v", err)
	}
	out.Reset()
	if err := run(strings.NewReader(bench2), &out, []string{"-baseline", base2, "-alloc-tol", "0.01"}); err == nil {
		t.Fatalf("31 vs 29 allocs passed a 1%% gate:\n%s", out.String())
	}
}

// TestGateStrictAndErrors: strict mode fails missing benchmarks and
// baseline entries that did not run; bad inputs error out.
func TestGateStrictAndErrors(t *testing.T) {
	base := writeBaseline(t, sampleBaseline)
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", base, "-strict"}); err == nil {
		t.Fatal("strict mode passed with a missing benchmark")
	}

	// Deletion hole: every run-side benchmark is in the baseline, but a
	// pinned baseline entry produced no result — strict must fail, and
	// non-strict must pass (partial invocations stay supported).
	bench := `pkg: repro/internal/eventq
BenchmarkScheduleAndFire-4   	85702724	        12.74 ns/op	       0 B/op	       0 allocs/op
`
	delBase := writeBaseline(t, `{"benchmarks": {
		"eventq/BenchmarkScheduleAndFire": {"ns_per_op": 12.74, "bytes_per_op": 0, "allocs_per_op": 0},
		"eventq/BenchmarkDeleted": {"ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0}}}`)
	out.Reset()
	if err := run(strings.NewReader(bench), &out, []string{"-baseline", delBase, "-strict"}); err == nil {
		t.Fatalf("strict mode passed with a deleted pinned benchmark:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "GONE eventq/BenchmarkDeleted") {
		t.Fatalf("deleted benchmark not reported:\n%s", out.String())
	}
	out.Reset()
	if err := run(strings.NewReader(bench), &out, []string{"-baseline", delBase}); err != nil {
		t.Fatalf("non-strict mode failed a partial run: %v", err)
	}
	if err := run(strings.NewReader(sampleBench), &out, nil); err == nil {
		t.Fatal("missing -baseline accepted")
	}
	if err := run(strings.NewReader("no benchmarks here"), &out, []string{"-baseline", base}); err == nil {
		t.Fatal("empty bench input accepted")
	}
	empty := writeBaseline(t, `{"benchmarks": {}}`)
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", empty}); err == nil {
		t.Fatal("empty baseline accepted")
	}
	malformed := writeBaseline(t, `{"benchmarks"`)
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", malformed}); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

// TestRatioGates: cross-benchmark ratio gates pass within max, fail
// beyond it, skip (non-strict) or fail (strict) when an endpoint did not
// run, and reject malformed gate entries.
func TestRatioGates(t *testing.T) {
	// Two fleet scales with ns/event custom metrics: 100.0 at 10k and
	// 110.0 at 1M — a 1.10 scaling ratio.
	bench := `pkg: repro
BenchmarkFleet10kCT 	       3	 337021045 ns/op	     29673 devices/s	   3391334 events/op	       100.0 ns/event	  695716 B/op	     558 allocs/op
BenchmarkFleet1MCT 	       1	 11021045000 ns/op	     27012 devices/s	 100335995 events/op	       110.0 ns/event	  895716 B/op	     958 allocs/op
`
	baseBench := `"benchmarks": {
		"BenchmarkFleet10kCT": {"ns_per_op": 337021045, "allocs_per_op": 558},
		"BenchmarkFleet1MCT": {"ns_per_op": 11021045000, "allocs_per_op": 958}}`
	gate := func(max float64) string {
		return `{` + baseBench + `,
		"ratio_gates": [{"metric": "ns_per_event",
			"num": "BenchmarkFleet1MCT", "den": "BenchmarkFleet10kCT",
			"max": ` + strconv.FormatFloat(max, 'g', -1, 64) + `,
			"note": "per-event cost must stay flat with fleet scale"}]}`
	}

	// 1.10 measured ratio under a 1.15 cap: passes and reports.
	base := writeBaseline(t, gate(1.15))
	var out bytes.Buffer
	if err := run(strings.NewReader(bench), &out, []string{"-baseline", base}); err != nil {
		t.Fatalf("1.10 ratio failed a 1.15 gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok   ratio ns_per_event(BenchmarkFleet1MCT)") {
		t.Fatalf("passing ratio not reported:\n%s", out.String())
	}

	// Same run under a 1.05 cap: fails with the note.
	base = writeBaseline(t, gate(1.05))
	out.Reset()
	if err := run(strings.NewReader(bench), &out, []string{"-baseline", base}); err == nil {
		t.Fatalf("1.10 ratio passed a 1.05 gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL ratio") || !strings.Contains(out.String(), "stay flat") {
		t.Fatalf("ratio failure not reported with note:\n%s", out.String())
	}

	// An endpoint missing from the run: skipped non-strict, fails strict.
	partial := `pkg: repro
BenchmarkFleet10kCT 	       3	 337021045 ns/op	     100.0 ns/event	  695716 B/op	     558 allocs/op
`
	partialBase := writeBaseline(t, `{"benchmarks": {
		"BenchmarkFleet10kCT": {"ns_per_op": 337021045, "allocs_per_op": 558}},
		"ratio_gates": [{"metric": "ns_per_event",
			"num": "BenchmarkFleet1MCT", "den": "BenchmarkFleet10kCT", "max": 1.15}]}`)
	out.Reset()
	if err := run(strings.NewReader(partial), &out, []string{"-baseline", partialBase}); err != nil {
		t.Fatalf("non-strict run failed on a skipped ratio gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SKIP ratio") {
		t.Fatalf("skipped ratio not reported:\n%s", out.String())
	}
	out.Reset()
	if err := run(strings.NewReader(partial), &out, []string{"-baseline", partialBase, "-strict"}); err == nil {
		t.Fatalf("strict run passed with an unevaluated ratio gate:\n%s", out.String())
	}

	// Malformed gate entries error out (authoring mistakes, not skips).
	for _, bad := range []string{
		`[{"metric": "", "num": "A", "den": "B", "max": 1}]`,
		`[{"metric": "ns_per_op", "num": "A", "den": "B", "max": 0}]`,
	} {
		badBase := writeBaseline(t, `{`+baseBench+`, "ratio_gates": `+bad+`}`)
		out.Reset()
		if err := run(strings.NewReader(bench), &out, []string{"-baseline", badBase}); err == nil {
			t.Fatalf("malformed ratio gate %s accepted", bad)
		}
	}

	// -update preserves ratio_gates verbatim, and the updated file still
	// enforces them.
	base = writeBaseline(t, gate(1.15))
	out.Reset()
	if err := run(strings.NewReader(bench), &out, []string{"-baseline", base, "-update"}); err != nil {
		t.Fatalf("update failed: %v", err)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "ratio_gates") || !strings.Contains(string(raw), "stay flat") {
		t.Fatalf("ratio_gates not preserved by -update:\n%s", raw)
	}
	out.Reset()
	if err := run(strings.NewReader(bench), &out, []string{"-baseline", base, "-strict"}); err != nil {
		t.Fatalf("updated baseline fails its own run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok   ratio") {
		t.Fatalf("ratio gate not evaluated after update:\n%s", out.String())
	}
}

// TestUpdateRewritesBaseline: -update replaces the benchmarks map with
// the measured figures (including custom metrics under their JSON
// keys), preserves other top-level fields and per-entry notes, and
// bootstraps a missing file.
func TestUpdateRewritesBaseline(t *testing.T) {
	base := writeBaseline(t, `{
  "pr": 4,
  "host": {"cpu": "test"},
  "benchmarks": {
    "BenchmarkCTReplicaTableCell": {"ns_per_op": 1, "allocs_per_op": 1, "note": "keep me"},
    "BenchmarkGone": {"ns_per_op": 2}
  }
}`)
	var out bytes.Buffer
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", base, "-update"}); err != nil {
		t.Fatalf("update failed: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		PR   int                       `json:"pr"`
		Host map[string]any            `json:"host"`
		B    map[string]map[string]any `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("rewritten baseline unparseable: %v\n%s", err, raw)
	}
	if got.PR != 4 || got.Host["cpu"] != "test" {
		t.Fatalf("top-level fields not preserved: %s", raw)
	}
	if _, ok := got.B["BenchmarkGone"]; ok {
		t.Fatal("stale baseline entry survived the rewrite")
	}
	cell := got.B["BenchmarkCTReplicaTableCell"]
	if cell["ns_per_op"] != 675788.0 || cell["allocs_per_op"] != 29.0 || cell["bytes_per_op"] != 1568.0 {
		t.Fatalf("figures not recorded: %v", cell)
	}
	if cell["note"] != "keep me" {
		t.Fatalf("note dropped: %v", cell)
	}
	fleet := got.B["BenchmarkFleet1kCT"]
	if fleet["ns_per_event"] != 110.2 || fleet["devices_per_s"] != 27012.0 || fleet["events_per_op"] != 335995.0 {
		t.Fatalf("custom metrics not recorded: %v", fleet)
	}
	// The updated file passes its own gate.
	out.Reset()
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", base, "-strict"}); err != nil {
		t.Fatalf("updated baseline fails its own run: %v\n%s", err, out.String())
	}

	// Bootstrapping: no file yet.
	fresh := filepath.Join(t.TempDir(), "BENCH_new.json")
	out.Reset()
	if err := run(strings.NewReader(sampleBench), &out, []string{"-baseline", fresh, "-update"}); err != nil {
		t.Fatalf("bootstrap update failed: %v", err)
	}
	raw, err = os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "BenchmarkScheduleAndFire") {
		t.Fatalf("bootstrapped baseline incomplete: %s", raw)
	}
}

// Three runs of the same two benchmarks (`go test -count 3` output),
// with a different run hitting the noise floor for each key: the
// coupled benchmark is fastest in run 2, the uncoupled one in run 1.
const multiRunBench = `pkg: repro
BenchmarkFleetCoupled10kCT 	       2	 500000000 ns/op	     130.0 ns/event	     1480 allocs/op
BenchmarkFleet10kCT 	       3	 300000000 ns/op	      90.0 ns/event	      614 allocs/op
pkg: repro
BenchmarkFleetCoupled10kCT 	       2	 460000000 ns/op	     122.0 ns/event	     1478 allocs/op
BenchmarkFleet10kCT 	       3	 340000000 ns/op	      95.0 ns/event	      614 allocs/op
pkg: repro
BenchmarkFleetCoupled10kCT 	       2	 480000000 ns/op	     126.0 ns/event	     1479 allocs/op
BenchmarkFleet10kCT 	       3	 310000000 ns/op	      84.0 ns/event	      614 allocs/op
`

// TestBestOfReduce: each benchmark collapses to the whole row of its
// own fastest run (so correlated custom metrics stay consistent),
// first-appearance order is preserved, and more occurrences than the
// declared run count is an error.
func TestBestOfReduce(t *testing.T) {
	res, err := parseBench(strings.NewReader(multiRunBench), "repro")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("parsed %d results, want 6", len(res))
	}
	best, err := bestOfReduce(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 {
		t.Fatalf("reduced to %d results, want 2: %+v", len(best), best)
	}
	coupled, fleet := best[0], best[1]
	if coupled.Key != "BenchmarkFleetCoupled10kCT" || fleet.Key != "BenchmarkFleet10kCT" {
		t.Fatalf("first-appearance order not preserved: %+v", best)
	}
	// Run 2's whole row wins for coupled: min ns/op brings along its own
	// ns/event and allocs, not element-wise minima across runs.
	if coupled.NsPerOp != 460000000 || coupled.Extra["ns_per_event"] != 122.0 || coupled.AllocsPerOp != 1478 {
		t.Fatalf("coupled best row wrong: %+v", coupled)
	}
	// Run 1 wins for uncoupled — selection is per benchmark, not per run.
	if fleet.NsPerOp != 300000000 || fleet.Extra["ns_per_event"] != 90.0 {
		t.Fatalf("uncoupled best row wrong: %+v", fleet)
	}
	// Declared 2 runs but 3 occurrences present: the flag and the input
	// disagree, which is an authoring mistake rather than noise.
	if _, err := bestOfReduce(res, 2); err == nil {
		t.Fatal("3 occurrences accepted under -best-of 2")
	}
	// n=1 is the identity (the no-flag path).
	same, err := bestOfReduce(res, 1)
	if err != nil || len(same) != 6 {
		t.Fatalf("best-of 1 altered the results: %v, %d rows", err, len(same))
	}
}

// TestBestOfGateAndUpdate: with -best-of the gate and the recorder both
// see the per-benchmark minima — a baseline pinned at the noise floor
// passes only when the slow runs are folded away, and -update records
// the floor, not the last run.
func TestBestOfGateAndUpdate(t *testing.T) {
	base := writeBaseline(t, `{"benchmarks": {
		"BenchmarkFleetCoupled10kCT": {"ns_per_op": 460000000, "allocs_per_op": 1478},
		"BenchmarkFleet10kCT": {"ns_per_op": 300000000, "allocs_per_op": 614}},
		"ratio_gates": [{"metric": "ns_per_event",
			"num": "BenchmarkFleetCoupled10kCT", "den": "BenchmarkFleet10kCT",
			"max": 1.40}]}`)

	// Without folding, the slow runs (500M vs 460M baseline ≈ +8.7%)
	// pass the default 25% tolerance but fail a 5% one.
	var out bytes.Buffer
	if err := run(strings.NewReader(multiRunBench), &out, []string{"-baseline", base, "-ns-tol", "0.05"}); err == nil {
		t.Fatalf("slow unfolded runs passed a 5%% gate:\n%s", out.String())
	}
	out.Reset()
	if err := run(strings.NewReader(multiRunBench), &out, []string{"-baseline", base, "-ns-tol", "0.05", "-best-of", "3"}); err != nil {
		t.Fatalf("best-of minima failed their own baseline: %v\n%s", err, out.String())
	}
	// The ratio gate sees the folded rows too: 122/90 ≈ 1.356 ≤ 1.40,
	// while the per-run worst case (130/84 ≈ 1.548) would fail.
	if !strings.Contains(out.String(), "ok   ratio ns_per_event(BenchmarkFleetCoupled10kCT)") {
		t.Fatalf("ratio gate not evaluated on folded rows:\n%s", out.String())
	}

	// -best-of composes with -update: the recorded figures are the minima.
	fresh := filepath.Join(t.TempDir(), "BENCH_bestof.json")
	out.Reset()
	if err := run(strings.NewReader(multiRunBench), &out, []string{"-baseline", fresh, "-update", "-best-of", "3"}); err != nil {
		t.Fatalf("best-of update failed: %v", err)
	}
	raw, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		B map[string]map[string]any `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("recorded baseline unparseable: %v\n%s", err, raw)
	}
	if got.B["BenchmarkFleetCoupled10kCT"]["ns_per_event"] != 122.0 ||
		got.B["BenchmarkFleet10kCT"]["ns_per_event"] != 90.0 {
		t.Fatalf("minima not recorded: %s", raw)
	}

	// A run count below 1 is rejected.
	out.Reset()
	if err := run(strings.NewReader(multiRunBench), &out, []string{"-baseline", base, "-best-of", "0"}); err == nil {
		t.Fatal("-best-of 0 accepted")
	}
}
