// Command qdpm-benchdiff is the CI benchmark-regression gate: it parses
// `go test -bench` output and compares every benchmark against the
// recorded BENCH_*.json baseline, failing when ns/op regresses beyond a
// tolerance or when a zero-allocation path starts allocating.
//
//	go test -run '^$' -bench 'ScheduleAndFire|CTReplica|Fleet' -benchmem \
//	    ./... | qdpm-benchdiff -baseline BENCH_pr4.json
//
// Benchmark names are keyed the way the BENCH files record them: the
// package directory's last element prefixes the name (eventq/
// BenchmarkScheduleAndFire), except for the repository root package,
// which is unprefixed. Benchmarks missing from the baseline are reported
// but pass, and baseline entries that did not run are ignored, so one
// baseline can serve several partial bench invocations. -strict closes
// both holes for pinned CI runs: it fails benchmarks missing from the
// baseline (renames) AND baseline entries that produced no result
// (deletions or regex un-pinning).
//
// Gate rules, per benchmark present in both sides:
//
//   - ns/op:     fail when current > baseline × (1 + ns-tol). Default
//     ns-tol 0.25; CI passes a larger value because shared runners are
//     noisy.
//   - allocs/op: fail when the baseline is 0 and the current value is
//     not — zero-allocation hot paths are a hard invariant, not a
//     budget. Non-zero baselines fail beyond (1 + alloc-tol), default
//     0.10, since alloc counts are near-deterministic.
//
// Ratio gates. Beyond per-benchmark comparisons, a baseline may carry a
// top-level "ratio_gates" array pinning relations BETWEEN benchmarks of
// the same run — the shape of a scaling curve rather than any absolute
// figure:
//
//	"ratio_gates": [{
//	  "metric": "ns_per_event",
//	  "num": "BenchmarkFleet1MCT", "den": "BenchmarkFleet10kCT",
//	  "max": 1.15,
//	  "note": "per-event cost must stay flat from 10k to 1M devices"
//	}]
//
// The gate fails when metric(num)/metric(den) > max in the current run.
// Metrics name recorded keys: ns_per_op, allocs_per_op, bytes_per_op, or
// any custom metric key (ns_per_event). Ratios compare two measurements
// from the same host and run, so they hold a tight tolerance where
// absolute ns/op gates must absorb cross-host noise. A gate whose
// endpoints did not run is skipped (partial invocations stay supported)
// unless -strict, which fails it like an unran pinned benchmark.
// -update preserves ratio_gates untouched (it only rewrites the
// benchmarks map).
//
// -update flips the tool from gate to recorder: instead of comparing, it
// rewrites the baseline's benchmarks map from the bench run (ns/op,
// B/op, allocs/op, and custom metrics like ns/event), preserving every
// other top-level field and per-entry notes — the path for recording a
// new BENCH_prN.json without hand-editing.
//
// -best-of N declares the input to carry up to N runs of each benchmark
// (`go test -bench -count N`) and reduces every benchmark to its
// fastest run — the whole result row of the minimum-ns/op occurrence,
// so correlated figures (ns/event, devices/s) stay mutually consistent
// — before gating or recording. The minimum across repeated runs
// estimates the noise floor, which is what both sides of a gate should
// compare on a shared CI runner; a benchmark appearing more than N
// times fails (the run and the flag disagree).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "qdpm-benchdiff: %v\n", err)
		os.Exit(1)
	}
}

// baselineEntry is one recorded benchmark in a BENCH_*.json file. Only
// the fields the gate compares are decoded; extra fields (bytes_per_op,
// ns_per_event, notes) are ignored.
type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// ratioGate pins a relation between two benchmarks of the same run:
// Metric(Num)/Metric(Den) must not exceed Max. See the package comment.
type ratioGate struct {
	Metric string  `json:"metric"`
	Num    string  `json:"num"`
	Den    string  `json:"den"`
	Max    float64 `json:"max"`
	Note   string  `json:"note"`
}

// validate rejects a malformed gate entry (a baseline-authoring error,
// not a measurement failure).
func (g *ratioGate) validate(i int) error {
	if g.Metric == "" || g.Num == "" || g.Den == "" {
		return fmt.Errorf("ratio_gates[%d] needs metric, num, and den", i)
	}
	if !(g.Max > 0) {
		return fmt.Errorf("ratio_gates[%d] (%s/%s) max %v must be positive", i, g.Num, g.Den, g.Max)
	}
	return nil
}

// baselineFile is the BENCH_*.json schema subset the gate reads.
type baselineFile struct {
	Benchmarks map[string]baselineEntry `json:"benchmarks"`
	RatioGates []ratioGate              `json:"ratio_gates"`
}

// result is one parsed benchmark run.
type result struct {
	// Key is the baseline lookup key: pkg-suffix/Name, or bare Name for
	// the repository root package.
	Key string
	// NsPerOp and AllocsPerOp mirror -benchmem output (the gated
	// figures; B/op is deliberately not gated — the allocs rule covers
	// the hard 0-alloc invariant and byte counts track it).
	// AllocsPerOp is -1 when the line carried no allocation figures
	// (bench run without -benchmem).
	NsPerOp     float64
	AllocsPerOp float64
	// BytesPerOp is -1 when absent; recorded by -update, never gated.
	BytesPerOp float64
	// Extra holds the custom metrics (ns/event, devices/s, ...) keyed
	// the way BENCH files record them (ns_per_event, devices_per_s);
	// recorded by -update, never gated.
	Extra map[string]float64
}

// metricKey converts a go-test unit into the BENCH JSON key:
// ns/event -> ns_per_event, devices/s -> devices_per_s.
func metricKey(unit string) string {
	return strings.NewReplacer("/", "_per_", ".", "_").Replace(unit)
}

// parseBench scans `go test -bench` output, tracking `pkg:` headers to
// key benchmarks the way the BENCH files do.
func parseBench(r io.Reader, module string) ([]result, error) {
	var out []result
	prefix := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(pkg)
			if pkg == module {
				prefix = ""
			} else if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
				prefix = pkg[i+1:] + "/"
			} else {
				prefix = pkg + "/"
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name-N iterations value unit [value unit]...
		if len(f) < 4 || (len(f)%2 != 0) {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		res := result{Key: prefix + name, AllocsPerOp: -1, BytesPerOp: -1}
		seenNs := false
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in line %q", f[i], line)
			}
			switch f[i+1] {
			case "ns/op":
				res.NsPerOp, seenNs = v, true
			case "allocs/op":
				res.AllocsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			default:
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[metricKey(f[i+1])] = v
			}
		}
		if !seenNs {
			continue // a custom-metric-only line; nothing to gate
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// bestOfReduce collapses repeated runs of each benchmark (`go test
// -count N` emits one line per run) to the single fastest run by
// ns/op, preserving first-appearance order. The whole winning row is
// kept — not an element-wise minimum — so "bigger is better" custom
// metrics (devices/s) come from the same measurement as the ns figures
// they accompany. A key appearing more than n times is an error: the
// input holds more runs than -best-of was told to expect.
func bestOfReduce(results []result, n int) ([]result, error) {
	if n <= 1 {
		return results, nil
	}
	idx := make(map[string]int, len(results))
	counts := make(map[string]int, len(results))
	out := make([]result, 0, len(results))
	for _, res := range results {
		counts[res.Key]++
		if counts[res.Key] > n {
			return nil, fmt.Errorf("benchmark %s ran %d times, more than the declared -best-of %d",
				res.Key, counts[res.Key], n)
		}
		if j, ok := idx[res.Key]; ok {
			if res.NsPerOp < out[j].NsPerOp {
				out[j] = res
			}
			continue
		}
		idx[res.Key] = len(out)
		out = append(out, res)
	}
	return out, nil
}

// metric returns the named figure from a parsed result, using the same
// keys the BENCH files record (ns_per_op, allocs_per_op, bytes_per_op,
// or a custom metric key like ns_per_event). ok is false when the run
// did not carry that figure.
func (r *result) metric(key string) (v float64, ok bool) {
	switch key {
	case "ns_per_op":
		return r.NsPerOp, true
	case "allocs_per_op":
		return r.AllocsPerOp, r.AllocsPerOp >= 0
	case "bytes_per_op":
		return r.BytesPerOp, r.BytesPerOp >= 0
	default:
		v, ok = r.Extra[key]
		return v, ok
	}
}

// checkRatioGates evaluates the baseline's cross-benchmark ratio gates
// against the run and returns (failed, skipped) counts. Gates whose
// endpoints did not run (or ran without the pinned metric) are skipped
// and reported; strict mode turns skips into failures at the caller.
func checkRatioGates(gates []ratioGate, byKey map[string]*result, stdout io.Writer) (failed, skipped int, err error) {
	for i := range gates {
		g := &gates[i]
		if err := g.validate(i); err != nil {
			return 0, 0, err
		}
		num, den := byKey[g.Num], byKey[g.Den]
		var nv, dv float64
		var nok, dok bool
		if num != nil {
			nv, nok = num.metric(g.Metric)
		}
		if den != nil {
			dv, dok = den.metric(g.Metric)
		}
		switch {
		case !nok || !dok:
			skipped++
			fmt.Fprintf(stdout, "SKIP ratio %s(%s)/%s(%s): endpoint did not run or lacks the metric\n",
				g.Metric, g.Num, g.Metric, g.Den)
		case dv == 0:
			skipped++
			fmt.Fprintf(stdout, "SKIP ratio %s(%s)/%s(%s): denominator is zero\n",
				g.Metric, g.Num, g.Metric, g.Den)
		case nv/dv > g.Max:
			failed++
			fmt.Fprintf(stdout, "FAIL ratio %s(%s)/%s(%s) = %.4g/%.4g = %.3f exceeds max %.3f\n",
				g.Metric, g.Num, g.Metric, g.Den, nv, dv, nv/dv, g.Max)
			if g.Note != "" {
				fmt.Fprintf(stdout, "     (%s)\n", g.Note)
			}
		default:
			fmt.Fprintf(stdout, "ok   ratio %s(%s)/%s(%s) = %.3f (max %.3f)\n",
				g.Metric, g.Num, g.Metric, g.Den, nv/dv, g.Max)
		}
	}
	return failed, skipped, nil
}

// compare applies the gate rules and returns the failure reasons (none
// means the benchmark passes, or has no baseline to compare against).
func compare(res result, base *baselineEntry, nsTol, allocTol float64) []string {
	if base == nil {
		return nil
	}
	var failures []string
	if base.NsPerOp > 0 && res.NsPerOp > base.NsPerOp*(1+nsTol) {
		failures = append(failures, fmt.Sprintf("ns/op %.4g exceeds baseline %.4g by more than %.0f%%",
			res.NsPerOp, base.NsPerOp, 100*nsTol))
	}
	if res.AllocsPerOp >= 0 {
		switch {
		case base.AllocsPerOp == 0 && res.AllocsPerOp > 0:
			failures = append(failures, fmt.Sprintf("allocates %.4g allocs/op on a zero-allocation baseline path",
				res.AllocsPerOp))
		case base.AllocsPerOp > 0 && res.AllocsPerOp > base.AllocsPerOp*(1+allocTol):
			failures = append(failures, fmt.Sprintf("allocs/op %.4g exceeds baseline %.4g by more than %.0f%%",
				res.AllocsPerOp, base.AllocsPerOp, 100*allocTol))
		}
	}
	return failures
}

// updateBaseline rewrites the baseline's benchmarks map from a parsed
// bench run — ns/op, B/op, allocs/op, and every custom metric (ns/event,
// devices/s, ...) under their BENCH JSON keys — preserving all other
// top-level fields and each surviving entry's note, then writes the file
// back in place. This is how BENCH_prN.json is recorded: run the pinned
// benchmarks, pipe through -update, review the diff.
func updateBaseline(path string, raw []byte, results []result, stdout io.Writer) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	// Per-entry notes survive the rewrite; everything else is replaced
	// by the measured figures.
	var old struct {
		Benchmarks map[string]struct {
			Note string `json:"note"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("parsing %s benchmarks: %w", path, err)
	}
	benches := make(map[string]map[string]any, len(results))
	for _, res := range results {
		e := map[string]any{"ns_per_op": res.NsPerOp}
		if res.BytesPerOp >= 0 {
			e["bytes_per_op"] = res.BytesPerOp
		}
		if res.AllocsPerOp >= 0 {
			e["allocs_per_op"] = res.AllocsPerOp
		}
		for k, v := range res.Extra {
			e[k] = v
		}
		if o, ok := old.Benchmarks[res.Key]; ok && o.Note != "" {
			e["note"] = o.Note
		}
		benches[res.Key] = e
	}
	nb, err := json.Marshal(benches)
	if err != nil {
		return err
	}
	top["benchmarks"] = nb
	out, err := json.MarshalIndent(top, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "updated %s: %d benchmarks recorded\n", path, len(benches))
	return nil
}

// run drives the gate: parse, compare, report, and return an error when
// any benchmark fails.
func run(stdin io.Reader, stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("qdpm-benchdiff", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "", "BENCH_*.json file to compare against (required)")
		nsTol        = fs.Float64("ns-tol", 0.25, "allowed fractional ns/op regression")
		allocTol     = fs.Float64("alloc-tol", 0.10, "allowed fractional allocs/op regression on non-zero baselines")
		strict       = fs.Bool("strict", false, "fail benchmarks missing from the baseline and baseline entries that did not run")
		module       = fs.String("module", "repro", "module path whose root package is unprefixed in baseline keys")
		inPath       = fs.String("in", "", "read bench output from this file instead of stdin")
		update       = fs.Bool("update", false, "rewrite the baseline's benchmarks map from this bench run instead of gating (other fields and per-entry notes are preserved; the file may not exist yet)")
		bestOf       = fs.Int("best-of", 1, "input carries up to N runs per benchmark (-count N); keep each benchmark's fastest run before gating or recording")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *baselinePath == "" {
		return fmt.Errorf("-baseline is required")
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		if !(*update && errors.Is(err, os.ErrNotExist)) {
			return err
		}
		raw = []byte("{}") // -update bootstraps a fresh baseline
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 && !*update {
		return fmt.Errorf("%s carries no benchmarks", *baselinePath)
	}
	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in, *module)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	if *bestOf < 1 {
		return fmt.Errorf("-best-of %d must be at least 1", *bestOf)
	}
	if results, err = bestOfReduce(results, *bestOf); err != nil {
		return err
	}
	if *update {
		return updateBaseline(*baselinePath, raw, results, stdout)
	}

	failed, missing := 0, 0
	byKey := make(map[string]*result, len(results))
	for i := range results {
		byKey[results[i].Key] = &results[i]
	}
	unran := 0
	if *strict {
		keys := make([]string, 0, len(base.Benchmarks))
		for k := range base.Benchmarks {
			if byKey[k] == nil {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		unran = len(keys)
		for _, k := range keys {
			fmt.Fprintf(stdout, "GONE %-48s recorded in baseline but produced no result\n", k)
		}
	}
	for _, res := range results {
		var bp *baselineEntry
		if b, ok := base.Benchmarks[res.Key]; ok {
			bp = &b
		}
		failures := compare(res, bp, *nsTol, *allocTol)
		switch {
		case bp == nil:
			missing++
			fmt.Fprintf(stdout, "?  %-50s %12.4g ns/op  (not in baseline)\n", res.Key, res.NsPerOp)
		case len(failures) > 0:
			failed++
			fmt.Fprintf(stdout, "FAIL %-48s %12.4g ns/op vs %.4g baseline\n", res.Key, res.NsPerOp, bp.NsPerOp)
			for _, f := range failures {
				fmt.Fprintf(stdout, "     %s\n", f)
			}
		default:
			delta := 0.0
			if bp.NsPerOp > 0 {
				delta = 100 * (res.NsPerOp - bp.NsPerOp) / bp.NsPerOp
			}
			fmt.Fprintf(stdout, "ok   %-48s %12.4g ns/op  (%+.1f%% vs baseline)\n", res.Key, res.NsPerOp, delta)
		}
	}
	ratioFailed, ratioSkipped, err := checkRatioGates(base.RatioGates, byKey, stdout)
	if err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}
	fmt.Fprintf(stdout, "%d benchmarks: %d compared, %d missing from baseline, %d failed\n",
		len(results), len(results)-missing, missing, failed)
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond tolerance", failed)
	}
	if ratioFailed > 0 {
		return fmt.Errorf("%d ratio gate(s) exceeded", ratioFailed)
	}
	if *strict && missing > 0 {
		return fmt.Errorf("%d benchmark(s) missing from baseline (strict mode)", missing)
	}
	if *strict && unran > 0 {
		return fmt.Errorf("%d baseline benchmark(s) produced no result (strict mode)", unran)
	}
	if *strict && ratioSkipped > 0 {
		return fmt.Errorf("%d ratio gate(s) could not be evaluated (strict mode)", ratioSkipped)
	}
	return nil
}
