// Command qdpm-bench regenerates every figure and table of the Q-DPM
// reproduction (see DESIGN.md §4 for the experiment index):
//
//	qdpm-bench -exp fig1     # Fig. 1 — convergence on optimal policy
//	qdpm-bench -exp fig2     # Fig. 2 — rapid response
//	qdpm-bench -exp r1       # Table R1 — runtime/memory
//	qdpm-bench -exp r2       # Table R2 — stationary comparison
//	qdpm-bench -exp r3       # Table R3 — nonstationary tracking
//	qdpm-bench -exp r4       # Table R4 — small-variation tolerance
//	qdpm-bench -exp ablate   # design-choice ablations
//	qdpm-bench -exp ct       # Table CT — continuous-time renewal workloads
//	qdpm-bench -exp all      # everything
//
// -quick shrinks run lengths ~5x for a fast smoke pass. -parallel sets
// the replica worker-pool size (default: GOMAXPROCS; 1 forces the serial
// path). -seed replaces each experiment's canonical seed list with seeds
// derived from the given base, keeping the replica count. Results are
// bit-identical across -parallel values: the pool only changes wall-clock
// time, never output. Table R1 is a wall-clock microbenchmark and always
// runs serially. Output is plain text: an ASCII chart plus the numeric
// series for figures, aligned tables otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/engine"
	"repro/internal/experiment"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig2|r1|r2|r3|r4|ablate|ct|all")
	quick := flag.Bool("quick", false, "shrink run lengths ~5x")
	parallel := flag.Int("parallel", 0, "replica worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	seed := flag.Uint64("seed", 0, "derive replica seeds from this base (0 = canonical seeds)")
	progress := flag.Bool("progress", false, "print replica completion progress to stderr")
	flag.Parse()

	// Ctrl-C cancels the pool; replicas poll the context between slot
	// chunks, so the exit is prompt even mid-figure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	par := experiment.Parallel{Workers: *parallel}
	if *progress {
		par.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d replicas", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// reseed replaces canonical seeds with ones derived from -seed; the
	// offset keeps experiments on distinct streams under one base.
	reseed := func(canonical []uint64, offset uint64) []uint64 {
		if *seed == 0 {
			return canonical
		}
		return engine.DeriveSeeds(*seed+offset, len(canonical))
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n##### %s (started %s)\n\n", name, time.Now().Format(time.TimeOnly))
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "qdpm-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	matched := false

	if want("fig1") {
		matched = true
		run("fig1", func() error {
			cfg := experiment.DefaultFig1()
			if *quick {
				cfg.Slots = 60000
				cfg.Seeds = cfg.Seeds[:2]
			}
			cfg.Seeds = reseed(cfg.Seeds, 1)
			fig, err := experiment.Fig1Ctx(ctx, cfg, par)
			if err != nil {
				return err
			}
			return fig.Render(os.Stdout)
		})
	}
	if want("fig2") {
		matched = true
		run("fig2", func() error {
			cfg := experiment.DefaultFig2()
			if *quick {
				cfg.SegmentSlots = 12000
				cfg.Seeds = cfg.Seeds[:1]
			}
			cfg.Seeds = reseed(cfg.Seeds, 2)
			fig, err := experiment.Fig2Ctx(ctx, cfg, par)
			if err != nil {
				return err
			}
			return fig.Render(os.Stdout)
		})
	}
	if want("r1") {
		matched = true
		run("r1", func() error {
			caps := []int{3, 8, 20, 40}
			if *quick {
				caps = []int{3, 8}
			}
			tab, _, err := experiment.TableR1Ctx(ctx, caps)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("r2") {
		matched = true
		run("r2", func() error {
			slots := int64(200000)
			seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
			if *quick {
				slots = 40000
				seeds = seeds[:3]
			}
			seeds = reseed(seeds, 3)
			tab, err := experiment.TableR2Ctx(ctx, []float64{0.02, 0.08, 0.3}, slots, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("r3") {
		matched = true
		run("r3", func() error {
			cfg := experiment.DefaultFig2()
			if *quick {
				cfg.SegmentSlots = 12000
			}
			cfg.Seeds = reseed(cfg.Seeds, 4)
			tab, err := experiment.TableR3Ctx(ctx, cfg, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("r4") {
		matched = true
		run("r4", func() error {
			slots := int64(150000)
			seeds := []uint64{11, 12, 13, 14}
			if *quick {
				slots = 30000
				seeds = seeds[:2]
			}
			seeds = reseed(seeds, 5)
			tab, err := experiment.TableR4Ctx(ctx, 0.15, 0.2, 5000, slots, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("ablate") {
		matched = true
		run("ablate", func() error {
			slots := int64(150000)
			seeds := []uint64{21, 22, 23}
			specs := experiment.DefaultAblations()
			if *quick {
				slots = 40000
				seeds = seeds[:1]
			}
			seeds = reseed(seeds, 6)
			tab, err := experiment.TableAblationsCtx(ctx, specs, 0.1, slots, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("ct") {
		matched = true
		run("ct", func() error {
			horizon := 100000.0 // seconds ≈ 200k governor ticks
			seeds := []uint64{31, 32, 33, 34}
			if *quick {
				horizon = 20000
				seeds = seeds[:2]
			}
			seeds = reseed(seeds, 7)
			tab, err := experiment.TableCTCtx(ctx, 0.2, horizon, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "qdpm-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
