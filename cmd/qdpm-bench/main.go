// Command qdpm-bench regenerates every figure and table of the Q-DPM
// reproduction (see DESIGN.md §4 for the experiment index):
//
//	qdpm-bench -exp fig1     # Fig. 1 — convergence on optimal policy
//	qdpm-bench -exp fig2     # Fig. 2 — rapid response
//	qdpm-bench -exp r1       # Table R1 — runtime/memory
//	qdpm-bench -exp r2       # Table R2 — stationary comparison
//	qdpm-bench -exp r3       # Table R3 — nonstationary tracking
//	qdpm-bench -exp r4       # Table R4 — small-variation tolerance
//	qdpm-bench -exp ablate   # design-choice ablations
//	qdpm-bench -exp ct       # Table CT — continuous-time renewal workloads
//	qdpm-bench -exp fleet    # Table Fleet — heterogeneous multi-device fleet
//	qdpm-bench -exp coupled  # Table Coupled Fleet — policies under contention
//	qdpm-bench -exp faulted  # Table Faulted Fleet — policies under fault severity
//	qdpm-bench -exp analytic # Table A — sim vs closed-form oracles (docs/ANALYTIC.md)
//	qdpm-bench -exp all      # everything
//
// -quick shrinks run lengths ~5x for a fast smoke pass. -parallel sets
// the replica worker-pool size (default: GOMAXPROCS; 1 forces the serial
// path). -seed replaces each experiment's canonical seed list with seeds
// derived from the given base, keeping the replica count. Results are
// bit-identical across -parallel values: the pool only changes wall-clock
// time, never output. Table R1 is a wall-clock microbenchmark and always
// runs serially. Output is plain text: an ASCII chart plus the numeric
// series for figures, aligned tables otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/rng"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig1|fig2|r1|r2|r3|r4|ablate|ct|fleet|coupled|faulted|analytic|all")
	quick := flag.Bool("quick", false, "shrink run lengths ~5x")
	parallel := flag.Int("parallel", 0, "replica worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	seed := flag.Uint64("seed", 0, "derive replica seeds from this base (0 = canonical seeds)")
	progress := flag.Bool("progress", false, "print replica completion progress to stderr")
	flag.Parse()

	// Ctrl-C cancels the pool; replicas poll the context between slot
	// chunks, so the exit is prompt even mid-figure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	par := experiment.Parallel{Workers: *parallel}
	if *progress {
		par.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d replicas", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// reseed replaces canonical seeds with ones derived from -seed; the
	// offset keeps experiments on distinct streams under one base.
	reseed := func(canonical []uint64, offset uint64) []uint64 {
		if *seed == 0 {
			return canonical
		}
		return engine.DeriveSeeds(*seed+offset, len(canonical))
	}

	run := func(name string, f func() error) {
		fmt.Printf("\n##### %s (started %s)\n\n", name, time.Now().Format(time.TimeOnly))
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "qdpm-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	matched := false

	if want("fig1") {
		matched = true
		run("fig1", func() error {
			cfg := experiment.DefaultFig1()
			if *quick {
				cfg.Slots = 60000
				cfg.Seeds = cfg.Seeds[:2]
			}
			cfg.Seeds = reseed(cfg.Seeds, 1)
			fig, err := experiment.Fig1Ctx(ctx, cfg, par)
			if err != nil {
				return err
			}
			return fig.Render(os.Stdout)
		})
	}
	if want("fig2") {
		matched = true
		run("fig2", func() error {
			cfg := experiment.DefaultFig2()
			if *quick {
				cfg.SegmentSlots = 12000
				cfg.Seeds = cfg.Seeds[:1]
			}
			cfg.Seeds = reseed(cfg.Seeds, 2)
			fig, err := experiment.Fig2Ctx(ctx, cfg, par)
			if err != nil {
				return err
			}
			return fig.Render(os.Stdout)
		})
	}
	if want("r1") {
		matched = true
		run("r1", func() error {
			caps := []int{3, 8, 20, 40}
			if *quick {
				caps = []int{3, 8}
			}
			tab, _, err := experiment.TableR1Ctx(ctx, caps)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("r2") {
		matched = true
		run("r2", func() error {
			slots := int64(200000)
			seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
			if *quick {
				slots = 40000
				seeds = seeds[:3]
			}
			seeds = reseed(seeds, 3)
			tab, err := experiment.TableR2Ctx(ctx, []float64{0.02, 0.08, 0.3}, slots, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("r3") {
		matched = true
		run("r3", func() error {
			cfg := experiment.DefaultFig2()
			if *quick {
				cfg.SegmentSlots = 12000
			}
			cfg.Seeds = reseed(cfg.Seeds, 4)
			tab, err := experiment.TableR3Ctx(ctx, cfg, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("r4") {
		matched = true
		run("r4", func() error {
			slots := int64(150000)
			seeds := []uint64{11, 12, 13, 14}
			if *quick {
				slots = 30000
				seeds = seeds[:2]
			}
			seeds = reseed(seeds, 5)
			tab, err := experiment.TableR4Ctx(ctx, 0.15, 0.2, 5000, slots, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("ablate") {
		matched = true
		run("ablate", func() error {
			slots := int64(150000)
			seeds := []uint64{21, 22, 23}
			specs := experiment.DefaultAblations()
			if *quick {
				slots = 40000
				seeds = seeds[:1]
			}
			seeds = reseed(seeds, 6)
			tab, err := experiment.TableAblationsCtx(ctx, specs, 0.1, slots, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("ct") {
		matched = true
		run("ct", func() error {
			horizon := 100000.0 // seconds ≈ 200k governor ticks
			seeds := []uint64{31, 32, 33, 34}
			if *quick {
				horizon = 20000
				seeds = seeds[:2]
			}
			seeds = reseed(seeds, 7)
			tab, err := experiment.TableCTCtx(ctx, 0.2, horizon, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			// Kernel figures of merit on stderr: stdout must stay
			// bit-identical across -parallel values (CI diffs it), and
			// wall-clock numbers are not.
			return ctPerfProbe(*quick)
		})
	}
	if want("fleet") {
		matched = true
		run("fleet", func() error {
			devices, horizon := 2000, 400.0
			seeds := []uint64{41, 42}
			if *quick {
				devices, horizon = 400, 120
				seeds = seeds[:1]
			}
			seeds = reseed(seeds, 8)
			tab, err := experiment.TableFleetCtx(ctx, devices, horizon, fleet.ModeCT, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("coupled") {
		matched = true
		run("coupled", func() error {
			devices, horizon := 512, 240.0
			sizes := []int{1, 8, 32}
			seeds := []uint64{41, 42}
			if *quick {
				devices, horizon = 128, 120
				sizes = []int{1, 8}
				seeds = seeds[:1]
			}
			seeds = reseed(seeds, 9)
			tab, err := experiment.TableCoupledFleetCtx(ctx, devices, horizon, fleet.CoupleChannel, sizes, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("faulted") {
		matched = true
		run("faulted", func() error {
			devices, horizon := 600, 240.0
			seeds := []uint64{41, 42}
			if *quick {
				devices, horizon = 150, 120
				seeds = seeds[:1]
			}
			seeds = reseed(seeds, 10)
			tab, err := experiment.TableFaultedFleetCtx(ctx, devices, horizon, experiment.DefaultFaultLevels(), seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if want("analytic") {
		matched = true
		run("analytic", func() error {
			seeds := []uint64{101, 102, 103, 104, 105, 106, 107, 108}
			if *quick {
				seeds = seeds[:4]
			}
			seeds = reseed(seeds, 11)
			tab, err := experiment.TableAnalyticCtx(ctx, seeds, par)
			if err != nil {
				return err
			}
			experiment.RenderTable(os.Stdout, tab.Title, tab.Headers, tab.Rows)
			fmt.Printf("# %s\n", tab.Note)
			return nil
		})
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "qdpm-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

// ctPerfProbe measures the continuous-time kernel's per-event cost on one
// serial replica per decision regime — the periodic governor running the
// canonical adapted timeout policy and the native event-driven timeout
// with its wake timers — and reports ns/event and allocs/event to stderr.
// Steady-state allocs/event must read 0.0; anything else is an allocation
// regression on the hot path (the CI gate tests the same property via
// testing.AllocsPerRun). The probe mirrors the Table CT cell shape
// (synthetic3, canonical queue cap, latency weight rescaled to J/req-s,
// exponential renewal arrivals) with one fixed policy and seed; if
// experiment.TableCTCtx changes that shape, change this probe with it.
func ctPerfProbe(quick bool) error {
	horizon := 200000.0
	if quick {
		horizon = 40000
	}
	psm := device.Synthetic3()
	dev, err := experiment.CanonDevice()
	if err != nil {
		return err
	}

	probe := func(name string, mkPolicy func() (ctsim.Policy, error), period float64) error {
		pol, err := mkPolicy()
		if err != nil {
			return err
		}
		d, err := dist.NewExponential(0.2)
		if err != nil {
			return err
		}
		src, err := ctsim.NewRenewalSource(d)
		if err != nil {
			return err
		}
		sim, err := ctsim.New(ctsim.Config{
			Device:         psm,
			QueueCap:       experiment.CanonQueueCap,
			LatencyWeight:  experiment.CanonLatencyWeight / experiment.CanonSlotSeconds,
			Policy:         pol,
			Source:         src,
			Stream:         rng.New(99),
			DecisionPeriod: period,
		})
		if err != nil {
			return err
		}
		const warm = 512.0
		if err := sim.Run(warm); err != nil {
			return err
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		ev0 := sim.FiredEvents()
		start := time.Now()
		if err := sim.Run(warm + horizon); err != nil {
			return err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		ev := sim.FiredEvents() - ev0
		if ev == 0 {
			return fmt.Errorf("ct perf probe %s fired no events", name)
		}
		fmt.Fprintf(os.Stderr, "# ct perf %-22s %7.1f ns/event  %6.3f allocs/event  (%d events / %.0f s simulated)\n",
			name, float64(elapsed.Nanoseconds())/float64(ev),
			float64(m1.Mallocs-m0.Mallocs)/float64(ev), ev, horizon)
		return nil
	}

	if err := probe("governor+adapted", func() (ctsim.Policy, error) {
		pf := experiment.TimeoutFactory(dev, 8)
		p, err := pf.New(rng.New(98))
		if err != nil {
			return nil, err
		}
		return ctsim.Adapt(p, experiment.CanonSlotSeconds), nil
	}, experiment.CanonSlotSeconds); err != nil {
		return err
	}
	return probe("event-driven", func() (ctsim.Policy, error) {
		return ctsim.NewTimeout(psm, 4)
	}, 0)
}
