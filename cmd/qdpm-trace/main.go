// Command qdpm-trace generates, inspects, and converts request traces in
// the qdpm trace formats (see internal/trace):
//
//	qdpm-trace gen -dist exp -rate 2 -n 100000 -o trace.txt
//	qdpm-trace gen -dist pareto -rate 0.5 -n 50000 -binary -o trace.bin
//	qdpm-trace describe trace.txt
//	qdpm-trace convert trace.txt trace.bin
//
// Text traces are one timestamp per line behind a version header; binary
// traces are magic + count + little-endian float64s.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qdpm-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: qdpm-trace gen|describe|convert ...")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "describe":
		return cmdDescribe(args[1:])
	case "convert":
		return cmdConvert(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, describe, or convert)", args[0])
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	distName := fs.String("dist", "exp", "interarrival distribution: exp|pareto|weibull|erlang|hyperexp|uniform")
	rate := fs.Float64("rate", 1, "mean arrivals per second")
	n := fs.Int("n", 10000, "number of requests")
	seed := fs.Uint64("seed", 1, "rng seed")
	binary := fs.Bool("binary", false, "write the binary format")
	out := fs.String("o", "-", "output file (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return fmt.Errorf("rate must be positive")
	}

	// dist.ByName is the calibrated single source of truth: every law's
	// mean interarrival is exactly 1/rate. (The old inline hyperexp used
	// rates (5, 0.5)/mean, whose mixture mean is 1.46/rate — `-rate R`
	// silently produced ~0.68R arrivals/s.)
	d, err := dist.ByName(*distName, *rate)
	if err != nil {
		return err
	}

	tr, err := trace.Generate(d, *n, rng.New(*seed))
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binary {
		return tr.WriteBinary(w)
	}
	return tr.WriteText(w)
}

func cmdDescribe(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: qdpm-trace describe <file>")
	}
	tr, err := trace.ReadFile(args[0])
	if err != nil {
		return err
	}
	st := tr.Summary()
	fmt.Printf("requests          %d\n", st.Count)
	fmt.Printf("duration          %.3f s\n", st.Duration)
	fmt.Printf("mean interarrival %.6f s (rate %.4f/s)\n", st.MeanInterarrival, safeInv(st.MeanInterarrival))
	fmt.Printf("interarrival CV   %.3f\n", st.CV)
	fmt.Printf("longest gap       %.3f s\n", st.MaxGap)
	return nil
}

func safeInv(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

func cmdConvert(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: qdpm-trace convert <in> <out>")
	}
	tr, err := trace.ReadFile(args[0])
	if err != nil {
		return err
	}
	f, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(args[1], ".bin") {
		return tr.WriteBinary(f)
	}
	return tr.WriteText(f)
}
