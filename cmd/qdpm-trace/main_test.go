package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/trace"
)

func TestGenDescribeConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "a.txt")
	bin := filepath.Join(dir, "a.bin")

	if err := run([]string{"gen", "-dist", "exp", "-rate", "2", "-n", "500", "-o", txt}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"describe", txt}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"convert", txt, bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"describe", bin}); err != nil {
		t.Fatal(err)
	}
	// Binary output is smaller per record than text for long traces.
	st1, _ := os.Stat(txt)
	st2, _ := os.Stat(bin)
	if st1 == nil || st2 == nil || st2.Size() >= st1.Size() {
		t.Errorf("binary (%v) not smaller than text (%v)", st2, st1)
	}
}

func TestGenAllDistributions(t *testing.T) {
	dir := t.TempDir()
	for _, d := range []string{"exp", "pareto", "weibull", "erlang", "hyperexp", "uniform"} {
		out := filepath.Join(dir, d+".txt")
		if err := run([]string{"gen", "-dist", d, "-rate", "1", "-n", "100", "-o", out}); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"gen", "-dist", "nope"}); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run([]string{"gen", "-rate", "0"}); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run([]string{"describe"}); err == nil {
		t.Error("describe without file accepted")
	}
	if err := run([]string{"describe", "/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"convert", "only-one-arg"}); err == nil {
		t.Error("convert with one arg accepted")
	}
}

// Every -dist value must be calibrated so gen -rate R really produces R
// arrivals per second on average: pinned-seed regression for the old
// hyperexp miscalibration (mixture mean 1.46/R → ~0.68R arrivals/s).
func TestGenRateCalibration(t *testing.T) {
	dir := t.TempDir()
	const rate = 4.0
	for _, d := range dist.Names() {
		d := d
		t.Run(d, func(t *testing.T) {
			out := filepath.Join(dir, d+".txt")
			if err := run([]string{"gen", "-dist", d, "-rate", "4", "-n", "200000", "-seed", "7", "-o", out}); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tr, err := trace.ReadText(f)
			if err != nil {
				t.Fatal(err)
			}
			st := tr.Summary()
			got := 1 / st.MeanInterarrival
			// Pareto alpha=1.5 has infinite variance, so its sample mean
			// converges far slower than the CLT rate; give it slack.
			tol := 0.02
			if d == "pareto" {
				tol = 0.10
			}
			if rel := math.Abs(got-rate) / rate; rel > tol {
				t.Errorf("%s: empirical rate %.4f/s, want %.4f/s within %.0f%% (off by %.1f%%)",
					d, got, rate, 100*tol, 100*rel)
			}
		})
	}
}

// The exact means are audited too: gen must hand every -dist value to the
// calibrated dist.ByName constructors.
func TestGenDistMeansMatchRate(t *testing.T) {
	for _, name := range dist.Names() {
		for _, rate := range []float64{0.5, 2, 8} {
			d, err := dist.ByName(name, rate)
			if err != nil {
				t.Fatalf("%s rate %g: %v", name, rate, err)
			}
			want := 1 / rate
			if got := d.Mean(); math.Abs(got-want) > 1e-12*want {
				t.Errorf("%s rate %g: mean %v, want %v", name, rate, got, want)
			}
		}
	}
}

// End-to-end binary path: gen -binary, describe, convert back to text.
func TestGenBinaryDescribeConvert(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "h.bin")
	txt := filepath.Join(dir, "h.txt")
	if err := run([]string{"gen", "-dist", "hyperexp", "-rate", "2", "-n", "1000", "-binary", "-o", bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"describe", bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"convert", bin, txt}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(txt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("converted trace has %d records, want 1000", tr.Len())
	}
}
