package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenDescribeConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "a.txt")
	bin := filepath.Join(dir, "a.bin")

	if err := run([]string{"gen", "-dist", "exp", "-rate", "2", "-n", "500", "-o", txt}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"describe", txt}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"convert", txt, bin}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"describe", bin}); err != nil {
		t.Fatal(err)
	}
	// Binary output is smaller per record than text for long traces.
	st1, _ := os.Stat(txt)
	st2, _ := os.Stat(bin)
	if st1 == nil || st2 == nil || st2.Size() >= st1.Size() {
		t.Errorf("binary (%v) not smaller than text (%v)", st2, st1)
	}
}

func TestGenAllDistributions(t *testing.T) {
	dir := t.TempDir()
	for _, d := range []string{"exp", "pareto", "weibull", "erlang", "hyperexp", "uniform"} {
		out := filepath.Join(dir, d+".txt")
		if err := run([]string{"gen", "-dist", d, "-rate", "1", "-n", "100", "-o", out}); err != nil {
			t.Errorf("%s: %v", d, err)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"gen", "-dist", "nope"}); err == nil {
		t.Error("unknown distribution accepted")
	}
	if err := run([]string{"gen", "-rate", "0"}); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run([]string{"describe"}); err == nil {
		t.Error("describe without file accepted")
	}
	if err := run([]string{"describe", "/nonexistent/file"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"convert", "only-one-arg"}); err == nil {
		t.Error("convert with one arg accepted")
	}
}
