// Command qdpm-sim runs one power-management simulation and prints a
// metrics report:
//
//	qdpm-sim -device synthetic3 -policy q-dpm -rate 0.1 -slots 200000
//	qdpm-sim -device hdd -policy timeout -timeout 16 -workload onoff
//	qdpm-sim -device wlan -policy optimal -rate 0.3
//
// Policies: q-dpm, q-dpm-sarsa, q-dpm-double, q-dpm-fuzzy, optimal,
// adaptive-lp, always-on, greedy-off, timeout, adaptive-timeout,
// predictive. Workloads: bernoulli (default), poisson, onoff, pareto.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/mdp"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stochpm"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qdpm-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devName  = flag.String("device", "synthetic3", "catalog device: synthetic3|hdd|wlan|sensor-radio|two-state")
		polName  = flag.String("policy", "q-dpm", "power-management policy")
		wlName   = flag.String("workload", "bernoulli", "arrival process: bernoulli|poisson|onoff|pareto")
		rate     = flag.Float64("rate", 0.1, "mean arrivals per slot")
		slotDur  = flag.Float64("slot", 0.5, "slot duration in seconds")
		slots    = flag.Int64("slots", 200000, "slots to simulate")
		seed     = flag.Uint64("seed", 1, "rng seed")
		queueCap = flag.Int("qcap", 8, "queue capacity")
		latW     = flag.Float64("latw", 0.3, "latency weight (J per request-slot)")
		timeout  = flag.Int64("timeout", 8, "timeout slots (timeout policy)")
	)
	flag.Parse()

	psm, err := device.Lookup(*devName)
	if err != nil {
		return err
	}
	dev, err := psm.Slot(*slotDur)
	if err != nil {
		return err
	}

	arr, err := buildWorkload(*wlName, *rate)
	if err != nil {
		return err
	}

	root := rng.New(*seed)
	polStream := root.Split()
	simStream := root.Split()

	pol, err := buildPolicy(*polName, dev, *queueCap, *latW, *rate, *timeout, polStream)
	if err != nil {
		return err
	}

	sim, err := slotsim.New(slotsim.Config{
		Device:        dev,
		Arrivals:      arr,
		QueueCap:      *queueCap,
		Policy:        pol,
		Stream:        simStream,
		LatencyWeight: *latW,
	})
	if err != nil {
		return err
	}
	m, err := sim.Run(*slots, nil)
	if err != nil {
		return err
	}

	maxPower := dev.MaxPowerEnergy() / dev.SlotDuration
	fmt.Printf("device        %s (%d states, slot %.3gs)\n", psm.Name, psm.NumStates(), dev.SlotDuration)
	fmt.Printf("workload      %s\n", arr)
	fmt.Printf("policy        %s\n", pol.Name())
	fmt.Printf("slots         %d (%.1f s simulated)\n", m.Slots, float64(m.Slots)*dev.SlotDuration)
	fmt.Printf("energy        %.2f J\n", m.EnergyJ)
	fmt.Printf("avg power     %.4f W (always-on %.4f W)\n", m.AvgPowerW(dev.SlotDuration), maxPower)
	fmt.Printf("energy red.   %.1f%%\n", 100*(1-m.AvgPowerW(dev.SlotDuration)/maxPower))
	fmt.Printf("avg cost      %.4f J/slot (energy + %.3g×backlog)\n", m.AvgCost(), *latW)
	fmt.Printf("requests      %d arrived, %d served, %d lost (%.2f%%)\n",
		m.Arrived, m.Served, m.Lost, 100*m.LossRate())
	fmt.Printf("mean wait     %.3f slots (%.3g s)\n", m.MeanWaitSlots(), m.MeanWaitSlots()*dev.SlotDuration)
	fmt.Printf("mean backlog  %.3f requests\n", m.MeanBacklog())
	fmt.Printf("commands      %d issued, %d clamped\n", m.Commands, m.Clamped)
	for i, s := range m.StateSlots {
		fmt.Printf("state %-10s %8d slots (%.1f%%)\n", psm.States[i].Name, s, 100*float64(s)/float64(m.Slots))
	}
	fmt.Printf("switching     %8d slots (%.1f%%)\n", m.TransitionSlots, 100*float64(m.TransitionSlots)/float64(m.Slots))
	return nil
}

func buildWorkload(name string, rate float64) (workload.Arrivals, error) {
	switch name {
	case "bernoulli":
		return workload.NewBernoulli(rate)
	case "poisson":
		return workload.NewPoisson(rate)
	case "onoff":
		// Bursty with the requested long-run rate: on-phase rate 4x,
		// silent 3/4 of the time.
		p := 4 * rate
		if p > 1 {
			p = 1
		}
		return workload.NewOnOff(p, 200, 600)
	case "pareto":
		// Heavy-tailed interarrivals with mean 1/rate slots.
		alpha := 1.5
		if rate <= 0 {
			return nil, fmt.Errorf("pareto workload needs rate > 0")
		}
		xm := (alpha - 1) / alpha / rate
		d, err := dist.NewPareto(xm, alpha)
		if err != nil {
			return nil, err
		}
		return workload.NewRenewal(d)
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func buildPolicy(name string, dev *device.Slotted, qcap int, latW, rate float64, timeout int64, stream *rng.Stream) (slotsim.Policy, error) {
	switch name {
	case "q-dpm", "q-dpm-sarsa", "q-dpm-double", "q-dpm-fuzzy", "q-dpm-qos":
		cfg := core.Config{
			Device: dev, QueueCap: qcap, LatencyWeight: latW, Stream: stream,
		}
		switch name {
		case "q-dpm-sarsa":
			cfg.Rule = qlearn.SARSA
		case "q-dpm-double":
			cfg.Rule = qlearn.DoubleQ
		case "q-dpm-fuzzy":
			cfg.Fuzzy = true
		case "q-dpm-qos":
			cfg.QoS = &core.QoSConfig{TargetBacklog: 0.5, Eta: 0.05}
		}
		return core.New(cfg)
	case "optimal":
		d, err := mdp.BuildDPM(mdp.DPMConfig{
			Device: dev, ArrivalP: rate, QueueCap: qcap, LatencyWeight: latW,
		})
		if err != nil {
			return nil, err
		}
		return policy.NewOptimalFromModel(d)
	case "adaptive-lp":
		return stochpm.NewAdaptive(stochpm.AdaptiveConfig{
			Device: dev, QueueCap: qcap, LatencyWeight: latW,
			InitialRate: rate, Stream: stream,
		})
	case "always-on":
		return policy.NewAlwaysOn(dev)
	case "greedy-off":
		return policy.NewGreedyOff(dev)
	case "timeout":
		return policy.NewFixedTimeout(dev, timeout)
	case "adaptive-timeout":
		return policy.NewAdaptiveTimeout(dev, timeout, 1, 128)
	case "predictive":
		return policy.NewPredictive(dev, 0.5)
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
