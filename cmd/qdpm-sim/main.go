// Command qdpm-sim runs one power-management simulation — or a pooled
// multi-replica comparison — and prints a metrics report:
//
//	qdpm-sim -device synthetic3 -policy q-dpm -rate 0.1 -slots 200000
//	qdpm-sim -device hdd -policy timeout -timeout 16 -workload onoff
//	qdpm-sim -device wlan -policy optimal -rate 0.3
//	qdpm-sim -policy q-dpm -replicas 16 -parallel 4   # pooled, 4 workers
//	qdpm-sim -mode ct -workload hyperexp -rate 0.1    # continuous time
//	qdpm-sim -mode ct -trace requests.txt             # trace playback
//
// With -replicas N > 1 the run fans N deterministic replicas (seeds
// derived from -seed) across the experiment engine's worker pool and
// reports pooled means with 95% confidence intervals; -parallel bounds
// the pool (0 = GOMAXPROCS). Results are bit-identical for every
// -parallel value.
//
// -mode ct switches to the event-driven continuous-time simulator
// (internal/ctsim): arrivals occur at real-valued times drawn from a
// renewal law (-workload exp|pareto|weibull|erlang|hyperexp|uniform; the
// per-slot -rate converts via -slot) or replayed from -trace, device
// transitions take their physical latencies, and the chosen policy runs
// under a -slot-period governor via the slotted-policy adapter. -horizon
// sets the run length in seconds (default -slots × -slot).
//
// Policies: q-dpm, q-dpm-sarsa, q-dpm-double, q-dpm-fuzzy, optimal,
// adaptive-lp, always-on, greedy-off, timeout, adaptive-timeout,
// predictive. Slotted workloads: bernoulli (default), poisson, onoff,
// pareto.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/mdp"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stochpm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qdpm-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		devName  = flag.String("device", "synthetic3", "catalog device: synthetic3|hdd|wlan|sensor-radio|two-state")
		polName  = flag.String("policy", "q-dpm", "power-management policy")
		wlName   = flag.String("workload", "bernoulli", "arrival process: bernoulli|poisson|onoff|pareto")
		rate     = flag.Float64("rate", 0.1, "mean arrivals per slot")
		slotDur  = flag.Float64("slot", 0.5, "slot duration in seconds")
		slots    = flag.Int64("slots", 200000, "slots to simulate")
		seed     = flag.Uint64("seed", 1, "rng seed (replica seeds derive from it when -replicas > 1)")
		queueCap = flag.Int("qcap", 8, "queue capacity")
		latW     = flag.Float64("latw", 0.3, "latency weight (J per request-slot)")
		timeout  = flag.Int64("timeout", 8, "timeout slots (timeout policy)")
		replicas = flag.Int("replicas", 1, "independent replicas to pool")
		parallel = flag.Int("parallel", 0, "worker-pool size for replicas (0 = GOMAXPROCS)")
		mode     = flag.String("mode", "slot", "simulator: slot (discrete-time) or ct (event-driven continuous time)")
		horizon  = flag.Float64("horizon", 0, "ct horizon in seconds (0 = slots×slot)")
		traceIn  = flag.String("trace", "", "ct mode: replay arrivals from this trace file instead of -workload")
	)
	flag.Parse()

	psm, err := device.Lookup(*devName)
	if err != nil {
		return err
	}
	dev, err := psm.Slot(*slotDur)
	if err != nil {
		return err
	}

	switch *mode {
	case "slot":
	case "ct":
		h := *horizon
		if h == 0 {
			h = float64(*slots) * *slotDur
		}
		return runCT(psm, dev, *polName, *wlName, *traceIn, *rate, *slotDur, h,
			*queueCap, *latW, *timeout, *seed, *replicas, *parallel)
	default:
		return fmt.Errorf("unknown mode %q (want slot or ct)", *mode)
	}

	arr, err := buildWorkload(*wlName, *rate)
	if err != nil {
		return err
	}

	sc := experiment.Scenario{
		Name:          *devName,
		Device:        dev,
		QueueCap:      *queueCap,
		LatencyWeight: *latW,
		Slots:         *slots,
		Workload:      arr.Clone,
	}
	pf := experiment.PolicyFactory{
		Name: *polName,
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return buildPolicy(*polName, dev, *queueCap, *latW, *rate, *timeout, stream)
		},
	}
	if *polName == "optimal" {
		// The optimal policy is stateless and its MDP solve is identical
		// for every replica: solve once, share across the pool.
		opt, err := buildPolicy(*polName, dev, *queueCap, *latW, *rate, *timeout, nil)
		if err != nil {
			return err
		}
		pf.New = func(*rng.Stream) (slotsim.Policy, error) { return opt, nil }
	}

	if *replicas > 1 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		seeds := engine.DeriveSeeds(*seed, *replicas)
		sum, err := experiment.RunReplicatedCtx(ctx, sc, pf, seeds, experiment.Parallel{Workers: *parallel})
		if err != nil {
			return err
		}
		maxPower := dev.MaxPowerEnergy() / dev.SlotDuration
		fmt.Printf("device        %s (%d states, slot %.3gs)\n", psm.Name, psm.NumStates(), dev.SlotDuration)
		fmt.Printf("workload      %s\n", arr)
		fmt.Printf("policy        %s\n", pf.Name)
		fmt.Printf("replicas      %d × %d slots (base seed %d)\n", sum.Replicas, *slots, *seed)
		fmt.Printf("avg power     %.4f ± %.4f W (always-on %.4f W)\n",
			sum.AvgPowerW.Mean(), sum.AvgPowerW.CI95(), maxPower)
		fmt.Printf("energy red.   %.1f%% ± %.1f%%\n",
			100*sum.EnergyReduction.Mean(), 100*sum.EnergyReduction.CI95())
		fmt.Printf("avg cost      %.4f ± %.4f J/slot\n", sum.AvgCost.Mean(), sum.AvgCost.CI95())
		fmt.Printf("mean wait     %.3f ± %.3f slots\n", sum.MeanWaitSlots.Mean(), sum.MeanWaitSlots.CI95())
		fmt.Printf("loss rate     %.3f%% ± %.3f%%\n", 100*sum.LossRate.Mean(), 100*sum.LossRate.CI95())
		return nil
	}

	m, err := experiment.RunOne(sc, pf, *seed, nil)
	if err != nil {
		return err
	}

	maxPower := dev.MaxPowerEnergy() / dev.SlotDuration
	fmt.Printf("device        %s (%d states, slot %.3gs)\n", psm.Name, psm.NumStates(), dev.SlotDuration)
	fmt.Printf("workload      %s\n", arr)
	fmt.Printf("policy        %s\n", pf.Name)
	fmt.Printf("slots         %d (%.1f s simulated)\n", m.Slots, float64(m.Slots)*dev.SlotDuration)
	fmt.Printf("energy        %.2f J\n", m.EnergyJ)
	fmt.Printf("avg power     %.4f W (always-on %.4f W)\n", m.AvgPowerW(dev.SlotDuration), maxPower)
	fmt.Printf("energy red.   %.1f%%\n", 100*(1-m.AvgPowerW(dev.SlotDuration)/maxPower))
	fmt.Printf("avg cost      %.4f J/slot (energy + %.3g×backlog)\n", m.AvgCost(), *latW)
	fmt.Printf("requests      %d arrived, %d served, %d lost (%.2f%%)\n",
		m.Arrived, m.Served, m.Lost, 100*m.LossRate())
	fmt.Printf("mean wait     %.3f slots (%.3g s)\n", m.MeanWaitSlots(), m.MeanWaitSlots()*dev.SlotDuration)
	fmt.Printf("mean backlog  %.3f requests\n", m.MeanBacklog())
	fmt.Printf("commands      %d issued, %d clamped\n", m.Commands, m.Clamped)
	for i, s := range m.StateSlots {
		fmt.Printf("state %-10s %8d slots (%.1f%%)\n", psm.States[i].Name, s, 100*float64(s)/float64(m.Slots))
	}
	fmt.Printf("switching     %8d slots (%.1f%%)\n", m.TransitionSlots, 100*float64(m.TransitionSlots)/float64(m.Slots))
	return nil
}

func buildWorkload(name string, rate float64) (workload.Arrivals, error) {
	switch name {
	case "bernoulli":
		return workload.NewBernoulli(rate)
	case "poisson":
		return workload.NewPoisson(rate)
	case "onoff":
		// Bursty with the requested long-run rate: on-phase rate 4x,
		// silent 3/4 of the time.
		p := 4 * rate
		if p > 1 {
			p = 1
		}
		return workload.NewOnOff(p, 200, 600)
	case "pareto":
		// Heavy-tailed interarrivals with mean 1/rate slots.
		alpha := 1.5
		if rate <= 0 {
			return nil, fmt.Errorf("pareto workload needs rate > 0")
		}
		xm := (alpha - 1) / alpha / rate
		d, err := dist.NewPareto(xm, alpha)
		if err != nil {
			return nil, err
		}
		return workload.NewRenewal(d)
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func buildPolicy(name string, dev *device.Slotted, qcap int, latW, rate float64, timeout int64, stream *rng.Stream) (slotsim.Policy, error) {
	switch name {
	case "q-dpm", "q-dpm-sarsa", "q-dpm-double", "q-dpm-fuzzy", "q-dpm-qos":
		cfg := core.Config{
			Device: dev, QueueCap: qcap, LatencyWeight: latW, Stream: stream,
		}
		switch name {
		case "q-dpm-sarsa":
			cfg.Rule = qlearn.SARSA
		case "q-dpm-double":
			cfg.Rule = qlearn.DoubleQ
		case "q-dpm-fuzzy":
			cfg.Fuzzy = true
		case "q-dpm-qos":
			cfg.QoS = &core.QoSConfig{TargetBacklog: 0.5, Eta: 0.05}
		}
		return core.New(cfg)
	case "optimal":
		d, err := mdp.BuildDPM(mdp.DPMConfig{
			Device: dev, ArrivalP: rate, QueueCap: qcap, LatencyWeight: latW,
		})
		if err != nil {
			return nil, err
		}
		return policy.NewOptimalFromModel(d)
	case "adaptive-lp":
		return stochpm.NewAdaptive(stochpm.AdaptiveConfig{
			Device: dev, QueueCap: qcap, LatencyWeight: latW,
			InitialRate: rate, Stream: stream,
		})
	case "always-on":
		return policy.NewAlwaysOn(dev)
	case "greedy-off":
		return policy.NewGreedyOff(dev)
	case "timeout":
		return policy.NewFixedTimeout(dev, timeout)
	case "adaptive-timeout":
		return policy.NewAdaptiveTimeout(dev, timeout, 1, 128)
	case "predictive":
		return policy.NewPredictive(dev, 0.5)
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// buildCTSource maps a workload name (a dist.ByName law; bernoulli and
// poisson degrade gracefully to their continuous limit, the Poisson
// process) or a trace file to a continuous-time arrival source factory.
// ratePerSec is the arrival rate in requests per second.
func buildCTSource(name, traceFile string, ratePerSec float64) (func() (ctsim.Source, error), string, error) {
	if traceFile != "" {
		tr, err := trace.ReadFile(traceFile)
		if err != nil {
			return nil, "", err
		}
		desc := fmt.Sprintf("trace %s (%d requests over %.1f s)", traceFile, tr.Len(), tr.Duration())
		return func() (ctsim.Source, error) { return ctsim.NewTraceSource(tr) }, desc, nil
	}
	switch name {
	case "bernoulli", "poisson":
		name = "exp"
	}
	d, err := dist.ByName(name, ratePerSec)
	if err != nil {
		return nil, "", err
	}
	return func() (ctsim.Source, error) { return ctsim.NewRenewalSource(d) }, d.String(), nil
}

// runCT drives the event-driven continuous-time simulator with the chosen
// slotted policy adapted onto a slotDur-period governor.
func runCT(psm *device.PSM, dev *device.Slotted, polName, wlName, traceFile string,
	ratePerSlot, slotDur, horizon float64, queueCap int, latW float64,
	timeout int64, seed uint64, replicas, parallel int) error {

	srcFactory, srcDesc, err := buildCTSource(wlName, traceFile, ratePerSlot/slotDur)
	if err != nil {
		return err
	}
	sc := experiment.CTScenario{
		Name:          psm.Name,
		Device:        psm,
		QueueCap:      queueCap,
		LatencyWeight: latW / slotDur, // J/request-slot → J/request-second
		Horizon:       horizon,
		Period:        slotDur,
		Source: func() ctsim.Source {
			src, err := srcFactory()
			if err != nil {
				panic(err) // factory inputs validated above
			}
			return src
		},
	}
	pf := experiment.PolicyFactory{
		Name: polName,
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return buildPolicy(polName, dev, queueCap, latW, ratePerSlot, timeout, stream)
		},
	}

	maxPower := psm.MaxPower()
	fmt.Printf("device        %s (%d states, continuous time, %.3gs governor)\n",
		psm.Name, psm.NumStates(), slotDur)
	fmt.Printf("arrivals      %s\n", srcDesc)
	fmt.Printf("policy        %s\n", pf.Name)

	if replicas > 1 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		seeds := engine.DeriveSeeds(seed, replicas)
		sum, err := experiment.RunCTReplicatedCtx(ctx, sc, pf, seeds, experiment.Parallel{Workers: parallel})
		if err != nil {
			return err
		}
		fmt.Printf("replicas      %d × %.0f s (base seed %d)\n", sum.Replicas, horizon, seed)
		fmt.Printf("avg power     %.4f ± %.4f W (always-on %.4f W)\n",
			sum.AvgPowerW.Mean(), sum.AvgPowerW.CI95(), maxPower)
		fmt.Printf("energy red.   %.1f%% ± %.1f%%\n",
			100*sum.EnergyReduction.Mean(), 100*sum.EnergyReduction.CI95())
		fmt.Printf("mean wait     %.3f ± %.3f s\n", sum.MeanWaitSec.Mean(), sum.MeanWaitSec.CI95())
		fmt.Printf("loss rate     %.3f%% ± %.3f%%\n", 100*sum.LossRate.Mean(), 100*sum.LossRate.CI95())
		return nil
	}

	m, err := experiment.RunCTOne(sc, pf, seed)
	if err != nil {
		return err
	}
	fmt.Printf("horizon       %.1f s\n", m.Horizon)
	fmt.Printf("energy        %.2f J\n", m.EnergyJ)
	fmt.Printf("avg power     %.4f W (always-on %.4f W)\n", m.AvgPowerW(), maxPower)
	fmt.Printf("energy red.   %.1f%%\n", 100*(1-m.AvgPowerW()/maxPower))
	fmt.Printf("requests      %d arrived, %d served, %d lost (%.2f%%)\n",
		m.Arrived, m.Served, m.Lost, 100*m.LossRate())
	fmt.Printf("mean wait     %.3f s\n", m.MeanWaitSeconds())
	fmt.Printf("mean backlog  %.3f requests\n", m.MeanBacklog())
	fmt.Printf("decisions     %d (%d commands, %d clamped)\n", m.Decisions, m.Commands, m.Clamped)
	for i, st := range m.StateTime {
		fmt.Printf("state %-10s %10.1f s (%.1f%%)\n", psm.States[i].Name, st, 100*st/m.Horizon)
	}
	fmt.Printf("switching     %10.1f s (%.1f%%)\n", m.TransitionTime, 100*m.TransitionTime/m.Horizon)
	return nil
}
