package main

import (
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
)

func TestBuildWorkloadAllKinds(t *testing.T) {
	for _, name := range []string{"bernoulli", "poisson", "onoff", "pareto"} {
		arr, err := buildWorkload(name, 0.2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		s := rng.New(1)
		for i := 0; i < 100; i++ {
			if c := arr.Next(s); c < 0 {
				t.Errorf("%s emitted negative count", name)
			}
		}
	}
	if _, err := buildWorkload("nope", 0.2); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := buildWorkload("pareto", 0); err == nil {
		t.Error("pareto with rate 0 accepted")
	}
	// On/off clamps the burst rate at 1.
	if _, err := buildWorkload("onoff", 0.5); err != nil {
		t.Errorf("onoff at high rate: %v", err)
	}
}

func TestBuildPolicyAllKinds(t *testing.T) {
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"q-dpm", "q-dpm-sarsa", "q-dpm-double", "q-dpm-fuzzy", "q-dpm-qos",
		"optimal", "adaptive-lp", "always-on", "greedy-off",
		"timeout", "adaptive-timeout", "predictive",
	}
	for _, name := range names {
		pol, err := buildPolicy(name, dev, 8, 0.3, 0.1, 8, rng.New(1))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if pol.Name() == "" {
			t.Errorf("%s: empty policy name", name)
		}
	}
	if _, err := buildPolicy("nope", dev, 8, 0.3, 0.1, 8, rng.New(1)); err == nil {
		t.Error("unknown policy accepted")
	}
}
