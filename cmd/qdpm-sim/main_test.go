package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/trace"
)

func TestBuildWorkloadAllKinds(t *testing.T) {
	for _, name := range []string{"bernoulli", "poisson", "onoff", "pareto"} {
		arr, err := buildWorkload(name, 0.2)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		s := rng.New(1)
		for i := 0; i < 100; i++ {
			if c := arr.Next(s); c < 0 {
				t.Errorf("%s emitted negative count", name)
			}
		}
	}
	if _, err := buildWorkload("nope", 0.2); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := buildWorkload("pareto", 0); err == nil {
		t.Error("pareto with rate 0 accepted")
	}
	// On/off clamps the burst rate at 1.
	if _, err := buildWorkload("onoff", 0.5); err != nil {
		t.Errorf("onoff at high rate: %v", err)
	}
}

func TestBuildPolicyAllKinds(t *testing.T) {
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"q-dpm", "q-dpm-sarsa", "q-dpm-double", "q-dpm-fuzzy", "q-dpm-qos",
		"optimal", "adaptive-lp", "always-on", "greedy-off",
		"timeout", "adaptive-timeout", "predictive",
	}
	for _, name := range names {
		pol, err := buildPolicy(name, dev, 8, 0.3, 0.1, 8, rng.New(1))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if pol.Name() == "" {
			t.Errorf("%s: empty policy name", name)
		}
	}
	if _, err := buildPolicy("nope", dev, 8, 0.3, 0.1, 8, rng.New(1)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestBuildCTSourceAllKinds(t *testing.T) {
	for _, name := range []string{"bernoulli", "poisson", "exp", "pareto", "weibull", "erlang", "hyperexp", "uniform"} {
		factory, desc, err := buildCTSource(name, "", 0.5)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if desc == "" {
			t.Errorf("%s: empty source description", name)
		}
		src, err := factory()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		s := rng.New(1)
		prev := 0.0
		for i := 0; i < 50; i++ {
			tt := src.Next(s)
			if tt < prev {
				t.Errorf("%s: arrival times not monotone (%v after %v)", name, tt, prev)
				break
			}
			prev = tt
		}
	}
	if _, _, err := buildCTSource("nope", "", 1); err == nil {
		t.Error("unknown ct workload accepted")
	}
	if _, _, err := buildCTSource("exp", "/nonexistent/trace", 1); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestBuildCTSourceTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	tr := &trace.Trace{Times: []float64{0.5, 1.5, 4}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteText(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	factory, _, err := buildCTSource("exp", path, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(1)
	for _, want := range tr.Times {
		if got := src.Next(s); got != want {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
	if got := src.Next(s); !math.IsInf(got, 1) {
		t.Fatalf("exhausted trace returned %v, want +Inf", got)
	}
}
