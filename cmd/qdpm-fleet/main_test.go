package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunDeterministicAcrossPools: the CLI's stdout is bit-identical
// between serial and pooled runs — the property CI diffs.
func TestRunDeterministicAcrossPools(t *testing.T) {
	base := []string{"-devices", "60", "-horizon", "40", "-seed", "5"}
	var serial, pooled bytes.Buffer
	if err := run(context.Background(), &serial, append(base, "-parallel", "1")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &pooled, append(base, "-parallel", "4")); err != nil {
		t.Fatal(err)
	}
	if serial.String() != pooled.String() {
		t.Fatalf("output differs between -parallel 1 and 4:\n%s\nvs\n%s", serial.String(), pooled.String())
	}
	if !strings.Contains(serial.String(), "Table Fleet") {
		t.Fatalf("missing table header:\n%s", serial.String())
	}
}

// TestRunJSONReport: the -json report parses and its totals are
// consistent with the flags.
func TestRunJSONReport(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-devices", "30", "-horizon", "30", "-mode", "slot", "-replicas", "2", "-json"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Devices != 60 || rep.Replicas != 2 || rep.Mode != "slot" {
		t.Fatalf("report totals wrong: %+v", rep)
	}
	if len(rep.Classes) != 4 || len(rep.Policies) != 3 {
		t.Fatalf("report breakdowns wrong: %d classes, %d policies", len(rep.Classes), len(rep.Policies))
	}
	if rep.WaitP99Sec < rep.WaitP50Sec {
		t.Fatalf("wait percentiles disordered: %+v", rep)
	}
}

// TestRunCustomMix: -mix overrides the canonical classes.
func TestRunCustomMix(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-devices", "10", "-horizon", "20",
		"-mix", "hdd:exp:0.08:timeout=4,wlan:exp:1:greedy-off", "-json"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("custom mix produced %d classes, want 2", len(rep.Classes))
	}
	if rep.Classes[0].Policy != "timeout=4" || rep.Classes[1].Policy != "greedy-off" {
		t.Fatalf("custom mix policies wrong: %+v", rep.Classes)
	}
}

// TestRunRejectsBadFlags: malformed inputs error out instead of
// producing a half-configured fleet.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-mix", "hdd:exp"},
		{"-mode", "quantum"},
		{"-devices", "0"},
		{"-replicas", "0"},
		{"-horizon", "-1"},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), &out, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunQuantileModes: sketch is the default and reports quantiles
// within the documented bound of an exact-mode run of the same fleet;
// exact mode labels its report; bad modes are rejected.
func TestRunQuantileModes(t *testing.T) {
	base := []string{"-devices", "400", "-horizon", "30", "-seed", "9", "-json"}
	var sk, ex bytes.Buffer
	if err := run(context.Background(), &sk, base); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &ex, append(base, "-quantiles", "exact")); err != nil {
		t.Fatal(err)
	}
	var rsk, rex jsonReport
	if err := json.Unmarshal(sk.Bytes(), &rsk); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(ex.Bytes(), &rex); err != nil {
		t.Fatal(err)
	}
	if rsk.Quantiles != "sketch" || rex.Quantiles != "exact" {
		t.Fatalf("quantile labels wrong: %q / %q", rsk.Quantiles, rex.Quantiles)
	}
	// Same fleet, same seeds: everything but the percentile estimator is
	// identical, and the sketch must sit within its 1% bound.
	if rsk.EnergyJ != rex.EnergyJ || rsk.Arrived != rex.Arrived {
		t.Fatalf("quantile mode changed simulation results: %+v vs %+v", rsk, rex)
	}
	for _, pair := range [][2]float64{
		{rsk.WaitP50Sec, rex.WaitP50Sec},
		{rsk.WaitP90Sec, rex.WaitP90Sec},
		{rsk.WaitP99Sec, rex.WaitP99Sec},
	} {
		// The exact side interpolates between the order statistics the
		// sketch brackets, so allow the bound plus interpolation slack.
		if d := pair[0] - pair[1]; d > 0.05*pair[1]+1e-9 || d < -0.05*pair[1]-1e-9 {
			t.Fatalf("sketch percentile %v too far from exact %v", pair[0], pair[1])
		}
	}
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-devices", "10", "-quantiles", "bogus"}); err == nil {
		t.Fatal("bogus -quantiles accepted")
	}
}

// TestRunProgressFlag: -progress must not perturb stdout (the CI-diffed
// surface) and the run still succeeds.
// TestRunProfileFlags: -cpuprofile and -memprofile write non-empty
// pprof files on exit without touching stdout (the profiled run's
// report is bit-identical to an unprofiled one).
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	base := []string{"-devices", "50", "-horizon", "20", "-seed", "3"}
	var plain, profiled bytes.Buffer
	if err := run(context.Background(), &plain, base); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &profiled,
		append(base, "-cpuprofile", cpu, "-memprofile", mem)); err != nil {
		t.Fatal(err)
	}
	if plain.String() != profiled.String() {
		t.Fatal("profiling changed stdout")
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// An unwritable profile path is a startup error, reported before any
	// simulation work.
	if err := run(context.Background(), &plain,
		append(base, "-cpuprofile", filepath.Join(dir, "no/such/dir/cpu.pb"))); err == nil {
		t.Fatal("unwritable -cpuprofile path accepted")
	}
}

func TestRunProgressFlag(t *testing.T) {
	base := []string{"-devices", "50", "-horizon", "20", "-seed", "3"}
	var plain, progress bytes.Buffer
	if err := run(context.Background(), &plain, base); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &progress, append(base, "-progress")); err != nil {
		t.Fatal(err)
	}
	if plain.String() != progress.String() {
		t.Fatal("-progress changed stdout")
	}
}
