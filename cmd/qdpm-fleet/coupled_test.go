package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunUncoupledMatchesPR6Golden pins the "coupling off ≡ pre-refactor
// output" contract: with no -couple and no -kernel override, stdout is
// byte-identical to the output the PR 6 binary produced for the same
// flags (testdata goldens captured from that build). This is what
// licenses the multi-layer refactor — the injected-kernel constructors,
// the resource hook, and the summary's interference fields must all be
// invisible until coupling is switched on.
func TestRunUncoupledMatchesPR6Golden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"golden_pr6_ct2k.txt", []string{"-devices", "2000", "-mode", "ct", "-horizon", "120", "-seed", "1"}},
		{"golden_pr6_slot500.txt", []string{"-devices", "500", "-mode", "slot", "-horizon", "120", "-seed", "1"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := run(context.Background(), &out, tc.args); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("uncoupled output drifted from the PR 6 golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					tc.golden, out.Bytes(), want)
			}
		})
	}
}

// TestRunCoupledDeterministicAcrossPools: the coupled CLI surface is
// bit-identical between serial and pooled runs for every shared
// resource — the acceptance-criteria diff, at test scale.
func TestRunCoupledDeterministicAcrossPools(t *testing.T) {
	for _, couple := range []string{"channel", "gateway", "power"} {
		t.Run(couple, func(t *testing.T) {
			base := []string{"-devices", "60", "-horizon", "40", "-seed", "5",
				"-couple", couple, "-couple-size", "4", "-shard", "12"}
			var serial, pooled bytes.Buffer
			if err := run(context.Background(), &serial, append(base, "-parallel", "1")); err != nil {
				t.Fatal(err)
			}
			if err := run(context.Background(), &pooled, append(base, "-parallel", "4")); err != nil {
				t.Fatal(err)
			}
			if serial.String() != pooled.String() {
				t.Fatalf("coupled output differs between -parallel 1 and 4:\n%s\nvs\n%s", serial.String(), pooled.String())
			}
		})
	}
}

// TestRunKernelFlagOutputIdentity: -kernel calendar produces stdout
// byte-identical to the default heap backing (the two kernels fire in
// the same (time, seq) order), uncoupled and coupled; bogus kinds are
// rejected.
func TestRunKernelFlagOutputIdentity(t *testing.T) {
	cases := map[string][]string{
		"uncoupled": {"-devices", "80", "-horizon", "40", "-seed", "5"},
		"coupled":   {"-devices", "80", "-horizon", "40", "-seed", "5", "-couple", "channel"},
	}
	for name, base := range cases {
		t.Run(name, func(t *testing.T) {
			var heap, cal bytes.Buffer
			if err := run(context.Background(), &heap, append(base, "-kernel", "heap")); err != nil {
				t.Fatal(err)
			}
			if err := run(context.Background(), &cal, append(base, "-kernel", "calendar")); err != nil {
				t.Fatal(err)
			}
			if heap.String() != cal.String() {
				t.Fatalf("output differs across -kernel kinds:\n%s\nvs\n%s", heap.String(), cal.String())
			}
		})
	}
	var out bytes.Buffer
	if err := run(context.Background(), &out, []string{"-devices", "10", "-kernel", "splay"}); err == nil {
		t.Fatal("bogus -kernel accepted")
	}
}

// TestRunCoupledJSONReport: the coupled -json report carries the
// coupling echo and interference blocks, fleet-level and per group;
// uncoupled JSON omits them entirely (the omitempty contract keeping
// pre-coupling reports byte-identical).
func TestRunCoupledJSONReport(t *testing.T) {
	var coupled, plain bytes.Buffer
	base := []string{"-devices", "60", "-horizon", "60", "-seed", "5", "-json"}
	if err := run(context.Background(), &coupled, append(base, "-couple", "channel", "-couple-size", "4", "-shard", "12")); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), &plain, base); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(coupled.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, coupled.String())
	}
	if rep.Couple != "channel" || rep.CoupleSize != 4 {
		t.Fatalf("coupling echo wrong: %+v", rep)
	}
	if rep.Interference == nil || !(rep.Interference.ResourceWaitMeanSec > 0) {
		t.Fatalf("fleet interference block missing or empty: %+v", rep.Interference)
	}
	for _, g := range append(rep.Classes, rep.Policies...) {
		if g.Interference == nil {
			t.Fatalf("group %s lacks an interference block", g.Name)
		}
	}
	if bytes.Contains(plain.Bytes(), []byte("interference")) || bytes.Contains(plain.Bytes(), []byte("couple")) {
		t.Fatalf("uncoupled JSON leaks coupling fields:\n%s", plain.String())
	}
	// Bad coupling flags are startup errors.
	for _, args := range [][]string{
		{"-devices", "10", "-couple", "mesh"},
		{"-devices", "10", "-couple", "channel", "-mode", "slot"},
		{"-devices", "10", "-couple-size", "4"},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), &out, args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
