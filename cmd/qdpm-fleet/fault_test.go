package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunUnfaultedMatchesPR7Golden pins the "faults off ≡ pre-fault
// output" contract: with no -faults flag, stdout is byte-identical to
// the output the PR 7 binary produced for the same flags (testdata
// goldens captured from that build). This is what licenses threading
// the fault layer through the sim, the coupled driver, and the summary
// — it must all be invisible until -faults is switched on.
func TestRunUnfaultedMatchesPR7Golden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"golden_pr7_coupled_ch1k.txt", []string{
			"-devices", "1000", "-horizon", "120", "-couple", "channel", "-couple-size", "8", "-seed", "1"}},
		{"golden_pr7_power600.json", []string{
			"-devices", "600", "-horizon", "120", "-couple", "power", "-seed", "2", "-json"}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := run(context.Background(), &out, tc.args); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("unfaulted output drifted from the PR 7 golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					tc.golden, out.Bytes(), want)
			}
		})
	}
}

// TestRunFaultedDeterministicAcrossPools: the faulted CLI surface is
// bit-identical between serial and pooled runs, uncoupled and for every
// outage-bearing shared resource — the acceptance-criteria diff, at
// test scale.
func TestRunFaultedDeterministicAcrossPools(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"uncoupled", []string{
			"-devices", "80", "-horizon", "60", "-seed", "3",
			"-faults", "mtbf=50,repair=6,fail=0.1"}},
		{"channel-outage", []string{
			"-devices", "80", "-horizon", "60", "-seed", "3",
			"-couple", "channel", "-couple-size", "8",
			"-faults", "mtbf=50,repair=6,fail=0.1,outage=20/4"}},
		{"power-brownout", []string{
			"-devices", "80", "-horizon", "60", "-seed", "3",
			"-couple", "power", "-couple-size", "8",
			"-faults", "outage=20/4,brownout=0.3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var serial, pooled bytes.Buffer
			if err := run(context.Background(), &serial, append(tc.args, "-parallel", "1")); err != nil {
				t.Fatal(err)
			}
			if err := run(context.Background(), &pooled, append(tc.args, "-parallel", "4")); err != nil {
				t.Fatal(err)
			}
			if serial.String() != pooled.String() {
				t.Fatalf("faulted output differs between -parallel 1 and 4:\n%s\nvs\n%s",
					serial.String(), pooled.String())
			}
			if !strings.Contains(serial.String(), "faulted") {
				t.Fatalf("faulted run missing 'faulted' marker:\n%s", serial.String())
			}
		})
	}
}

// TestRunFaultedJSONReport: -faults grows the JSON report a resilience
// block at fleet and group level, with internally consistent numbers.
func TestRunFaultedJSONReport(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-devices", "80", "-horizon", "60", "-seed", "3",
		"-faults", "mtbf=50,repair=6,fail=0.1", "-json"}
	if err := run(context.Background(), &out, args); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if rep.Resilience == nil {
		t.Fatalf("faulted report missing resilience block:\n%s", out.String())
	}
	r := rep.Resilience
	if r.Availability <= 0 || r.Availability >= 1 {
		t.Fatalf("availability %v not in (0,1)", r.Availability)
	}
	if r.Crashes == 0 || r.Retries == 0 {
		t.Fatalf("faulted run accrued no crashes/retries: %+v", r)
	}
	var crashes int64
	for _, g := range rep.Classes {
		if g.Resilience == nil {
			t.Fatalf("class %s missing resilience block", g.Name)
		}
		crashes += g.Resilience.Crashes
	}
	if crashes != r.Crashes {
		t.Fatalf("class crashes sum %d != fleet crashes %d", crashes, r.Crashes)
	}

	// The unfaulted report must not carry the block at all (omitempty).
	out.Reset()
	if err := run(context.Background(), &out,
		[]string{"-devices", "80", "-horizon", "60", "-seed", "3", "-json"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "resilience") {
		t.Fatalf("unfaulted JSON leaked a resilience block:\n%s", out.String())
	}
}

// TestRunTimeoutFlag: an unmeetable -timeout aborts the run with an
// error naming the deadline and the shards completed, instead of
// hanging or reporting a truncated fleet as complete.
func TestRunTimeoutFlag(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-devices", "50000", "-horizon", "600", "-timeout", "1ms"}
	err := run(context.Background(), &out, args)
	if err == nil {
		t.Fatal("1ms timeout on a 50k-device run did not error")
	}
	if !strings.Contains(err.Error(), "wall-clock timeout") ||
		!strings.Contains(err.Error(), "shards") {
		t.Fatalf("timeout error lacks deadline/shard report: %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("timed-out run still wrote a report:\n%s", out.String())
	}
}

// TestRunRejectsBadFaults: malformed -faults strings and outage flags
// without a shared resource error out before any simulation runs.
func TestRunRejectsBadFaults(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "mtbf=banana"},
		{"-faults", "warp=9"},
		{"-faults", "outage=60/5"}, // outage needs -couple
	} {
		var out bytes.Buffer
		if err := run(context.Background(), &out, append([]string{"-devices", "10", "-horizon", "10"}, args...)); err == nil {
			t.Fatalf("args %v did not error", args)
		}
	}
}
