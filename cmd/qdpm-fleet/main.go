// Command qdpm-fleet simulates a fleet of heterogeneous power-managed
// devices — catalog devices under mixed interarrival laws and mixed
// policies — sharded across the worker pool, and reports fleet-level
// energy, latency percentiles, loss, and per-class/per-policy
// breakdowns:
//
//	qdpm-fleet -devices 10000                      # canonical mix, CT kernel
//	qdpm-fleet -devices 2000 -mode slot            # slotted kernel
//	qdpm-fleet -mix hdd:exp:0.08:timeout=8:2,wlan:hyperexp:2:q-dpm
//	qdpm-fleet -devices 5000 -replicas 4 -json     # machine-readable output
//	qdpm-fleet -devices 1000000 -progress          # million-device run,
//	                                               # periodic devices/s
//	qdpm-fleet -devices 2000 -quantiles exact      # exact order statistics
//	qdpm-fleet -devices 10000 -couple channel -couple-size 8
//	                                               # groups of 8 sharing one
//	                                               # clock and channel
//	qdpm-fleet -devices 10000 -kernel calendar     # calendar-queue backing
//	qdpm-fleet -devices 10000 -faults mtbf=150,repair=10,fail=0.05
//	                                               # crash/repair cycles +
//	                                               # transient retry/backoff
//	qdpm-fleet -devices 10000 -couple channel -faults outage=60/5
//	                                               # scheduled channel jams
//	qdpm-fleet -devices 1000000 -timeout 10m       # wall-clock deadline
//
// Coupled mode (-couple channel|gateway|power) advances groups of
// -couple-size consecutive instances on one shared event kernel with a
// shared resource arbitrating service starts and power commands, and
// adds per-class cross-device interference metrics (contention wait,
// gateway drops, budget denials) to the report. Uncoupled output is
// byte-identical to earlier releases, coupled or not -parallel.
//
// Fault injection (-faults, see fleet.ParseFaults for the grammar) adds
// deterministic device crash/repair cycles, transient service failures
// with bounded exponential-backoff retries, and — on coupled runs —
// scheduled outage windows on the shared resource (channel jams,
// gateway downtime, power brownouts via brownout=). The report grows
// availability/crash/retry columns and the JSON a "resilience" block;
// a run without -faults stays byte-identical to earlier releases. A
// shard that fails no longer kills the run: the report covers the
// surviving shards and the command exits nonzero with a partial-failure
// report naming the failed shards and their instance ranges.
//
// Wait percentiles default to the mergeable log-binned sketch (1%
// relative error, memory independent of the device count — the setting
// that makes -devices 1000000 a time budget, not a memory budget);
// -quantiles exact opts small fleets into exact order statistics.
// Output on stdout is bit-identical for every -parallel value (CI diffs
// serial against pooled); wall-clock throughput goes to stderr.
//
// -cpuprofile and -memprofile write pprof profiles of the run on exit
// (the heap profile is taken after the fleet completes). Profiling never
// touches stdout, so a profiled run's report stays bit-identical to an
// unprofiled one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fleet"
)

func main() {
	if err := run(context.Background(), os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "qdpm-fleet: %v\n", err)
		os.Exit(1)
	}
}

// run parses args, executes the fleet, and writes the report to w.
func run(ctx context.Context, w io.Writer, args []string) error {
	fs := flag.NewFlagSet("qdpm-fleet", flag.ContinueOnError)
	var (
		devices  = fs.Int("devices", 1000, "number of device instances")
		mixStr   = fs.String("mix", "", "fleet mix: device:dist:rate:policy[:weight],... (default: canonical heterogeneous mix)")
		mode     = fs.String("mode", "ct", "simulation kernel: ct (event-driven) or slot (discrete-time)")
		horizon  = fs.Float64("horizon", 400, "per-instance horizon in seconds")
		period   = fs.Float64("period", 0, "governor tick / slot duration in seconds (0 = canonical 0.5)")
		queueCap = fs.Int("qcap", 0, "queue capacity per instance (0 = canonical 8)")
		latW     = fs.Float64("latw", 0, "latency weight in J per request-slot (0 = canonical 0.3)")
		shard    = fs.Int("shard", 0, "instances per pool job (0 = default 128; coupled runs round the default up to a -couple-size multiple)")
		kernel   = fs.String("kernel", "auto", "CT event-queue backing: auto, heap, or calendar (output is bit-identical across all)")
		couple   = fs.String("couple", "", "coupled mode's shared resource: channel, gateway, or power (default: uncoupled independent instances; CT mode only)")
		coupleK  = fs.Int("couple-size", 0, "instances per coupled group sharing one kernel and resource (0 = default 8 when -couple is set)")
		budgetF  = fs.Float64("budget-frac", 0, "power-budget cap as a fraction of each group's summed always-on power (0 = default 0.5; -couple power only)")
		gateWait = fs.Int("gateway-wait", 0, "gateway wait-room bound (0 = default 2; -couple gateway only)")
		faultStr = fs.String("faults", "", "fault injection: mtbf=,repair=,fail=,retries=,backoff=,outage=period[/dur],brownout= (default: no faults; outage needs -couple)")
		timeout  = fs.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none); on expiry the run aborts with an error naming the shards completed")
		seed     = fs.Uint64("seed", 1, "base seed; replica seeds derive from it")
		replicas = fs.Int("replicas", 1, "independent fleet replications to pool")
		parallel = fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS, 1 = serial)")
		asJSON   = fs.Bool("json", false, "emit a JSON report instead of the table")
		quant    = fs.String("quantiles", "sketch", "wait percentiles: sketch (mergeable log-binned, 1% relative error, memory independent of -devices) or exact (order statistics, O(devices) memory)")
		progress = fs.Bool("progress", false, "print periodic devices/s progress to stderr (for long million-device runs)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	classes := fleet.DefaultMix()
	if *mixStr != "" {
		var err error
		if classes, err = fleet.ParseMix(*mixStr); err != nil {
			return err
		}
	}
	var faults *fleet.FaultSpec
	if *faultStr != "" {
		var err error
		if faults, err = fleet.ParseFaults(*faultStr); err != nil {
			return err
		}
	}
	if *replicas < 1 {
		return fmt.Errorf("replicas %d must be >= 1", *replicas)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// Registered up front so the heap snapshot lands even on error
		// exits; taken after the run, when the steady-state footprint
		// (pooled worker scratch, shard-summary window) is what's live.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qdpm-fleet: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qdpm-fleet: memprofile: %v\n", err)
			}
		}()
	}
	sc := experiment.FleetScenario{
		Name: "fleet",
		Spec: fleet.Spec{
			Devices:       *devices,
			Classes:       classes,
			Mode:          fleet.Mode(*mode),
			Horizon:       *horizon,
			Period:        *period,
			QueueCap:      *queueCap,
			LatencyWeight: *latW,
			ShardSize:     *shard,
			Quantiles:     fleet.QuantileMode(*quant),
			Kernel:        fleet.KernelKind(*kernel),
			Couple:        fleet.CoupleMode(*couple),
			CoupleSize:    *coupleK,
			BudgetFrac:    *budgetF,
			GatewayWait:   *gateWait,
			Faults:        faults,
		},
	}
	par := experiment.Parallel{Workers: *parallel}
	if *progress {
		// Periodic devices/s to stderr (throttled to ~1/s): replicas run
		// sequentially and each restarts its shard counter at 1, so a
		// replica's shards are banked into prevShards the moment its
		// last shard folds. The shard grid is uniform, so done/total is
		// the fraction of the current replica's devices already folded.
		start := time.Now()
		var last time.Time
		prevShards := 0
		par.Progress = func(done, total int) {
			shardsDone := prevShards + done
			if done == total {
				prevShards += total
			}
			now := time.Now()
			if now.Sub(last) < time.Second && done != total {
				return
			}
			last = now
			devicesDone := float64(shardsDone) / float64(total) * float64(*devices)
			fmt.Fprintf(os.Stderr, "\r# %.0f devices done (%.0f devices/s)",
				devicesDone, devicesDone/now.Sub(start).Seconds())
		}
	}

	// shardsDone counts folded shards cumulatively across replicas (the
	// engine serializes Progress calls, one per shard) so the -timeout
	// error can say how far the run got. Chains any -progress reporter.
	shardsDone := 0
	{
		prev := par.Progress
		par.Progress = func(done, total int) {
			shardsDone++
			if prev != nil {
				prev(done, total)
			}
		}
	}

	// Ctrl-C cancels the pool; shards poll the context between chunks.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	sum, err := experiment.RunFleetReplicatedCtx(ctx, sc, engine.DeriveSeeds(*seed, *replicas), par)
	if *progress {
		fmt.Fprintln(os.Stderr) // terminate the \r-overwritten progress line
	}
	if err != nil {
		if *timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("wall-clock timeout %v exceeded after %d shards", *timeout, shardsDone)
		}
		if sum == nil {
			return err
		}
		// Partial failure: report the surviving shards, then exit nonzero
		// with the casualty list (deferred below so profiles still land).
	}
	elapsed := time.Since(start)

	if *asJSON {
		if jerr := writeJSON(w, sum, sc.Spec.Quantiles); jerr != nil {
			return jerr
		}
	} else {
		tab, terr := experiment.FleetTable(sum)
		if terr != nil {
			return terr
		}
		experiment.RenderTable(w, tab.Title, tab.Headers, tab.Rows)
		fmt.Fprintf(w, "# %s\n", tab.Note)
	}
	// Wall-clock figures of merit go to stderr: stdout must stay
	// bit-identical across -parallel values.
	fmt.Fprintf(os.Stderr, "# %d devices in %v — %.0f devices/s, %.1f ns/event\n",
		sum.Fleet.Devices, elapsed.Round(time.Millisecond),
		float64(sum.Fleet.Devices)/elapsed.Seconds(),
		float64(elapsed.Nanoseconds())/float64(max(sum.Fleet.Events, 1)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "# PARTIAL RESULT: the report above covers surviving shards only")
		return fmt.Errorf("partial failure: %w", err)
	}
	return nil
}

// jsonGroup is one aggregate row of the JSON report.
type jsonGroup struct {
	Name            string  `json:"name"`
	Policy          string  `json:"policy"`
	Instances       int64   `json:"instances"`
	PowerW          float64 `json:"power_w"`
	PowerCI95       float64 `json:"power_ci95"`
	EnergyReduction float64 `json:"energy_reduction"`
	MeanWaitSec     float64 `json:"mean_wait_sec"`
	LossRate        float64 `json:"loss_rate"`
	// Interference is present only on coupled runs, keeping uncoupled
	// JSON byte-identical to the pre-coupling report.
	Interference *jsonInterference `json:"interference,omitempty"`
	// Resilience is present only on faulted runs (-faults), keeping
	// unfaulted JSON byte-identical to the pre-fault report.
	Resilience *jsonResilience `json:"resilience,omitempty"`
}

// jsonInterference carries the coupled-mode cross-device interference
// metrics of one aggregate (or of the whole fleet).
type jsonInterference struct {
	ResourceWaitMeanSec float64 `json:"resource_wait_mean_sec"`
	ResourceDrops       int64   `json:"resource_drops"`
	BudgetDenied        int64   `json:"budget_denied"`
}

// jsonResilience carries the fault-injection metrics of one aggregate
// (or of the whole fleet).
type jsonResilience struct {
	Availability    float64 `json:"availability"`
	DowntimeMeanSec float64 `json:"downtime_mean_sec"`
	EnergyOutageJ   float64 `json:"energy_outage_j"`
	Crashes         int64   `json:"crashes"`
	Retries         int64   `json:"retries"`
	RetryExhausted  int64   `json:"retry_exhausted"`
	LostToOutage    int64   `json:"lost_to_outage"`
}

// jsonReport is the machine-readable fleet report.
type jsonReport struct {
	Mode        string  `json:"mode"`
	Quantiles   string  `json:"quantiles"`
	Devices     int64   `json:"devices"`
	Replicas    int     `json:"replicas"`
	HorizonSec  float64 `json:"horizon_sec"`
	Shards      int     `json:"shards"`
	EnergyJ     float64 `json:"energy_j"`
	PowerW      float64 `json:"power_w"`
	Arrived     int64   `json:"arrived"`
	Served      int64   `json:"served"`
	Lost        int64   `json:"lost"`
	Events      uint64  `json:"events"`
	LossOverall float64 `json:"loss_overall"`
	MeanWaitSec float64 `json:"mean_wait_sec"`
	WaitP50Sec  float64 `json:"wait_p50_sec"`
	WaitP90Sec  float64 `json:"wait_p90_sec"`
	WaitP99Sec  float64 `json:"wait_p99_sec"`
	// Couple, CoupleSize, and Interference appear only on coupled runs
	// (-couple), keeping uncoupled JSON byte-identical to the
	// pre-coupling report.
	Couple       string            `json:"couple,omitempty"`
	CoupleSize   int               `json:"couple_size,omitempty"`
	Interference *jsonInterference `json:"interference,omitempty"`
	// Resilience appears only on faulted runs (-faults), keeping
	// unfaulted JSON byte-identical to the pre-fault report.
	Resilience *jsonResilience `json:"resilience,omitempty"`
	Classes    []jsonGroup     `json:"classes"`
	Policies   []jsonGroup     `json:"policies"`
}

// group flattens a ClassStats for JSON; coupled runs attach the
// interference block, faulted runs the resilience block (availability
// computed against the fleet horizon).
func group(c *fleet.ClassStats, coupled bool, horizonSec float64) jsonGroup {
	g := jsonGroup{
		Name:            c.Name,
		Policy:          c.Policy,
		Instances:       c.Instances,
		PowerW:          c.AvgPowerW.Mean(),
		PowerCI95:       c.AvgPowerW.CI95(),
		EnergyReduction: c.EnergyReduction.Mean(),
		MeanWaitSec:     c.MeanWaitSec.Mean(),
		LossRate:        c.LossRate.Mean(),
	}
	if coupled {
		g.Interference = &jsonInterference{
			ResourceWaitMeanSec: c.ResourceWaitSec.Mean(),
			ResourceDrops:       c.ResourceDrops,
			BudgetDenied:        c.BudgetDenied,
		}
	}
	if horizonSec > 0 {
		g.Resilience = &jsonResilience{
			Availability:    c.Availability(horizonSec),
			DowntimeMeanSec: c.DowntimeSec.Mean(),
			EnergyOutageJ:   c.EnergyOutageJ,
			Crashes:         c.Crashes,
			Retries:         c.Retries,
			RetryExhausted:  c.RetryExhausted,
			LostToOutage:    c.LostToOutage,
		}
	}
	return g
}

// writeJSON emits the report; percentile computation is the only
// fallible step (empty fleets cannot happen past validation).
func writeJSON(w io.Writer, sum *experiment.FleetSummary, quant fleet.QuantileMode) error {
	q := func(p float64) (float64, error) { return sum.Fleet.WaitQuantile(p) }
	p50, err := q(0.50)
	if err != nil {
		return err
	}
	p90, err := q(0.90)
	if err != nil {
		return err
	}
	p99, err := q(0.99)
	if err != nil {
		return err
	}
	rep := jsonReport{
		Mode:        string(sum.Fleet.Mode),
		Quantiles:   string(quant),
		Devices:     sum.Fleet.Devices,
		Replicas:    sum.Replicas,
		HorizonSec:  sum.Fleet.HorizonSec,
		Shards:      sum.Fleet.Shards,
		EnergyJ:     sum.Fleet.EnergyJ,
		PowerW:      sum.Fleet.AvgPowerW.Mean(),
		Arrived:     sum.Fleet.Arrived,
		Served:      sum.Fleet.Served,
		Lost:        sum.Fleet.Lost,
		Events:      sum.Fleet.Events,
		LossOverall: sum.Fleet.LossOverall(),
		MeanWaitSec: sum.Fleet.MeanWaitSec.Mean(),
		WaitP50Sec:  p50,
		WaitP90Sec:  p90,
		WaitP99Sec:  p99,
	}
	coupled := sum.Fleet.Couple != fleet.CoupleNone
	if coupled {
		rep.Couple = string(sum.Fleet.Couple)
		rep.CoupleSize = sum.Fleet.CoupleSize
		rep.Interference = &jsonInterference{
			ResourceWaitMeanSec: sum.Fleet.ResourceWaitSec.Mean(),
			ResourceDrops:       sum.Fleet.ResourceDrops,
			BudgetDenied:        sum.Fleet.BudgetDenied,
		}
	}
	groupHorizon := 0.0 // zero disables the per-group resilience block
	if sum.Fleet.Faulted {
		groupHorizon = sum.Fleet.HorizonSec
		rep.Resilience = &jsonResilience{
			Availability:    sum.Fleet.Availability(),
			DowntimeMeanSec: sum.Fleet.DowntimeSec.Mean(),
			EnergyOutageJ:   sum.Fleet.EnergyOutageJ,
			Crashes:         sum.Fleet.Crashes,
			Retries:         sum.Fleet.Retries,
			RetryExhausted:  sum.Fleet.RetryExhausted,
			LostToOutage:    sum.Fleet.LostToOutage,
		}
	}
	for i := range sum.Fleet.Classes {
		rep.Classes = append(rep.Classes, group(&sum.Fleet.Classes[i], coupled, groupHorizon))
	}
	perPol := sum.Fleet.PerPolicy()
	for i := range perPol {
		rep.Policies = append(rep.Policies, group(&perPol[i], coupled, groupHorizon))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
