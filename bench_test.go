// Package repro's top-level benchmarks regenerate (in miniature) every
// figure and table of the Q-DPM reproduction, one benchmark per artifact,
// plus the micro-benchmarks behind Table R1. Run with:
//
//	go test -bench=. -benchmem
//
// Full-size regenerations (paper-scale run lengths, all seeds) are done by
// cmd/qdpm-bench; these benchmarks use shortened runs so the suite stays
// minutes-scale while still exercising the identical code paths.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/mdp"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/stochpm"
	"repro/internal/workload"
)

// BenchmarkFig1Convergence regenerates the Fig. 1 series (stationary
// convergence of Q-DPM onto the analytically optimal policy).
func BenchmarkFig1Convergence(b *testing.B) {
	cfg := experiment.Fig1Config{
		ArrivalP: 0.1,
		Slots:    60000,
		Window:   3000,
		Stride:   2000,
		Seeds:    []uint64{101},
	}
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2RapidResponse regenerates the Fig. 2 series (piecewise-
// stationary input, Q-DPM vs the model-based adaptive pipeline).
func BenchmarkFig2RapidResponse(b *testing.B) {
	cfg := experiment.Fig2Config{
		Rates:                []float64{0.02, 0.30},
		SegmentSlots:         20000,
		Window:               2500,
		Stride:               1000,
		Seeds:                []uint64{201},
		OptimizeLatencySlots: 1000,
	}
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := fig.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableR1QStep is Table R1's first column: one Q-DPM decision +
// update — the technique's entire per-interval runtime.
func BenchmarkTableR1QStep(b *testing.B) {
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(core.Config{
		Device: dev, QueueCap: experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
		Stream:        rng.New(1),
	})
	if err != nil {
		b.Fatal(err)
	}
	agent := m.Agent()
	stream := rng.New(2)
	legal := []int{0, 1, 2}
	n := m.NumStates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := i % n
		a, _ := agent.SelectAction(s, legal, stream)
		agent.Update(s, a, -0.5, (s+1)%n, legal, 1, stream)
	}
}

// BenchmarkTableR1LPSolve is Table R1's LP column: one model-based policy
// re-optimization (the "extremely slow" step of the paper's anecdote).
func BenchmarkTableR1LPSolve(b *testing.B) {
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device: dev, ArrivalP: 0.15,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stochpm.SolveLP(d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableR1RVISolve is Table R1's value-iteration column.
func BenchmarkTableR1RVISolve(b *testing.B) {
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device: dev, ArrivalP: 0.15,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AverageCostRVI(1e-6, 500000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableR1ModelBuild measures constructing the explicit DTMDP the
// model-based pipeline must maintain (Q-DPM never builds it).
func BenchmarkTableR1ModelBuild(b *testing.B) {
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	cfg := mdp.DPMConfig{
		Device: dev, ArrivalP: 0.15,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mdp.BuildDPM(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableR2Row measures one Table R2 cell: a replicated stationary
// comparison run for one policy at one rate.
func BenchmarkTableR2Row(b *testing.B) {
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	sc := experiment.Scenario{
		Name: "bench-r2", Device: dev,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
		Slots:         20000,
		Workload:      benchBernoulli(0.1),
	}
	pf := experiment.QDPMFactory(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunReplicated(sc, pf, []uint64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableR3Tracking measures one Table R3 row: the Fig. 2 scenario
// under the model-based adaptive pipeline (estimator + CUSUM + re-solve).
func BenchmarkTableR3Tracking(b *testing.B) {
	cfg := experiment.Fig2Config{
		Rates:                []float64{0.02, 0.30},
		SegmentSlots:         15000,
		Window:               2000,
		Stride:               1000,
		Seeds:                []uint64{31},
		OptimizeLatencySlots: 1000,
	}
	sc, _, err := experiment.Fig2Scenario(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pf := experiment.AdaptiveLPFactory(sc.Device, 0.02, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunOne(sc, pf, 31, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableR4Jitter measures one Table R4 cell: Q-DPM under
// continuously jittering parameters.
func BenchmarkTableR4Jitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TableR4(0.15, 0.2, 2000, 20000, []uint64{41}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVariant measures one ablation-grid cell (the SARSA
// variant on the Fig. 1 scenario).
func BenchmarkAblationVariant(b *testing.B) {
	specs := []experiment.AblationSpec{
		{Name: "sarsa", Mut: func(c *core.Config) { c.Rule = qlearn.SARSA }},
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TableAblations(specs, 0.1, 20000, []uint64{51}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReplicatedScenario is the shared workload for the engine
// benchmarks: 8 Q-DPM replicas of 20k slots each.
func benchReplicatedScenario(b *testing.B) (experiment.Scenario, experiment.PolicyFactory, []uint64) {
	b.Helper()
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	sc := experiment.Scenario{
		Name: "bench-replicated", Device: dev,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
		Slots:         20000,
		Workload:      benchBernoulli(0.1),
	}
	return sc, experiment.QDPMFactory(dev), engine.DeriveSeeds(7, 8)
}

// BenchmarkRunReplicatedSerial pins the single-worker baseline: 8 Q-DPM
// replicas on one goroutine. BENCH_pr1.json records this next to the
// pooled variant so later PRs can track the parallel speedup.
func BenchmarkRunReplicatedSerial(b *testing.B) {
	sc, pf, seeds := benchReplicatedScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunReplicatedCtx(context.Background(), sc, pf, seeds,
			experiment.Parallel{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunReplicatedPooled runs the same 8 replicas on a GOMAXPROCS
// worker pool. On an N-core host this should approach N× the serial
// throughput; the output is bit-identical either way.
func BenchmarkRunReplicatedPooled(b *testing.B) {
	sc, pf, seeds := benchReplicatedScenario(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunReplicatedCtx(context.Background(), sc, pf, seeds,
			experiment.Parallel{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQDPMReplicaSlots measures the per-slot cost of one full Q-DPM
// replica (decision + simulation + learning update). The -benchmem
// numbers guard the allocation-free hot path.
func BenchmarkQDPMReplicaSlots(b *testing.B) {
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	sc := experiment.Scenario{
		Name: "bench-slots", Device: dev,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight,
		Slots:         int64(b.N),
		Workload:      benchBernoulli(0.1),
	}
	pf := experiment.QDPMFactory(dev)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := experiment.RunOne(sc, pf, 1, nil); err != nil {
		b.Fatal(err)
	}
}

// benchCTScenario is the shared continuous-time workload: Poisson
// arrivals on the synthetic 3-state device under the canonical 0.5 s
// governor, the Table CT cell shape.
func benchCTScenario(b *testing.B, horizon float64) (experiment.CTScenario, experiment.PolicyFactory) {
	b.Helper()
	psm := device.Synthetic3()
	dev, err := experiment.CanonDevice()
	if err != nil {
		b.Fatal(err)
	}
	sc := experiment.CTScenario{
		Name:          "bench-ct",
		Device:        psm,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight / experiment.CanonSlotSeconds,
		Horizon:       horizon,
		Period:        experiment.CanonSlotSeconds,
		Source: func() ctsim.Source {
			d, err := dist.NewExponential(0.2)
			if err != nil {
				panic(err)
			}
			src, err := ctsim.NewRenewalSource(d)
			if err != nil {
				panic(err)
			}
			return src
		},
	}
	return sc, experiment.TimeoutFactory(dev, 8)
}

// BenchmarkCTReplicaTableCell measures one full Table CT replica through
// the experiment layer (policy build + adapter + ctsim run + metrics).
func BenchmarkCTReplicaTableCell(b *testing.B) {
	sc, pf := benchCTScenario(b, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCTOne(sc, pf, 31); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTReplicatedPooled runs an 8-seed CT replication through the
// worker pool — the path where per-worker simulator reuse pays off. The
// pool is pinned to 4 workers (not GOMAXPROCS): one simulator is built
// per worker, so a core-count-dependent pool would make allocs/op vary
// by host and break the CI benchmark-regression gate against the
// recorded baseline.
func BenchmarkCTReplicatedPooled(b *testing.B) {
	sc, pf := benchCTScenario(b, 2048)
	seeds := engine.DeriveSeeds(9, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunCTReplicatedCtx(context.Background(), sc, pf, seeds,
			experiment.Parallel{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBernoulli returns a workload factory for a Bernoulli arrival
// process at rate p.
func benchBernoulli(p float64) func() workload.Arrivals {
	return func() workload.Arrivals {
		b, err := workload.NewBernoulli(p)
		if err != nil {
			panic(err)
		}
		return b
	}
}

// ---------------------------------------------------------------------------
// Fleet-scale benchmarks: the sharded multi-device layer at 1k–10k
// instances, reporting wall-clock throughput (devices/s) and the
// per-event cost of the whole stack (sharding + per-worker sim reuse +
// merge) alongside the standard ns/op.

// benchFleet runs one fleet of the given size per op and reports
// devices/s and ns/event. The pool is pinned to 4 workers so allocs/op
// (one reusable simulator per worker) is host-independent and the CI
// regression gate can compare it against the recorded baseline.
func benchFleet(b *testing.B, devices int, horizon float64, mode fleet.Mode) {
	benchFleetSpec(b, fleet.Spec{
		Devices: devices,
		Classes: fleet.DefaultMix(),
		Mode:    mode,
		Horizon: horizon,
		Seed:    11,
	})
}

func benchFleetSpec(b *testing.B, spec fleet.Spec) {
	devices := spec.Devices
	pool := &engine.Pool{Workers: 4}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		sum, err := fleet.Run(context.Background(), spec, pool)
		if err != nil {
			b.Fatal(err)
		}
		events = sum.Events
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(devices)/(perOp/1e9), "devices/s")
	if events > 0 {
		b.ReportMetric(perOp/float64(events), "ns/event")
		b.ReportMetric(float64(events), "events/op")
	}
}

// BenchmarkFleet1kCT: 1000 heterogeneous CT instances, 64 s horizon.
func BenchmarkFleet1kCT(b *testing.B) { benchFleet(b, 1000, 64, fleet.ModeCT) }

// BenchmarkFleet10kCT: the acceptance-scale fleet — 10,000 CT instances.
func BenchmarkFleet10kCT(b *testing.B) { benchFleet(b, 10000, 64, fleet.ModeCT) }

// BenchmarkFleet1kSlot: the slotted kernel at the same scale, for the
// cross-kernel cost comparison.
func BenchmarkFleet1kSlot(b *testing.B) { benchFleet(b, 1000, 64, fleet.ModeSlot) }

// BenchmarkFleet1MCT: the million-device acceptance scale at a short
// horizon, where per-instance turnover dominates — it tracks the
// zero-allocation instance lifecycle and the streamed O(workers) shard
// merge together. One op = one full million-device CT fleet; memory
// stays bounded because shard summaries fold as they complete and wait
// percentiles live in the mergeable sketch.
func BenchmarkFleet1MCT(b *testing.B) { benchFleet(b, 1_000_000, 4, fleet.ModeCT) }

// BenchmarkFleetCoupled10kCT: the acceptance-scale fleet with coupling
// on — groups of 8 share one kernel and contend for a single-occupancy
// channel. One op = one full coupled fleet; the delta against
// BenchmarkFleet10kCT is the whole cost of the shared-clock group loop
// (lane multiplexing + resource arbitration + interference accounting).
func BenchmarkFleetCoupled10kCT(b *testing.B) {
	benchFleetSpec(b, fleet.Spec{
		Devices:    10000,
		Classes:    fleet.DefaultMix(),
		Mode:       fleet.ModeCT,
		Horizon:    64,
		Seed:       11,
		Couple:     fleet.CoupleChannel,
		CoupleSize: 8,
	})
}

// BenchmarkFleetCoupled1MCT: the flat-scaling contract extended to
// coupling — one million devices in groups of 8 on shared kernels, at
// the same short horizon as BenchmarkFleet1MCT. The BENCH ratio gate
// holds its ns/event within 1.20× of BenchmarkFleetCoupled10kCT: a
// coupled group's cost must be a pure function of the group, not of
// how many groups the fleet has.
func BenchmarkFleetCoupled1MCT(b *testing.B) {
	benchFleetSpec(b, fleet.Spec{
		Devices:    1_000_000,
		Classes:    fleet.DefaultMix(),
		Mode:       fleet.ModeCT,
		Horizon:    4,
		Seed:       11,
		Couple:     fleet.CoupleChannel,
		CoupleSize: 8,
	})
}

// BenchmarkFleetCoupledKernelSweep is the measurement behind the
// KernelAuto decision table (fleet.kernelFor; DESIGN.md §7): the
// coupled fleet at every group size K on both kernel backings. It is
// not gated in BENCH_pr10.json — rerun it when the kernel or the
// coupled hot path changes materially:
//
//	go test -bench BenchmarkFleetCoupledKernelSweep -benchtime 5x .
func BenchmarkFleetCoupledKernelSweep(b *testing.B) {
	for _, k := range []fleet.KernelKind{fleet.KernelHeap, fleet.KernelCalendar} {
		for _, cs := range []int{8, 32, 64, 128, 256, 512} {
			spec := fleet.Spec{
				Devices:    4096,
				Classes:    fleet.DefaultMix(),
				Mode:       fleet.ModeCT,
				Horizon:    64,
				Seed:       11,
				Couple:     fleet.CoupleChannel,
				CoupleSize: cs,
				ShardSize:  512,
				Kernel:     k,
			}
			b.Run(fmt.Sprintf("kernel=%s/K=%d", k, cs), func(b *testing.B) {
				benchFleetSpec(b, spec)
			})
		}
	}
}

// BenchmarkFleetFaulted10kCT: the acceptance-scale fleet under fault
// injection — crash/repair cycles plus transient retry/backoff at
// moderate severity. One op = one full faulted fleet; the delta against
// BenchmarkFleet10kCT is the whole cost of the fault layer (the crash
// schedule, retry holds, and resilience accounting), which must stay
// allocation-free and within the ns/event envelope.
func BenchmarkFleetFaulted10kCT(b *testing.B) {
	benchFleetSpec(b, fleet.Spec{
		Devices: 10000,
		Classes: fleet.DefaultMix(),
		Mode:    fleet.ModeCT,
		Horizon: 64,
		Seed:    11,
		Faults: &fleet.FaultSpec{
			CrashMTBF:  150,
			RepairMean: 10,
			FailProb:   0.05,
		},
	})
}
