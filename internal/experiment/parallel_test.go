package experiment

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/slotsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// detScenario is a short learning-policy scenario: Q-DPM is the most
// state-dependent policy in the repo, so if pooling perturbed any stream
// or ordering it would show up here first.
func detScenario(slots int64) Scenario {
	dev, _ := CanonDevice()
	return Scenario{
		Name: "det", Device: dev, QueueCap: CanonQueueCap,
		LatencyWeight: CanonLatencyWeight, Slots: slots,
		Workload: func() workload.Arrivals {
			b, _ := workload.NewBernoulli(0.1)
			return b
		},
	}
}

// runningEqual compares two accumulators bit-for-bit via their accessors.
func runningEqual(a, b *stats.Running) bool {
	return a.N() == b.N() && a.Mean() == b.Mean() && a.Var() == b.Var() &&
		a.Min() == b.Min() && a.Max() == b.Max()
}

func summariesEqual(a, b *Summary) bool {
	return a.Replicas == b.Replicas &&
		runningEqual(&a.AvgPowerW, &b.AvgPowerW) &&
		runningEqual(&a.AvgCost, &b.AvgCost) &&
		runningEqual(&a.MeanWaitSlots, &b.MeanWaitSlots) &&
		runningEqual(&a.LossRate, &b.LossRate) &&
		runningEqual(&a.EnergyReduction, &b.EnergyReduction)
}

// TestPooledBitIdenticalToSerial is the engine's core guarantee: pooled
// RunReplicated output is bit-identical to the legacy serial loop for
// pool sizes 1, 4, and GOMAXPROCS.
func TestPooledBitIdenticalToSerial(t *testing.T) {
	sc := detScenario(20000)
	pf := QDPMFactory(sc.Device)
	seeds := []uint64{1, 2, 3, 4, 5}

	// The legacy serial reduction, inlined: one Add per replica in seed
	// order.
	want := &Summary{Policy: pf.Name, Scenario: sc.Name, Replicas: len(seeds)}
	maxPower := sc.Device.MaxPowerEnergy() / sc.Device.SlotDuration
	for _, seed := range seeds {
		m, err := RunOne(sc, pf, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		p := m.AvgPowerW(sc.Device.SlotDuration)
		want.AvgPowerW.Add(p)
		want.AvgCost.Add(m.AvgCost())
		want.MeanWaitSlots.Add(m.MeanWaitSlots())
		want.LossRate.Add(m.LossRate())
		want.EnergyReduction.Add(1 - p/maxPower)
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, err := RunReplicatedCtx(context.Background(), sc, pf, seeds, Parallel{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !summariesEqual(got, want) {
			t.Errorf("workers=%d: pooled summary differs from serial:\n got %+v\nwant %+v",
				workers, got, want)
		}
	}
}

// TestFig1PooledDeterministic checks the figure pipeline end to end: the
// rendered series must not depend on worker count.
func TestFig1PooledDeterministic(t *testing.T) {
	cfg := Fig1Config{
		ArrivalP: 0.1, Slots: 20000, Window: 2000, Stride: 1000,
		Seeds: []uint64{11, 12},
	}
	serial, err := Fig1Ctx(context.Background(), cfg, Parallel{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Fig1Ctx(context.Background(), cfg, Parallel{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Series) != len(pooled.Series) {
		t.Fatalf("series count %d vs %d", len(serial.Series), len(pooled.Series))
	}
	for i, s := range serial.Series {
		p := pooled.Series[i]
		if s.Name != p.Name || s.Len() != p.Len() {
			t.Fatalf("series %d shape mismatch: %s/%d vs %s/%d", i, s.Name, s.Len(), p.Name, p.Len())
		}
		for k := range s.Y {
			if s.X[k] != p.X[k] || s.Y[k] != p.Y[k] {
				t.Fatalf("series %q point %d differs: (%v,%v) vs (%v,%v)",
					s.Name, k, s.X[k], s.Y[k], p.X[k], p.Y[k])
			}
		}
	}
}

// TestRunReplicatedCancellation: cancelling mid-run must return promptly
// with the context error and leak no goroutines.
func TestRunReplicatedCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	sc := detScenario(50_000_000) // far too long to finish
	pf := TimeoutFactory(sc.Device, 8)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunReplicatedCtx(ctx, sc, pf, []uint64{1, 2, 3, 4}, Parallel{Workers: 2})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation returned after %v, want prompt partial-error return", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

// TestRunOneCtxPreCancelled: a cancelled context aborts before any slot
// is simulated.
func TestRunOneCtxPreCancelled(t *testing.T) {
	sc := detScenario(1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	observed := 0
	_, err := RunOneCtx(ctx, sc, TimeoutFactory(sc.Device, 8), 1, func(slotsim.SlotRecord) { observed++ })
	if err == nil {
		t.Fatal("pre-cancelled context accepted")
	}
	if observed != 0 {
		t.Errorf("%d slots simulated under a pre-cancelled context", observed)
	}
}

// TestSummaryMerge covers the pooled-summary combination directly,
// including the empty-receiver fast path.
func TestSummaryMerge(t *testing.T) {
	var a, b Summary
	b.Policy, b.Scenario, b.Replicas = "p", "s", 2
	b.AvgCost.Add(1)
	b.AvgCost.Add(3)
	a.Merge(&b)
	if a.Policy != "p" || a.Scenario != "s" || a.Replicas != 2 || a.AvgCost.Mean() != 2 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var c Summary
	c.Policy, c.Scenario, c.Replicas = "p", "s", 1
	c.AvgCost.Add(5)
	a.Merge(&c)
	if a.Replicas != 3 || a.AvgCost.N() != 3 || a.AvgCost.Mean() != 3 {
		t.Fatalf("merge: %+v", a)
	}
	if a.AvgCost.Max() != 5 || a.AvgCost.Min() != 1 {
		t.Fatalf("merge min/max: %v %v", a.AvgCost.Min(), a.AvgCost.Max())
	}
}
