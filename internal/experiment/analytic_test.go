package experiment

import (
	"testing"
)

// TestAnalyticConformance runs the full analytic ladder — every ctsim,
// slotsim, and fleet rung — and requires every check to pass. This is
// the test behind the CI analytic-gate job; the seeds are fixed so the
// gate is deterministic.
func TestAnalyticConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("analytic conformance needs full horizons")
	}
	seeds := []uint64{101, 102, 103, 104, 105, 106, 107, 108}
	rep, err := RunAnalytic(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) == 0 {
		t.Fatal("conformance harness produced no checks")
	}
	for _, c := range rep.Checks {
		mode := "two-sided"
		if c.Bound {
			mode = "bound"
		}
		t.Logf("%-18s %-7s %-28s theory=%.6f sim=%.6f ci=%.6f slack=%.6f %s pass=%v",
			c.Rung, c.Sim, c.Metric, c.Theory, c.Observed, c.CI, c.Slack, mode, c.Pass)
	}
	for _, c := range rep.Failures() {
		t.Errorf("analytic check failed: %s/%s %s: theory %.6f, simulated %.6f (ci %.6f, slack %.6f)",
			c.Rung, c.Sim, c.Metric, c.Theory, c.Observed, c.CI, c.Slack)
	}
}

// TestAnalyticNoSeeds pins the empty-seed error path.
func TestAnalyticNoSeeds(t *testing.T) {
	if _, err := RunAnalytic(nil); err == nil {
		t.Error("RunAnalytic accepted an empty seed list")
	}
}
