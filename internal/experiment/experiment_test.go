package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// miniFig1 returns a small-but-meaningful Fig. 1 configuration for tests.
func miniFig1() Fig1Config {
	return Fig1Config{
		ArrivalP: 0.1,
		Slots:    100000,
		Window:   3000,
		Stride:   1500,
		Seeds:    []uint64{11, 12},
	}
}

func miniFig2() Fig2Config {
	return Fig2Config{
		Rates:                []float64{0.02, 0.30},
		SegmentSlots:         30000,
		Window:               2500,
		Stride:               1000,
		Seeds:                []uint64{21},
		OptimizeLatencySlots: 1000,
	}
}

func TestScenarioValidate(t *testing.T) {
	dev, err := CanonDevice()
	if err != nil {
		t.Fatal(err)
	}
	good := Scenario{
		Name: "ok", Device: dev, QueueCap: 8, LatencyWeight: 0.3, Slots: 10,
		Workload: func() workload.Arrivals {
			b, _ := workload.NewBernoulli(0.1)
			return b
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Device = nil
	if bad.Validate() == nil {
		t.Error("nil device accepted")
	}
	bad = good
	bad.Workload = nil
	if bad.Validate() == nil {
		t.Error("nil workload accepted")
	}
	bad = good
	bad.Slots = 0
	if bad.Validate() == nil {
		t.Error("zero slots accepted")
	}
}

func TestRunReplicatedDeterministic(t *testing.T) {
	dev, _ := CanonDevice()
	sc := Scenario{
		Name: "det", Device: dev, QueueCap: 8, LatencyWeight: 0.3, Slots: 5000,
		Workload: func() workload.Arrivals {
			b, _ := workload.NewBernoulli(0.1)
			return b
		},
	}
	pf := TimeoutFactory(dev, 8)
	a, err := RunReplicated(sc, pf, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicated(sc, pf, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPowerW.Mean() != b.AvgPowerW.Mean() {
		t.Error("replicated runs not deterministic")
	}
	if a.Replicas != 3 {
		t.Errorf("replicas %d", a.Replicas)
	}
}

func TestRunReplicatedNoSeeds(t *testing.T) {
	dev, _ := CanonDevice()
	sc := Scenario{
		Name: "x", Device: dev, QueueCap: 8, LatencyWeight: 0.3, Slots: 10,
		Workload: func() workload.Arrivals {
			b, _ := workload.NewBernoulli(0.1)
			return b
		},
	}
	if _, err := RunReplicated(sc, TimeoutFactory(dev, 8), nil); err == nil {
		t.Error("no seeds accepted")
	}
}

func TestMeanSeries(t *testing.T) {
	a := &stats.Series{Name: "a", X: []float64{1, 2}, Y: []float64{1, 3}}
	b := &stats.Series{Name: "b", X: []float64{1, 2}, Y: []float64{3, 5}}
	m, err := MeanSeries("m", []*stats.Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Y[0] != 2 || m.Y[1] != 4 {
		t.Errorf("mean series %v", m.Y)
	}
	if _, err := MeanSeries("x", nil); err == nil {
		t.Error("empty input accepted")
	}
	c := &stats.Series{Name: "c", X: []float64{1}, Y: []float64{1}}
	if _, err := MeanSeries("x", []*stats.Series{a, c}); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestFig1ShapeHolds(t *testing.T) {
	// The load-bearing reproduction check: Q-DPM's tail must approach the
	// optimal line and beat the heuristics; the ordering
	// optimal <= q-dpm < {timeout, greedy} must hold on tails.
	fig, err := Fig1(miniFig1())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*stats.Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	for _, want := range []string{"q-dpm", "optimal", "timeout", "greedy-off"} {
		if byName[want] == nil {
			t.Fatalf("figure missing series %q", want)
		}
	}
	gain := fig.HLines["optimal gain"]
	if !(gain > 0) {
		t.Fatalf("optimal gain %v", gain)
	}
	qTail := byName["q-dpm"].TailMean(0.25)
	optTail := byName["optimal"].TailMean(0.25)
	toTail := byName["timeout"].TailMean(0.25)

	if qTail > gain*1.25 {
		t.Errorf("q-dpm tail %v not within 25%% of optimal gain %v", qTail, gain)
	}
	if qTail < optTail-0.05 {
		t.Errorf("q-dpm tail %v below optimal tail %v: accounting bug", qTail, optTail)
	}
	// At λ=0.1 the discriminative heuristic is the fixed timeout (greedy
	// shutdown is near-optimal at long idles, so it is context, not a
	// bar): Q-DPM must clearly beat it.
	if qTail >= toTail {
		t.Errorf("q-dpm tail %v did not beat timeout %v", qTail, toTail)
	}
	// Convergence: the last quarter must be better than the first quarter.
	first := stats.Mean(byName["q-dpm"].Y[:byName["q-dpm"].Len()/4])
	if qTail >= first {
		t.Errorf("q-dpm did not improve over time: first %v tail %v", first, qTail)
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	// After the low→high switch both adaptive policies dip; Q-DPM must
	// recover at least as fast as adaptive-LP (the paper's core claim).
	cfg := miniFig2()
	fig, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.VLines) != 1 {
		t.Fatalf("expected 1 switch point, got %v", fig.VLines)
	}
	byName := map[string]*stats.Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	q := byName["q-dpm"]
	lp := byName["adaptive-lp"]
	if q == nil || lp == nil {
		t.Fatal("missing series")
	}
	sw := fig.VLines
	segEnd := []float64{float64(2 * cfg.SegmentSlots)}
	qRec := RecoverySlots(q, sw, segEnd, 0.06)
	lpRec := RecoverySlots(lp, sw, segEnd, 0.06)
	if qRec[0] < 0 {
		t.Fatalf("q-dpm never recovered after the switch")
	}
	if lpRec[0] >= 0 && qRec[0] > lpRec[0]+int64(cfg.Window) {
		t.Errorf("q-dpm recovery %d much slower than adaptive-lp %d", qRec[0], lpRec[0])
	}
}

func TestTableR1OrdersOfMagnitude(t *testing.T) {
	tab, rows, err := TableR1([]int{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		// The paper's claim: an LP re-solve is orders of magnitude more
		// expensive than a Q step. Require >= 100x even on a fast host.
		if r.LPSpeedupOverQ < 100 {
			t.Errorf("|S|=%d: LP/Qstep ratio %v < 100", r.States, r.LPSpeedupOverQ)
		}
		if r.QTableBytes >= r.ModelBytes {
			t.Errorf("|S|=%d: Q table (%dB) not smaller than model (%dB)", r.States, r.QTableBytes, r.ModelBytes)
		}
	}
	// Larger model must not get cheaper.
	if rows[1].LPSolveMs < rows[0].LPSolveMs/2 {
		t.Errorf("LP solve time shrank with model size: %v -> %v", rows[0].LPSolveMs, rows[1].LPSolveMs)
	}
	var buf bytes.Buffer
	RenderTable(&buf, tab.Title, tab.Headers, tab.Rows)
	if !strings.Contains(buf.String(), "Table R1") {
		t.Error("render missing title")
	}
}

func TestRecoverySlots(t *testing.T) {
	s := &stats.Series{Name: "x"}
	// Steps: level 0 until x=10, dips to -1, back to 0 at x=14, stays.
	ys := []float64{0, 0, 0, 0, 0, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	for i, y := range ys {
		s.Append(float64(i*2+2), y) // x = 2,4,...,40
	}
	rec := RecoverySlots(s, []float64{10}, []float64{40}, 0.1)
	// Dip at x=12,14 (indices 5,6); recovered from x=16 -> 6 slots after
	// the switch at 10.
	if rec[0] != 6 {
		t.Errorf("recovery %d, want 6", rec[0])
	}
	// A switch beyond the sampled range can never register recovery.
	recNever := RecoverySlots(&stats.Series{
		X: []float64{11, 12}, Y: []float64{5, -5},
	}, []float64{100}, []float64{200}, 0.0001)
	if recNever[0] != -1 {
		t.Errorf("impossible recovery reported %d", recNever[0])
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title: "T", XLabel: "x", YLabel: "y",
		Series: []*stats.Series{
			{Name: "s1", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Name: "s2", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
		VLines: []float64{1},
		HLines: map[string]float64{"ref": 1},
		Note:   "note",
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T", "# note", "legend", "s1", "s2", "ref"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Figure{Title: "E"}).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty figure render missing placeholder")
	}
}

func TestWindowedSeriesValidation(t *testing.T) {
	dev, _ := CanonDevice()
	sc := Scenario{
		Name: "x", Device: dev, QueueCap: 8, LatencyWeight: 0.3, Slots: 10,
		Workload: func() workload.Arrivals {
			b, _ := workload.NewBernoulli(0.1)
			return b
		},
	}
	if _, err := WindowedCostSeries(sc, TimeoutFactory(dev, 8), 1, 0, 5); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := WindowedEnergyReductionSeries(sc, TimeoutFactory(dev, 8), 1, 5, 0); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestTableR4JitterWorkload(t *testing.T) {
	tab, err := TableR4(0.15, 0.2, 2000, 30000, []uint64{41})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d, want 4", len(tab.Rows))
	}
}

func TestTableAblationsSmoke(t *testing.T) {
	specs := DefaultAblations()[:2] // baseline + one variant
	tab, err := TableAblations(specs, 0.1, 30000, []uint64{51})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}
