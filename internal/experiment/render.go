package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Render writes the figure as an ASCII chart followed by aligned numeric
// columns (gnuplot/spreadsheet friendly).
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", f.Title, strings.Repeat("=", len(f.Title))); err != nil {
		return err
	}
	if f.Note != "" {
		fmt.Fprintf(w, "# %s\n", f.Note)
	}
	if len(f.Series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return nil
	}
	f.renderChart(w)
	f.renderColumns(w)
	return nil
}

const (
	chartWidth  = 72
	chartHeight = 18
)

// renderChart draws all series into one character grid.
func (f *Figure) renderChart(w io.Writer) {
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		if s.Len() == 0 {
			continue
		}
		if s.X[0] < xmin {
			xmin = s.X[0]
		}
		if s.X[s.Len()-1] > xmax {
			xmax = s.X[s.Len()-1]
		}
		if v := s.YMin(); v < ymin {
			ymin = v
		}
		if v := s.YMax(); v > ymax {
			ymax = v
		}
	}
	for _, y := range f.HLines {
		if y < ymin {
			ymin = y
		}
		if y > ymax {
			ymax = y
		}
	}
	if math.IsInf(xmin, 1) || xmax <= xmin {
		return
	}
	if ymax <= ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, chartHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", chartWidth))
	}
	toCol := func(x float64) int {
		c := int((x - xmin) / (xmax - xmin) * float64(chartWidth-1))
		if c < 0 {
			c = 0
		}
		if c >= chartWidth {
			c = chartWidth - 1
		}
		return c
	}
	toRow := func(y float64) int {
		r := int((ymax - y) / (ymax - ymin) * float64(chartHeight-1))
		if r < 0 {
			r = 0
		}
		if r >= chartHeight {
			r = chartHeight - 1
		}
		return r
	}
	// Vertical markers first (underneath data).
	for _, x := range f.VLines {
		c := toCol(x)
		for r := 0; r < chartHeight; r++ {
			grid[r][c] = '|'
		}
	}
	// Horizontal references.
	for _, y := range f.HLines {
		r := toRow(y)
		for c := 0; c < chartWidth; c++ {
			if grid[r][c] == ' ' {
				grid[r][c] = '-'
			}
		}
	}
	// Series glyphs: 1, 2, 3, ...
	for i, s := range f.Series {
		glyph := byte('1' + i)
		if i > 8 {
			glyph = byte('a' + i - 9)
		}
		for k := 0; k < s.Len(); k++ {
			grid[toRow(s.Y[k])][toCol(s.X[k])] = glyph
		}
	}
	fmt.Fprintf(w, "  y: %.4g .. %.4g   x: %.4g .. %.4g\n", ymin, ymax, xmin, xmax)
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", row)
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", chartWidth))
	var legend []string
	for i, s := range f.Series {
		g := string(rune('1' + i))
		if i > 8 {
			g = string(rune('a' + i - 9))
		}
		legend = append(legend, fmt.Sprintf("%s=%s", g, s.Name))
	}
	var hrefs []string
	var names []string
	for name := range f.HLines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hrefs = append(hrefs, fmt.Sprintf("-- %s=%.4g", name, f.HLines[name]))
	}
	fmt.Fprintf(w, "  legend: %s %s\n", strings.Join(legend, " "), strings.Join(hrefs, " "))
	if len(f.VLines) > 0 {
		fmt.Fprintf(w, "  | marks switching points at x=%v\n", f.VLines)
	}
}

// renderColumns emits the numeric series, downsampled to at most 40 rows.
func (f *Figure) renderColumns(w io.Writer) {
	n := 0
	for _, s := range f.Series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	if n == 0 {
		return
	}
	step := 1
	if n > 40 {
		step = (n + 39) / 40
	}
	headers := []string{f.XLabel}
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	rows := [][]string{}
	for i := 0; i < n; i += step {
		row := make([]string, 0, len(headers))
		x := math.NaN()
		for _, s := range f.Series {
			if i < s.Len() {
				x = s.X[i]
				break
			}
		}
		row = append(row, fmt.Sprintf("%.0f", x))
		for _, s := range f.Series {
			if i < s.Len() {
				row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w)
	RenderTable(w, "series data (downsampled)", headers, rows)
}

// RenderTable writes an aligned text table.
func RenderTable(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
