package experiment

import (
	"context"
	"fmt"
	"math"

	"repro/internal/analytic"
	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The analytic conformance harness pins each simulator to a regime one of
// the internal/analytic oracles covers exactly, runs enough replicas for
// a tight confidence interval, and asserts sim-within-CI-of-theory. The
// rung list, formulas, and CI methodology are documented in
// docs/ANALYTIC.md; DESIGN.md §10 is the contract. The harness surfaces
// as `qdpm-bench -exp analytic`, as TestAnalyticConformance, and as the
// CI analytic-gate job.

// AnalyticCheck is one sim-vs-theory comparison.
type AnalyticCheck struct {
	// Rung names the oracle rung; Sim the simulator exercised; Metric
	// the quantity compared.
	Rung, Sim, Metric string
	// Theory is the oracle's prediction; Observed the pooled simulated
	// value.
	Theory, Observed float64
	// CI is the 95% confidence half-width of Observed across replicas
	// (0 for exact checks).
	CI float64
	// Slack is the documented extra tolerance: float roundoff on exact
	// checks, finite-horizon/truncation bias on stochastic ones.
	Slack float64
	// Bound marks a one-sided check: Observed must not fall below
	// Theory (the LP/MDP optimal-cost bound). Two-sided otherwise.
	Bound bool
	// Pass is the verdict.
	Pass bool
}

// evaluate applies the acceptance rule: |obs − theory| ≤ CI + slack for
// two-sided checks, obs ≥ theory − CI − slack for bounds.
func (c *AnalyticCheck) evaluate() {
	margin := c.CI + c.Slack
	if c.Bound {
		c.Pass = c.Observed >= c.Theory-margin
		return
	}
	c.Pass = math.Abs(c.Observed-c.Theory) <= margin
}

// AnalyticReport collects every rung's checks.
type AnalyticReport struct {
	Checks []AnalyticCheck
}

// add evaluates and appends one check.
func (r *AnalyticReport) add(c AnalyticCheck) {
	c.evaluate()
	r.Checks = append(r.Checks, c)
}

// Failures returns the checks that did not pass.
func (r *AnalyticReport) Failures() []AnalyticCheck {
	var out []AnalyticCheck
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Harness constants. Horizons are sized so every stochastic rung's CI95
// lands well under its slack at the canonical seed count (see
// docs/ANALYTIC.md "CI methodology"); exact rungs use exactTol.
const (
	// exactTol absorbs float accumulation on checks that hold exactly.
	exactTol = 1e-9
	// relSlack is the two-sided slack on stochastic rungs, relative to
	// the prediction: finite-horizon bias (cycles truncated at the
	// horizon, served-only wait accounting) plus, on the fleet wait
	// rung, the K=8 truncation of the unbounded M/D/1 queue.
	relSlack = 0.02
	// ctHorizon is the continuous-time rung horizon in seconds.
	ctHorizon = 20000
	// slotHorizon is the slotted rung length in slots.
	slotHorizon = 40000
	// fleetHorizon is the fleet rung horizon in seconds.
	fleetHorizon = 2000
	// fleetDevices is the fleet rung instance count per replica.
	fleetDevices = 64
)

// RunAnalytic runs the full conformance harness. See RunAnalyticCtx.
func RunAnalytic(seeds []uint64) (*AnalyticReport, error) {
	return RunAnalyticCtx(context.Background(), seeds, Parallel{})
}

// RunAnalyticCtx runs every rung of the analytic ladder against its
// pinned simulator configuration and returns the checks. Each rung's
// oracle first vets the regime through its AppliesTo predicate, so a
// drifted harness configuration fails loudly rather than comparing a
// formula against a system it does not model.
func RunAnalyticCtx(ctx context.Context, seeds []uint64, par Parallel) (*AnalyticReport, error) {
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	r := &AnalyticReport{}
	if err := analyticCTChecks(ctx, r, seeds); err != nil {
		return nil, err
	}
	if err := analyticSlotChecks(ctx, r, seeds, par); err != nil {
		return nil, err
	}
	if err := analyticFleetChecks(ctx, r, seeds, par); err != nil {
		return nil, err
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// Continuous-time rungs

// analyticCT pins one continuous-time system to an oracle regime: a
// synthetic3 device under Poisson(rate) arrivals with a native
// (event-driven) policy, optionally a service distribution, a queue
// bound, and crash/repair faults.
type analyticCT struct {
	name        string
	rate        float64
	queueCap    int // ctsim convention: 0 = unbounded
	serviceDist dist.Continuous
	crashMTBF   float64
	repairMean  float64
	policy      func(psm *device.PSM) (ctsim.Policy, error)
}

// ctPools aggregates one metric sample per replica.
type ctPools struct {
	power, wait, backlog, loss, avail stats.Running
}

// runAnalyticCT executes one event-driven replica per seed. The stream
// layout follows the repository contract (root → policy → sim), with one
// extra split for the service or fault stream when the scenario enables
// it — native policies draw nothing from the policy stream, but keeping
// the slot reserves seed-compatibility with the adapted-policy runners.
func runAnalyticCT(ctx context.Context, sc analyticCT, seeds []uint64) (*ctPools, error) {
	psm := device.Synthetic3()
	pools := &ctPools{}
	for _, seed := range seeds {
		pol, err := sc.policy(psm)
		if err != nil {
			return nil, err
		}
		arr, err := dist.NewExponential(sc.rate)
		if err != nil {
			return nil, err
		}
		src, err := ctsim.NewRenewalSource(arr)
		if err != nil {
			return nil, err
		}
		root := rng.New(seed)
		_ = root.Split() // policy stream (native policies are draw-free)
		cfg := ctsim.Config{
			Device:   psm,
			QueueCap: sc.queueCap,
			Policy:   pol,
			Source:   src,
			Stream:   root.Split(),
		}
		if sc.serviceDist != nil {
			cfg.ServiceDist = sc.serviceDist
			cfg.ServiceStream = root.Split()
		}
		if sc.crashMTBF > 0 {
			cfg.Faults = &ctsim.Faults{
				CrashMTBF:  sc.crashMTBF,
				RepairMean: sc.repairMean,
				Stream:     root.Split(),
			}
		}
		sim, err := ctsim.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: analytic ct rung %s: %w", sc.name, err)
		}
		if err := sim.RunChunked(ctx, ctHorizon, ctHorizon/64); err != nil {
			return nil, err
		}
		m := sim.Metrics()
		pools.power.Add(m.AvgPowerW())
		pools.wait.Add(m.MeanWaitSeconds())
		pools.backlog.Add(m.MeanBacklog())
		pools.loss.Add(m.LossRate())
		pools.avail.Add(m.Availability())
	}
	return pools, nil
}

// analyticCTChecks runs the M/D/1, M/M/1, M/M/1/K, sleep-cycle, and
// availability rungs on the event-driven kernel.
func analyticCTChecks(ctx context.Context, r *AnalyticReport, seeds []uint64) error {
	psm := device.Synthetic3()
	roles, err := policy.DeriveRoles(psm)
	if err != nil {
		return err
	}
	active, deep := int(roles.Wake), int(roles.Deep)
	s := psm.ServiceTime

	alwaysOn := func(p *device.PSM) (ctsim.Policy, error) { return ctsim.NewAlwaysOn(p) }
	exp2, err := dist.NewExponential(2)
	if err != nil {
		return err
	}

	// Rung 1 — M/D/1: always-on, unbounded queue, deterministic service.
	md1, err := analytic.NewMD1(0.8, s)
	if err != nil {
		return err
	}
	if err := md1.AppliesTo(analytic.Regime{
		Arrivals: analytic.ArrivalPoisson,
		Service:  analytic.ServiceDeterministic,
		Policy:   analytic.PolicyAlwaysOn,
	}); err != nil {
		return err
	}
	p, err := runAnalyticCT(ctx, analyticCT{name: "md1", rate: 0.8, policy: alwaysOn}, seeds)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "M/D/1", Sim: "ctsim", Metric: "sojourn (s)",
		Theory: md1.MeanSojourn(), Observed: p.wait.Mean(), CI: p.wait.CI95(), Slack: relSlack * md1.MeanSojourn()})
	r.add(AnalyticCheck{Rung: "M/D/1", Sim: "ctsim", Metric: "number in system",
		Theory: md1.MeanNumber(), Observed: p.backlog.Mean(), CI: p.backlog.CI95(), Slack: relSlack * md1.MeanNumber()})
	r.add(AnalyticCheck{Rung: "M/D/1", Sim: "ctsim", Metric: "power (W)",
		Theory: psm.States[active].Power, Observed: p.power.Mean(), Slack: exactTol})
	r.add(AnalyticCheck{Rung: "M/D/1", Sim: "ctsim", Metric: "loss rate",
		Theory: 0, Observed: p.loss.Mean(), Slack: exactTol})

	// Rung 2 — M/M/1: the same system with exponential service drawn
	// from the dedicated service stream.
	mm1, err := analytic.NewMM1(0.8, exp2.Rate)
	if err != nil {
		return err
	}
	if err := mm1.AppliesTo(analytic.Regime{
		Arrivals: analytic.ArrivalPoisson,
		Service:  analytic.ServiceExponential,
		Policy:   analytic.PolicyAlwaysOn,
	}); err != nil {
		return err
	}
	p, err = runAnalyticCT(ctx, analyticCT{name: "mm1", rate: 0.8, serviceDist: exp2, policy: alwaysOn}, seeds)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "M/M/1", Sim: "ctsim", Metric: "sojourn (s)",
		Theory: mm1.MeanSojourn(), Observed: p.wait.Mean(), CI: p.wait.CI95(), Slack: relSlack * mm1.MeanSojourn()})
	r.add(AnalyticCheck{Rung: "M/M/1", Sim: "ctsim", Metric: "number in system",
		Theory: mm1.MeanNumber(), Observed: p.backlog.Mean(), CI: p.backlog.CI95(), Slack: relSlack * mm1.MeanNumber()})

	// Rung 3 — M/M/1/K: bounded queue at ρ = 0.8 (ctsim's QueueCap
	// counts the request in service, so QueueCap == K).
	const sysCap = 8
	mm1k := analytic.MM1K{Lambda: 1.6, Mu: exp2.Rate, K: sysCap}
	if err := mm1k.Validate(); err != nil {
		return err
	}
	if err := mm1k.AppliesTo(analytic.Regime{
		Arrivals:  analytic.ArrivalPoisson,
		Service:   analytic.ServiceExponential,
		Policy:    analytic.PolicyAlwaysOn,
		SystemCap: sysCap,
	}); err != nil {
		return err
	}
	p, err = runAnalyticCT(ctx, analyticCT{name: "mm1k", rate: 1.6, queueCap: sysCap, serviceDist: exp2, policy: alwaysOn}, seeds)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "M/M/1/K", Sim: "ctsim", Metric: "loss rate",
		Theory: mm1k.BlockingProb(), Observed: p.loss.Mean(), CI: p.loss.CI95(), Slack: relSlack * mm1k.BlockingProb()})
	r.add(AnalyticCheck{Rung: "M/M/1/K", Sim: "ctsim", Metric: "number in system",
		Theory: mm1k.MeanNumber(), Observed: p.backlog.Mean(), CI: p.backlog.CI95(), Slack: relSlack * mm1k.MeanNumber()})
	r.add(AnalyticCheck{Rung: "M/M/1/K", Sim: "ctsim", Metric: "sojourn (s)",
		Theory: mm1k.MeanSojourn(), Observed: p.wait.Mean(), CI: p.wait.CI95(), Slack: relSlack * mm1k.MeanSojourn()})

	// Rung 4 — sleep-cycle power: greedy-off and the continuous-time
	// timeout with threshold ≤ service time, which behave identically in
	// steady state (the idle clock always exceeds the threshold at a
	// queue-emptying completion).
	cycle := analytic.SleepCycle{
		Lambda:      0.4,
		ServiceTime: s,
		DownLatency: psm.Trans[active][deep].Latency,
		DownEnergy:  psm.Trans[active][deep].Energy,
		UpLatency:   psm.Trans[deep][active].Latency,
		UpEnergy:    psm.Trans[deep][active].Energy,
		SleepPower:  psm.States[deep].Power,
		ActivePower: psm.States[active].Power,
	}
	if err := cycle.Validate(); err != nil {
		return err
	}
	if err := cycle.AppliesTo(analytic.Regime{
		Arrivals: analytic.ArrivalPoisson,
		Service:  analytic.ServiceDeterministic,
		Policy:   analytic.PolicySleepCycle,
	}); err != nil {
		return err
	}
	p, err = runAnalyticCT(ctx, analyticCT{name: "greedy-off", rate: 0.4,
		policy: func(p *device.PSM) (ctsim.Policy, error) { return ctsim.NewGreedyOff(p) }}, seeds)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "sleep-cycle", Sim: "ctsim", Metric: "greedy-off power (W)",
		Theory: cycle.MeanPower(), Observed: p.power.Mean(), CI: p.power.CI95(), Slack: relSlack * cycle.MeanPower()})

	tmo := cycle
	tmo.Timeout = 0.8 * s
	if err := tmo.Validate(); err != nil {
		return err
	}
	p, err = runAnalyticCT(ctx, analyticCT{name: "ct-timeout", rate: 0.4,
		policy: func(p *device.PSM) (ctsim.Policy, error) { return ctsim.NewTimeout(p, tmo.Timeout) }}, seeds)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "sleep-cycle", Sim: "ctsim", Metric: fmt.Sprintf("timeout-%g power (W)", tmo.Timeout),
		Theory: tmo.MeanPower(), Observed: p.power.Mean(), CI: p.power.CI95(), Slack: relSlack * tmo.MeanPower()})

	// Rung 5 — availability: Exp(MTBF) operating-time failures against
	// Exp(repair) wall-time repairs alternate, so uptime converges to
	// MTBF/(MTBF+repair) regardless of workload or policy.
	av := analytic.Availability{MTBF: 100, MeanRepair: 10}
	if err := av.Validate(); err != nil {
		return err
	}
	if err := av.AppliesTo(analytic.Regime{Faults: true}); err != nil {
		return err
	}
	p, err = runAnalyticCT(ctx, analyticCT{name: "availability", rate: 0.4,
		crashMTBF: av.MTBF, repairMean: av.MeanRepair, policy: alwaysOn}, seeds)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "availability", Sim: "ctsim", Metric: "uptime fraction",
		Theory: av.Value(), Observed: p.avail.Mean(), CI: p.avail.CI95(), Slack: relSlack * av.Value()})
	return nil
}

// ---------------------------------------------------------------------------
// Slotted rungs

// analyticSlotChecks runs the always-on exactness rung and the LP/MDP
// optimal-cost bound on the slotted simulator.
func analyticSlotChecks(ctx context.Context, r *AnalyticReport, seeds []uint64, par Parallel) error {
	dev, err := CanonDevice()
	if err != nil {
		return err
	}
	const arrivalP = 0.3
	sc := Scenario{
		Name:          "analytic-bernoulli",
		Device:        dev,
		QueueCap:      CanonQueueCap,
		LatencyWeight: CanonLatencyWeight,
		Slots:         slotHorizon,
		Workload: func() workload.Arrivals {
			b, err := workload.NewBernoulli(arrivalP)
			if err != nil {
				panic(err) // the rate is a static constant in range
			}
			return b
		},
	}

	// Rung 6 — slotted always-on exactness: with one service per slot
	// and at most one Bernoulli arrival per slot, every request is
	// served in its arrival slot — power is exactly the active draw,
	// wait and loss are exactly zero, and the per-slot cost is exactly
	// the active energy. No CI needed: the identity holds per replica.
	sum, err := RunReplicatedCtx(ctx, sc, AlwaysOnFactory(dev), seeds, par)
	if err != nil {
		return err
	}
	activePower := device.Synthetic3().States[0].Power
	r.add(AnalyticCheck{Rung: "slotted always-on", Sim: "slotsim", Metric: "power (W)",
		Theory: activePower, Observed: sum.AvgPowerW.Mean(), Slack: exactTol})
	r.add(AnalyticCheck{Rung: "slotted always-on", Sim: "slotsim", Metric: "wait (slots)",
		Theory: 0, Observed: sum.MeanWaitSlots.Mean(), Slack: exactTol})
	r.add(AnalyticCheck{Rung: "slotted always-on", Sim: "slotsim", Metric: "loss rate",
		Theory: 0, Observed: sum.LossRate.Mean(), Slack: exactTol})
	r.add(AnalyticCheck{Rung: "slotted always-on", Sim: "slotsim", Metric: "cost/slot",
		Theory: activePower * CanonSlotSeconds, Observed: sum.AvgCost.Mean(), Slack: exactTol})

	// Rung 7 — the optimal-cost bound: the average-cost MDP/LP optimum
	// is exact for the simulated chain, so no stationary policy may
	// average below it, and the derived optimal policy must attain it.
	oc, err := analytic.SolveOptimalCost(dev, arrivalP, CanonQueueCap, CanonLatencyWeight)
	if err != nil {
		return err
	}
	if err := oc.AppliesTo(analytic.Regime{
		Arrivals:  analytic.ArrivalBernoulli,
		Service:   analytic.ServiceDeterministic,
		Policy:    analytic.PolicyOptimal,
		SystemCap: CanonQueueCap,
	}); err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "optimal bound", Sim: "mdp/lp", Metric: "RVI vs LP gain",
		Theory: oc.Gain, Observed: oc.LPGain, Slack: analytic.CrossTol})

	optPF, _, err := OptimalFactory(dev, arrivalP)
	if err != nil {
		return err
	}
	opt, err := RunReplicatedCtx(ctx, sc, optPF, seeds, par)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "optimal bound", Sim: "slotsim", Metric: "optimal policy cost/slot",
		Theory: oc.Gain, Observed: opt.AvgCost.Mean(), CI: opt.AvgCost.CI95(), Slack: relSlack * oc.Gain})
	for _, pf := range []PolicyFactory{
		AlwaysOnFactory(dev),
		GreedyOffFactory(dev),
		TimeoutFactory(dev, 8),
		QDPMFactory(dev),
	} {
		s, err := RunReplicatedCtx(ctx, sc, pf, seeds, par)
		if err != nil {
			return err
		}
		r.add(AnalyticCheck{Rung: "optimal bound", Sim: "slotsim",
			Metric: fmt.Sprintf("%s cost/slot ≥ optimum", pf.Name),
			Theory: oc.Gain, Observed: s.AvgCost.Mean(), CI: s.AvgCost.CI95(),
			Slack: relSlack * oc.Gain, Bound: true})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Fleet rungs

// analyticFleetChecks runs the uncoupled always-on fleet against the
// exact-power and M/D/1 predictions, and a crash/repair fleet against
// the alternating-renewal availability.
func analyticFleetChecks(ctx context.Context, r *AnalyticReport, seeds []uint64, par Parallel) error {
	// Two fleet replicas suffice: the CI comes from pooling per-instance
	// samples (fleetDevices per replica), not per-seed means.
	fleetSeeds := seeds
	if len(fleetSeeds) > 2 {
		fleetSeeds = fleetSeeds[:2]
	}
	mix, err := fleet.ParseMix("synthetic3:exp:0.4:always-on")
	if err != nil {
		return err
	}

	// Rung 8 — uncoupled, unfaulted always-on fleet: each instance is
	// an independent M/D/1 queue (service starts are event-driven even
	// under the periodic governor), truncated at the fleet queue cap —
	// immaterial at ρ = 0.2, covered by the slack.
	md1, err := analytic.NewMD1(0.4, device.Synthetic3().ServiceTime)
	if err != nil {
		return err
	}
	if err := md1.AppliesTo(analytic.Regime{
		Arrivals: analytic.ArrivalPoisson,
		Service:  analytic.ServiceDeterministic,
		Policy:   analytic.PolicyAlwaysOn,
	}); err != nil {
		return err
	}
	sum, err := RunFleetReplicatedCtx(ctx, FleetScenario{
		Name: "analytic-fleet",
		Spec: fleet.Spec{Devices: fleetDevices, Classes: mix, Horizon: fleetHorizon},
	}, fleetSeeds, par)
	if err != nil {
		return err
	}
	activePower := device.Synthetic3().States[0].Power
	r.add(AnalyticCheck{Rung: "fleet M/D/1", Sim: "fleet", Metric: "power (W)",
		Theory: activePower, Observed: sum.Fleet.AvgPowerW.Mean(), Slack: exactTol})
	r.add(AnalyticCheck{Rung: "fleet M/D/1", Sim: "fleet", Metric: "sojourn (s)",
		Theory: md1.MeanSojourn(), Observed: sum.Fleet.MeanWaitSec.Mean(),
		CI: sum.Fleet.MeanWaitSec.CI95(), Slack: relSlack * md1.MeanSojourn()})

	// Rung 9 — faulted fleet availability, pooled across every instance
	// of every replica.
	av := analytic.Availability{MTBF: 50, MeanRepair: 5}
	if err := av.Validate(); err != nil {
		return err
	}
	if err := av.AppliesTo(analytic.Regime{Faults: true}); err != nil {
		return err
	}
	fsum, err := RunFleetReplicatedCtx(ctx, FleetScenario{
		Name: "analytic-fleet-faulted",
		Spec: fleet.Spec{
			Devices: fleetDevices, Classes: mix, Horizon: fleetHorizon,
			Faults: &fleet.FaultSpec{CrashMTBF: av.MTBF, RepairMean: av.MeanRepair},
		},
	}, fleetSeeds, par)
	if err != nil {
		return err
	}
	r.add(AnalyticCheck{Rung: "fleet availability", Sim: "fleet", Metric: "uptime fraction",
		Theory: av.Value(), Observed: fsum.Fleet.Availability(),
		CI: fsum.Fleet.DowntimeSec.CI95() / fsum.Fleet.HorizonSec, Slack: relSlack * av.Value()})
	return nil
}

// ---------------------------------------------------------------------------
// Table rendering

// TableAnalytic renders the conformance harness; see TableAnalyticCtx.
func TableAnalytic(seeds []uint64) (*Table, error) {
	return TableAnalyticCtx(context.Background(), seeds, Parallel{})
}

// TableAnalyticCtx runs the harness and renders one row per check.
func TableAnalyticCtx(ctx context.Context, seeds []uint64, par Parallel) (*Table, error) {
	rep, err := RunAnalyticCtx(ctx, seeds, par)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table A — analytic conformance (sim vs closed form)",
		Headers: []string{"rung", "sim", "metric", "theory", "simulated", "±95%", "slack", "verdict"},
		Note: fmt.Sprintf("%d seeds, ct horizon %g s, %d slots, fleet %d×%g s; pass iff |sim−theory| ≤ CI95+slack (bounds one-sided); see docs/ANALYTIC.md",
			len(seeds), float64(ctHorizon), int(slotHorizon), fleetDevices, float64(fleetHorizon)),
	}
	for _, c := range rep.Checks {
		verdict := "ok"
		if !c.Pass {
			verdict = "FAIL"
		}
		if c.Bound {
			verdict += " (bound)"
		}
		t.Rows = append(t.Rows, []string{
			c.Rung, c.Sim, c.Metric,
			fmt.Sprintf("%.6f", c.Theory),
			fmt.Sprintf("%.6f", c.Observed),
			fmt.Sprintf("%.6f", c.CI),
			fmt.Sprintf("%.6f", c.Slack),
			verdict,
		})
	}
	return t, nil
}
