package experiment

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fleet"
	"repro/internal/stats"
)

// FleetScenario describes one replicated fleet experiment: a fleet spec
// whose Seed field is replaced per replica.
type FleetScenario struct {
	// Name labels the scenario.
	Name string
	// Spec is the fleet under test (Spec.Seed is overridden per replica).
	Spec fleet.Spec
}

// Validate checks the scenario.
func (sc *FleetScenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("experiment: fleet scenario needs a name")
	}
	return sc.Spec.Validate()
}

// FleetSummary pools replicated fleet runs: one sample per replica of
// each fleet-level mean, plus the fleet summaries themselves merged in
// seed order (so per-class breakdowns and wait percentiles cover every
// instance of every replica).
type FleetSummary struct {
	Scenario string
	// Replicas is the number of pooled fleet runs.
	Replicas int
	// AvgPowerW, EnergyReduction, MeanWaitSec, and LossRate pool one
	// fleet-mean sample per replica.
	AvgPowerW       stats.Running
	EnergyReduction stats.Running
	MeanWaitSec     stats.Running
	LossRate        stats.Running
	// Fleet merges every replica's fleet summary in seed order.
	Fleet fleet.Summary
}

// addReplica folds one fleet run into the summary.
func (s *FleetSummary) addReplica(f *fleet.Summary) {
	s.Replicas++
	s.AvgPowerW.Add(f.AvgPowerW.Mean())
	s.EnergyReduction.Add(f.EnergyReduction.Mean())
	s.MeanWaitSec.Add(f.MeanWaitSec.Mean())
	s.LossRate.Add(f.LossRate.Mean())
	s.Fleet.Merge(f)
}

// Merge combines another summary (same scenario) into s, with the same
// bit-identical singleton-merge property as Summary.Merge.
func (s *FleetSummary) Merge(o *FleetSummary) {
	if s.Scenario == "" {
		s.Scenario = o.Scenario
	}
	s.Replicas += o.Replicas
	s.AvgPowerW.Merge(&o.AvgPowerW)
	s.EnergyReduction.Merge(&o.EnergyReduction)
	s.MeanWaitSec.Merge(&o.MeanWaitSec)
	s.LossRate.Merge(&o.LossRate)
	s.Fleet.Merge(&o.Fleet)
}

// RunFleetReplicated executes one fleet run per seed on a GOMAXPROCS
// pool and pools the results.
func RunFleetReplicated(sc FleetScenario, seeds []uint64) (*FleetSummary, error) {
	return RunFleetReplicatedCtx(context.Background(), sc, seeds, Parallel{})
}

// RunFleetReplicatedCtx is RunFleetReplicated with cancellation and pool
// control. Replicas run back to back in seed order — the parallelism
// lives inside each fleet run, which fans its shards across the pool —
// and fold in seed order, so the result honours the repository
// determinism contract: bit-identical output for every -parallel value.
//
// Graceful degradation passes through from fleet.Run: a replica that
// fails some shards (*fleet.PartialError) still folds its surviving
// summary, the remaining replicas still run, and the call returns the
// pooled summary alongside the joined per-replica partial errors. Any
// other error stays fatal (nil summary).
func RunFleetReplicatedCtx(ctx context.Context, sc FleetScenario, seeds []uint64, par Parallel) (*FleetSummary, error) {
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sum := &FleetSummary{Scenario: sc.Name}
	var partial error
	for _, seed := range seeds {
		spec := sc.Spec
		spec.Seed = seed
		f, err := fleet.Run(ctx, spec, par.pool())
		if err != nil {
			var pe *fleet.PartialError
			if !errors.As(err, &pe) {
				return nil, err
			}
			partial = errors.Join(partial, fmt.Errorf("replica seed %d: %w", seed, pe))
		}
		sum.addReplica(f)
	}
	return sum, partial
}

// ---------------------------------------------------------------------------
// Table Fleet — fleet-scale mixed-workload comparison

// TableFleet runs the canonical heterogeneous fleet (DefaultMix) at the
// given scale and renders per-class and per-policy aggregates plus
// fleet-level wait percentiles.
func TableFleet(devices int, horizon float64, mode fleet.Mode, seeds []uint64) (*Table, error) {
	return TableFleetCtx(context.Background(), devices, horizon, mode, seeds, Parallel{})
}

// TableFleetCtx is TableFleet with cancellation and pool control; output
// is bit-identical for every -parallel value.
func TableFleetCtx(ctx context.Context, devices int, horizon float64, mode fleet.Mode, seeds []uint64, par Parallel) (*Table, error) {
	sc := FleetScenario{
		Name: "fleet",
		Spec: fleet.Spec{
			Devices: devices,
			Classes: fleet.DefaultMix(),
			Mode:    mode,
			Horizon: horizon,
		},
	}
	sum, err := RunFleetReplicatedCtx(ctx, sc, seeds, par)
	if err != nil {
		return nil, err
	}
	return FleetTable(sum)
}

// FleetTable renders a pooled fleet summary as per-class rows, per-policy
// rollups, a fleet-total row, and a note carrying the fleet-level wait
// percentiles. The output is a pure function of the summary, so it is
// bit-identical across -parallel values whenever the summary is. A
// coupled summary (Fleet.Couple set) grows three interference columns —
// mean per-instance contention wait, gateway drops, budget denials —
// and an uncoupled one renders byte-identically to the pre-coupling
// layout (the PR-pinned golden output).
func FleetTable(sum *FleetSummary) (*Table, error) {
	replicas := sum.Replicas
	if replicas < 1 {
		replicas = 1
	}
	coupled := sum.Fleet.Couple != fleet.CoupleNone
	faulted := sum.Fleet.Faulted
	kernel := string(sum.Fleet.Mode)
	if coupled {
		kernel = fmt.Sprintf("%s kernel, coupled %s ×%d", sum.Fleet.Mode, sum.Fleet.Couple, sum.Fleet.CoupleSize)
	} else {
		kernel += " kernel"
	}
	if faulted {
		kernel += ", faulted"
	}
	// Fleet.Devices accumulates across replicas; the title names the
	// per-replica fleet size, matching the note.
	t := &Table{
		Title: fmt.Sprintf("Table Fleet — %d heterogeneous devices (%s)",
			sum.Fleet.Devices/int64(replicas), kernel),
		Headers: []string{"group", "policy", "instances", "power (W)", "±95%", "wait (s)", "loss", "energy red."},
	}
	if coupled {
		t.Headers = append(t.Headers, "res.wait (s)", "drops", "denied")
	}
	if faulted {
		t.Headers = append(t.Headers, "avail", "crashes", "retries")
	}
	row := func(name string, c *fleet.ClassStats) {
		cells := []string{
			name,
			c.Policy,
			fmt.Sprintf("%d", c.Instances),
			fmt.Sprintf("%.4f", c.AvgPowerW.Mean()),
			fmt.Sprintf("%.4f", c.AvgPowerW.CI95()),
			fmt.Sprintf("%.3f", c.MeanWaitSec.Mean()),
			fmt.Sprintf("%.2f%%", 100*c.LossRate.Mean()),
			fmt.Sprintf("%.1f%%", 100*c.EnergyReduction.Mean()),
		}
		if coupled {
			cells = append(cells,
				fmt.Sprintf("%.3f", c.ResourceWaitSec.Mean()),
				fmt.Sprintf("%d", c.ResourceDrops),
				fmt.Sprintf("%d", c.BudgetDenied),
			)
		}
		if faulted {
			cells = append(cells,
				fmt.Sprintf("%.4f", c.Availability(sum.Fleet.HorizonSec)),
				fmt.Sprintf("%d", c.Crashes),
				fmt.Sprintf("%d", c.Retries),
			)
		}
		t.Rows = append(t.Rows, cells)
	}
	for i := range sum.Fleet.Classes {
		row(sum.Fleet.Classes[i].Name, &sum.Fleet.Classes[i])
	}
	perPol := sum.Fleet.PerPolicy()
	for i := range perPol {
		row("policy="+perPol[i].Policy, &perPol[i])
	}
	fl := &fleet.ClassStats{
		Name:            "fleet",
		Policy:          "-",
		Instances:       sum.Fleet.Devices,
		AvgPowerW:       sum.Fleet.AvgPowerW,
		EnergyReduction: sum.Fleet.EnergyReduction,
		MeanWaitSec:     sum.Fleet.MeanWaitSec,
		LossRate:        sum.Fleet.LossRate,
		ResourceWaitSec: sum.Fleet.ResourceWaitSec,
		ResourceDrops:   sum.Fleet.ResourceDrops,
		BudgetDenied:    sum.Fleet.BudgetDenied,
		DowntimeSec:     sum.Fleet.DowntimeSec,
		EnergyOutageJ:   sum.Fleet.EnergyOutageJ,
		Crashes:         sum.Fleet.Crashes,
		Retries:         sum.Fleet.Retries,
		RetryExhausted:  sum.Fleet.RetryExhausted,
		LostToOutage:    sum.Fleet.LostToOutage,
	}
	row("fleet", fl)
	p50, err := sum.Fleet.WaitQuantile(0.50)
	if err != nil {
		return nil, err
	}
	p90, err := sum.Fleet.WaitQuantile(0.90)
	if err != nil {
		return nil, err
	}
	p99, err := sum.Fleet.WaitQuantile(0.99)
	if err != nil {
		return nil, err
	}
	t.Note = fmt.Sprintf(
		"%d devices × %d replicas over %.0f s, %d shards/replica, %d events; instance wait p50/p90/p99 = %.3f/%.3f/%.3f s; overall loss %.2f%%",
		sum.Fleet.Devices/int64(replicas), replicas, sum.Fleet.HorizonSec,
		sum.Fleet.Shards/replicas, sum.Fleet.Events,
		p50, p90, p99, 100*sum.Fleet.LossOverall())
	if coupled {
		t.Note += fmt.Sprintf("; contention wait mean %.3f s, %d gateway drops, %d budget denials",
			sum.Fleet.ResourceWaitSec.Mean(), sum.Fleet.ResourceDrops, sum.Fleet.BudgetDenied)
	}
	if faulted {
		t.Note += fmt.Sprintf("; availability %.4f, %d crashes, %d retries (%d exhausted), %d lost to outages, %.1f J burned in outages",
			sum.Fleet.Availability(), sum.Fleet.Crashes, sum.Fleet.Retries,
			sum.Fleet.RetryExhausted, sum.Fleet.LostToOutage, sum.Fleet.EnergyOutageJ)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Table Coupled Fleet — policies under contention severity

// TableCoupledFleet compares the canonical mix's policies under growing
// contention severity: one coupled fleet per group size in sizes, all
// contending for the given shared resource, rendered as per-policy
// rollups per severity level.
func TableCoupledFleet(devices int, horizon float64, couple fleet.CoupleMode, sizes []int, seeds []uint64) (*Table, error) {
	return TableCoupledFleetCtx(context.Background(), devices, horizon, couple, sizes, seeds, Parallel{})
}

// TableCoupledFleetCtx is TableCoupledFleet with cancellation and pool
// control; output is bit-identical for every -parallel value. The note
// tracks the interference acceptance signal: the p99 of per-instance
// mean waits per severity level, which grows with the group size.
func TableCoupledFleetCtx(ctx context.Context, devices int, horizon float64, couple fleet.CoupleMode, sizes []int, seeds []uint64, par Parallel) (*Table, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("experiment: coupled fleet table needs at least one group size")
	}
	t := &Table{
		Title:   fmt.Sprintf("Table Coupled Fleet — %d devices sharing a %s (%d severity levels)", devices, couple, len(sizes)),
		Headers: []string{"K", "policy", "power (W)", "wait (s)", "res.wait (s)", "drops", "denied", "energy red."},
	}
	note := "p99 wait by K:"
	for _, k := range sizes {
		sc := FleetScenario{
			Name: fmt.Sprintf("coupled-%s-%d", couple, k),
			Spec: fleet.Spec{
				Devices:    devices,
				Classes:    fleet.DefaultMix(),
				Mode:       fleet.ModeCT,
				Horizon:    horizon,
				Couple:     couple,
				CoupleSize: k,
			},
		}
		sum, err := RunFleetReplicatedCtx(ctx, sc, seeds, par)
		if err != nil {
			return nil, err
		}
		row := func(label string, c *fleet.ClassStats) {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k),
				label,
				fmt.Sprintf("%.4f", c.AvgPowerW.Mean()),
				fmt.Sprintf("%.3f", c.MeanWaitSec.Mean()),
				fmt.Sprintf("%.3f", c.ResourceWaitSec.Mean()),
				fmt.Sprintf("%d", c.ResourceDrops),
				fmt.Sprintf("%d", c.BudgetDenied),
				fmt.Sprintf("%.1f%%", 100*c.EnergyReduction.Mean()),
			})
		}
		perPol := sum.Fleet.PerPolicy()
		for i := range perPol {
			row(perPol[i].Policy, &perPol[i])
		}
		row("fleet", &fleet.ClassStats{
			AvgPowerW:       sum.Fleet.AvgPowerW,
			EnergyReduction: sum.Fleet.EnergyReduction,
			MeanWaitSec:     sum.Fleet.MeanWaitSec,
			ResourceWaitSec: sum.Fleet.ResourceWaitSec,
			ResourceDrops:   sum.Fleet.ResourceDrops,
			BudgetDenied:    sum.Fleet.BudgetDenied,
		})
		p99, err := sum.Fleet.WaitQuantile(0.99)
		if err != nil {
			return nil, err
		}
		note += fmt.Sprintf(" %d→%.3f s", k, p99)
	}
	t.Note = note
	return t, nil
}

// ---------------------------------------------------------------------------
// Table Faulted Fleet — policies under fault severity

// FaultLevel is one severity rung of the faulted-fleet sweep.
type FaultLevel struct {
	// Name labels the level ("none", "mild", ...).
	Name string
	// Faults is the level's fault spec; nil is the fault-free baseline.
	Faults *fleet.FaultSpec
}

// DefaultFaultLevels is the canonical severity ladder: a fault-free
// baseline, then crash/retry regimes of rising crash rate, repair
// length, and transient-failure probability.
func DefaultFaultLevels() []FaultLevel {
	return []FaultLevel{
		{Name: "none"},
		{Name: "mild", Faults: &fleet.FaultSpec{CrashMTBF: 400, RepairMean: 5, FailProb: 0.02}},
		{Name: "moderate", Faults: &fleet.FaultSpec{CrashMTBF: 150, RepairMean: 10, FailProb: 0.05}},
		{Name: "severe", Faults: &fleet.FaultSpec{CrashMTBF: 60, RepairMean: 20, FailProb: 0.15}},
	}
}

// TableFaultedFleet compares the canonical mix's policies across the
// default fault-severity ladder.
func TableFaultedFleet(devices int, horizon float64, seeds []uint64) (*Table, error) {
	return TableFaultedFleetCtx(context.Background(), devices, horizon, DefaultFaultLevels(), seeds, Parallel{})
}

// TableFaultedFleetCtx is TableFaultedFleet with explicit levels,
// cancellation, and pool control; output is bit-identical for every
// -parallel value. The note tracks the resilience acceptance signal:
// fleet availability per severity level, which falls as faults
// intensify while the policies' losses and waits spread apart.
func TableFaultedFleetCtx(ctx context.Context, devices int, horizon float64, levels []FaultLevel, seeds []uint64, par Parallel) (*Table, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("experiment: faulted fleet table needs at least one fault level")
	}
	t := &Table{
		Title:   fmt.Sprintf("Table Faulted Fleet — %d devices under %d fault levels", devices, len(levels)),
		Headers: []string{"level", "policy", "power (W)", "wait (s)", "loss", "avail", "crashes", "retries", "energy red."},
	}
	note := "availability by level:"
	for _, lv := range levels {
		sc := FleetScenario{
			Name: "faulted-" + lv.Name,
			Spec: fleet.Spec{
				Devices: devices,
				Classes: fleet.DefaultMix(),
				Mode:    fleet.ModeCT,
				Horizon: horizon,
				Faults:  lv.Faults,
			},
		}
		sum, err := RunFleetReplicatedCtx(ctx, sc, seeds, par)
		if err != nil {
			return nil, err
		}
		row := func(label string, c *fleet.ClassStats) {
			t.Rows = append(t.Rows, []string{
				lv.Name,
				label,
				fmt.Sprintf("%.4f", c.AvgPowerW.Mean()),
				fmt.Sprintf("%.3f", c.MeanWaitSec.Mean()),
				fmt.Sprintf("%.2f%%", 100*c.LossRate.Mean()),
				fmt.Sprintf("%.4f", c.Availability(sum.Fleet.HorizonSec)),
				fmt.Sprintf("%d", c.Crashes),
				fmt.Sprintf("%d", c.Retries),
				fmt.Sprintf("%.1f%%", 100*c.EnergyReduction.Mean()),
			})
		}
		perPol := sum.Fleet.PerPolicy()
		for i := range perPol {
			row(perPol[i].Policy, &perPol[i])
		}
		row("fleet", &fleet.ClassStats{
			AvgPowerW:       sum.Fleet.AvgPowerW,
			EnergyReduction: sum.Fleet.EnergyReduction,
			MeanWaitSec:     sum.Fleet.MeanWaitSec,
			LossRate:        sum.Fleet.LossRate,
			DowntimeSec:     sum.Fleet.DowntimeSec,
			Crashes:         sum.Fleet.Crashes,
			Retries:         sum.Fleet.Retries,
		})
		note += fmt.Sprintf(" %s→%.4f", lv.Name, sum.Fleet.Availability())
	}
	t.Note = note
	return t, nil
}
