package experiment

import (
	"context"
	"fmt"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/stats"
)

// CTScenario describes one continuous-time simulated system. The slotted
// policies under comparison are wrapped with ctsim.Adapt at the scenario's
// Period, so the same PolicyFactory values drive both simulators.
type CTScenario struct {
	// Name labels the scenario.
	Name string
	// Device is the managed physical PSM (latencies in seconds).
	Device *device.PSM
	// QueueCap bounds the queue.
	QueueCap int
	// LatencyWeight scalarizes backlog-seconds into cost (J/request-s).
	LatencyWeight float64
	// Source builds a fresh arrival source per replica.
	Source func() ctsim.Source
	// Horizon is the run length in seconds.
	Horizon float64
	// Period is the governor tick interval (the adapter's reference slot).
	Period float64
}

// Validate checks the scenario.
func (sc *CTScenario) Validate() error {
	if sc.Device == nil {
		return fmt.Errorf("experiment: ct scenario %q needs a device", sc.Name)
	}
	if sc.Source == nil {
		return fmt.Errorf("experiment: ct scenario %q needs a source factory", sc.Name)
	}
	if !(sc.Horizon > 0) {
		return fmt.Errorf("experiment: ct scenario %q has non-positive horizon %v", sc.Name, sc.Horizon)
	}
	if !(sc.Period > 0) {
		return fmt.Errorf("experiment: ct scenario %q has non-positive period %v", sc.Name, sc.Period)
	}
	return nil
}

// ctReplicaConfig assembles one replica's simulator configuration under
// the repository determinism contract: the seed roots a stream whose first
// split feeds the policy and second split feeds the simulator — the same
// layout as the slotted newReplicaSim, so cross-simulator comparisons can
// share seeds.
func ctReplicaConfig(sc CTScenario, pf PolicyFactory, seed uint64) (ctsim.Config, error) {
	root := rng.New(seed)
	polStream := root.Split()
	simStream := root.Split()
	pol, err := pf.New(polStream)
	if err != nil {
		return ctsim.Config{}, fmt.Errorf("experiment: building policy %s: %w", pf.Name, err)
	}
	return ctsim.Config{
		Device:         sc.Device,
		QueueCap:       sc.QueueCap,
		LatencyWeight:  sc.LatencyWeight,
		Policy:         ctsim.Adapt(pol, sc.Period),
		Source:         sc.Source(),
		Stream:         simStream,
		DecisionPeriod: sc.Period,
	}, nil
}

// ctScratch is one worker's reusable replica state: the simulator (whose
// kernel arena, queue ring, and StateTime buffer survive across the
// replicas this worker runs) and a metrics scratch for MetricsInto. A
// worker's scratch never influences results — ctsim.Sim.Reset is
// bit-identical to a fresh build — it only keeps replica turnover off the
// allocator.
type ctScratch struct {
	sim     *ctsim.Sim
	metrics ctsim.Metrics
}

// runCTReplica executes one replica into ws.metrics, building the
// simulator fresh on the worker's first job and resetting it afterwards.
// Replicas run in chunks of ctCancelChunkTicks governor ticks and poll
// the context between chunks.
func runCTReplica(ctx context.Context, sc CTScenario, pf PolicyFactory, seed uint64, ws *ctScratch) error {
	cfg, err := ctReplicaConfig(sc, pf, seed)
	if err != nil {
		return err
	}
	if ws.sim == nil {
		if ws.sim, err = ctsim.New(cfg); err != nil {
			return err
		}
	} else if err = ws.sim.Reset(cfg); err != nil {
		return err
	}
	if err := ws.sim.RunChunked(ctx, sc.Horizon, sc.Period*ctCancelChunkTicks); err != nil {
		return err
	}
	ws.sim.MetricsInto(&ws.metrics)
	return nil
}

// ctCancelChunkTicks bounds cancellation latency: replicas run in chunks
// of this many governor ticks and poll the context between chunks.
const ctCancelChunkTicks = 8192

// RunCTOne executes one continuous-time replica and returns its metrics.
func RunCTOne(sc CTScenario, pf PolicyFactory, seed uint64) (ctsim.Metrics, error) {
	return RunCTOneCtx(context.Background(), sc, pf, seed)
}

// RunCTOneCtx is RunCTOne with cooperative cancellation between simulated
// chunks.
func RunCTOneCtx(ctx context.Context, sc CTScenario, pf PolicyFactory, seed uint64) (ctsim.Metrics, error) {
	if err := sc.Validate(); err != nil {
		return ctsim.Metrics{}, err
	}
	var ws ctScratch
	if err := runCTReplica(ctx, sc, pf, seed, &ws); err != nil {
		return ctsim.Metrics{}, err
	}
	return ws.metrics, nil
}

// CTSummary pools continuous-time replica metrics for one policy on one
// scenario.
type CTSummary struct {
	Policy   string
	Scenario string
	// Replicas is the number of pooled runs.
	Replicas int
	// AvgPowerW, EnergyReduction, MeanWaitSec, and LossRate aggregate
	// per-replica values (EnergyReduction is relative to the device's
	// hungriest state).
	AvgPowerW       stats.Running
	EnergyReduction stats.Running
	MeanWaitSec     stats.Running
	LossRate        stats.Running
}

// addReplica folds one replica's metrics into the summary.
func (s *CTSummary) addReplica(m *ctsim.Metrics, maxPowerW float64) {
	s.Replicas++
	p := m.AvgPowerW()
	s.AvgPowerW.Add(p)
	s.EnergyReduction.Add(1 - p/maxPowerW)
	s.MeanWaitSec.Add(m.MeanWaitSeconds())
	s.LossRate.Add(m.LossRate())
}

// Merge combines another summary (same policy and scenario) into s, with
// the same bit-identical singleton-merge property as Summary.Merge.
func (s *CTSummary) Merge(o *CTSummary) {
	if s.Policy == "" {
		s.Policy, s.Scenario = o.Policy, o.Scenario
	}
	s.Replicas += o.Replicas
	s.AvgPowerW.Merge(&o.AvgPowerW)
	s.EnergyReduction.Merge(&o.EnergyReduction)
	s.MeanWaitSec.Merge(&o.MeanWaitSec)
	s.LossRate.Merge(&o.LossRate)
}

// RunCTReplicated executes one continuous-time replica per seed on a
// GOMAXPROCS pool and pools the metrics.
func RunCTReplicated(sc CTScenario, pf PolicyFactory, seeds []uint64) (*CTSummary, error) {
	return RunCTReplicatedCtx(context.Background(), sc, pf, seeds, Parallel{})
}

// RunCTReplicatedCtx is RunCTReplicated with cancellation and pool
// control; the seed-order merge makes the result bit-identical for every
// worker count.
func RunCTReplicatedCtx(ctx context.Context, sc CTScenario, pf PolicyFactory, seeds []uint64, par Parallel) (*CTSummary, error) {
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	maxP := sc.Device.MaxPower()
	pool := par.pool()
	scratch := make([]ctScratch, pool.Size(len(seeds)))
	parts, err := engine.MapWorkers(ctx, pool, len(seeds),
		func(ctx context.Context, worker, i int) (*CTSummary, error) {
			ws := &scratch[worker]
			if err := runCTReplica(ctx, sc, pf, seeds[i], ws); err != nil {
				return nil, err
			}
			s := &CTSummary{Policy: pf.Name, Scenario: sc.Name}
			s.addReplica(&ws.metrics, maxP)
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	sum := &CTSummary{Policy: pf.Name, Scenario: sc.Name}
	for _, p := range parts {
		sum.Merge(p)
	}
	return sum, nil
}

// ctReplicaGrid fans one continuous-time replica per (cell, seed) pair
// across the pool and reduces each cell in seed order — the ct analog of
// replicaGrid, with the same determinism guarantee.
func ctReplicaGrid[C any](ctx context.Context, par Parallel, cells []C, seeds []uint64, cell func(C) (CTScenario, PolicyFactory)) ([]*CTSummary, error) {
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	for _, c := range cells {
		sc, _ := cell(c)
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}
	pool := par.pool()
	scratch := make([]ctScratch, pool.Size(len(cells)*len(seeds)))
	parts, err := engine.MapWorkers(ctx, pool, len(cells)*len(seeds),
		func(ctx context.Context, worker, i int) (*CTSummary, error) {
			sc, pf := cell(cells[i/len(seeds)])
			ws := &scratch[worker]
			if err := runCTReplica(ctx, sc, pf, seeds[i%len(seeds)], ws); err != nil {
				return nil, err
			}
			s := &CTSummary{Policy: pf.Name, Scenario: sc.Name}
			s.addReplica(&ws.metrics, sc.Device.MaxPower())
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]*CTSummary, len(cells))
	for ci := range cells {
		sum := &CTSummary{}
		for si := range seeds {
			sum.Merge(parts[ci*len(seeds)+si])
		}
		out[ci] = sum
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table CT — continuous-time workload comparison

// ctCell names one (scenario, policy) table cell.
type ctCell struct {
	sc CTScenario
	pf PolicyFactory
}

// TableCT compares policies on the event-driven simulator across renewal
// workloads the slot grid cannot express natively — Poisson (exp),
// high-variance hyperexponential, and heavy-tailed Pareto and Weibull
// interarrivals — at ratePerSec arrivals per second over horizon seconds.
func TableCT(ratePerSec, horizon float64, seeds []uint64) (*Table, error) {
	return TableCTCtx(context.Background(), ratePerSec, horizon, seeds, Parallel{})
}

// TableCTCtx is TableCT with cancellation and pool control: the
// scenario × policy × seed replica grid fans out across the worker pool
// and reduces in seed order, so output is bit-identical for every
// -parallel value.
func TableCTCtx(ctx context.Context, ratePerSec, horizon float64, seeds []uint64, par Parallel) (*Table, error) {
	psm := device.Synthetic3()
	dev, err := CanonDevice()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table CT — continuous-time renewal workloads (synthetic3, event kernel)",
		Headers: []string{"workload", "policy", "power (W)", "±95%", "wait (s)", "loss", "energy red."},
		Note: fmt.Sprintf("%g arrivals/s over %.0f s, %d seeds; ctsim with %g s governor period; energy reduction vs always-on",
			ratePerSec, horizon, len(seeds), CanonSlotSeconds),
	}

	var cells []ctCell
	for _, name := range []string{"exp", "hyperexp", "pareto", "weibull"} {
		name := name
		sc := CTScenario{
			Name:          name,
			Device:        psm,
			QueueCap:      CanonQueueCap,
			LatencyWeight: CanonLatencyWeight / CanonSlotSeconds,
			Horizon:       horizon,
			Period:        CanonSlotSeconds,
			Source: func() ctsim.Source {
				d, err := dist.ByName(name, ratePerSec)
				if err != nil {
					panic(err) // names are static; ByName covers them all
				}
				src, err := ctsim.NewRenewalSource(d)
				if err != nil {
					panic(err)
				}
				return src
			},
		}
		for _, pf := range []PolicyFactory{
			AlwaysOnFactory(dev),
			GreedyOffFactory(dev),
			TimeoutFactory(dev, 8),
			QDPMFactory(dev),
		} {
			cells = append(cells, ctCell{sc: sc, pf: pf})
		}
	}

	sums, err := ctReplicaGrid(ctx, par, cells, seeds, func(c ctCell) (CTScenario, PolicyFactory) {
		return c.sc, c.pf
	})
	if err != nil {
		return nil, err
	}
	for ci, cell := range cells {
		sum := sums[ci]
		t.Rows = append(t.Rows, []string{
			cell.sc.Name,
			cell.pf.Name,
			fmt.Sprintf("%.4f", sum.AvgPowerW.Mean()),
			fmt.Sprintf("%.4f", sum.AvgPowerW.CI95()),
			fmt.Sprintf("%.3f", sum.MeanWaitSec.Mean()),
			fmt.Sprintf("%.2f%%", 100*sum.LossRate.Mean()),
			fmt.Sprintf("%.1f%%", 100*sum.EnergyReduction.Mean()),
		})
	}
	return t, nil
}
