// Package experiment drives the figure and table reproductions: scenario
// definitions, replicated runs with pooled statistics, windowed time
// series, and text renderers for figures (numeric series + ASCII chart)
// and tables.
//
// Every experiment is deterministic: a scenario plus a base seed fully
// determines the output. Policy and workload instances are constructed
// fresh per replica from factories so no state leaks across runs.
package experiment

import (
	"context"
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PolicyFactory builds a fresh policy per replica.
type PolicyFactory struct {
	// Name labels the policy in outputs.
	Name string
	// New constructs the policy; stream is a dedicated policy stream.
	New func(stream *rng.Stream) (slotsim.Policy, error)
}

// Scenario describes one simulated system.
type Scenario struct {
	// Name labels the scenario.
	Name string
	// Device is the managed PSM.
	Device *device.Slotted
	// QueueCap bounds the queue.
	QueueCap int
	// LatencyWeight scalarizes backlog into cost.
	LatencyWeight float64
	// Workload builds a fresh arrival process per replica.
	Workload func() workload.Arrivals
	// Slots is the run length.
	Slots int64
}

// Validate checks the scenario.
func (sc *Scenario) Validate() error {
	if sc.Device == nil {
		return fmt.Errorf("experiment: scenario %q needs a device", sc.Name)
	}
	if sc.Workload == nil {
		return fmt.Errorf("experiment: scenario %q needs a workload factory", sc.Name)
	}
	if sc.Slots <= 0 {
		return fmt.Errorf("experiment: scenario %q has non-positive slots %d", sc.Name, sc.Slots)
	}
	return nil
}

// newReplicaSim builds one replica's simulator with the deterministic
// per-replica stream layout: the seed roots a stream whose first split
// feeds the policy and second split feeds the simulator, so a replica's
// randomness is a pure function of (scenario, factory, seed) and never of
// which worker runs it.
func newReplicaSim(sc Scenario, pf PolicyFactory, seed uint64) (*slotsim.Sim, error) {
	root := rng.New(seed)
	polStream := root.Split()
	simStream := root.Split()
	pol, err := pf.New(polStream)
	if err != nil {
		return nil, fmt.Errorf("experiment: building policy %s: %w", pf.Name, err)
	}
	return slotsim.New(slotsim.Config{
		Device:        sc.Device,
		Arrivals:      sc.Workload(),
		QueueCap:      sc.QueueCap,
		Policy:        pol,
		Stream:        simStream,
		LatencyWeight: sc.LatencyWeight,
	})
}

// RunOne executes one replica and returns the metrics. The observer, when
// non-nil, sees every slot record.
func RunOne(sc Scenario, pf PolicyFactory, seed uint64, observer func(slotsim.SlotRecord)) (slotsim.Metrics, error) {
	return RunOneCtx(context.Background(), sc, pf, seed, observer)
}

// Summary pools replica metrics for one policy on one scenario.
type Summary struct {
	Policy   string
	Scenario string
	// Replicas is the number of pooled runs.
	Replicas int
	// AvgPowerW, AvgCost, MeanWaitSlots, LossRate, and EnergyReduction
	// aggregate per-replica values (EnergyReduction is relative to the
	// always-on power of the device).
	AvgPowerW       stats.Running
	AvgCost         stats.Running
	MeanWaitSlots   stats.Running
	LossRate        stats.Running
	EnergyReduction stats.Running
}

// errNoSeeds is the shared empty-replication error.
var errNoSeeds = fmt.Errorf("experiment: no seeds")

// addReplica folds one replica's metrics into the summary.
func (s *Summary) addReplica(m *slotsim.Metrics, slotDuration, maxPower float64) {
	s.Replicas++
	p := m.AvgPowerW(slotDuration)
	s.AvgPowerW.Add(p)
	s.AvgCost.Add(m.AvgCost())
	s.MeanWaitSlots.Add(m.MeanWaitSlots())
	s.LossRate.Add(m.LossRate())
	s.EnergyReduction.Add(1 - p/maxPower)
}

// Merge combines another summary (same policy and scenario) into s. The
// per-metric merge is the parallel Welford combination, which for the
// single-replica parts produced by the worker pool is bit-identical to
// adding the replicas serially in the same order.
func (s *Summary) Merge(o *Summary) {
	if s.Policy == "" {
		s.Policy, s.Scenario = o.Policy, o.Scenario
	}
	s.Replicas += o.Replicas
	s.AvgPowerW.Merge(&o.AvgPowerW)
	s.AvgCost.Merge(&o.AvgCost)
	s.MeanWaitSlots.Merge(&o.MeanWaitSlots)
	s.LossRate.Merge(&o.LossRate)
	s.EnergyReduction.Merge(&o.EnergyReduction)
}

// RunReplicated executes one replica per seed and pools the metrics. The
// replicas run on a GOMAXPROCS worker pool; use RunReplicatedCtx to
// control the pool or cancel mid-run.
func RunReplicated(sc Scenario, pf PolicyFactory, seeds []uint64) (*Summary, error) {
	return RunReplicatedCtx(context.Background(), sc, pf, seeds, Parallel{})
}

// WindowedCostSeries runs one replica and returns the sliding-window
// average per-slot cost sampled every stride slots — the Fig. 1 y-axis.
func WindowedCostSeries(sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, error) {
	return WindowedCostSeriesCtx(context.Background(), sc, pf, seed, window, stride)
}

// WindowedCostSeriesCtx is WindowedCostSeries with cooperative
// cancellation.
func WindowedCostSeriesCtx(ctx context.Context, sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, error) {
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("experiment: window %d and stride %d must be positive", window, stride)
	}
	win, err := stats.NewWindow(window)
	if err != nil {
		return nil, err
	}
	series := &stats.Series{Name: pf.Name}
	_, err = RunOneCtx(ctx, sc, pf, seed, func(r slotsim.SlotRecord) {
		win.Add(r.Cost)
		if r.Slot%int64(stride) == int64(stride)-1 && win.Full() {
			series.Append(float64(r.Slot+1), win.Mean())
		}
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// WindowedEnergyReductionSeries runs one replica and returns the sliding-
// window energy reduction relative to always-on — the Fig. 2 y-axis.
func WindowedEnergyReductionSeries(sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, error) {
	return WindowedEnergyReductionSeriesCtx(context.Background(), sc, pf, seed, window, stride)
}

// WindowedEnergyReductionSeriesCtx is WindowedEnergyReductionSeries with
// cooperative cancellation.
func WindowedEnergyReductionSeriesCtx(ctx context.Context, sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, error) {
	series, _, err := windowedEnergyReductionSeriesMetrics(ctx, sc, pf, seed, window, stride)
	return series, err
}

// windowedEnergyReductionSeriesMetrics also returns the replica's metrics
// so drivers that need both (Table R3) pay for one simulation, not two.
func windowedEnergyReductionSeriesMetrics(ctx context.Context, sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, slotsim.Metrics, error) {
	if window <= 0 || stride <= 0 {
		return nil, slotsim.Metrics{}, fmt.Errorf("experiment: window %d and stride %d must be positive", window, stride)
	}
	win, err := stats.NewWindow(window)
	if err != nil {
		return nil, slotsim.Metrics{}, err
	}
	maxE := sc.Device.MaxPowerEnergy()
	series := &stats.Series{Name: pf.Name}
	m, err := RunOneCtx(ctx, sc, pf, seed, func(r slotsim.SlotRecord) {
		win.Add(r.Energy)
		if r.Slot%int64(stride) == int64(stride)-1 && win.Full() {
			series.Append(float64(r.Slot+1), 1-win.Mean()/maxE)
		}
	})
	if err != nil {
		return nil, slotsim.Metrics{}, err
	}
	return series, m, nil
}

// MeanSeries averages several equally-sampled series pointwise (multi-seed
// figure smoothing). All series must share length and x grid.
func MeanSeries(name string, in []*stats.Series) (*stats.Series, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("experiment: no series to average")
	}
	n := in[0].Len()
	for _, s := range in[1:] {
		if s.Len() != n {
			return nil, fmt.Errorf("experiment: series lengths differ (%d vs %d)", s.Len(), n)
		}
	}
	out := &stats.Series{Name: name}
	for i := 0; i < n; i++ {
		y := 0.0
		for _, s := range in {
			y += s.Y[i]
		}
		out.Append(in[0].X[i], y/float64(len(in)))
	}
	return out, nil
}
