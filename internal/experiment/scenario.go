// Package experiment drives the figure and table reproductions: scenario
// definitions, replicated runs with pooled statistics, windowed time
// series, and text renderers for figures (numeric series + ASCII chart)
// and tables.
//
// Every experiment is deterministic: a scenario plus a base seed fully
// determines the output. Policy and workload instances are constructed
// fresh per replica from factories so no state leaks across runs.
package experiment

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PolicyFactory builds a fresh policy per replica.
type PolicyFactory struct {
	// Name labels the policy in outputs.
	Name string
	// New constructs the policy; stream is a dedicated policy stream.
	New func(stream *rng.Stream) (slotsim.Policy, error)
}

// Scenario describes one simulated system.
type Scenario struct {
	// Name labels the scenario.
	Name string
	// Device is the managed PSM.
	Device *device.Slotted
	// QueueCap bounds the queue.
	QueueCap int
	// LatencyWeight scalarizes backlog into cost.
	LatencyWeight float64
	// Workload builds a fresh arrival process per replica.
	Workload func() workload.Arrivals
	// Slots is the run length.
	Slots int64
}

// Validate checks the scenario.
func (sc *Scenario) Validate() error {
	if sc.Device == nil {
		return fmt.Errorf("experiment: scenario %q needs a device", sc.Name)
	}
	if sc.Workload == nil {
		return fmt.Errorf("experiment: scenario %q needs a workload factory", sc.Name)
	}
	if sc.Slots <= 0 {
		return fmt.Errorf("experiment: scenario %q has non-positive slots %d", sc.Name, sc.Slots)
	}
	return nil
}

// RunOne executes one replica and returns the metrics. The observer, when
// non-nil, sees every slot record.
func RunOne(sc Scenario, pf PolicyFactory, seed uint64, observer func(slotsim.SlotRecord)) (slotsim.Metrics, error) {
	if err := sc.Validate(); err != nil {
		return slotsim.Metrics{}, err
	}
	root := rng.New(seed)
	polStream := root.Split()
	simStream := root.Split()
	pol, err := pf.New(polStream)
	if err != nil {
		return slotsim.Metrics{}, fmt.Errorf("experiment: building policy %s: %w", pf.Name, err)
	}
	sim, err := slotsim.New(slotsim.Config{
		Device:        sc.Device,
		Arrivals:      sc.Workload(),
		QueueCap:      sc.QueueCap,
		Policy:        pol,
		Stream:        simStream,
		LatencyWeight: sc.LatencyWeight,
	})
	if err != nil {
		return slotsim.Metrics{}, err
	}
	return sim.Run(sc.Slots, observer)
}

// Summary pools replica metrics for one policy on one scenario.
type Summary struct {
	Policy   string
	Scenario string
	// Replicas is the number of pooled runs.
	Replicas int
	// AvgPowerW, AvgCost, MeanWaitSlots, LossRate, and EnergyReduction
	// aggregate per-replica values (EnergyReduction is relative to the
	// always-on power of the device).
	AvgPowerW       stats.Running
	AvgCost         stats.Running
	MeanWaitSlots   stats.Running
	LossRate        stats.Running
	EnergyReduction stats.Running
}

// RunReplicated executes one replica per seed and pools the metrics.
func RunReplicated(sc Scenario, pf PolicyFactory, seeds []uint64) (*Summary, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds")
	}
	sum := &Summary{Policy: pf.Name, Scenario: sc.Name, Replicas: len(seeds)}
	maxPower := sc.Device.MaxPowerEnergy() / sc.Device.SlotDuration
	for _, seed := range seeds {
		m, err := RunOne(sc, pf, seed, nil)
		if err != nil {
			return nil, err
		}
		p := m.AvgPowerW(sc.Device.SlotDuration)
		sum.AvgPowerW.Add(p)
		sum.AvgCost.Add(m.AvgCost())
		sum.MeanWaitSlots.Add(m.MeanWaitSlots())
		sum.LossRate.Add(m.LossRate())
		sum.EnergyReduction.Add(1 - p/maxPower)
	}
	return sum, nil
}

// WindowedCostSeries runs one replica and returns the sliding-window
// average per-slot cost sampled every stride slots — the Fig. 1 y-axis.
func WindowedCostSeries(sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, error) {
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("experiment: window %d and stride %d must be positive", window, stride)
	}
	win, err := stats.NewWindow(window)
	if err != nil {
		return nil, err
	}
	series := &stats.Series{Name: pf.Name}
	_, err = RunOne(sc, pf, seed, func(r slotsim.SlotRecord) {
		win.Add(r.Cost)
		if r.Slot%int64(stride) == int64(stride)-1 && win.Full() {
			series.Append(float64(r.Slot+1), win.Mean())
		}
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// WindowedEnergyReductionSeries runs one replica and returns the sliding-
// window energy reduction relative to always-on — the Fig. 2 y-axis.
func WindowedEnergyReductionSeries(sc Scenario, pf PolicyFactory, seed uint64, window, stride int) (*stats.Series, error) {
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("experiment: window %d and stride %d must be positive", window, stride)
	}
	win, err := stats.NewWindow(window)
	if err != nil {
		return nil, err
	}
	maxE := sc.Device.MaxPowerEnergy()
	series := &stats.Series{Name: pf.Name}
	_, err = RunOne(sc, pf, seed, func(r slotsim.SlotRecord) {
		win.Add(r.Energy)
		if r.Slot%int64(stride) == int64(stride)-1 && win.Full() {
			series.Append(float64(r.Slot+1), 1-win.Mean()/maxE)
		}
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// MeanSeries averages several equally-sampled series pointwise (multi-seed
// figure smoothing). All series must share length and x grid.
func MeanSeries(name string, in []*stats.Series) (*stats.Series, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("experiment: no series to average")
	}
	n := in[0].Len()
	for _, s := range in[1:] {
		if s.Len() != n {
			return nil, fmt.Errorf("experiment: series lengths differ (%d vs %d)", s.Len(), n)
		}
	}
	out := &stats.Series{Name: name}
	for i := 0; i < n; i++ {
		y := 0.0
		for _, s := range in {
			y += s.Y[i]
		}
		out.Append(in[0].X[i], y/float64(len(in)))
	}
	return out, nil
}
