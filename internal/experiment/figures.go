package experiment

import (
	"context"
	"fmt"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Figure is renderable figure data: named series over a shared x axis,
// optional vertical markers (switch points) and horizontal references
// (optimal gain).
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*stats.Series
	// VLines marks x positions (Fig. 2 switching points).
	VLines []float64
	// HLines maps a label to a y reference (Fig. 1 optimal line).
	HLines map[string]float64
	// Note carries provenance (parameters, seeds).
	Note string
}

// Fig1Config parameterizes the convergence experiment.
type Fig1Config struct {
	// ArrivalP is the stationary per-slot arrival probability.
	ArrivalP float64
	// Slots is the run length.
	Slots int64
	// Window and Stride control the series sampling.
	Window, Stride int
	// Seeds to average over.
	Seeds []uint64
}

// DefaultFig1 returns the canonical Fig. 1 parameters.
func DefaultFig1() Fig1Config {
	return Fig1Config{
		ArrivalP: 0.1,
		Slots:    200000,
		Window:   5000,
		Stride:   2000,
		Seeds:    []uint64{101, 102, 103, 104},
	}
}

// Fig1 reproduces "Convergence on Optimal Policy": windowed average cost
// of Q-DPM against the analytically optimal policy (and a timeout and
// greedy baseline) under stationary input. The Q-DPM curve must approach
// the optimal horizontal line.
func Fig1(cfg Fig1Config) (*Figure, error) {
	return Fig1Ctx(context.Background(), cfg, Parallel{})
}

// Fig1Ctx is Fig1 with cancellation and pool control: the policy × seed
// replica grid fans out across the worker pool, and each policy's seed
// series are averaged in seed order so the figure is independent of
// worker count.
func Fig1Ctx(ctx context.Context, cfg Fig1Config, par Parallel) (*Figure, error) {
	dev, err := CanonDevice()
	if err != nil {
		return nil, err
	}
	sc := Scenario{
		Name:          "fig1",
		Device:        dev,
		QueueCap:      CanonQueueCap,
		LatencyWeight: CanonLatencyWeight,
		Slots:         cfg.Slots,
		Workload: func() workload.Arrivals {
			b, err := workload.NewBernoulli(cfg.ArrivalP)
			if err != nil {
				panic(err)
			}
			return b
		},
	}

	optFactory, gain, err := OptimalFactory(dev, cfg.ArrivalP)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		Title:  "Fig. 1 — Convergence on Optimal Policy",
		XLabel: "slot",
		YLabel: "windowed avg cost (J/slot)",
		HLines: map[string]float64{"optimal gain": gain},
		Note: fmt.Sprintf("Bernoulli λ=%g/slot, synthetic3 device, %d slots, window %d, %d seeds",
			cfg.ArrivalP, cfg.Slots, cfg.Window, len(cfg.Seeds)),
	}

	fig.Series, err = meanSeriesGrid(ctx, par, []PolicyFactory{
		QDPMFactory(dev),
		optFactory,
		TimeoutFactory(dev, 20),
		GreedyOffFactory(dev),
	}, cfg.Seeds, func(ctx context.Context, pf PolicyFactory, seed uint64) (*stats.Series, error) {
		return WindowedCostSeriesCtx(ctx, sc, pf, seed, cfg.Window, cfg.Stride)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig2Config parameterizes the rapid-response experiment.
type Fig2Config struct {
	// Rates and SegmentSlots define the piecewise-stationary schedule.
	Rates        []float64
	SegmentSlots int64
	// Window and Stride control the series sampling.
	Window, Stride int
	// Seeds to average over.
	Seeds []uint64
	// OptimizeLatencySlots models the model-based re-solve wall-clock.
	OptimizeLatencySlots int
}

// DefaultFig2 returns the canonical Fig. 2 parameters.
func DefaultFig2() Fig2Config {
	return Fig2Config{
		Rates:                []float64{0.02, 0.30, 0.08, 0.25},
		SegmentSlots:         50000,
		Window:               4000,
		Stride:               1000,
		Seeds:                []uint64{201, 202, 203},
		OptimizeLatencySlots: 2000,
	}
}

// Fig2Scenario builds the piecewise-stationary scenario and returns it
// with the switch points.
func Fig2Scenario(cfg Fig2Config) (Scenario, []int64, error) {
	dev, err := CanonDevice()
	if err != nil {
		return Scenario{}, nil, err
	}
	mkPiecewise := func() workload.Arrivals {
		segs := make([]workload.Segment, len(cfg.Rates))
		for i, r := range cfg.Rates {
			b, err := workload.NewBernoulli(r)
			if err != nil {
				panic(err)
			}
			segs[i] = workload.Segment{Slots: cfg.SegmentSlots, Proc: b}
		}
		pw, err := workload.NewPiecewise(segs)
		if err != nil {
			panic(err)
		}
		return pw
	}
	pw := mkPiecewise().(*workload.Piecewise)
	sc := Scenario{
		Name:          "fig2",
		Device:        dev,
		QueueCap:      CanonQueueCap,
		LatencyWeight: CanonLatencyWeight,
		Slots:         cfg.SegmentSlots * int64(len(cfg.Rates)),
		Workload:      mkPiecewise,
	}
	return sc, pw.SwitchPoints(), nil
}

// Fig2 reproduces "Rapid Response": windowed energy reduction (vs
// always-on) under piecewise-stationary input with marked switching
// points, for Q-DPM versus the model-based adaptive pipeline and a fixed
// timeout. Q-DPM's post-switch dips must be shorter than adaptive-LP's.
func Fig2(cfg Fig2Config) (*Figure, error) {
	return Fig2Ctx(context.Background(), cfg, Parallel{})
}

// Fig2Ctx is Fig2 with cancellation and pool control.
func Fig2Ctx(ctx context.Context, cfg Fig2Config, par Parallel) (*Figure, error) {
	sc, switches, err := Fig2Scenario(cfg)
	if err != nil {
		return nil, err
	}
	dev := sc.Device

	fig := &Figure{
		Title:  "Fig. 2 — Rapid Response",
		XLabel: "slot",
		YLabel: "windowed energy reduction vs always-on",
		Note: fmt.Sprintf("piecewise Bernoulli λ=%v, %d slots/segment, window %d, %d seeds, re-solve latency %d slots",
			cfg.Rates, cfg.SegmentSlots, cfg.Window, len(cfg.Seeds), cfg.OptimizeLatencySlots),
	}
	for _, sp := range switches {
		fig.VLines = append(fig.VLines, float64(sp))
	}

	fig.Series, err = meanSeriesGrid(ctx, par, []PolicyFactory{
		QDPMTrackingFactory(dev),
		AdaptiveLPFactory(dev, cfg.Rates[0], cfg.OptimizeLatencySlots),
		TimeoutFactory(dev, 8),
	}, cfg.Seeds, func(ctx context.Context, pf PolicyFactory, seed uint64) (*stats.Series, error) {
		return WindowedEnergyReductionSeriesCtx(ctx, sc, pf, seed, cfg.Window, cfg.Stride)
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}
