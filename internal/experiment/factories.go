package experiment

import (
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/stochpm"
)

// Canonical experiment parameters (see DESIGN.md §4). All figures and
// tables use the synthetic 3-state device at 0.5 s slots with queue cap 8
// and latency weight 0.3 J per request-slot unless stated otherwise.
const (
	// CanonQueueCap is the queue capacity shared by simulator and models.
	CanonQueueCap = 8
	// CanonLatencyWeight is the backlog cost weight in J/request-slot.
	CanonLatencyWeight = 0.3
	// CanonSlotSeconds is the slot duration.
	CanonSlotSeconds = 0.5
)

// CanonDevice returns the canonical slotted device.
func CanonDevice() (*device.Slotted, error) {
	return device.Synthetic3().Slot(CanonSlotSeconds)
}

// QDPMFactory returns the canonical converging Q-DPM configuration
// (decaying exploration, polynomial learning rate) used in Fig. 1.
func QDPMFactory(dev *device.Slotted) PolicyFactory {
	return PolicyFactory{
		Name: "q-dpm",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device:        dev,
				QueueCap:      CanonQueueCap,
				LatencyWeight: CanonLatencyWeight,
				Explore:       qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.002, DecayTau: 30000},
				Alpha:         qlearn.Polynomial{Scale: 0.5, Omega: 0.65},
				Stream:        stream,
			})
		},
	}
}

// QDPMTrackingFactory returns the nonstationary-tracking configuration
// (constant exploration and learning rate) used in Fig. 2: a constant rate
// never stops adapting, which is exactly the paper's argument for rapid
// response.
func QDPMTrackingFactory(dev *device.Slotted) PolicyFactory {
	return PolicyFactory{
		Name: "q-dpm",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device:        dev,
				QueueCap:      CanonQueueCap,
				LatencyWeight: CanonLatencyWeight,
				Explore:       qlearn.EpsGreedy{Eps: 0.08},
				Alpha:         qlearn.Constant{C: 0.25},
				Stream:        stream,
			})
		},
	}
}

// QDPMVariantFactory exposes the full configuration for ablations.
func QDPMVariantFactory(name string, dev *device.Slotted, mut func(*core.Config)) PolicyFactory {
	return PolicyFactory{
		Name: name,
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			cfg := core.Config{
				Device:        dev,
				QueueCap:      CanonQueueCap,
				LatencyWeight: CanonLatencyWeight,
				Explore:       qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.002, DecayTau: 30000},
				Alpha:         qlearn.Polynomial{Scale: 0.5, Omega: 0.65},
				Stream:        stream,
			}
			if mut != nil {
				mut(&cfg)
			}
			return core.New(cfg)
		},
	}
}

// OptimalFactory solves the exact model at arrival rate p once and shares
// the (stateless) policy across replicas. It also returns the optimal
// average cost — the horizontal reference line in Fig. 1.
func OptimalFactory(dev *device.Slotted, p float64) (PolicyFactory, float64, error) {
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device:        dev,
		ArrivalP:      p,
		QueueCap:      CanonQueueCap,
		LatencyWeight: CanonLatencyWeight,
	})
	if err != nil {
		return PolicyFactory{}, 0, err
	}
	res, err := d.AverageCostRVI(1e-8, 500000)
	if err != nil {
		return PolicyFactory{}, 0, err
	}
	opt, err := policy.NewOptimal(d, res.Policy)
	if err != nil {
		return PolicyFactory{}, 0, err
	}
	return PolicyFactory{
		Name: "optimal",
		New:  func(*rng.Stream) (slotsim.Policy, error) { return opt, nil },
	}, res.Gain, nil
}

// AdaptiveLPFactory returns the model-based adaptive baseline: sliding-
// window estimator + CUSUM mode-switch controller + LP re-optimization,
// with optimizeLatency slots of policy freeze per re-solve (modelling the
// optimization wall-clock the paper complains about).
func AdaptiveLPFactory(dev *device.Slotted, initialRate float64, optimizeLatency int) PolicyFactory {
	return PolicyFactory{
		Name: "adaptive-lp",
		New: func(stream *rng.Stream) (slotsim.Policy, error) {
			return stochpm.NewAdaptive(stochpm.AdaptiveConfig{
				Device:               dev,
				QueueCap:             CanonQueueCap,
				LatencyWeight:        CanonLatencyWeight,
				InitialRate:          initialRate,
				Window:               512,
				OptimizeLatencySlots: optimizeLatency,
				Stream:               stream,
			})
		},
	}
}

// AlwaysOnFactory returns the always-on baseline.
func AlwaysOnFactory(dev *device.Slotted) PolicyFactory {
	return PolicyFactory{
		Name: "always-on",
		New: func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewAlwaysOn(dev)
		},
	}
}

// GreedyOffFactory returns the immediate-shutdown baseline.
func GreedyOffFactory(dev *device.Slotted) PolicyFactory {
	return PolicyFactory{
		Name: "greedy-off",
		New: func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewGreedyOff(dev)
		},
	}
}

// TimeoutFactory returns a fixed-timeout baseline.
func TimeoutFactory(dev *device.Slotted, slots int64) PolicyFactory {
	return PolicyFactory{
		Name: "timeout",
		New: func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewFixedTimeout(dev, slots)
		},
	}
}

// AdaptiveTimeoutFactory returns the Douglis-style adaptive timeout.
func AdaptiveTimeoutFactory(dev *device.Slotted) PolicyFactory {
	return PolicyFactory{
		Name: "adaptive-timeout",
		New: func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewAdaptiveTimeout(dev, 8, 1, 128)
		},
	}
}

// PredictiveFactory returns the Hwang–Wu predictive baseline.
func PredictiveFactory(dev *device.Slotted) PolicyFactory {
	return PolicyFactory{
		Name: "predictive",
		New: func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewPredictive(dev, 0.5)
		},
	}
}
