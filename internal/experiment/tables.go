package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/mdp"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/stochpm"
	"repro/internal/workload"
)

// Table is renderable table data.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Note    string
}

// ---------------------------------------------------------------------------
// Table R1 — runtime and memory of Q-DPM vs model-based optimization

// R1Row holds one model size's measurements.
type R1Row struct {
	States         int
	QStepNs        float64
	LPSolveMs      float64
	RVISolveMs     float64
	EstimatorNs    float64
	QTableBytes    int
	ModelBytes     int
	LPSpeedupOverQ float64
}

// TableR1 measures the paper's §1 efficiency claims on this host: the
// per-decision cost of a Q-DPM step versus re-running LP policy
// optimization or value iteration, and the resident memory of the Q table
// versus the explicit model. Model size scales via the queue capacity.
//
// R1 is a wall-clock microbenchmark, so it deliberately never uses the
// worker pool — concurrent simulation work on the same cores would
// corrupt the timings. TableR1Ctx only adds cancellation between sizes.
func TableR1(queueCaps []int) (*Table, []R1Row, error) {
	return TableR1Ctx(context.Background(), queueCaps)
}

// TableR1Ctx is TableR1 with cancellation between model sizes.
func TableR1Ctx(ctx context.Context, queueCaps []int) (*Table, []R1Row, error) {
	dev, err := CanonDevice()
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Title: "Table R1 — per-decision runtime and memory (host CPU)",
		Headers: []string{
			"|S|", "Q step (ns)", "LP solve (ms)", "RVI solve (ms)",
			"est+detect (ns)", "Q table (B)", "model (B)", "LP/Q-step ×",
		},
		Note: "Q-DPM per-slot work vs one model-based re-optimization; the paper's Pentium III anecdote corresponds to the LP column",
	}
	var rows []R1Row
	for _, qc := range queueCaps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		d, err := mdp.BuildDPM(mdp.DPMConfig{
			Device: dev, ArrivalP: 0.15, QueueCap: qc, LatencyWeight: CanonLatencyWeight,
		})
		if err != nil {
			return nil, nil, err
		}

		// Q step: decision + update on a table of matching state count.
		m, err := core.New(core.Config{
			Device: dev, QueueCap: qc, LatencyWeight: CanonLatencyWeight,
			Stream: rng.New(1),
		})
		if err != nil {
			return nil, nil, err
		}
		agent := m.Agent()
		stream := rng.New(2)
		legal := []int{0, 1, 2}
		const qreps = 200000
		start := time.Now()
		for i := 0; i < qreps; i++ {
			s := i % m.NumStates()
			a, _ := agent.SelectAction(s, legal, stream)
			agent.Update(s, a, -0.5, (s+1)%m.NumStates(), legal, 1, stream)
		}
		qStepNs := float64(time.Since(start).Nanoseconds()) / qreps

		// LP solve.
		lpStart := time.Now()
		lpReps := 3
		for i := 0; i < lpReps; i++ {
			if _, err := stochpm.SolveLP(d, nil); err != nil {
				return nil, nil, err
			}
		}
		lpMs := float64(time.Since(lpStart).Microseconds()) / float64(lpReps) / 1000

		// RVI solve.
		rviStart := time.Now()
		if _, err := d.AverageCostRVI(1e-6, 500000); err != nil {
			return nil, nil, err
		}
		rviMs := float64(time.Since(rviStart).Microseconds()) / 1000

		// Estimator + detector per-slot cost.
		wrEst, cuEst, err := buildEstimators()
		if err != nil {
			return nil, nil, err
		}
		estStart := time.Now()
		const ereps = 1000000
		for i := 0; i < ereps; i++ {
			wrEst.Add(i & 1)
			cuEst.Add(i & 1)
		}
		estNs := float64(time.Since(estStart).Nanoseconds()) / ereps

		// Memory: Q table vs explicit model (transitions + costs).
		modelBytes := 0
		for s := 0; s < d.N; s++ {
			for ai := range d.Actions[s] {
				modelBytes += len(d.Trans[s][ai])*16 + 8
			}
		}

		row := R1Row{
			States:      d.N,
			QStepNs:     qStepNs,
			LPSolveMs:   lpMs,
			RVISolveMs:  rviMs,
			EstimatorNs: estNs,
			QTableBytes: m.TableBytes(),
			ModelBytes:  modelBytes,
		}
		row.LPSpeedupOverQ = row.LPSolveMs * 1e6 / row.QStepNs
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.States),
			fmt.Sprintf("%.0f", row.QStepNs),
			fmt.Sprintf("%.2f", row.LPSolveMs),
			fmt.Sprintf("%.2f", row.RVISolveMs),
			fmt.Sprintf("%.0f", row.EstimatorNs),
			fmt.Sprintf("%d", row.QTableBytes),
			fmt.Sprintf("%d", row.ModelBytes),
			fmt.Sprintf("%.0fx", row.LPSpeedupOverQ),
		})
	}
	return t, rows, nil
}

// buildEstimators returns the estimator + detector pair the model-based
// pipeline pays for on every slot.
func buildEstimators() (*estimator.WindowRate, *estimator.CUSUM, error) {
	w, err := estimator.NewWindowRate(512)
	if err != nil {
		return nil, nil, err
	}
	c, err := estimator.NewCUSUM(0.15, 0.05, 6)
	if err != nil {
		return nil, nil, err
	}
	return w, c, nil
}

// ---------------------------------------------------------------------------
// Table R2 — stationary policy comparison

// TableR2 compares every policy's average power and latency on stationary
// workloads across arrival rates, pooled over seeds.
func TableR2(rates []float64, slots int64, seeds []uint64) (*Table, error) {
	return TableR2Ctx(context.Background(), rates, slots, seeds, Parallel{})
}

// r2Cell names one (scenario, policy) table cell.
type r2Cell struct {
	rate float64
	sc   Scenario
	pf   PolicyFactory
}

// TableR2Ctx is TableR2 with cancellation and pool control. The exact
// model solves (one per rate) and the rate × policy × seed replica grid
// both fan out across the worker pool; rows keep their canonical order.
func TableR2Ctx(ctx context.Context, rates []float64, slots int64, seeds []uint64, par Parallel) (*Table, error) {
	dev, err := CanonDevice()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table R2 — stationary comparison (synthetic3 device)",
		Headers: []string{"λ/slot", "policy", "power (W)", "±95%", "wait (slots)", "energy red."},
		Note:    fmt.Sprintf("%d slots, %d seeds; energy reduction vs always-on", slots, len(seeds)),
	}

	// The per-rate optimal policies each cost an RVI solve; derive them
	// concurrently before fanning out the replica grid. The solves skip
	// the progress callback — they are not replicas, and feeding them to
	// a replica counter would reset it mid-experiment.
	optFactories, err := engine.Map(ctx, &engine.Pool{Workers: par.Workers}, len(rates),
		func(_ context.Context, i int) (PolicyFactory, error) {
			pf, _, err := OptimalFactory(dev, rates[i])
			return pf, err
		})
	if err != nil {
		return nil, err
	}

	var cells []r2Cell
	for ri, rate := range rates {
		rate := rate
		sc := Scenario{
			Name: fmt.Sprintf("r2-%g", rate), Device: dev,
			QueueCap: CanonQueueCap, LatencyWeight: CanonLatencyWeight, Slots: slots,
			Workload: func() workload.Arrivals {
				b, err := workload.NewBernoulli(rate)
				if err != nil {
					panic(err)
				}
				return b
			},
		}
		for _, pf := range []PolicyFactory{
			AlwaysOnFactory(dev),
			GreedyOffFactory(dev),
			TimeoutFactory(dev, 8),
			AdaptiveTimeoutFactory(dev),
			PredictiveFactory(dev),
			AdaptiveLPFactory(dev, rate, 0),
			QDPMFactory(dev),
			optFactories[ri],
		} {
			cells = append(cells, r2Cell{rate: rate, sc: sc, pf: pf})
		}
	}

	sums, err := replicaGrid(ctx, par, cells, seeds, func(c r2Cell) (Scenario, PolicyFactory) {
		return c.sc, c.pf
	})
	if err != nil {
		return nil, err
	}
	for ci, cell := range cells {
		sum := sums[ci]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", cell.rate),
			cell.pf.Name,
			fmt.Sprintf("%.4f", sum.AvgPowerW.Mean()),
			fmt.Sprintf("%.4f", sum.AvgPowerW.CI95()),
			fmt.Sprintf("%.3f", sum.MeanWaitSlots.Mean()),
			fmt.Sprintf("%.1f%%", 100*sum.EnergyReduction.Mean()),
		})
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Table R3 — nonstationary tracking

// RecoverySlots measures, for each switch point, how many slots the series
// needs after the switch before it stays within tol of the segment's tail
// level (the mean of the segment's last quarter). It returns one value per
// switch, -1 when the series never settles.
func RecoverySlots(s *stats.Series, switches []float64, segmentEnd []float64, tol float64) []int64 {
	out := make([]int64, len(switches))
	for i, sw := range switches {
		end := segmentEnd[i]
		// Tail level: mean of the last quarter of the segment.
		tailStart := sw + 0.75*(end-sw)
		var tail []float64
		for k := 0; k < s.Len(); k++ {
			if s.X[k] >= tailStart && s.X[k] <= end {
				tail = append(tail, s.Y[k])
			}
		}
		level := stats.Mean(tail)
		out[i] = -1
		// First index after the switch from which the series stays within
		// tol of the level until segment end.
		for k := 0; k < s.Len(); k++ {
			if s.X[k] < sw || s.X[k] > end {
				continue
			}
			ok := true
			for j := k; j < s.Len() && s.X[j] <= end; j++ {
				if abs(s.Y[j]-level) > tol {
					ok = false
					break
				}
			}
			if ok {
				out[i] = int64(s.X[k] - sw)
				break
			}
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TableR3 runs the Fig. 2 scenario per policy and reports recovery time
// after each switch plus total energy.
func TableR3(cfg Fig2Config) (*Table, error) {
	return TableR3Ctx(context.Background(), cfg, Parallel{})
}

// TableR3Ctx is TableR3 with cancellation and pool control; the policies
// run concurrently (each policy's pair of runs stays on one worker).
func TableR3Ctx(ctx context.Context, cfg Fig2Config, par Parallel) (*Table, error) {
	sc, switches, err := Fig2Scenario(cfg)
	if err != nil {
		return nil, err
	}
	dev := sc.Device
	segEnds := make([]float64, len(switches))
	for i, sw := range switches {
		_ = sw
		segEnds[i] = float64(cfg.SegmentSlots) * float64(i+2)
	}
	swF := make([]float64, len(switches))
	for i, sw := range switches {
		swF[i] = float64(sw)
	}

	t := &Table{
		Title:   "Table R3 — nonstationary tracking (Fig. 2 scenario)",
		Headers: []string{"policy", "recovery after switch (slots)", "total energy (J)", "mean wait (slots)"},
		Note:    "recovery = slots until the windowed energy-reduction series stays within 0.05 of the segment's settled level",
	}
	pfs := []PolicyFactory{
		QDPMTrackingFactory(dev),
		AdaptiveLPFactory(dev, cfg.Rates[0], cfg.OptimizeLatencySlots),
		TimeoutFactory(dev, 8),
		GreedyOffFactory(dev),
	}
	rows, err := engine.Map(ctx, par.pool(), len(pfs),
		func(ctx context.Context, i int) ([]string, error) {
			pf := pfs[i]
			// One simulation yields both the recovery series and the
			// energy/wait metrics.
			series, m, err := windowedEnergyReductionSeriesMetrics(ctx, sc, pf, cfg.Seeds[0], cfg.Window, cfg.Stride)
			if err != nil {
				return nil, err
			}
			rec := RecoverySlots(series, swF, segEnds, 0.05)
			recStr := ""
			for i, r := range rec {
				if i > 0 {
					recStr += " / "
				}
				if r < 0 {
					recStr += "never"
				} else {
					recStr += fmt.Sprintf("%d", r)
				}
			}
			return []string{
				pf.Name,
				recStr,
				fmt.Sprintf("%.0f", m.EnergyJ),
				fmt.Sprintf("%.2f", m.MeanWaitSlots()),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// ---------------------------------------------------------------------------
// Table R4 — small-scale variation tolerance

// jitterArrivals perturbs a base Bernoulli rate by ±amp (uniform) every
// period slots — the paper's "small scale variations".
type jitterArrivals struct {
	base, amp float64
	period    int64
	cur       float64
	used      int64
}

func (j *jitterArrivals) Next(s *rng.Stream) int {
	if j.used%j.period == 0 {
		j.cur = j.base * (1 + j.amp*(2*s.Float64()-1))
		if j.cur < 0 {
			j.cur = 0
		}
		if j.cur > 1 {
			j.cur = 1
		}
	}
	j.used++
	if s.Float64() < j.cur {
		return 1
	}
	return 0
}

func (j *jitterArrivals) MeanRate() float64 { return j.base }
func (j *jitterArrivals) Clone() workload.Arrivals {
	return &jitterArrivals{base: j.base, amp: j.amp, period: j.period}
}
func (j *jitterArrivals) String() string {
	return fmt.Sprintf("jitter(λ=%g±%.0f%%/%d)", j.base, 100*j.amp, j.period)
}

// TableR4 compares policies under continuously jittering parameters: the
// regime where the paper claims Q-DPM's tolerance and where the
// mode-switch controller either thrashes or ignores the drift.
func TableR4(base, amp float64, period int64, slots int64, seeds []uint64) (*Table, error) {
	return TableR4Ctx(context.Background(), base, amp, period, slots, seeds, Parallel{})
}

// TableR4Ctx is TableR4 with cancellation and pool control.
func TableR4Ctx(ctx context.Context, base, amp float64, period int64, slots int64, seeds []uint64, par Parallel) (*Table, error) {
	dev, err := CanonDevice()
	if err != nil {
		return nil, err
	}
	sc := Scenario{
		Name: "r4", Device: dev,
		QueueCap: CanonQueueCap, LatencyWeight: CanonLatencyWeight, Slots: slots,
		Workload: func() workload.Arrivals {
			return &jitterArrivals{base: base, amp: amp, period: period}
		},
	}
	// Static optimal at the base rate: the best any non-adaptive model-
	// based policy can do without re-solving.
	optFactory, gain, err := OptimalFactory(dev, base)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table R4 — tolerance to small-scale variation",
		Headers: []string{"policy", "avg cost (J/slot)", "±95%", "vs static-optimal"},
		Note: fmt.Sprintf("λ = %g ± %.0f%% redrawn every %d slots, %d slots, %d seeds; static-optimal gain at base rate = %.4f",
			base, 100*amp, period, slots, len(seeds), gain),
	}
	pfs := []PolicyFactory{
		QDPMTrackingFactory(dev),
		AdaptiveLPFactory(dev, base, 2000),
		optFactory,
		TimeoutFactory(dev, 8),
	}
	sums, err := replicaGrid(ctx, par, pfs, seeds, func(pf PolicyFactory) (Scenario, PolicyFactory) {
		return sc, pf
	})
	if err != nil {
		return nil, err
	}
	for pi, pf := range pfs {
		sum := sums[pi]
		t.Rows = append(t.Rows, []string{
			pf.Name,
			fmt.Sprintf("%.4f", sum.AvgCost.Mean()),
			fmt.Sprintf("%.4f", sum.AvgCost.CI95()),
			fmt.Sprintf("%+.1f%%", 100*(sum.AvgCost.Mean()-gain)/gain),
		})
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Ablations

// AblationSpec names a Q-DPM variant.
type AblationSpec struct {
	Name string
	Mut  func(*core.Config)
}

// DefaultAblations returns the design-choice grid from DESIGN.md §5.
func DefaultAblations() []AblationSpec {
	return []AblationSpec{
		{Name: "baseline", Mut: nil},
		{Name: "eps=0.01-const", Mut: func(c *core.Config) { c.Explore = qlearn.EpsGreedy{Eps: 0.01} }},
		{Name: "eps=0.3-const", Mut: func(c *core.Config) { c.Explore = qlearn.EpsGreedy{Eps: 0.3} }},
		{Name: "boltzmann", Mut: func(c *core.Config) {
			c.Explore = qlearn.Boltzmann{Temp: 0.2, MinTemp: 0.005, DecayTau: 30000}
		}},
		{Name: "alpha=const-0.1", Mut: func(c *core.Config) { c.Alpha = qlearn.Constant{C: 0.1} }},
		{Name: "alpha=harmonic", Mut: func(c *core.Config) { c.Alpha = qlearn.Harmonic{Scale: 1} }},
		{Name: "gamma=0.9", Mut: func(c *core.Config) { c.Gamma = 0.9 }},
		{Name: "gamma=0.995", Mut: func(c *core.Config) { c.Gamma = 0.995 }},
		{Name: "qbuckets=4", Mut: func(c *core.Config) { c.QueueBuckets = 4 }},
		{Name: "qbuckets=2", Mut: func(c *core.Config) { c.QueueBuckets = 2 }},
		{Name: "idle-feature", Mut: func(c *core.Config) { c.IdleBuckets = []int64{4, 16, 64} }},
		{Name: "sarsa", Mut: func(c *core.Config) { c.Rule = qlearn.SARSA }},
		{Name: "double-q", Mut: func(c *core.Config) { c.Rule = qlearn.DoubleQ }},
		{Name: "traces λ=0.5", Mut: func(c *core.Config) { c.TraceLambda = 0.5 }},
		{Name: "fuzzy", Mut: func(c *core.Config) { c.Fuzzy = true }},
	}
}

// TableAblations runs each variant on the Fig. 1 scenario and reports the
// tail (post-convergence) average cost against the optimal gain.
func TableAblations(specs []AblationSpec, arrivalP float64, slots int64, seeds []uint64) (*Table, error) {
	return TableAblationsCtx(context.Background(), specs, arrivalP, slots, seeds, Parallel{})
}

// TableAblationsCtx is TableAblations with cancellation and pool control:
// the variant × seed grid fans out across the pool and each variant's
// tails pool in seed order.
func TableAblationsCtx(ctx context.Context, specs []AblationSpec, arrivalP float64, slots int64, seeds []uint64, par Parallel) (*Table, error) {
	dev, err := CanonDevice()
	if err != nil {
		return nil, err
	}
	_, gain, err := OptimalFactory(dev, arrivalP)
	if err != nil {
		return nil, err
	}
	sc := Scenario{
		Name: "ablate", Device: dev,
		QueueCap: CanonQueueCap, LatencyWeight: CanonLatencyWeight, Slots: slots,
		Workload: func() workload.Arrivals {
			b, err := workload.NewBernoulli(arrivalP)
			if err != nil {
				panic(err)
			}
			return b
		},
	}
	t := &Table{
		Title:   "Ablations — Q-DPM design choices (Fig. 1 scenario)",
		Headers: []string{"variant", "tail avg cost", "±95%", "gap to optimal"},
		Note: fmt.Sprintf("λ=%g, %d slots, tail = last 25%% of the windowed series, optimal gain %.4f",
			arrivalP, slots, gain),
	}
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	tailGrid, err := engine.Map(ctx, par.pool(), len(specs)*len(seeds),
		func(ctx context.Context, i int) (float64, error) {
			spec := specs[i/len(seeds)]
			pf := QDPMVariantFactory(spec.Name, dev, spec.Mut)
			s, err := WindowedCostSeriesCtx(ctx, sc, pf, seeds[i%len(seeds)], 4000, 2000)
			if err != nil {
				return 0, err
			}
			return s.TailMean(0.25), nil
		})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		var tails stats.Running
		for _, tail := range tailGrid[si*len(seeds) : (si+1)*len(seeds)] {
			tails.Add(tail)
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			fmt.Sprintf("%.4f", tails.Mean()),
			fmt.Sprintf("%.4f", tails.CI95()),
			fmt.Sprintf("%+.1f%%", 100*(tails.Mean()-gain)/gain),
		})
	}
	return t, nil
}
