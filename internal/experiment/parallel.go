package experiment

import (
	"context"

	"repro/internal/engine"
	"repro/internal/slotsim"
	"repro/internal/stats"
)

// Parallel configures concurrent replica execution for the experiment
// drivers. The zero value runs on GOMAXPROCS workers with no progress
// reporting — the right default for every CLI entry point.
type Parallel struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS. Workers == 1
	// degenerates to a serial run with identical (bit-for-bit) output.
	Workers int
	// Progress, when non-nil, observes job completion (serialized calls).
	Progress func(done, total int)
}

// pool adapts the options to an engine pool.
func (p Parallel) pool() *engine.Pool {
	return &engine.Pool{Workers: p.Workers, Progress: p.Progress}
}

// cancelCheckSlots is how often a replica polls its context: long runs are
// executed in chunks of this many slots so cancellation latency is bounded
// by one chunk (~a few hundred microseconds of simulation) instead of the
// full run length.
const cancelCheckSlots = 8192

// RunOneCtx executes one replica like RunOne but polls ctx between slot
// chunks, so a cancelled context aborts a multi-million-slot replica
// promptly with ctx's error.
func RunOneCtx(ctx context.Context, sc Scenario, pf PolicyFactory, seed uint64, observer func(slotsim.SlotRecord)) (slotsim.Metrics, error) {
	if err := sc.Validate(); err != nil {
		return slotsim.Metrics{}, err
	}
	sim, err := newReplicaSim(sc, pf, seed)
	if err != nil {
		return slotsim.Metrics{}, err
	}
	var m slotsim.Metrics
	for remaining := sc.Slots; remaining > 0; {
		if err := ctx.Err(); err != nil {
			return slotsim.Metrics{}, err
		}
		chunk := int64(cancelCheckSlots)
		if remaining < chunk {
			chunk = remaining
		}
		// Metrics accumulate across Run calls; the last call returns the
		// totals for the whole replica.
		if m, err = sim.Run(chunk, observer); err != nil {
			return slotsim.Metrics{}, err
		}
		remaining -= chunk
	}
	return m, nil
}

// RunReplicatedCtx executes one replica per seed on a worker pool and
// pools the metrics. The reduction merges per-replica summaries in seed
// order, so the result is bit-identical to the serial loop for every
// worker count.
func RunReplicatedCtx(ctx context.Context, sc Scenario, pf PolicyFactory, seeds []uint64, par Parallel) (*Summary, error) {
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	maxPower := sc.Device.MaxPowerEnergy() / sc.Device.SlotDuration
	parts, err := engine.Map(ctx, par.pool(), len(seeds),
		func(ctx context.Context, i int) (*Summary, error) {
			m, err := RunOneCtx(ctx, sc, pf, seeds[i], nil)
			if err != nil {
				return nil, err
			}
			s := &Summary{Policy: pf.Name, Scenario: sc.Name}
			s.addReplica(&m, sc.Device.SlotDuration, maxPower)
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	sum := &Summary{Policy: pf.Name, Scenario: sc.Name}
	for _, p := range parts {
		sum.Merge(p)
	}
	return sum, nil
}

// replicaGrid fans one replica job per (cell, seed) pair across the pool
// and reduces each cell — a (scenario, policy) pair named by the table
// drivers — by merging its single-replica summaries in seed order. The
// reduction order makes every cell's summary bit-identical to a serial
// RunReplicated, independent of worker count.
func replicaGrid[C any](ctx context.Context, par Parallel, cells []C, seeds []uint64, cell func(C) (Scenario, PolicyFactory)) ([]*Summary, error) {
	if len(seeds) == 0 {
		return nil, errNoSeeds
	}
	parts, err := engine.Map(ctx, par.pool(), len(cells)*len(seeds),
		func(ctx context.Context, i int) (*Summary, error) {
			sc, pf := cell(cells[i/len(seeds)])
			m, err := RunOneCtx(ctx, sc, pf, seeds[i%len(seeds)], nil)
			if err != nil {
				return nil, err
			}
			s := &Summary{Policy: pf.Name, Scenario: sc.Name}
			s.addReplica(&m, sc.Device.SlotDuration, sc.Device.MaxPowerEnergy()/sc.Device.SlotDuration)
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]*Summary, len(cells))
	for ci := range cells {
		sum := &Summary{}
		for si := range seeds {
			sum.Merge(parts[ci*len(seeds)+si])
		}
		out[ci] = sum
	}
	return out, nil
}

// meanSeriesGrid fans one windowed-series job per (policy, seed) pair
// across the pool and reduces each policy's replicas to their pointwise
// mean, in factory order — the shared shape of the Fig. 1 and Fig. 2
// drivers. runSeries must be safe to call concurrently for distinct
// (pf, seed) pairs.
func meanSeriesGrid(ctx context.Context, par Parallel, pfs []PolicyFactory, seeds []uint64,
	runSeries func(ctx context.Context, pf PolicyFactory, seed uint64) (*stats.Series, error),
) ([]*stats.Series, error) {
	type job struct {
		pf   PolicyFactory
		seed uint64
	}
	jobs := make([]job, 0, len(pfs)*len(seeds))
	for _, pf := range pfs {
		for _, seed := range seeds {
			jobs = append(jobs, job{pf: pf, seed: seed})
		}
	}
	reps, err := engine.Map(ctx, par.pool(), len(jobs),
		func(ctx context.Context, i int) (*stats.Series, error) {
			return runSeries(ctx, jobs[i].pf, jobs[i].seed)
		})
	if err != nil {
		return nil, err
	}
	out := make([]*stats.Series, 0, len(pfs))
	for pi, pf := range pfs {
		mean, err := MeanSeries(pf.Name, reps[pi*len(seeds):(pi+1)*len(seeds)])
		if err != nil {
			return nil, err
		}
		out = append(out, mean)
	}
	return out, nil
}
