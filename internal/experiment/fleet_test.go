package experiment_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fleet"
)

func fleetScenario() experiment.FleetScenario {
	return experiment.FleetScenario{
		Name: "test-fleet",
		Spec: fleet.Spec{
			Devices:   23,
			Classes:   fleet.DefaultMix(),
			Mode:      fleet.ModeCT,
			Horizon:   50,
			ShardSize: 4,
		},
	}
}

// TestRunFleetReplicatedBitIdenticalAcrossPools: the pooled replicated
// fleet summary equals the serial one bit for bit — the experiment-layer
// extension of the fleet determinism contract.
func TestRunFleetReplicatedBitIdenticalAcrossPools(t *testing.T) {
	sc := fleetScenario()
	seeds := engine.DeriveSeeds(9, 2)
	serial, err := experiment.RunFleetReplicatedCtx(context.Background(), sc, seeds, experiment.Parallel{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := experiment.RunFleetReplicatedCtx(context.Background(), sc, seeds, experiment.Parallel{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("replicated fleet summary differs across pool sizes:\n%+v\nvs\n%+v", serial, pooled)
	}
	if serial.Replicas != 2 {
		t.Fatalf("pooled %d replicas, want 2", serial.Replicas)
	}
	if serial.Fleet.Devices != int64(2*sc.Spec.Devices) {
		t.Fatalf("merged fleet covers %d instances, want %d", serial.Fleet.Devices, 2*sc.Spec.Devices)
	}
	if serial.AvgPowerW.N() != 2 {
		t.Fatalf("replica-level accumulator has %d samples, want 2", serial.AvgPowerW.N())
	}
}

// TestRunFleetReplicatedValidates: empty seeds and invalid specs are
// rejected up front.
func TestRunFleetReplicatedValidates(t *testing.T) {
	sc := fleetScenario()
	if _, err := experiment.RunFleetReplicatedCtx(context.Background(), sc, nil, experiment.Parallel{}); err == nil {
		t.Fatal("no-seed replication accepted")
	}
	sc.Spec.Devices = 0
	if _, err := experiment.RunFleetReplicatedCtx(context.Background(), sc, []uint64{1}, experiment.Parallel{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	sc = fleetScenario()
	sc.Name = ""
	if err := sc.Validate(); err == nil {
		t.Fatal("unnamed scenario accepted")
	}
}

// TestTableFleetShape: the rendered table carries one row per class,
// one per distinct policy, and a fleet-total row, plus wait percentiles
// in the note.
func TestTableFleetShape(t *testing.T) {
	tab, err := experiment.TableFleetCtx(context.Background(), 16, 40, fleet.ModeCT,
		[]uint64{1}, experiment.Parallel{})
	if err != nil {
		t.Fatal(err)
	}
	// DefaultMix: 4 classes, 3 distinct policies, 1 fleet row.
	if want := 4 + 3 + 1; len(tab.Rows) != want {
		t.Fatalf("table has %d rows, want %d:\n%+v", len(tab.Rows), want, tab.Rows)
	}
	if tab.Rows[len(tab.Rows)-1][0] != "fleet" {
		t.Fatalf("last row is %q, want the fleet total", tab.Rows[len(tab.Rows)-1][0])
	}
	if !strings.Contains(tab.Note, "p50/p90/p99") {
		t.Fatalf("note lacks wait percentiles: %q", tab.Note)
	}
}
