package experiment

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
)

func ctTestScenario(t *testing.T, horizon float64) CTScenario {
	t.Helper()
	return CTScenario{
		Name:          "ct-test",
		Device:        device.Synthetic3(),
		QueueCap:      CanonQueueCap,
		LatencyWeight: CanonLatencyWeight / CanonSlotSeconds,
		Horizon:       horizon,
		Period:        CanonSlotSeconds,
		Source: func() ctsim.Source {
			d, err := dist.ByName("hyperexp", 0.2)
			if err != nil {
				t.Fatal(err)
			}
			src, err := ctsim.NewRenewalSource(d)
			if err != nil {
				t.Fatal(err)
			}
			return src
		},
	}
}

// The ct experiment honours the same determinism contract as the slotted
// one: a pooled replication is bit-identical to a serial one for every
// worker count.
func TestCTReplicatedBitIdenticalAcrossWorkers(t *testing.T) {
	sc := ctTestScenario(t, 4000)
	dev, err := CanonDevice()
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{1, 2, 3, 4, 5}
	for _, pf := range []PolicyFactory{TimeoutFactory(dev, 8), QDPMFactory(dev)} {
		serial, err := RunCTReplicatedCtx(context.Background(), sc, pf, seeds, Parallel{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := RunCTReplicatedCtx(context.Background(), sc, pf, seeds, Parallel{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, pooled) {
			t.Errorf("%s: pooled ct summary differs from serial:\n%+v\n%+v", pf.Name, serial, pooled)
		}
		if serial.Replicas != len(seeds) {
			t.Errorf("%s: %d replicas pooled, want %d", pf.Name, serial.Replicas, len(seeds))
		}
	}
}

// The full ct table grid is likewise pool-invariant.
func TestTableCTDeterministicAcrossWorkers(t *testing.T) {
	seeds := []uint64{31, 32}
	a, err := TableCTCtx(context.Background(), 0.2, 2000, seeds, Parallel{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableCTCtx(context.Background(), 0.2, 2000, seeds, Parallel{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("ct table rows differ across worker counts:\n%v\n%v", a.Rows, b.Rows)
	}
	if len(a.Rows) != 16 { // 4 workloads × 4 policies
		t.Fatalf("ct table has %d rows, want 16", len(a.Rows))
	}
}

// A cancelled context aborts a ct replica promptly with the context error.
func TestRunCTOneCancellation(t *testing.T) {
	sc := ctTestScenario(t, 1e9) // absurd horizon: must not complete
	dev, err := CanonDevice()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCTOneCtx(ctx, sc, TimeoutFactory(dev, 8), 1); err != context.Canceled {
		t.Fatalf("cancelled ct run returned %v, want context.Canceled", err)
	}
}

// Sanity of the ct scenario validation.
func TestCTScenarioValidate(t *testing.T) {
	sc := ctTestScenario(t, 100)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*CTScenario){
		func(s *CTScenario) { s.Device = nil },
		func(s *CTScenario) { s.Source = nil },
		func(s *CTScenario) { s.Horizon = 0 },
		func(s *CTScenario) { s.Period = 0 },
	}
	for i, mut := range bad {
		s := ctTestScenario(t, 100)
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("bad ct scenario %d accepted", i)
		}
	}
}
