package queue

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFIFOOrderAndWaits(t *testing.T) {
	q, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	q.Push(0)
	q.Push(1)
	q.Push(2)
	if q.Len() != 3 {
		t.Fatalf("len %d", q.Len())
	}
	if got := q.Serve(2, 5); got != 2 {
		t.Fatalf("served %d", got)
	}
	// Waits: (5-0) + (5-1) = 9.
	if q.WaitSlots() != 9 {
		t.Fatalf("wait slots %d, want 9", q.WaitSlots())
	}
	if q.Len() != 1 {
		t.Fatalf("len after serve %d", q.Len())
	}
	q.Serve(10, 6)
	if q.WaitSlots() != 13 { // + (6-2)
		t.Fatalf("wait slots %d, want 13", q.WaitSlots())
	}
	if q.MeanWait() != 13.0/3.0 {
		t.Fatalf("mean wait %v", q.MeanWait())
	}
}

func TestCapacityAndLoss(t *testing.T) {
	q, _ := New(2)
	if !q.Push(0) || !q.Push(0) {
		t.Fatal("pushes within capacity rejected")
	}
	if q.Push(0) {
		t.Fatal("push over capacity accepted")
	}
	if q.Lost() != 1 || q.Arrived() != 3 {
		t.Fatalf("lost %d arrived %d", q.Lost(), q.Arrived())
	}
	q.Serve(1, 1)
	if !q.Push(1) {
		t.Fatal("push after drain rejected")
	}
}

func TestUnboundedGrowth(t *testing.T) {
	q, _ := New(0)
	for i := int64(0); i < 10000; i++ {
		if !q.Push(i) {
			t.Fatal("unbounded queue rejected a push")
		}
	}
	if q.Len() != 10000 || q.Lost() != 0 {
		t.Fatalf("len %d lost %d", q.Len(), q.Lost())
	}
	// FIFO preserved across growth.
	q.Serve(1, 10000)
	if q.WaitSlots() != 10000 {
		t.Fatalf("first served wait %d, want 10000", q.WaitSlots())
	}
}

func TestNegativeCapacityRejected(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestServeEmpty(t *testing.T) {
	q, _ := New(4)
	if got := q.Serve(3, 10); got != 0 {
		t.Fatalf("served %d from empty queue", got)
	}
}

func TestServeNegativePanics(t *testing.T) {
	q, _ := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Serve(-1) did not panic")
		}
	}()
	q.Serve(-1, 0)
}

func TestServeBeforeEnqueuePanics(t *testing.T) {
	q, _ := New(4)
	q.Push(5)
	defer func() {
		if recover() == nil {
			t.Fatal("serving before enqueue slot did not panic")
		}
	}()
	q.Serve(1, 3)
}

func TestOldestWait(t *testing.T) {
	q, _ := New(4)
	if q.OldestWait(7) != 0 {
		t.Fatal("empty queue reports nonzero oldest wait")
	}
	q.Push(3)
	q.Push(5)
	if got := q.OldestWait(9); got != 6 {
		t.Fatalf("oldest wait %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	q, _ := New(2)
	q.Push(0)
	q.Push(0)
	q.Push(0) // lost
	q.Serve(1, 2)
	q.Reset()
	if q.Len() != 0 || q.Lost() != 0 || q.Arrived() != 0 || q.Served() != 0 || q.WaitSlots() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: conservation — arrived = served + lost + backlog, and ring
// buffer behaves identically to a reference slice queue.
func TestConservationProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw % 8) // includes 0 = unbounded
		q, err := New(capacity)
		if err != nil {
			return false
		}
		var ref []int64 // reference implementation
		refLost := int64(0)
		s := rng.New(seed)
		for slot := int64(0); slot < 500; slot++ {
			if s.Bool(0.4) {
				ok := q.Push(slot)
				if capacity > 0 && len(ref) == capacity {
					refLost++
					if ok {
						return false
					}
				} else {
					ref = append(ref, slot)
					if !ok {
						return false
					}
				}
			}
			if s.Bool(0.3) {
				k := s.Intn(3)
				got := q.Serve(k, slot)
				want := k
				if want > len(ref) {
					want = len(ref)
				}
				ref = ref[want:]
				if got != want {
					return false
				}
			}
			if q.Len() != len(ref) || q.Lost() != refLost {
				return false
			}
		}
		return q.Arrived() == q.Served()+q.Lost()+int64(q.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigure: capacity changes in place, counters clear, and
// same-or-smaller capacities never reallocate the ring.
func TestReconfigure(t *testing.T) {
	q, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		q.Push(i)
	}
	if err := q.Reconfigure(2); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 || q.Arrived() != 0 || q.Lost() != 0 || q.Cap() != 2 {
		t.Fatalf("reconfigure did not reset: %+v", q)
	}
	if !q.Push(1) || !q.Push(2) || q.Push(3) {
		t.Fatal("capacity 2 not enforced after reconfigure")
	}
	// Growing beyond the ring reallocates and then honours the bound.
	if err := q.Reconfigure(8); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d rejected below capacity 8", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push above capacity 8 accepted")
	}
	if err := q.Reconfigure(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	// Same-capacity cycles are allocation-free.
	allocs := testing.AllocsPerRun(50, func() {
		if err := q.Reconfigure(8); err != nil {
			t.Fatal(err)
		}
		q.Push(1)
		q.Serve(1, 2)
	})
	if allocs != 0 {
		t.Fatalf("same-capacity Reconfigure allocates %.1f times", allocs)
	}
}
