// Package queue implements the bounded FIFO request queue that sits
// between the service requester and the power-managed service provider,
// with exact per-request waiting-time accounting and loss counting.
package queue

import "fmt"

// Queue is a bounded FIFO of pending requests. Each entry records the slot
// the request arrived in so waiting times are exact. A capacity of 0 means
// unbounded.
type Queue struct {
	cap  int
	buf  []int64 // enqueue slots, ring buffer
	head int
	n    int

	lost      int64
	arrived   int64
	served    int64
	waitSlots int64 // cumulative waiting of served requests
}

// New returns a queue with the given capacity; capacity < 0 is an error,
// capacity == 0 means unbounded.
func New(capacity int) (*Queue, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("queue: negative capacity %d", capacity)
	}
	initial := capacity
	if initial == 0 {
		initial = 16
	}
	return &Queue{cap: capacity, buf: make([]int64, initial)}, nil
}

// Len returns the number of queued requests.
func (q *Queue) Len() int { return q.n }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue) Cap() int { return q.cap }

// Push enqueues one request that arrived in slot `slot`. It returns false
// (and counts a loss) when the queue is full.
func (q *Queue) Push(slot int64) bool {
	q.arrived++
	if q.cap > 0 && q.n == q.cap {
		q.lost++
		return false
	}
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = slot
	q.n++
	return true
}

func (q *Queue) grow() {
	nb := make([]int64, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}

// Serve dequeues up to k requests, each completing in slot `slot`, and
// returns the number actually served. Waiting time of a request is the
// number of whole slots between arrival and service.
func (q *Queue) Serve(k int, slot int64) int {
	if k < 0 {
		panic(fmt.Sprintf("queue: negative service count %d", k))
	}
	served := 0
	for served < k && q.n > 0 {
		enq := q.buf[q.head]
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		wait := slot - enq
		if wait < 0 {
			panic(fmt.Sprintf("queue: service slot %d precedes enqueue slot %d", slot, enq))
		}
		q.waitSlots += wait
		q.served++
		served++
	}
	return served
}

// OldestWait returns the waiting time (in slots, as of slot `slot`) of the
// request at the head, or 0 when empty.
func (q *Queue) OldestWait(slot int64) int64 {
	if q.n == 0 {
		return 0
	}
	return slot - q.buf[q.head]
}

// Arrived returns the number of Push calls (including lost requests).
func (q *Queue) Arrived() int64 { return q.arrived }

// Served returns the number of requests dequeued by Serve.
func (q *Queue) Served() int64 { return q.served }

// Lost returns the number of requests rejected because the queue was full.
func (q *Queue) Lost() int64 { return q.lost }

// WaitSlots returns the cumulative waiting slots of served requests.
func (q *Queue) WaitSlots() int64 { return q.waitSlots }

// MeanWait returns the average waiting time in slots of served requests.
func (q *Queue) MeanWait() float64 {
	if q.served == 0 {
		return 0
	}
	return float64(q.waitSlots) / float64(q.served)
}

// Reset restores the queue to empty and clears the counters.
func (q *Queue) Reset() {
	q.head, q.n = 0, 0
	q.lost, q.arrived, q.served, q.waitSlots = 0, 0, 0, 0
}

// Reconfigure resets the queue and changes its capacity in place,
// growing the ring only when the new bound exceeds it — a queue cycled
// through same-capacity replicas (the fleet reuse path) never
// reallocates. capacity < 0 is an error; 0 means unbounded.
func (q *Queue) Reconfigure(capacity int) error {
	if capacity < 0 {
		return fmt.Errorf("queue: negative capacity %d", capacity)
	}
	q.Reset()
	q.cap = capacity
	if capacity > len(q.buf) {
		q.buf = make([]int64, capacity)
	}
	return nil
}
