package device

// Catalog of reference devices. The Q-DPM paper evaluates on synthetic
// device-agnostic input, so these PSMs exist to ground the examples and the
// derived tables in realistic cost structures. Power/latency/energy figures
// are representative of the public DPM literature (Benini et al. 2000;
// Simunic et al. 2001) rather than any one datasheet:
//
//   - HDD: a 2.5" laptop disk (IBM Travelstar class). Spin-up is expensive
//     (seconds, joules), so wrong shutdown decisions are heavily punished —
//     the classic DPM stress case.
//   - WLAN: an 802.11 NIC with a doze mode. Wakeups are cheap and fast, so
//     policies shut down aggressively.
//   - SensorRadio: a low-power sensor-node transceiver, the "pervasively
//     deployed embedded node" the paper motivates; three sleep depths.
//   - TwoState: the minimal on/off device used in unit tests and in the
//     Fig. 1 MDP, small enough to solve exactly by hand.
//   - Synthetic3: the 3-state device used by the Fig. 1 / Fig. 2
//     experiments: active + idle + sleep with a spin-up penalty chosen so
//     the optimal policy is nontrivial (neither always-sleep nor never-
//     sleep) at the studied arrival rates.

// HDD returns a laptop hard-disk PSM.
// States: active (serving), idle (spinning, not serving), standby (spun
// down), sleep (fully off). Service time 12 ms per request.
func HDD() *PSM {
	p, err := New("hdd",
		[]PowerState{
			{Name: "active", Power: 2.1, CanService: true},
			{Name: "idle", Power: 0.9},
			{Name: "standby", Power: 0.21},
			{Name: "sleep", Power: 0.13},
		},
		[][]Transition{
			// from active
			{{}, {Latency: 0.001, Energy: 0.001}, {Latency: 0.67, Energy: 0.36}, {Latency: 0.8, Energy: 0.4}},
			// from idle
			{{Latency: 0.001, Energy: 0.001}, {}, {Latency: 0.67, Energy: 0.36}, {Latency: 0.8, Energy: 0.4}},
			// from standby
			{{Latency: 1.6, Energy: 4.39}, {Latency: 1.6, Energy: 4.39}, {}, {Latency: 0.2, Energy: 0.1}},
			// from sleep
			{{Latency: 1.9, Energy: 5.0}, {Latency: 1.9, Energy: 5.0}, Forbidden, {}},
		},
		0.012,
	)
	if err != nil {
		panic("device: invalid HDD catalog entry: " + err.Error())
	}
	return p
}

// WLAN returns an 802.11 NIC PSM.
// States: txrx (serving), idle (listening), doze (power-save). Wakeup from
// doze is ~100 ms. Service time 2 ms per packet burst.
func WLAN() *PSM {
	p, err := New("wlan",
		[]PowerState{
			{Name: "txrx", Power: 1.6, CanService: true},
			{Name: "idle", Power: 0.90},
			{Name: "doze", Power: 0.05},
		},
		[][]Transition{
			{{}, {Latency: 0.001, Energy: 0.001}, {Latency: 0.04, Energy: 0.02}},
			{{Latency: 0.001, Energy: 0.001}, {}, {Latency: 0.04, Energy: 0.02}},
			{{Latency: 0.1, Energy: 0.13}, {Latency: 0.1, Energy: 0.13}, {}},
		},
		0.002,
	)
	if err != nil {
		panic("device: invalid WLAN catalog entry: " + err.Error())
	}
	return p
}

// SensorRadio returns a sensor-node transceiver PSM with three sleep
// depths; the deeper the sleep, the longer and costlier the wakeup.
func SensorRadio() *PSM {
	p, err := New("sensor-radio",
		[]PowerState{
			{Name: "rxtx", Power: 0.024, CanService: true},
			{Name: "idle", Power: 0.012},
			{Name: "sleep", Power: 0.0003},
			{Name: "deepsleep", Power: 0.00002},
		},
		[][]Transition{
			{{}, {Latency: 0.0005, Energy: 0.00001}, {Latency: 0.001, Energy: 0.00003}, {Latency: 0.002, Energy: 0.00005}},
			{{Latency: 0.0005, Energy: 0.00001}, {}, {Latency: 0.001, Energy: 0.00003}, {Latency: 0.002, Energy: 0.00005}},
			{{Latency: 0.005, Energy: 0.00018}, {Latency: 0.005, Energy: 0.00018}, {}, {Latency: 0.001, Energy: 0.00002}},
			{{Latency: 0.025, Energy: 0.0011}, {Latency: 0.025, Energy: 0.0011}, Forbidden, {}},
		},
		0.004,
	)
	if err != nil {
		panic("device: invalid SensorRadio catalog entry: " + err.Error())
	}
	return p
}

// TwoState returns the minimal on/off device used in unit tests: on serves
// and draws 1 W, off draws 0.1 W, each switch takes one slot-scale latency
// and costs fixed energy.
func TwoState() *PSM {
	p, err := New("two-state",
		[]PowerState{
			{Name: "on", Power: 1.0, CanService: true},
			{Name: "off", Power: 0.1},
		},
		[][]Transition{
			{{}, {Latency: 0.5, Energy: 0.3}},
			{{Latency: 1.0, Energy: 1.2}, {}},
		},
		0.5,
	)
	if err != nil {
		panic("device: invalid TwoState catalog entry: " + err.Error())
	}
	return p
}

// Synthetic3 returns the 3-state synthetic device driving the Fig. 1 and
// Fig. 2 experiments. With slot duration 0.5 s it yields: active 1.0 J/slot
// (serves 1 req/slot), idle 0.4 J/slot, sleep 0.05 J/slot; sleep->active
// takes 3 slots and 2.5 J, so sleeping pays off only for idle stretches of
// roughly 8+ slots — long enough that the optimal policy depends on the
// arrival rate, which is exactly the regime where learning beats
// heuristics.
func Synthetic3() *PSM {
	p, err := New("synthetic3",
		[]PowerState{
			{Name: "active", Power: 2.0, CanService: true},
			{Name: "idle", Power: 0.8},
			{Name: "sleep", Power: 0.1},
		},
		[][]Transition{
			{{}, {Latency: 0, Energy: 0}, {Latency: 0.5, Energy: 0.3}},
			{{Latency: 0, Energy: 0}, {}, {Latency: 0.5, Energy: 0.3}},
			{{Latency: 1.5, Energy: 2.5}, {Latency: 1.5, Energy: 2.5}, {}},
		},
		0.5,
	)
	if err != nil {
		panic("device: invalid Synthetic3 catalog entry: " + err.Error())
	}
	return p
}

// Catalog returns every named reference device.
func Catalog() map[string]*PSM {
	return map[string]*PSM{
		"hdd":          HDD(),
		"wlan":         WLAN(),
		"sensor-radio": SensorRadio(),
		"two-state":    TwoState(),
		"synthetic3":   Synthetic3(),
	}
}

// Lookup returns the named catalog device or an error listing valid names.
func Lookup(name string) (*PSM, error) {
	c := Catalog()
	if p, ok := c[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	return nil, &UnknownDeviceError{Name: name, Known: names}
}

// UnknownDeviceError reports a Lookup miss.
type UnknownDeviceError struct {
	Name  string
	Known []string
}

func (e *UnknownDeviceError) Error() string {
	return "device: unknown device " + e.Name
}
