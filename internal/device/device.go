// Package device models power-manageable components as power state
// machines (PSMs): a set of power states with per-state power draw, and a
// transition matrix with per-transition latency and energy.
//
// Devices are specified in physical units (watts, seconds, joules) and
// converted with Slotted into the discrete timebase the Q-DPM controller
// and the DTMDP model share, so the simulator, the analytic optimal policy,
// and the learned policy all see exactly the same dynamics.
package device

import (
	"fmt"
	"math"
)

// StateID indexes a power state within a PSM.
type StateID int

// PowerState is one operating point of a device.
type PowerState struct {
	// Name is a short human-readable label ("active", "sleep", ...).
	Name string
	// Power is the state's power draw in watts.
	Power float64
	// CanService reports whether the device serves requests in this state.
	CanService bool
}

// Transition describes moving between two power states.
type Transition struct {
	// Latency is the transition duration in seconds. Zero means
	// instantaneous. A negative latency marks the transition as forbidden.
	Latency float64
	// Energy is the total energy cost of the transition in joules.
	Energy float64
}

// Forbidden is a Transition value that marks a disallowed state change.
var Forbidden = Transition{Latency: -1}

// PSM is a power state machine: the static description of a power-managed
// device. Build one with New (or take one from the Catalog) so it is
// validated once, then treat it as immutable.
type PSM struct {
	// Name identifies the device in reports.
	Name string
	// States lists the power states; index is the StateID.
	States []PowerState
	// Trans is the |S|×|S| transition matrix. Trans[i][j] describes
	// switching from state i to state j. Diagonal entries must be
	// zero-latency, zero-energy (staying is free).
	Trans [][]Transition
	// ServiceTime is the time to serve one request in seconds, in any
	// state with CanService set.
	ServiceTime float64
}

// New validates and returns a PSM.
func New(name string, states []PowerState, trans [][]Transition, serviceTime float64) (*PSM, error) {
	p := &PSM{Name: name, States: states, Trans: trans, ServiceTime: serviceTime}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks structural invariants; New calls it automatically.
func (p *PSM) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("device: PSM needs a name")
	}
	n := len(p.States)
	if n < 2 {
		return fmt.Errorf("device %s: needs at least 2 power states, got %d", p.Name, n)
	}
	if len(p.Trans) != n {
		return fmt.Errorf("device %s: transition matrix has %d rows, want %d", p.Name, len(p.Trans), n)
	}
	serviceStates := 0
	for i, st := range p.States {
		if st.Name == "" {
			return fmt.Errorf("device %s: state %d has no name", p.Name, i)
		}
		if st.Power < 0 || math.IsNaN(st.Power) || math.IsInf(st.Power, 0) {
			return fmt.Errorf("device %s: state %q power %v invalid", p.Name, st.Name, st.Power)
		}
		if st.CanService {
			serviceStates++
		}
		if len(p.Trans[i]) != n {
			return fmt.Errorf("device %s: transition row %d has %d entries, want %d", p.Name, i, len(p.Trans[i]), n)
		}
		for j, tr := range p.Trans[i] {
			if i == j {
				if tr.Latency != 0 || tr.Energy != 0 {
					return fmt.Errorf("device %s: self-transition %q must be free", p.Name, st.Name)
				}
				continue
			}
			if tr.Latency < 0 {
				continue // forbidden — fine
			}
			if math.IsNaN(tr.Latency) || math.IsInf(tr.Latency, 0) {
				return fmt.Errorf("device %s: transition %q->%q latency %v invalid", p.Name, st.Name, p.States[j].Name, tr.Latency)
			}
			if tr.Energy < 0 || math.IsNaN(tr.Energy) || math.IsInf(tr.Energy, 0) {
				return fmt.Errorf("device %s: transition %q->%q energy %v invalid", p.Name, st.Name, p.States[j].Name, tr.Energy)
			}
		}
	}
	if serviceStates == 0 {
		return fmt.Errorf("device %s: no state can service requests", p.Name)
	}
	if !(p.ServiceTime > 0) || math.IsInf(p.ServiceTime, 0) {
		return fmt.Errorf("device %s: service time %v must be positive and finite", p.Name, p.ServiceTime)
	}
	// Every state must be able to reach a service state (otherwise the PM
	// could strand the device).
	reach := p.reachability()
	for i := range p.States {
		ok := false
		for j, st := range p.States {
			if st.CanService && reach[i][j] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("device %s: state %q cannot reach any service state", p.Name, p.States[i].Name)
		}
	}
	return nil
}

// reachability computes the transitive closure of allowed transitions
// (including trivial self-reachability).
func (p *PSM) reachability() [][]bool {
	n := len(p.States)
	r := make([][]bool, n)
	for i := range r {
		r[i] = make([]bool, n)
		r[i][i] = true
		for j := range r[i] {
			if i != j && p.Trans[i][j].Latency >= 0 {
				r[i][j] = true
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r[i][k] && r[k][j] {
					r[i][j] = true
				}
			}
		}
	}
	return r
}

// Allowed reports whether the PM may command a transition from -> to.
func (p *PSM) Allowed(from, to StateID) bool {
	if from == to {
		return true
	}
	return p.Trans[from][to].Latency >= 0
}

// NumStates returns the number of power states.
func (p *PSM) NumStates() int { return len(p.States) }

// MaxPower returns the power draw in watts of the hungriest state — the
// always-on reference every energy-reduction figure normalizes against.
func (p *PSM) MaxPower() float64 {
	m := 0.0
	for _, st := range p.States {
		if st.Power > m {
			m = st.Power
		}
	}
	return m
}

// StateByName returns the StateID of the named state.
func (p *PSM) StateByName(name string) (StateID, error) {
	for i, st := range p.States {
		if st.Name == name {
			return StateID(i), nil
		}
	}
	return 0, fmt.Errorf("device %s: no state named %q", p.Name, name)
}

// BreakEven returns the break-even time in seconds for parking in state
// `to` instead of staying in `from`: the idle duration beyond which the
// round trip (from->to->from) saves energy. It returns +Inf when `to` does
// not save power and an error when the round trip is forbidden.
//
// T_be = (E_down + E_up + P_to·(L_down+L_up) ... ) — we use the standard
// definition: the idle time T such that staying (P_from·T) equals
// transitioning (E_down + E_up + P_to·max(0, T − L_down − L_up)). Solving
// at equality with the transition time included:
//
//	T_be = (E_down + E_up − P_to·(L_down+L_up)) / (P_from − P_to)
//
// clamped below by the total transition latency.
func (p *PSM) BreakEven(from, to StateID) (float64, error) {
	if !p.Allowed(from, to) || !p.Allowed(to, from) {
		return 0, fmt.Errorf("device %s: round trip %q<->%q forbidden", p.Name, p.States[from].Name, p.States[to].Name)
	}
	pf, pt := p.States[from].Power, p.States[to].Power
	if pt >= pf {
		return math.Inf(1), nil
	}
	down, up := p.Trans[from][to], p.Trans[to][from]
	lat := down.Latency + up.Latency
	tbe := (down.Energy + up.Energy - pt*lat) / (pf - pt)
	if tbe < lat {
		tbe = lat
	}
	return tbe, nil
}

// ---------------------------------------------------------------------------
// Slotted form

// Slotted is a PSM converted to a discrete timebase of SlotDuration
// seconds: per-slot state energies in joules, integer transition latencies
// in slots, and an integer per-slot service capacity. This is the form the
// slotted simulator, the DTMDP builder, and the Q-DPM state encoder share.
type Slotted struct {
	// PSM is the physical description this was derived from.
	PSM *PSM
	// SlotDuration is the slot length in seconds.
	SlotDuration float64
	// StateEnergy[i] is the energy in joules consumed per slot spent in
	// state i.
	StateEnergy []float64
	// TransSlots[i][j] is the transition latency in whole slots
	// (ceil(latency/slot)), or -1 when forbidden.
	TransSlots [][]int
	// TransEnergy[i][j] is the total transition energy in joules.
	TransEnergy [][]float64
	// ServePerSlot is the number of requests a servicing state completes
	// per slot (>= 1).
	ServePerSlot int
}

// Slot converts the PSM to a slotted form. slotDuration must be positive;
// it should be >= ServiceTime so at least one request completes per active
// slot (the experiments use slotDuration == ServiceTime, giving
// ServePerSlot == 1, the classic DTMDP setup).
func (p *PSM) Slot(slotDuration float64) (*Slotted, error) {
	if !(slotDuration > 0) || math.IsInf(slotDuration, 0) {
		return nil, fmt.Errorf("device %s: slot duration %v must be positive and finite", p.Name, slotDuration)
	}
	serve := int(math.Floor(slotDuration/p.ServiceTime + 1e-9))
	if serve < 1 {
		return nil, fmt.Errorf("device %s: slot duration %v shorter than service time %v", p.Name, slotDuration, p.ServiceTime)
	}
	n := len(p.States)
	s := &Slotted{
		PSM:          p,
		SlotDuration: slotDuration,
		StateEnergy:  make([]float64, n),
		TransSlots:   make([][]int, n),
		TransEnergy:  make([][]float64, n),
		ServePerSlot: serve,
	}
	for i, st := range p.States {
		s.StateEnergy[i] = st.Power * slotDuration
		s.TransSlots[i] = make([]int, n)
		s.TransEnergy[i] = make([]float64, n)
		for j, tr := range p.Trans[i] {
			if i == j {
				continue
			}
			if tr.Latency < 0 {
				s.TransSlots[i][j] = -1
				continue
			}
			s.TransSlots[i][j] = int(math.Ceil(tr.Latency/slotDuration - 1e-9))
			s.TransEnergy[i][j] = tr.Energy
		}
	}
	return s, nil
}

// MaxPowerEnergy returns the per-slot energy of the hungriest state; used
// to normalize rewards into a bounded range.
func (s *Slotted) MaxPowerEnergy() float64 {
	m := 0.0
	for _, e := range s.StateEnergy {
		if e > m {
			m = e
		}
	}
	return m
}

// ServiceStates returns the IDs of states that can serve requests.
func (s *Slotted) ServiceStates() []StateID {
	var out []StateID
	for i, st := range s.PSM.States {
		if st.CanService {
			out = append(out, StateID(i))
		}
	}
	return out
}
