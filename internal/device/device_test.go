package device

import (
	"math"
	"testing"
)

func validStates() []PowerState {
	return []PowerState{
		{Name: "on", Power: 1, CanService: true},
		{Name: "off", Power: 0.1},
	}
}

func validTrans() [][]Transition {
	return [][]Transition{
		{{}, {Latency: 0.5, Energy: 0.2}},
		{{Latency: 1, Energy: 1}, {}},
	}
}

func TestNewValidPSM(t *testing.T) {
	p, err := New("test", validStates(), validTrans(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 2 {
		t.Fatalf("NumStates = %d", p.NumStates())
	}
}

func TestValidationRejectsBadPSMs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func() (string, []PowerState, [][]Transition, float64)
	}{
		{"no name", func() (string, []PowerState, [][]Transition, float64) {
			return "", validStates(), validTrans(), 0.5
		}},
		{"one state", func() (string, []PowerState, [][]Transition, float64) {
			return "x", validStates()[:1], [][]Transition{{{}}}, 0.5
		}},
		{"row count mismatch", func() (string, []PowerState, [][]Transition, float64) {
			return "x", validStates(), validTrans()[:1], 0.5
		}},
		{"row length mismatch", func() (string, []PowerState, [][]Transition, float64) {
			tr := validTrans()
			tr[0] = tr[0][:1]
			return "x", validStates(), tr, 0.5
		}},
		{"negative power", func() (string, []PowerState, [][]Transition, float64) {
			st := validStates()
			st[0].Power = -1
			return "x", st, validTrans(), 0.5
		}},
		{"NaN power", func() (string, []PowerState, [][]Transition, float64) {
			st := validStates()
			st[1].Power = math.NaN()
			return "x", st, validTrans(), 0.5
		}},
		{"unnamed state", func() (string, []PowerState, [][]Transition, float64) {
			st := validStates()
			st[1].Name = ""
			return "x", st, validTrans(), 0.5
		}},
		{"no service state", func() (string, []PowerState, [][]Transition, float64) {
			st := validStates()
			st[0].CanService = false
			return "x", st, validTrans(), 0.5
		}},
		{"costly self transition", func() (string, []PowerState, [][]Transition, float64) {
			tr := validTrans()
			tr[0][0] = Transition{Latency: 1}
			return "x", validStates(), tr, 0.5
		}},
		{"negative transition energy", func() (string, []PowerState, [][]Transition, float64) {
			tr := validTrans()
			tr[0][1].Energy = -1
			return "x", validStates(), tr, 0.5
		}},
		{"NaN latency", func() (string, []PowerState, [][]Transition, float64) {
			tr := validTrans()
			tr[0][1].Latency = math.NaN()
			return "x", validStates(), tr, 0.5
		}},
		{"zero service time", func() (string, []PowerState, [][]Transition, float64) {
			return "x", validStates(), validTrans(), 0
		}},
		{"stranded state", func() (string, []PowerState, [][]Transition, float64) {
			// off cannot get back to on
			tr := validTrans()
			tr[1][0] = Forbidden
			return "x", validStates(), tr, 0.5
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.mutate()); err == nil {
				t.Errorf("New accepted %s", tc.name)
			}
		})
	}
}

func TestAllowed(t *testing.T) {
	tr := validTrans()
	tr[0][1] = Forbidden
	// Keep the PSM valid by adding a third state routing on->mid->off.
	states := []PowerState{
		{Name: "on", Power: 1, CanService: true},
		{Name: "mid", Power: 0.5},
		{Name: "off", Power: 0.1},
	}
	full := [][]Transition{
		{{}, {Latency: 0.1, Energy: 0.1}, Forbidden},
		{{Latency: 0.1, Energy: 0.1}, {}, {Latency: 0.1, Energy: 0.1}},
		{{Latency: 1, Energy: 1}, Forbidden, {}},
	}
	p, err := New("route", states, full, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Allowed(0, 2) {
		t.Error("on->off should be forbidden")
	}
	if !p.Allowed(0, 1) || !p.Allowed(1, 2) || !p.Allowed(2, 0) {
		t.Error("allowed transitions misreported")
	}
	if !p.Allowed(1, 1) {
		t.Error("self transition must always be allowed")
	}
}

func TestStateByName(t *testing.T) {
	p := TwoState()
	id, err := p.StateByName("off")
	if err != nil || id != 1 {
		t.Fatalf("StateByName(off) = %d, %v", id, err)
	}
	if _, err := p.StateByName("nope"); err == nil {
		t.Fatal("StateByName accepted unknown state")
	}
}

func TestBreakEven(t *testing.T) {
	p := TwoState()
	tbe, err := p.BreakEven(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// E_down+E_up = 1.5 J, P_on=1, P_off=0.1, lat=1.5s:
	// tbe = (1.5 - 0.1*1.5)/(0.9) = 1.5.
	if math.Abs(tbe-1.5) > 1e-9 {
		t.Errorf("break-even = %v, want 1.5", tbe)
	}
}

func TestBreakEvenInfiniteWhenNoSavings(t *testing.T) {
	p := TwoState()
	tbe, err := p.BreakEven(1, 0) // parking in a hungrier state never pays
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tbe, 1) {
		t.Errorf("break-even into hungrier state = %v, want +Inf", tbe)
	}
}

func TestBreakEvenClampedToLatency(t *testing.T) {
	// Free transitions: break-even is the latency itself (here 0).
	states := []PowerState{
		{Name: "on", Power: 1, CanService: true},
		{Name: "off", Power: 0.1},
	}
	trans := [][]Transition{
		{{}, {Latency: 0, Energy: 0}},
		{{Latency: 0, Energy: 0}, {}},
	}
	p, err := New("free", states, trans, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbe, err := p.BreakEven(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbe != 0 {
		t.Errorf("break-even = %v, want 0", tbe)
	}
}

func TestCatalogAllValid(t *testing.T) {
	for name, p := range Catalog() {
		if err := p.Validate(); err != nil {
			t.Errorf("catalog device %s invalid: %v", name, err)
		}
	}
}

func TestCatalogDevicesHaveMonotonePowerOrdering(t *testing.T) {
	// Catalog convention: states are listed from hungriest to thriftiest.
	for name, p := range Catalog() {
		for i := 1; i < len(p.States); i++ {
			if p.States[i].Power > p.States[i-1].Power {
				t.Errorf("%s: state %q power %v exceeds previous state", name, p.States[i].Name, p.States[i].Power)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("hdd"); err != nil {
		t.Fatal(err)
	}
	_, err := Lookup("toaster")
	if err == nil {
		t.Fatal("Lookup accepted unknown device")
	}
	if _, ok := err.(*UnknownDeviceError); !ok {
		t.Fatalf("error type %T, want *UnknownDeviceError", err)
	}
}

func TestSlotConversion(t *testing.T) {
	p := Synthetic3()
	s, err := p.Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.ServePerSlot != 1 {
		t.Fatalf("ServePerSlot = %d, want 1", s.ServePerSlot)
	}
	// active 2.0 W * 0.5 s = 1.0 J/slot
	if math.Abs(s.StateEnergy[0]-1.0) > 1e-12 {
		t.Errorf("active energy/slot = %v, want 1.0", s.StateEnergy[0])
	}
	if math.Abs(s.StateEnergy[2]-0.05) > 1e-12 {
		t.Errorf("sleep energy/slot = %v, want 0.05", s.StateEnergy[2])
	}
	// sleep->active: 1.5 s latency at 0.5 s slots = 3 slots.
	if s.TransSlots[2][0] != 3 {
		t.Errorf("sleep->active latency = %d slots, want 3", s.TransSlots[2][0])
	}
	if s.TransEnergy[2][0] != 2.5 {
		t.Errorf("sleep->active energy = %v, want 2.5", s.TransEnergy[2][0])
	}
	// active->idle is instantaneous.
	if s.TransSlots[0][1] != 0 {
		t.Errorf("active->idle latency = %d slots, want 0", s.TransSlots[0][1])
	}
}

func TestSlotForbiddenPreserved(t *testing.T) {
	p := HDD()
	s, err := p.Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sleep, _ := p.StateByName("sleep")
	standby, _ := p.StateByName("standby")
	if s.TransSlots[sleep][standby] != -1 {
		t.Error("forbidden transition not preserved in slotted form")
	}
}

func TestSlotRejectsBadDuration(t *testing.T) {
	p := TwoState() // service time 0.5
	if _, err := p.Slot(0); err == nil {
		t.Error("Slot(0) accepted")
	}
	if _, err := p.Slot(0.1); err == nil {
		t.Error("slot shorter than service time accepted")
	}
	if _, err := p.Slot(math.Inf(1)); err == nil {
		t.Error("Slot(+Inf) accepted")
	}
}

func TestSlotExactMultipleLatency(t *testing.T) {
	// 1.0 s latency at 0.5 s slots must be exactly 2 slots, not 3
	// (guards against ceil(x+eps) off-by-one).
	p := TwoState()
	s, err := p.Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.TransSlots[1][0] != 2 {
		t.Errorf("off->on latency = %d slots, want 2", s.TransSlots[1][0])
	}
	if s.TransSlots[0][1] != 1 {
		t.Errorf("on->off latency = %d slots, want 1", s.TransSlots[0][1])
	}
}

func TestMaxPowerEnergyAndServiceStates(t *testing.T) {
	s, err := Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m := s.MaxPowerEnergy(); math.Abs(m-1.0) > 1e-12 {
		t.Errorf("MaxPowerEnergy = %v, want 1.0", m)
	}
	ss := s.ServiceStates()
	if len(ss) != 1 || ss[0] != 0 {
		t.Errorf("ServiceStates = %v, want [0]", ss)
	}
}

func TestHDDBreakEvenIsLong(t *testing.T) {
	// Sanity: spinning a disk down must only pay off for multi-second
	// idles — the classic DPM difficulty.
	p := HDD()
	idle, _ := p.StateByName("idle")
	standby, _ := p.StateByName("standby")
	tbe, err := p.BreakEven(idle, standby)
	if err != nil {
		t.Fatal(err)
	}
	if tbe < 2 || tbe > 60 {
		t.Errorf("HDD idle->standby break-even %v s outside plausible [2,60]", tbe)
	}
}
