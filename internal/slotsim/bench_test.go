package slotsim

import (
	"testing"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/workload"
)

// benchSim builds a canonical simulator for the hot-path benchmarks: the
// synthetic 3-state device under Bernoulli arrivals with a policy that
// exercises real transitions (timeout-style: sleep after idling).
func benchSim(b testing.TB) *Sim {
	b.Helper()
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := workload.NewBernoulli(0.1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{
		Device:        dev,
		Arrivals:      arr,
		QueueCap:      8,
		Policy:        timeoutPolicy{dev: dev, slots: 8},
		Stream:        rng.New(1),
		LatencyWeight: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// timeoutPolicy is a self-contained fixed-timeout policy (slotsim cannot
// import internal/policy without a cycle in tests' mental model; the logic
// is four lines).
type timeoutPolicy struct {
	dev   *device.Slotted
	slots int64
}

func (timeoutPolicy) Name() string { return "bench-timeout" }

func (p timeoutPolicy) Decide(o Observation) device.StateID {
	if o.Queue > 0 || o.IdleSlots < p.slots {
		return 0 // active
	}
	return device.StateID(p.dev.PSM.NumStates() - 1) // deepest sleep
}

// BenchmarkRunBare measures the per-slot cost of the observer-free run
// loop — the path every replicated experiment takes. Allocations per op
// must be (amortized) zero: -benchmem is the regression guard.
func BenchmarkRunBare(b *testing.B) {
	s := benchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.Run(int64(b.N), nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunObserved measures the run loop with a trivial observer, the
// path the windowed figure series take.
func BenchmarkRunObserved(b *testing.B) {
	s := benchSim(b)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.Run(int64(b.N), func(r SlotRecord) { sink += r.Cost }); err != nil {
		b.Fatal(err)
	}
	_ = sink
}

// BenchmarkStep measures a single public Step call.
func BenchmarkStep(b *testing.B) {
	s := benchSim(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
