package slotsim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/workload"
)

// stayPolicy always keeps the current state.
type stayPolicy struct{}

func (stayPolicy) Name() string                        { return "stay" }
func (stayPolicy) Decide(o Observation) device.StateID { return o.Phase }

// gotoPolicy always requests a fixed state.
type gotoPolicy struct{ target device.StateID }

func (p gotoPolicy) Name() string                      { return "goto" }
func (p gotoPolicy) Decide(Observation) device.StateID { return p.target }

// recordingLearner captures feedback for assertions.
type recordingLearner struct {
	stayPolicy
	fbs []Feedback
}

func (r *recordingLearner) Observe(fb *Feedback) { r.fbs = append(r.fbs, *fb) }

func synth() *device.Slotted {
	s, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		panic(err)
	}
	return s
}

func mustBern(p float64) workload.Arrivals {
	b, err := workload.NewBernoulli(p)
	if err != nil {
		panic(err)
	}
	return b
}

func baseConfig(pol Policy, p float64, seed uint64) Config {
	return Config{
		Device:        synth(),
		Arrivals:      mustBern(p),
		QueueCap:      8,
		Policy:        pol,
		Stream:        rng.New(seed),
		LatencyWeight: 0.05,
	}
}

func TestConfigValidation(t *testing.T) {
	valid := baseConfig(stayPolicy{}, 0.1, 1)
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []struct {
		name string
		mut  func(c Config) Config
	}{
		{"nil device", func(c Config) Config { c.Device = nil; return c }},
		{"nil arrivals", func(c Config) Config { c.Arrivals = nil; return c }},
		{"nil policy", func(c Config) Config { c.Policy = nil; return c }},
		{"nil stream", func(c Config) Config { c.Stream = nil; return c }},
		{"negative qcap", func(c Config) Config { c.QueueCap = -1; return c }},
		{"negative latw", func(c Config) Config { c.LatencyWeight = -1; return c }},
		{"zero latw unacknowledged", func(c Config) Config { c.LatencyWeight = 0; return c }},
		{"bad initial state", func(c Config) Config { c.InitialState = 99; return c }},
		{"negative idle sat", func(c Config) Config { c.IdleSaturation = -1; return c }},
	}
	for _, m := range mutations {
		c := m.mut(valid)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", m.name)
		}
	}
	// Zero latency weight is allowed when acknowledged.
	c := valid
	c.LatencyWeight = 0
	c.AllowZeroLatencyWeight = true
	if err := c.Validate(); err != nil {
		t.Errorf("acknowledged zero latency weight rejected: %v", err)
	}
}

func TestAlwaysActiveEnergyExact(t *testing.T) {
	// Staying active for N slots must consume exactly N × 1.0 J on the
	// synthetic3 device.
	sim, err := New(baseConfig(stayPolicy{}, 0.2, 2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.EnergyJ-1000) > 1e-9 {
		t.Errorf("energy %v, want 1000", m.EnergyJ)
	}
	if m.StateSlots[0] != 1000 {
		t.Errorf("active slots %d, want 1000", m.StateSlots[0])
	}
	if got := m.AvgPowerW(0.5); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("avg power %v W, want 2.0", got)
	}
}

func TestRequestConservation(t *testing.T) {
	sim, err := New(baseConfig(stayPolicy{}, 0.6, 3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrived != m.Served+m.Lost+int64(sim.Queue().Len()) {
		t.Errorf("conservation violated: arrived %d != served %d + lost %d + backlog %d",
			m.Arrived, m.Served, m.Lost, sim.Queue().Len())
	}
	if m.Lost != 0 {
		t.Errorf("active server at λ=0.6 < μ=1 lost %d requests", m.Lost)
	}
}

func TestActiveServerClearsQueueEachSlot(t *testing.T) {
	// With Bernoulli arrivals (≤1/slot) and an always-active server
	// serving 1/slot, every request is served in its arrival slot.
	sim, _ := New(baseConfig(stayPolicy{}, 0.5, 4))
	m, _ := sim.Run(10000, nil)
	if m.WaitSlots != 0 {
		t.Errorf("always-active with ≤1 arrival/slot accrued %d wait slots", m.WaitSlots)
	}
	if m.MeanBacklog() != 0 {
		t.Errorf("mean backlog %v, want 0", m.MeanBacklog())
	}
}

func TestTransitionMechanics(t *testing.T) {
	// Command sleep (state 2) from active: latency 1 slot (0.5s at 0.5s
	// slots), energy 0.3 J. Then it stays asleep.
	dev := synth()
	sim, err := New(Config{
		Device: dev, Arrivals: mustBern(0), QueueCap: 8,
		Policy: gotoPolicy{target: 2}, Stream: rng.New(5), LatencyWeight: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: transition slot (1 slot, 0.3 J).
	rec := sim.Step()
	if !rec.Transitioning {
		t.Fatal("slot 0 should be a transition slot")
	}
	if math.Abs(rec.Energy-0.3) > 1e-12 {
		t.Errorf("transition slot energy %v, want 0.3", rec.Energy)
	}
	// Slot 1 onward: sleeping at 0.05 J/slot.
	rec = sim.Step()
	if rec.Transitioning || rec.Phase != 2 {
		t.Fatalf("slot 1 should be settled in sleep, got phase %d transitioning %v", rec.Phase, rec.Transitioning)
	}
	if math.Abs(rec.Energy-0.05) > 1e-12 {
		t.Errorf("sleep slot energy %v, want 0.05", rec.Energy)
	}
	m := sim.Metrics()
	if m.Commands != 1 {
		t.Errorf("commands %d, want 1", m.Commands)
	}
	if m.TransitionSlots != 1 {
		t.Errorf("transition slots %d, want 1", m.TransitionSlots)
	}
}

func TestMultiSlotWakeup(t *testing.T) {
	// From sleep, waking takes 3 slots and 2.5 J on synthetic3.
	dev := synth()
	sim, err := New(Config{
		Device: dev, Arrivals: mustBern(0), QueueCap: 8,
		Policy: gotoPolicy{target: 0}, Stream: rng.New(6),
		LatencyWeight: 0.05, InitialState: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var energy float64
	for i := 0; i < 3; i++ {
		rec := sim.Step()
		if !rec.Transitioning {
			t.Fatalf("slot %d should be transitioning", i)
		}
		energy += rec.Energy
	}
	if math.Abs(energy-2.5) > 1e-9 {
		t.Errorf("wakeup energy %v, want 2.5", energy)
	}
	rec := sim.Step()
	if rec.Transitioning || rec.Phase != 0 {
		t.Fatalf("after wakeup: phase %d transitioning %v", rec.Phase, rec.Transitioning)
	}
	// No service during the transition: requests queued... none here (p=0).
	if sim.Metrics().Commands != 1 {
		t.Errorf("commands %d, want 1", sim.Metrics().Commands)
	}
}

func TestNoServiceDuringTransition(t *testing.T) {
	// Arrivals at rate 1 while the device wakes from sleep must queue.
	dev := synth()
	sim, err := New(Config{
		Device: dev, Arrivals: mustBern(1), QueueCap: 8,
		Policy: gotoPolicy{target: 0}, Stream: rng.New(7),
		LatencyWeight: 0.05, InitialState: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := sim.Step()
		if rec.Served != 0 {
			t.Fatalf("served %d during transition slot %d", rec.Served, i)
		}
	}
	if q := sim.Queue().Len(); q != 3 {
		t.Errorf("backlog after 3-slot wakeup at rate 1 = %d, want 3", q)
	}
}

func TestDisallowedCommandClamped(t *testing.T) {
	// HDD forbids sleep -> standby; command it and verify the clamp.
	hdd, err := device.HDD().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	sleep, _ := hdd.PSM.StateByName("sleep")
	standby, _ := hdd.PSM.StateByName("standby")
	sim, err := New(Config{
		Device: hdd, Arrivals: mustBern(0), QueueCap: 8,
		Policy: gotoPolicy{target: standby}, Stream: rng.New(8),
		LatencyWeight: 0.05, InitialState: sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := sim.Step()
	if rec.Transitioning {
		t.Fatal("forbidden command caused a transition")
	}
	m := sim.Metrics()
	if m.Clamped != 1 || m.Commands != 0 {
		t.Errorf("clamped %d commands %d, want 1/0", m.Clamped, m.Commands)
	}
}

func TestOutOfRangeCommandClamped(t *testing.T) {
	sim, _ := New(baseConfig(gotoPolicy{target: 99}, 0.1, 9))
	sim.Step()
	if m := sim.Metrics(); m.Clamped != 1 {
		t.Errorf("out-of-range command not clamped: %+v", m)
	}
}

func TestLearnerReceivesFeedback(t *testing.T) {
	l := &recordingLearner{}
	sim, err := New(baseConfig(l, 0.5, 10))
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(100, nil)
	if len(l.fbs) != 100 {
		t.Fatalf("learner saw %d feedbacks, want 100", len(l.fbs))
	}
	for i, fb := range l.fbs {
		if fb.Next.Slot != fb.Prev.Slot+1 {
			t.Fatalf("feedback %d: slots %d -> %d", i, fb.Prev.Slot, fb.Next.Slot)
		}
		if fb.Energy < 0 || fb.Cost < fb.Energy {
			t.Fatalf("feedback %d: energy %v cost %v", i, fb.Energy, fb.Cost)
		}
	}
}

func TestIdleSlotsTracking(t *testing.T) {
	// Rate-0 arrivals: idle counter grows and saturates.
	cfg := baseConfig(stayPolicy{}, 0, 11)
	cfg.IdleSaturation = 5
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(100, nil)
	if got := sim.Observe().IdleSlots; got != 5 {
		t.Errorf("idle slots %d, want saturation 5", got)
	}
	// Rate-1 arrivals: idle counter pinned at 0.
	sim2, _ := New(baseConfig(stayPolicy{}, 1, 12))
	sim2.Run(50, nil)
	if got := sim2.Observe().IdleSlots; got != 0 {
		t.Errorf("idle slots %d under rate-1 arrivals, want 0", got)
	}
}

func TestQueueOverflowCounted(t *testing.T) {
	// Sleeping device, rate-1 arrivals, cap 4: exactly cap requests
	// retained, the rest lost.
	sim, err := New(Config{
		Device: synth(), Arrivals: mustBern(1), QueueCap: 4,
		Policy: stayPolicy{}, Stream: rng.New(13),
		LatencyWeight: 0.05, InitialState: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sim.Run(10, nil)
	if m.Lost != 6 {
		t.Errorf("lost %d, want 6", m.Lost)
	}
	if sim.Queue().Len() != 4 {
		t.Errorf("backlog %d, want 4", sim.Queue().Len())
	}
}

func TestRunNegativeRejected(t *testing.T) {
	sim, _ := New(baseConfig(stayPolicy{}, 0.1, 14))
	if _, err := sim.Run(-1, nil); err == nil {
		t.Fatal("negative run accepted")
	}
}

func TestObserverSeesEverySlot(t *testing.T) {
	sim, _ := New(baseConfig(stayPolicy{}, 0.3, 15))
	var slots []int64
	sim.Run(50, func(r SlotRecord) { slots = append(slots, r.Slot) })
	if len(slots) != 50 {
		t.Fatalf("observer called %d times", len(slots))
	}
	for i, s := range slots {
		if s != int64(i) {
			t.Fatalf("observer slot %d = %d", i, s)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Metrics {
		sim, _ := New(baseConfig(stayPolicy{}, 0.4, 77))
		m, _ := sim.Run(5000, nil)
		return m
	}
	a, b := run(), run()
	if a.EnergyJ != b.EnergyJ || a.Arrived != b.Arrived || a.CostTotal != b.CostTotal {
		t.Error("identical configs+seeds produced different metrics")
	}
}

func TestCostDecomposition(t *testing.T) {
	// CostTotal == EnergyJ + LatencyWeight * BacklogSum.
	sim, _ := New(Config{
		Device: synth(), Arrivals: mustBern(0.9), QueueCap: 8,
		Policy: stayPolicy{}, Stream: rng.New(16),
		LatencyWeight: 0.07, InitialState: 2, // sleeping: backlog builds
	})
	m, _ := sim.Run(3000, nil)
	want := m.EnergyJ + 0.07*float64(m.BacklogSum)
	if math.Abs(m.CostTotal-want) > 1e-6 {
		t.Errorf("cost %v != energy %v + w*backlog %v", m.CostTotal, m.EnergyJ, want)
	}
}

// Property: conservation and non-negative metrics hold for random seeds,
// rates, and initial states.
func TestInvariantsProperty(t *testing.T) {
	f := func(seed uint64, pRaw, initRaw uint8) bool {
		p := float64(pRaw%101) / 100
		arr, err := workload.NewBernoulli(p)
		if err != nil {
			return false
		}
		sim, err := New(Config{
			Device: synth(), Arrivals: arr, QueueCap: 8,
			Policy: stayPolicy{}, Stream: rng.New(seed),
			LatencyWeight: 0.05, InitialState: device.StateID(initRaw % 3),
		})
		if err != nil {
			return false
		}
		m, err := sim.Run(2000, nil)
		if err != nil {
			return false
		}
		if m.Arrived != m.Served+m.Lost+int64(sim.Queue().Len()) {
			return false
		}
		if m.EnergyJ < 0 || m.CostTotal < m.EnergyJ-1e-9 {
			return false
		}
		var settled int64
		for _, s := range m.StateSlots {
			settled += s
		}
		return settled+m.TransitionSlots == m.Slots
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimStep(b *testing.B) {
	sim, _ := New(baseConfig(stayPolicy{}, 0.3, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// --- Cross-device integration: multi-arrival workloads and multi-serve
// devices exercise the paths Bernoulli+ServePerSlot=1 never touches.

func TestPoissonMultiArrivalConservation(t *testing.T) {
	pois, err := workload.NewPoisson(2.5) // several arrivals per slot
	if err != nil {
		t.Fatal(err)
	}
	hdd, err := device.HDD().Slot(0.5) // ServePerSlot = 41
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Device: hdd, Arrivals: pois, QueueCap: 32,
		Policy: stayPolicy{}, Stream: rng.New(101), LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Arrived != m.Served+m.Lost+int64(sim.Queue().Len()) {
		t.Errorf("conservation violated on multi-arrival workload")
	}
	// An active HDD serving 41/slot at λ=2.5 must never lose requests.
	if m.Lost != 0 {
		t.Errorf("active multi-serve device lost %d requests", m.Lost)
	}
	if m.MeanBacklog() != 0 {
		t.Errorf("multi-serve backlog %v, want 0", m.MeanBacklog())
	}
}

func TestMultiServeDrainsBacklogFast(t *testing.T) {
	// Sleeping WLAN accumulates a burst; once woken, ServePerSlot = 250
	// must clear the whole backlog in one slot.
	wlan, err := device.WLAN().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	doze, _ := wlan.PSM.StateByName("doze")
	txrx, _ := wlan.PSM.StateByName("txrx")
	burst, err := workload.NewPoisson(3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Device: wlan, Arrivals: burst, QueueCap: 64,
		Policy: stayPolicy{}, Stream: rng.New(102),
		LatencyWeight: 0.3, InitialState: doze,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sim.Step()
	}
	backlog := sim.Queue().Len()
	if backlog == 0 {
		t.Fatal("no backlog accumulated while dozing")
	}
	// Wake and serve: doze->txrx takes 1 slot (0.1s at 0.5s slots)...
	// at 0.5s slots ceil(0.1/0.5)=1 slot. Then one serving slot clears all.
	sim2, err := New(Config{
		Device: wlan, Arrivals: mustBern(0), QueueCap: 64,
		Policy: gotoPolicy{target: txrx}, Stream: rng.New(103),
		LatencyWeight: 0.3, InitialState: doze,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sim2.Queue().Push(0)
	}
	sim2.Step() // transition slot
	rec := sim2.Step()
	if rec.Served != 30 {
		t.Errorf("multi-serve slot served %d, want all 30", rec.Served)
	}
}

func TestSensorRadioEndToEnd(t *testing.T) {
	// Whole-catalog smoke: the sensor radio with a learning policy must
	// satisfy conservation and beat always-on energy at sparse traffic.
	dev, err := device.SensorRadio().Slot(0.05)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.NewBernoulli(0.01)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Device: dev, Arrivals: arr, QueueCap: 4,
		Policy: gotoPolicy{target: 2}, // park in sleep; wake never — stress clamp paths
		Stream: rng.New(104), LatencyWeight: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(50000, nil)
	if err != nil {
		t.Fatal(err)
	}
	alwaysOnEnergy := dev.StateEnergy[0] * float64(m.Slots)
	if m.EnergyJ >= alwaysOnEnergy {
		t.Errorf("sleeping radio energy %v not below always-on %v", m.EnergyJ, alwaysOnEnergy)
	}
	if m.Arrived != m.Served+m.Lost+int64(sim.Queue().Len()) {
		t.Error("conservation violated on sensor radio")
	}
}

// TestResetBitIdenticalToFresh: a Reset simulator replays a replica
// bit-identically to a freshly built one — including a capacity change —
// and the reuse path performs no heap allocations once warmed.
func TestResetBitIdenticalToFresh(t *testing.T) {
	run := func(s *Sim, slots int64) Metrics {
		m, err := s.Run(slots, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	reused, err := New(baseConfig(gotoPolicy{target: 0}, 0.3, 1))
	if err != nil {
		t.Fatal(err)
	}
	run(reused, 500) // dirty the state

	for i, mk := range []func(seed uint64) Config{
		func(seed uint64) Config { return baseConfig(stayPolicy{}, 0.2, seed) },
		func(seed uint64) Config {
			c := baseConfig(gotoPolicy{target: 0}, 0.6, seed)
			c.QueueCap = 3
			return c
		},
	} {
		if err := reused.Reset(mk(7)); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(mk(7)) // own stream, same seed
		if err != nil {
			t.Fatal(err)
		}
		a, b := run(reused, 400), run(fresh, 400)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("case %d: reset sim diverges from fresh:\n%+v\nvs\n%+v", i, a, b)
		}
	}

	// Allocation-free once the ring and StateSlots are warm: one config
	// whose stream is reseeded in place per replica, the fleet reuse
	// shape.
	cfg := baseConfig(stayPolicy{}, 0.2, 11)
	seed := uint64(11)
	if err := reused.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	run(reused, 64)
	allocs := testing.AllocsPerRun(20, func() {
		seed++
		cfg.Stream.Reseed(seed)
		if err := reused.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := reused.Run(64, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("slotsim Reset+Run allocates %.1f times per replica", allocs)
	}
}
