package slotsim

import "testing"

// TestSlotLoopAllocationFree is the slotsim half of the allocation
// regression gate (core's TestQDPMHotPathAllocationFree covers the full
// Q-DPM manager on top): after warm-up the observer-free run loop
// performs no heap allocations per slot. CI runs this on every build so
// an allocating change to the hot path fails fast instead of landing as
// a silent throughput regression.
func TestSlotLoopAllocationFree(t *testing.T) {
	s := benchSim(t)
	if _, err := s.Run(5000, nil); err != nil { // warm up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := s.Run(1000, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("slot loop allocates: %.1f allocs per 1000 slots, want 0", avg)
	}
}
