// Package slotsim implements the slotted discrete-time simulation of a
// power-managed system: service requester (workload) → bounded queue →
// service provider (device PSM) under the control of a pluggable power-
// management policy.
//
// Per-slot semantics (mirrored exactly by the DTMDP in internal/mdp, so
// "optimal" policies computed there are optimal here):
//
//  1. The policy observes (device phase, queue length, idle slots) and
//     commands a target power state. Commands are only accepted when the
//     device is not mid-transition; disallowed targets clamp to "stay".
//  2. A commanded change with positive latency L puts the device into a
//     transition for L slots, charging Energy/L joules per transition slot
//     (the transition energy subsumes state power during the switch). A
//     zero-latency change takes effect immediately and charges its full
//     energy in the current slot.
//  3. This slot's arrivals join the queue; overflow requests are lost.
//  4. If the device occupies a servicing state (not transitioning), it
//     serves up to ServePerSlot requests.
//  5. Energy and latency metrics accumulate; learning policies receive a
//     Feedback record.
//
// The per-slot scalar cost is energy + LatencyWeight × post-service
// backlog. The model-based optimizers minimize the long-run average of
// exactly this cost, and Q-DPM's reward is its negation, so every policy in
// the repository optimizes the same objective and Fig. 1's comparison is
// apples-to-apples.
package slotsim

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/queue"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Observation is what a policy sees at the start of a slot.
type Observation struct {
	// Phase is the current power state (the source state while a
	// transition is in progress).
	Phase device.StateID
	// Transitioning reports whether the device is mid-transition; while
	// true, Decide is not consulted.
	Transitioning bool
	// TransTarget is the destination state of the in-progress transition.
	TransTarget device.StateID
	// TransRemaining is the number of transition slots left (including
	// the current slot).
	TransRemaining int
	// Queue is the number of buffered requests.
	Queue int
	// IdleSlots counts slots since the last arrival, saturating at the
	// simulator's IdleSaturation.
	IdleSlots int64
	// Slot is the absolute slot index.
	Slot int64
}

// Feedback is the post-slot record handed to learning policies.
type Feedback struct {
	// Prev is the observation the decision was made on.
	Prev Observation
	// Action is the state the policy commanded (after clamping).
	Action device.StateID
	// Energy is the joules consumed this slot.
	Energy float64
	// Cost is energy + LatencyWeight×backlog, the scalar the system
	// optimizes.
	Cost float64
	// Served, Arrived, and Lost count this slot's requests.
	Served, Arrived, Lost int
	// Next is the observation at the start of the following slot.
	Next Observation
}

// Policy decides power-state commands.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the desired power state for the coming slot. It is
	// only called when the device is not transitioning.
	Decide(obs Observation) device.StateID
}

// Learner is a Policy that adapts online from per-slot feedback.
type Learner interface {
	Policy
	// Observe delivers the slot outcome after every slot (including
	// transition slots, where Action equals the transition target). fb
	// points into scratch the simulator reuses every slot: it is valid
	// only for the duration of the call, and implementations must copy
	// any fields they keep.
	Observe(fb *Feedback)
}

// Config assembles a simulation.
type Config struct {
	// Device is the slotted PSM under management.
	Device *device.Slotted
	// Arrivals drives request generation. The simulator owns the value
	// and advances its phase; pass a Clone if you reuse the process.
	Arrivals workload.Arrivals
	// QueueCap bounds the request queue (0 = unbounded).
	QueueCap int
	// Policy is the power manager.
	Policy Policy
	// Stream supplies all randomness.
	Stream *rng.Stream
	// LatencyWeight converts backlog into cost units (joules per
	// request-slot). Zero is allowed but makes "never serve" optimal, so
	// Validate warns via error unless AllowZeroLatencyWeight is set.
	LatencyWeight float64
	// AllowZeroLatencyWeight permits LatencyWeight == 0 (used by tests).
	AllowZeroLatencyWeight bool
	// InitialState is the device state at slot 0 (default: state 0).
	InitialState device.StateID
	// IdleSaturation caps the idle-slot counter (default 1024).
	IdleSaturation int64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Device == nil {
		return fmt.Errorf("slotsim: config needs a device")
	}
	if c.Arrivals == nil {
		return fmt.Errorf("slotsim: config needs an arrival process")
	}
	if c.Policy == nil {
		return fmt.Errorf("slotsim: config needs a policy")
	}
	if c.Stream == nil {
		return fmt.Errorf("slotsim: config needs an rng stream")
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("slotsim: negative queue capacity %d", c.QueueCap)
	}
	if c.LatencyWeight < 0 || math.IsNaN(c.LatencyWeight) {
		return fmt.Errorf("slotsim: latency weight %v must be >= 0", c.LatencyWeight)
	}
	if c.LatencyWeight == 0 && !c.AllowZeroLatencyWeight {
		return fmt.Errorf("slotsim: latency weight 0 makes starving the queue optimal; set AllowZeroLatencyWeight to insist")
	}
	if int(c.InitialState) < 0 || int(c.InitialState) >= c.Device.PSM.NumStates() {
		return fmt.Errorf("slotsim: initial state %d out of range", c.InitialState)
	}
	if c.IdleSaturation < 0 {
		return fmt.Errorf("slotsim: negative idle saturation %d", c.IdleSaturation)
	}
	return nil
}

// Metrics summarizes a run.
type Metrics struct {
	// Slots is the number of simulated slots.
	Slots int64
	// EnergyJ is the total energy in joules.
	EnergyJ float64
	// CostTotal is the accumulated energy+latency cost.
	CostTotal float64
	// Arrived, Served, Lost count requests.
	Arrived, Served, Lost int64
	// WaitSlots is the cumulative waiting of served requests.
	WaitSlots int64
	// BacklogSum is the sum over slots of post-service backlog.
	BacklogSum int64
	// StateSlots[i] counts slots spent settled in state i.
	StateSlots []int64
	// TransitionSlots counts slots spent switching states.
	TransitionSlots int64
	// Commands counts accepted state-change commands.
	Commands int64
	// Clamped counts decisions rejected as disallowed transitions.
	Clamped int64
}

// AvgPowerW returns mean power in watts given the slot duration.
func (m *Metrics) AvgPowerW(slotDuration float64) float64 {
	if m.Slots == 0 {
		return 0
	}
	return m.EnergyJ / (float64(m.Slots) * slotDuration)
}

// AvgCost returns mean per-slot cost.
func (m *Metrics) AvgCost() float64 {
	if m.Slots == 0 {
		return 0
	}
	return m.CostTotal / float64(m.Slots)
}

// MeanWaitSlots returns the average served-request waiting time in slots.
func (m *Metrics) MeanWaitSlots() float64 {
	if m.Served == 0 {
		return 0
	}
	return float64(m.WaitSlots) / float64(m.Served)
}

// MeanBacklog returns the time-average queue backlog.
func (m *Metrics) MeanBacklog() float64 {
	if m.Slots == 0 {
		return 0
	}
	return float64(m.BacklogSum) / float64(m.Slots)
}

// LossRate returns the fraction of arrivals that were dropped.
func (m *Metrics) LossRate() float64 {
	if m.Arrived == 0 {
		return 0
	}
	return float64(m.Lost) / float64(m.Arrived)
}

// SlotRecord is the per-slot sample passed to Run's observer callback.
type SlotRecord struct {
	Slot          int64
	Energy        float64
	Cost          float64
	Backlog       int
	Arrived       int
	Served        int
	Lost          int
	Phase         device.StateID
	Transitioning bool
}

// Sim is a single simulation instance. Create with New, drive with Run or
// Step.
type Sim struct {
	cfg Config
	q   *queue.Queue

	phase      device.StateID
	transTo    device.StateID
	transLeft  int
	transCost  float64 // per-slot energy while transitioning
	idleSlots  int64
	slot       int64
	metrics    Metrics
	learner    Learner  // non-nil when cfg.Policy implements Learner
	fb         Feedback // per-slot feedback scratch, rewritten every slot
	idleSatCap int64
}

// New validates cfg and returns a ready simulator.
func New(cfg Config) (*Sim, error) {
	s := &Sim{}
	if err := s.init(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset reinitializes s for a new replica under cfg — rebinding device,
// arrivals, policy, and stream — reusing the queue ring and the
// StateSlots buffer. A Reset simulator is behaviorally bit-identical to
// a fresh New(cfg) one; it is the slotted counterpart of ctsim.Sim.Reset
// and keeps fleet instance turnover off the allocator.
func (s *Sim) Reset(cfg Config) error { return s.init(cfg) }

// init validates cfg and (re)sets every piece of run state.
func (s *Sim) init(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if s.q == nil {
		q, err := queue.New(cfg.QueueCap)
		if err != nil {
			return err
		}
		s.q = q
	} else if err := s.q.Reconfigure(cfg.QueueCap); err != nil {
		return err
	}
	s.cfg = cfg
	s.phase = cfg.InitialState
	s.transTo = 0
	s.transLeft = 0
	s.transCost = 0
	s.idleSlots = 0
	s.slot = 0
	s.idleSatCap = cfg.IdleSaturation
	if s.idleSatCap == 0 {
		s.idleSatCap = 1024
	}
	n := cfg.Device.PSM.NumStates()
	st := s.metrics.StateSlots
	if cap(st) < n {
		st = make([]int64, n)
	}
	st = st[:n]
	for i := range st {
		st[i] = 0
	}
	s.metrics = Metrics{StateSlots: st}
	s.learner = nil
	if l, ok := cfg.Policy.(Learner); ok {
		s.learner = l
	}
	return nil
}

// Observe returns the current observation without advancing time.
func (s *Sim) Observe() Observation {
	return Observation{
		Phase:          s.phase,
		Transitioning:  s.transLeft > 0,
		TransTarget:    s.transTo,
		TransRemaining: s.transLeft,
		Queue:          s.q.Len(),
		IdleSlots:      s.idleSlots,
		Slot:           s.slot,
	}
}

// Step advances one slot and returns its record.
func (s *Sim) Step() SlotRecord {
	var rec SlotRecord
	s.step(&rec)
	return rec
}

// step advances one slot, filling rec when non-nil. The rec == nil path
// is the hot loop of every replicated experiment: it skips the record
// entirely, and together with the preallocated policy scratch buffers it
// performs no per-slot heap allocations (guarded by BenchmarkRunBare's
// -benchmem output).
func (s *Sim) step(rec *SlotRecord) {
	dev := s.cfg.Device
	prev := s.Observe()

	// 1. Decision.
	action := s.phase
	if s.transLeft > 0 {
		action = s.transTo
	} else {
		want := s.cfg.Policy.Decide(prev)
		if want != s.phase {
			if int(want) >= 0 && int(want) < dev.PSM.NumStates() && dev.TransSlots[s.phase][want] >= 0 {
				action = want
				lat := dev.TransSlots[s.phase][want]
				s.metrics.Commands++
				if lat == 0 {
					// Instant switch: full transition energy lands on this
					// slot, which is otherwise an ordinary slot in `want`.
					s.metrics.EnergyJ += dev.TransEnergy[s.phase][want]
					s.metrics.CostTotal += dev.TransEnergy[s.phase][want]
					s.phase = want
				} else {
					s.transTo = want
					s.transLeft = lat
					s.transCost = dev.TransEnergy[s.phase][want] / float64(lat)
				}
			} else {
				s.metrics.Clamped++
			}
		}
	}

	// 2. Arrivals.
	arrived := s.cfg.Arrivals.Next(s.cfg.Stream)
	lost := 0
	for i := 0; i < arrived; i++ {
		if !s.q.Push(s.slot) {
			lost++
		}
	}
	if arrived > 0 {
		s.idleSlots = 0
	} else if s.idleSlots < s.idleSatCap {
		s.idleSlots++
	}

	// 3. Service + 4. energy for this slot.
	served := 0
	var slotEnergy float64
	transitioning := s.transLeft > 0
	if transitioning {
		slotEnergy = s.transCost
		s.metrics.TransitionSlots++
		s.transLeft--
		if s.transLeft == 0 {
			s.phase = s.transTo
		}
	} else {
		slotEnergy = dev.StateEnergy[s.phase]
		s.metrics.StateSlots[s.phase]++
		if dev.PSM.States[s.phase].CanService {
			served = s.q.Serve(dev.ServePerSlot, s.slot)
		}
	}

	backlog := s.q.Len()
	cost := slotEnergy + s.cfg.LatencyWeight*float64(backlog)

	// 5. Metrics.
	s.metrics.Slots++
	s.metrics.EnergyJ += slotEnergy
	s.metrics.CostTotal += cost
	s.metrics.Arrived += int64(arrived)
	s.metrics.Served += int64(served)
	s.metrics.Lost += int64(lost)
	s.metrics.BacklogSum += int64(backlog)

	s.slot++
	if rec != nil {
		rec.Slot = prev.Slot
		rec.Energy = slotEnergy
		rec.Cost = cost
		rec.Backlog = backlog
		rec.Arrived = arrived
		rec.Served = served
		rec.Lost = lost
		rec.Phase = s.phase
		rec.Transitioning = transitioning
	}

	if s.learner != nil {
		// Written into persistent scratch and passed by pointer: the
		// feedback record is two embedded observations wide, and copying
		// it down the learner call chain (adapter, manager) shows up in
		// fleet profiles. Receivers must not retain the pointer (the
		// Learner contract).
		s.fb = Feedback{
			Prev:    prev,
			Action:  action,
			Energy:  slotEnergy,
			Cost:    cost,
			Served:  served,
			Arrived: arrived,
			Lost:    lost,
			Next:    s.Observe(),
		}
		s.learner.Observe(&s.fb)
	}
}

// Run advances n slots, invoking observer (if non-nil) after each slot,
// and returns the accumulated metrics. Run may be called repeatedly; the
// metrics accumulate across calls. The observer choice selects the loop
// at call time: the nil-observer loop never materializes slot records.
func (s *Sim) Run(n int64, observer func(SlotRecord)) (Metrics, error) {
	if n < 0 {
		return Metrics{}, fmt.Errorf("slotsim: negative slot count %d", n)
	}
	if observer == nil {
		for i := int64(0); i < n; i++ {
			s.step(nil)
		}
	} else {
		// One record, reused across the run; the observer receives it by
		// value so retaining it is safe.
		var rec SlotRecord
		for i := int64(0); i < n; i++ {
			s.step(&rec)
			observer(rec)
		}
	}
	// Finalize wait accounting from the queue.
	m := s.metrics
	m.WaitSlots = s.q.WaitSlots()
	return m, nil
}

// Metrics returns a snapshot of the accumulated metrics.
func (s *Sim) Metrics() Metrics {
	m := s.metrics
	m.WaitSlots = s.q.WaitSlots()
	return m
}

// Queue exposes queue counters for integration tests.
func (s *Sim) Queue() *queue.Queue { return s.q }
