package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

func synthDev(t *testing.T) *device.Slotted {
	t.Helper()
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func managerConfig(t *testing.T, seed uint64) Config {
	return Config{
		Device:        synthDev(t),
		QueueCap:      8,
		LatencyWeight: 0.3,
		Stream:        rng.New(seed),
	}
}

func TestNewValidation(t *testing.T) {
	good := managerConfig(t, 1)
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"nil device", func(c Config) Config { c.Device = nil; return c }},
		{"nil stream", func(c Config) Config { c.Stream = nil; return c }},
		{"queue cap 0", func(c Config) Config { c.QueueCap = 0; return c }},
		{"too many buckets", func(c Config) Config { c.QueueBuckets = 99; return c }},
		{"negative latency weight", func(c Config) Config { c.LatencyWeight = -1; return c }},
		{"non-increasing idle buckets", func(c Config) Config { c.IdleBuckets = []int64{5, 5}; return c }},
		{"fuzzy with sarsa", func(c Config) Config { c.Fuzzy = true; c.Rule = qlearn.SARSA; return c }},
		{"fuzzy with traces", func(c Config) Config { c.Fuzzy = true; c.TraceLambda = 0.5; return c }},
		{"qos bad eta", func(c Config) Config { c.QoS = &QoSConfig{TargetBacklog: 1, Eta: 0}; return c }},
		{"qos bad target", func(c Config) Config { c.QoS = &QoSConfig{TargetBacklog: -1, Eta: 0.1}; return c }},
	}
	for _, tc := range cases {
		if _, err := New(tc.mut(good)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestEncoderStateSpace(t *testing.T) {
	cfg := managerConfig(t, 2)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 device states × 9 queue levels × 1 idle bucket.
	if m.NumStates() != 27 {
		t.Errorf("NumStates = %d, want 27", m.NumStates())
	}
	cfg.QueueBuckets = 4
	cfg.IdleBuckets = []int64{4, 16, 64}
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumStates() != 3*4*4 {
		t.Errorf("bucketed NumStates = %d, want 48", m2.NumStates())
	}
}

func TestEncoderClampsQueue(t *testing.T) {
	m, err := New(managerConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	a := m.encode(0, 8, 0)
	b := m.encode(0, 999, 0)
	if a != b {
		t.Error("over-cap queue not clamped")
	}
	if m.encode(0, -5, 0) != m.encode(0, 0, 0) {
		t.Error("negative queue not clamped")
	}
}

func TestIdleBuckets(t *testing.T) {
	cfg := managerConfig(t, 4)
	cfg.IdleBuckets = []int64{4, 16}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.idleBucket(0) != 0 || m.idleBucket(3) != 0 {
		t.Error("idle < 4 not bucket 0")
	}
	if m.idleBucket(4) != 1 || m.idleBucket(15) != 1 {
		t.Error("idle in [4,16) not bucket 1")
	}
	if m.idleBucket(16) != 2 || m.idleBucket(1000) != 2 {
		t.Error("idle >= 16 not bucket 2")
	}
}

// runScenario wires a manager into the simulator at rate p for n slots.
func runScenario(t *testing.T, m *Manager, p float64, n int64, seed uint64) slotsim.Metrics {
	t.Helper()
	arr, err := workload.NewBernoulli(p)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := slotsim.New(slotsim.Config{
		Device:        m.cfg.Device,
		Arrivals:      arr,
		QueueCap:      m.cfg.QueueCap,
		Policy:        m,
		Stream:        rng.New(seed),
		LatencyWeight: m.cfg.LatencyWeight,
	})
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := sim.Run(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return metrics
}

func optimalGain(t *testing.T, p float64) float64 {
	t.Helper()
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device: synthDev(t), ArrivalP: p, QueueCap: 8, LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.AverageCostRVI(1e-8, 300000)
	if err != nil {
		t.Fatal(err)
	}
	return res.Gain
}

func TestQDPMApproachesOptimalCost(t *testing.T) {
	// The Fig. 1 claim in miniature: after learning, Q-DPM's average cost
	// over the tail must be within 15% of the analytically optimal gain
	// and clearly below always-on.
	const p = 0.1
	opt := optimalGain(t, p)

	cfg := managerConfig(t, 5)
	cfg.Explore = qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.002, DecayTau: 30000}
	cfg.Alpha = qlearn.Polynomial{Scale: 0.5, Omega: 0.65}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Learn.
	runScenario(t, m, p, 300000, 6)
	// Measure the tail with exploration nearly off.
	arr, _ := workload.NewBernoulli(p)
	sim, _ := slotsim.New(slotsim.Config{
		Device: m.cfg.Device, Arrivals: arr, QueueCap: 8,
		Policy: m, Stream: rng.New(7), LatencyWeight: 0.3,
	})
	tail, _ := sim.Run(100000, nil)
	got := tail.AvgCost()
	if got > opt*1.15 {
		t.Errorf("learned avg cost %v not within 15%% of optimal %v", got, opt)
	}
	if got >= 1.0 {
		t.Errorf("learned avg cost %v not below always-on 1.0", got)
	}
	if got < opt-0.02 {
		t.Errorf("learned avg cost %v below optimal %v — accounting bug?", got, opt)
	}
}

func TestLearnedGreedyPolicySensible(t *testing.T) {
	cfg := managerConfig(t, 8)
	cfg.Explore = qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.01, DecayTau: 30000}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, m, 0.05, 200000, 9)
	// Empty queue at a low rate: active is wasteful; greedy should leave
	// the active state (idle or sleep both beat staying).
	if got := m.GreedyTarget(0, 0, 0); got == 0 {
		t.Errorf("greedy(active, q=0) stayed active after learning at λ=0.05")
	}

	// Backlog states are only visited at meaningful rates: learn at
	// λ=0.45 and check that a moderately backlogged active device keeps
	// serving. (Far-off-distribution states like q=8 stay at their
	// initial values — expected for online RL.)
	cfg2 := managerConfig(t, 88)
	cfg2.Explore = qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.01, DecayTau: 30000}
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, m2, 0.45, 200000, 89)
	if got := m2.GreedyTarget(0, 2, 0); got != 0 {
		t.Errorf("greedy(active, q=2) after λ=0.45 training = %d, want stay active", got)
	}
}

func TestQDPMBeatsAlwaysOnAtLowRate(t *testing.T) {
	cfg := managerConfig(t, 10)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := runScenario(t, m, 0.02, 150000, 11)
	// Always-on costs 1.0/slot. Even counting the learning phase, Q-DPM
	// must do clearly better at λ=0.02.
	if avg := metrics.AvgCost(); avg > 0.8 {
		t.Errorf("Q-DPM lifetime avg cost %v, want < 0.8 (always-on = 1.0)", avg)
	}
}

func TestSARSAVariantLearns(t *testing.T) {
	cfg := managerConfig(t, 12)
	cfg.Rule = qlearn.SARSA
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := runScenario(t, m, 0.05, 150000, 13)
	if avg := metrics.AvgCost(); avg > 0.9 {
		t.Errorf("SARSA avg cost %v, want < 0.9", avg)
	}
	if m.Name() != "q-dpm-sarsa" {
		t.Errorf("name %q", m.Name())
	}
}

func TestDoubleQVariantLearns(t *testing.T) {
	cfg := managerConfig(t, 14)
	cfg.Rule = qlearn.DoubleQ
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := runScenario(t, m, 0.05, 150000, 15)
	if avg := metrics.AvgCost(); avg > 0.9 {
		t.Errorf("double-Q avg cost %v, want < 0.9", avg)
	}
}

func TestFuzzyVariantLearns(t *testing.T) {
	cfg := managerConfig(t, 16)
	cfg.Fuzzy = true
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := runScenario(t, m, 0.05, 150000, 17)
	if avg := metrics.AvgCost(); avg > 0.9 {
		t.Errorf("fuzzy avg cost %v, want < 0.9", avg)
	}
	if m.Name() != "q-dpm-fuzzy" {
		t.Errorf("name %q", m.Name())
	}
}

func TestQoSAdaptsLambda(t *testing.T) {
	cfg := managerConfig(t, 18)
	cfg.LatencyWeight = 0.02 // deliberately too soft: QoS must compensate
	cfg.QoS = &QoSConfig{TargetBacklog: 0.5, Eta: 0.05, AdaptEvery: 500}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := runScenario(t, m, 0.3, 200000, 19)
	if m.QosLambda() <= 0 {
		t.Errorf("QoS multiplier never rose above zero")
	}
	// With the multiplier active, mean backlog should be pulled toward
	// the target rather than saturating the queue.
	if mb := metrics.MeanBacklog(); mb > 4 {
		t.Errorf("mean backlog %v far above QoS target 0.5", mb)
	}
	if m.Name() != "q-dpm-qos" {
		t.Errorf("name %q", m.Name())
	}
}

func TestNonstationaryTracking(t *testing.T) {
	// Fig. 2 in miniature: after a rate switch, the manager's windowed
	// cost must recover toward the new regime's optimum.
	cfg := managerConfig(t, 20)
	cfg.Explore = qlearn.EpsGreedy{Eps: 0.1, MinEps: 0.02, DecayTau: 50000}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := workload.NewBernoulli(0.02)
	hi, _ := workload.NewBernoulli(0.4)
	pw, _ := workload.NewPiecewise([]workload.Segment{
		{Slots: 100000, Proc: lo},
		{Slots: 100000, Proc: hi},
	})
	sim, err := slotsim.New(slotsim.Config{
		Device: m.cfg.Device, Arrivals: pw, QueueCap: 8,
		Policy: m, Stream: rng.New(21), LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var phase2Cost float64
	var phase2Slots int64
	sim.Run(200000, func(r slotsim.SlotRecord) {
		if r.Slot >= 150000 { // second half of the high-rate phase
			phase2Cost += r.Cost
			phase2Slots++
		}
	})
	avg2 := phase2Cost / float64(phase2Slots)
	opt2 := optimalGain(t, 0.4)
	if avg2 > opt2*1.3 {
		t.Errorf("post-switch avg cost %v not within 30%% of new optimum %v", avg2, opt2)
	}
}

func TestDecisionsCounter(t *testing.T) {
	m, err := New(managerConfig(t, 22))
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, m, 0.1, 1000, 23)
	if m.Decisions() == 0 || m.Decisions() > 1000 {
		t.Errorf("decisions %d out of (0,1000]", m.Decisions())
	}
}

func TestTableBytesSmall(t *testing.T) {
	// The paper's embedded-feasibility claim: the whole learner state for
	// the synthetic device must fit in a few KB.
	m, err := New(managerConfig(t, 24))
	if err != nil {
		t.Fatal(err)
	}
	if b := m.TableBytes(); b > 4096 {
		t.Errorf("table bytes %d, want <= 4096", b)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		m, err := New(managerConfig(t, 25))
		if err != nil {
			t.Fatal(err)
		}
		return runScenario(t, m, 0.1, 20000, 26).EnergyJ
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical seeds diverged: %v vs %v", a, b)
	}
}

func TestSMDPAccountingDuringTransitions(t *testing.T) {
	// Force many sleep->active wakeups (3-slot transitions) and check the
	// learner's update count equals its decision count (every decision
	// eventually completes exactly one update), which fails if the
	// semi-Markov accumulation leaks experiences.
	cfg := managerConfig(t, 27)
	cfg.Explore = qlearn.EpsGreedy{Eps: 0.5} // thrash states
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runScenario(t, m, 0.3, 10000, 28)
	// Decisions = settled slots; updates = completed experiences. Every
	// decision opens an experience completed at the *next* decision
	// point, so they can differ by at most 1 (the still-pending one).
	diff := m.Decisions() - m.Agent().Updates()
	if diff < 0 || diff > 1 {
		t.Errorf("decisions %d vs updates %d: experiences leaked", m.Decisions(), m.Agent().Updates())
	}
}

func mathAbs(x float64) float64 { return math.Abs(x) }

// TestManagerResetBitIdenticalToFresh: after a full learning run, Reset
// restores the manager so a second run replays bit-identically to a
// freshly built manager — the reuse contract the fleet layer's
// zero-allocation instance lifecycle rests on — without allocating.
func TestManagerResetBitIdenticalToFresh(t *testing.T) {
	runSim := func(m *Manager, seed uint64) slotsim.Metrics {
		sim, err := slotsim.New(slotsim.Config{
			Device:        synthDev(t),
			Arrivals:      mustBernoulli(t, 0.25),
			QueueCap:      8,
			Policy:        m,
			Stream:        rng.New(seed),
			LatencyWeight: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		met, err := sim.Run(4000, nil)
		if err != nil {
			t.Fatal(err)
		}
		return met
	}

	reused, err := New(managerConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	runSim(reused, 21) // dirty the table, schedule, and pending state

	stream := rng.New(1) // fresh exploration stream, same seed as cfg
	allocs := testing.AllocsPerRun(1, func() { reused.Reset(stream) })
	if allocs != 0 {
		t.Fatalf("Manager.Reset allocates %.1f times", allocs)
	}
	reused.Reset(rng.New(1))
	fresh, err := New(managerConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	a, b := runSim(reused, 33), runSim(fresh, 33)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reset manager run diverges from fresh:\n%+v\nvs\n%+v", a, b)
	}
	if reused.Decisions() != fresh.Decisions() {
		t.Fatalf("decision counters diverge: %d vs %d", reused.Decisions(), fresh.Decisions())
	}
	if g, w := reused.Agent().Updates(), fresh.Agent().Updates(); g != w {
		t.Fatalf("update counters diverge: %d vs %d", g, w)
	}
}

// mustBernoulli builds a Bernoulli arrival process or fails the test.
func mustBernoulli(t *testing.T, p float64) workload.Arrivals {
	t.Helper()
	arr, err := workload.NewBernoulli(p)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}
