package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

// TestQDPMHotPathAllocationFree pins down the hot-path guarantee: after
// warm-up (scratch buffers sized, queue ring grown), a Q-DPM slot —
// decision, simulation step, learning update — performs no heap
// allocations. This is what lets the worker pool scale replica throughput
// with cores instead of with GC pressure.
func TestQDPMHotPathAllocationFree(t *testing.T) {
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := workload.NewBernoulli(0.1)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{
		Device:        dev,
		QueueCap:      8,
		LatencyWeight: 0.3,
		Explore:       qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.002, DecayTau: 30000},
		Stream:        rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := slotsim.New(slotsim.Config{
		Device:        dev,
		Arrivals:      arr,
		QueueCap:      8,
		Policy:        mgr,
		Stream:        rng.New(2),
		LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(5000, nil); err != nil { // warm up
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := sim.Run(1000, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Errorf("Q-DPM run loop allocates: %.1f allocs per 1000 slots, want 0", avg)
	}
}
