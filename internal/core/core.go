// Package core implements Q-DPM, the paper's contribution: a model-free
// power manager that learns the power-state command policy online with
// tabular Q-learning (Watkins' update, Eqn. 3 of the paper), replacing the
// model-based pipeline of parameter estimator, mode-switch controller, and
// linear-programming policy optimization.
//
// Each decision slot the manager observes (device state, queue occupancy,
// optionally an idle-time bucket), takes the ε-greedy action over the
// allowed power-state commands, and on the next decision point applies the
// Q-update with the discounted payoff accumulated over the slots in
// between — multi-slot device transitions are handled exactly in the
// semi-Markov sense, discounting the bootstrap by γ^k for a k-slot
// transition. The payoff is the paper's "function of energy reduction":
// the energy saved relative to the device's hungriest state, minus a
// latency penalty proportional to the request backlog.
//
// Two of the paper's "rewarding research remaining" directions are also
// implemented:
//
//   - QoS-guaranteed Q-DPM: a Lagrangian backlog multiplier adapted online
//     so mean backlog tracks a target (Config.QoS);
//   - Fuzzy Q-DPM: triangular fuzzy aggregation over the queue dimension
//     for noisy queue observations (Config.Fuzzy).
package core

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
)

// QoSConfig adapts a Lagrangian latency multiplier online so that the
// learned policy honours a mean-backlog target without hand-tuning the
// reward weight.
type QoSConfig struct {
	// TargetBacklog is the mean post-service backlog to track.
	TargetBacklog float64
	// Eta is the multiplier step size per adaptation.
	Eta float64
	// AdaptEvery is the adaptation period in slots (default 1000).
	AdaptEvery int64
	// MaxLambda caps the multiplier (default 10).
	MaxLambda float64
}

// Config assembles a Q-DPM power manager.
type Config struct {
	// Device is the slotted PSM under management.
	Device *device.Slotted
	// QueueCap is the largest queue occupancy the encoder distinguishes;
	// observations beyond it clamp. It should match the simulator's cap.
	QueueCap int
	// QueueBuckets coarsens the queue dimension to this many buckets
	// (0 = exact: QueueCap+1 levels). The granularity ablation uses this.
	QueueBuckets int
	// IdleBuckets, when non-empty, adds an idle-time feature with the
	// given thresholds (slots since last arrival). The paper's state is
	// device×queue; the idle feature is an optional enrichment.
	IdleBuckets []int64
	// LatencyWeight is the backlog penalty in the payoff, in joules per
	// request-slot. Match the simulator's cost weight so Q-DPM optimizes
	// the same objective the analytical policies do.
	LatencyWeight float64
	// Gamma is the discount factor (default 0.98; near 1 so the
	// discounted optimum coincides with the average-cost optimum the
	// model-based solvers compute).
	Gamma float64
	// Alpha is the learning-rate schedule (default Constant{0.1} — a
	// constant rate is what lets Q-DPM track nonstationary input).
	Alpha qlearn.Schedule
	// Explore is the exploration strategy (default EpsGreedy{Eps:0.05}).
	Explore qlearn.Explorer
	// Rule selects Watkins (default), SARSA, or DoubleQ.
	Rule qlearn.Rule
	// TraceLambda enables Watkins Q(λ) traces when > 0.
	TraceLambda float64
	// Fuzzy enables triangular fuzzy aggregation over the queue feature
	// (Watkins rule only, incompatible with traces).
	Fuzzy bool
	// QoS enables the Lagrangian QoS extension.
	QoS *QoSConfig
	// Stream drives exploration.
	Stream *rng.Stream
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = 0.98
	}
	if c.Alpha == nil {
		c.Alpha = qlearn.Constant{C: 0.1}
	}
	if c.Explore == nil {
		c.Explore = qlearn.EpsGreedy{Eps: 0.05}
	}
	if c.QoS != nil {
		q := *c.QoS
		if q.AdaptEvery == 0 {
			q.AdaptEvery = 1000
		}
		if q.MaxLambda == 0 {
			q.MaxLambda = 10
		}
		c.QoS = &q
	}
	return c
}

// Manager is the Q-DPM power manager. It implements slotsim.Learner.
type Manager struct {
	cfg   Config
	agent *qlearn.Agent

	nDev    int
	qLevels int // encoder queue buckets
	iLevels int // encoder idle buckets (>= 1)
	legal   [][]int

	rewardNorm float64
	maxEnergy  float64

	// Pending semi-Markov experience between decision points. Held by
	// value (with a presence flag) so the steady state — one experience
	// per slot — allocates nothing.
	pending    pendingExp
	hasPending bool
	// SARSA: completed experience awaiting the next action choice.
	sarsaReady completedExp
	hasSarsa   bool

	// Fuzzy encodings of the pending decision state.
	fuzzyStates  []int
	fuzzyWeights []float64
	// qScratch holds blended Q values during a fuzzy decision; unlike the
	// fuzzy encodings it never outlives the Decide call, so it is safe to
	// reuse and keeps the per-slot path allocation-free.
	qScratch []float64

	// QoS state.
	qosLambda   float64
	backlogAcc  float64
	backlogN    int64
	lastAdaptAt int64

	decisions int64
}

type pendingExp struct {
	state   int
	states  []int // fuzzy components (nil when crisp)
	weights []float64
	action  device.StateID
	reward  float64 // discounted accumulated payoff
	gpow    float64 // γ^elapsed so far
	elapsed int
}

type completedExp struct {
	pendingExp
	nextState int
}

var _ slotsim.Learner = (*Manager)(nil)

// New validates the configuration and returns a manager with a zeroed
// Q-table.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Device == nil {
		return nil, fmt.Errorf("core: config needs a device")
	}
	if cfg.Stream == nil {
		return nil, fmt.Errorf("core: config needs an rng stream")
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("core: queue cap %d must be >= 1", cfg.QueueCap)
	}
	if cfg.QueueBuckets < 0 || cfg.QueueBuckets > cfg.QueueCap+1 {
		return nil, fmt.Errorf("core: queue buckets %d out of [0,%d]", cfg.QueueBuckets, cfg.QueueCap+1)
	}
	if cfg.LatencyWeight < 0 || math.IsNaN(cfg.LatencyWeight) {
		return nil, fmt.Errorf("core: latency weight %v must be >= 0", cfg.LatencyWeight)
	}
	for i := 1; i < len(cfg.IdleBuckets); i++ {
		if cfg.IdleBuckets[i] <= cfg.IdleBuckets[i-1] {
			return nil, fmt.Errorf("core: idle bucket thresholds must be strictly increasing")
		}
	}
	if cfg.Fuzzy && cfg.Rule != qlearn.Watkins {
		return nil, fmt.Errorf("core: fuzzy aggregation requires the Watkins rule")
	}
	if cfg.Fuzzy && cfg.TraceLambda > 0 {
		return nil, fmt.Errorf("core: fuzzy aggregation is incompatible with eligibility traces")
	}
	if cfg.QoS != nil {
		if !(cfg.QoS.TargetBacklog >= 0) {
			return nil, fmt.Errorf("core: QoS target backlog %v must be >= 0", cfg.QoS.TargetBacklog)
		}
		if !(cfg.QoS.Eta > 0) {
			return nil, fmt.Errorf("core: QoS eta %v must be positive", cfg.QoS.Eta)
		}
	}

	m := &Manager{cfg: cfg, nDev: cfg.Device.PSM.NumStates()}
	m.qLevels = cfg.QueueCap + 1
	if cfg.QueueBuckets > 0 {
		m.qLevels = cfg.QueueBuckets
	}
	m.iLevels = len(cfg.IdleBuckets) + 1
	m.maxEnergy = cfg.Device.MaxPowerEnergy()
	m.rewardNorm = m.maxEnergy + cfg.LatencyWeight*float64(cfg.QueueCap)
	if m.rewardNorm == 0 {
		m.rewardNorm = 1
	}

	// Legal action sets per device state.
	m.legal = make([][]int, m.nDev)
	for i := 0; i < m.nDev; i++ {
		for j := 0; j < m.nDev; j++ {
			if i == j || cfg.Device.TransSlots[i][j] >= 0 {
				m.legal[i] = append(m.legal[i], j)
			}
		}
	}

	agent, err := qlearn.NewAgent(qlearn.Config{
		NumStates:   m.nDev * m.qLevels * m.iLevels,
		NumActions:  m.nDev,
		Gamma:       cfg.Gamma,
		Alpha:       cfg.Alpha,
		Explore:     cfg.Explore,
		Rule:        cfg.Rule,
		TraceLambda: cfg.TraceLambda,
	})
	if err != nil {
		return nil, err
	}
	m.agent = agent
	return m, nil
}

// Reset restores the manager to its freshly-constructed state — Q-table
// at zero, exploration schedule rewound, pending semi-Markov experience
// and QoS multiplier cleared — and rebinds its exploration randomness to
// stream (pass the existing cfg.Stream to keep it). A Reset manager is
// behaviorally bit-identical to New(cfg) with that stream, reusing every
// buffer: the fleet layer cycles one manager per (worker, class) through
// thousands of instances with zero heap traffic.
func (m *Manager) Reset(stream *rng.Stream) {
	m.agent.Reset()
	m.hasPending = false
	m.pending = pendingExp{}
	m.hasSarsa = false
	m.sarsaReady = completedExp{}
	m.fuzzyStates = nil
	m.fuzzyWeights = nil
	m.qosLambda = 0
	m.backlogAcc = 0
	m.backlogN = 0
	m.lastAdaptAt = 0
	m.decisions = 0
	m.cfg.Stream = stream
}

// queueBucket maps an observed queue length to an encoder bucket.
func (m *Manager) queueBucket(q int) int {
	if q < 0 {
		q = 0
	}
	if q > m.cfg.QueueCap {
		q = m.cfg.QueueCap
	}
	if m.cfg.QueueBuckets == 0 {
		return q
	}
	// Equal-width buckets over 0..cap.
	b := q * m.cfg.QueueBuckets / (m.cfg.QueueCap + 1)
	if b >= m.cfg.QueueBuckets {
		b = m.cfg.QueueBuckets - 1
	}
	return b
}

// idleBucket maps idle slots to a bucket via the configured thresholds.
func (m *Manager) idleBucket(idle int64) int {
	b := 0
	for _, th := range m.cfg.IdleBuckets {
		if idle >= th {
			b++
		}
	}
	return b
}

// encode maps an observation to the crisp table state.
func (m *Manager) encode(phase device.StateID, q int, idle int64) int {
	return (int(phase)*m.qLevels+m.queueBucket(q))*m.iLevels + m.idleBucket(idle)
}

// encodeFuzzy returns the fuzzy components of an observation: up to two
// neighbouring queue levels with triangular membership weights.
func (m *Manager) encodeFuzzy(phase device.StateID, q int, idle int64) ([]int, []float64) {
	if q < 0 {
		q = 0
	}
	if q > m.cfg.QueueCap {
		q = m.cfg.QueueCap
	}
	qb := m.queueBucket(q)
	// Membership of the exact occupancy in bucket centres: when buckets
	// are exact (QueueBuckets == 0) fuzziness degenerates to one
	// component per level with a 0.75/0.25 smear onto the neighbour,
	// which is what makes noisy-queue observations robust.
	primary := (int(phase)*m.qLevels+qb)*m.iLevels + m.idleBucket(idle)
	neighbour := qb + 1
	if neighbour >= m.qLevels {
		return []int{primary}, []float64{1}
	}
	second := (int(phase)*m.qLevels+neighbour)*m.iLevels + m.idleBucket(idle)
	return []int{primary, second}, []float64{0.75, 0.25}
}

// blendedQ returns Σ w_i Q(s_i, a).
func (m *Manager) blendedQ(states []int, weights []float64, act int) float64 {
	v := 0.0
	for i, s := range states {
		v += weights[i] * m.agent.Q(s, act)
	}
	return v
}

// Name identifies the policy in reports.
func (m *Manager) Name() string {
	switch {
	case m.cfg.Fuzzy:
		return "q-dpm-fuzzy"
	case m.cfg.QoS != nil:
		return "q-dpm-qos"
	case m.cfg.Rule == qlearn.SARSA:
		return "q-dpm-sarsa"
	case m.cfg.Rule == qlearn.DoubleQ:
		return "q-dpm-double"
	default:
		return "q-dpm"
	}
}

// Decide implements slotsim.Policy: one ε-greedy argmax over the Q row.
func (m *Manager) Decide(obs slotsim.Observation) device.StateID {
	m.decisions++
	legal := m.legal[obs.Phase]

	var action int
	if m.cfg.Fuzzy {
		states, weights := m.encodeFuzzy(obs.Phase, obs.Queue, obs.IdleSlots)
		if cap(m.qScratch) < len(legal) {
			m.qScratch = make([]float64, len(legal))
		}
		qvals := m.qScratch[:len(legal)]
		for i, a := range legal {
			qvals[i] = m.blendedQ(states, weights, a)
		}
		idx, _ := m.cfg.Explore.Select(qvals, m.decisions, m.cfg.Stream)
		action = legal[idx]
		m.fuzzyStates, m.fuzzyWeights = states, weights
	} else {
		s := m.encode(obs.Phase, obs.Queue, obs.IdleSlots)
		// Complete a pending SARSA update with the action about to be taken.
		if m.hasSarsa {
			a2Probe, _ := m.agent.SelectAction(s, legal, m.cfg.Stream)
			m.agent.UpdateSARSA(m.sarsaReady.state, int(m.sarsaReady.action),
				m.sarsaReady.reward, s, a2Probe, m.sarsaReady.elapsed)
			m.hasSarsa = false
			action = a2Probe
		} else {
			action, _ = m.agent.SelectAction(s, legal, m.cfg.Stream)
		}
	}
	return device.StateID(action)
}

// Observe implements slotsim.Learner: accumulate the per-slot payoff and
// apply the Q-update at decision points.
func (m *Manager) Observe(fb *slotsim.Feedback) {
	// Per-slot payoff: energy reduction minus latency penalty, normalized.
	backlog := float64(fb.Next.Queue)
	w := m.cfg.LatencyWeight + m.qosLambda
	reward := (m.maxEnergy - fb.Energy - w*backlog) / m.rewardNorm

	// QoS bookkeeping.
	if m.cfg.QoS != nil {
		m.backlogAcc += backlog
		m.backlogN++
		if fb.Next.Slot-m.lastAdaptAt >= m.cfg.QoS.AdaptEvery {
			avg := m.backlogAcc / float64(m.backlogN)
			m.qosLambda += m.cfg.QoS.Eta * (avg - m.cfg.QoS.TargetBacklog)
			if m.qosLambda < 0 {
				m.qosLambda = 0
			}
			if m.qosLambda > m.cfg.QoS.MaxLambda {
				m.qosLambda = m.cfg.QoS.MaxLambda
			}
			m.backlogAcc, m.backlogN = 0, 0
			m.lastAdaptAt = fb.Next.Slot
		}
	}

	// Start or extend the pending semi-Markov experience.
	if !m.hasPending {
		// Field-by-field: a composite literal would build a temporary
		// pendingExp and block-copy it in.
		p := &m.pending
		p.action = fb.Action
		p.reward = reward
		p.gpow = m.cfg.Gamma
		// elapsed counts slots covered by this experience.
		p.elapsed = 1
		if m.cfg.Fuzzy {
			p.state = 0
			p.states, p.weights = m.fuzzyStates, m.fuzzyWeights
		} else {
			p.state = m.encode(fb.Prev.Phase, fb.Prev.Queue, fb.Prev.IdleSlots)
			p.states, p.weights = nil, nil
		}
		m.hasPending = true
	} else {
		m.pending.reward += m.pending.gpow * reward
		m.pending.gpow *= m.cfg.Gamma
		m.pending.elapsed++
	}

	if fb.Next.Transitioning {
		return // keep accumulating until the next decision point
	}

	// Decision point reached: apply the update.
	p := m.pending
	m.hasPending = false
	nextLegal := m.legal[fb.Next.Phase]

	switch {
	case m.cfg.Fuzzy:
		nStates, nWeights := m.encodeFuzzy(fb.Next.Phase, fb.Next.Queue, fb.Next.IdleSlots)
		// Blended bootstrap: Σ w'_i max_a Q(s'_i, a).
		boot := 0.0
		for i, s2 := range nStates {
			boot += nWeights[i] * m.agent.MaxQ(s2, nextLegal)
		}
		g := math.Pow(m.cfg.Gamma, float64(p.elapsed))
		target := p.reward + g*boot
		cur := m.blendedQ(p.states, p.weights, int(p.action))
		delta := target - cur
		for i, s := range p.states {
			// Per-component learning rate from its own visit counter.
			m.agent.SetQ(s, int(p.action),
				m.agent.Q(s, int(p.action))+m.fuzzyAlpha(s, int(p.action))*p.weights[i]*delta)
		}
	case m.cfg.Rule == qlearn.SARSA:
		m.sarsaReady = completedExp{pendingExp: p,
			nextState: m.encode(fb.Next.Phase, fb.Next.Queue, fb.Next.IdleSlots)}
		m.hasSarsa = true
	default:
		next := m.encode(fb.Next.Phase, fb.Next.Queue, fb.Next.IdleSlots)
		m.agent.Update(p.state, int(p.action), p.reward, next, nextLegal, p.elapsed, m.cfg.Stream)
	}
}

// fuzzyVisits tracks per-pair visit counts for the fuzzy path.
func (m *Manager) fuzzyAlpha(s, act int) float64 {
	// The agent's visit counters are only advanced by Update; fuzzy
	// updates bypass it, so track approximate visits via Updates().
	return m.cfg.Alpha.Alpha(m.agent.Updates()/4 + 1)
}

// GreedyTarget returns the current greedy command for an observation
// without exploration or learning; used to snapshot the learned policy.
func (m *Manager) GreedyTarget(phase device.StateID, q int, idle int64) device.StateID {
	legal := m.legal[phase]
	s := m.encode(phase, q, idle)
	return device.StateID(m.agent.Greedy(s, legal))
}

// QosLambda returns the current Lagrangian multiplier (QoS mode).
func (m *Manager) QosLambda() float64 { return m.qosLambda }

// Decisions returns the number of Decide calls.
func (m *Manager) Decisions() int64 { return m.decisions }

// TableBytes returns the learner's resident table size in bytes.
func (m *Manager) TableBytes() int { return m.agent.Bytes() }

// NumStates returns the encoder's state-space size.
func (m *Manager) NumStates() int { return m.nDev * m.qLevels * m.iLevels }

// Agent exposes the underlying learner for diagnostics and tests.
func (m *Manager) Agent() *qlearn.Agent { return m.agent }
