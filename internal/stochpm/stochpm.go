// Package stochpm implements the model-based stochastic DPM baseline the
// Q-DPM paper argues against (Benini, Bogliolo, De Micheli et al.): the
// long-run average-cost policy-optimization problem is written as a linear
// program over state-action occupancy measures and solved with the simplex
// method, yielding a randomized stationary policy; an adaptive wrapper adds
// the online parameter estimator and the mode-switch controller (change
// detector + re-optimization) that tracking a nonstationary workload
// requires.
//
// The LP, for a unichain MDP with states s and actions a:
//
//	min  Σ x(s,a)·c(s,a)
//	s.t. Σ_a x(s',a) − Σ_{s,a} P(s'|s,a)·x(s,a) = 0   for every s'
//	     Σ x(s,a) = 1,  x ≥ 0
//
// and optionally  Σ x(s,a)·perf(s,a) ≤ D  to cap mean backlog, in which
// case the objective is pure energy. The optimal policy is randomized:
// π(a|s) = x(s,a)/Σ_a x(s,a) on states with positive occupancy.
package stochpm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/device"
	"repro/internal/estimator"
	"repro/internal/lp"
	"repro/internal/mdp"
	"repro/internal/rng"
	"repro/internal/slotsim"
)

// Constraint optionally bounds mean backlog in the LP.
type Constraint struct {
	// MaxMeanBacklog is the bound D on expected post-service backlog.
	MaxMeanBacklog float64
}

// Solution is an optimal randomized stationary policy plus diagnostics.
type Solution struct {
	// Probs[s][ai] is π(a|s); rows of zero-occupancy states are nil.
	Probs [][]float64
	// Gain is the optimal long-run average objective (cost, or energy if
	// constrained).
	Gain float64
	// MeanBacklog is the expected backlog under the policy.
	MeanBacklog float64
	// MeanEnergy is the expected per-slot energy under the policy.
	MeanEnergy float64
	// Pivots counts simplex iterations.
	Pivots int
	// SolveTime is the wall-clock time the LP took.
	SolveTime time.Duration
}

// SolveLP formulates and solves the occupancy LP for a DPM model. A nil
// constraint minimizes the scalarized cost (energy + w·backlog); a non-nil
// constraint minimizes energy subject to the backlog bound.
func SolveLP(d *mdp.DPM, cons *Constraint) (*Solution, error) {
	if d == nil {
		return nil, fmt.Errorf("stochpm: nil model")
	}
	start := time.Now()
	// Variable layout: one x per (state, action index).
	offsets := make([]int, d.N+1)
	for s := 0; s < d.N; s++ {
		offsets[s+1] = offsets[s] + len(d.Actions[s])
	}
	nv := offsets[d.N]

	b, err := lp.NewBuilder(nv)
	if err != nil {
		return nil, err
	}
	obj := make([]float64, nv)
	for s := 0; s < d.N; s++ {
		for ai := range d.Actions[s] {
			if cons != nil {
				obj[offsets[s]+ai] = d.Energy[s][ai]
			} else {
				obj[offsets[s]+ai] = d.Costs[s][ai]
			}
		}
	}
	if err := b.SetObjective(obj); err != nil {
		return nil, err
	}

	// Balance constraints. The full set of balance rows sums to the zero
	// row (probabilities conserve mass), so one row is redundant; dropping
	// the last keeps the system full-rank, which spares the simplex a
	// permanently-basic artificial variable and a lot of degeneracy.
	for sp := 0; sp < d.N-1; sp++ {
		row := make([]float64, nv)
		for ai := range d.Actions[sp] {
			row[offsets[sp]+ai] += 1
		}
		for s := 0; s < d.N; s++ {
			for ai := range d.Actions[s] {
				for _, o := range d.Trans[s][ai] {
					if o.Next == sp {
						row[offsets[s]+ai] -= o.P
					}
				}
			}
		}
		if err := b.Add(row, lp.EQ, 0); err != nil {
			return nil, err
		}
	}
	// Normalization.
	ones := make([]float64, nv)
	for i := range ones {
		ones[i] = 1
	}
	if err := b.Add(ones, lp.EQ, 1); err != nil {
		return nil, err
	}
	// Optional performance constraint.
	if cons != nil {
		if !(cons.MaxMeanBacklog >= 0) {
			return nil, fmt.Errorf("stochpm: backlog bound %v must be >= 0", cons.MaxMeanBacklog)
		}
		row := make([]float64, nv)
		for s := 0; s < d.N; s++ {
			for ai := range d.Actions[s] {
				row[offsets[s]+ai] = d.Perf[s][ai]
			}
		}
		if err := b.Add(row, lp.LE, cons.MaxMeanBacklog); err != nil {
			return nil, err
		}
	}

	sol, err := b.Solve()
	if err != nil {
		return nil, fmt.Errorf("stochpm: occupancy LP: %w", err)
	}
	return solutionFromOccupancy(d, sol, start)
}

// solutionFromOccupancy converts an LP point into policy probabilities and
// summary expectations.
func solutionFromOccupancy(d *mdp.DPM, sol *lp.Solution, start time.Time) (*Solution, error) {
	offsets := make([]int, d.N+1)
	for s := 0; s < d.N; s++ {
		offsets[s+1] = offsets[s] + len(d.Actions[s])
	}

	out := &Solution{
		Probs:     make([][]float64, d.N),
		Gain:      sol.Objective,
		Pivots:    sol.Iterations,
		SolveTime: time.Since(start),
	}
	for s := 0; s < d.N; s++ {
		total := 0.0
		for ai := range d.Actions[s] {
			total += sol.X[offsets[s]+ai]
		}
		if total < 1e-12 {
			continue // transient under the optimal policy
		}
		probs := make([]float64, len(d.Actions[s]))
		for ai := range d.Actions[s] {
			probs[ai] = sol.X[offsets[s]+ai] / total
		}
		out.Probs[s] = probs
		for ai := range d.Actions[s] {
			x := sol.X[offsets[s]+ai]
			out.MeanBacklog += x * d.Perf[s][ai]
			out.MeanEnergy += x * d.Energy[s][ai]
		}
	}
	return out, nil
}

// SolutionFromMDPPolicy wraps a deterministic MDP policy in a Solution
// with one-hot action probabilities, evaluating its gain, energy, and
// backlog by power iteration. The adaptive controller uses it as a
// fallback when the occupancy LP hits a numerically degenerate instance
// (rare corner rates; see internal/lp for the tolerance discussion).
func SolutionFromMDPPolicy(d *mdp.DPM, pol mdp.Policy) (*Solution, error) {
	start := time.Now()
	if d == nil || len(pol) != d.N {
		return nil, fmt.Errorf("stochpm: policy/model mismatch")
	}
	out := &Solution{Probs: make([][]float64, d.N)}
	for s := 0; s < d.N; s++ {
		probs := make([]float64, len(d.Actions[s]))
		if pol[s] < 0 || pol[s] >= len(probs) {
			return nil, fmt.Errorf("stochpm: action %d out of range in state %d", pol[s], s)
		}
		probs[pol[s]] = 1
		out.Probs[s] = probs
	}
	const iters = 20000
	gain, err := d.EvaluateAverage(pol, iters)
	if err != nil {
		return nil, err
	}
	energy, err := d.EvaluateAverageOf(pol, d.Energy, iters)
	if err != nil {
		return nil, err
	}
	backlog, err := d.EvaluateAverageOf(pol, d.Perf, iters)
	if err != nil {
		return nil, err
	}
	out.Gain = gain
	out.MeanEnergy = energy
	out.MeanBacklog = backlog
	out.SolveTime = time.Since(start)
	return out, nil
}

// ---------------------------------------------------------------------------
// Randomized policy adapter

// LPPolicy adapts an LP solution to the simulator's Policy interface. On
// states the LP left unvisited (zero occupancy) it falls back to "wake if
// there is backlog, else stay" — such states are transient under the
// optimal policy and only appear during adaptation.
type LPPolicy struct {
	d      *mdp.DPM
	sol    *Solution
	stream *rng.Stream
	wake   device.StateID
	label  string
}

var _ slotsim.Policy = (*LPPolicy)(nil)

// NewLPPolicy builds the adapter. The stream drives action randomization.
func NewLPPolicy(d *mdp.DPM, sol *Solution, stream *rng.Stream) (*LPPolicy, error) {
	if d == nil || sol == nil || stream == nil {
		return nil, fmt.Errorf("stochpm: LPPolicy needs model, solution, and stream")
	}
	wake := device.StateID(0)
	for i, st := range d.Cfg.Device.PSM.States {
		if st.CanService {
			wake = device.StateID(i)
			break
		}
	}
	return &LPPolicy{d: d, sol: sol, stream: stream, wake: wake, label: "stoch-lp"}, nil
}

// Name identifies the policy.
func (p *LPPolicy) Name() string { return p.label }

// Decide samples from π(·|s).
func (p *LPPolicy) Decide(obs slotsim.Observation) device.StateID {
	q := obs.Queue
	if q > p.d.Cfg.QueueCap {
		q = p.d.Cfg.QueueCap
	}
	s, err := p.d.SettledState(obs.Phase, q)
	if err != nil {
		return obs.Phase
	}
	probs := p.sol.Probs[s]
	if probs == nil {
		if obs.Queue > 0 {
			return p.wake
		}
		return obs.Phase
	}
	u := p.stream.Float64()
	acc := 0.0
	choice := len(probs) - 1
	for ai, pr := range probs {
		acc += pr
		if u < acc {
			choice = ai
			break
		}
	}
	lbl := p.d.Actions[s][choice]
	if lbl < 0 {
		return obs.Phase
	}
	return device.StateID(lbl)
}

// ---------------------------------------------------------------------------
// Adaptive model-based pipeline

// AdaptiveConfig assembles the full model-based adaptive power manager:
// estimator → change detector → re-optimization, the pipeline whose
// overhead Q-DPM eliminates.
type AdaptiveConfig struct {
	// Device is the slotted PSM.
	Device *device.Slotted
	// QueueCap bounds the modelled queue.
	QueueCap int
	// LatencyWeight scalarizes backlog into the objective.
	LatencyWeight float64
	// InitialRate seeds the first model before any observation.
	InitialRate float64
	// Window is the sliding estimation window in slots (default 512).
	Window int
	// CUSUMSlack and CUSUMThreshold tune the mode-switch detector
	// (defaults 0.05 and 6).
	CUSUMSlack, CUSUMThreshold float64
	// OptimizeLatencySlots models the wall-clock the re-optimization
	// takes on the managed node: after a change fires, the old policy
	// stays in force for this many slots (default 0 = free).
	OptimizeLatencySlots int
	// Stream drives the randomized policy.
	Stream *rng.Stream
}

// Adaptive is the model-based adaptive power manager. It implements
// slotsim.Learner: Observe feeds the estimator and the detector.
type Adaptive struct {
	cfg AdaptiveConfig

	est    *estimator.WindowRate
	det    *estimator.CUSUM
	cur    *LPPolicy
	pendAt int64 // slot at which the pending re-solve completes (-1 none)
	slot   int64

	// Stats
	Resolves    int64
	LPFallbacks int64
	AlarmCount  int64
	SolveTime   time.Duration
}

var _ slotsim.Learner = (*Adaptive)(nil)

// NewAdaptive validates the configuration, solves the initial model, and
// returns the controller.
func NewAdaptive(cfg AdaptiveConfig) (*Adaptive, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("stochpm: adaptive needs a device")
	}
	if cfg.Stream == nil {
		return nil, fmt.Errorf("stochpm: adaptive needs a stream")
	}
	if cfg.InitialRate < 0 || cfg.InitialRate > 1 || math.IsNaN(cfg.InitialRate) {
		return nil, fmt.Errorf("stochpm: initial rate %v out of [0,1]", cfg.InitialRate)
	}
	if cfg.Window == 0 {
		cfg.Window = 512
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("stochpm: negative window %d", cfg.Window)
	}
	if cfg.CUSUMSlack == 0 {
		cfg.CUSUMSlack = 0.05
	}
	if cfg.CUSUMThreshold == 0 {
		cfg.CUSUMThreshold = 6
	}
	if cfg.OptimizeLatencySlots < 0 {
		return nil, fmt.Errorf("stochpm: negative optimize latency %d", cfg.OptimizeLatencySlots)
	}
	a := &Adaptive{cfg: cfg, pendAt: -1}
	var err error
	a.est, err = estimator.NewWindowRate(cfg.Window)
	if err != nil {
		return nil, err
	}
	a.det, err = estimator.NewCUSUM(cfg.InitialRate, cfg.CUSUMSlack, cfg.CUSUMThreshold)
	if err != nil {
		return nil, err
	}
	if err := a.resolve(cfg.InitialRate); err != nil {
		return nil, err
	}
	return a, nil
}

// resolve rebuilds the model at rate p and re-solves the LP.
func (a *Adaptive) resolve(p float64) error {
	// Clamp to a realistic band: the chain must stay unichain and the
	// occupancy LP well-conditioned at both endpoints.
	if p < 0.005 {
		p = 0.005
	}
	if p > 0.98 {
		p = 0.98
	}
	d, err := mdp.BuildDPM(mdp.DPMConfig{
		Device:        a.cfg.Device,
		ArrivalP:      p,
		QueueCap:      a.cfg.QueueCap,
		LatencyWeight: a.cfg.LatencyWeight,
	})
	if err != nil {
		return err
	}
	sol, err := SolveLP(d, nil)
	if err != nil {
		// Numerically cursed instance: fall back to relative value
		// iteration, which solves the same average-cost problem.
		res, rerr := d.AverageCostRVI(1e-7, 400000)
		if rerr != nil {
			return fmt.Errorf("stochpm: LP failed (%v) and RVI fallback failed: %w", err, rerr)
		}
		sol, rerr = SolutionFromMDPPolicy(d, res.Policy)
		if rerr != nil {
			return rerr
		}
		a.LPFallbacks++
	}
	pol, err := NewLPPolicy(d, sol, a.cfg.Stream)
	if err != nil {
		return err
	}
	a.cur = pol
	a.Resolves++
	a.SolveTime += sol.SolveTime
	return nil
}

// Name identifies the controller.
func (a *Adaptive) Name() string { return "adaptive-lp" }

// Decide delegates to the current LP policy.
func (a *Adaptive) Decide(obs slotsim.Observation) device.StateID {
	return a.cur.Decide(obs)
}

// Observe feeds the estimator and detector; on an alarm it schedules a
// re-solve that lands OptimizeLatencySlots later (modelling optimization
// wall-clock on the managed node).
func (a *Adaptive) Observe(fb *slotsim.Feedback) {
	a.slot = fb.Next.Slot
	a.est.Add(fb.Arrived)
	if a.det.Add(fb.Arrived) {
		a.AlarmCount++
		if a.pendAt < 0 {
			a.pendAt = a.slot + int64(a.cfg.OptimizeLatencySlots)
		}
	}
	if a.pendAt >= 0 && a.slot >= a.pendAt {
		rate := a.est.Rate()
		if err := a.resolve(rate); err == nil {
			a.det.Reset(rate)
		}
		a.pendAt = -1
	}
}
