package stochpm

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mdp"
)

// Edge cases surfaced while deriving the analytic oracles: the solver
// outputs below are inputs to the optimal-cost bound (internal/analytic),
// so they are pinned here at the limits where the answer is knowable by
// inspection.

// With zero arrivals the queue never fills, backlog cost vanishes, and
// the optimal chain parks in the cheapest settled state: the gain is
// exactly that state's per-slot energy (transition costs amortize to
// zero in the long-run average). For synthetic3 at 0.5 s slots that is
// the 0.1 W sleep state: 0.05 J/slot.
func TestSolveLPZeroArrivalRate(t *testing.T) {
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: 0, QueueCap: 6, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	minEnergy := dev.StateEnergy[0]
	for _, e := range dev.StateEnergy {
		if e < minEnergy {
			minEnergy = e
		}
	}
	sol, err := SolveLP(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Gain-minEnergy) > 1e-9 {
		t.Errorf("zero-arrival gain %v, want cheapest settled state %v", sol.Gain, minEnergy)
	}
	if sol.MeanBacklog > 1e-9 {
		t.Errorf("zero-arrival mean backlog %v, want 0", sol.MeanBacklog)
	}
	// RVI must agree at the same limit.
	res, err := d.AverageCostRVI(1e-9, 500000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gain-minEnergy) > 1e-6 {
		t.Errorf("zero-arrival RVI gain %v, want %v", res.Gain, minEnergy)
	}
}

// A single-state PSM cannot reach the solvers: the device layer rejects
// it at construction, so BuildDPM can never be handed one. Pinning the
// rejection keeps the oracle pipeline's precondition honest.
func TestSingleStatePSMRejected(t *testing.T) {
	_, err := device.New("degenerate",
		[]device.PowerState{{Name: "only", Power: 1, CanService: true}},
		[][]device.Transition{{{}}},
		0.5)
	if err == nil {
		t.Fatal("device.New accepted a single-state PSM")
	}
}

// A two-state PSM whose sleep state saves nothing (equal power, free
// transitions) is the degenerate floor of the model family: power
// management cannot help, and the optimal gain must equal the settled
// per-slot energy exactly, with zero backlog (sleeping only adds wait).
func TestNoSavingsPSMGainEqualsAlwaysOn(t *testing.T) {
	psm, err := device.New("no-savings",
		[]device.PowerState{
			{Name: "active", Power: 2, CanService: true},
			{Name: "sleep", Power: 2},
		},
		[][]device.Transition{
			{{}, {Latency: 0, Energy: 0}},
			{{Latency: 0, Energy: 0}, {}},
		},
		0.5)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := psm.Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: 0.3, QueueCap: 6, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveLP(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := dev.StateEnergy[0] // both states cost the same per slot
	if math.Abs(sol.Gain-want) > 1e-9 {
		t.Errorf("no-savings gain %v, want always-on energy %v", sol.Gain, want)
	}
	if sol.MeanBacklog > 1e-9 {
		t.Errorf("no-savings mean backlog %v, want 0", sol.MeanBacklog)
	}
}

// Every nonnegative backlog bound is feasible for a valid device:
// ServePerSlot >= 1 and at most one Bernoulli arrival per slot mean the
// always-on policy holds post-service backlog at exactly zero, so the
// constrained LP can always fall back to it. The analytic harness's
// bound rung relies on this (a constraint can tighten the optimum but
// never empty the feasible set). Binding the bound to zero must
// therefore solve — at the always-on energy, not fail infeasible.
func TestZeroBacklogBoundFeasible(t *testing.T) {
	d := buildDPM(t, 0.3)
	sol, err := SolveLP(d, &Constraint{MaxMeanBacklog: 0})
	if err != nil {
		t.Fatalf("zero backlog bound reported infeasible: %v", err)
	}
	if sol.MeanBacklog > 1e-9 {
		t.Errorf("bound-zero solution backlog %v, want 0", sol.MeanBacklog)
	}
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.MeanEnergy-dev.StateEnergy[0]) > 1e-6 {
		t.Errorf("bound-zero energy %v, want always-on %v", sol.MeanEnergy, dev.StateEnergy[0])
	}
}
