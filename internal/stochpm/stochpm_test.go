package stochpm

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

func buildDPM(t *testing.T, p float64) *mdp.DPM {
	t.Helper()
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: p, QueueCap: 6, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLPMatchesRVIGain(t *testing.T) {
	// The occupancy LP and relative value iteration solve the same
	// average-cost problem; their optimal gains must agree.
	for _, p := range []float64{0.05, 0.15, 0.35} {
		d := buildDPM(t, p)
		lpSol, err := SolveLP(d, nil)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		rvi, err := d.AverageCostRVI(1e-9, 300000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lpSol.Gain-rvi.Gain) > 1e-5 {
			t.Errorf("p=%v: LP gain %v != RVI gain %v", p, lpSol.Gain, rvi.Gain)
		}
	}
}

func TestLPProbsAreDistributions(t *testing.T) {
	d := buildDPM(t, 0.2)
	sol, err := SolveLP(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for s, probs := range sol.Probs {
		if probs == nil {
			continue
		}
		seen++
		sum := 0.0
		for ai, pr := range probs {
			if pr < -1e-9 || pr > 1+1e-9 {
				t.Fatalf("state %d action %d prob %v", s, ai, pr)
			}
			sum += pr
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("state %d probs sum to %v", s, sum)
		}
	}
	if seen == 0 {
		t.Fatal("LP left every state unvisited")
	}
}

func TestConstrainedLPRespectsBound(t *testing.T) {
	d := buildDPM(t, 0.2)
	// Unconstrained energy-optimal would sleep forever; bound backlog.
	sol, err := SolveLP(d, &Constraint{MaxMeanBacklog: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MeanBacklog > 0.5+1e-6 {
		t.Errorf("mean backlog %v exceeds bound 0.5", sol.MeanBacklog)
	}
	// Tighter bound must not decrease energy.
	tight, err := SolveLP(d, &Constraint{MaxMeanBacklog: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.MeanEnergy < sol.MeanEnergy-1e-9 {
		t.Errorf("tighter bound lowered energy: %v < %v", tight.MeanEnergy, sol.MeanEnergy)
	}
	if tight.MeanBacklog > 0.1+1e-6 {
		t.Errorf("tight solution backlog %v exceeds 0.1", tight.MeanBacklog)
	}
}

func TestConstrainedLPRejectsNegativeBound(t *testing.T) {
	d := buildDPM(t, 0.2)
	if _, err := SolveLP(d, &Constraint{MaxMeanBacklog: -1}); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestSolveLPNilModel(t *testing.T) {
	if _, err := SolveLP(nil, nil); err == nil {
		t.Error("nil model accepted")
	}
}

func TestLPPolicySimulatedGainMatchesLP(t *testing.T) {
	// Integration: run the randomized LP policy in the simulator and
	// compare the measured average cost with the LP's predicted gain.
	p := 0.15
	d := buildDPM(t, p)
	sol, err := SolveLP(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewLPPolicy(d, sol, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := workload.NewBernoulli(p)
	sim, err := slotsim.New(slotsim.Config{
		Device:        d.Cfg.Device,
		Arrivals:      arr,
		QueueCap:      6,
		Policy:        pol,
		Stream:        rng.New(12),
		LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(400000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AvgCost(); math.Abs(got-sol.Gain) > 0.02*sol.Gain+0.005 {
		t.Errorf("simulated avg cost %v vs LP gain %v", got, sol.Gain)
	}
}

func TestLPPolicyFallbackWakesOnBacklog(t *testing.T) {
	d := buildDPM(t, 0.2)
	sol, err := SolveLP(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Blank out all rows to force the fallback path.
	for s := range sol.Probs {
		sol.Probs[s] = nil
	}
	pol, _ := NewLPPolicy(d, sol, rng.New(13))
	got := pol.Decide(slotsim.Observation{Phase: 2, Queue: 3})
	if got != 0 {
		t.Errorf("fallback with backlog chose %d, want wake (0)", got)
	}
	got = pol.Decide(slotsim.Observation{Phase: 2, Queue: 0})
	if got != 2 {
		t.Errorf("fallback without backlog chose %d, want stay (2)", got)
	}
}

func TestLPPolicyClampsOverfullQueue(t *testing.T) {
	d := buildDPM(t, 0.2)
	sol, err := SolveLP(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, _ := NewLPPolicy(d, sol, rng.New(14))
	// Queue beyond the modelled cap must not panic.
	_ = pol.Decide(slotsim.Observation{Phase: 0, Queue: 99})
}

func TestNewLPPolicyValidation(t *testing.T) {
	d := buildDPM(t, 0.2)
	sol, _ := SolveLP(d, nil)
	if _, err := NewLPPolicy(nil, sol, rng.New(1)); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewLPPolicy(d, nil, rng.New(1)); err == nil {
		t.Error("nil solution accepted")
	}
	if _, err := NewLPPolicy(d, sol, nil); err == nil {
		t.Error("nil stream accepted")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	dev, _ := device.Synthetic3().Slot(0.5)
	good := AdaptiveConfig{
		Device: dev, QueueCap: 6, LatencyWeight: 0.3,
		InitialRate: 0.1, Stream: rng.New(1),
	}
	if _, err := NewAdaptive(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(AdaptiveConfig) AdaptiveConfig{
		func(c AdaptiveConfig) AdaptiveConfig { c.Device = nil; return c },
		func(c AdaptiveConfig) AdaptiveConfig { c.Stream = nil; return c },
		func(c AdaptiveConfig) AdaptiveConfig { c.InitialRate = -1; return c },
		func(c AdaptiveConfig) AdaptiveConfig { c.InitialRate = 2; return c },
		func(c AdaptiveConfig) AdaptiveConfig { c.Window = -1; return c },
		func(c AdaptiveConfig) AdaptiveConfig { c.OptimizeLatencySlots = -1; return c },
	}
	for i, mut := range bad {
		if _, err := NewAdaptive(mut(good)); err == nil {
			t.Errorf("bad adaptive config %d accepted", i)
		}
	}
	// QueueCap 0 is invalid for the model; surfaced from BuildDPM.
	c := good
	c.QueueCap = 0
	if _, err := NewAdaptive(c); err == nil {
		t.Error("queue cap 0 accepted")
	}
}

func TestAdaptiveResolvesOnShift(t *testing.T) {
	dev, _ := device.Synthetic3().Slot(0.5)
	a, err := NewAdaptive(AdaptiveConfig{
		Device: dev, QueueCap: 6, LatencyWeight: 0.3,
		InitialRate: 0.05, Window: 256, Stream: rng.New(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	seg1, _ := workload.NewBernoulli(0.05)
	seg2, _ := workload.NewBernoulli(0.5)
	pw, _ := workload.NewPiecewise([]workload.Segment{
		{Slots: 5000, Proc: seg1},
		{Slots: 5000, Proc: seg2},
	})
	sim, err := slotsim.New(slotsim.Config{
		Device: dev, Arrivals: pw, QueueCap: 6,
		Policy: a, Stream: rng.New(22), LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(10000, nil); err != nil {
		t.Fatal(err)
	}
	if a.Resolves < 2 {
		t.Errorf("adaptive never re-solved after the λ shift (resolves=%d)", a.Resolves)
	}
	if a.AlarmCount < 1 {
		t.Errorf("detector never fired (alarms=%d)", a.AlarmCount)
	}
}

func TestAdaptiveOptimizeLatencyDelaysResolve(t *testing.T) {
	dev, _ := device.Synthetic3().Slot(0.5)
	mk := func(latency int, seed uint64) int64 {
		a, err := NewAdaptive(AdaptiveConfig{
			Device: dev, QueueCap: 6, LatencyWeight: 0.3,
			InitialRate: 0.05, Window: 256,
			OptimizeLatencySlots: latency, Stream: rng.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		seg1, _ := workload.NewBernoulli(0.05)
		seg2, _ := workload.NewBernoulli(0.5)
		pw, _ := workload.NewPiecewise([]workload.Segment{
			{Slots: 2000, Proc: seg1},
			{Slots: 3000, Proc: seg2},
		})
		sim, err := slotsim.New(slotsim.Config{
			Device: dev, Arrivals: pw, QueueCap: 6,
			Policy: a, Stream: rng.New(seed + 100), LatencyWeight: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.Run(5000, nil)
		return a.Resolves
	}
	// Sanity: both configurations still resolve (latency only delays).
	if mk(0, 31) < 2 || mk(500, 31) < 2 {
		t.Error("adaptive with optimize latency failed to re-solve")
	}
}

func BenchmarkSolveLP(b *testing.B) {
	dev, _ := device.Synthetic3().Slot(0.5)
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: 0.15, QueueCap: 6, LatencyWeight: 0.3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLP(d, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLPSweepWithFallbackContract sweeps the adaptive controller's whole
// clamp band. The contract: the occupancy LP must solve the overwhelming
// majority of instances directly (matching RVI's gain), and every residual
// numerically-degenerate instance must be covered by the RVI fallback.
func TestLPSweepWithFallbackContract(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	dev, _ := device.Synthetic3().Slot(0.5)
	lpFails := 0
	total := 0
	for p := 0.005; p <= 0.985; p += 0.02 {
		total++
		d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: p, QueueCap: 6, LatencyWeight: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		rvi, err := d.AverageCostRVI(1e-8, 400000)
		if err != nil {
			t.Fatalf("p=%v: RVI failed: %v", p, err)
		}
		sol, err := SolveLP(d, nil)
		if err != nil {
			lpFails++
			// The fallback must always work.
			fb, ferr := SolutionFromMDPPolicy(d, rvi.Policy)
			if ferr != nil {
				t.Fatalf("p=%v: LP failed (%v) and fallback failed (%v)", p, err, ferr)
			}
			if math.Abs(fb.Gain-rvi.Gain) > 1e-3 {
				t.Errorf("p=%v: fallback gain %v != RVI %v", p, fb.Gain, rvi.Gain)
			}
			continue
		}
		if math.Abs(sol.Gain-rvi.Gain) > 1e-4 {
			t.Errorf("p=%v: LP gain %v != RVI gain %v", p, sol.Gain, rvi.Gain)
		}
	}
	if lpFails*10 > total {
		t.Errorf("LP failed on %d/%d instances; degenerate-instance handling regressed", lpFails, total)
	}
}

func TestSolutionFromMDPPolicy(t *testing.T) {
	d := buildDPM(t, 0.15)
	rvi, err := d.AverageCostRVI(1e-8, 300000)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolutionFromMDPPolicy(d, rvi.Policy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Gain-rvi.Gain) > 1e-3 {
		t.Errorf("fallback gain %v != RVI %v", sol.Gain, rvi.Gain)
	}
	// Decomposition: gain = energy + w*backlog.
	want := sol.MeanEnergy + 0.3*sol.MeanBacklog
	if math.Abs(sol.Gain-want) > 1e-6 {
		t.Errorf("gain %v != energy %v + w*backlog %v", sol.Gain, sol.MeanEnergy, want)
	}
	// One-hot rows everywhere.
	for s, probs := range sol.Probs {
		ones := 0
		for _, pr := range probs {
			if pr == 1 {
				ones++
			}
		}
		if ones != 1 {
			t.Fatalf("state %d probs %v not one-hot", s, probs)
		}
	}
	if _, err := SolutionFromMDPPolicy(nil, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := SolutionFromMDPPolicy(d, mdp.Policy{0}); err == nil {
		t.Error("short policy accepted")
	}
}
