package shared

import (
	"testing"

	"repro/internal/ctsim"
)

// fakeClient records the grant times it receives.
type fakeClient struct {
	id     int
	grants []float64
}

func (f *fakeClient) ResourceGranted(now float64) { f.grants = append(f.grants, now) }

func clients(n int) []*fakeClient {
	cs := make([]*fakeClient, n)
	for i := range cs {
		cs[i] = &fakeClient{id: i}
	}
	return cs
}

func TestChannelGrantsFIFO(t *testing.T) {
	ch := NewChannel()
	cs := clients(4)
	if got := ch.RequestService(0, cs[0]); got != ctsim.Grant {
		t.Fatalf("first request: got %v, want Grant", got)
	}
	for _, c := range cs[1:] {
		if got := ch.RequestService(1, c); got != ctsim.Wait {
			t.Fatalf("busy request: got %v, want Wait", got)
		}
	}
	// Releases must hand the channel to waiters in request order.
	for i := 1; i < 4; i++ {
		ch.ReleaseService(float64(i+1), cs[i-1])
		if len(cs[i].grants) != 1 || cs[i].grants[0] != float64(i+1) {
			t.Fatalf("waiter %d grants = %v, want [%d]", i, cs[i].grants, i+1)
		}
		for _, later := range cs[i+1:] {
			if len(later.grants) != 0 {
				t.Fatalf("waiter %d granted out of order", later.id)
			}
		}
	}
	ch.ReleaseService(9, cs[3])
	if got := ch.RequestService(10, cs[0]); got != ctsim.Grant {
		t.Fatalf("post-drain request: got %v, want Grant", got)
	}
}

func TestChannelCancelPreservesOrder(t *testing.T) {
	ch := NewChannel()
	cs := clients(4)
	ch.RequestService(0, cs[0])
	for _, c := range cs[1:] {
		ch.RequestService(0, c)
	}
	ch.CancelWait(1, cs[2])
	ch.ReleaseService(2, cs[0])
	ch.ReleaseService(3, cs[1])
	if len(cs[1].grants) != 1 || len(cs[3].grants) != 1 {
		t.Fatalf("grants after cancel: c1=%v c3=%v, want one each", cs[1].grants, cs[3].grants)
	}
	if len(cs[2].grants) != 0 {
		t.Fatalf("canceled waiter was granted: %v", cs[2].grants)
	}
}

func TestChannelCancelUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CancelWait for a non-waiter did not panic")
		}
	}()
	NewChannel().CancelWait(0, &fakeClient{})
}

func TestChannelResetIsFresh(t *testing.T) {
	ch := NewChannel()
	cs := clients(3)
	ch.RequestService(0, cs[0])
	ch.RequestService(0, cs[1])
	ch.RequestService(0, cs[2])
	ch.Reset()
	if got := ch.RequestService(1, cs[2]); got != ctsim.Grant {
		t.Fatalf("post-reset request: got %v, want Grant", got)
	}
	ch.ReleaseService(2, cs[2])
	if len(cs[0].grants)+len(cs[1].grants) != 0 {
		t.Fatal("reset did not clear the wait queue")
	}
}

func TestGatewayGrantWaitDrop(t *testing.T) {
	gw := NewGateway(2, 2)
	cs := clients(6)
	for i := 0; i < 2; i++ {
		if got := gw.RequestService(0, cs[i]); got != ctsim.Grant {
			t.Fatalf("server slot %d: got %v, want Grant", i, got)
		}
	}
	for i := 2; i < 4; i++ {
		if got := gw.RequestService(0, cs[i]); got != ctsim.Wait {
			t.Fatalf("wait slot %d: got %v, want Wait", i, got)
		}
	}
	for i := 4; i < 6; i++ {
		if got := gw.RequestService(0, cs[i]); got != ctsim.Drop {
			t.Fatalf("overflow %d: got %v, want Drop", i, got)
		}
	}
	gw.ReleaseService(1, cs[0])
	if len(cs[2].grants) != 1 {
		t.Fatalf("head waiter not granted on release: %v", cs[2].grants)
	}
	// A freed slot went to the waiter, so a new request still waits.
	if got := gw.RequestService(2, cs[4]); got != ctsim.Wait {
		t.Fatalf("request after handoff: got %v, want Wait", got)
	}
}

func TestGatewayZeroWaitCapDropsImmediately(t *testing.T) {
	gw := NewGateway(1, 0)
	cs := clients(2)
	gw.RequestService(0, cs[0])
	if got := gw.RequestService(0, cs[1]); got != ctsim.Drop {
		t.Fatalf("waitCap=0 overflow: got %v, want Drop", got)
	}
}

func TestGatewayResetIsFresh(t *testing.T) {
	gw := NewGateway(1, 1)
	cs := clients(3)
	gw.RequestService(0, cs[0])
	gw.RequestService(0, cs[1])
	gw.Reset()
	if got := gw.RequestService(1, cs[2]); got != ctsim.Grant {
		t.Fatalf("post-reset request: got %v, want Grant", got)
	}
	gw.ReleaseService(2, cs[2])
	if len(cs[1].grants) != 0 {
		t.Fatal("reset did not clear the wait queue")
	}
}

func TestPowerBudgetVetoesOverrun(t *testing.T) {
	p := NewPowerBudget(5)
	p.Register(2)
	p.Register(1)
	if p.UsedW() != 3 {
		t.Fatalf("UsedW = %v, want 3", p.UsedW())
	}
	if !p.AllowTransition(0, nil, 2) {
		t.Fatal("transition to exactly the cap was vetoed")
	}
	if p.AllowTransition(1, nil, 0.5) {
		t.Fatal("overrun was admitted")
	}
	if p.UsedW() != 5 {
		t.Fatalf("vetoed transition changed UsedW: %v", p.UsedW())
	}
	// Downward transitions always pass and return headroom.
	if !p.AllowTransition(2, nil, -3) {
		t.Fatal("downward transition was vetoed")
	}
	if !p.AllowTransition(3, nil, 2.5) {
		t.Fatal("transition within restored headroom was vetoed")
	}
}

func TestPowerBudgetServiceHooksAreTransparent(t *testing.T) {
	p := NewPowerBudget(1)
	c := &fakeClient{}
	if got := p.RequestService(0, c); got != ctsim.Grant {
		t.Fatalf("RequestService: got %v, want Grant", got)
	}
	p.ReleaseService(1, c)
	if len(c.grants) != 0 {
		t.Fatal("budget granted a deferred service")
	}
}

func TestPowerBudgetResetReconfigures(t *testing.T) {
	p := NewPowerBudget(5)
	p.Register(4)
	p.Reset(2)
	if p.CapW() != 2 || p.UsedW() != 0 {
		t.Fatalf("after Reset(2): cap=%v used=%v", p.CapW(), p.UsedW())
	}
}

func TestFIFOReuseDoesNotGrow(t *testing.T) {
	ch := NewChannel()
	cs := clients(8)
	warm := func() {
		ch.RequestService(0, cs[0])
		for _, c := range cs[1:] {
			ch.RequestService(0, c)
		}
		for _, c := range cs {
			ch.ReleaseService(1, c)
			c.grants = c.grants[:0]
		}
		ch.Reset()
	}
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("steady-state channel cycle allocates %.1f/op, want 0", allocs)
	}
}
