package shared

import (
	"testing"

	"repro/internal/ctsim"
)

// Outage edge cases for the shared resources: zero-duration windows
// (down and up toggles at the same instant), toggles racing a pending
// grant (a release landing inside a window, and a window opening with
// waiters already parked), and the brownout fraction's boundary values
// 0 and 1. Every scenario is a plain synchronous call sequence — the
// resources own no clock — so the expected outcomes are exact, which
// is what pins the coupled fleets' bit-identical -parallel contract at
// this layer.

// TestChannelOutageParksIdleRequests: during a jam the medium parks
// new requests FIFO even while idle, a release inside the window
// grants nobody, and the window's end drains exactly one waiter into
// the idle medium (single occupancy) with later waiters granted by
// subsequent releases in request order.
func TestChannelOutageParksIdleRequests(t *testing.T) {
	ch := NewChannel()
	cs := clients(3)
	ch.RequestService(0, cs[0])
	ch.SetDown(true, 1)
	// The holder finishes mid-window: idle, but nobody is granted.
	ch.ReleaseService(2, cs[0])
	// New requests park despite the idle medium.
	for _, c := range cs[1:] {
		if got := ch.RequestService(3, c); got != ctsim.Wait {
			t.Fatalf("request during jam: got %v, want Wait", got)
		}
	}
	if len(cs[1].grants)+len(cs[2].grants) != 0 {
		t.Fatal("jammed channel granted a waiter")
	}
	ch.SetDown(false, 4)
	if len(cs[1].grants) != 1 || cs[1].grants[0] != 4 {
		t.Fatalf("head waiter not granted at window end: %v", cs[1].grants)
	}
	if len(cs[2].grants) != 0 {
		t.Fatal("single-occupancy channel granted two waiters at once")
	}
	ch.ReleaseService(5, cs[1])
	if len(cs[2].grants) != 1 || cs[2].grants[0] != 5 {
		t.Fatalf("second waiter not granted on release: %v", cs[2].grants)
	}
}

// TestChannelZeroDurationOutage: a window whose down and up toggles
// land at the same instant. With the medium busy it is a no-op; with
// waiters parked and the medium idle, the up toggle grants the head
// waiter at the window's (single) instant.
func TestChannelZeroDurationOutage(t *testing.T) {
	ch := NewChannel()
	cs := clients(2)
	ch.RequestService(0, cs[0])
	ch.SetDown(true, 1)
	ch.SetDown(false, 1)
	if len(cs[0].grants) != 0 {
		t.Fatal("zero-duration window disturbed the busy holder")
	}
	if got := ch.RequestService(2, cs[1]); got != ctsim.Wait {
		t.Fatalf("post-blink busy request: got %v, want Wait", got)
	}

	// Idle medium with a parked waiter: the blink's up edge grants.
	ch2 := NewChannel()
	ch2.SetDown(true, 0)
	ch2.RequestService(0, cs[1])
	cs[1].grants = nil
	ch2.SetDown(false, 0)
	if len(cs[1].grants) != 1 || cs[1].grants[0] != 0 {
		t.Fatalf("blink's up edge did not grant the parked waiter: %v", cs[1].grants)
	}
}

// TestChannelToggleRacesPendingGrant: a release and a down toggle at
// the same simulation instant are ordered by the kernel's (time, seq)
// tie-break, and each order has its own exact outcome — release first
// hands the medium to the head waiter before the jam, toggle first
// strands the release inside the window and the waiter parks until the
// window ends. Both are deterministic; neither loses the waiter.
func TestChannelToggleRacesPendingGrant(t *testing.T) {
	// Release processed before the down toggle.
	ch := NewChannel()
	cs := clients(2)
	ch.RequestService(0, cs[0])
	ch.RequestService(0, cs[1])
	ch.ReleaseService(5, cs[0])
	ch.SetDown(true, 5)
	if len(cs[1].grants) != 1 || cs[1].grants[0] != 5 {
		t.Fatalf("release-first order lost the grant: %v", cs[1].grants)
	}

	// Down toggle processed before the release.
	ch2 := NewChannel()
	ds := clients(2)
	ch2.RequestService(0, ds[0])
	ch2.RequestService(0, ds[1])
	ch2.SetDown(true, 5)
	ch2.ReleaseService(5, ds[0])
	if len(ds[1].grants) != 0 {
		t.Fatalf("toggle-first order granted inside the window: %v", ds[1].grants)
	}
	ch2.SetDown(false, 7)
	if len(ds[1].grants) != 1 || ds[1].grants[0] != 7 {
		t.Fatalf("waiter stranded after the window: %v", ds[1].grants)
	}
}

// TestGatewayOutageRejectsAndResumes: a down gateway rejects every
// request with DropOutage (even with free servers and wait room),
// releases inside the window free servers without granting, and the
// window's end drains parked waiters FIFO into every server that freed
// during it — multiple grants at one instant.
func TestGatewayOutageRejectsAndResumes(t *testing.T) {
	gw := NewGateway(2, 4)
	cs := clients(6)
	gw.RequestService(0, cs[0])
	gw.RequestService(0, cs[1])
	gw.RequestService(0, cs[2]) // Wait
	gw.RequestService(0, cs[3]) // Wait
	gw.SetDown(true, 1)
	if got := gw.RequestService(2, cs[4]); got != ctsim.DropOutage {
		t.Fatalf("request during outage: got %v, want DropOutage", got)
	}
	gw.ReleaseService(3, cs[0])
	gw.ReleaseService(3, cs[1])
	if len(cs[2].grants)+len(cs[3].grants) != 0 {
		t.Fatal("down gateway granted a waiter on release")
	}
	gw.SetDown(false, 4)
	if len(cs[2].grants) != 1 || cs[2].grants[0] != 4 ||
		len(cs[3].grants) != 1 || cs[3].grants[0] != 4 {
		t.Fatalf("window end did not drain both freed servers: %v %v",
			cs[2].grants, cs[3].grants)
	}
	// Both servers are busy again: the next request waits, not grants.
	if got := gw.RequestService(5, cs[5]); got != ctsim.Wait {
		t.Fatalf("post-drain request: got %v, want Wait", got)
	}
}

// TestGatewayZeroDurationOutage: a blink with no release inside it
// changes nothing — parked waiters stay parked (no server freed), and
// only a request landing exactly between the two toggles sees
// DropOutage.
func TestGatewayZeroDurationOutage(t *testing.T) {
	gw := NewGateway(1, 2)
	cs := clients(3)
	gw.RequestService(0, cs[0])
	gw.RequestService(0, cs[1]) // Wait
	gw.SetDown(true, 1)
	if got := gw.RequestService(1, cs[2]); got != ctsim.DropOutage {
		t.Fatalf("mid-blink request: got %v, want DropOutage", got)
	}
	gw.SetDown(false, 1)
	if len(cs[1].grants) != 0 {
		t.Fatal("blink granted a waiter with no freed server")
	}
	gw.ReleaseService(2, cs[0])
	if len(cs[1].grants) != 1 || cs[1].grants[0] != 2 {
		t.Fatalf("waiter lost across the blink: %v", cs[1].grants)
	}
}

// TestPowerBudgetBrownoutFractionOne: frac = 1 is the boundary no-op —
// an outage window leaves the effective cap unchanged, so admissions
// during the window match admissions outside it exactly.
func TestPowerBudgetBrownoutFractionOne(t *testing.T) {
	p := NewPowerBudget(10)
	p.SetBrownoutFrac(1)
	p.Register(8)
	p.SetDown(true, 0)
	if !p.AllowTransition(1, nil, 2) {
		t.Fatal("frac=1 brownout shrank the cap")
	}
	if p.AllowTransition(2, nil, 0.5) {
		t.Fatal("frac=1 brownout admitted an overrun")
	}
	p.SetDown(false, 3)
	if p.UsedW() != 10 {
		t.Fatalf("UsedW = %v, want 10", p.UsedW())
	}
}

// TestPowerBudgetBrownoutFractionZeroPanics: frac = 0 (a blackout
// masquerading as a brownout) is outside the documented (0, 1] domain
// and must be rejected at configuration time, not silently veto every
// upward transition forever.
func TestPowerBudgetBrownoutFractionZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetBrownoutFrac(0) did not panic")
		}
	}()
	NewPowerBudget(10).SetBrownoutFrac(0)
}

// TestPowerBudgetBrownoutWindow: during a window the effective cap is
// frac × cap — a draw already above it is not evicted, upward
// transitions are vetoed against the reduced headroom (boundary
// admitted exactly), downward transitions always pass, and the full
// cap returns the moment the window ends.
func TestPowerBudgetBrownoutWindow(t *testing.T) {
	p := NewPowerBudget(10)
	p.SetBrownoutFrac(0.5)
	p.Register(6) // above the browned-out cap of 5
	p.SetDown(true, 0)
	if p.UsedW() != 6 {
		t.Fatalf("brownout evicted standing draw: UsedW = %v", p.UsedW())
	}
	if p.AllowTransition(1, nil, 0.5) {
		t.Fatal("upward transition admitted above the browned-out cap")
	}
	if !p.AllowTransition(2, nil, -2) {
		t.Fatal("downward transition vetoed during brownout")
	}
	// 4 W drawn, browned-out cap 5: exactly filling it is admitted.
	if !p.AllowTransition(3, nil, 1) {
		t.Fatal("transition to exactly the browned-out cap vetoed")
	}
	if p.AllowTransition(4, nil, 0.1) {
		t.Fatal("overrun of the browned-out cap admitted")
	}
	p.SetDown(false, 5)
	if !p.AllowTransition(6, nil, 5) {
		t.Fatal("full cap not restored after the window")
	}
	if p.UsedW() != 10 {
		t.Fatalf("UsedW = %v, want 10", p.UsedW())
	}
}
