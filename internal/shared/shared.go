// Package shared implements the resources a coupled fleet group
// contends for: a single-occupancy channel (one device's service
// occupies the medium), a bounded gateway queue (limited concurrent
// service plus a finite wait room, overflow dropped), and a
// rate-limited power budget (a cap on the group's summed settled-state
// power that vetoes upward transitions). Each satisfies
// ctsim.Resource; one instance is attached to every sim of a coupled
// group via ctsim.Config.Resource and arbitrates their service starts
// and power commands on the group's shared event kernel.
//
// Determinism: every method runs synchronously on the shared kernel's
// event loop, wait queues grant in strict FIFO request order, and no
// resource reads a clock or RNG of its own — a coupled group's outcome
// is a pure function of its spec, preserving the repository-wide
// bit-identical -parallel contract. The request order itself is pinned
// by the kernel's (time, seq) FIFO tie-break (see internal/eventq), so
// "first to ask" is well defined even when several devices act at the
// same instant. None of the types is safe for concurrent use, matching
// the kernel they guard.
//
// Reuse: all three types are resettable in place — Reset reproduces
// the freshly constructed state bit-for-bit while keeping queue
// capacity, so pooled coupled shards stay allocation-free after
// warm-up (wait-queue growth allocates only until the queue has seen
// its high-water mark).
package shared

import (
	"fmt"

	"repro/internal/ctsim"
)

// Outageable is the scheduled-outage half of the resource contract:
// the coupled-fleet outage driver toggles the resource down at the
// start of each outage window and up at its end, from events on the
// group's shared kernel (so toggles are deterministic). What "down"
// means is per-resource: a Channel jams (new grants park FIFO until
// the window ends), a Gateway rejects with ctsim.DropOutage, and a
// PowerBudget browns out (its effective cap shrinks). All three
// resources implement it.
type Outageable interface {
	// SetDown enters (true) or leaves (false) an outage window at time
	// now. Leaving may synchronously grant parked waiters, in FIFO
	// order. Toggles must alternate; Reset clears the down state.
	SetDown(down bool, now float64)
}

// fifo is a FIFO of waiting clients backed by a power-of-two ring (the
// internal/ctsim timedQueue pattern): head and tail are free-running
// counters masked into the buffer, so push/pop are a store and a mask —
// no append bookkeeping, no lazy compaction copy — and the buffer grows
// only until the queue's high-water mark, after which every operation
// is allocation-free. A coupled group's grant/wait/release traffic in
// steady state therefore never touches the allocator.
type fifo struct {
	buf  []ctsim.ResourceClient // len is a power of two (or nil)
	head uint32                 // next pop position (masked)
	tail uint32                 // next push position (masked)
}

func (f *fifo) len() int { return int(f.tail - f.head) }

func (f *fifo) push(g ctsim.ResourceClient) {
	if int(f.tail-f.head) == len(f.buf) {
		f.grow()
	}
	f.buf[f.tail&uint32(len(f.buf)-1)] = g
	f.tail++
}

// grow doubles the ring (minimum 4 slots), unwrapping the live window
// into the front of the new buffer so head/tail restart at zero.
func (f *fifo) grow() {
	n := len(f.buf) * 2
	if n == 0 {
		n = 4
	}
	nb := make([]ctsim.ResourceClient, n)
	cnt := f.tail - f.head
	for i := uint32(0); i < cnt; i++ {
		nb[i] = f.buf[(f.head+i)&uint32(len(f.buf)-1)]
	}
	f.buf = nb
	f.head = 0
	f.tail = cnt
}

func (f *fifo) pop() ctsim.ResourceClient {
	i := f.head & uint32(len(f.buf)-1)
	g := f.buf[i]
	f.buf[i] = nil
	f.head++
	return g
}

// remove deletes the first occurrence of g, preserving the order of
// the remaining waiters (later entries shift one slot toward the
// head). It reports whether g was found.
func (f *fifo) remove(g ctsim.ResourceClient) bool {
	mask := uint32(len(f.buf) - 1)
	for i := f.head; i != f.tail; i++ {
		if f.buf[i&mask] != g {
			continue
		}
		for j := i; j+1 != f.tail; j++ {
			f.buf[j&mask] = f.buf[(j+1)&mask]
		}
		f.tail--
		f.buf[f.tail&mask] = nil
		return true
	}
	return false
}

func (f *fifo) reset() {
	mask := uint32(len(f.buf) - 1)
	for i := f.head; i != f.tail; i++ {
		f.buf[i&mask] = nil
	}
	f.head = 0
	f.tail = 0
}

// Channel is a single-occupancy shared medium: at most one device in
// the group serves at a time (a WLAN cell where a transmission
// occupies the channel). Contenders queue FIFO and are granted as the
// holder releases; nothing is ever dropped and power commands are
// never vetoed.
//
// During an outage window (SetDown — a jam interval) no new grant is
// issued: requests park FIFO even while the medium is idle, an
// in-flight transmission finishes but its release grants nobody, and
// the queue drains in order when the window ends.
type Channel struct {
	busy    bool
	down    bool
	waiters fifo
}

// NewChannel returns an idle single-occupancy channel.
func NewChannel() *Channel { return &Channel{} }

// Reset returns the channel to the freshly constructed idle state,
// keeping the wait queue's capacity for reuse.
func (c *Channel) Reset() {
	c.busy = false
	c.down = false
	c.waiters.reset()
}

// RequestService grants the channel if idle (and not jammed), else
// queues g FIFO.
func (c *Channel) RequestService(now float64, g ctsim.ResourceClient) ctsim.Verdict {
	if !c.busy && !c.down {
		c.busy = true
		return ctsim.Grant
	}
	c.waiters.push(g)
	return ctsim.Wait
}

// ReleaseService frees the channel and synchronously grants the head
// waiter, if any. During a jam the channel goes idle without granting;
// SetDown(false) resumes the queue.
func (c *Channel) ReleaseService(now float64, g ctsim.ResourceClient) {
	if c.waiters.len() > 0 && !c.down {
		c.waiters.pop().ResourceGranted(now)
		return
	}
	c.busy = false
}

// SetDown implements Outageable: a jam interval. Ending the jam grants
// the head waiter if the medium is idle.
func (c *Channel) SetDown(down bool, now float64) {
	c.down = down
	if !down && !c.busy && c.waiters.len() > 0 {
		c.busy = true
		c.waiters.pop().ResourceGranted(now)
	}
}

// CancelWait withdraws a queued g.
func (c *Channel) CancelWait(now float64, g ctsim.ResourceClient) {
	if !c.waiters.remove(g) {
		panic("shared: Channel.CancelWait for a client that is not waiting")
	}
}

// AllowTransition always admits: the channel constrains the medium,
// not power.
func (c *Channel) AllowTransition(now float64, g ctsim.ResourceClient, deltaPowerW float64) bool {
	return true
}

// Gateway is a bounded queue feeding shared downstream capacity: up to
// Servers devices serve concurrently, up to WaitCap more wait FIFO,
// and requests beyond that are dropped (counted by the requester in
// Metrics.ResourceDrops). Power commands are never vetoed.
//
// During an outage window (SetDown — the gateway is unreachable) every
// request is rejected with ctsim.DropOutage, in-flight services finish
// without granting waiters, and parked waiters resume in FIFO order
// when the window ends.
type Gateway struct {
	servers int
	waitCap int
	busy    int
	down    bool
	waiters fifo
}

// NewGateway returns an idle gateway with the given concurrent-service
// capacity and wait-room bound. Both must be at least zero and servers
// at least one.
func NewGateway(servers, waitCap int) *Gateway {
	if servers < 1 {
		panic(fmt.Sprintf("shared: NewGateway servers %d < 1", servers))
	}
	if waitCap < 0 {
		panic(fmt.Sprintf("shared: NewGateway waitCap %d < 0", waitCap))
	}
	return &Gateway{servers: servers, waitCap: waitCap}
}

// Reset returns the gateway to the freshly constructed idle state,
// keeping the wait queue's capacity for reuse.
func (gw *Gateway) Reset() {
	gw.busy = 0
	gw.down = false
	gw.waiters.reset()
}

// RequestService grants while a server is free, queues while the wait
// room has space, and drops otherwise. During an outage window every
// request is rejected as DropOutage.
func (gw *Gateway) RequestService(now float64, g ctsim.ResourceClient) ctsim.Verdict {
	if gw.down {
		return ctsim.DropOutage
	}
	if gw.busy < gw.servers {
		gw.busy++
		return ctsim.Grant
	}
	if gw.waiters.len() < gw.waitCap {
		gw.waiters.push(g)
		return ctsim.Wait
	}
	return ctsim.Drop
}

// ReleaseService frees a server and synchronously grants the head
// waiter, if any. During an outage the server frees without granting;
// SetDown(false) drains the queue.
func (gw *Gateway) ReleaseService(now float64, g ctsim.ResourceClient) {
	if gw.waiters.len() > 0 && !gw.down {
		gw.waiters.pop().ResourceGranted(now)
		return
	}
	gw.busy--
}

// SetDown implements Outageable: gateway downtime. Ending the window
// grants parked waiters FIFO into the servers that freed during it.
func (gw *Gateway) SetDown(down bool, now float64) {
	gw.down = down
	if !down {
		for gw.busy < gw.servers && gw.waiters.len() > 0 {
			gw.busy++
			gw.waiters.pop().ResourceGranted(now)
		}
	}
}

// CancelWait withdraws a queued g.
func (gw *Gateway) CancelWait(now float64, g ctsim.ResourceClient) {
	if !gw.waiters.remove(g) {
		panic("shared: Gateway.CancelWait for a client that is not waiting")
	}
}

// AllowTransition always admits: the gateway constrains service
// concurrency, not power.
func (gw *Gateway) AllowTransition(now float64, g ctsim.ResourceClient, deltaPowerW float64) bool {
	return true
}

// PowerBudget caps the group's summed settled-state power: a commanded
// transition that would push the running total above the cap is vetoed
// (the device stays put, counted in Metrics.BudgetDenied) while
// downward transitions always pass and return their headroom. Service
// starts are never queued or dropped — the budget constrains power,
// not the medium.
//
// The budget accounts settled-state power only: a latent transition's
// transient draw is not charged, matching the ctsim hook, which
// consults the budget once per command with the settled-power delta.
//
// During an outage window (SetDown — a brownout) the effective cap
// shrinks to BrownoutFrac × cap: devices already drawing above the
// browned-out cap are not evicted, but upward transitions are vetoed
// against the reduced headroom until the window ends.
type PowerBudget struct {
	capW      float64
	usedW     float64
	brownFrac float64 // effective-cap scale while down
	down      bool
}

// NewPowerBudget returns a budget with the given cap in watts and no
// registered draw. Callers register each group member's initial
// settled power via Register before the run starts.
func NewPowerBudget(capW float64) *PowerBudget {
	return &PowerBudget{capW: capW, brownFrac: 1}
}

// Reset reconfigures the budget to a fresh cap with no registered draw
// and no outage in progress. The brownout fraction is configuration,
// not run state, and survives (like the cap it scales).
func (p *PowerBudget) Reset(capW float64) {
	p.capW = capW
	p.usedW = 0
	p.down = false
}

// SetBrownoutFrac sets the cap scale applied during outage windows, in
// (0, 1].
func (p *PowerBudget) SetBrownoutFrac(frac float64) {
	if !(frac > 0 && frac <= 1) {
		panic(fmt.Sprintf("shared: brownout fraction %v outside (0, 1]", frac))
	}
	p.brownFrac = frac
}

// SetDown implements Outageable: a brownout window scales the
// effective cap by the configured fraction.
func (p *PowerBudget) SetDown(down bool, now float64) { p.down = down }

// Register charges a group member's initial settled-state power before
// the run starts. Registration order must be deterministic (the
// coupled shard loop registers lanes in instance order) so the
// floating-point running total is reproducible.
func (p *PowerBudget) Register(initialPowerW float64) {
	p.usedW += initialPowerW
}

// CapW returns the configured cap in watts.
func (p *PowerBudget) CapW() float64 { return p.capW }

// UsedW returns the currently accounted settled-state draw in watts.
func (p *PowerBudget) UsedW() float64 { return p.usedW }

// RequestService always grants: the budget does not arbitrate the
// medium.
func (p *PowerBudget) RequestService(now float64, g ctsim.ResourceClient) ctsim.Verdict {
	return ctsim.Grant
}

// ReleaseService is a no-op (every request was granted without
// reserving capacity).
func (p *PowerBudget) ReleaseService(now float64, g ctsim.ResourceClient) {}

// CancelWait never fires (RequestService never answers Wait).
func (p *PowerBudget) CancelWait(now float64, g ctsim.ResourceClient) {
	panic("shared: PowerBudget.CancelWait — budget never queues a waiter")
}

// AllowTransition admits the command iff the resulting total stays
// within the cap, and accounts the delta when it does. Downward
// deltas always pass.
func (p *PowerBudget) AllowTransition(now float64, g ctsim.ResourceClient, deltaPowerW float64) bool {
	capW := p.capW
	if p.down {
		capW *= p.brownFrac
	}
	if deltaPowerW > 0 && p.usedW+deltaPowerW > capW {
		return false
	}
	p.usedW += deltaPowerW
	return true
}
