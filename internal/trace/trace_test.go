package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
)

func sampleTrace() *Trace {
	return &Trace{Times: []float64{0.5, 1.0, 1.0, 2.75, 10}}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Trace{
		{Times: []float64{1, 0.5}},
		{Times: []float64{-1}},
		{Times: []float64{math.NaN()}},
		{Times: []float64{math.Inf(1)}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
	if err := (&Trace{}).Validate(); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}

func TestInterarrivals(t *testing.T) {
	tr := &Trace{Times: []float64{2, 3, 7}}
	ia := tr.Interarrivals()
	want := []float64{2, 1, 4}
	for i := range want {
		if ia[i] != want[i] {
			t.Fatalf("interarrivals %v, want %v", ia, want)
		}
	}
}

func TestBin(t *testing.T) {
	tr := sampleTrace()
	counts, err := tr.Bin(1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 1, 0} // 0.5 | 1.0, 1.0 | 2.75 | — ; 10 dropped
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bins %v, want %v", counts, want)
		}
	}
}

func TestBinErrors(t *testing.T) {
	tr := sampleTrace()
	if _, err := tr.Bin(0, 4); err == nil {
		t.Error("zero slot duration accepted")
	}
	if _, err := tr.Bin(1, 0); err == nil {
		t.Error("zero slot count accepted")
	}
}

func TestSummary(t *testing.T) {
	tr := &Trace{Times: []float64{1, 2, 3, 4}}
	st := tr.Summary()
	if st.Count != 4 || st.Duration != 4 {
		t.Fatalf("summary %+v", st)
	}
	if st.MeanInterarrival != 1 {
		t.Errorf("mean interarrival %v, want 1", st.MeanInterarrival)
	}
	if st.CV != 0 {
		t.Errorf("CV %v, want 0 for deterministic gaps", st.CV)
	}
	if st.MaxGap != 1 {
		t.Errorf("max gap %v, want 1", st.MaxGap)
	}
}

func TestSummaryEmpty(t *testing.T) {
	st := (&Trace{}).Summary()
	if st.Count != 0 || st.Duration != 0 || st.CV != 0 {
		t.Errorf("empty summary %+v", st)
	}
}

func TestGenerate(t *testing.T) {
	d, _ := dist.NewExponential(2)
	tr, err := Generate(d, 10000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10000 {
		t.Fatalf("generated %d", tr.Len())
	}
	st := tr.Summary()
	if math.Abs(st.MeanInterarrival-0.5) > 0.02 {
		t.Errorf("mean interarrival %v, want ~0.5", st.MeanInterarrival)
	}
	// Exponential: CV ~ 1.
	if math.Abs(st.CV-1) > 0.05 {
		t.Errorf("CV %v, want ~1", st.CV)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := dist.NewExponential(1)
	a, _ := Generate(d, 100, rng.New(7))
	b, _ := Generate(d, 100, rng.New(7))
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatal("Generate not deterministic for equal seeds")
		}
	}
}

func TestGenerateNegativeCount(t *testing.T) {
	d, _ := dist.NewExponential(1)
	if _, err := Generate(d, -1, rng.New(1)); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip count %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Times {
		if math.Abs(got.Times[i]-tr.Times[i]) > 1e-9 {
			t.Fatalf("timestamp %d: %v != %v", i, got.Times[i], tr.Times[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "#qdpm-trace v1\n# a comment\n\n1.5\n# another\n2.5\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 || tr.Times[0] != 1.5 || tr.Times[1] != 2.5 {
		t.Fatalf("parsed %v", tr.Times)
	}
}

func TestTextErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "#other\n1\n",
		"garbage value": "#qdpm-trace v1\nabc\n",
		"unsorted":      "#qdpm-trace v1\n2\n1\n",
		"negative":      "#qdpm-trace v1\n-5\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	d, _ := dist.NewExponential(1)
	tr, _ := Generate(d, 5000, rng.New(3))
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("count %d != %d", got.Len(), tr.Len())
	}
	for i := range tr.Times {
		if got.Times[i] != tr.Times[i] { // binary must be bit-exact
			t.Fatalf("timestamp %d not bit-exact", i)
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty round trip gave %d records", got.Len())
	}
}

func TestBinaryErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGIC\x00\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated count.
	if _, err := ReadBinary(bytes.NewReader([]byte("QDPMTRC1\x01"))); err == nil {
		t.Error("truncated count accepted")
	}
	// Count exceeds available records.
	var buf bytes.Buffer
	tr := sampleTrace()
	tr.WriteBinary(&buf)
	raw := buf.Bytes()
	truncated := raw[:len(raw)-4]
	if _, err := ReadBinary(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated records accepted")
	}
	// Absurd count rejected before allocation.
	huge := append([]byte("QDPMTRC1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadBinary(bytes.NewReader(huge)); err == nil {
		t.Error("absurd count accepted")
	}
}

// Property: text and binary codecs round-trip any generated trace.
func TestCodecRoundTripProperty(t *testing.T) {
	d, _ := dist.NewExponential(1)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		tr, err := Generate(d, n, rng.New(seed))
		if err != nil {
			return false
		}
		var tb, bb bytes.Buffer
		if tr.WriteText(&tb) != nil || tr.WriteBinary(&bb) != nil {
			return false
		}
		fromText, err1 := ReadText(&tb)
		fromBin, err2 := ReadBinary(&bb)
		if err1 != nil || err2 != nil {
			return false
		}
		if fromText.Len() != n || fromBin.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if fromBin.Times[i] != tr.Times[i] {
				return false
			}
			if math.Abs(fromText.Times[i]-tr.Times[i]) > 1e-6*(1+tr.Times[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// An empty trace must round-trip through the text codec (header only).
func TestTextEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty text round trip gave %d records", got.Len())
	}
}

// The binary reader must reject payloads that decode to invalid traces:
// NaN, negative, and unsorted timestamps. WriteBinary does not validate,
// so a corrupted or hand-built file exercises the read-side guard.
func TestBinaryRejectsInvalidPayload(t *testing.T) {
	bad := map[string]*Trace{
		"nan":      {Times: []float64{1, math.NaN()}},
		"negative": {Times: []float64{-1}},
		"unsorted": {Times: []float64{2, 1}},
		"inf":      {Times: []float64{math.Inf(1)}},
	}
	for name, tr := range bad {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		if _, err := ReadBinary(&buf); err == nil {
			t.Errorf("%s payload accepted by ReadBinary", name)
		}
	}
}

// Property: converting text→binary→text preserves the parsed timestamps
// exactly (the binary leg is bit-exact; only the initial text rendering
// rounds).
func TestConvertCycleProperty(t *testing.T) {
	d, _ := dist.NewExponential(2)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 40)
		tr, err := Generate(d, n, rng.New(seed))
		if err != nil {
			return false
		}
		var tb bytes.Buffer
		if tr.WriteText(&tb) != nil {
			return false
		}
		parsed, err := ReadText(&tb)
		if err != nil {
			return false
		}
		var bb bytes.Buffer
		if parsed.WriteBinary(&bb) != nil {
			return false
		}
		back, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		if back.Len() != parsed.Len() {
			return false
		}
		for i := range parsed.Times {
			if back.Times[i] != parsed.Times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
