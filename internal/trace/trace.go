// Package trace defines the on-disk request-trace format used by the
// workload tooling: a monotone sequence of request arrival timestamps in
// seconds, with a text codec for human inspection and a compact binary
// codec for long traces.
//
// The paper drives everything with synthetic input; traces exist so that
// experiments are replayable artifacts (generate once, feed to any policy)
// and so users can substitute measured arrival logs for the synthetic
// processes without touching simulator code.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/rng"
)

// Trace is a sequence of request arrival times in seconds, nondecreasing,
// all finite and >= 0.
type Trace struct {
	// Times holds the arrival timestamps.
	Times []float64
}

// Validate checks the trace invariants.
func (tr *Trace) Validate() error {
	prev := 0.0
	for i, t := range tr.Times {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("trace: timestamp %d is %v", i, t)
		}
		if t < 0 {
			return fmt.Errorf("trace: timestamp %d is negative (%v)", i, t)
		}
		if t < prev {
			return fmt.Errorf("trace: timestamp %d (%v) precedes timestamp %d (%v)", i, t, i-1, prev)
		}
		prev = t
	}
	return nil
}

// Len returns the number of requests.
func (tr *Trace) Len() int { return len(tr.Times) }

// Duration returns the time of the last request (0 for an empty trace).
func (tr *Trace) Duration() float64 {
	if len(tr.Times) == 0 {
		return 0
	}
	return tr.Times[len(tr.Times)-1]
}

// Interarrivals returns the gaps between consecutive requests, with the
// first gap measured from time 0.
func (tr *Trace) Interarrivals() []float64 {
	out := make([]float64, len(tr.Times))
	prev := 0.0
	for i, t := range tr.Times {
		out[i] = t - prev
		prev = t
	}
	return out
}

// Bin counts arrivals per slot of slotDuration seconds over nSlots slots.
// Requests beyond the horizon are dropped. It returns an error for a non-
// positive slot duration or slot count.
func (tr *Trace) Bin(slotDuration float64, nSlots int) ([]int, error) {
	if !(slotDuration > 0) {
		return nil, fmt.Errorf("trace: slot duration %v must be positive", slotDuration)
	}
	if nSlots <= 0 {
		return nil, fmt.Errorf("trace: slot count %d must be positive", nSlots)
	}
	counts := make([]int, nSlots)
	for _, t := range tr.Times {
		i := int(t / slotDuration)
		if i >= nSlots {
			break // times are sorted
		}
		counts[i]++
	}
	return counts, nil
}

// Stats summarizes a trace.
type Stats struct {
	Count            int
	Duration         float64
	MeanInterarrival float64
	CV               float64 // coefficient of variation of interarrivals
	MaxGap           float64
}

// Summary computes trace statistics.
func (tr *Trace) Summary() Stats {
	st := Stats{Count: tr.Len(), Duration: tr.Duration()}
	ia := tr.Interarrivals()
	if len(ia) == 0 {
		return st
	}
	sum, sumsq, maxGap := 0.0, 0.0, 0.0
	for _, g := range ia {
		sum += g
		sumsq += g * g
		if g > maxGap {
			maxGap = g
		}
	}
	n := float64(len(ia))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	st.MeanInterarrival = mean
	if mean > 0 {
		st.CV = math.Sqrt(variance) / mean
	}
	st.MaxGap = maxGap
	return st
}

// Generate draws n interarrival gaps from d and returns the resulting
// trace. The stream advances deterministically.
func Generate(d dist.Continuous, n int, s *rng.Stream) (*Trace, error) {
	if n < 0 {
		return nil, fmt.Errorf("trace: negative request count %d", n)
	}
	tr := &Trace{Times: make([]float64, n)}
	t := 0.0
	for i := 0; i < n; i++ {
		t += d.Sample(s)
		tr.Times[i] = t
	}
	return tr, tr.Validate()
}

// ---------------------------------------------------------------------------
// Text codec

// textHeader is the first line of a text-format trace file.
const textHeader = "#qdpm-trace v1"

// WriteText writes the trace in the line-oriented text format: a version
// header, then one timestamp per line. Lines starting with '#' are
// comments.
func (tr *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, textHeader); err != nil {
		return err
	}
	for _, t := range tr.Times {
		if _, err := fmt.Fprintf(bw, "%.9g\n", t); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format, validating the header and every
// timestamp.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("trace: empty input, missing header")
	}
	if got := strings.TrimSpace(sc.Text()); got != textHeader {
		return nil, fmt.Errorf("trace: bad header %q, want %q", got, textHeader)
	}
	tr := &Trace{}
	line := 1
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		tr.Times = append(tr.Times, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadFile loads a trace from disk in either codec, keyed on the file
// suffix: ".bin" selects the binary format, anything else the text
// format. This is the one place the suffix convention lives; qdpm-trace
// and qdpm-sim both read through it.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return ReadBinary(f)
	}
	return ReadText(f)
}

// ---------------------------------------------------------------------------
// Binary codec

// binaryMagic identifies the binary trace format, version 1.
var binaryMagic = [8]byte{'Q', 'D', 'P', 'M', 'T', 'R', 'C', '1'}

// WriteBinary writes the trace in the binary format: 8-byte magic, uint64
// little-endian count, then count float64 little-endian timestamps.
func (tr *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(tr.Times)))
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	for _, t := range tr.Times {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(t))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxBinaryCount caps the declared record count so a corrupt header cannot
// trigger a huge allocation.
const maxBinaryCount = 1 << 30

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(buf[:])
	if n > maxBinaryCount {
		return nil, fmt.Errorf("trace: declared count %d exceeds limit %d", n, maxBinaryCount)
	}
	tr := &Trace{Times: make([]float64, n)}
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		tr.Times[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
