package eventq

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFiresInTimeOrder(t *testing.T) {
	k := New()
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tt := range times {
		if _, err := k.Schedule(tt, func(now float64) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(1.0, func(float64) { order = append(order, i) })
	}
	k.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleInPastRejected(t *testing.T) {
	k := New()
	k.Schedule(5, func(float64) {})
	k.Run(10)
	if _, err := k.Schedule(3, func(float64) {}); err == nil {
		t.Fatal("scheduling in the past accepted")
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	k := New()
	if _, err := k.Schedule(math.NaN(), func(float64) {}); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := k.Schedule(math.Inf(1), func(float64) {}); err == nil {
		t.Error("Inf time accepted")
	}
	if _, err := k.Schedule(1, nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := k.After(-1, func(float64) {}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestCancel(t *testing.T) {
	k := New()
	fired := false
	e, _ := k.Schedule(1, func(float64) { fired = true })
	if !e.Valid() || !k.Pending(e) {
		t.Fatal("scheduled event not pending")
	}
	if tt := k.TimeOf(e); tt != 1 {
		t.Fatalf("TimeOf = %v, want 1", tt)
	}
	k.Cancel(e)
	if k.Pending(e) {
		t.Fatal("canceled event still pending")
	}
	if !math.IsNaN(k.TimeOf(e)) {
		t.Fatal("TimeOf of canceled event not NaN")
	}
	k.Run(5)
	if fired {
		t.Fatal("canceled event fired")
	}
	k.Cancel(e)     // double-cancel is a no-op
	k.Cancel(Ref{}) // zero Ref is a no-op
	if k.Pending(Ref{}) {
		t.Fatal("zero Ref reported pending")
	}
}

func TestCancelOneOfMany(t *testing.T) {
	k := New()
	var got []int
	var events []Ref
	for i := 0; i < 5; i++ {
		i := i
		e, _ := k.Schedule(float64(i), func(float64) { got = append(got, i) })
		events = append(events, e)
	}
	k.Cancel(events[2])
	k.Run(10)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestHorizonStopsExecution(t *testing.T) {
	k := New()
	fired := 0
	k.Schedule(1, func(float64) { fired++ })
	k.Schedule(9, func(float64) { fired++ })
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired %d events before horizon 5, want 1", fired)
	}
	if k.Now() != 5 {
		t.Fatalf("clock at %v, want 5", k.Now())
	}
	// The remaining event still fires on a later Run.
	k.Run(10)
	if fired != 2 {
		t.Fatalf("fired %d after extended horizon, want 2", fired)
	}
}

func TestRunRejectsPastHorizon(t *testing.T) {
	k := New()
	k.Schedule(5, func(float64) {})
	k.Run(6)
	if err := k.Run(2); err == nil {
		t.Fatal("Run with past horizon accepted")
	}
}

func TestStopInsideHandler(t *testing.T) {
	k := New()
	fired := 0
	k.Schedule(1, func(float64) { fired++; k.Stop() })
	k.Schedule(2, func(float64) { fired++ })
	k.Run(10)
	if fired != 1 {
		t.Fatalf("Stop did not halt execution, fired %d", fired)
	}
}

// Regression: Run used to fast-forward the clock to the horizon even when
// it exited via Stop, contradicting "Run returns after the current event
// completes". A stopped run must leave the clock at the last fired event.
func TestStopLeavesClockAtCurrentEvent(t *testing.T) {
	k := New()
	k.Schedule(1, func(float64) { k.Stop() })
	k.Schedule(7, func(float64) {})
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 1 {
		t.Fatalf("clock after Stop at %v, want 1 (the stopping event's time)", k.Now())
	}
	// The run resumes cleanly: the remaining event fires and a natural
	// exit advances the clock to the horizon.
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if k.Fired() != 2 {
		t.Fatalf("fired %d after resume, want 2", k.Fired())
	}
	if k.Now() != 10 {
		t.Fatalf("clock after natural exit at %v, want 10", k.Now())
	}
}

// Len must stay exact through schedule/cancel/fire interleavings,
// including cancels of already-fired and already-canceled events — on the
// indexed heap, Cancel removes immediately, so Len is the heap length.
func TestLenCounterExact(t *testing.T) {
	k := New()
	var events []Ref
	for i := 0; i < 6; i++ {
		e, _ := k.Schedule(float64(i+1), func(float64) {})
		events = append(events, e)
	}
	if p := k.Len(); p != 6 {
		t.Fatalf("Len = %d, want 6", p)
	}
	k.Cancel(events[0])
	k.Cancel(events[3])
	k.Cancel(events[3]) // double-cancel: no-op
	if p := k.Len(); p != 4 {
		t.Fatalf("Len after cancels = %d, want 4", p)
	}
	if !k.Step() { // fires event 1 (event 0 was removed by Cancel)
		t.Fatal("Step found nothing")
	}
	if k.Now() != 2 {
		t.Fatalf("Step fired at %v, want 2 (event at 1 was canceled)", k.Now())
	}
	if p := k.Len(); p != 3 {
		t.Fatalf("Len after Step = %d, want 3", p)
	}
	k.Cancel(events[1]) // already fired: no-op
	if p := k.Len(); p != 3 {
		t.Fatalf("Len after cancel-of-fired = %d, want 3", p)
	}
	k.Run(10)
	if p := k.Len(); p != 0 {
		t.Fatalf("Len after drain = %d, want 0", p)
	}
	if k.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", k.Fired())
	}
	// Cancel-only drain leaves nothing to fire.
	e, _ := k.Schedule(20, func(float64) {})
	k.Cancel(e)
	if p := k.Len(); p != 0 {
		t.Fatalf("Len after cancel-only = %d, want 0", p)
	}
	k.Run(30)
	if k.Fired() != 4 {
		t.Fatalf("canceled event fired (Fired = %d)", k.Fired())
	}
}

func TestHandlerCanScheduleMore(t *testing.T) {
	k := New()
	count := 0
	var tick Handler
	tick = func(now float64) {
		count++
		if count < 10 {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	k.Run(100)
	if count != 10 {
		t.Fatalf("recurrent event fired %d times, want 10", count)
	}
	if k.Now() != 100 {
		t.Fatalf("clock %v, want 100", k.Now())
	}
}

func TestScheduleAtNowRunsAfterCurrentQueue(t *testing.T) {
	k := New()
	var order []string
	k.Schedule(1, func(now float64) {
		order = append(order, "a")
		k.Schedule(now, func(float64) { order = append(order, "c") })
	})
	k.Schedule(1, func(float64) { order = append(order, "b") })
	k.Run(2)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order %v, want [a b c]", order)
	}
}

func TestFiredAndLenCounters(t *testing.T) {
	k := New()
	e1, _ := k.Schedule(1, func(float64) {})
	k.Schedule(2, func(float64) {})
	k.Schedule(3, func(float64) {})
	k.Cancel(e1)
	if p := k.Len(); p != 2 {
		t.Fatalf("Len = %d, want 2", p)
	}
	k.Run(10)
	if k.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", k.Fired())
	}
	if p := k.Len(); p != 0 {
		t.Fatalf("Len after run = %d, want 0", p)
	}
}

// Property: for any batch of random schedule times, events fire in
// nondecreasing time order and the clock never moves backward.
func TestPropertyOrderInvariant(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		s := rng.New(seed)
		k := New()
		last := -1.0
		ok := true
		for i := 0; i < n; i++ {
			k.Schedule(s.Float64()*100, func(now float64) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		if err := k.Run(101); err != nil {
			return false
		}
		return ok && k.Fired() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Reset must return a reused kernel to a state behaviorally identical to
// a fresh one: clock 0, empty queue, seq restarted (so tie-break order of
// a re-run matches a first run), arena retained.
func TestResetMatchesFreshKernel(t *testing.T) {
	trace := func(k *Kernel) []float64 {
		var got []float64
		var rec Handler
		rec = func(now float64) {
			got = append(got, now)
			if now < 5 {
				k.After(1, rec)
			}
		}
		k.Schedule(1, rec)
		k.Schedule(1, func(now float64) { got = append(got, -now) })
		e, _ := k.Schedule(3.5, func(float64) { got = append(got, 99) })
		k.Cancel(e)
		k.Run(10)
		return got
	}
	k := New()
	first := trace(k)
	k.Reset()
	if k.Now() != 0 || k.Len() != 0 || k.Fired() != 0 {
		t.Fatalf("Reset left state: now=%v len=%d fired=%d", k.Now(), k.Len(), k.Fired())
	}
	second := trace(k)
	if len(first) != len(second) {
		t.Fatalf("re-run diverged: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("re-run diverged at %d: %v vs %v", i, first, second)
		}
	}
	// Pending events at Reset are dropped, not fired.
	k.Reset()
	fired := false
	k.Schedule(2, func(float64) { fired = true })
	k.Reset()
	k.Run(10)
	if fired {
		t.Fatal("event scheduled before Reset fired after it")
	}
}
