// Calendar-queue future event list — the second backing of Kernel.
//
// The 4-ary heap (eventq.go) pays O(log n) per operation, and at fleet
// scale its index-slice traversals are exactly the pointer-chasing the
// cache can't hide. The calendar queue (R. Brown, "Calendar Queues: A
// Fast O(1) Priority Queue Implementation for the Simulation Event Set
// Problem", CACM 1988) and its relative, the hierarchical timing wheel
// (Varghese & Lauck, SOSP 1987), exploit the profile a discrete-event
// simulation actually produces — most timers fire near the current time
// — to make enqueue and dequeue O(1) amortized:
//
//   - Time is divided into buckets of width w; an event at time t hashes
//     to bucket floor(t/w) mod nbuckets, like days into a wall calendar
//     of nbuckets "days" covering a "year" of nbuckets·w.
//   - Each bucket chains its events sorted by (time, seq) through the
//     arena's next links, so the chain head is the bucket minimum and
//     the FIFO tie-break is structural, not incidental: the fire order
//     is byte-for-byte the heap kernel's (TestCalendarMatchesReference).
//   - Dequeue scans buckets from a cursor, accepting a chain head only
//     when it falls inside the bucket's current-year window; with the
//     width adapted to the event density, the next event is almost
//     always in the cursor bucket or the one after it.
//   - The bucket count doubles/halves with the population and the width
//     re-derives from the live events' span on every resize, so the
//     structure tracks the schedule's density automatically.
//   - Sparse or long-horizon schedules (next event many years ahead —
//     where a naive calendar degrades to scanning empty buckets forever)
//     fall back after one fruitless rotation to a direct minimum scan
//     over the chain heads, then re-anchor the cursor at the event
//     found, restoring O(1) behavior from there.
//
// Both backings share the Kernel API, the Ref generation discipline, and
// the pooled arena free list; an event's heapIdx field holds its bucket
// index while calendar-queued, and the free-list next link doubles as
// the chain link while queued (the two lifetimes are disjoint).
package eventq

import "math"

const (
	// calMinBuckets is the floor (and initial) bucket count. Kernels
	// with a handful of timers — one ctsim instance holds 2–5 — never
	// resize and hash straight into an 8-bucket calendar.
	calMinBuckets = 8
	// calDefaultWidth is the bucket width before the first resize
	// derives one from the observed schedule (seconds-scale timers are
	// the repository norm).
	calDefaultWidth = 1.0
)

// NewCalendar returns a kernel backed by the calendar queue instead of
// the 4-ary heap. The two backings are observably identical — same API,
// same (time, seq) fire order bit for bit, same Ref semantics — and
// differ only in cost profile: the calendar wins when most events fire
// near the clock (the fleet/ctsim profile), the heap when schedules are
// erratic. See DESIGN.md §7 for the measured numbers.
func NewCalendar() *Kernel {
	k := &Kernel{cal: true}
	k.calInit()
	return k
}

// Calendar reports whether the kernel runs on the calendar backing.
func (k *Kernel) Calendar() bool { return k.cal }

// calInit (re)establishes an empty calendar at the default geometry.
func (k *Kernel) calInit() {
	if k.buckets == nil {
		k.buckets = make([]int32, calMinBuckets)
	} else {
		for i := range k.buckets {
			k.buckets[i] = 0
		}
	}
	k.nCal = 0
	k.width = calDefaultWidth
	k.cursorVB = 0
	k.calMin = -1
}

// calVB returns the virtual bucket (year·nbuckets + day) of time t —
// float math throughout, so times far beyond 2^53·width degrade to a
// deterministic single-bucket calendar instead of overflowing.
func (k *Kernel) calVB(t float64) float64 { return math.Floor(t / k.width) }

// calBucket maps a virtual bucket to its physical bucket index:
// vb mod nbuckets. Written as floor-division arithmetic rather than
// math.Mod — the bucket count is always a power of two, so vb/nb,
// floor, the multiply, and the subtraction are all exact in binary
// floating point and compile to four hardware instructions, where
// math.Mod is a software fmod an order of magnitude slower.
func (k *Kernel) calBucket(vb float64) int {
	nb := float64(len(k.buckets))
	return int(vb - math.Floor(vb/nb)*nb)
}

// calInsert chains arena slot idx into its bucket, keeping the chain
// sorted by (time, seq) so the head is always the bucket minimum.
func (k *Kernel) calInsert(idx int32) {
	e := &k.arena[idx]
	b := k.calBucket(k.calVB(e.time))
	e.heapIdx = int32(b)
	prev := int32(0)
	cur := k.buckets[b]
	for cur != 0 && k.less(cur-1, idx) {
		prev = cur
		cur = k.arena[cur-1].next
	}
	e.next = cur
	if prev == 0 {
		k.buckets[b] = idx + 1
	} else {
		k.arena[prev-1].next = idx + 1
	}
	k.nCal++
	// Maintain the cached minimum: a strictly earlier event takes it
	// over; an unknown cache (-1) stays unknown until the next peek.
	if k.nCal == 1 {
		k.calMin = idx
	} else if k.calMin >= 0 && k.less(idx, k.calMin) {
		k.calMin = idx
	}
	if k.nCal > 2*len(k.buckets) {
		k.calResize(2 * len(k.buckets))
	}
}

// calUnlink removes arena slot idx from its bucket chain. Chains are
// short by construction (the resize policy holds the mean occupancy
// under 2), so the predecessor scan is O(1) amortized.
func (k *Kernel) calUnlink(idx int32) {
	e := &k.arena[idx]
	b := e.heapIdx
	prev := int32(0)
	cur := k.buckets[b]
	for cur-1 != idx {
		prev = cur
		cur = k.arena[cur-1].next
	}
	if prev == 0 {
		k.buckets[b] = e.next
	} else {
		k.arena[prev-1].next = e.next
	}
	k.nCal--
	if k.calMin == idx {
		k.calMin = -1
	}
	if len(k.buckets) > calMinBuckets && k.nCal < len(k.buckets)/2 {
		k.calResize(len(k.buckets) / 2)
	}
}

// calPeek returns the arena index of the earliest queued event, or -1
// when the calendar is empty. The result is cached until an insert
// beats it or the event leaves the queue.
func (k *Kernel) calPeek() int32 {
	if k.nCal == 0 {
		return -1
	}
	if k.calMin >= 0 {
		return k.calMin
	}
	nb := len(k.buckets)
	// Scan one year of buckets from the cursor, accepting a chain head
	// only when its virtual bucket equals the bucket's current-year slot.
	// The acceptance test reuses calVB — the placement function — rather
	// than comparing times against an accumulated window top: t/w is
	// monotone and floor collisions are exact, so "head's vb == scan vb"
	// is free of the one-ulp disagreements a separately computed window
	// boundary can have with the placement hash (which once skipped a
	// pending minimum). Chain heads are bucket minima and every live
	// event's vb is >= cursorVB (the pop/fallback/resize invariant), so
	// the first hit is the global minimum; ties share a bucket and the
	// sorted chain orders them by seq.
	b := k.calBucket(k.cursorVB)
	vb := k.cursorVB
	for i := 0; i < nb; i++ {
		if h := k.buckets[b]; h != 0 && k.calVB(k.arena[h-1].time) == vb {
			k.cursorVB = vb
			k.calMin = h - 1
			return k.calMin
		}
		b++
		if b == nb {
			b = 0
		}
		vb++
	}
	// A full rotation found nothing in-year: the schedule is sparse (or
	// far beyond the cursor). Fall back to a direct minimum over the
	// chain heads and re-anchor the cursor there, restoring O(1) scans.
	best := int32(-1)
	for _, h := range k.buckets {
		if h != 0 && (best < 0 || k.less(h-1, best)) {
			best = h - 1
		}
	}
	k.cursorVB = k.calVB(k.arena[best].time)
	k.calMin = best
	return best
}

// calPop unlinks the earliest event (as found by calPeek) and advances
// the cursor to its bucket.
func (k *Kernel) calPop(idx int32) {
	k.cursorVB = k.calVB(k.arena[idx].time)
	k.calUnlink(idx)
}

// calResize rebuilds the calendar with nb buckets and a width re-derived
// from the live events: twice the mean gap (span/count), the classic
// rule that targets ~2 events per populated bucket. Degenerate spans
// (all events simultaneous) keep the previous width — every event lands
// in one bucket either way, and the sorted chain keeps order exact. The
// rebuild reuses a scratch index slice, so steady-state resizes allocate
// only when the population reaches a new high-water mark.
func (k *Kernel) calResize(nb int) {
	k.calScratch = k.calScratch[:0]
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range k.buckets {
		for cur := h; cur != 0; {
			idx := cur - 1
			cur = k.arena[idx].next
			k.calScratch = append(k.calScratch, idx)
			t := k.arena[idx].time
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
	}
	if cap(k.buckets) >= nb {
		k.buckets = k.buckets[:nb]
	} else {
		k.buckets = make([]int32, nb)
	}
	for i := range k.buckets {
		k.buckets[i] = 0
	}
	if n := len(k.calScratch); n > 1 && hi > lo {
		k.width = 2 * (hi - lo) / float64(n)
	}
	// Re-anchor the cursor below every live event (times never precede
	// the clock), then re-chain; the inserts rebuild the count and the
	// cached minimum, and cannot re-trigger a resize (the thresholds
	// that chose nb leave the final count strictly inside them).
	k.cursorVB = k.calVB(k.now)
	k.nCal = 0
	k.calMin = -1
	for _, idx := range k.calScratch {
		k.calInsert(idx)
	}
}

// calReset drains every chain back to the free list and restores the
// default geometry — the calendar half of Kernel.Reset.
func (k *Kernel) calReset() {
	for i := range k.buckets {
		for cur := k.buckets[i]; cur != 0; {
			idx := cur - 1
			cur = k.arena[idx].next
			k.release(idx)
		}
		k.buckets[i] = 0
	}
	k.nCal = 0
	k.width = calDefaultWidth
	k.cursorVB = 0
	k.calMin = -1
}
