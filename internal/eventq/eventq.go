// Package eventq implements a discrete-event simulation kernel: a binary-
// heap future event list with stable FIFO tie-breaking, a simulation clock,
// and event cancellation.
//
// The slotted Q-DPM experiments use a fixed timebase, but trace generation
// and the continuous-time validation example need true event-driven
// simulation (request arrivals at real-valued times, device wakeup
// completions, timeout expiries). This kernel provides that substrate.
package eventq

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Handler is the callback invoked when an event fires. The kernel passes
// the firing time so handlers need not consult the clock.
type Handler func(now float64)

// Event is a scheduled occurrence. Obtain events from Kernel.Schedule;
// the zero value is meaningless.
type Event struct {
	time     float64
	seq      uint64 // FIFO tie-breaker for equal times
	index    int    // heap index, -1 when not queued
	fn       Handler
	canceled bool
}

// Time returns the scheduled firing time.
func (e *Event) Time() float64 { return e.time }

// Pending reports whether the event is still queued and not canceled.
func (e *Event) Pending() bool { return e.index >= 0 && !e.canceled }

// eventHeap orders by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation executive. It is not safe for
// concurrent use; simulations that need parallelism run one Kernel per
// goroutine with split rng streams.
type Kernel struct {
	now     float64
	heap    eventHeap
	seq     uint64
	stopped bool
	fired   uint64
	live    int // queued non-canceled events, kept exact by Schedule/Cancel/Step
}

// New returns a kernel with the clock at 0.
func New() *Kernel { return &Kernel{} }

// Now returns the current simulation time.
func (k *Kernel) Now() float64 { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of queued (non-canceled) events. It is O(1):
// the kernel maintains a live-event counter so consumers that poll per
// decision (ctsim) never pay for the lazily-deleted canceled entries still
// sitting in the heap.
func (k *Kernel) Pending() int { return k.live }

// Schedule queues fn to run at time t. Scheduling in the past (t < Now) is
// an error; scheduling exactly at Now is allowed and runs after currently
// queued events at Now (FIFO).
func (k *Kernel) Schedule(t float64, fn Handler) (*Event, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("eventq: schedule time %v is not finite", t)
	}
	if t < k.now {
		return nil, fmt.Errorf("eventq: schedule time %v precedes current time %v", t, k.now)
	}
	if fn == nil {
		return nil, errors.New("eventq: nil handler")
	}
	e := &Event{time: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.heap, e)
	k.live++
	return e, nil
}

// After queues fn to run delay time units from now; delay must be >= 0.
func (k *Kernel) After(delay float64, fn Handler) (*Event, error) {
	if delay < 0 || math.IsNaN(delay) {
		return nil, fmt.Errorf("eventq: negative delay %v", delay)
	}
	return k.Schedule(k.now+delay, fn)
}

// Cancel removes a pending event. Canceling an already-fired or already-
// canceled event is a harmless no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		return
	}
	e.canceled = true
	k.live--
	// Lazy deletion: leave it in the heap; Step skips canceled events.
}

// Stop makes Run return after the current event completes, leaving the
// clock at that event's time.
func (k *Kernel) Stop() { k.stopped = true }

// Step fires the earliest pending event. It returns false when the queue is
// empty.
func (k *Kernel) Step() bool {
	for k.heap.Len() > 0 {
		e := heap.Pop(&k.heap).(*Event)
		if e.canceled {
			continue
		}
		k.live--
		k.now = e.time
		k.fired++
		e.fn(k.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty, Stop is called, or the
// clock would exceed horizon (events after the horizon remain queued). On
// a natural exit — queue drained or next event past the horizon — the
// clock advances to exactly horizon. A Stop exit leaves the clock at the
// last fired event, so the caller can observe exactly how far the
// simulation got and resume from there.
func (k *Kernel) Run(horizon float64) error {
	if horizon < k.now {
		return fmt.Errorf("eventq: horizon %v precedes current time %v", horizon, k.now)
	}
	k.stopped = false
	for !k.stopped {
		// Peek at the earliest non-canceled event.
		for k.heap.Len() > 0 && k.heap[0].canceled {
			heap.Pop(&k.heap)
		}
		if k.heap.Len() == 0 {
			break
		}
		if k.heap[0].time > horizon {
			break
		}
		k.Step()
	}
	if !k.stopped && k.now < horizon {
		k.now = horizon
	}
	return nil
}
