// Package eventq implements a discrete-event simulation kernel: a future
// event list with stable FIFO tie-breaking, a simulation clock, and event
// cancellation.
//
// The slotted Q-DPM experiments use a fixed timebase, but trace generation
// and the continuous-time validation path need true event-driven
// simulation (request arrivals at real-valued times, device wakeup
// completions, timeout expiries). This kernel provides that substrate.
//
// # Implementation
//
// The future event list is an intrusive, index-tracked 4-ary min-heap over
// a pooled event arena:
//
//   - Events live in a flat arena ([]event) and are addressed by index;
//     the heap stores (time, seq, index) triples inline, so every sift
//     comparison reads the keys from the heap slice itself — no
//     dependent load into the arena per comparison, which is what made
//     heap maintenance the dominant cost of shared-kernel (coupled
//     fleet) simulations with a few dozen standing events.
//   - Fired and canceled events return to a free list and are reused by
//     later Schedule calls, so a simulation in steady state (every handler
//     rescheduling its successor, as the continuous-time simulator does)
//     allocates nothing per event.
//   - Each event records its own heap position, which makes Cancel a true
//     O(log n) removal — no lazy deletion, no tombstones to sweep, and
//     Pending is simply the heap length.
//   - A 4-ary layout halves the tree depth of a binary heap and keeps the
//     children of a node in one cache line of the index slice; ordering is
//     by (time, seq) with seq a schedule-order counter, so simultaneous
//     events fire FIFO and the fire order is byte-for-byte the order the
//     previous container/heap kernel produced.
//
// Callers refer to scheduled events through Ref handles (index +
// generation). A slot's generation bumps every time it is released, so a
// stale Ref — to an event that already fired or was canceled, even if the
// slot has been reused — is detected and ignored rather than corrupting an
// unrelated event.
//
// # Ordering contract
//
// Events fire in strictly nondecreasing (time, seq) order, where seq is
// a per-kernel schedule-order counter: of two events scheduled for the
// same instant, the one scheduled first fires first, regardless of heap
// or calendar internals. Every simulator above this package (ctsim, the
// fleet's shared-clock coupled groups, the shared-resource arbiters)
// leans on that FIFO tie-break for its bit-identical determinism
// contract, and both backings (New and NewCalendar) honor it
// identically (TestKernelPropertyAllKernels pins the equivalence).
//
// # Reuse contract
//
// Kernel.Reset restores a freshly constructed kernel — clock at 0, no
// queued events, counters cleared — while keeping the arena and heap
// capacity, and behavior after Reset is bit-identical to a new
// kernel's. Together with the free-list event recycling this keeps a
// worker that cycles one kernel through many replicas entirely off the
// allocator (TestResetMatchesFreshKernel, TestFreeListReuse).
package eventq

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Handler is the callback invoked when an event fires. The kernel passes
// the firing time so handlers need not consult the clock. Hot paths should
// bind handlers once (e.g. a struct field holding a method value) and pass
// the same Handler to every Schedule call; a fresh closure per call is
// correct but allocates.
type Handler func(now float64)

// Ref is a handle to a scheduled event, returned by Schedule and After.
// The zero Ref refers to no event: Cancel ignores it and Pending reports
// false, so "no outstanding event" needs no sentinel beyond Ref{}.
type Ref struct {
	slot int32  // arena index + 1; 0 = none
	gen  uint32 // arena slot generation at schedule time
}

// Valid reports whether the Ref was ever issued by Schedule (it says
// nothing about whether the event is still pending; see Kernel.Pending).
func (r Ref) Valid() bool { return r.slot != 0 }

// event is one arena slot.
type event struct {
	time    float64
	seq     uint64 // FIFO tie-breaker for equal times
	fn      Handler
	heapIdx int32  // heap position (calendar: bucket index), -1 when free
	gen     uint32 // bumped on release; pairs with Ref.gen
	next    int32  // free-list / calendar-chain link (slot+1 form)
}

// heapNode is one heap entry: the (time, seq) ordering key copied
// inline next to the arena index it stands for, so sift comparisons
// never load from the arena. The keys are immutable while queued
// (Cancel removes and re-inserts; nothing mutates a pending event's
// time), so the copies cannot go stale.
//
// The time half of the key is stored as its IEEE-754 bit pattern.
// Simulation times are never negative (Schedule rejects t < Now and
// the clock starts at 0) and never NaN/Inf, and over nonnegative
// normalized floats the bit pattern orders exactly as the value does —
// so the whole (time, seq) key compares as one 128-bit unsigned
// integer. timeKey normalizes -0.0 to +0.0 to keep that true at zero.
type heapNode struct {
	key uint64 // math.Float64bits of the event time (see timeKey)
	seq uint64
	idx int32
}

// timeKey maps a nonnegative event time to its order-preserving
// integer key.
func timeKey(t float64) uint64 {
	if t == 0 {
		return 0 // normalize -0.0
	}
	return math.Float64bits(t)
}

// nodeLessBit reports a < b by (time, seq) order — earlier first, FIFO
// on ties — as a 0/1 integer. The lexicographic compare runs as a
// 128-bit unsigned subtract (two sub-with-borrow ops) whose final
// borrow IS the result, so no flag materialization and no branch:
// heap keys look random to the branch predictor, and one mispredict
// per comparison is what made sifting dominate coupled-fleet profiles.
func nodeLessBit(a, b heapNode) uint64 {
	_, borrow := bits.Sub64(a.seq, b.seq, 0)
	_, borrow = bits.Sub64(a.key, b.key, borrow)
	return borrow
}

// nodeLess is nodeLessBit as a bool, for the sift paths whose
// termination tests must branch anyway.
func nodeLess(a, b heapNode) bool { return nodeLessBit(a, b) != 0 }

// minChild4 returns the index of the least of the four children
// h[c..c+3], selecting each tournament winner with mask arithmetic
// instead of a data-dependent branch (the compiler does not convert
// these to conditional moves on its own).
func minChild4(h []heapNode, c int) int {
	b0 := c + int(nodeLessBit(h[c+1], h[c]))
	b1 := c + 2 + int(nodeLessBit(h[c+3], h[c+2]))
	d := -int(nodeLessBit(h[b1], h[b0]))
	return b0 ^ ((b0 ^ b1) & d)
}

// Kernel is a discrete-event simulation executive. It is not safe for
// concurrent use; simulations that need parallelism run one Kernel per
// goroutine with split rng streams.
//
// Two interchangeable backings share this type: the 4-ary indexed heap
// (New) and the calendar queue (NewCalendar — see calendar.go). Both
// produce the identical (time, seq) fire order bit for bit.
type Kernel struct {
	now     float64
	arena   []event
	heap    []heapNode // (time, seq, arena index) ordered as a 4-ary min-heap
	free    int32      // free-list head (slot+1 form), 0 = empty
	seq     uint64
	fired   uint64
	stopped bool

	// Calendar backing (cal == true); see calendar.go.
	cal        bool
	buckets    []int32 // chain heads (slot+1 form), sorted by (time, seq)
	nCal       int     // queued event count
	width      float64 // bucket width in time units
	cursorVB   float64 // dequeue cursor: virtual bucket, floor(time/width)
	calMin     int32   // cached earliest arena index, -1 = unknown
	calScratch []int32 // resize rebuild scratch
}

// New returns a kernel with the clock at 0.
func New() *Kernel { return &Kernel{} }

// Reset returns the kernel to a freshly constructed state — clock at 0,
// no queued events, sequence and fired counters cleared — while retaining
// the event arena and heap capacity. A worker that runs many replicas
// back to back resets one kernel instead of reallocating per replica; the
// behavior after Reset is bit-identical to a new kernel's.
func (k *Kernel) Reset() {
	if k.cal {
		k.calReset()
	} else {
		for _, nd := range k.heap {
			k.release(nd.idx)
		}
		k.heap = k.heap[:0]
	}
	k.now = 0
	k.seq = 0
	k.fired = 0
	k.stopped = false
}

// Now returns the current simulation time.
func (k *Kernel) Now() float64 { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Len returns the number of queued events. It is O(1) and exact: Cancel
// removes events from the backing immediately, so there are no lazily
// deleted entries to discount.
func (k *Kernel) Len() int {
	if k.cal {
		return k.nCal
	}
	return len(k.heap)
}

// Pending reports whether r's event is still queued (not fired, not
// canceled). A zero Ref and a stale Ref both report false.
func (k *Kernel) Pending(r Ref) bool { return k.resolve(r) >= 0 }

// TimeOf returns the scheduled firing time of r's event, or NaN when the
// event is no longer pending.
func (k *Kernel) TimeOf(r Ref) float64 {
	idx := k.resolve(r)
	if idx < 0 {
		return math.NaN()
	}
	return k.arena[idx].time
}

// resolve maps a Ref to its arena index, or -1 when the Ref is zero,
// stale, or the event is not queued.
func (k *Kernel) resolve(r Ref) int32 {
	idx := r.slot - 1
	if idx < 0 || int(idx) >= len(k.arena) {
		return -1
	}
	e := &k.arena[idx]
	if e.gen != r.gen || e.heapIdx < 0 {
		return -1
	}
	return idx
}

// alloc takes a slot from the free list, growing the arena when empty.
func (k *Kernel) alloc() int32 {
	if k.free != 0 {
		idx := k.free - 1
		k.free = k.arena[idx].next
		return idx
	}
	k.arena = append(k.arena, event{heapIdx: -1})
	return int32(len(k.arena) - 1)
}

// release returns a slot to the free list, invalidating outstanding Refs.
func (k *Kernel) release(idx int32) {
	e := &k.arena[idx]
	e.gen++
	e.fn = nil
	e.heapIdx = -1
	e.next = k.free
	k.free = idx + 1
}

// Schedule queues fn to run at time t. Scheduling in the past (t < Now) is
// an error; scheduling exactly at Now is allowed and runs after currently
// queued events at Now (FIFO).
func (k *Kernel) Schedule(t float64, fn Handler) (Ref, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return Ref{}, fmt.Errorf("eventq: schedule time %v is not finite", t)
	}
	if t < k.now {
		return Ref{}, fmt.Errorf("eventq: schedule time %v precedes current time %v", t, k.now)
	}
	if fn == nil {
		return Ref{}, errors.New("eventq: nil handler")
	}
	idx := k.alloc()
	e := &k.arena[idx]
	e.time = t
	e.seq = k.seq
	e.fn = fn
	k.seq++
	if k.cal {
		k.calInsert(idx)
	} else {
		i := len(k.heap)
		k.heap = append(k.heap, heapNode{key: timeKey(e.time), seq: e.seq, idx: idx})
		e.heapIdx = int32(i)
		k.siftUp(i)
	}
	return Ref{slot: idx + 1, gen: k.arena[idx].gen}, nil
}

// After queues fn to run delay time units from now; delay must be >= 0.
func (k *Kernel) After(delay float64, fn Handler) (Ref, error) {
	if delay < 0 || math.IsNaN(delay) {
		return Ref{}, fmt.Errorf("eventq: negative delay %v", delay)
	}
	return k.Schedule(k.now+delay, fn)
}

// Cancel removes a pending event and recycles its slot. Canceling a zero
// Ref, an already-fired, or an already-canceled event is a harmless no-op.
func (k *Kernel) Cancel(r Ref) {
	idx := k.resolve(r)
	if idx < 0 {
		return
	}
	if k.cal {
		k.calUnlink(idx)
	} else {
		k.removeAt(int(k.arena[idx].heapIdx))
	}
	k.release(idx)
}

// Stop makes Run return after the current event completes, leaving the
// clock at that event's time.
func (k *Kernel) Stop() { k.stopped = true }

// Step fires the earliest pending event. It returns false when the queue
// is empty.
func (k *Kernel) Step() bool {
	var idx int32
	if k.cal {
		if idx = k.calPeek(); idx < 0 {
			return false
		}
		k.calPop(idx)
	} else {
		if len(k.heap) == 0 {
			return false
		}
		idx = k.popMin()
	}
	e := &k.arena[idx]
	t, fn := e.time, e.fn
	// Release before invoking the handler so a rescheduling handler (the
	// steady-state pattern) reuses this very slot without growing the
	// arena. e is invalid past this point: the handler may grow the arena.
	k.release(idx)
	k.now = t
	k.fired++
	fn(t)
	return true
}

// Run executes events until the queue is empty, Stop is called, or the
// clock would exceed horizon (events after the horizon remain queued). On
// a natural exit — queue drained or next event past the horizon — the
// clock advances to exactly horizon. A Stop exit leaves the clock at the
// last fired event, so the caller can observe exactly how far the
// simulation got and resume from there.
func (k *Kernel) Run(horizon float64) error {
	if horizon < k.now {
		return fmt.Errorf("eventq: horizon %v precedes current time %v", horizon, k.now)
	}
	k.stopped = false
	if k.cal {
		for !k.stopped {
			idx := k.calPeek()
			if idx < 0 || k.arena[idx].time > horizon {
				break
			}
			k.Step()
		}
	} else {
		hkey := timeKey(horizon)
		for !k.stopped && len(k.heap) > 0 && k.heap[0].key <= hkey {
			k.Step()
		}
	}
	if !k.stopped && k.now < horizon {
		k.now = horizon
	}
	return nil
}

// less orders arena slots by (time, seq): earlier first, FIFO on ties.
// The calendar backing's sorted chains use it; the heap compares its
// inline node keys instead (nodeLess).
func (k *Kernel) less(a, b int32) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// siftUp restores the heap property from position i toward the root.
func (k *Kernel) siftUp(i int) {
	h := k.heap
	nd := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !nodeLess(nd, h[p]) {
			break
		}
		h[i] = h[p]
		k.arena[h[i].idx].heapIdx = int32(i)
		i = p
	}
	h[i] = nd
	k.arena[nd.idx].heapIdx = int32(i)
}

// siftDown restores the heap property from position i toward the leaves.
// The common interior case (all four children present) finds the min
// child by pairwise tournament — two independent comparisons feeding a
// final — with each winner selected by a conditional move rather than a
// data-dependent branch.
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	nd := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		var best int
		if c+4 <= n {
			best = minChild4(h, c)
		} else {
			best = c
			for j := c + 1; j < n; j++ {
				if nodeLess(h[j], h[best]) {
					best = j
				}
			}
		}
		if !nodeLess(h[best], nd) {
			break
		}
		h[i] = h[best]
		k.arena[h[i].idx].heapIdx = int32(i)
		i = best
	}
	h[i] = nd
	k.arena[nd.idx].heapIdx = int32(i)
}

// popMin removes and returns the arena index of the heap minimum using
// a bottom-up ("hole percolation") delete-min: the root hole descends
// along the min-child path without comparing against the displaced last
// element, which is then dropped into the bottom hole and sifted up —
// almost always zero steps, since it came from the bottom. That saves
// one comparison per level over the classic sift-down of the last
// element, which essentially never stops early.
func (k *Kernel) popMin() int32 {
	h := k.heap
	idx := h[0].idx
	n := len(h) - 1
	last := h[n]
	k.heap = h[:n]
	if n == 0 {
		return idx
	}
	h = k.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		var best int
		if c+4 <= n {
			best = minChild4(h, c)
		} else {
			best = c
			for j := c + 1; j < n; j++ {
				if nodeLess(h[j], h[best]) {
					best = j
				}
			}
		}
		h[i] = h[best]
		k.arena[h[i].idx].heapIdx = int32(i)
		i = best
	}
	h[i] = last
	k.arena[last.idx].heapIdx = int32(i)
	k.siftUp(i)
	return idx
}

// removeAt deletes the heap entry at position i, preserving order.
func (k *Kernel) removeAt(i int) {
	n := len(k.heap) - 1
	last := k.heap[n]
	k.heap = k.heap[:n]
	if i == n {
		return
	}
	k.heap[i] = last
	k.arena[last.idx].heapIdx = int32(i)
	if i > 0 && nodeLess(last, k.heap[(i-1)>>2]) {
		k.siftUp(i)
	} else {
		k.siftDown(i)
	}
}
