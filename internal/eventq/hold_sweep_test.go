package eventq

import (
	"strconv"
	"testing"

	"repro/internal/rng"
)

// BenchmarkKernelHoldSweep measures the steady-state schedule+fire cost
// of both kernel backings as a function of the standing event
// population ("hold" size), under the classic uniform-random hold
// model: every fired event immediately reschedules one successor at a
// random offset. It is the microbenchmark half of the DESIGN.md §7
// kernel decision table — the heap wins small holds, the calendar's
// O(1) dequeue wins large uniform-random ones. NOTE: the crossover it
// shows does NOT transfer to coupled fleet groups, whose events
// cluster at synchronized governor ticks; the decision table for
// KernelAuto is measured on the real workload instead
// (BenchmarkFleetCoupledKernelSweep at the repo root).
func BenchmarkKernelHoldSweep(b *testing.B) {
	for _, kc := range kernelConstructors {
		for _, hold := range []int{4, 8, 16, 24, 32, 48, 64, 128, 256, 1024, 4096} {
			kc, hold := kc, hold
			b.Run(kc.name+"/hold="+strconv.Itoa(hold), func(b *testing.B) {
				k := kc.newK()
				s := rng.New(1)
				fn := func(float64) {}
				for i := 0; i < hold; i++ {
					k.Schedule(s.Float64(), fn)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Schedule(k.Now()+s.Float64(), fn)
					k.Step()
				}
			})
		}
	}
}
