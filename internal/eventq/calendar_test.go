package eventq

// Calendar-queue equivalence and adversarial-geometry tests. The
// property harness of arena_test.go (random schedule/cancel/fire
// interleavings against the container/heap reference) runs against both
// backings via kernelConstructors; this file adds the calendar-specific
// adversarial shapes — all events simultaneous (one bucket, pure chain
// discipline), exponentially spread times (every event in its own
// "year", sparse-fallback path), and horizon-edge schedules (events at,
// just below, and just above Run's horizon) — plus resize churn and the
// steady-state no-allocation contract on the calendar path.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// calendarFireOrder runs the same schedule set on a heap kernel and a
// calendar kernel and requires identical (time, id) fire sequences.
func calendarFireOrder(t *testing.T, name string, times []float64) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		type fire struct {
			t  float64
			id int
		}
		run := func(k *Kernel) []fire {
			var got []fire
			for i, tt := range times {
				id := i
				if _, err := k.Schedule(tt, func(now float64) {
					got = append(got, fire{t: now, id: id})
				}); err != nil {
					t.Fatal(err)
				}
			}
			for k.Step() {
			}
			return got
		}
		want := run(New())
		got := run(NewCalendar())
		if len(got) != len(want) {
			t.Fatalf("calendar fired %d events, heap fired %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("fire %d: calendar %+v, heap %+v", i, got[i], want[i])
			}
		}
	})
}

// TestCalendarAdversarialGeometries pins the fire order on schedules
// chosen to break a calendar's bucket geometry.
func TestCalendarAdversarialGeometries(t *testing.T) {
	// All events at the same instant: one bucket holds everything; order
	// must be pure FIFO through the sorted chain.
	same := make([]float64, 200)
	for i := range same {
		same[i] = 42.5
	}
	calendarFireOrder(t, "all-same-time", same)

	// Exponentially spread: event i at 2^i — every event beyond the
	// first few lies years past the cursor, so each dequeue takes the
	// sparse-fallback scan.
	exp := make([]float64, 60)
	for i := range exp {
		exp[i] = math.Pow(2, float64(i))
	}
	calendarFireOrder(t, "exponential-spread", exp)

	// Exponentially spread, scheduled in reverse so inserts land before
	// the cursor-adjacent events repeatedly.
	rev := make([]float64, len(exp))
	for i := range rev {
		rev[i] = exp[len(exp)-1-i]
	}
	calendarFireOrder(t, "exponential-spread-reversed", rev)

	// Dense cluster plus one far outlier: the resize width derivation
	// must not let the outlier-stretched span break ordering.
	cluster := make([]float64, 120)
	for i := range cluster {
		cluster[i] = 10 + float64(i%7)*1e-6
	}
	cluster = append(cluster, 1e12)
	calendarFireOrder(t, "cluster-with-outlier", cluster)

	// Sub-width ties: many distinct times inside one default-width
	// bucket.
	tiny := make([]float64, 150)
	for i := range tiny {
		tiny[i] = 0.5 + float64((i*37)%150)*1e-9
	}
	calendarFireOrder(t, "sub-width-cluster", tiny)
}

// TestCalendarHorizonEdge: Run must fire events at exactly the horizon,
// leave events one ulp past it queued, and advance the clock to the
// horizon — identically on both backings, including after the cursor
// has advanced far beyond the remaining schedule's year.
func TestCalendarHorizonEdge(t *testing.T) {
	for _, mk := range []struct {
		name string
		newK func() *Kernel
	}{{"heap", New}, {"calendar", NewCalendar}} {
		t.Run(mk.name, func(t *testing.T) {
			k := mk.newK()
			h := 100.0
			var fired []float64
			log := func(now float64) { fired = append(fired, now) }
			k.Schedule(h, log)                      // exactly at horizon
			k.Schedule(math.Nextafter(h, 200), log) // one ulp past
			k.Schedule(math.Nextafter(h, 0), log)   // one ulp before
			k.Schedule(h, log)                      // horizon tie (FIFO)
			if err := k.Run(h); err != nil {
				t.Fatal(err)
			}
			want := []float64{math.Nextafter(h, 0), h, h}
			if len(fired) != len(want) {
				t.Fatalf("fired %v, want %v", fired, want)
			}
			for i := range want {
				if fired[i] != want[i] {
					t.Fatalf("fired %v, want %v", fired, want)
				}
			}
			if k.Now() != h {
				t.Fatalf("clock %v after Run, want %v", k.Now(), h)
			}
			if k.Len() != 1 {
				t.Fatalf("%d events left, want the one past the horizon", k.Len())
			}
			// The leftover fires on the next Run — after the clock sat at
			// the horizon (cursor far behind the event's bucket year).
			if err := k.Run(2 * h); err != nil {
				t.Fatal(err)
			}
			if len(fired) != 4 || fired[3] != math.Nextafter(h, 200) {
				t.Fatalf("past-horizon event misfired: %v", fired)
			}
		})
	}
}

// TestCalendarResizeChurn grows the population through several doublings
// and shrinks it back, checking Len and exhaustive ordered drain.
func TestCalendarResizeChurn(t *testing.T) {
	k := NewCalendar()
	s := rng.New(7)
	var refs []Ref
	const n = 500 // 8 buckets → several doublings
	for i := 0; i < n; i++ {
		r, err := k.Schedule(s.Float64()*1000, func(float64) {})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	if k.Len() != n {
		t.Fatalf("Len %d after %d schedules", k.Len(), n)
	}
	// Cancel every other event: drives the shrink path.
	for i := 0; i < n; i += 2 {
		k.Cancel(refs[i])
	}
	if k.Len() != n/2 {
		t.Fatalf("Len %d after cancels, want %d", k.Len(), n/2)
	}
	last := math.Inf(-1)
	fired := 0
	for k.Step() {
		if k.Now() < last {
			t.Fatalf("out-of-order fire: %v after %v", k.Now(), last)
		}
		last = k.Now()
		fired++
	}
	if fired != n/2 {
		t.Fatalf("drained %d events, want %d", fired, n/2)
	}
}

// TestCalendarResetBehavesFresh: a Reset calendar kernel reproduces a
// fresh kernel's fire sequence bit for bit — the fleet worker reuse
// contract — even after churn that resized the calendar.
func TestCalendarResetBehavesFresh(t *testing.T) {
	seq := func(k *Kernel) []float64 {
		s := rng.New(42)
		var out []float64
		log := func(now float64) { out = append(out, now) }
		for i := 0; i < 64; i++ {
			k.Schedule(float64(int(s.Float64()*16)), log)
		}
		if err := k.Run(16); err != nil {
			t.Fatal(err)
		}
		return out
	}
	churned := NewCalendar()
	s := rng.New(9)
	for i := 0; i < 300; i++ { // force growth + width adaptation
		churned.Schedule(s.Float64()*500, func(float64) {})
	}
	churned.Reset()
	got := seq(churned)
	want := seq(NewCalendar())
	if len(got) != len(want) {
		t.Fatalf("reset kernel fired %d, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d: reset %v, fresh %v", i, got[i], want[i])
		}
	}
}

// TestCalendarSteadyStateAllocationFree: the self-rescheduling cycle —
// the ctsim steady state — allocates nothing on the calendar backing.
// Part of the CI allocation-regression step (AllocationFree name match).
func TestCalendarSteadyStateAllocationFree(t *testing.T) {
	k := NewCalendar()
	var spin Handler
	spin = func(now float64) { k.After(0.75, spin) }
	k.After(0.75, spin)
	for i := 0; i < 100; i++ { // warm
		k.Step()
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			k.Step()
		}
	})
	if avg > 0 {
		t.Errorf("calendar steady-state loop allocates: %.2f allocs per 1000 events, want 0", avg)
	}
	if len(k.arena) != 1 {
		t.Errorf("self-rescheduling chain grew the arena to %d slots, want 1", len(k.arena))
	}
}

// BenchmarkCalendarScheduleAndFire mirrors BenchmarkScheduleAndFire on
// the calendar backing: one near-now schedule + fire per op.
func BenchmarkCalendarScheduleAndFire(b *testing.B) {
	k := NewCalendar()
	s := rng.New(1)
	fn := func(float64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+s.Float64(), fn)
		k.Step()
	}
}

// BenchmarkKernelHold measures schedule+fire with a large standing
// population — the regime where the heap pays O(log n) with cold index
// traversals and the calendar stays O(1). This is the crossover the
// DESIGN.md kernel-selection note quantifies.
func BenchmarkKernelHold(b *testing.B) {
	for _, kc := range kernelConstructors {
		for _, hold := range []int{1 << 10, 1 << 16} {
			kc, hold := kc, hold
			b.Run(kc.name+"/"+itoa(hold), func(b *testing.B) {
				k := kc.newK()
				s := rng.New(1)
				fn := func(float64) {}
				for i := 0; i < hold; i++ {
					k.Schedule(s.Float64(), fn)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Schedule(k.Now()+s.Float64(), fn)
					k.Step()
				}
			})
		}
	}
}

func itoa(n int) string {
	if n >= 1<<16 {
		return "64k"
	}
	return "1k"
}

// BenchmarkCalendarScheduleCancel mirrors BenchmarkScheduleCancel (the
// wake-timer churn pattern) on the calendar backing.
func BenchmarkCalendarScheduleCancel(b *testing.B) {
	k := NewCalendar()
	s := rng.New(1)
	fn := func(float64) {}
	var standing [64]Ref
	for i := range standing {
		standing[i], _ = k.Schedule(s.Float64()*100, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 63
		k.Cancel(standing[j])
		standing[j], _ = k.Schedule(k.Now()+s.Float64()*100, fn)
	}
}
