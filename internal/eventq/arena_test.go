package eventq

// White-box tests for the pooled indexed heap: equivalence against a
// reference container/heap kernel under random Schedule/Cancel/fire
// interleavings, free-list reuse (steady state grows no arena), tie-break
// determinism, and stale-Ref safety across slot reuse.

import (
	"container/heap"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// refEvent / refHeap: the pre-arena future event list — a container/heap
// binary heap of boxed events with lazy cancellation — kept verbatim as
// the behavioral reference the production kernel must match.
type refEvent struct {
	time     float64
	seq      uint64
	index    int
	id       int
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// refKernel drives refHeap with the reference fire/cancel semantics.
type refKernel struct {
	h   refHeap
	seq uint64
}

func (r *refKernel) schedule(t float64, id int) *refEvent {
	e := &refEvent{time: t, seq: r.seq, id: id}
	r.seq++
	heap.Push(&r.h, e)
	return e
}

func (r *refKernel) cancel(e *refEvent) { e.canceled = true }

// fire pops the earliest non-canceled event's id, or -1 when drained.
func (r *refKernel) fire() (float64, int) {
	for r.h.Len() > 0 {
		e := heap.Pop(&r.h).(*refEvent)
		if e.canceled {
			continue
		}
		return e.time, e.id
	}
	return 0, -1
}

// kernelConstructors enumerates every Kernel backing. Equivalence and
// property tests run against each; all backings must produce the same
// (time, seq) fire order bit for bit.
var kernelConstructors = []struct {
	name string
	newK func() *Kernel
}{
	{"heap", New},
	{"calendar", NewCalendar},
}

// TestArenaMatchesReferenceHeap drives each production kernel backing and
// the reference kernel through the same random interleaving of schedules,
// cancels, and fires, and requires identical fire sequences (time and
// event identity). This is the load-bearing equivalence test: it pins the
// (time, seq) total order — and therefore every downstream trajectory —
// to the pre-arena kernel's, for the heap and calendar backings alike.
func TestArenaMatchesReferenceHeap(t *testing.T) {
	for _, kc := range kernelConstructors {
		kc := kc
		t.Run(kc.name, func(t *testing.T) { testMatchesReference(t, kc.newK) })
	}
}

func testMatchesReference(t *testing.T, newK func() *Kernel) {
	f := func(seed uint64) bool { return matchesReferenceOnce(newK, seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// matchesReferenceOnce runs one 400-op random interleaving of the
// production kernel under test against the reference kernel; false means
// the fire sequences diverged.
func matchesReferenceOnce(newK func() *Kernel, seed uint64) bool {
	{
		s := rng.New(seed)
		k := newK()
		ref := &refKernel{}

		type livePair struct {
			r  Ref
			re *refEvent
		}
		var live []livePair
		var gotT, wantT []float64
		var gotID, wantID []int
		nextID := 0

		for op := 0; op < 400; op++ {
			switch v := s.Float64(); {
			case v < 0.55: // schedule
				// Coarse times force heavy ties; the tie-break must match.
				tt := k.Now() + float64(int(s.Float64()*8))
				id := nextID
				nextID++
				r, err := k.Schedule(tt, func(now float64) {
					gotT = append(gotT, now)
					gotID = append(gotID, id)
				})
				if err != nil {
					return false
				}
				live = append(live, livePair{r: r, re: ref.schedule(tt, id)})
			case v < 0.75 && len(live) > 0: // cancel a random live event
				i := int(s.Float64() * float64(len(live)))
				k.Cancel(live[i].r)
				ref.cancel(live[i].re)
				live = append(live[:i], live[i+1:]...)
			default: // fire one
				wt, wid := ref.fire()
				fired := k.Step()
				if (wid >= 0) != fired {
					return false
				}
				if wid >= 0 {
					wantT = append(wantT, wt)
					wantID = append(wantID, wid)
					// Drop the fired event from the live set (ids are unique).
					for i := range live {
						if live[i].re.id == wid {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			}
		}
		// Drain both.
		for {
			wt, wid := ref.fire()
			if wid < 0 {
				break
			}
			if !k.Step() {
				return false
			}
			wantT = append(wantT, wt)
			wantID = append(wantID, wid)
		}
		if k.Step() {
			return false
		}
		if len(gotT) != len(wantT) {
			return false
		}
		for i := range gotT {
			if gotT[i] != wantT[i] || gotID[i] != wantID[i] {
				return false
			}
		}
		return true
	}
}

// TestFreeListReuse pins the zero-allocation contract structurally: a
// handler that reschedules itself (the continuous-time steady state)
// cycles through the free list without ever growing the arena, and a
// schedule/cancel churn loop holds the arena at its high-water mark.
func TestFreeListReuse(t *testing.T) {
	k := New()
	var tick Handler
	n := 0
	tick = func(now float64) {
		n++
		if n < 10000 {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	if len(k.arena) != 1 {
		t.Fatalf("arena %d slots after first schedule, want 1", len(k.arena))
	}
	if err := k.Run(20000); err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Fatalf("fired %d, want 10000", n)
	}
	if len(k.arena) != 1 {
		t.Errorf("self-rescheduling chain grew the arena to %d slots, want 1 (free-list reuse)", len(k.arena))
	}

	// Churn: 4 concurrent timers repeatedly canceled and rescheduled.
	k2 := New()
	refs := make([]Ref, 4)
	for i := range refs {
		refs[i], _ = k2.Schedule(float64(i+1), func(float64) {})
	}
	high := len(k2.arena)
	for round := 0; round < 1000; round++ {
		i := round % len(refs)
		k2.Cancel(refs[i])
		refs[i], _ = k2.Schedule(float64(round%7)+1, func(float64) {})
	}
	if len(k2.arena) != high {
		t.Errorf("cancel/reschedule churn grew the arena %d → %d slots", high, len(k2.arena))
	}

	// The steady-state loop performs no heap allocations.
	k3 := New()
	var spin Handler
	spin = func(now float64) { k3.After(1, spin) }
	k3.After(1, spin)
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 1000; i++ {
			k3.Step()
		}
	})
	if avg > 0 {
		t.Errorf("steady-state schedule/fire loop allocates: %.2f allocs per 1000 events, want 0", avg)
	}
}

// TestTieBreakDeterminism: same-time events fire in schedule order, even
// when interleaved with cancels that shuffle heap positions, and
// independently of how many unrelated events came before. Runs on every
// backing — in the calendar, all ties share one bucket chain.
func TestTieBreakDeterminism(t *testing.T) {
	for _, kc := range kernelConstructors {
		kc := kc
		t.Run(kc.name, func(t *testing.T) { testTieBreak(t, kc.newK) })
	}
}

func testTieBreak(t *testing.T, newK func() *Kernel) {
	run := func(preload int) []int {
		k := newK()
		// Unrelated churn first, to displace arena slot assignment.
		var junk []Ref
		for i := 0; i < preload; i++ {
			r, _ := k.Schedule(0.25, func(float64) {})
			junk = append(junk, r)
		}
		for _, r := range junk {
			k.Cancel(r)
		}
		var order []int
		for i := 0; i < 16; i++ {
			i := i
			k.Schedule(1.0, func(float64) { order = append(order, i) })
		}
		// Cancel a few mid-pack to force removeAt re-sifts among ties.
		var extra []Ref
		for i := 0; i < 8; i++ {
			r, _ := k.Schedule(1.0, func(float64) { order = append(order, 100+i) })
			if i%2 == 0 {
				extra = append(extra, r)
			}
		}
		for _, r := range extra {
			k.Cancel(r)
		}
		k.Run(2)
		return order
	}
	want := run(0)
	for i, v := range want[:16] {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", want)
		}
	}
	for _, preload := range []int{1, 7, 33} {
		got := run(preload)
		if len(got) != len(want) {
			t.Fatalf("preload %d changed fire count: %v vs %v", preload, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("preload %d changed tie order at %d: %v vs %v", preload, i, got, want)
			}
		}
	}
}

// TestStaleRefSafety: a Ref to a fired or canceled event must stay dead
// even after its arena slot is reused — Cancel through it must not touch
// the slot's new occupant. Both backings share the arena generation
// discipline, so both are exercised.
func TestStaleRefSafety(t *testing.T) {
	for _, kc := range kernelConstructors {
		kc := kc
		t.Run(kc.name, func(t *testing.T) { testStaleRef(t, kc.newK) })
	}
}

func testStaleRef(t *testing.T, newK func() *Kernel) {
	k := newK()
	old, _ := k.Schedule(1, func(float64) {})
	k.Step() // fires; slot returns to the free list
	if k.Pending(old) {
		t.Fatal("fired event still pending")
	}
	replFired := false
	repl, _ := k.Schedule(2, func(float64) { replFired = true }) // reuses the slot
	if repl.slot != old.slot {
		t.Fatalf("expected slot reuse (old %d, new %d)", old.slot, repl.slot)
	}
	k.Cancel(old) // stale: must be a no-op
	if !k.Pending(repl) {
		t.Fatal("stale Cancel killed the slot's new occupant")
	}
	k.Run(5)
	if !replFired {
		t.Fatal("replacement event never fired")
	}

	// Same via cancel-then-reuse.
	a, _ := k.Schedule(10, func(float64) {})
	k.Cancel(a)
	bFired := false
	b, _ := k.Schedule(11, func(float64) { bFired = true })
	if b.slot != a.slot {
		t.Fatalf("expected slot reuse after cancel (old %d, new %d)", a.slot, b.slot)
	}
	k.Cancel(a) // stale again
	k.Run(20)
	if !bFired {
		t.Fatal("stale double-cancel killed the reused slot")
	}
}

// BenchmarkScheduleAndFire: one random-delay schedule + fire per op — the
// kernel's hot cycle. Steady state must be 0 allocs/op.
func BenchmarkScheduleAndFire(b *testing.B) {
	k := New()
	s := rng.New(1)
	fn := func(float64) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(k.Now()+s.Float64(), fn)
		k.Step()
	}
}

// BenchmarkScheduleCancel: schedule + cancel per op over a 64-event
// standing population — the wake-timer pattern of event-driven ctsim.
func BenchmarkScheduleCancel(b *testing.B) {
	k := New()
	s := rng.New(1)
	fn := func(float64) {}
	var standing [64]Ref
	for i := range standing {
		standing[i], _ = k.Schedule(s.Float64()*100, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 63
		k.Cancel(standing[j])
		standing[j], _ = k.Schedule(k.Now()+s.Float64()*100, fn)
	}
}
