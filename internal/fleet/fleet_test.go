package fleet_test

import (
	"context"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/stats"
)

// testSpec returns a small but heterogeneous fleet spec that runs in
// well under a second.
func testSpec(mode fleet.Mode) fleet.Spec {
	return fleet.Spec{
		Devices:   37,
		Classes:   fleet.DefaultMix(),
		Mode:      mode,
		Horizon:   60,
		ShardSize: 5,
		Seed:      42,
	}
}

// TestRunBitIdenticalAcrossPoolSizes pins the fleet determinism
// contract: the merged summary — accumulator bits, per-class stats,
// sketch bin counts, wait order — is identical for every worker count,
// in both kernels and both quantile modes.
func TestRunBitIdenticalAcrossPoolSizes(t *testing.T) {
	for _, mode := range []fleet.Mode{fleet.ModeCT, fleet.ModeSlot} {
		for _, quant := range []fleet.QuantileMode{fleet.QuantilesSketch, fleet.QuantilesExact} {
			spec := testSpec(mode)
			spec.Quantiles = quant
			serial, err := fleet.Run(context.Background(), spec, &engine.Pool{Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", mode, quant, err)
			}
			for _, workers := range []int{2, 4, 16} {
				pooled, err := fleet.Run(context.Background(), spec, &engine.Pool{Workers: workers})
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", mode, quant, workers, err)
				}
				if !reflect.DeepEqual(serial, pooled) {
					t.Fatalf("%s/%s: summary differs between 1 and %d workers:\n%+v\nvs\n%+v",
						mode, quant, workers, serial, pooled)
				}
			}
			if serial.Devices != int64(spec.Devices) {
				t.Fatalf("%s: %d devices simulated, want %d", mode, serial.Devices, spec.Devices)
			}
			if serial.Shards != (spec.Devices+spec.ShardSize-1)/spec.ShardSize {
				t.Fatalf("%s: %d shards, want %d", mode, serial.Shards, spec.Shards())
			}
			if serial.WaitSketch.N() != int64(spec.Devices) {
				t.Fatalf("%s: sketch pooled %d instances, want %d", mode, serial.WaitSketch.N(), spec.Devices)
			}
			if quant == fleet.QuantilesExact {
				if len(serial.Waits) != spec.Devices {
					t.Fatalf("%s: %d waits recorded, want %d", mode, len(serial.Waits), spec.Devices)
				}
			} else if serial.Waits != nil {
				t.Fatalf("%s: sketch mode retained a per-instance wait vector (%d entries)", mode, len(serial.Waits))
			}
			if serial.Events == 0 || serial.Arrived == 0 {
				t.Fatalf("%s: fleet simulated nothing: %+v", mode, serial)
			}
		}
	}
}

// TestRunIndependentOfShardSize: the shard decomposition shapes the
// merge tree, so accumulator bits may differ legally across shard
// sizes — but exact totals (counts, per-instance wait values in
// instance order) must not, and pooled moments must agree to float
// tolerance.
func TestRunIndependentOfShardSize(t *testing.T) {
	a := testSpec(fleet.ModeCT)
	a.Quantiles = fleet.QuantilesExact
	b := testSpec(fleet.ModeCT)
	b.Quantiles = fleet.QuantilesExact
	b.ShardSize = 37 // single shard: the purely sequential reduction
	sa, err := fleet.Run(context.Background(), a, nil)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := fleet.Run(context.Background(), b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Arrived != sb.Arrived || sa.Served != sb.Served || sa.Lost != sb.Lost || sa.Events != sb.Events {
		t.Fatalf("totals differ across shard sizes: %+v vs %+v", sa, sb)
	}
	if !reflect.DeepEqual(sa.Waits, sb.Waits) {
		t.Fatal("per-instance wait order differs across shard sizes")
	}
	if d := math.Abs(sa.AvgPowerW.Mean() - sb.AvgPowerW.Mean()); d > 1e-12 {
		t.Fatalf("pooled power mean differs across shard sizes by %g", d)
	}
	// The sketch's integer bin counts are exactly associative, so sketch
	// quantiles are bit-identical even across shard sizes (a stronger
	// property than the float accumulators give).
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		qa, err := sa.WaitSketch.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := sb.WaitSketch.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		if qa != qb {
			t.Fatalf("sketch quantile(%v) differs across shard sizes: %v vs %v", q, qa, qb)
		}
	}
}

// TestSketchQuantilesWithinBoundOfExact audits the sketch against exact
// order statistics on a mixed fleet: an exact-mode run carries both, and
// every sketch percentile must sit within the documented
// WaitSketchAccuracy relative bound of the order statistics bracketing
// the same rank.
func TestSketchQuantilesWithinBoundOfExact(t *testing.T) {
	spec := testSpec(fleet.ModeCT)
	spec.Devices = 600
	spec.Horizon = 30
	spec.Quantiles = fleet.QuantilesExact
	sum, err := fleet.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), sum.Waits...)
	sort.Float64s(sorted)
	n := len(sorted)
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 0.99, 1} {
		est, err := sum.WaitSketch.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		pos := q * float64(n-1)
		lo := sorted[int(math.Floor(pos))]
		hi := sorted[int(math.Ceil(pos))]
		a := fleet.WaitSketchAccuracy
		if est < lo*(1-a)-1e-12 || est > hi*(1+a)+1e-12 {
			t.Errorf("sketch quantile(%v) = %v outside [%v, %v] ± %.0f%%", q, est, lo, hi, 100*a)
		}
	}
	// The exact path must agree with a direct order-statistic
	// computation (it is the same data).
	p50, err := sum.WaitQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stats.Quantile(sum.Waits, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != want {
		t.Fatalf("exact-mode WaitQuantile %v != stats.Quantile %v", p50, want)
	}
}

// TestInstanceMatchesExperimentCTReplica pins the cross-layer contract:
// a single-class CT fleet instance with seed s is bit-identical to an
// experiment-layer CT replica built from the same ingredients — the
// fleet layer adds sharding, not semantics.
func TestInstanceMatchesExperimentCTReplica(t *testing.T) {
	psm := device.Synthetic3()
	cls := fleet.Class{Device: psm, Dist: "exp", RatePerSec: 0.2, Policy: "timeout=8"}
	spec := fleet.Spec{
		Devices: 1,
		Classes: []fleet.Class{cls},
		Mode:    fleet.ModeCT,
		Horizon: 500,
		Seed:    7,
	}
	sum, err := fleet.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}

	dev, err := experiment.CanonDevice()
	if err != nil {
		t.Fatal(err)
	}
	sc := experiment.CTScenario{
		Name:          "one",
		Device:        psm,
		QueueCap:      experiment.CanonQueueCap,
		LatencyWeight: experiment.CanonLatencyWeight / experiment.CanonSlotSeconds,
		Horizon:       500,
		Period:        experiment.CanonSlotSeconds,
		Source: func() ctsim.Source {
			d, err := dist.ByName("exp", 0.2)
			if err != nil {
				t.Fatal(err)
			}
			src, err := ctsim.NewRenewalSource(d)
			if err != nil {
				t.Fatal(err)
			}
			return src
		},
	}
	seed := engine.SeedFor(7, 0)
	m, err := experiment.RunCTOne(sc, experiment.TimeoutFactory(dev, 8), seed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.AvgPowerW.Mean(), m.AvgPowerW(); got != want {
		t.Fatalf("fleet instance power %v != experiment replica power %v", got, want)
	}
	if got, want := sum.MeanWaitSec.Mean(), m.MeanWaitSeconds(); got != want {
		t.Fatalf("fleet instance wait %v != experiment replica wait %v", got, want)
	}
	if sum.Arrived != m.Arrived || sum.Served != m.Served || sum.Lost != m.Lost {
		t.Fatalf("fleet instance counts %+v != experiment replica counts %+v", sum, m)
	}
}

// TestWeightedClassAssignment: instances spread across classes by
// weighted round-robin, exactly.
func TestWeightedClassAssignment(t *testing.T) {
	spec := testSpec(fleet.ModeCT)
	spec.Devices = 16 // 2 full weight cycles (total weight 8)
	spec.Horizon = 20
	sum, err := fleet.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantPerCycle := []int64{2, 2, 1, 3} // DefaultMix weights
	for ci, c := range sum.Classes {
		if c.Instances != 2*wantPerCycle[ci] {
			t.Fatalf("class %d (%s) got %d instances, want %d", ci, c.Name, c.Instances, 2*wantPerCycle[ci])
		}
	}
}

// TestSummaryDerivedMetrics: quantiles, per-policy rollups, and the
// fleet-total power are well-formed and internally consistent.
func TestSummaryDerivedMetrics(t *testing.T) {
	sum, err := fleet.Run(context.Background(), testSpec(fleet.ModeCT), nil)
	if err != nil {
		t.Fatal(err)
	}
	p50, err := sum.WaitQuantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p99, err := sum.WaitQuantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if p50 < 0 || p99 < p50 {
		t.Fatalf("wait quantiles disordered: p50=%v p99=%v", p50, p99)
	}
	perPol := sum.PerPolicy()
	var n int64
	for _, g := range perPol {
		n += g.Instances
	}
	if n != sum.Devices {
		t.Fatalf("per-policy rollup covers %d instances, want %d", n, sum.Devices)
	}
	// DefaultMix uses 3 distinct policies.
	if len(perPol) != 3 {
		t.Fatalf("per-policy rollup has %d groups, want 3", len(perPol))
	}
	if got, want := sum.AvgFleetPowerW(), sum.EnergyJ/(float64(sum.Devices)*sum.HorizonSec); got != want {
		t.Fatalf("AvgFleetPowerW %v inconsistent with totals %v", got, want)
	}
}

// TestRunCancellation: a cancelled context aborts the fleet promptly
// with the context error.
func TestRunCancellation(t *testing.T) {
	spec := testSpec(fleet.ModeCT)
	spec.Devices = 64
	spec.Horizon = 1e7 // far too long to finish
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fleet.Run(ctx, spec, nil); err == nil {
		t.Fatal("cancelled fleet run returned nil error")
	}
}

// TestParseMix covers the mix grammar.
func TestParseMix(t *testing.T) {
	classes, err := fleet.ParseMix("hdd:exp:0.08:timeout=8:2, wlan:hyperexp:2:q-dpm")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("parsed %d classes, want 2", len(classes))
	}
	if classes[0].Device.Name != "hdd" || classes[0].Weight != 2 || classes[0].Policy != "timeout=8" {
		t.Fatalf("class 0 misparsed: %+v", classes[0])
	}
	if classes[1].Weight != 1 {
		t.Fatalf("default weight not applied: %+v", classes[1])
	}
	for _, bad := range []string{
		"",
		"hdd:exp:0.08",                      // too few fields
		"nosuch:exp:0.1:timeout",            // unknown device
		"hdd:nosuch:0.1:timeout",            // unknown dist
		"hdd:exp:zero:timeout",              // bad rate
		"hdd:exp:0.1:nosuch",                // unknown policy
		"hdd:exp:0.1:timeout=-3",            // bad parameter
		"hdd:exp:0.1:timeout:0",             // bad weight
		"hdd:exp:0.1:timeout:1:extra-field", // too many fields
	} {
		if _, err := fleet.ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted invalid mix", bad)
		}
	}
}

// TestSpecValidate covers default filling and rejection.
func TestSpecValidate(t *testing.T) {
	sp := fleet.Spec{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 100}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if sp.Mode != fleet.ModeCT || sp.Period != 0.5 || sp.QueueCap != 8 || sp.ShardSize == 0 {
		t.Fatalf("defaults not filled: %+v", sp)
	}
	if sp.Quantiles != fleet.QuantilesSketch {
		t.Fatalf("quantile default %q, want %q", sp.Quantiles, fleet.QuantilesSketch)
	}
	bad := []fleet.Spec{
		{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 100, Quantiles: "approximate"},
		{Devices: 0, Classes: fleet.DefaultMix(), Horizon: 100},
		{Devices: 10, Horizon: 100},
		{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 0},
		{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 100, Mode: "quantum"},
		{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 100, Period: -1},
		{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 100, QueueCap: -1},
		{Devices: 10, Classes: fleet.DefaultMix(), Horizon: 100, ShardSize: -1},
		{Devices: 10, Classes: []fleet.Class{{Device: device.HDD(), Dist: "exp", RatePerSec: -1, Policy: "timeout"}}, Horizon: 100},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, bad[i])
		}
	}
}
