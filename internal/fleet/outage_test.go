package fleet

import (
	"testing"

	"repro/internal/eventq"
)

// toggleRecorder captures every SetDown edge with its timestamp.
type toggleRecorder struct {
	times []float64
	downs []bool
}

func (r *toggleRecorder) SetDown(down bool, now float64) {
	r.times = append(r.times, now)
	r.downs = append(r.downs, down)
}

// driveOutages runs an outageDriver against a fresh heap kernel to the
// given horizon and returns the recorded toggle sequence.
func driveOutages(t *testing.T, period, dur, horizon float64) *toggleRecorder {
	t.Helper()
	k := eventq.New()
	rec := &toggleRecorder{}
	var o outageDriver
	o.start(k, rec, period, dur, horizon)
	if err := k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestOutageDriverHorizonEdgeAlignedStart: a window whose down edge
// lands exactly on the horizon still fires (the kernel runs events at
// t == horizon inclusive), and its up edge — past the horizon — never
// does: the resource ends the run down. The coupled shard loop
// tolerates this because the resource is Reset for the next group.
func TestOutageDriverHorizonEdgeAlignedStart(t *testing.T) {
	rec := driveOutages(t, 10, 2, 10)
	if len(rec.downs) != 1 || !rec.downs[0] || rec.times[0] != 10 {
		t.Fatalf("toggles = %v @ %v, want single down edge at t=10", rec.downs, rec.times)
	}
}

// TestOutageDriverHorizonEdgeAlignedEnd: a window whose up edge lands
// exactly on the horizon closes — the run ends with the resource back
// up and both edges recorded.
func TestOutageDriverHorizonEdgeAlignedEnd(t *testing.T) {
	rec := driveOutages(t, 10, 2, 12)
	want := []float64{10, 12}
	if len(rec.times) != 2 || rec.times[0] != want[0] || rec.times[1] != want[1] ||
		!rec.downs[0] || rec.downs[1] {
		t.Fatalf("toggles = %v @ %v, want down@10 up@12", rec.downs, rec.times)
	}
}

// TestOutageDriverZeroDurationWindow: duration 0 is rejected by
// FaultSpec validation, but the driver itself must stay well defined
// under it (defensive: the spec floor could change): each window
// degenerates to a down edge immediately followed by an up edge at the
// same instant — ordered by the kernel's seq tie-break — and the chain
// still advances one full period per window instead of spinning.
func TestOutageDriverZeroDurationWindow(t *testing.T) {
	rec := driveOutages(t, 10, 0, 25)
	wantTimes := []float64{10, 10, 20, 20}
	wantDowns := []bool{true, false, true, false}
	if len(rec.times) != len(wantTimes) {
		t.Fatalf("toggles = %v @ %v, want down/up blinks at t=10 and t=20", rec.downs, rec.times)
	}
	for i := range wantTimes {
		if rec.times[i] != wantTimes[i] || rec.downs[i] != wantDowns[i] {
			t.Fatalf("toggle %d = (%v, %v), want (%v, %v)",
				i, rec.downs[i], rec.times[i], wantDowns[i], wantTimes[i])
		}
	}
}

// TestOutageDriverPeriodBeyondHorizon: a period past the horizon arms
// nothing — no toggle events enter the kernel at all.
func TestOutageDriverPeriodBeyondHorizon(t *testing.T) {
	rec := driveOutages(t, 10, 2, 9.5)
	if len(rec.times) != 0 {
		t.Fatalf("toggles = %v @ %v, want none", rec.downs, rec.times)
	}
}

// TestOutageDriverSteadyCadence: the reference cadence — windows
// [k·period, k·period+dur) for k ≥ 1, strictly alternating edges, up
// edges period−dur before the next down edge.
func TestOutageDriverSteadyCadence(t *testing.T) {
	rec := driveOutages(t, 10, 3, 35)
	wantTimes := []float64{10, 13, 20, 23, 30, 33}
	if len(rec.times) != len(wantTimes) {
		t.Fatalf("%d toggles, want %d: %v", len(rec.times), len(wantTimes), rec.times)
	}
	for i, wt := range wantTimes {
		wantDown := i%2 == 0
		if rec.times[i] != wt || rec.downs[i] != wantDown {
			t.Fatalf("toggle %d = (%v, %v), want (%v, %v)",
				i, rec.downs[i], rec.times[i], wantDown, wt)
		}
	}
}
