package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// FaultSpec configures deterministic fault injection for a fleet run
// (Spec.Faults; nil disables the layer — a fault-free run's output is
// byte-identical to a build without the fault code). Crash and retry
// faults apply per instance from a dedicated per-instance fault rng
// lane; outage windows apply to each coupled group's shared resource.
// CT mode only.
type FaultSpec struct {
	// CrashMTBF is each instance's mean operating time between crashes
	// in seconds (exponential; 0 disables crashes).
	CrashMTBF float64
	// RepairMean is the mean repair (downtime) duration in seconds
	// (default 10 when CrashMTBF > 0).
	RepairMean float64
	// FailProb is the probability a completed service attempt fails
	// transiently, in [0, 1) (0 disables transient failures).
	FailProb float64
	// RetryMax is the per-request retry budget (default 3 when
	// FailProb > 0); failure RetryMax+1 drops the request as lost.
	RetryMax int
	// Backoff is the delay before the first retry in seconds, doubling
	// per consecutive failure (default: the governor period).
	Backoff float64
	// OutagePeriod schedules an outage window on each coupled group's
	// shared resource every OutagePeriod seconds (0 disables; > 0
	// requires Spec.Couple). The first window opens at t=OutagePeriod.
	OutagePeriod float64
	// OutageDuration is each window's length in seconds (default
	// OutagePeriod/10; must be < OutagePeriod).
	OutageDuration float64
	// BrownoutFrac scales the CouplePower cap during an outage window,
	// in (0, 1] (default 0.5). Ignored for channel/gateway coupling.
	BrownoutFrac float64
}

const (
	defaultRepairMean   = 10
	defaultRetryMax     = 3
	defaultBrownoutFrac = 0.5
)

// validate checks the fault spec against its enclosing fleet spec and
// fills defaults (mutating the receiver). period and couple are the
// enclosing spec's already-defaulted values.
func (f *FaultSpec) validate(mode Mode, period float64, couple CoupleMode) error {
	if mode != ModeCT {
		return fmt.Errorf("fleet: faults require CT mode (slot mode has no service-completion hook)")
	}
	if f.CrashMTBF < 0 || math.IsNaN(f.CrashMTBF) || math.IsInf(f.CrashMTBF, 0) {
		return fmt.Errorf("fleet: crash MTBF %v must be >= 0 and finite", f.CrashMTBF)
	}
	if f.CrashMTBF > 0 {
		if f.RepairMean == 0 {
			f.RepairMean = defaultRepairMean
		}
		if !(f.RepairMean > 0) || math.IsInf(f.RepairMean, 0) {
			return fmt.Errorf("fleet: repair mean %v must be positive and finite", f.RepairMean)
		}
	}
	if !(f.FailProb >= 0 && f.FailProb < 1) {
		return fmt.Errorf("fleet: failure probability %v must be in [0, 1)", f.FailProb)
	}
	if f.FailProb > 0 {
		if f.RetryMax == 0 {
			f.RetryMax = defaultRetryMax
		}
		if f.RetryMax < 0 || f.RetryMax > 62 {
			return fmt.Errorf("fleet: retry budget %d must be in [1, 62] (0 takes the default)", f.RetryMax)
		}
		if f.Backoff == 0 {
			f.Backoff = period
		}
		if !(f.Backoff > 0) || math.IsInf(f.Backoff, 0) {
			return fmt.Errorf("fleet: retry backoff %v must be positive and finite", f.Backoff)
		}
	}
	if f.OutagePeriod < 0 || math.IsNaN(f.OutagePeriod) || math.IsInf(f.OutagePeriod, 0) {
		return fmt.Errorf("fleet: outage period %v must be >= 0 and finite", f.OutagePeriod)
	}
	if f.OutagePeriod > 0 {
		if couple == CoupleNone {
			return fmt.Errorf("fleet: outage windows act on the shared resource — they require a couple mode")
		}
		if f.OutageDuration == 0 {
			f.OutageDuration = f.OutagePeriod / 10
		}
		if !(f.OutageDuration > 0) || f.OutageDuration >= f.OutagePeriod {
			return fmt.Errorf("fleet: outage duration %v must be in (0, period %v)", f.OutageDuration, f.OutagePeriod)
		}
		if f.BrownoutFrac == 0 {
			f.BrownoutFrac = defaultBrownoutFrac
		}
		if !(f.BrownoutFrac > 0 && f.BrownoutFrac <= 1) {
			return fmt.Errorf("fleet: brownout fraction %v must be in (0, 1]", f.BrownoutFrac)
		}
	} else if f.OutageDuration != 0 {
		return fmt.Errorf("fleet: outage duration %v set without an outage period", f.OutageDuration)
	}
	if f.CrashMTBF == 0 && f.FailProb == 0 && f.OutagePeriod == 0 {
		return fmt.Errorf("fleet: fault spec enables nothing (set mtbf, fail, or outage)")
	}
	return nil
}

// crashOrRetry reports whether the spec enables any per-instance fault
// (as opposed to outage windows only, which live on the shared
// resource and need no per-instance fault state).
func (f *FaultSpec) crashOrRetry() bool {
	return f != nil && (f.CrashMTBF > 0 || f.FailProb > 0)
}

// ParseFaults parses the qdpm-fleet -faults value: comma-separated
// key=value pairs, e.g.
//
//	mtbf=150,repair=10,fail=0.05,retries=3,backoff=0.5,outage=60/5,brownout=0.5
//
// Keys: mtbf (crash MTBF s), repair (mean repair s), fail (transient
// failure probability), retries (retry budget), backoff (first-retry
// delay s), outage (window period s, optionally period/duration),
// brownout (power-cap fraction during windows). Unset keys take the
// FaultSpec defaults; validation happens in Spec.Validate.
func ParseFaults(s string) (*FaultSpec, error) {
	f := &FaultSpec{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: -faults term %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fleet: -faults retries %q: %w", val, err)
			}
			f.RetryMax = n
		case "outage":
			per, dur, found := strings.Cut(val, "/")
			v, err := strconv.ParseFloat(per, 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: -faults outage period %q: %w", per, err)
			}
			f.OutagePeriod = v
			if found {
				if v, err = strconv.ParseFloat(dur, 64); err != nil {
					return nil, fmt.Errorf("fleet: -faults outage duration %q: %w", dur, err)
				}
				f.OutageDuration = v
			}
		case "mtbf", "repair", "fail", "backoff", "brownout":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fleet: -faults %s %q: %w", key, val, err)
			}
			switch key {
			case "mtbf":
				f.CrashMTBF = v
			case "repair":
				f.RepairMean = v
			case "fail":
				f.FailProb = v
			case "backoff":
				f.Backoff = v
			case "brownout":
				f.BrownoutFrac = v
			}
		default:
			return nil, fmt.Errorf("fleet: -faults key %q unknown (want mtbf, repair, fail, retries, backoff, outage, brownout)", key)
		}
	}
	if *f == (FaultSpec{}) {
		return nil, fmt.Errorf("fleet: -faults enables nothing (set mtbf, fail, or outage)")
	}
	return f, nil
}

// String renders the spec in ParseFaults form (round-trippable).
func (f *FaultSpec) String() string {
	var b strings.Builder
	add := func(k string, v float64) {
		if v != 0 {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%g", k, v)
		}
	}
	add("mtbf", f.CrashMTBF)
	add("repair", f.RepairMean)
	add("fail", f.FailProb)
	if f.RetryMax != 0 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "retries=%d", f.RetryMax)
	}
	add("backoff", f.Backoff)
	if f.OutagePeriod != 0 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if f.OutageDuration != 0 {
			fmt.Fprintf(&b, "outage=%g/%g", f.OutagePeriod, f.OutageDuration)
		} else {
			fmt.Fprintf(&b, "outage=%g", f.OutagePeriod)
		}
	}
	add("brownout", f.BrownoutFrac)
	return b.String()
}
