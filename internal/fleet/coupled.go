// Coupled mode: groups of Spec.CoupleSize consecutive instances advance
// on ONE shared event kernel, their event streams interleaved by the
// kernel's (time, seq) order, with a shared resource (internal/shared)
// arbitrating service starts and power commands. Coupling lives
// strictly within a shard — Validate guarantees ShardSize is a multiple
// of CoupleSize — so shards stay independent and the bit-identical
// -parallel contract is untouched: a shard's result is a pure function
// of the spec and the shard index, whatever worker runs it.
//
// Determinism inside a group: lanes are built/reset in ascending
// instance order, so their initial events claim kernel sequence numbers
// in that order and every same-time tie (the time-0 ticks, synchronized
// period boundaries) breaks FIFO by instance index, every run. Resource
// wait queues grant FIFO and run synchronously on the event loop, so
// the interleaving — and therefore every metric — is reproducible bit
// for bit.
//
// Reuse contract: the group kernel, the lanes (simulator + per-class
// policy/source/config + streams), and the shared resource all persist
// across every group the worker runs, reset in place per group; after
// warm-up a full group lifecycle performs zero heap allocations
// (TestFleetCoupledShardAllocationFree).
package fleet

import (
	"context"
	"fmt"

	"repro/internal/ctsim"
	"repro/internal/engine"
	"repro/internal/eventq"
	"repro/internal/rng"
	"repro/internal/shared"
)

// newKernel builds a CT event kernel of the spec's KernelKind for a
// kernel that will carry groupSize concurrent instances (1 for the
// uncoupled one-sim-per-kernel loop), resolving KernelAuto through the
// measured decision table (kernelFor). An explicit -kernel always wins.
func (r *runner) newKernel(groupSize int) *eventq.Kernel {
	k := r.spec.Kernel
	if k == KernelAuto {
		k = kernelFor(groupSize)
	}
	if k == KernelCalendar {
		return eventq.NewCalendar()
	}
	return eventq.New()
}

// kernelFor is the KernelAuto decision table, measured on the coupled
// workload itself rather than extrapolated from the uniform-random
// microbenchmark (regenerate with
// `go test -bench BenchmarkFleetCoupledKernelSweep -benchtime 5x .`):
// the 4-ary heap wins at every measured group size (K = 8 … 512, and
// trivially for uncoupled kernels), and its lead WIDENS with K — a
// coupled group's events cluster at synchronized governor ticks, which
// degrade the calendar's sorted bucket chains to O(K) per insert
// (O(K²) per tick instant), swamping the O(1) dequeue that lets the
// calendar win the ≥1k-standing-event uniform-random regime (DESIGN.md
// §7). The calendar therefore never auto-selects today; the function
// exists so a future remeasurement has one place to change.
func kernelFor(groupSize int) KernelKind {
	return KernelHeap
}

// laneScratch is one lane of a coupled group: the pooled simulator and
// per-class object set for whatever instance currently occupies the
// lane, with the lane's own rng streams (lanes are live concurrently in
// event time, so unlike the uncoupled worker they cannot share one
// stream set).
type laneScratch struct {
	sim     *ctsim.Sim
	classes []classScratch

	root        rng.Stream
	polStream   rng.Stream
	simStream   rng.Stream
	faultStream rng.Stream
}

// classState returns the lane's pooled objects for class ci, building
// them on first use with the lane's streams and the group resource.
func (ls *laneScratch) classState(r *runner, ci int, res ctsim.Resource) (*classScratch, error) {
	if ls.classes == nil {
		ls.classes = make([]classScratch, len(r.classes))
	}
	cs := &ls.classes[ci]
	if cs.pol != nil {
		return cs, nil
	}
	if err := cs.build(r, ci, &ls.polStream, &ls.simStream, &ls.faultStream, res); err != nil {
		// Discard the half-built set (see workerScratch.classState): the
		// memo keys on cs.pol, and a partial scratch must not be handed
		// out as complete to the lane's next instance of this class.
		*cs = classScratch{}
		return nil, err
	}
	return cs, nil
}

// coupledScratch is one worker's reusable coupled-group state.
type coupledScratch struct {
	kernel *eventq.Kernel
	lanes  []laneScratch
	// Exactly one of the three is non-nil, per Spec.Couple.
	channel *shared.Channel
	gateway *shared.Gateway
	budget  *shared.PowerBudget
	// outage drives the group resource's scheduled outage windows
	// (Spec.Faults.OutagePeriod > 0); reused across groups.
	outage outageDriver
}

// outageDriver schedules a shared resource's outage windows on the
// group kernel: one chained toggle event flips the resource down at
// each window start ([k·period, k·period + duration) for k ≥ 1, first
// window at t=period) and up at its end. Toggles are ordinary kernel
// events, so they interleave with the lanes' events in deterministic
// (time, seq) order and recycle one pooled event slot — the outage
// path allocates nothing in steady state.
type outageDriver struct {
	k       *eventq.Kernel
	res     shared.Outageable
	period  float64
	dur     float64
	horizon float64
	down    bool
	hToggle eventq.Handler // bound once; reused across groups
}

// start arms the driver for a new group run on kernel k. Call after
// the group's lanes have scheduled their initial events (toggle seq
// numbers follow them; interleaving stays deterministic either way).
func (o *outageDriver) start(k *eventq.Kernel, res shared.Outageable, period, dur, horizon float64) {
	o.k, o.res = k, res
	o.period, o.dur, o.horizon = period, dur, horizon
	o.down = false
	if o.hToggle == nil {
		o.hToggle = o.toggle
	}
	if period <= horizon {
		o.k.Schedule(period, o.hToggle)
	}
}

// toggle flips the resource state and chains the next flip.
func (o *outageDriver) toggle(now float64) {
	var next float64
	if !o.down {
		o.down = true
		o.res.SetDown(true, now)
		next = now + o.dur
	} else {
		o.down = false
		o.res.SetDown(false, now)
		next = now + o.period - o.dur
	}
	if next <= o.horizon {
		o.k.Schedule(next, o.hToggle)
	}
}

// resource returns the worker's shared resource, building it on first
// use and resetting it for a new group otherwise. capW is the group's
// power cap (CouplePower only).
func (cs *coupledScratch) resource(r *runner, capW float64) ctsim.Resource {
	switch r.spec.Couple {
	case CoupleChannel:
		if cs.channel == nil {
			cs.channel = shared.NewChannel()
		} else {
			cs.channel.Reset()
		}
		return cs.channel
	case CoupleGateway:
		if cs.gateway == nil {
			cs.gateway = shared.NewGateway(1, r.spec.GatewayWait)
		} else {
			cs.gateway.Reset()
		}
		return cs.gateway
	case CouplePower:
		if cs.budget == nil {
			cs.budget = shared.NewPowerBudget(capW)
		} else {
			cs.budget.Reset(capW)
		}
		return cs.budget
	}
	panic("fleet: coupled shard loop without a couple mode")
}

// runShardCoupled executes one shard as a sequence of coupled groups.
// Groups are aligned to absolute instance index (Validate guarantees
// ShardSize is a multiple of CoupleSize, so group boundaries are a pure
// function of the spec); only the fleet's trailing group can be
// partial. Results land in the worker's row store and fold into the
// summary in ascending instance order, exactly like the uncoupled
// shard loop.
func (r *runner) runShardCoupled(ctx context.Context, shard int, ws *workerScratch) (*Summary, error) {
	lo := shard * r.spec.ShardSize
	hi := lo + r.spec.ShardSize
	if hi > r.spec.Devices {
		hi = r.spec.Devices
	}
	n := hi - lo
	if cap(ws.results) < n {
		ws.results = make([]instanceResult, n)
	}
	res := ws.results[:n]
	for glo := lo; glo < hi; glo += r.spec.CoupleSize {
		ghi := glo + r.spec.CoupleSize
		if ghi > hi {
			ghi = hi
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := r.runGroupCT(ctx, glo, ghi, ws, res[glo-lo:ghi-lo]); err != nil {
			return nil, fmt.Errorf("fleet: coupled group [%d,%d): %w", glo, ghi, err)
		}
	}
	sum := r.takeSummary(n)
	for i := lo; i < hi; i++ {
		sum.addInstance(r.classOf(i), res[i-lo])
	}
	return sum, nil
}

// runGroupCT runs one coupled group — instances [lo, hi) on one shared
// kernel and resource — and writes one result row per instance. The
// group's kernel event total is attributed to the first lane's row
// (per-lane event counts do not exist on a shared kernel), so fleet
// and class Events totals stay exact while per-instance attribution is
// only group-resolution.
func (r *runner) runGroupCT(ctx context.Context, lo, hi int, ws *workerScratch, out []instanceResult) error {
	n := hi - lo
	cs := &ws.coupled
	if cs.kernel == nil {
		cs.kernel = r.newKernel(r.spec.CoupleSize)
	} else {
		cs.kernel.Reset()
	}
	var capW float64
	if r.spec.Couple == CouplePower {
		for i := lo; i < hi; i++ {
			capW += r.classes[r.classOf(i)].maxPower
		}
		capW *= r.spec.BudgetFrac
	}
	resource := cs.resource(r, capW)
	outages := r.spec.Faults != nil && r.spec.Faults.OutagePeriod > 0
	if outages && cs.budget != nil {
		cs.budget.SetBrownoutFrac(r.spec.Faults.BrownoutFrac)
	}
	if len(cs.lanes) < n {
		cs.lanes = append(cs.lanes, make([]laneScratch, n-len(cs.lanes))...)
	}
	// Build/reset lanes in ascending instance order: each lane's initial
	// events claim kernel seq numbers in that order, which fixes the FIFO
	// tie-break for all same-time events across the group.
	for j := 0; j < n; j++ {
		i := lo + j
		ln := &cs.lanes[j]
		lcs, err := ln.classState(r, r.classOf(i), resource)
		if err != nil {
			return err
		}
		ln.root.Reseed(engine.SeedFor(r.spec.Seed, uint64(i)))
		ln.root.SplitInto(&ln.polStream)
		ln.root.SplitInto(&ln.simStream)
		if r.spec.Faults.crashOrRetry() {
			ln.root.SplitInto(&ln.faultStream)
		}
		lcs.resetPol(&ln.polStream)
		lcs.src.Reset()
		if ln.sim == nil {
			if ln.sim, err = ctsim.NewShared(cs.kernel, lcs.cfg); err != nil {
				return err
			}
			ln.sim.SetHorizonHint(r.spec.Horizon)
		} else if err = ln.sim.ResetValidated(lcs.cfg); err != nil {
			return err
		}
		if cs.budget != nil {
			cs.budget.Register(lcs.cfg.Device.States[lcs.cfg.InitialState].Power)
		}
	}
	// Arm the outage windows after the lanes' initial events so lane
	// seq order (the FIFO tie-break) is unchanged by enabling them.
	if outages {
		cs.outage.start(cs.kernel, resource.(shared.Outageable),
			r.spec.Faults.OutagePeriod, r.spec.Faults.OutageDuration, r.spec.Horizon)
	}
	// Drive the shared kernel directly (the per-sim Run wrappers assume a
	// private kernel), in the same cancellation chunks as the uncoupled
	// loop.
	chunk := r.spec.Period * cancelChunkTicks
	for until := chunk; ; until += chunk {
		if until > r.spec.Horizon {
			until = r.spec.Horizon
		}
		if err := cs.kernel.Run(until); err != nil {
			return err
		}
		if until >= r.spec.Horizon {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for j := 0; j < n; j++ {
		cc := &r.classes[r.classOf(lo+j)]
		m := cs.lanes[j].sim.MetricsView()
		o := &out[j]
		avgPower := m.AvgPowerW()
		o.avgPowerW = avgPower
		o.energyRed = 1 - avgPower/cc.maxPower
		o.meanWaitSec = m.MeanWaitSeconds()
		o.lossRate = m.LossRate()
		o.energyJ = m.EnergyJ
		o.arrived = m.Arrived
		o.served = m.Served
		o.lost = m.Lost
		o.resourceWaitSec = m.ResourceWaitSec
		o.resourceDrops = m.ResourceDrops
		o.budgetDenied = m.BudgetDenied
		o.downtimeSec = m.DowntimeSec
		o.energyOutageJ = m.EnergyOutageJ
		o.crashes = m.Crashes
		o.retries = m.Retries
		o.retryExhausted = m.RetryExhausted
		o.lostToOutage = m.LostToOutage
		o.events = 0
		if j == 0 {
			o.events = cs.kernel.Fired()
		}
	}
	return nil
}
