package fleet

import (
	"fmt"

	"repro/internal/stats"
)

// ClassStats aggregates the per-instance results of one class (or one
// policy rollup). Each Running pools one sample per instance.
type ClassStats struct {
	// Name labels the group (a Class label or a policy name).
	Name string
	// Policy is the group's policy label (for per-policy rollups it
	// equals Name).
	Policy string
	// Instances is the number of pooled instances.
	Instances int64
	// AvgPowerW, EnergyReduction, MeanWaitSec, and LossRate pool
	// per-instance values; EnergyReduction is relative to each class's
	// always-on power.
	AvgPowerW       stats.Running
	EnergyReduction stats.Running
	MeanWaitSec     stats.Running
	LossRate        stats.Running
	// Interference aggregates, populated only by coupled runs
	// (Spec.Couple): ResourceWaitSec pools each instance's total time
	// spent queued for the shared resource; ResourceDrops counts
	// requests the shared gateway rejected; BudgetDenied counts
	// power-state commands the shared budget vetoed. All zero on an
	// uncoupled run.
	ResourceWaitSec stats.Running
	ResourceDrops   int64
	BudgetDenied    int64
	// Resilience aggregates, populated only by faulted runs
	// (Spec.Faults): DowntimeSec pools each instance's crashed time;
	// EnergyOutageJ totals energy burned while fault-stalled; the
	// counters total crashes, retried failures, retry-budget
	// exhaustions, and outage losses. All zero on a fault-free run.
	DowntimeSec    stats.Running
	EnergyOutageJ  float64
	Crashes        int64
	Retries        int64
	RetryExhausted int64
	LostToOutage   int64
}

// Availability returns the mean fraction of the horizon the group's
// instances were up (1 on a fault-free run).
func (c *ClassStats) Availability(horizonSec float64) float64 {
	if horizonSec == 0 {
		return 1
	}
	return 1 - c.DowntimeSec.Mean()/horizonSec
}

// merge folds another group (same identity) into c.
func (c *ClassStats) merge(o *ClassStats) {
	if c.Name == "" {
		c.Name, c.Policy = o.Name, o.Policy
	}
	c.Instances += o.Instances
	c.AvgPowerW.Merge(&o.AvgPowerW)
	c.EnergyReduction.Merge(&o.EnergyReduction)
	c.MeanWaitSec.Merge(&o.MeanWaitSec)
	c.LossRate.Merge(&o.LossRate)
	c.ResourceWaitSec.Merge(&o.ResourceWaitSec)
	c.ResourceDrops += o.ResourceDrops
	c.BudgetDenied += o.BudgetDenied
	c.DowntimeSec.Merge(&o.DowntimeSec)
	c.EnergyOutageJ += o.EnergyOutageJ
	c.Crashes += o.Crashes
	c.Retries += o.Retries
	c.RetryExhausted += o.RetryExhausted
	c.LostToOutage += o.LostToOutage
}

// instanceResult is one instance's contribution to the aggregates.
type instanceResult struct {
	avgPowerW, energyRed, meanWaitSec, lossRate, energyJ float64
	arrived, served, lost                                int64
	events                                               uint64
	// Interference fields, zero unless the run is coupled.
	resourceWaitSec             float64
	resourceDrops, budgetDenied int64
	// Resilience fields, zero unless the run is faulted.
	downtimeSec, energyOutageJ                     float64
	crashes, retries, retryExhausted, lostToOutage int64
}

// Summary aggregates a fleet run (or a shard of one — shards stream
// Summary values that Merge into the fleet total in shard-index order).
//
// Merge contract: a Summary is a merge tree over per-instance samples.
// The tree's shape is the shard decomposition plus the shard-index
// reduction order, both pure functions of the Spec, so the merged result
// is bit-identical for every worker count. Per-instance wait means feed
// the mergeable WaitSketch (whose integer bin counts are bit-identical
// under any merge order); the exact opt-in (Spec.Quantiles ==
// QuantilesExact) additionally keeps them in instance order in Waits.
type Summary struct {
	// Mode is the kernel the fleet ran on.
	Mode Mode
	// Devices is the number of simulated instances; Shards is the number
	// of pool jobs they were sharded into (0 on a shard-local summary).
	Devices int64
	Shards  int
	// HorizonSec is each instance's simulated length in seconds.
	HorizonSec float64
	// Couple and CoupleSize echo the spec's coupling configuration
	// (CoupleNone / 0 on an uncoupled run) so report layers can gate
	// the interference columns without re-threading the spec.
	Couple     CoupleMode
	CoupleSize int
	// Faulted echoes whether the spec enabled fault injection, so
	// report layers can gate the resilience columns.
	Faulted bool
	// EnergyJ is the fleet-total energy; Arrived/Served/Lost are
	// fleet-total request counts; Events is the fleet-total kernel event
	// count (CT mode) or slot count (slot mode).
	EnergyJ               float64
	Arrived, Served, Lost int64
	Events                uint64
	// AvgPowerW, EnergyReduction, MeanWaitSec, and LossRate pool one
	// sample per instance, fleet-wide.
	AvgPowerW       stats.Running
	EnergyReduction stats.Running
	MeanWaitSec     stats.Running
	LossRate        stats.Running
	// ResourceWaitSec pools each instance's total time queued for the
	// shared resource, fleet-wide; ResourceDrops and BudgetDenied are
	// fleet-total interference counts. All zero on an uncoupled run
	// (see ClassStats for the per-class breakdown).
	ResourceWaitSec stats.Running
	ResourceDrops   int64
	BudgetDenied    int64
	// Resilience aggregates, fleet-wide (see ClassStats): all zero on a
	// fault-free run.
	DowntimeSec    stats.Running
	EnergyOutageJ  float64
	Crashes        int64
	Retries        int64
	RetryExhausted int64
	LostToOutage   int64
	// Classes aggregates per class, index-aligned with Spec.Classes.
	Classes []ClassStats
	// WaitSketch pools every instance's mean wait (seconds) in a
	// log-binned sketch with relative accuracy WaitSketchAccuracy.
	WaitSketch *stats.QuantileSketch
	// Waits holds every instance's mean wait in seconds, in instance
	// order (shard merges concatenate in shard order). Populated only
	// under QuantilesExact; nil in sketch mode, where memory must stay
	// independent of the device count.
	Waits []float64
}

// newSummary returns an empty summary shaped for r's class list, with
// Waits capacity for n instances when the spec asks for exact
// quantiles.
func newSummary(r *runner, n int) *Summary {
	sk, err := stats.NewQuantileSketch(WaitSketchAccuracy)
	if err != nil {
		panic("fleet: wait sketch accuracy invalid: " + err.Error())
	}
	s := &Summary{
		Mode:       r.spec.Mode,
		HorizonSec: r.spec.Horizon,
		Couple:     r.spec.Couple,
		CoupleSize: r.spec.CoupleSize,
		Faulted:    r.spec.Faults != nil,
		Classes:    make([]ClassStats, len(r.classes)),
		WaitSketch: sk,
	}
	if r.spec.Quantiles == QuantilesExact {
		s.Waits = make([]float64, 0, n)
	}
	for ci := range r.classes {
		s.Classes[ci].Name = r.classes[ci].name
		s.Classes[ci].Policy = r.classes[ci].src.Policy
	}
	return s
}

// reset returns s to the empty state newSummary(r, n) produces while
// keeping every allocation at capacity: the class slice, the sketch's
// bin array, and the exact-mode waits buffer. A reset summary folds and
// merges bit-identically to a fresh one — this is what licenses the
// shard-summary pool (runner.takeSummary), which keeps per-shard
// summary construction off the allocator so fleet allocs scale with
// classes, not shards run.
func (s *Summary) reset(r *runner, n int) {
	s.Mode = r.spec.Mode
	s.Devices = 0
	s.Shards = 0
	s.HorizonSec = r.spec.Horizon
	s.Couple = r.spec.Couple
	s.CoupleSize = r.spec.CoupleSize
	s.Faulted = r.spec.Faults != nil
	s.EnergyJ = 0
	s.Arrived, s.Served, s.Lost = 0, 0, 0
	s.Events = 0
	s.AvgPowerW = stats.Running{}
	s.EnergyReduction = stats.Running{}
	s.MeanWaitSec = stats.Running{}
	s.LossRate = stats.Running{}
	s.ResourceWaitSec = stats.Running{}
	s.ResourceDrops = 0
	s.BudgetDenied = 0
	s.DowntimeSec = stats.Running{}
	s.EnergyOutageJ = 0
	s.Crashes, s.Retries, s.RetryExhausted, s.LostToOutage = 0, 0, 0, 0
	for ci := range s.Classes {
		c := &s.Classes[ci]
		c.Instances = 0
		c.AvgPowerW = stats.Running{}
		c.EnergyReduction = stats.Running{}
		c.MeanWaitSec = stats.Running{}
		c.LossRate = stats.Running{}
		c.ResourceWaitSec = stats.Running{}
		c.ResourceDrops = 0
		c.BudgetDenied = 0
		c.DowntimeSec = stats.Running{}
		c.EnergyOutageJ = 0
		c.Crashes, c.Retries, c.RetryExhausted, c.LostToOutage = 0, 0, 0, 0
	}
	s.WaitSketch.Reset()
	if r.spec.Quantiles == QuantilesExact {
		if cap(s.Waits) < n {
			s.Waits = make([]float64, 0, n)
		} else {
			s.Waits = s.Waits[:0]
		}
	} else {
		s.Waits = nil
	}
}

// addInstance folds one instance's results into the summary.
func (s *Summary) addInstance(class int, ir instanceResult) {
	s.Devices++
	s.EnergyJ += ir.energyJ
	s.Arrived += ir.arrived
	s.Served += ir.served
	s.Lost += ir.lost
	s.Events += ir.events
	s.AvgPowerW.Add(ir.avgPowerW)
	s.EnergyReduction.Add(ir.energyRed)
	s.MeanWaitSec.Add(ir.meanWaitSec)
	s.LossRate.Add(ir.lossRate)
	s.ResourceWaitSec.Add(ir.resourceWaitSec)
	s.ResourceDrops += ir.resourceDrops
	s.BudgetDenied += ir.budgetDenied
	s.DowntimeSec.Add(ir.downtimeSec)
	s.EnergyOutageJ += ir.energyOutageJ
	s.Crashes += ir.crashes
	s.Retries += ir.retries
	s.RetryExhausted += ir.retryExhausted
	s.LostToOutage += ir.lostToOutage
	c := &s.Classes[class]
	c.Instances++
	c.AvgPowerW.Add(ir.avgPowerW)
	c.EnergyReduction.Add(ir.energyRed)
	c.MeanWaitSec.Add(ir.meanWaitSec)
	c.LossRate.Add(ir.lossRate)
	c.ResourceWaitSec.Add(ir.resourceWaitSec)
	c.ResourceDrops += ir.resourceDrops
	c.BudgetDenied += ir.budgetDenied
	c.DowntimeSec.Add(ir.downtimeSec)
	c.EnergyOutageJ += ir.energyOutageJ
	c.Crashes += ir.crashes
	c.Retries += ir.retries
	c.RetryExhausted += ir.retryExhausted
	c.LostToOutage += ir.lostToOutage
	s.WaitSketch.Add(ir.meanWaitSec)
	if s.Waits != nil {
		s.Waits = append(s.Waits, ir.meanWaitSec)
	}
}

// Merge folds another summary (same spec shape) into s; fleet totals
// add, the pooled accumulators take the parallel Welford merge, and o's
// waits append after s's. Merging shard summaries in shard-index order
// is the engine's sequential reduction, so the result is independent of
// which workers ran which shards.
func (s *Summary) Merge(o *Summary) {
	if s.Mode == "" {
		s.Mode, s.HorizonSec = o.Mode, o.HorizonSec
		s.Couple, s.CoupleSize = o.Couple, o.CoupleSize
		s.Faulted = o.Faulted
	}
	s.Devices += o.Devices
	s.Shards += o.Shards
	s.EnergyJ += o.EnergyJ
	s.Arrived += o.Arrived
	s.Served += o.Served
	s.Lost += o.Lost
	s.Events += o.Events
	s.AvgPowerW.Merge(&o.AvgPowerW)
	s.EnergyReduction.Merge(&o.EnergyReduction)
	s.MeanWaitSec.Merge(&o.MeanWaitSec)
	s.LossRate.Merge(&o.LossRate)
	s.ResourceWaitSec.Merge(&o.ResourceWaitSec)
	s.ResourceDrops += o.ResourceDrops
	s.BudgetDenied += o.BudgetDenied
	s.DowntimeSec.Merge(&o.DowntimeSec)
	s.EnergyOutageJ += o.EnergyOutageJ
	s.Crashes += o.Crashes
	s.Retries += o.Retries
	s.RetryExhausted += o.RetryExhausted
	s.LostToOutage += o.LostToOutage
	if len(s.Classes) == 0 {
		s.Classes = make([]ClassStats, len(o.Classes))
	}
	for i := range o.Classes {
		s.Classes[i].merge(&o.Classes[i])
	}
	switch {
	case o.WaitSketch == nil:
	case s.WaitSketch == nil:
		s.WaitSketch = o.WaitSketch.Clone()
	default:
		s.WaitSketch.Merge(o.WaitSketch)
	}
	if o.Waits != nil {
		s.Waits = append(s.Waits, o.Waits...)
	}
}

// WaitQuantile returns the q-quantile of per-instance mean waits in
// seconds: the exact order statistic when the run kept the per-instance
// vector (QuantilesExact), otherwise the sketch estimate, within
// relative error WaitSketchAccuracy of the exact value.
func (s *Summary) WaitQuantile(q float64) (float64, error) {
	if s.Waits != nil {
		return stats.Quantile(s.Waits, q)
	}
	return s.WaitSketch.Quantile(q)
}

// Availability returns the mean fraction of the horizon instances were
// up, fleet-wide (1 on a fault-free run).
func (s *Summary) Availability() float64 {
	if s.HorizonSec == 0 {
		return 1
	}
	return 1 - s.DowntimeSec.Mean()/s.HorizonSec
}

// LossOverall returns the fleet-total loss fraction (lost/arrived over
// raw counts, not the mean of per-instance rates).
func (s *Summary) LossOverall() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Lost) / float64(s.Arrived)
}

// AvgFleetPowerW returns the fleet-total mean power draw in watts
// (total energy over total device-seconds).
func (s *Summary) AvgFleetPowerW() float64 {
	if s.Devices == 0 || s.HorizonSec == 0 {
		return 0
	}
	return s.EnergyJ / (float64(s.Devices) * s.HorizonSec)
}

// PerPolicy rolls the class aggregates up by policy label, in
// first-seen class order — the per-policy breakdown of the fleet
// report. The rollup merges multi-sample accumulators in class-index
// order, so it is deterministic (same bits every call).
func (s *Summary) PerPolicy() []ClassStats {
	var out []ClassStats
	idx := make(map[string]int)
	for ci := range s.Classes {
		c := &s.Classes[ci]
		j, ok := idx[c.Policy]
		if !ok {
			j = len(out)
			idx[c.Policy] = j
			out = append(out, ClassStats{Name: c.Policy, Policy: c.Policy})
		}
		out[j].merge(c)
	}
	return out
}

// String summarizes the fleet in one line.
func (s *Summary) String() string {
	return fmt.Sprintf("fleet(%d devices, %s, %.0f s, %.4f W avg, %.2f%% loss)",
		s.Devices, s.Mode, s.HorizonSec, s.AvgPowerW.Mean(), 100*s.LossOverall())
}
