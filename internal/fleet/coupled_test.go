package fleet

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
)

// coupledSpec returns a small heterogeneous coupled fleet: 37 devices
// in groups of 5, two groups per shard, so the last shard (7 instances)
// and the last group (2 instances) are both partial.
func coupledSpec(couple CoupleMode) Spec {
	return Spec{
		Devices:    37,
		Classes:    DefaultMix(),
		Mode:       ModeCT,
		Horizon:    60,
		ShardSize:  10,
		Couple:     couple,
		CoupleSize: 5,
		Seed:       42,
	}
}

// TestFleetCoupledBitIdenticalAcrossPoolSizes extends the fleet
// determinism contract to coupled mode: for every shared resource, the
// merged summary — interference accumulators included — is identical
// for every worker count. Coupling lives within a shard, so shards
// stay independent and the serial reduction sees the same parts in the
// same order whatever worker ran them.
func TestFleetCoupledBitIdenticalAcrossPoolSizes(t *testing.T) {
	for _, couple := range []CoupleMode{CoupleChannel, CoupleGateway, CouplePower} {
		t.Run(string(couple), func(t *testing.T) {
			spec := coupledSpec(couple)
			serial, err := Run(context.Background(), spec, &engine.Pool{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				pooled, err := Run(context.Background(), spec, &engine.Pool{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, pooled) {
					t.Fatalf("summary differs between 1 and %d workers:\n%+v\nvs\n%+v", workers, serial, pooled)
				}
			}
			if serial.Devices != int64(spec.Devices) {
				t.Fatalf("%d devices simulated, want %d", serial.Devices, spec.Devices)
			}
			if serial.Couple != couple || serial.CoupleSize != 5 {
				t.Fatalf("summary coupling echo = %q/%d, want %q/5", serial.Couple, serial.CoupleSize, couple)
			}
			if serial.Events == 0 || serial.Arrived == 0 {
				t.Fatalf("coupled fleet simulated nothing: %+v", serial)
			}
		})
	}
}

// TestFleetCoupledInterferenceMetricsNonZero checks that each shared
// resource produces its signature interference metric on the default
// mix: the channel and gateway make instances wait, the gateway drops,
// and the power budget denies transitions.
func TestFleetCoupledInterferenceMetricsNonZero(t *testing.T) {
	run := func(couple CoupleMode) *Summary {
		t.Helper()
		spec := coupledSpec(couple)
		sum, err := Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	if s := run(CoupleChannel); !(s.ResourceWaitSec.Mean() > 0) {
		t.Fatalf("channel coupling produced no contention wait: %+v", s)
	} else if s.ResourceDrops != 0 || s.BudgetDenied != 0 {
		t.Fatalf("channel coupling produced foreign interference metrics: %+v", s)
	}
	if s := run(CoupleGateway); s.ResourceDrops == 0 {
		t.Fatalf("gateway coupling dropped nothing: %+v", s)
	}
	if s := run(CouplePower); s.BudgetDenied == 0 {
		t.Fatalf("power coupling denied nothing: %+v", s)
	} else if !(s.ResourceWaitSec.Mean() == 0) {
		t.Fatalf("power coupling produced contention wait: %+v", s)
	}
}

// TestFleetCoupledInterferenceGrowsWithCoupleSize is the acceptance
// check for a measurable cross-device interference effect: as the
// group size grows, more devices contend for the one channel, so both
// the per-class contention wait and the p99 of per-instance mean
// request waits must grow. A group of one never contends (sequential
// service cannot collide with itself), so its resource wait is exactly
// zero.
func TestFleetCoupledInterferenceGrowsWithCoupleSize(t *testing.T) {
	run := func(k int) *Summary {
		t.Helper()
		spec := Spec{
			Devices:    64,
			Classes:    DefaultMix(),
			Mode:       ModeCT,
			Horizon:    120,
			ShardSize:  32,
			Quantiles:  QuantilesExact,
			Couple:     CoupleChannel,
			CoupleSize: k,
			Seed:       7,
		}
		sum, err := Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	p99 := func(s *Summary) float64 {
		t.Helper()
		q, err := s.WaitQuantile(0.99)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	s1, s8, s32 := run(1), run(8), run(32)
	if w := s1.ResourceWaitSec.Mean(); w != 0 {
		t.Fatalf("couple-size 1 accrued contention wait %v, want exactly 0", w)
	}
	w8, w32 := s8.ResourceWaitSec.Mean(), s32.ResourceWaitSec.Mean()
	if !(w8 > 0) || !(w32 > w8) {
		t.Fatalf("contention wait does not grow with couple size: K=8 %v, K=32 %v", w8, w32)
	}
	if !(p99(s32) > p99(s1)) {
		t.Fatalf("p99 wait does not grow with couple size: K=1 %v, K=32 %v", p99(s1), p99(s32))
	}
	for ci := range s32.Classes {
		c1, c32 := &s1.Classes[ci], &s32.Classes[ci]
		if c1.ResourceWaitSec.Mean() != 0 {
			t.Fatalf("class %s accrued contention wait at couple-size 1", c1.Name)
		}
		if !(c32.ResourceWaitSec.Mean() >= 0) {
			t.Fatalf("class %s has invalid contention wait", c32.Name)
		}
	}
}

// TestFleetKernelKindsBitIdentical pins the kernel-interchangeability
// contract at fleet level: heap- and calendar-backed runs produce the
// identical summary, uncoupled and coupled.
func TestFleetKernelKindsBitIdentical(t *testing.T) {
	specs := map[string]Spec{
		"uncoupled": {Devices: 37, Classes: DefaultMix(), Mode: ModeCT, Horizon: 60, ShardSize: 5, Seed: 42},
		"coupled":   coupledSpec(CoupleChannel),
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			heap, cal := spec, spec
			heap.Kernel, cal.Kernel = KernelHeap, KernelCalendar
			sh, err := Run(context.Background(), heap, nil)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Run(context.Background(), cal, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sh, sc) {
				t.Fatalf("summary differs across kernel kinds:\n%+v\nvs\n%+v", sh, sc)
			}
		})
	}
}

// TestFleetCoupledShardAllocationFree is the acceptance gate for the
// coupled reuse contract: once a worker's group kernel, lanes, and
// shared resource are warm, a complete coupled shard cycle — every
// group built, reset, run to horizon, folded, merged, part recycled —
// performs zero heap allocations, for every shared resource. Part of
// the CI allocation-regression step (AllocationFree name match).
func TestFleetCoupledShardAllocationFree(t *testing.T) {
	for _, couple := range []CoupleMode{CoupleChannel, CoupleGateway, CouplePower} {
		t.Run(string(couple), func(t *testing.T) {
			spec := Spec{
				Devices:    64,
				Classes:    DefaultMix(),
				Mode:       ModeCT,
				Horizon:    64,
				ShardSize:  64,
				Couple:     couple,
				CoupleSize: 8,
				Seed:       3,
			}
			r, err := newRunner(spec)
			if err != nil {
				t.Fatal(err)
			}
			total := newSummary(r, 0)
			ws := &workerScratch{}
			ctx := context.Background()
			cycle := func() {
				part, err := r.runShard(ctx, 0, ws)
				if err != nil {
					t.Fatal(err)
				}
				total.Merge(part)
				r.putSummary(part)
			}
			cycle() // warm: kernel arena, lanes, resource queues, pooled part
			allocs := testing.AllocsPerRun(16, cycle)
			if allocs != 0 {
				t.Fatalf("%s coupled shard loop allocates %.1f times per shard after warm-up", couple, allocs)
			}
		})
	}
}

// measureWarmShardAllocs builds a runner for spec, warms one worker
// with a full shard cycle, and returns the steady-state allocations of
// the next cycles — the figure the parity gate compares across specs.
func measureWarmShardAllocs(t *testing.T, spec Spec) float64 {
	t.Helper()
	r, err := newRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	total := newSummary(r, 0)
	ws := &workerScratch{}
	ctx := context.Background()
	cycle := func() {
		part, err := r.runShard(ctx, 0, ws)
		if err != nil {
			t.Fatal(err)
		}
		total.Merge(part)
		r.putSummary(part)
	}
	cycle()
	return testing.AllocsPerRun(16, cycle)
}

// TestFleetCoupledShardAllocationFreeParity is the coupled half of the
// PR 10 performance contract stated as an equality, not just a zero:
// a warm coupled shard cycle must allocate exactly as much as the
// matched uncoupled cycle (devices, mix, horizon, shard size, and seed
// identical; only the coupling differs). Today both sides are zero —
// the equality keeps the gate meaningful even if a future change
// relaxes the absolute floor, because coupling must never be the layer
// that reintroduces steady-state allocations. The combined variant
// repeats the comparison with the fault layer on (crash + retry on
// both sides, scheduled channel outages on the coupled side). Part of
// the CI allocation-regression step (AllocationFree name match).
func TestFleetCoupledShardAllocationFreeParity(t *testing.T) {
	base := Spec{
		Devices:   64,
		Classes:   DefaultMix(),
		Mode:      ModeCT,
		Horizon:   64,
		ShardSize: 64,
		Seed:      3,
	}
	t.Run("clean", func(t *testing.T) {
		uncoupled := measureWarmShardAllocs(t, base)
		spec := base
		spec.Couple = CoupleChannel
		spec.CoupleSize = 8
		coupled := measureWarmShardAllocs(t, spec)
		if coupled != uncoupled {
			t.Fatalf("warm shard allocs: coupled %.1f != uncoupled %.1f", coupled, uncoupled)
		}
	})
	t.Run("faulted", func(t *testing.T) {
		spec := base
		spec.Faults = &FaultSpec{CrashMTBF: 30, RepairMean: 4, FailProb: 0.1}
		uncoupled := measureWarmShardAllocs(t, spec)
		spec = base
		spec.Couple = CoupleChannel
		spec.CoupleSize = 8
		spec.Faults = &FaultSpec{
			CrashMTBF: 30, RepairMean: 4, FailProb: 0.1,
			OutagePeriod: 20, OutageDuration: 3,
		}
		coupled := measureWarmShardAllocs(t, spec)
		if coupled != uncoupled {
			t.Fatalf("warm faulted shard allocs: coupled %.1f != uncoupled %.1f", coupled, uncoupled)
		}
	})
}

// TestMetricsViewClobberedByNextPooledInstance pins both halves of the
// ctsim.MetricsView aliasing contract as the fleet shard fold relies on
// it: (1) a view captured for one pooled instance IS clobbered in place
// by the next instance's run — retaining it across instances reads the
// wrong numbers — and (2) the shard fold is immune, because it copies
// every scalar into the instance's result row before the simulator is
// reset for the next instance.
func TestMetricsViewClobberedByNextPooledInstance(t *testing.T) {
	spec := Spec{Devices: 8, Classes: DefaultMix(), Mode: ModeCT, Horizon: 60, Seed: 11}
	r, err := newRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	sum := newSummary(r, 0)
	ws := &workerScratch{}
	ctx := context.Background()
	if err := r.runInstanceCT(ctx, 0, ws, sum); err != nil {
		t.Fatal(err)
	}
	view := ws.sim.MetricsView()
	firstEnergy, firstArrived := view.EnergyJ, view.Arrived
	foldedEnergy := sum.EnergyJ
	if foldedEnergy != firstEnergy {
		t.Fatalf("fold saw %v J, live view has %v J", foldedEnergy, firstEnergy)
	}
	if err := r.runInstanceCT(ctx, 1, ws, sum); err != nil {
		t.Fatal(err)
	}
	// Half 1: the retained view now shows instance 1, not instance 0.
	if view.EnergyJ == firstEnergy && view.Arrived == firstArrived {
		t.Fatal("expected the second instance to clobber the retained view (did instances 0 and 1 coincide?)")
	}
	// Half 2: the fold copied instance 0's scalars out before the reset,
	// so the total is exactly instance 0 + instance 1 (same-order float
	// addition, so the comparison is exact).
	if sum.EnergyJ != foldedEnergy+view.EnergyJ {
		t.Fatalf("shard fold lost instance 0: total %v J, want %v + %v", sum.EnergyJ, foldedEnergy, view.EnergyJ)
	}
}

// TestSpecValidateCoupling covers the coupling and kernel validation
// surface: defaults, the shard-multiple rule, and the rejects.
func TestSpecValidateCoupling(t *testing.T) {
	base := func() Spec {
		return Spec{Devices: 10, Classes: DefaultMix(), Mode: ModeCT, Horizon: 10}
	}
	ok := base()
	ok.Couple = CoupleChannel
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.CoupleSize != defaultCoupleSize || ok.ShardSize%ok.CoupleSize != 0 {
		t.Fatalf("coupling defaults: size=%d shard=%d", ok.CoupleSize, ok.ShardSize)
	}
	round := base()
	round.Couple = CoupleGateway
	round.CoupleSize = 48
	if err := round.Validate(); err != nil {
		t.Fatal(err)
	}
	if round.ShardSize != 144 {
		t.Fatalf("defaulted shard size not rounded to a couple multiple: %d", round.ShardSize)
	}
	bad := []func(*Spec){
		func(sp *Spec) { sp.Couple = "mesh" },
		func(sp *Spec) { sp.Couple = CoupleChannel; sp.Mode = ModeSlot },
		func(sp *Spec) { sp.Couple = CoupleChannel; sp.CoupleSize = 5; sp.ShardSize = 12 },
		func(sp *Spec) { sp.CoupleSize = 4 },
		func(sp *Spec) { sp.Couple = CouplePower; sp.BudgetFrac = -1 },
		func(sp *Spec) { sp.Kernel = "splay" },
		func(sp *Spec) { sp.Kernel = KernelCalendar; sp.Mode = ModeSlot },
	}
	for i, mutate := range bad {
		sp := base()
		mutate(&sp)
		if err := sp.Validate(); err == nil {
			t.Fatalf("bad spec %d validated: %+v", i, sp)
		}
	}
}
