package fleet

import (
	"context"
	"testing"

	"repro/internal/ctsim"
	"repro/internal/dist"
	"repro/internal/rng"
)

// instanceSim builds instance i's CT simulator exactly the way
// runInstanceCT does — same config, same stream layout — so the alloc
// gate measures the real fleet hot path.
func instanceSim(t testing.TB, r *runner, i int) *ctsim.Sim {
	t.Helper()
	cc := &r.classes[r.classOf(i)]
	root := rng.New(r.seeds[i])
	polStream := root.Split()
	simStream := root.Split()
	pol, err := buildSlotPolicy(cc, r.spec.QueueCap, r.spec.LatencyWeight, polStream)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dist.ByName(cc.src.Dist, cc.src.RatePerSec)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ctsim.NewRenewalSource(d)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device:         cc.src.Device,
		QueueCap:       r.spec.QueueCap,
		LatencyWeight:  r.spec.LatencyWeight / r.spec.Period,
		Policy:         ctsim.Adapt(pol, r.spec.Period),
		Source:         src,
		Stream:         simStream,
		DecisionPeriod: r.spec.Period,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestFleetCTEventLoopAllocationFree is the fleet acceptance gate for
// the CT hot path: for every class of the default mix — fixed timeout,
// greedy-off, and the adapted Q-DPM learner included — the steady-state
// event loop of a fleet instance performs zero heap allocations. Part
// of the CI allocation-regression step (AllocationFree name match).
func TestFleetCTEventLoopAllocationFree(t *testing.T) {
	spec := Spec{Devices: 8, Classes: DefaultMix(), Mode: ModeCT, Horizon: 1e9, Seed: 3}
	r, err := newRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range r.classes {
		// The pattern interleaves classes; instance index ci of the first
		// weight cycle may not hit class ci, so search for one that does.
		inst := -1
		for i := 0; i < len(r.pattern); i++ {
			if r.classOf(i) == ci {
				inst = i
				break
			}
		}
		t.Run(r.classes[ci].name, func(t *testing.T) {
			sim := instanceSim(t, r, inst)
			until := 2048.0
			if err := sim.Run(until); err != nil { // warm: ring growth, learner tables
				t.Fatal(err)
			}
			var scratch ctsim.Metrics
			sim.MetricsInto(&scratch)
			allocs := testing.AllocsPerRun(20, func() {
				until += 256
				if err := sim.Run(until); err != nil {
					t.Fatal(err)
				}
				sim.MetricsInto(&scratch)
			})
			if allocs != 0 {
				t.Fatalf("steady-state fleet CT loop allocates %.1f times per 256 s chunk", allocs)
			}
		})
	}
}

// BenchmarkFleetInstanceCT measures one full fleet CT instance through
// the worker reuse path (Reset, run, MetricsInto), reporting ns/event.
// One op = one instance at a 512 s horizon.
func BenchmarkFleetInstanceCT(b *testing.B) {
	spec := Spec{Devices: 64, Classes: DefaultMix(), Mode: ModeCT, Horizon: 512, Seed: 5}
	r, err := newRunner(spec)
	if err != nil {
		b.Fatal(err)
	}
	var ws workerScratch
	sum := newSummary(r, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Waits = sum.Waits[:0]
		if err := r.runInstanceCT(ctx, i%spec.Devices, &ws, sum); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sum.Events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(sum.Events), "ns/event")
		b.ReportMetric(float64(sum.Events)/float64(b.N), "events/op")
	}
}
