package fleet

import (
	"context"
	"testing"

	"repro/internal/ctsim"
)

// warmScratch returns a worker scratch that has already run every class
// of r's mix once in the given mode, so pooled policies, sources,
// simulators, and ring buffers exist at their high-water marks — the
// steady state a long-lived fleet worker operates in.
func warmScratch(t testing.TB, r *runner, sum *Summary) *workerScratch {
	t.Helper()
	ws := &workerScratch{}
	ctx := context.Background()
	for i := 0; i < len(r.pattern); i++ {
		var err error
		if r.spec.Mode == ModeCT {
			err = r.runInstanceCT(ctx, i, ws, sum)
		} else {
			err = r.runInstanceSlot(ctx, i, ws, sum)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	return ws
}

// TestFleetInstanceSetupAllocationFree is the acceptance gate for the
// zero-allocation instance lifecycle: once a worker's pooled object set
// is warm, running a complete fleet instance — stream reseed, policy and
// source reset, simulator Reset, full horizon, metrics fold — performs
// zero heap allocations, in both kernels and for every class of the
// default mix (the Q-DPM learner included). Part of the CI
// allocation-regression step (AllocationFree name match).
func TestFleetInstanceSetupAllocationFree(t *testing.T) {
	for _, mode := range []Mode{ModeCT, ModeSlot} {
		t.Run(string(mode), func(t *testing.T) {
			spec := Spec{Devices: 64, Classes: DefaultMix(), Mode: mode, Horizon: 64, Seed: 3}
			r, err := newRunner(spec)
			if err != nil {
				t.Fatal(err)
			}
			sum := newSummary(r, 0)
			ws := warmScratch(t, r, sum)
			ctx := context.Background()
			i := 0
			allocs := testing.AllocsPerRun(16, func() {
				var err error
				if mode == ModeCT {
					err = r.runInstanceCT(ctx, i%spec.Devices, ws, sum)
				} else {
					err = r.runInstanceSlot(ctx, i%spec.Devices, ws, sum)
				}
				if err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s instance lifecycle allocates %.1f times per instance after warm-up", mode, allocs)
			}
		})
	}
}

// TestFleetCTEventLoopAllocationFree is the fleet acceptance gate for
// the CT hot path: for every class of the default mix — fixed timeout,
// greedy-off, and the adapted Q-DPM learner included — the steady-state
// event loop of a fleet instance performs zero heap allocations. The
// simulator is prepared exactly the way runInstanceCT prepares it (same
// pooled objects, same stream layout). Part of the CI
// allocation-regression step (AllocationFree name match).
func TestFleetCTEventLoopAllocationFree(t *testing.T) {
	spec := Spec{Devices: 8, Classes: DefaultMix(), Mode: ModeCT, Horizon: 1e9, Seed: 3}
	r, err := newRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range r.classes {
		// The pattern interleaves classes; instance index ci of the first
		// weight cycle may not hit class ci, so search for one that does.
		inst := -1
		for i := 0; i < len(r.pattern); i++ {
			if r.classOf(i) == ci {
				inst = i
				break
			}
		}
		t.Run(r.classes[ci].name, func(t *testing.T) {
			ws := &workerScratch{}
			cc := &r.classes[ci]
			cs, err := r.prepareInstance(inst, ws)
			if err != nil {
				t.Fatal(err)
			}
			cs.src.Reset()
			sim, err := ctsim.New(ctsim.Config{
				Device:         cc.src.Device,
				QueueCap:       r.spec.QueueCap,
				LatencyWeight:  r.spec.LatencyWeight / r.spec.Period,
				Policy:         cs.adapted,
				Source:         cs.src,
				Stream:         &ws.simStream,
				DecisionPeriod: r.spec.Period,
			})
			if err != nil {
				t.Fatal(err)
			}
			until := 2048.0
			if err := sim.Run(until); err != nil { // warm: ring growth, learner tables
				t.Fatal(err)
			}
			var scratch ctsim.Metrics
			sim.MetricsInto(&scratch)
			allocs := testing.AllocsPerRun(20, func() {
				until += 256
				if err := sim.Run(until); err != nil {
					t.Fatal(err)
				}
				sim.MetricsInto(&scratch)
			})
			if allocs != 0 {
				t.Fatalf("steady-state fleet CT loop allocates %.1f times per 256 s chunk", allocs)
			}
		})
	}
}

// TestFleetShardLoopAllocationFree is the acceptance gate for pooled
// shard summaries: once a worker is warm and the summary pool holds a
// recycled part, a complete shard cycle — runShard over every instance,
// merge into the fleet total, return the part to the pool — performs
// zero heap allocations, in both kernels. This is what makes fleet
// allocations scale with classes (and the in-flight merge window), not
// with the number of shards run. Part of the CI allocation-regression
// step (AllocationFree name match).
func TestFleetShardLoopAllocationFree(t *testing.T) {
	for _, mode := range []Mode{ModeCT, ModeSlot} {
		t.Run(string(mode), func(t *testing.T) {
			spec := Spec{Devices: 64, Classes: DefaultMix(), Mode: mode, Horizon: 64, ShardSize: 64, Seed: 3}
			r, err := newRunner(spec)
			if err != nil {
				t.Fatal(err)
			}
			total := newSummary(r, 0)
			ws := warmScratch(t, r, total)
			ctx := context.Background()
			cycle := func() {
				part, err := r.runShard(ctx, 0, ws)
				if err != nil {
					t.Fatal(err)
				}
				total.Merge(part)
				r.putSummary(part)
			}
			cycle() // warm: results store, pooled part, total's sketch bins
			allocs := testing.AllocsPerRun(16, cycle)
			if allocs != 0 {
				t.Fatalf("%s shard loop allocates %.1f times per shard after warm-up", mode, allocs)
			}
		})
	}
}

// TestFleetFaultedShardAllocationFree extends the shard-loop gate to
// the fault layer: with crash/retry faults enabled — and, in the
// coupled variants, scheduled outage windows driving the shared
// resource — a warm shard cycle still performs zero heap allocations.
// Crashes, retries, backoff holds, and outage toggles all recycle
// pooled kernel events and scratch state. Part of the CI
// allocation-regression step (AllocationFree name match).
func TestFleetFaultedShardAllocationFree(t *testing.T) {
	for _, couple := range []CoupleMode{CoupleNone, CoupleChannel, CoupleGateway, CouplePower} {
		name := string(couple)
		if couple == CoupleNone {
			name = "uncoupled"
		}
		t.Run(name, func(t *testing.T) {
			spec := Spec{
				Devices: 40, Classes: DefaultMix(), Mode: ModeCT,
				Horizon: 64, ShardSize: 40, Seed: 3,
				Faults: &FaultSpec{CrashMTBF: 30, RepairMean: 4, FailProb: 0.1},
			}
			if couple != CoupleNone {
				spec.Couple = couple
				spec.CoupleSize = 8
				spec.Faults.OutagePeriod = 20
				spec.Faults.OutageDuration = 3
			}
			r, err := newRunner(spec)
			if err != nil {
				t.Fatal(err)
			}
			total := newSummary(r, 0)
			ws := &workerScratch{}
			ctx := context.Background()
			cycle := func() {
				part, err := r.runShard(ctx, 0, ws)
				if err != nil {
					t.Fatal(err)
				}
				total.Merge(part)
				r.putSummary(part)
			}
			cycle() // warm: lanes/pools/results store at high-water marks
			allocs := testing.AllocsPerRun(16, cycle)
			if allocs != 0 {
				t.Fatalf("%s faulted shard loop allocates %.1f times per shard after warm-up", name, allocs)
			}
			if total.Crashes == 0 || total.Retries == 0 {
				t.Fatalf("faulted alloc gate injected nothing: crashes=%d retries=%d", total.Crashes, total.Retries)
			}
		})
	}
}

// BenchmarkFleetInstanceCT measures one full fleet CT instance through
// the worker reuse path (reseed, reset, run, MetricsInto), reporting
// ns/event. One op = one instance at a 512 s horizon.
func BenchmarkFleetInstanceCT(b *testing.B) {
	spec := Spec{Devices: 64, Classes: DefaultMix(), Mode: ModeCT, Horizon: 512, Seed: 5}
	r, err := newRunner(spec)
	if err != nil {
		b.Fatal(err)
	}
	var ws workerScratch
	sum := newSummary(r, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.runInstanceCT(ctx, i%spec.Devices, &ws, sum); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sum.Events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(sum.Events), "ns/event")
		b.ReportMetric(float64(sum.Events)/float64(b.N), "events/op")
	}
}
