// Package fleet is the multi-device simulation layer: it instantiates N
// heterogeneous (device, workload, policy) instances — drawn from the
// device catalog and the dist interarrival recipes, each with its own
// derived seed — shards them into fixed-size blocks, and runs the shards
// across the engine worker pool, streaming per-shard aggregates that
// merge into fleet-level results.
//
// The paper studies one service provider; the ROADMAP north star is a
// production-scale system serving millions of users. fleet is the layer
// between: a single call simulates thousands of independent power-managed
// devices under mixed workloads and mixed policies and reports fleet-wide
// energy, latency percentiles, loss, and per-class/per-policy breakdowns.
//
// Determinism contract (the repository-wide one, extended to fleets):
//
//   - Instance i's randomness is a pure function of (Spec.Seed, i): the
//     per-instance seed comes from engine.DeriveSeeds, and the instance's
//     root stream splits into policy and simulator streams exactly like
//     the experiment layer's replicas, so a fleet instance with seed s is
//     bit-identical to a single-replica run with seed s.
//   - The shard decomposition depends only on (Spec.Devices,
//     Spec.ShardSize) — never on the worker count — and shard summaries
//     are reduced in shard-index order. A pooled run is therefore
//     bit-identical to a serial run for every -parallel value (CI diffs
//     qdpm-fleet output across pool sizes).
//   - Workers reuse one ctsim.Sim and one metrics scratch across the
//     shards they run (ctsim.Sim.Reset is bit-identical to a fresh
//     build), so per-worker state never influences results — it only
//     keeps instance turnover off the allocator. In CT mode the event
//     loop itself is allocation-free in steady state (see
//     TestFleetCTEventLoopAllocationFree).
package fleet

import (
	"context"
	"fmt"
	"math"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

// Mode selects the simulation kernel a fleet runs on.
type Mode string

const (
	// ModeCT runs every instance on the continuous-time event kernel
	// (ctsim) under the periodic governor. This is the default: it is the
	// production-shaped path (real-valued arrival times, physical
	// transition latencies) and its event loop is allocation-free.
	ModeCT Mode = "ct"
	// ModeSlot runs every instance on the slotted simulator with the
	// class's interarrival law binned into per-slot counts — the
	// discretization the paper studies, at fleet scale.
	ModeSlot Mode = "slot"
)

// Class describes one homogeneous sub-population of the fleet: a catalog
// device under an interarrival law, managed by a named policy. Instances
// are assigned to classes by weighted round-robin over the instance
// index, so the assignment is a pure function of the Spec.
type Class struct {
	// Device is the managed physical PSM (a catalog entry or a custom
	// one).
	Device *device.PSM
	// Dist names the interarrival law (a dist.ByName key: exp, pareto,
	// weibull, erlang, hyperexp, uniform).
	Dist string
	// RatePerSec is the long-run arrival rate in requests per second.
	RatePerSec float64
	// Policy names the power-management policy (a Policies key, e.g.
	// "timeout=8" or "q-dpm").
	Policy string
	// Weight is the class's share of instances (>= 1; default 1).
	Weight int
}

// Name returns the class's display label, device:dist@rate/policy.
func (c *Class) Name() string {
	return fmt.Sprintf("%s:%s@%g/%s", c.Device.Name, c.Dist, c.RatePerSec, c.Policy)
}

// validate checks one class and fills its weight default.
func (c *Class) validate(i int) error {
	if c.Device == nil {
		return fmt.Errorf("fleet: class %d needs a device", i)
	}
	if _, err := dist.ByName(c.Dist, 1); err != nil {
		return fmt.Errorf("fleet: class %d: %w", i, err)
	}
	if !(c.RatePerSec > 0) || math.IsInf(c.RatePerSec, 0) {
		return fmt.Errorf("fleet: class %d rate %v must be positive and finite", i, c.RatePerSec)
	}
	if _, _, err := parsePolicy(c.Policy); err != nil {
		return fmt.Errorf("fleet: class %d: %w", i, err)
	}
	if c.Weight < 0 {
		return fmt.Errorf("fleet: class %d weight %d must be >= 0", i, c.Weight)
	}
	if c.Weight == 0 {
		c.Weight = 1
	}
	return nil
}

// Spec describes one fleet run. The zero values of Period, QueueCap,
// LatencyWeight, ShardSize, and Mode take the canonical defaults
// (Validate fills them in).
type Spec struct {
	// Devices is the number of instances.
	Devices int
	// Classes is the heterogeneity mix (see ParseMix / DefaultMix).
	Classes []Class
	// Mode selects the kernel: ModeCT (default) or ModeSlot.
	Mode Mode
	// Horizon is each instance's run length in seconds.
	Horizon float64
	// Period is the governor tick / slot duration in seconds (default
	// 0.5, the canonical slot).
	Period float64
	// QueueCap bounds each instance's queue (default 8).
	QueueCap int
	// LatencyWeight scalarizes backlog into cost, in J per request-slot
	// (default 0.3); CT mode rescales it to J per request-second.
	LatencyWeight float64
	// ShardSize is the number of instances per pool job (default 128).
	// It shapes scheduling granularity only — results are independent of
	// it in the aggregate, but the shard decomposition is part of the
	// summary's merge tree, so keep it fixed when comparing runs.
	ShardSize int
	// Seed roots the per-instance seed derivation.
	Seed uint64
}

const (
	defaultPeriod        = 0.5
	defaultQueueCap      = 8
	defaultLatencyWeight = 0.3
	defaultShardSize     = 128
)

// Validate checks the spec and fills defaults (it mutates the receiver).
func (sp *Spec) Validate() error {
	if sp.Devices <= 0 {
		return fmt.Errorf("fleet: device count %d must be positive", sp.Devices)
	}
	if len(sp.Classes) == 0 {
		return fmt.Errorf("fleet: spec needs at least one class")
	}
	if sp.Mode == "" {
		sp.Mode = ModeCT
	}
	if sp.Mode != ModeCT && sp.Mode != ModeSlot {
		return fmt.Errorf("fleet: unknown mode %q (want %q or %q)", sp.Mode, ModeCT, ModeSlot)
	}
	if !(sp.Horizon > 0) || math.IsInf(sp.Horizon, 0) {
		return fmt.Errorf("fleet: horizon %v must be positive and finite", sp.Horizon)
	}
	if sp.Period == 0 {
		sp.Period = defaultPeriod
	}
	if !(sp.Period > 0) || math.IsInf(sp.Period, 0) {
		return fmt.Errorf("fleet: period %v must be positive and finite", sp.Period)
	}
	if sp.QueueCap == 0 {
		sp.QueueCap = defaultQueueCap
	}
	if sp.QueueCap < 0 {
		return fmt.Errorf("fleet: negative queue capacity %d", sp.QueueCap)
	}
	if sp.LatencyWeight == 0 {
		sp.LatencyWeight = defaultLatencyWeight
	}
	if sp.LatencyWeight < 0 || math.IsNaN(sp.LatencyWeight) {
		return fmt.Errorf("fleet: latency weight %v must be >= 0", sp.LatencyWeight)
	}
	if sp.ShardSize == 0 {
		sp.ShardSize = defaultShardSize
	}
	if sp.ShardSize < 1 {
		return fmt.Errorf("fleet: shard size %d must be >= 1", sp.ShardSize)
	}
	for i := range sp.Classes {
		if err := sp.Classes[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Shards returns the number of pool jobs a run of this spec fans out.
func (sp *Spec) Shards() int {
	return (sp.Devices + sp.ShardSize - 1) / sp.ShardSize
}

// ---------------------------------------------------------------------------
// Runner

// class is a Class compiled for execution: slotted device form, class
// label, and the always-on reference power.
type compiledClass struct {
	src      Class
	name     string
	slotted  *device.Slotted
	maxPower float64
	polName  string
	polParam float64
}

// runner holds the per-run immutable state shared by every shard.
type runner struct {
	spec    Spec
	classes []compiledClass
	// pattern maps i % len(pattern) to a class index — the weighted
	// round-robin interleave that assigns instances to classes.
	pattern []int
	seeds   []uint64
}

// workerScratch is one worker's reusable simulation state. The CT
// simulator and metrics scratch survive across every shard the worker
// runs; Reset keeps replica turnover off the allocator without
// influencing results.
type workerScratch struct {
	sim     *ctsim.Sim
	metrics ctsim.Metrics
}

func newRunner(spec Spec) (*runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &runner{spec: spec}
	for ci := range spec.Classes {
		c := spec.Classes[ci]
		sl, err := c.Device.Slot(spec.Period)
		if err != nil {
			return nil, fmt.Errorf("fleet: class %d (%s): %w", ci, c.Name(), err)
		}
		name, param, err := parsePolicy(c.Policy)
		if err != nil {
			return nil, err
		}
		r.classes = append(r.classes, compiledClass{
			src:      c,
			name:     c.Name(),
			slotted:  sl,
			maxPower: c.Device.MaxPower(),
			polName:  name,
			polParam: param,
		})
		for w := 0; w < c.Weight; w++ {
			r.pattern = append(r.pattern, ci)
		}
	}
	r.seeds = engine.DeriveSeeds(spec.Seed, spec.Devices)
	return r, nil
}

// classOf returns the class index of instance i — the weighted
// round-robin interleave, a pure function of the spec.
func (r *runner) classOf(i int) int { return r.pattern[i%len(r.pattern)] }

// cancelChunkTicks bounds cancellation latency: instances run in chunks
// of this many governor ticks (CT mode, × Period seconds each) or slots
// (slot mode) and poll the context between chunks.
const cancelChunkTicks = 8192

// runInstanceCT executes instance i on the worker's reusable simulator
// and folds its metrics into sum.
func (r *runner) runInstanceCT(ctx context.Context, i int, ws *workerScratch, sum *Summary) error {
	cc := &r.classes[r.classOf(i)]
	root := rng.New(r.seeds[i])
	polStream := root.Split()
	simStream := root.Split()
	pol, err := buildSlotPolicy(cc, r.spec.QueueCap, r.spec.LatencyWeight, polStream)
	if err != nil {
		return err
	}
	d, err := dist.ByName(cc.src.Dist, cc.src.RatePerSec)
	if err != nil {
		return err
	}
	src, err := ctsim.NewRenewalSource(d)
	if err != nil {
		return err
	}
	cfg := ctsim.Config{
		Device:         cc.src.Device,
		QueueCap:       r.spec.QueueCap,
		LatencyWeight:  r.spec.LatencyWeight / r.spec.Period,
		Policy:         ctsim.Adapt(pol, r.spec.Period),
		Source:         src,
		Stream:         simStream,
		DecisionPeriod: r.spec.Period,
	}
	if ws.sim == nil {
		if ws.sim, err = ctsim.New(cfg); err != nil {
			return err
		}
	} else if err = ws.sim.Reset(cfg); err != nil {
		return err
	}
	if err := ws.sim.RunChunked(ctx, r.spec.Horizon, r.spec.Period*cancelChunkTicks); err != nil {
		return err
	}
	ws.sim.MetricsInto(&ws.metrics)
	m := &ws.metrics
	sum.addInstance(r.classOf(i), instanceResult{
		avgPowerW:   m.AvgPowerW(),
		energyRed:   1 - m.AvgPowerW()/cc.maxPower,
		meanWaitSec: m.MeanWaitSeconds(),
		lossRate:    m.LossRate(),
		energyJ:     m.EnergyJ,
		arrived:     m.Arrived,
		served:      m.Served,
		lost:        m.Lost,
		events:      ws.sim.FiredEvents(),
	})
	return nil
}

// runInstanceSlot executes instance i on a fresh slotted simulator and
// folds its metrics into sum. The slotted kernel has no Reset path; its
// per-instance construction cost is a handful of allocations, which the
// fleet benchmarks report but the CT acceptance gate does not cover.
func (r *runner) runInstanceSlot(ctx context.Context, i int, sum *Summary) error {
	cc := &r.classes[r.classOf(i)]
	root := rng.New(r.seeds[i])
	polStream := root.Split()
	simStream := root.Split()
	pol, err := buildSlotPolicy(cc, r.spec.QueueCap, r.spec.LatencyWeight, polStream)
	if err != nil {
		return err
	}
	// Interarrival law in slot units: rate/sec × period = rate/slot.
	d, err := dist.ByName(cc.src.Dist, cc.src.RatePerSec*r.spec.Period)
	if err != nil {
		return err
	}
	arr, err := workload.NewRenewal(d)
	if err != nil {
		return err
	}
	sim, err := slotsim.New(slotsim.Config{
		Device:        cc.slotted,
		Arrivals:      arr,
		QueueCap:      r.spec.QueueCap,
		Policy:        pol,
		Stream:        simStream,
		LatencyWeight: r.spec.LatencyWeight,
	})
	if err != nil {
		return err
	}
	slots := int64(math.Ceil(r.spec.Horizon/r.spec.Period - 1e-9))
	var m slotsim.Metrics
	for remaining := slots; remaining > 0; {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := int64(cancelChunkTicks)
		if remaining < chunk {
			chunk = remaining
		}
		if m, err = sim.Run(chunk, nil); err != nil {
			return err
		}
		remaining -= chunk
	}
	p := m.AvgPowerW(r.spec.Period)
	sum.addInstance(r.classOf(i), instanceResult{
		avgPowerW:   p,
		energyRed:   1 - p/cc.maxPower,
		meanWaitSec: m.MeanWaitSlots() * r.spec.Period,
		lossRate:    m.LossRate(),
		energyJ:     m.EnergyJ,
		arrived:     m.Arrived,
		served:      m.Served,
		lost:        m.Lost,
		events:      uint64(m.Slots),
	})
	return nil
}

// runShard executes one contiguous block of instances and returns its
// streaming summary.
func (r *runner) runShard(ctx context.Context, shard int, ws *workerScratch) (*Summary, error) {
	lo := shard * r.spec.ShardSize
	hi := lo + r.spec.ShardSize
	if hi > r.spec.Devices {
		hi = r.spec.Devices
	}
	sum := newSummary(r, hi-lo)
	for i := lo; i < hi; i++ {
		var err error
		if r.spec.Mode == ModeCT {
			err = r.runInstanceCT(ctx, i, ws, sum)
		} else {
			err = r.runInstanceSlot(ctx, i, sum)
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: instance %d (%s): %w", i, r.classes[r.classOf(i)].name, err)
		}
	}
	return sum, nil
}

// Run simulates the fleet on the pool (nil pool = GOMAXPROCS workers)
// and returns the merged fleet summary. Output is bit-identical for
// every pool size: shards are a pure function of the spec and their
// summaries are reduced in shard-index order.
func Run(ctx context.Context, spec Spec, pool *engine.Pool) (*Summary, error) {
	r, err := newRunner(spec)
	if err != nil {
		return nil, err
	}
	shards := r.spec.Shards()
	scratch := make([]workerScratch, pool.Size(shards))
	parts, err := engine.MapWorkers(ctx, pool, shards,
		func(ctx context.Context, worker, si int) (*Summary, error) {
			return r.runShard(ctx, si, &scratch[worker])
		})
	if err != nil {
		return nil, err
	}
	total := newSummary(r, 0)
	for _, p := range parts {
		total.Merge(p)
	}
	total.Shards = shards
	return total, nil
}
