// Package fleet is the multi-device simulation layer: it instantiates N
// heterogeneous (device, workload, policy) instances — drawn from the
// device catalog and the dist interarrival recipes, each with its own
// derived seed — shards them into fixed-size blocks, and runs the shards
// across the engine worker pool, streaming per-shard aggregates that
// merge into fleet-level results.
//
// The paper studies one service provider; the ROADMAP north star is a
// production-scale system serving millions of users. fleet is the layer
// between: a single call simulates thousands of independent power-managed
// devices under mixed workloads and mixed policies and reports fleet-wide
// energy, latency percentiles, loss, and per-class/per-policy breakdowns.
//
// Determinism contract (the repository-wide one, extended to fleets):
//
//   - Instance i's randomness is a pure function of (Spec.Seed, i): the
//     per-instance seed is engine.SeedFor(Spec.Seed, i) — an O(1) random
//     access, so no per-device seed vector exists — and the instance's
//     root stream splits into policy and simulator streams exactly like
//     the experiment layer's replicas, so a fleet instance with seed s is
//     bit-identical to a single-replica run with seed s.
//   - The shard decomposition depends only on (Spec.Devices,
//     Spec.ShardSize) — never on the worker count — and shard summaries
//     are reduced in shard-index order. A pooled run is therefore
//     bit-identical to a serial run for every -parallel value (CI diffs
//     qdpm-fleet output across pool sizes).
//   - Workers reuse everything: one simulator (ctsim.Sim or
//     slotsim.Sim), one metrics scratch, and per class one pooled
//     policy, adapter, and arrival source, plus three in-place-reseeded
//     rng streams. Every reused object carries a Reset that restores
//     freshly-constructed state bit for bit, so per-worker state never
//     influences results — it only keeps instance turnover off the
//     allocator entirely: after warm-up a complete instance lifecycle
//     performs zero heap allocations in both kernels
//     (TestFleetInstanceSetupAllocationFree), and the CT event loop
//     itself is allocation-free in steady state
//     (TestFleetCTEventLoopAllocationFree).
//   - Shard summaries stream through an index-ordered fold
//     (engine.MapReduceWorkers) and wait percentiles default to a
//     mergeable log-binned sketch (Spec.Quantiles), so fleet memory is
//     O(workers + classes), independent of the device count.
//
// Coupling. By default instances are independent — each advances on its
// own event kernel. Spec.Couple switches a shard into coupled groups:
// CoupleSize consecutive instances advance on ONE shared kernel
// (eventq's (time, seq) FIFO ordering arbitrates their interleaving
// deterministically) and contend for one internal/shared resource — a
// single-occupancy channel, a bounded gateway queue, or a group power
// budget. Groups never straddle shards, so coupling changes the
// simulated physics without touching the sharding, merge, or
// bit-identical -parallel contracts (DESIGN.md §8).
//
// Faults. Spec.Faults threads ctsim's deterministic fault layer —
// Exp(MTBF) crash/repair cycles, transient service failures with
// retry/backoff, and scheduled resource outages on coupled runs —
// through every instance, drawing all fault randomness from a third
// per-instance stream lane so a fault-free spec's output stays
// byte-identical to the pre-fault layer (DESIGN.md §9).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

// Mode selects the simulation kernel a fleet runs on.
type Mode string

const (
	// ModeCT runs every instance on the continuous-time event kernel
	// (ctsim) under the periodic governor. This is the default: it is the
	// production-shaped path (real-valued arrival times, physical
	// transition latencies) and its event loop is allocation-free.
	ModeCT Mode = "ct"
	// ModeSlot runs every instance on the slotted simulator with the
	// class's interarrival law binned into per-slot counts — the
	// discretization the paper studies, at fleet scale.
	ModeSlot Mode = "slot"
)

// QuantileMode selects how fleet-level wait percentiles are computed.
type QuantileMode string

const (
	// QuantilesSketch (the default) accumulates per-instance mean waits
	// into a mergeable log-binned sketch (stats.QuantileSketch) with
	// relative accuracy WaitSketchAccuracy. Memory is O(log range) per
	// shard summary — independent of the device count — which is what
	// keeps a million-device fleet's footprint bounded.
	QuantilesSketch QuantileMode = "sketch"
	// QuantilesExact additionally keeps every instance's mean wait in
	// instance order, so WaitQuantile returns exact order statistics.
	// Memory is O(devices); meant for small fleets and for auditing the
	// sketch (TestSketchQuantilesWithinBoundOfExact).
	QuantilesExact QuantileMode = "exact"
)

// WaitSketchAccuracy is the sketch mode's relative-error bound: every
// reported wait percentile is within 1% of the corresponding exact
// order statistic (see stats.QuantileSketch for the precise statement).
const WaitSketchAccuracy = 0.01

// KernelKind selects the event-queue backing of the CT kernel. Both
// backings fire events in the identical (time, seq) order, so fleet
// output is bit-identical across kinds (TestFleetKernelKindsBitIdentical)
// — the choice is purely a performance knob.
type KernelKind string

const (
	// KernelAuto (the default) picks the backing per kernel population:
	// the 4-ary heap for the uncoupled one-sim-per-kernel loop and for
	// every measured coupled group size (see kernelFor for the measured
	// decision table). Output is unaffected — the kinds are
	// bit-identical — so auto is always safe.
	KernelAuto KernelKind = "auto"
	// KernelHeap backs the kernel with the 4-ary index-tracked min-heap.
	KernelHeap KernelKind = "heap"
	// KernelCalendar backs the kernel with the O(1) calendar queue
	// (eventq.NewCalendar).
	KernelCalendar KernelKind = "calendar"
)

// CoupleMode selects the shared resource the instances of a coupled
// group contend for (CT mode only — slot mode has no service-start
// hook). Coupling replaces the one-private-kernel-per-instance loop
// with groups of CoupleSize consecutive instances advancing on ONE
// shared event kernel, their event streams interleaved
// deterministically by (time, seq), with the group's resource
// arbitrating service starts and power commands (see internal/shared).
type CoupleMode string

const (
	// CoupleNone runs every instance on its own kernel — the default,
	// byte-identical to the pre-coupling fleet layer.
	CoupleNone CoupleMode = ""
	// CoupleChannel couples each group through a single-occupancy
	// channel: one device's service occupies the medium, contenders
	// queue FIFO (a WLAN cell). Interference shows up as
	// ResourceWaitSec.
	CoupleChannel CoupleMode = "channel"
	// CoupleGateway couples each group through a gateway with one
	// server and a bounded wait room (Spec.GatewayWait): requests
	// beyond the wait room are dropped. Interference shows up as
	// ResourceWaitSec and ResourceDrops.
	CoupleGateway CoupleMode = "gateway"
	// CouplePower couples each group through a power budget capping
	// the group's summed settled-state power at Spec.BudgetFrac times
	// the group's summed always-on power: transitions that would
	// overrun it are vetoed. Interference shows up as BudgetDenied.
	CouplePower CoupleMode = "power"
)

// Class describes one homogeneous sub-population of the fleet: a catalog
// device under an interarrival law, managed by a named policy. Instances
// are assigned to classes by weighted round-robin over the instance
// index, so the assignment is a pure function of the Spec.
type Class struct {
	// Device is the managed physical PSM (a catalog entry or a custom
	// one).
	Device *device.PSM
	// Dist names the interarrival law (a dist.ByName key: exp, pareto,
	// weibull, erlang, hyperexp, uniform).
	Dist string
	// RatePerSec is the long-run arrival rate in requests per second.
	RatePerSec float64
	// Policy names the power-management policy (a Policies key, e.g.
	// "timeout=8" or "q-dpm").
	Policy string
	// Weight is the class's share of instances (>= 1; default 1).
	Weight int
}

// Name returns the class's display label, device:dist@rate/policy.
func (c *Class) Name() string {
	return fmt.Sprintf("%s:%s@%g/%s", c.Device.Name, c.Dist, c.RatePerSec, c.Policy)
}

// validate checks one class and fills its weight default.
func (c *Class) validate(i int) error {
	if c.Device == nil {
		return fmt.Errorf("fleet: class %d needs a device", i)
	}
	if _, err := dist.ByName(c.Dist, 1); err != nil {
		return fmt.Errorf("fleet: class %d: %w", i, err)
	}
	if !(c.RatePerSec > 0) || math.IsInf(c.RatePerSec, 0) {
		return fmt.Errorf("fleet: class %d rate %v must be positive and finite", i, c.RatePerSec)
	}
	if _, _, err := parsePolicy(c.Policy); err != nil {
		return fmt.Errorf("fleet: class %d: %w", i, err)
	}
	if c.Weight < 0 {
		return fmt.Errorf("fleet: class %d weight %d must be >= 0", i, c.Weight)
	}
	if c.Weight == 0 {
		c.Weight = 1
	}
	return nil
}

// Spec describes one fleet run. The zero values of Period, QueueCap,
// LatencyWeight, ShardSize, and Mode take the canonical defaults
// (Validate fills them in).
type Spec struct {
	// Devices is the number of instances.
	Devices int
	// Classes is the heterogeneity mix (see ParseMix / DefaultMix).
	Classes []Class
	// Mode selects the kernel: ModeCT (default) or ModeSlot.
	Mode Mode
	// Horizon is each instance's run length in seconds.
	Horizon float64
	// Period is the governor tick / slot duration in seconds (default
	// 0.5, the canonical slot).
	Period float64
	// QueueCap bounds each instance's queue (default 8).
	QueueCap int
	// LatencyWeight scalarizes backlog into cost, in J per request-slot
	// (default 0.3); CT mode rescales it to J per request-second.
	LatencyWeight float64
	// ShardSize is the number of instances per pool job (default 128).
	// It shapes scheduling granularity only — results are independent of
	// it in the aggregate, but the shard decomposition is part of the
	// summary's merge tree, so keep it fixed when comparing runs.
	ShardSize int
	// Quantiles selects sketch (default) or exact wait percentiles.
	Quantiles QuantileMode
	// Kernel selects the CT event-queue backing: KernelAuto (default,
	// resolves per kernel population), KernelHeap, or KernelCalendar.
	// Output is bit-identical across kinds.
	Kernel KernelKind
	// Couple selects the coupled mode's shared resource (default
	// CoupleNone: independent instances). Requires ModeCT.
	Couple CoupleMode
	// CoupleSize is the number of consecutive instances per coupled
	// group (default 8 when Couple is set). ShardSize must be a
	// multiple of it — groups never straddle shards, which is what
	// keeps shards independent and the -parallel contract intact.
	// When ShardSize is defaulted, Validate rounds it up to a multiple.
	CoupleSize int
	// BudgetFrac scales the CouplePower cap: cap = BudgetFrac × the
	// group's summed always-on power (default 0.5). Values >= 1 make
	// the budget non-binding from the initial all-on draw.
	BudgetFrac float64
	// GatewayWait is the CoupleGateway wait-room bound (default 2).
	GatewayWait int
	// Faults enables deterministic fault injection (nil: fault-free,
	// output byte-identical to a build without the fault layer). See
	// FaultSpec. Requires ModeCT; outage windows additionally require a
	// couple mode.
	Faults *FaultSpec
	// Seed roots the per-instance seed derivation.
	Seed uint64
}

const (
	defaultPeriod        = 0.5
	defaultQueueCap      = 8
	defaultLatencyWeight = 0.3
	defaultShardSize     = 128
	defaultCoupleSize    = 8
	defaultBudgetFrac    = 0.5
	defaultGatewayWait   = 2
)

// Validate checks the spec and fills defaults (it mutates the receiver).
func (sp *Spec) Validate() error {
	if sp.Devices <= 0 {
		return fmt.Errorf("fleet: device count %d must be positive", sp.Devices)
	}
	if len(sp.Classes) == 0 {
		return fmt.Errorf("fleet: spec needs at least one class")
	}
	if sp.Mode == "" {
		sp.Mode = ModeCT
	}
	if sp.Mode != ModeCT && sp.Mode != ModeSlot {
		return fmt.Errorf("fleet: unknown mode %q (want %q or %q)", sp.Mode, ModeCT, ModeSlot)
	}
	if !(sp.Horizon > 0) || math.IsInf(sp.Horizon, 0) {
		return fmt.Errorf("fleet: horizon %v must be positive and finite", sp.Horizon)
	}
	if sp.Period == 0 {
		sp.Period = defaultPeriod
	}
	if !(sp.Period > 0) || math.IsInf(sp.Period, 0) {
		return fmt.Errorf("fleet: period %v must be positive and finite", sp.Period)
	}
	if sp.QueueCap == 0 {
		sp.QueueCap = defaultQueueCap
	}
	if sp.QueueCap < 0 {
		return fmt.Errorf("fleet: negative queue capacity %d", sp.QueueCap)
	}
	if sp.LatencyWeight == 0 {
		sp.LatencyWeight = defaultLatencyWeight
	}
	if sp.LatencyWeight < 0 || math.IsNaN(sp.LatencyWeight) {
		return fmt.Errorf("fleet: latency weight %v must be >= 0", sp.LatencyWeight)
	}
	if sp.Kernel == "" {
		sp.Kernel = KernelAuto
	}
	if sp.Kernel != KernelAuto && sp.Kernel != KernelHeap && sp.Kernel != KernelCalendar {
		return fmt.Errorf("fleet: unknown kernel %q (want %q, %q, or %q)", sp.Kernel, KernelAuto, KernelHeap, KernelCalendar)
	}
	if sp.Kernel == KernelCalendar && sp.Mode == ModeSlot {
		return fmt.Errorf("fleet: kernel %q applies to CT mode only (slot mode has no event kernel)", sp.Kernel)
	}
	switch sp.Couple {
	case CoupleNone, CoupleChannel, CoupleGateway, CouplePower:
	default:
		return fmt.Errorf("fleet: unknown couple mode %q (want %q, %q, or %q)", sp.Couple, CoupleChannel, CoupleGateway, CouplePower)
	}
	if sp.Couple != CoupleNone {
		if sp.Mode == ModeSlot {
			return fmt.Errorf("fleet: coupling requires CT mode (slot mode has no service-start hook)")
		}
		if sp.CoupleSize == 0 {
			sp.CoupleSize = defaultCoupleSize
		}
		if sp.CoupleSize < 1 {
			return fmt.Errorf("fleet: couple size %d must be >= 1", sp.CoupleSize)
		}
		// Groups must never straddle shards: a defaulted shard size is
		// rounded up to a multiple of the couple size; an explicit one
		// that is not a multiple is an error, not a silent reshard.
		if sp.ShardSize == 0 {
			k := sp.CoupleSize
			sp.ShardSize = (defaultShardSize + k - 1) / k * k
		}
		if sp.ShardSize%sp.CoupleSize != 0 {
			return fmt.Errorf("fleet: shard size %d must be a multiple of couple size %d (groups cannot straddle shards)", sp.ShardSize, sp.CoupleSize)
		}
		if sp.BudgetFrac == 0 {
			sp.BudgetFrac = defaultBudgetFrac
		}
		if !(sp.BudgetFrac > 0) || math.IsInf(sp.BudgetFrac, 0) {
			return fmt.Errorf("fleet: budget fraction %v must be positive and finite", sp.BudgetFrac)
		}
		if sp.GatewayWait == 0 {
			sp.GatewayWait = defaultGatewayWait
		}
		if sp.GatewayWait < 0 {
			return fmt.Errorf("fleet: gateway wait room %d must be >= 0", sp.GatewayWait)
		}
	} else if sp.CoupleSize != 0 {
		return fmt.Errorf("fleet: couple size %d set without a couple mode", sp.CoupleSize)
	}
	if sp.ShardSize == 0 {
		sp.ShardSize = defaultShardSize
	}
	if sp.ShardSize < 1 {
		return fmt.Errorf("fleet: shard size %d must be >= 1", sp.ShardSize)
	}
	if sp.Quantiles == "" {
		sp.Quantiles = QuantilesSketch
	}
	if sp.Quantiles != QuantilesSketch && sp.Quantiles != QuantilesExact {
		return fmt.Errorf("fleet: unknown quantile mode %q (want %q or %q)", sp.Quantiles, QuantilesSketch, QuantilesExact)
	}
	if sp.Faults != nil {
		if err := sp.Faults.validate(sp.Mode, sp.Period, sp.Couple); err != nil {
			return err
		}
	}
	for i := range sp.Classes {
		if err := sp.Classes[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Shards returns the number of pool jobs a run of this spec fans out.
func (sp *Spec) Shards() int {
	return (sp.Devices + sp.ShardSize - 1) / sp.ShardSize
}

// ---------------------------------------------------------------------------
// Runner

// class is a Class compiled for execution: slotted device form, class
// label, the always-on reference power, and the interarrival law
// compiled once in the running kernel's units (seconds for CT, slots
// for slot mode) so instances never re-box a dist.Continuous.
type compiledClass struct {
	src      Class
	name     string
	slotted  *device.Slotted
	maxPower float64
	polName  string
	polParam float64
	arrDist  dist.Continuous
}

// runner holds the per-run immutable state shared by every shard. It is
// O(classes): per-instance seeds are computed on demand
// (engine.SeedFor), so the runner holds no per-device state at all.
type runner struct {
	spec    Spec
	classes []compiledClass
	// pattern maps i % len(pattern) to a class index — the weighted
	// round-robin interleave that assigns instances to classes.
	pattern []int
	// classOffsets[ci] lists the pattern positions owned by class ci, so
	// a shard can enumerate one class's instances directly (first
	// matching index, then strides of len(pattern)) — the class-major
	// execution order of runShard.
	classOffsets [][]int
	// sumFree recycles shard summaries between runShard (producer) and
	// the serialized reducer in Run (consumer, which returns each part
	// after merging it). A free list — rather than one summary per worker
	// — is required because MapReduceWorkers buffers a window of
	// completed summaries per worker for the in-order fold, so a worker
	// may start its next shard while earlier summaries are still queued.
	// With recycling, summary construction cost scales with the in-flight
	// window (O(workers)), not with the number of shards run. A plain
	// mutexed stack beats sync.Pool here: the GC clears sync.Pool's
	// caches mid-run, forcing fresh summaries for no benefit, and the
	// lock is uncontended in practice (a take/put pair per multi-
	// millisecond shard).
	sumMu   sync.Mutex
	sumFree []*Summary
}

// takeSummary returns a recycled shard summary reset for n instances,
// or a fresh one when the free list is empty.
func (r *runner) takeSummary(n int) *Summary {
	r.sumMu.Lock()
	if k := len(r.sumFree); k > 0 {
		s := r.sumFree[k-1]
		r.sumFree = r.sumFree[:k-1]
		r.sumMu.Unlock()
		s.reset(r, n)
		return s
	}
	r.sumMu.Unlock()
	return newSummary(r, n)
}

// putSummary returns a merged shard summary to the free list. Callers
// must not retain any reference into it (Merge copies everything it
// keeps).
func (r *runner) putSummary(s *Summary) {
	r.sumMu.Lock()
	r.sumFree = append(r.sumFree, s)
	r.sumMu.Unlock()
}

// workerScratch is one worker's reusable simulation state: the
// simulators and metrics scratch plus one pooled (policy, adapter,
// source) set per class and three in-place-reseeded rng streams. Every
// piece survives across all the shards the worker runs — the instance
// lifecycle is Reseed + Reset + Run with zero heap traffic
// (TestFleetInstanceSetupAllocationFree) — without influencing results:
// a reset object is bit-identical to a freshly built one.
type workerScratch struct {
	sim     *ctsim.Sim
	slot    *slotsim.Sim
	metrics ctsim.Metrics
	classes []classScratch

	// results is the shard's struct-of-arrays result store: one flat
	// instanceResult row per instance, written in class-major execution
	// order and folded into the summary in instance order (the fold
	// order is the bit-exactness contract; execution order is free
	// because every instance's randomness derives from its own seed).
	// Reused across all the shards the worker runs.
	results []instanceResult

	// Per-instance stream derivation, in place: root is reseeded from
	// the instance seed and split into the policy and simulator streams,
	// reproducing rng.New(seed).Split()/.Split() bit for bit. Faulted
	// runs split a third, fault-dedicated stream after those two, so
	// enabling faults never perturbs the policy or arrival sequences.
	root        rng.Stream
	polStream   rng.Stream
	simStream   rng.Stream
	faultStream rng.Stream

	// coupled holds the shared-kernel group state (the group kernel,
	// one lane per group slot, and the shared resource); untouched on
	// uncoupled runs. See coupled.go.
	coupled coupledScratch
}

// classScratch is one worker's pooled object set for one class.
type classScratch struct {
	pol      slotsim.Policy
	resetPol func(*rng.Stream)
	adapted  ctsim.Policy         // CT mode: pol behind the slot adapter
	src      *ctsim.RenewalSource // CT mode arrival source
	arr      *workload.Renewal    // slot mode arrival process
	// faults is the cached per-(owner, class) ctsim fault config; cfg
	// points at it when the spec enables crash/retry faults. Its Stream
	// aliases the owner's fault stream, reseeded per instance.
	faults ctsim.Faults
	// cfg is the instance configuration for this (worker, class) pair —
	// every field is constant across instances (the per-instance state
	// lives in the stream, source, and policy, all reset in place) — so
	// it is validated once here and every Reset takes the
	// ctsim.ResetValidated fast path.
	cfg ctsim.Config
}

// build fills one classScratch for class ci with policy, simulator,
// and fault streams owned by the caller (a worker's scratch, or one
// lane of a coupled group) and an optional shared resource wired into
// the cached config. It performs the only allocations ever made per
// (owner, class); every instance after that reuses the set via resets.
func (cs *classScratch) build(r *runner, ci int, polStream, simStream, faultStream *rng.Stream, res ctsim.Resource) error {
	cc := &r.classes[ci]
	pol, err := buildSlotPolicy(cc, r.spec.QueueCap, r.spec.LatencyWeight, polStream)
	if err != nil {
		return err
	}
	reset, err := policyReset(pol)
	if err != nil {
		return err
	}
	cs.pol, cs.resetPol = pol, reset
	if r.spec.Mode == ModeCT {
		cs.adapted = ctsim.Adapt(pol, r.spec.Period)
		if cs.src, err = ctsim.NewRenewalSource(cc.arrDist); err != nil {
			return err
		}
		// Instances never run past the spec horizon, so the source can
		// size its pre-draw blocks against it instead of buying a full
		// ramp block for the one speculative past-horizon draw. Purely a
		// sizing hint: arrival sequences (and so all output) are
		// unchanged.
		cs.src.SetLimit(r.spec.Horizon)
		cs.cfg = ctsim.Config{
			Device:         cc.src.Device,
			QueueCap:       r.spec.QueueCap,
			LatencyWeight:  r.spec.LatencyWeight / r.spec.Period,
			Policy:         cs.adapted,
			Source:         cs.src,
			Stream:         simStream,
			DecisionPeriod: r.spec.Period,
			Resource:       res,
		}
		if f := r.spec.Faults; f.crashOrRetry() {
			cs.faults = ctsim.Faults{
				CrashMTBF:  f.CrashMTBF,
				RepairMean: f.RepairMean,
				FailProb:   f.FailProb,
				RetryMax:   f.RetryMax,
				Backoff:    f.Backoff,
				Stream:     faultStream,
			}
			cs.cfg.Faults = &cs.faults
		}
		if err := cs.cfg.Validate(); err != nil {
			return err
		}
	} else {
		if cs.arr, err = workload.NewRenewal(cc.arrDist); err != nil {
			return err
		}
	}
	return nil
}

// classState returns the worker's pooled objects for class ci, building
// them on first use (the only allocations a worker ever performs per
// class; every instance after that reuses them via resets).
func (ws *workerScratch) classState(r *runner, ci int) (*classScratch, error) {
	if ws.classes == nil {
		ws.classes = make([]classScratch, len(r.classes))
	}
	cs := &ws.classes[ci]
	if cs.pol != nil {
		return cs, nil
	}
	if err := cs.build(r, ci, &ws.polStream, &ws.simStream, &ws.faultStream, nil); err != nil {
		// Discard the half-built set: the memo check keys on cs.pol, so a
		// partially-filled scratch would be handed out as complete to the
		// worker's next shard of this class and panic instead of failing
		// with the real error.
		*cs = classScratch{}
		return nil, err
	}
	return cs, nil
}

func newRunner(spec Spec) (*runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &runner{spec: spec}
	for ci := range spec.Classes {
		c := spec.Classes[ci]
		sl, err := c.Device.Slot(spec.Period)
		if err != nil {
			return nil, fmt.Errorf("fleet: class %d (%s): %w", ci, c.Name(), err)
		}
		name, param, err := parsePolicy(c.Policy)
		if err != nil {
			return nil, err
		}
		// Interarrival law in the running kernel's time unit: seconds
		// for CT; slots for slot mode (rate/sec × period = rate/slot).
		arrRate := c.RatePerSec
		if spec.Mode == ModeSlot {
			arrRate *= spec.Period
		}
		arrDist, err := dist.ByName(c.Dist, arrRate)
		if err != nil {
			return nil, fmt.Errorf("fleet: class %d (%s): %w", ci, c.Name(), err)
		}
		r.classes = append(r.classes, compiledClass{
			src:      c,
			name:     c.Name(),
			slotted:  sl,
			maxPower: c.Device.MaxPower(),
			polName:  name,
			polParam: param,
			arrDist:  arrDist,
		})
		for w := 0; w < c.Weight; w++ {
			r.pattern = append(r.pattern, ci)
		}
	}
	r.classOffsets = make([][]int, len(r.classes))
	for p, ci := range r.pattern {
		r.classOffsets[ci] = append(r.classOffsets[ci], p)
	}
	return r, nil
}

// classOf returns the class index of instance i — the weighted
// round-robin interleave, a pure function of the spec.
func (r *runner) classOf(i int) int { return r.pattern[i%len(r.pattern)] }

// cancelChunkTicks bounds cancellation latency: instances run in chunks
// of this many governor ticks (CT mode, × Period seconds each) or slots
// (slot mode) and poll the context between chunks.
const cancelChunkTicks = 8192

// prepareInstance points the worker's pooled objects at instance i:
// class objects built (first use only), streams reseeded from the
// instance seed, policy and source reset. After it returns, running the
// instance is bit-identical to building everything fresh — with zero
// heap allocations (TestFleetInstanceSetupAllocationFree).
func (r *runner) prepareInstance(i int, ws *workerScratch) (*classScratch, error) {
	cs, err := ws.classState(r, r.classOf(i))
	if err != nil {
		return nil, err
	}
	r.seedInstance(i, ws)
	cs.resetPol(&ws.polStream)
	return cs, nil
}

// seedInstance derives instance i's policy and simulation streams from
// its per-instance seed — the stream-derivation half of prepareInstance,
// for callers that already hold the class scratch.
func (r *runner) seedInstance(i int, ws *workerScratch) {
	ws.root.Reseed(engine.SeedFor(r.spec.Seed, uint64(i)))
	ws.root.SplitInto(&ws.polStream)
	ws.root.SplitInto(&ws.simStream)
	if r.spec.Faults.crashOrRetry() {
		ws.root.SplitInto(&ws.faultStream)
	}
}

// runInstanceCT executes instance i on the worker's reusable simulator
// and folds its metrics into sum (the test-facing wrapper of
// instanceCT).
func (r *runner) runInstanceCT(ctx context.Context, i int, ws *workerScratch, sum *Summary) error {
	ci := r.classOf(i)
	cs, err := ws.classState(r, ci)
	if err != nil {
		return err
	}
	var res instanceResult
	if err := r.instanceCT(ctx, i, &r.classes[ci], cs, ws, &res); err != nil {
		return err
	}
	sum.addInstance(ci, res)
	return nil
}

// instanceCT executes instance i on the worker's reusable simulator and
// writes its result row into *out (every field is assigned, so a reused
// row slot carries nothing over; on error *out is meaningless). cc and
// cs must be instance i's class — the shard loop runs class-major and
// hoists that lookup out of its inner loop. The instance configuration
// is the class's cached prevalidated Config, so steady-state turnover
// is reseed + resets + ResetValidated — no validation pass, no Config
// assembly.
func (r *runner) instanceCT(ctx context.Context, i int, cc *compiledClass, cs *classScratch, ws *workerScratch, out *instanceResult) error {
	r.seedInstance(i, ws)
	cs.resetPol(&ws.polStream)
	cs.src.Reset()
	var err error
	if ws.sim == nil {
		if ws.sim, err = ctsim.NewWithKernel(r.newKernel(1), cs.cfg); err != nil {
			return err
		}
		// Instances never run past the horizon, so events landing beyond
		// it can skip the kernel; the hint survives ResetValidated.
		ws.sim.SetHorizonHint(r.spec.Horizon)
	} else if err = ws.sim.ResetValidated(cs.cfg); err != nil {
		return err
	}
	if err := ws.sim.RunChunked(ctx, r.spec.Horizon, r.spec.Period*cancelChunkTicks); err != nil {
		return err
	}
	m := ws.sim.MetricsView()
	avgPower := m.AvgPowerW()
	out.avgPowerW = avgPower
	out.energyRed = 1 - avgPower/cc.maxPower
	out.meanWaitSec = m.MeanWaitSeconds()
	out.lossRate = m.LossRate()
	out.energyJ = m.EnergyJ
	out.arrived = m.Arrived
	out.served = m.Served
	out.lost = m.Lost
	out.downtimeSec = m.DowntimeSec
	out.energyOutageJ = m.EnergyOutageJ
	out.crashes = m.Crashes
	out.retries = m.Retries
	out.retryExhausted = m.RetryExhausted
	out.lostToOutage = m.LostToOutage
	out.events = ws.sim.FiredEvents()
	return nil
}

// runInstanceSlot executes instance i on the worker's reusable slotted
// simulator and folds its metrics into sum (the test-facing wrapper of
// instanceSlot).
func (r *runner) runInstanceSlot(ctx context.Context, i int, ws *workerScratch, sum *Summary) error {
	ci := r.classOf(i)
	cs, err := ws.classState(r, ci)
	if err != nil {
		return err
	}
	var res instanceResult
	if err := r.instanceSlot(ctx, i, &r.classes[ci], cs, ws, &res); err != nil {
		return err
	}
	sum.addInstance(ci, res)
	return nil
}

// instanceSlot executes instance i on the worker's reusable slotted
// simulator and writes its result row into *out. cc and cs must be
// instance i's class (see instanceCT).
func (r *runner) instanceSlot(ctx context.Context, i int, cc *compiledClass, cs *classScratch, ws *workerScratch, out *instanceResult) error {
	r.seedInstance(i, ws)
	cs.resetPol(&ws.polStream)
	cs.arr.Reset()
	var err error
	cfg := slotsim.Config{
		Device:        cc.slotted,
		Arrivals:      cs.arr,
		QueueCap:      r.spec.QueueCap,
		Policy:        cs.pol,
		Stream:        &ws.simStream,
		LatencyWeight: r.spec.LatencyWeight,
	}
	if ws.slot == nil {
		if ws.slot, err = slotsim.New(cfg); err != nil {
			return err
		}
	} else if err = ws.slot.Reset(cfg); err != nil {
		return err
	}
	sim := ws.slot
	slots := int64(math.Ceil(r.spec.Horizon/r.spec.Period - 1e-9))
	var m slotsim.Metrics
	// Poll the context between chunks, not before the first: an instance
	// that fits in one chunk costs no context check here (the shard loop
	// polls per batch of instances).
	for remaining := slots; remaining > 0; {
		chunk := int64(cancelChunkTicks)
		if remaining < chunk {
			chunk = remaining
		}
		if m, err = sim.Run(chunk, nil); err != nil {
			return err
		}
		remaining -= chunk
		if remaining > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	p := m.AvgPowerW(r.spec.Period)
	out.avgPowerW = p
	out.energyRed = 1 - p/cc.maxPower
	out.meanWaitSec = m.MeanWaitSlots() * r.spec.Period
	out.lossRate = m.LossRate()
	out.energyJ = m.EnergyJ
	out.arrived = m.Arrived
	out.served = m.Served
	out.lost = m.Lost
	out.events = uint64(m.Slots)
	return nil
}

// runShard executes one contiguous block of instances and returns its
// streaming summary.
//
// Execution is class-major: all of the shard's instances of class 0,
// then class 1, and so on — consecutive instances share the compiled
// interarrival law, the pooled policy's code paths, and the class
// config, so branch predictors and the per-class working set stay warm
// instead of being evicted every instance by the round-robin interleave.
// Results land in the worker's flat struct-of-arrays row store and are
// folded into the summary afterwards in ascending instance order —
// bit-identical to instance-major execution, because each instance's
// randomness is a pure function of its own seed and the fold order is
// unchanged.
func (r *runner) runShard(ctx context.Context, shard int, ws *workerScratch) (*Summary, error) {
	if r.spec.Couple != CoupleNone {
		return r.runShardCoupled(ctx, shard, ws)
	}
	lo := shard * r.spec.ShardSize
	hi := lo + r.spec.ShardSize
	if hi > r.spec.Devices {
		hi = r.spec.Devices
	}
	n := hi - lo
	if cap(ws.results) < n {
		ws.results = make([]instanceResult, n)
	}
	res := ws.results[:n]
	L := len(r.pattern)
	// The context is polled here once per pollEvery instances (instances
	// shorter than a cancellation chunk never poll it themselves), so a
	// canceled run stops within a bounded handful of instances without
	// paying a per-instance context check — Err on a cancelable context
	// takes a mutex, which is measurable at a million instances.
	const pollEvery = 16
	polled := 0
	for ci := range r.classes {
		cc := &r.classes[ci]
		// Built on first need: a class with no instances in [lo, hi) is
		// never built, so a class whose scratch cannot be constructed
		// fails exactly the shards that contain it — not every shard the
		// worker touches.
		var cs *classScratch
		for _, off := range r.classOffsets[ci] {
			// First instance >= lo congruent to off mod L, then stride L.
			first := lo + (off-lo%L+L)%L
			if first >= hi {
				continue
			}
			if cs == nil {
				var err error
				if cs, err = ws.classState(r, ci); err != nil {
					return nil, err
				}
			}
			for i := first; i < hi; i += L {
				if polled&(pollEvery-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				polled++
				var err error
				if r.spec.Mode == ModeCT {
					err = r.instanceCT(ctx, i, cc, cs, ws, &res[i-lo])
				} else {
					err = r.instanceSlot(ctx, i, cc, cs, ws, &res[i-lo])
				}
				if err != nil {
					return nil, fmt.Errorf("fleet: instance %d (%s): %w", i, cc.name, err)
				}
			}
		}
	}
	sum := r.takeSummary(n)
	for i := lo; i < hi; i++ {
		sum.addInstance(r.classOf(i), res[i-lo])
	}
	return sum, nil
}

// ShardError records one failed shard of a fleet run: the shard index,
// the instance range it owned, and the failure (an *engine.PanicError
// if the shard's worker panicked).
type ShardError struct {
	Shard  int
	Lo, Hi int // instance range [Lo, Hi) the shard owned
	Err    error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (instances [%d,%d)): %v", e.Shard, e.Lo, e.Hi, e.Err)
}

// Unwrap exposes the shard's underlying error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// PartialError reports a fleet run that degraded gracefully: some
// shards failed (listed ascending by shard index), every other shard
// finished, and Run still returned the merged summary of the
// survivors. Callers that can use a partial fleet (reporting tools,
// sweeps) inspect the summary; callers that cannot treat it like any
// other error.
type PartialError struct {
	// Failed lists the failed shards, ascending by shard index.
	Failed []ShardError
	// Shards is the run's total shard count.
	Shards int
}

// Error implements error, listing up to five failed shards.
func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d of %d shards failed:", len(e.Failed), e.Shards)
	for i := range e.Failed {
		if i == 5 {
			fmt.Fprintf(&b, "; and %d more", len(e.Failed)-i)
			break
		}
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, " %v", &e.Failed[i])
	}
	return b.String()
}

// Run simulates the fleet on the pool (nil pool = GOMAXPROCS workers)
// and returns the merged fleet summary. Output is bit-identical for
// every pool size: shards are a pure function of the spec and their
// summaries stream through the fold in shard-index order
// (engine.MapReduceWorkers), so resident memory is O(workers + classes)
// — per-worker pooled simulators plus a bounded window of in-flight
// shard summaries — never O(devices), which is what makes a
// million-device fleet a time budget rather than a memory budget. (The
// exact-quantile opt-in is the one exception: it accumulates one float
// per instance; see Spec.Quantiles.)
//
// Shard failures degrade gracefully: a shard that errors or panics is
// dropped from the fold, the remaining shards still run, and Run
// returns the survivors' merged summary alongside a *PartialError
// naming the casualties. Context cancellation stays fatal (nil
// summary), as do spec errors.
func Run(ctx context.Context, spec Spec, pool *engine.Pool) (*Summary, error) {
	r, err := newRunner(spec)
	if err != nil {
		return nil, err
	}
	return runWith(ctx, r, pool)
}

// runWith is Run's body after spec validation, split out so tests can
// drive a deliberately poisoned runner through the degradation path.
func runWith(ctx context.Context, r *runner, pool *engine.Pool) (*Summary, error) {
	shards := r.spec.Shards()
	scratch := make([]workerScratch, pool.Size(shards))
	total := newSummary(r, 0)
	err := engine.MapReduceWorkersKeepGoing(ctx, pool, shards,
		func(ctx context.Context, worker, si int) (*Summary, error) {
			return r.runShard(ctx, si, &scratch[worker])
		},
		func(_ int, part *Summary) error {
			total.Merge(part)
			r.putSummary(part)
			return nil
		})
	total.Shards = shards
	if err == nil {
		return total, nil
	}
	var ep *engine.PartialError
	if !errors.As(err, &ep) {
		return nil, err
	}
	pe := &PartialError{Failed: make([]ShardError, len(ep.Failed)), Shards: shards}
	for i, je := range ep.Failed {
		lo := je.Index * r.spec.ShardSize
		hi := lo + r.spec.ShardSize
		if hi > r.spec.Devices {
			hi = r.spec.Devices
		}
		pe.Failed[i] = ShardError{Shard: je.Index, Lo: lo, Hi: hi, Err: je.Err}
	}
	return total, pe
}
