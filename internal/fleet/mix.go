package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/qlearn"
	"repro/internal/rng"
	"repro/internal/slotsim"
)

// Policies lists the policy names a Class may use. "timeout" and
// "adaptive-timeout" accept a numeric parameter after '=' (slots):
// timeout=8 parks after 8 idle slots.
func Policies() []string {
	return []string{"always-on", "greedy-off", "timeout", "adaptive-timeout", "predictive", "q-dpm"}
}

// parsePolicy splits a policy token into name and optional '=' parameter
// and validates the name.
func parsePolicy(tok string) (name string, param float64, err error) {
	name = tok
	param = -1
	if i := strings.IndexByte(tok, '='); i >= 0 {
		name = tok[:i]
		param, err = strconv.ParseFloat(tok[i+1:], 64)
		if err != nil || !(param >= 0) {
			return "", 0, fmt.Errorf("fleet: bad policy parameter in %q", tok)
		}
	}
	switch name {
	case "always-on", "greedy-off", "timeout", "adaptive-timeout", "predictive", "q-dpm":
		return name, param, nil
	default:
		return "", 0, fmt.Errorf("fleet: unknown policy %q (want %s)", tok, strings.Join(Policies(), ", "))
	}
}

// buildSlotPolicy constructs one slotted policy for the class's slotted
// device. The Q-DPM learner uses the canonical converging configuration
// (decaying exploration, polynomial rate). Every returned policy is
// resettable (see policyReset): one policy per (worker, class) serves
// every instance of that class, reset per instance.
func buildSlotPolicy(cc *compiledClass, queueCap int, latencyWeight float64, stream *rng.Stream) (slotsim.Policy, error) {
	switch cc.polName {
	case "always-on":
		return policy.NewAlwaysOn(cc.slotted)
	case "greedy-off":
		return policy.NewGreedyOff(cc.slotted)
	case "timeout":
		slots := int64(8)
		if cc.polParam >= 0 {
			slots = int64(cc.polParam)
		}
		return policy.NewFixedTimeout(cc.slotted, slots)
	case "adaptive-timeout":
		initial := int64(8)
		if cc.polParam >= 0 {
			initial = int64(cc.polParam)
		}
		return policy.NewAdaptiveTimeout(cc.slotted, initial, 1, 128)
	case "predictive":
		return policy.NewPredictive(cc.slotted, 0.5)
	case "q-dpm":
		return core.New(core.Config{
			Device:        cc.slotted,
			QueueCap:      queueCap,
			LatencyWeight: latencyWeight,
			Explore:       qlearn.EpsGreedy{Eps: 0.3, MinEps: 0.002, DecayTau: 30000},
			Alpha:         qlearn.Polynomial{Scale: 0.5, Omega: 0.65},
			Stream:        stream,
		})
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q", cc.polName)
	}
}

// policyReset derives the per-instance reset for a pooled policy: the
// Q-DPM learner rebinds its exploration stream; the classical policies
// restore their (possibly empty) adaptive state and ignore the stream.
// Reset-then-run is bit-identical to constructing fresh, which is what
// keeps instance turnover allocation-free.
func policyReset(pol slotsim.Policy) (func(*rng.Stream), error) {
	switch p := pol.(type) {
	case *core.Manager:
		return p.Reset, nil
	case interface{ Reset() }:
		return func(*rng.Stream) { p.Reset() }, nil
	default:
		return nil, fmt.Errorf("fleet: policy %s is not resettable", pol.Name())
	}
}

// ParseMix parses a fleet mix string: comma-separated classes of the
// form
//
//	device:dist:rate:policy[:weight]
//
// where device is a catalog name (device.Lookup), dist a dist.ByName
// key, rate the arrival rate in requests/second, policy a Policies
// entry (optionally parameterized, e.g. timeout=8), and weight the
// class's integer share of instances (default 1). Example:
//
//	hdd:exp:0.08:timeout=8:2,wlan:hyperexp:2:q-dpm:1
func ParseMix(s string) ([]Class, error) {
	var out []Class
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) != 4 && len(f) != 5 {
			return nil, fmt.Errorf("fleet: mix entry %q: want device:dist:rate:policy[:weight]", part)
		}
		dev, err := device.Lookup(f[0])
		if err != nil {
			return nil, fmt.Errorf("fleet: mix entry %q: %w", part, err)
		}
		rate, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: mix entry %q: bad rate %q", part, f[2])
		}
		c := Class{Device: dev, Dist: f[1], RatePerSec: rate, Policy: f[3], Weight: 1}
		if len(f) == 5 {
			w, err := strconv.Atoi(f[4])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("fleet: mix entry %q: bad weight %q", part, f[4])
			}
			c.Weight = w
		}
		if err := c.validate(len(out)); err != nil {
			return nil, fmt.Errorf("fleet: mix entry %q: %w", part, err)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fleet: empty mix")
	}
	return out, nil
}

// DefaultMix returns the canonical heterogeneous fleet: laptop disks
// under sparse Poisson traffic with a fixed timeout, WLAN NICs under
// bursty hyperexponential traffic and sensor radios under heavy-tailed
// Pareto traffic (both learning), and the paper's synthetic3 device
// under its canonical load split between the learner and the greedy
// baseline.
func DefaultMix() []Class {
	mk := func(name, dist string, rate float64, pol string, weight int) Class {
		dev, err := device.Lookup(name)
		if err != nil {
			panic("fleet: default mix device: " + err.Error())
		}
		return Class{Device: dev, Dist: dist, RatePerSec: rate, Policy: pol, Weight: weight}
	}
	return []Class{
		mk("hdd", "exp", 0.08, "timeout=8", 2),
		mk("wlan", "hyperexp", 2, "q-dpm", 2),
		mk("sensor-radio", "pareto", 5, "greedy-off", 1),
		mk("synthetic3", "exp", 0.2, "q-dpm", 3),
	}
}
