package fleet

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

// faultedSpec returns a small heterogeneous faulted fleet. couple
// CoupleNone exercises the uncoupled crash/retry path; a couple mode
// adds scheduled outage windows on the shared resource.
func faultedSpec(couple CoupleMode) Spec {
	sp := Spec{
		Devices: 37,
		Classes: DefaultMix(),
		Mode:    ModeCT,
		Horizon: 120,
		Seed:    42,
		Faults: &FaultSpec{
			CrashMTBF:  40,
			RepairMean: 6,
			FailProb:   0.08,
			RetryMax:   2,
			Backoff:    0.5,
		},
	}
	if couple != CoupleNone {
		sp.ShardSize = 10
		sp.Couple = couple
		sp.CoupleSize = 5
		sp.Faults.OutagePeriod = 30
		sp.Faults.OutageDuration = 5
	}
	return sp
}

// TestFleetFaultedBitIdenticalAcrossPoolSizes is the PR's determinism
// property test: with crash/retry faults enabled — uncoupled and under
// each of the three shared resources with scheduled outage windows on
// top — the merged summary (resilience accumulators included) is
// identical for every worker count.
func TestFleetFaultedBitIdenticalAcrossPoolSizes(t *testing.T) {
	for _, couple := range []CoupleMode{CoupleNone, CoupleChannel, CoupleGateway, CouplePower} {
		name := string(couple)
		if couple == CoupleNone {
			name = "uncoupled"
		}
		t.Run(name, func(t *testing.T) {
			spec := faultedSpec(couple)
			serial, err := Run(context.Background(), spec, &engine.Pool{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				pooled, err := Run(context.Background(), spec, &engine.Pool{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, pooled) {
					t.Fatalf("summary differs between 1 and %d workers:\n%+v\nvs\n%+v", workers, serial, pooled)
				}
			}
			if !serial.Faulted {
				t.Fatalf("summary not marked faulted: %+v", serial)
			}
			if serial.Crashes == 0 || serial.Retries == 0 {
				t.Fatalf("faulted fleet injected nothing: crashes=%d retries=%d", serial.Crashes, serial.Retries)
			}
			if !(serial.DowntimeSec.Mean() > 0) || !(serial.Availability() < 1) {
				t.Fatalf("no downtime accrued: %+v", serial)
			}
		})
	}
}

// TestFleetFaultedOutageSignatures checks each resource's outage
// signature: a jammed channel parks requesters (contention wait), a
// down gateway sheds as LostToOutage, and a browned-out power budget
// denies more transitions than an un-faulted budget run.
func TestFleetFaultedOutageSignatures(t *testing.T) {
	run := func(spec Spec) *Summary {
		t.Helper()
		sum, err := Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	outageOnly := func(couple CoupleMode) Spec {
		sp := faultedSpec(couple)
		// Outage windows only: no crashes or transient failures, so
		// every effect below is attributable to the windows.
		sp.Faults = &FaultSpec{OutagePeriod: 30, OutageDuration: 6}
		return sp
	}
	if s := run(outageOnly(CoupleChannel)); !(s.ResourceWaitSec.Mean() > 0) {
		t.Fatalf("channel jams produced no contention wait: %+v", s)
	}
	if s := run(outageOnly(CoupleGateway)); s.LostToOutage == 0 {
		t.Fatalf("gateway downtime shed nothing: %+v", s)
	} else if s.Crashes != 0 || s.Retries != 0 || !(s.DowntimeSec.Mean() == 0) {
		t.Fatalf("outage-only run accrued crash/retry metrics: %+v", s)
	}
	base := run(coupledSpec(CouplePower))
	browned := outageOnly(CouplePower)
	browned.Horizon = 60 // match coupledSpec
	browned.Faults.BrownoutFrac = 0.3
	if s := run(browned); s.BudgetDenied <= base.BudgetDenied {
		t.Fatalf("brownout denied %d transitions, un-faulted budget denied %d — want more under the browned-out cap",
			s.BudgetDenied, base.BudgetDenied)
	}
}

// TestFleetFaultMonotonicity pins the resilience metrics' direction: as
// the fault severity rises, availability falls and losses rise.
func TestFleetFaultMonotonicity(t *testing.T) {
	run := func(f *FaultSpec) *Summary {
		t.Helper()
		sp := Spec{
			Devices: 32,
			Classes: DefaultMix(),
			Mode:    ModeCT,
			Horizon: 120,
			Seed:    7,
			Faults:  f,
		}
		sum, err := Run(context.Background(), sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	mild := run(&FaultSpec{CrashMTBF: 200, RepairMean: 5, FailProb: 0.02})
	severe := run(&FaultSpec{CrashMTBF: 30, RepairMean: 15, FailProb: 0.2})
	if !(severe.Availability() < mild.Availability()) {
		t.Fatalf("availability %.4f (severe) not below %.4f (mild)", severe.Availability(), mild.Availability())
	}
	if !(severe.LossOverall() > mild.LossOverall()) {
		t.Fatalf("loss %.4f (severe) not above %.4f (mild)", severe.LossOverall(), mild.LossOverall())
	}
	if severe.Crashes <= mild.Crashes || severe.Retries <= mild.Retries {
		t.Fatalf("severe fault counters not above mild: severe=%+v mild=%+v", severe, mild)
	}
}

// TestFleetUnfaultedIdenticalToNilFaults pins the byte-identity
// contract's summary half: a spec with Faults nil produces a summary
// equal (field for field, Faulted echo aside) to the same spec run
// before the fault layer existed — guarded here by checking every
// resilience aggregate is exactly zero and availability is exactly 1.
func TestFleetUnfaultedIdenticalToNilFaults(t *testing.T) {
	spec := coupledSpec(CoupleChannel)
	sum, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Faulted {
		t.Fatalf("unfaulted run marked faulted")
	}
	if sum.Crashes != 0 || sum.Retries != 0 || sum.RetryExhausted != 0 || sum.LostToOutage != 0 ||
		sum.DowntimeSec.Mean() != 0 || sum.EnergyOutageJ != 0 {
		t.Fatalf("unfaulted run accrued resilience metrics: %+v", sum)
	}
	if sum.Availability() != 1 {
		t.Fatalf("unfaulted availability = %v, want exactly 1", sum.Availability())
	}
}

// TestFleetPartialFailureDegradesGracefully drives a deliberately
// poisoned runner (one class's arrival law nulled after validation)
// through the shard loop and checks graceful degradation: the other
// shards finish, the survivors' merged summary comes back alongside a
// *PartialError naming exactly the poisoned shards with their instance
// ranges, and the partial summary is still bit-identical across pool
// sizes.
func TestFleetPartialFailureDegradesGracefully(t *testing.T) {
	spec := Spec{Devices: 8, Classes: DefaultMix(), Mode: ModeCT, Horizon: 30, ShardSize: 1, Seed: 9}
	poisoned := func(workers int) (*Summary, error) {
		r, err := newRunner(spec)
		if err != nil {
			t.Fatal(err)
		}
		r.classes[0].arrDist = nil
		return runWith(context.Background(), r, &engine.Pool{Workers: workers})
	}
	sum, err := poisoned(1)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	// ShardSize 1: shard i holds exactly instance i, so the failed set
	// is the poisoned class's instance set.
	r, _ := newRunner(spec)
	var want []int
	for i := 0; i < spec.Devices; i++ {
		if r.classOf(i) == 0 {
			want = append(want, i)
		}
	}
	if pe.Shards != spec.Devices || len(pe.Failed) != len(want) {
		t.Fatalf("partial = %v, want %d failed of %d", pe, len(want), spec.Devices)
	}
	for j, se := range pe.Failed {
		if se.Shard != want[j] || se.Lo != want[j] || se.Hi != want[j]+1 {
			t.Fatalf("failed[%d] = %+v, want shard %d instances [%d,%d)", j, se, want[j], want[j], want[j]+1)
		}
	}
	if !strings.Contains(pe.Error(), "shards failed") {
		t.Fatalf("error text: %q", pe.Error())
	}
	if sum == nil || sum.Devices != int64(spec.Devices-len(want)) {
		t.Fatalf("survivor summary wrong: %+v (want %d devices)", sum, spec.Devices-len(want))
	}
	if sum.Classes[0].Instances != 0 || sum.Served == 0 {
		t.Fatalf("survivor summary inconsistent: %+v", sum)
	}
	for _, workers := range []int{2, 4} {
		pooled, err := poisoned(workers)
		if !errors.As(err, &pe) || len(pe.Failed) != len(want) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(sum, pooled) {
			t.Fatalf("workers=%d: partial summary diverged:\n%+v\nvs\n%+v", workers, sum, pooled)
		}
	}
}

// TestParseFaults covers the -faults grammar.
func TestParseFaults(t *testing.T) {
	f, err := ParseFaults("mtbf=150,repair=10,fail=0.05,retries=3,backoff=0.5,outage=60/5,brownout=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSpec{CrashMTBF: 150, RepairMean: 10, FailProb: 0.05, RetryMax: 3,
		Backoff: 0.5, OutagePeriod: 60, OutageDuration: 5, BrownoutFrac: 0.5}
	if *f != want {
		t.Fatalf("ParseFaults = %+v, want %+v", *f, want)
	}
	if got, err2 := ParseFaults(f.String()); err2 != nil || *got != want {
		t.Fatalf("round trip %q = %+v (%v), want %+v", f.String(), got, err2, want)
	}
	if f, err = ParseFaults("outage=60"); err != nil || f.OutagePeriod != 60 || f.OutageDuration != 0 {
		t.Fatalf("bare outage period: %+v, %v", f, err)
	}
	for _, bad := range []string{"", "mtbf", "mtbf=x", "bogus=1", "retries=1.5", "outage=a/b"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Fatalf("ParseFaults(%q) accepted", bad)
		}
	}
}

// TestSpecValidateFaults covers the fault-spec validation matrix.
func TestSpecValidateFaults(t *testing.T) {
	base := func() Spec {
		return Spec{Devices: 4, Classes: DefaultMix(), Horizon: 10}
	}
	ok := base()
	ok.Faults = &FaultSpec{CrashMTBF: 100}
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal crash spec rejected: %v", err)
	}
	if ok.Faults.RepairMean != defaultRepairMean {
		t.Fatalf("repair mean default = %v, want %v", ok.Faults.RepairMean, defaultRepairMean)
	}
	ok = base()
	ok.Faults = &FaultSpec{FailProb: 0.1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal retry spec rejected: %v", err)
	}
	if ok.Faults.RetryMax != defaultRetryMax || ok.Faults.Backoff != ok.Period {
		t.Fatalf("retry defaults = %+v (period %v)", ok.Faults, ok.Period)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"slot mode", func(sp *Spec) { sp.Mode = ModeSlot; sp.Faults = &FaultSpec{CrashMTBF: 10} }, "CT mode"},
		{"empty spec", func(sp *Spec) { sp.Faults = &FaultSpec{} }, "enables nothing"},
		{"negative mtbf", func(sp *Spec) { sp.Faults = &FaultSpec{CrashMTBF: -1} }, "MTBF"},
		{"bad prob", func(sp *Spec) { sp.Faults = &FaultSpec{FailProb: 1} }, "probability"},
		{"outage uncoupled", func(sp *Spec) { sp.Faults = &FaultSpec{OutagePeriod: 10} }, "couple"},
		{"outage too long", func(sp *Spec) {
			sp.Couple = CoupleChannel
			sp.Faults = &FaultSpec{OutagePeriod: 10, OutageDuration: 10}
		}, "duration"},
		{"bad brownout", func(sp *Spec) {
			sp.Couple = CouplePower
			sp.Faults = &FaultSpec{OutagePeriod: 10, BrownoutFrac: 2}
		}, "brownout"},
	}
	for _, tc := range cases {
		sp := base()
		tc.mut(&sp)
		err := sp.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
