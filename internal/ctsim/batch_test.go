package ctsim_test

// Batched arrival-draw tests: the buffered RenewalSource (armed by
// NewRenewalSource whenever the law implements dist.BulkSampler) must
// emit exactly the arrival sequence of an unbuffered source, draw block
// refills without allocating, and replay identically after Reset. The
// existing TestCTHotPathAllocationFree covers the batched path inside
// the full event loop; these tests isolate the source itself.

import (
	"testing"

	"repro/internal/ctsim"
	"repro/internal/dist"
	"repro/internal/rng"
)

// TestBatchedSourceMatchesUnbatched: for every stock law, a buffered
// source and a literal-constructed (bufferless) source emit bit-equal
// arrival times from equal streams.
func TestBatchedSourceMatchesUnbatched(t *testing.T) {
	for _, name := range dist.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := dist.ByName(name, 2.0)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := ctsim.NewRenewalSource(d)
			if err != nil {
				t.Fatal(err)
			}
			plain := &ctsim.RenewalSource{D: d} // no buffer armed
			sa, sb := rng.New(31), rng.New(31)
			for i := 0; i < 500; i++ {
				got, want := batched.Next(sa), plain.Next(sb)
				if got != want {
					t.Fatalf("arrival %d: batched %v, unbatched %v", i, got, want)
				}
			}
		})
	}
}

// TestBatchedSourceResetReplays: Reset must discard pre-drawn gaps and
// replay a fresh source's sequence exactly, including the block-size
// ramp (fresh stream, fresh cursor).
func TestBatchedSourceResetReplays(t *testing.T) {
	d, err := dist.ByName("pareto", 3.0)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ctsim.NewRenewalSource(d)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]float64, 100)
	s := rng.New(5)
	for i := range first {
		first[i] = src.Next(s)
	}
	// Stop mid-block (100 is not a block boundary on the 1→64 ramp),
	// then reset with an identically seeded stream.
	src.Reset()
	s2 := rng.New(5)
	for i := range first {
		if got := src.Next(s2); got != first[i] {
			t.Fatalf("arrival %d after Reset: %v, want %v", i, got, first[i])
		}
	}
}

// TestBatchedArrivalAllocationFree: steady-state Next calls — including
// every block refill past the construction-time buffer — allocate
// nothing. This is the batched-RNG arrival half of the CI alloc gate.
func TestBatchedArrivalAllocationFree(t *testing.T) {
	for _, name := range dist.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := dist.ByName(name, 2.0)
			if err != nil {
				t.Fatal(err)
			}
			src, err := ctsim.NewRenewalSource(d)
			if err != nil {
				t.Fatal(err)
			}
			s := rng.New(9)
			src.Next(s) // arm the first block
			avg := testing.AllocsPerRun(10, func() {
				for i := 0; i < 1000; i++ {
					src.Next(s)
				}
			})
			if avg > 0 {
				t.Errorf("batched arrival path allocates: %.2f allocs per 1000 draws, want 0", avg)
			}
		})
	}
}

// BenchmarkArrivalDraw compares the interface-dispatch-per-event draw
// against the batched path for the heavy-tailed law the fleet mix leans
// on.
func BenchmarkArrivalDraw(b *testing.B) {
	d, err := dist.ByName("pareto", 2.5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unbatched", func(b *testing.B) {
		src := &ctsim.RenewalSource{D: d}
		s := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Next(s)
		}
	})
	b.Run("batched", func(b *testing.B) {
		src, err := ctsim.NewRenewalSource(d)
		if err != nil {
			b.Fatal(err)
		}
		s := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Next(s)
		}
	})
}
