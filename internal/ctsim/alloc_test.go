package ctsim_test

import (
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/rng"
)

// TestMetricsSnapshotsDoNotAlias pins the snapshot contract: consecutive
// Metrics calls own independent StateTime slices — mutating one snapshot
// perturbs neither the other nor the simulator's own accumulator.
// Regression for the append([]float64(nil), ...) era, when a snapshot was
// fresh by construction; the reuse path must not reintroduce sharing.
func TestMetricsSnapshotsDoNotAlias(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewTimeout(psm, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: expSource(t, 0.4), Stream: rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(500); err != nil {
		t.Fatal(err)
	}
	a := sim.Metrics()
	b := sim.Metrics()
	if &a.StateTime[0] == &b.StateTime[0] {
		t.Fatal("consecutive snapshots share a StateTime backing array")
	}
	orig := b.StateTime[0]
	a.StateTime[0] = -1e9
	if b.StateTime[0] != orig {
		t.Fatal("mutating one snapshot changed the other")
	}
	if err := sim.Run(600); err != nil {
		t.Fatal(err)
	}
	c := sim.Metrics()
	if c.StateTime[0] < 0 {
		t.Fatal("mutating a snapshot corrupted the simulator's accumulator")
	}
}

// TestMetricsIntoReusesScratch: the MetricsInto path recycles the caller's
// StateTime backing array, matches Metrics exactly, and still does not
// alias simulator state.
func TestMetricsIntoReusesScratch(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewTimeout(psm, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: expSource(t, 0.4), Stream: rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(500); err != nil {
		t.Fatal(err)
	}
	want := sim.Metrics()
	var scratch ctsim.Metrics
	sim.MetricsInto(&scratch)
	backing := &scratch.StateTime[0]
	if scratch.EnergyJ != want.EnergyJ || scratch.Served != want.Served ||
		scratch.BacklogSeconds != want.BacklogSeconds || scratch.Horizon != want.Horizon {
		t.Fatalf("MetricsInto diverged from Metrics: %+v vs %+v", scratch, want)
	}
	for i := range want.StateTime {
		if scratch.StateTime[i] != want.StateTime[i] {
			t.Fatalf("StateTime[%d] = %v, want %v", i, scratch.StateTime[i], want.StateTime[i])
		}
	}
	// Second fill reuses the same backing array...
	if err := sim.Run(800); err != nil {
		t.Fatal(err)
	}
	sim.MetricsInto(&scratch)
	if &scratch.StateTime[0] != backing {
		t.Fatal("MetricsInto reallocated a sufficient scratch buffer")
	}
	// ...and writing through the scratch must not reach the simulator.
	scratch.StateTime[0] = -1e9
	if sim.Metrics().StateTime[0] < 0 {
		t.Fatal("MetricsInto scratch aliases simulator state")
	}
}

// TestResetMatchesFresh: a Reset simulator must reproduce a fresh New
// simulator bit for bit — this is what licenses per-worker Sim reuse in
// the experiment layer's replica grids.
func TestResetMatchesFresh(t *testing.T) {
	psm := device.Synthetic3()
	cfg := func(t *testing.T, seed uint64) ctsim.Config {
		pol, err := ctsim.NewTimeout(psm, 3)
		if err != nil {
			t.Fatal(err)
		}
		return ctsim.Config{
			Device: psm, QueueCap: 8, LatencyWeight: 0.6, Policy: pol,
			Source: expSource(t, 0.25), Stream: rng.New(seed),
		}
	}
	fresh := func(seed uint64) ctsim.Metrics {
		sim, err := ctsim.New(cfg(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3000); err != nil {
			t.Fatal(err)
		}
		return sim.Metrics()
	}
	// One reused Sim runs the same replica sequence.
	sim, err := ctsim.New(cfg(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{7, 8, 7} {
		if err := sim.Reset(cfg(t, seed)); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3000); err != nil {
			t.Fatal(err)
		}
		got, want := sim.Metrics(), fresh(seed)
		if got.EnergyJ != want.EnergyJ || got.Served != want.Served ||
			got.Arrived != want.Arrived || got.Lost != want.Lost ||
			got.BacklogSeconds != want.BacklogSeconds || got.Commands != want.Commands ||
			got.Decisions != want.Decisions || got.WaitSeconds != want.WaitSeconds {
			t.Fatalf("seed %d: reused sim diverged from fresh:\n got %+v\nwant %+v", seed, got, want)
		}
		for i := range want.StateTime {
			if got.StateTime[i] != want.StateTime[i] {
				t.Fatalf("seed %d: StateTime[%d] = %v, want %v", seed, i, got.StateTime[i], want.StateTime[i])
			}
		}
	}
}

// TestCTHotPathAllocationFree is the continuous-time analog of core's
// slotted-path gate: after warm-up (arena grown to its standing event
// population, queue ring sized), the event loop — arrivals, service,
// transitions, governor ticks, wake timers — performs no heap
// allocations. This is the allocation-regression gate CI relies on.
func TestCTHotPathAllocationFree(t *testing.T) {
	psm := device.Synthetic3()
	for _, tc := range []struct {
		name     string
		governor bool
	}{
		{"governor", true},
		{"event-driven", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ctsim.Config{
				Device: psm, QueueCap: 8, LatencyWeight: 0.6,
				Source: expSource(t, 1.5), Stream: rng.New(4),
			}
			if tc.governor {
				cfg.DecisionPeriod = 0.5
				cfg.Policy = ctsim.Adapt(benchTimeout{deep: device.StateID(psm.NumStates() - 1), slots: 8}, 0.5)
			} else {
				pol, err := ctsim.NewTimeout(psm, 4)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Policy = pol
			}
			sim, err := ctsim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.Run(2000); err != nil { // warm up
				t.Fatal(err)
			}
			horizon := 2000.0
			var scratch ctsim.Metrics
			avg := testing.AllocsPerRun(10, func() {
				horizon += 500
				if err := sim.Run(horizon); err != nil {
					t.Fatal(err)
				}
				sim.MetricsInto(&scratch)
			})
			if avg > 0 {
				t.Errorf("%s event loop allocates: %.1f allocs per 500 simulated seconds, want 0", tc.name, avg)
			}
		})
	}
}
