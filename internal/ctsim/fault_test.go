package ctsim_test

import (
	"math"
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/rng"
)

// TestCrashRepairExactDowntime replays the fault stream's draw sequence
// with a mirror stream and checks the simulator's crash count, downtime
// integral, and energy integral against the exact schedule: crashes are
// drawn while up, repairs at each crash, energy accrues only while up.
func TestCrashRepairExactDowntime(t *testing.T) {
	const (
		horizon = 400.0
		mtbf    = 60.0
		repair  = 8.0
		seed    = 99
	)
	psm := device.Synthetic3()
	pol, err := ctsim.NewAlwaysOn(psm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: traceSource(t, 1e9), Stream: rng.New(1),
		Faults: &ctsim.Faults{CrashMTBF: mtbf, RepairMean: repair, Stream: rng.New(seed)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()

	// Mirror the draw sequence: TTF at t=0 and at each repair, repair
	// duration at each crash that lands inside the horizon.
	mirror := rng.New(seed)
	var downtime float64
	var crashes int64
	now := 0.0
	for {
		c := now + mtbf*mirror.ExpFloat64()
		if c > horizon {
			break
		}
		crashes++
		r := c + repair*mirror.ExpFloat64()
		if r >= horizon {
			downtime += horizon - c // down through the horizon
			break
		}
		downtime += r - c
		now = r
	}
	if m.Crashes != crashes {
		t.Fatalf("crashes = %d, want %d", m.Crashes, crashes)
	}
	if math.Abs(m.DowntimeSec-downtime) > 1e-9*horizon {
		t.Fatalf("downtime = %v s, want %v s", m.DowntimeSec, downtime)
	}
	wantE := psm.States[0].Power * (horizon - downtime)
	if math.Abs(m.EnergyJ-wantE) > 1e-9*wantE {
		t.Fatalf("energy = %v J, want %v J (power only while up)", m.EnergyJ, wantE)
	}
	wantA := 1 - downtime/horizon
	if math.Abs(m.Availability()-wantA) > 1e-12 {
		t.Fatalf("availability = %v, want %v", m.Availability(), wantA)
	}
}

// TestRetryConservation: with transient failures only (no crashes),
// every request eventually serves or exhausts its retry budget — the
// arrival count is conserved exactly — and the retry machinery charges
// backoff energy and stretches waits relative to a fault-free run.
func TestRetryConservation(t *testing.T) {
	psm := device.Synthetic3()
	times := make([]float64, 40)
	for i := range times {
		times[i] = float64(i + 1)
	}
	run := func(f *ctsim.Faults) ctsim.Metrics {
		pol, err := ctsim.NewAlwaysOn(psm)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := ctsim.New(ctsim.Config{
			Device: psm, QueueCap: 64, Policy: pol,
			Source: traceSource(t, times...), Stream: rng.New(5),
			Faults: f,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(500); err != nil {
			t.Fatal(err)
		}
		return sim.Metrics()
	}
	base := run(nil)
	m := run(&ctsim.Faults{FailProb: 0.4, RetryMax: 2, Backoff: 0.05, Stream: rng.New(77)})
	if m.Arrived != 40 || m.Served+m.Lost != m.Arrived {
		t.Fatalf("conservation broken: arrived %d, served %d + lost %d", m.Arrived, m.Served, m.Lost)
	}
	if m.Lost != m.RetryExhausted {
		t.Fatalf("lost %d != retry-exhausted %d (no other loss path here)", m.Lost, m.RetryExhausted)
	}
	if m.Retries == 0 || m.RetryExhausted == 0 {
		t.Fatalf("p=0.4 over 40 requests injected nothing: %+v", m)
	}
	if !(m.EnergyOutageJ > 0) || m.EnergyOutageJ >= m.EnergyJ {
		t.Fatalf("backoff energy %v J out of range (total %v J)", m.EnergyOutageJ, m.EnergyJ)
	}
	if !(m.MeanWaitSeconds() > base.MeanWaitSeconds()) {
		t.Fatalf("retries did not stretch waits: %v <= %v", m.MeanWaitSeconds(), base.MeanWaitSeconds())
	}
	if base.Crashes != 0 || base.Retries != 0 || base.DowntimeSec != 0 || base.EnergyOutageJ != 0 {
		t.Fatalf("fault-free run accrued fault metrics: %+v", base)
	}
}

// TestCrashRetryCombined exercises crash/repair and retry/backoff
// together under a transitioning policy (timeout sleeps mid-run, so
// crashes land on transitions, sleeps, services, and backoff holds) and
// checks the books stay consistent: no request is double-counted, and
// anything unaccounted for is still queued within the cap.
func TestCrashRetryCombined(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewTimeout(psm, 2)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 80)
	for i := range times {
		times[i] = 0.7 * float64(i+1)
	}
	const queueCap = 16
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: queueCap, Policy: pol,
		Source: traceSource(t, times...), Stream: rng.New(11),
		Faults: &ctsim.Faults{
			CrashMTBF: 30, RepairMean: 5,
			FailProb: 0.3, RetryMax: 2, Backoff: 0.1,
			Stream: rng.New(12),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(600); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	if m.Crashes == 0 || m.Retries == 0 {
		t.Fatalf("combined faults injected nothing: %+v", m)
	}
	if pending := m.Arrived - m.Served - m.Lost; pending < 0 || pending > queueCap {
		t.Fatalf("books off: arrived %d, served %d, lost %d, pending %d", m.Arrived, m.Served, m.Lost, pending)
	}
	if m.Lost < m.RetryExhausted {
		t.Fatalf("lost %d < retry-exhausted %d", m.Lost, m.RetryExhausted)
	}
	if !(m.DowntimeSec > 0) || !(m.Availability() < 1) {
		t.Fatalf("no downtime: %+v", m)
	}
}

// TestFaultedResetMatchesFresh extends the reuse contract to the fault
// layer: a reused faulted simulator replays the exact metrics of a
// fresh one, seed for seed.
func TestFaultedResetMatchesFresh(t *testing.T) {
	psm := device.Synthetic3()
	cfg := func(t *testing.T, seed uint64) ctsim.Config {
		pol, err := ctsim.NewTimeout(psm, 3)
		if err != nil {
			t.Fatal(err)
		}
		return ctsim.Config{
			Device: psm, QueueCap: 8, LatencyWeight: 0.6, Policy: pol,
			Source: expSource(t, 0.25), Stream: rng.New(seed),
			Faults: &ctsim.Faults{
				CrashMTBF: 100, RepairMean: 6,
				FailProb: 0.1, RetryMax: 3, Backoff: 0.2,
				Stream: rng.New(seed + 1000),
			},
		}
	}
	fresh := func(seed uint64) ctsim.Metrics {
		sim, err := ctsim.New(cfg(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3000); err != nil {
			t.Fatal(err)
		}
		return sim.Metrics()
	}
	sim, err := ctsim.New(cfg(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{7, 8, 7} {
		if err := sim.Reset(cfg(t, seed)); err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(3000); err != nil {
			t.Fatal(err)
		}
		got, want := sim.Metrics(), fresh(seed)
		if got.EnergyJ != want.EnergyJ || got.Served != want.Served ||
			got.Arrived != want.Arrived || got.Lost != want.Lost ||
			got.WaitSeconds != want.WaitSeconds ||
			got.DowntimeSec != want.DowntimeSec || got.Crashes != want.Crashes ||
			got.Retries != want.Retries || got.RetryExhausted != want.RetryExhausted ||
			got.EnergyOutageJ != want.EnergyOutageJ {
			t.Fatalf("seed %d: reused faulted sim diverged from fresh:\n got %+v\nwant %+v", seed, got, want)
		}
		if want.Crashes == 0 && want.Retries == 0 {
			t.Fatalf("seed %d: faulted run injected nothing: %+v", seed, want)
		}
	}
}

// TestFaultConfigValidation covers the fault half of Config.Validate.
func TestFaultConfigValidation(t *testing.T) {
	psm := device.Synthetic3()
	base := func(t *testing.T) ctsim.Config {
		pol, err := ctsim.NewAlwaysOn(psm)
		if err != nil {
			t.Fatal(err)
		}
		return ctsim.Config{
			Device: psm, QueueCap: 8, Policy: pol,
			Source: expSource(t, 0.3), Stream: rng.New(1),
		}
	}
	cases := []struct {
		name string
		mut  func(*ctsim.Config)
	}{
		{"slot-compatible", func(c *ctsim.Config) {
			c.SlotCompatible = true
			c.DecisionPeriod = 1
			c.Faults = &ctsim.Faults{CrashMTBF: 10, RepairMean: 1, Stream: rng.New(2)}
		}},
		{"negative mtbf", func(c *ctsim.Config) {
			c.Faults = &ctsim.Faults{CrashMTBF: -1, Stream: rng.New(2)}
		}},
		{"crash without repair", func(c *ctsim.Config) {
			c.Faults = &ctsim.Faults{CrashMTBF: 10, Stream: rng.New(2)}
		}},
		{"prob one", func(c *ctsim.Config) {
			c.Faults = &ctsim.Faults{FailProb: 1, Backoff: 1, Stream: rng.New(2)}
		}},
		{"fail without backoff", func(c *ctsim.Config) {
			c.Faults = &ctsim.Faults{FailProb: 0.1, Stream: rng.New(2)}
		}},
		{"retry budget overflow", func(c *ctsim.Config) {
			c.Faults = &ctsim.Faults{FailProb: 0.1, Backoff: 1, RetryMax: 63, Stream: rng.New(2)}
		}},
		{"missing stream", func(c *ctsim.Config) {
			c.Faults = &ctsim.Faults{CrashMTBF: 10, RepairMean: 1}
		}},
	}
	for _, tc := range cases {
		cfg := base(t)
		tc.mut(&cfg)
		if _, err := ctsim.New(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
}
