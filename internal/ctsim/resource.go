// Shared-resource arbitration: the hook through which instances that
// share one event kernel (the coupled-fleet shard loop) contend for
// media the paper's power-managed devices share in real deployments — a
// WLAN cell's channel, a gateway's bounded queue, a node-level power
// budget. See internal/shared for the concrete resources.
package ctsim

// Verdict is a Resource's answer to a service-start request.
type Verdict int

const (
	// Grant admits the service immediately. The instance owes exactly
	// one ReleaseService when the service completes or aborts.
	Grant Verdict = iota
	// Wait queues the requester in the resource's FIFO wait queue; the
	// resource grants it later by calling ResourceGranted on the
	// requester (at which point the grantee owes the ReleaseService).
	// While waiting, the instance does not serve and its queued
	// requests keep accruing wait — the cross-device contention the
	// coupled mode exists to measure.
	Wait
	// Drop rejects the request outright: the instance drops the request
	// at its queue head (counted in both Metrics.Lost and
	// Metrics.ResourceDrops) and retries no earlier than its next state
	// change. Bounded-gateway semantics.
	Drop
	// DropOutage rejects the request because the resource is inside a
	// scheduled outage window (see shared.Outageable): same mechanics as
	// Drop, but the loss is attributed to the outage — counted in
	// Metrics.Lost and Metrics.LostToOutage, not ResourceDrops.
	DropOutage
)

// Resource arbitrates shared capacity among the simulation instances
// that schedule against one kernel. Implementations must be
// deterministic — grants follow FIFO request order, and every callback
// runs synchronously on the shared event loop — so a coupled run is a
// pure function of the spec, preserving the repository determinism
// contract. A nil Config.Resource disables arbitration entirely (the
// uncoupled fast path: no hook call is made).
//
// The simulator invokes the hooks at service start (RequestService),
// service completion or abort (ReleaseService), on leaving a service
// state while queued (CancelWait), and on every commanded power-state
// change (AllowTransition). One Resource instance is shared by all the
// sims of a coupled group; it is not safe for concurrent use, matching
// the kernel it guards.
type Resource interface {
	// RequestService asks to begin one request's service on behalf of
	// g at time now. Grant admits it now; Wait queues g FIFO for a
	// later ResourceGranted callback; Drop rejects it.
	RequestService(now float64, g ResourceClient) Verdict
	// ReleaseService returns the capacity RequestService granted
	// (directly or via ResourceGranted). Called exactly once per grant,
	// at service completion or abort. Releasing may synchronously grant
	// the head waiter.
	ReleaseService(now float64, g ResourceClient)
	// CancelWait withdraws a queued g (the device left its service
	// state before being granted). Called only while g is queued.
	CancelWait(now float64, g ResourceClient)
	// AllowTransition is consulted before a commanded power-state
	// change executes; deltaPowerW is the settled-state power the
	// change adds (negative for a downward transition). Returning false
	// vetoes the command — the device stays put and the denial is
	// counted in Metrics.BudgetDenied. Implementations that admit the
	// change must account its delta here (the simulator will not call
	// again for the same command).
	AllowTransition(now float64, g ResourceClient, deltaPowerW float64) bool
}

// ResourceClient is the waiter half of the Resource contract. *Sim
// implements it: a queued instance resumes its service start when the
// resource calls ResourceGranted.
type ResourceClient interface {
	// ResourceGranted delivers a deferred Grant at time now. The
	// callee starts the service it was queued for and owes the
	// matching ReleaseService.
	ResourceGranted(now float64)
}
