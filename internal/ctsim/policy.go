// Continuous-time decision interface, native baseline policies, and the
// adapter that runs any slotted policy (including the Q-DPM learner)
// unmodified in continuous time.
package ctsim

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/slotsim"
)

// Decision is a policy's command at a decision point.
type Decision struct {
	// Target is the desired power state.
	Target device.StateID
	// Wake > 0 requests a decision callback after Wake seconds even if no
	// other event occurs (event-driven mode only; each decision replaces
	// the previous request). Timeout-style policies use it to fire their
	// shutdown exactly when the idle threshold crosses.
	Wake float64
}

// Policy decides power-state commands in continuous time.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the command for the coming interval. It is only
	// called when the device is settled (not mid-transition).
	Decide(obs Observation) Decision
}

// Learner is a Policy that adapts online from per-interval feedback.
type Learner interface {
	Policy
	// Observe delivers the outcome of each decision interval. fb points
	// into scratch the simulator reuses every interval: it is valid only
	// for the duration of the call, and implementations must copy any
	// fields they keep.
	Observe(fb *Feedback)
}

// ---------------------------------------------------------------------------
// Native continuous-time baselines

// AlwaysOn keeps the device in its service state forever.
type AlwaysOn struct{ wake device.StateID }

// NewAlwaysOn derives the service state from the device.
func NewAlwaysOn(psm *device.PSM) (*AlwaysOn, error) {
	r, err := policy.DeriveRoles(psm)
	if err != nil {
		return nil, err
	}
	return &AlwaysOn{wake: r.Wake}, nil
}

// Name identifies the policy.
func (p *AlwaysOn) Name() string { return "always-on" }

// Decide always returns the service state.
func (p *AlwaysOn) Decide(Observation) Decision { return Decision{Target: p.wake} }

// GreedyOff sleeps the moment the queue is empty and wakes the moment it
// is not. Arrivals and completions are the only relevant state changes, so
// it needs no wake timer.
type GreedyOff struct{ r policy.Roles }

// NewGreedyOff derives role states from the device.
func NewGreedyOff(psm *device.PSM) (*GreedyOff, error) {
	r, err := policy.DeriveRoles(psm)
	if err != nil {
		return nil, err
	}
	return &GreedyOff{r: r}, nil
}

// Name identifies the policy.
func (p *GreedyOff) Name() string { return "greedy-off" }

// Decide wakes on backlog, sleeps otherwise.
func (p *GreedyOff) Decide(obs Observation) Decision {
	if obs.Queue > 0 {
		return Decision{Target: p.r.Wake}
	}
	return Decision{Target: p.r.Deep}
}

// Timeout is the continuous-time fixed timeout: park shallow while idle,
// drop to the deep state once the idle period exceeds Timeout seconds. In
// event-driven mode it requests a wake timer for the exact expiry instant,
// so the shutdown is not quantized to any grid.
type Timeout struct {
	r policy.Roles
	// Timeout is the idle threshold in seconds.
	Timeout float64
}

// NewTimeout validates the threshold (>= 0; 0 degenerates to greedy-off).
func NewTimeout(psm *device.PSM, timeout float64) (*Timeout, error) {
	if timeout < 0 || math.IsNaN(timeout) {
		return nil, fmt.Errorf("ctsim: negative timeout %v", timeout)
	}
	r, err := policy.DeriveRoles(psm)
	if err != nil {
		return nil, err
	}
	return &Timeout{r: r, Timeout: timeout}, nil
}

// Name identifies the policy.
func (p *Timeout) Name() string { return fmt.Sprintf("ct-timeout-%g", p.Timeout) }

// Decide wakes on backlog; otherwise parks shallow until the timeout
// expires, then deep, asking to be woken exactly at the expiry.
func (p *Timeout) Decide(obs Observation) Decision {
	if obs.Queue > 0 {
		return Decision{Target: p.r.Wake}
	}
	if obs.IdleTime >= p.Timeout {
		return Decision{Target: p.r.Deep}
	}
	d := Decision{Target: obs.Phase, Wake: p.Timeout - obs.IdleTime}
	if obs.Phase == p.r.Wake {
		d.Target = p.r.Shallow
	}
	return d
}

// ---------------------------------------------------------------------------
// Slotted-policy adapter

// slotAdapter exposes a slotsim.Policy as a ctsim.Policy under a periodic
// governor: continuous observations are quantized onto the reference slot
// (idle seconds → saturating idle-slot count, clock → slot index), so the
// slotted policy sees exactly the observation stream it was written for.
type slotAdapter struct {
	p    slotsim.Policy
	slot float64
	sat  int64

	// invSlot is 1/slot when slot is a power of two, else 0. For a
	// power-of-two slot, x/slot and x*(1/slot) are the same exponent
	// shift — bit-identical for every x — and the multiply avoids two
	// hardware divides per quantization on the canonical 0.5 s grid.
	invSlot float64

	// Single-entry quantization memo, armed only for learner adapters.
	// Under the periodic governor each learner tick quantizes the same
	// observation up to three times — once as the closing feedback's
	// Next, once as the decision input, and once more next tick as the
	// following feedback's Prev — so remembering the last (input,
	// output) pair turns two of the three into an equality check.
	// Non-learner adapters quantize once per tick and would only pay
	// the memo store. sObs is a pure function of its input for a given
	// slot/sat, so replaying the memo is bit-identical to recomputing.
	memoize bool
	memoIn  Observation
	memoOut slotsim.Observation
	memoOK  bool
}

// slotLearnerAdapter additionally forwards per-interval feedback, so
// slotted learners — the Q-DPM manager above all — run unmodified: the
// manager's SMDP update sees one feedback per decision interval and its
// γ^k discount over k intervals equals a discount over the actual sojourn
// time k·slot seconds.
type slotLearnerAdapter struct {
	slotAdapter
	l slotsim.Learner

	// sfb is the quantized-feedback scratch forwarded by pointer each
	// interval (the slotsim.Learner contract: receivers copy what they
	// keep), so the two-observation record is not copied twice per tick.
	sfb slotsim.Feedback
}

// Adapt wraps a slotted policy for continuous time with the given
// reference slot duration (seconds). The result implements Learner when p
// does. Use it with Config.DecisionPeriod == refSlot: slotted policies
// expect a decision per slot, so the periodic governor supplies their
// cadence; event-driven mode would starve them. A non-positive or
// non-finite refSlot is a programming error and panics.
func Adapt(p slotsim.Policy, refSlot float64) Policy {
	if !(refSlot > 0) || math.IsInf(refSlot, 0) {
		panic(fmt.Sprintf("ctsim: Adapt requires a positive finite reference slot, got %v", refSlot))
	}
	a := slotAdapter{p: p, slot: refSlot, sat: 1024}
	if frac, _ := math.Frexp(refSlot); frac == 0.5 {
		a.invSlot = 1 / refSlot
	}
	if l, ok := p.(slotsim.Learner); ok {
		a.memoize = true
		return &slotLearnerAdapter{slotAdapter: a, l: l}
	}
	return &a
}

// Name identifies the wrapped policy.
func (a *slotAdapter) Name() string { return a.p.Name() }

// sObs quantizes a continuous observation onto the reference slot grid.
func (a *slotAdapter) sObs(o Observation) slotsim.Observation {
	// Now advances between ticks, so comparing it first short-circuits
	// almost every miss before the full struct equality.
	if a.memoOK && o.Now == a.memoIn.Now && o == a.memoIn {
		return a.memoOut
	}
	var idleSlots, now float64
	if a.invSlot != 0 {
		idleSlots, now = o.IdleTime*a.invSlot, o.Now*a.invSlot
	} else {
		idleSlots, now = o.IdleTime/a.slot, o.Now/a.slot
	}
	idle := int64(math.Floor(idleSlots + 1e-9))
	if idle > a.sat {
		idle = a.sat
	}
	trem := 0
	if o.Transitioning {
		trem = int(math.Ceil(o.TransRemaining/a.slot - 1e-9))
	}
	out := slotsim.Observation{
		Phase:          o.Phase,
		Transitioning:  o.Transitioning,
		TransTarget:    o.TransTarget,
		TransRemaining: trem,
		Queue:          o.Queue,
		IdleSlots:      idle,
		Slot:           int64(math.Round(now)),
	}
	if a.memoize {
		a.memoIn, a.memoOut, a.memoOK = o, out, true
	}
	return out
}

// Decide forwards the quantized observation.
func (a *slotAdapter) Decide(o Observation) Decision {
	return Decision{Target: a.p.Decide(a.sObs(o))}
}

// Observe forwards the interval outcome as one slot of feedback. The
// scratch record is filled field by field — a composite literal would
// build a temporary Feedback and block-copy it into the scratch.
func (a *slotLearnerAdapter) Observe(fb *Feedback) {
	a.sfb.Prev = a.sObs(fb.Prev)
	a.sfb.Action = fb.Action
	a.sfb.Energy = fb.Energy
	a.sfb.Cost = fb.Cost
	a.sfb.Served = fb.Served
	a.sfb.Arrived = fb.Arrived
	a.sfb.Lost = fb.Lost
	a.sfb.Next = a.sObs(fb.Next)
	a.l.Observe(&a.sfb)
}
