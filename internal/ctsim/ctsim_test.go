package ctsim_test

import (
	"math"
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/trace"
)

func expSource(t *testing.T, rate float64) ctsim.Source {
	t.Helper()
	d, err := dist.NewExponential(rate)
	if err != nil {
		t.Fatal(err)
	}
	src, err := ctsim.NewRenewalSource(d)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func traceSource(t *testing.T, times ...float64) ctsim.Source {
	t.Helper()
	src, err := ctsim.NewTraceSource(&trace.Trace{Times: times})
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// Always-on under any arrival pattern draws exactly the active-state power
// for the whole horizon: the continuous energy integral has no slot
// quantization error.
func TestAlwaysOnEnergyIsExactIntegral(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewAlwaysOn(psm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: expSource(t, 0.3), Stream: rng.New(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 1000.0
	if err := sim.Run(horizon); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	want := psm.States[0].Power * horizon
	if math.Abs(m.EnergyJ-want) > 1e-9*want {
		t.Errorf("energy %v J, want %v J", m.EnergyJ, want)
	}
	if m.Horizon != horizon {
		t.Errorf("horizon %v, want %v", m.Horizon, horizon)
	}
	if m.Arrived == 0 || m.Served == 0 {
		t.Errorf("no traffic simulated: %+v", m)
	}
	if m.Lost != 0 && m.Arrived < int64(8) {
		t.Errorf("unexpected losses: %+v", m)
	}
}

// Sequential service: a single request takes exactly ServiceTime and the
// wait equals the service time when the device is already active.
func TestSequentialServiceCompletes(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewAlwaysOn(psm)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: traceSource(t, 3.0), Stream: rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(3.2); err != nil {
		t.Fatal(err)
	}
	if m := sim.Metrics(); m.Served != 0 {
		t.Fatalf("request served before its %v s service time elapsed", psm.ServiceTime)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	if m.Served != 1 {
		t.Fatalf("served %d, want 1", m.Served)
	}
	if math.Abs(m.WaitSeconds-psm.ServiceTime) > 1e-9 {
		t.Errorf("wait %v s, want service time %v s", m.WaitSeconds, psm.ServiceTime)
	}
}

// A same-instant burst beyond the queue capacity loses the excess.
func TestQueueOverflowCountsLosses(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewGreedyOff(psm)
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 10)
	for i := range times {
		times[i] = 1.0
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 4, Policy: pol,
		Source: traceSource(t, times...), Stream: rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(100); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	if m.Arrived != 10 || m.Lost != 6 {
		t.Fatalf("arrived %d lost %d, want 10/6", m.Arrived, m.Lost)
	}
	if m.Served != 4 {
		t.Fatalf("served %d, want 4", m.Served)
	}
}

// Event-driven timeout: with no pending work the policy's wake timer fires
// at exactly the idle threshold and the device drops to the deep state —
// no governor grid involved.
func TestEventDrivenTimeoutSleepsAtThreshold(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewTimeout(psm, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: traceSource(t, 1.0), Stream: rng.New(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Arrival at 1.0, served by 1.5; idle threshold crosses at 3.5; the
	// sleep transition (0.5 s) settles by 4.0.
	if err := sim.Run(50); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	deep := 2 // sleep state of synthetic3
	if m.StateTime[deep] == 0 {
		t.Fatalf("device never slept: %+v", m)
	}
	// It must sleep for the whole tail of the run: ~50 - 4.0 minus the
	// shallow dwell; anything above 45 s proves the timer fired on time.
	if m.StateTime[deep] < 45 {
		t.Errorf("deep-state time %v s, want > 45 s", m.StateTime[deep])
	}
	alwaysOnEnergy := psm.States[0].Power * 50
	if m.EnergyJ >= alwaysOnEnergy {
		t.Errorf("timeout policy saved no energy: %v J >= %v J", m.EnergyJ, alwaysOnEnergy)
	}
}

// The same seed reproduces a run bit for bit; different seeds do not.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) ctsim.Metrics {
		psm := device.Synthetic3()
		pol, err := ctsim.NewTimeout(psm, 3)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := ctsim.New(ctsim.Config{
			Device: psm, QueueCap: 8, Policy: pol,
			Source: expSource(t, 0.25), Stream: rng.New(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(5000); err != nil {
			t.Fatal(err)
		}
		return sim.Metrics()
	}
	a, b := run(7), run(7)
	if a.EnergyJ != b.EnergyJ || a.Served != b.Served || a.Commands != b.Commands {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := run(8)
	if a.EnergyJ == c.EnergyJ && a.Arrived == c.Arrived {
		t.Fatalf("different seeds produced identical runs")
	}
}

// Chunked Run calls (the experiment layer's cancellation pattern) must
// leave the trajectory identical to one long Run.
func TestChunkedRunMatchesSingleRun(t *testing.T) {
	build := func() *ctsim.Sim {
		psm := device.Synthetic3()
		pol, err := ctsim.NewTimeout(psm, 3)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := ctsim.New(ctsim.Config{
			Device: psm, QueueCap: 8, Policy: pol,
			Source: expSource(t, 0.25), Stream: rng.New(5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	one := build()
	if err := one.Run(4000); err != nil {
		t.Fatal(err)
	}
	many := build()
	for u := 250.0; u <= 4000; u += 250 {
		if err := many.Run(u); err != nil {
			t.Fatal(err)
		}
	}
	a, b := one.Metrics(), many.Metrics()
	if a.EnergyJ != b.EnergyJ || a.Served != b.Served || a.BacklogSeconds != b.BacklogSeconds {
		t.Fatalf("chunked run diverged: %+v vs %+v", a, b)
	}
}

// Regression for a float livelock in the event-driven wake timer: with
// Wake = threshold - elapsed, the re-armed fire time now + Wake can round
// to exactly now when the previous wake landed an ulp below the
// threshold, and the simulation then re-observed identical state at the
// same instant forever. This seed/rate pair reproduced it within the
// first simulated second; the fix bumps a non-advancing wake to the next
// representable instant.
func TestWakeTimerFloatLivelockRegression(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewTimeout(psm, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: expSource(t, 0.4), Stream: rng.New(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(500); err != nil {
		t.Fatal(err)
	}
	// A livelocked run never returns; a healthy one fires ~1 event per
	// arrival/decision. The bound just documents the expected magnitude.
	if f := sim.FiredEvents(); f > 100000 {
		t.Fatalf("fired %d events over 500 s — wake timer spinning", f)
	}
}

// The adapter's observation quantization: idle seconds floor onto the slot
// grid with saturation, matching slotsim's idle counter convention.
func TestAdapterIdleQuantization(t *testing.T) {
	probe := &probePolicy{}
	ad := ctsim.Adapt(probe, 0.5)
	ad.Decide(ctsim.Observation{IdleTime: 0.75, Now: 1.0})
	if probe.last.IdleSlots != 1 {
		t.Errorf("idle 0.75 s at slot 0.5 → %d slots, want 1", probe.last.IdleSlots)
	}
	if probe.last.Slot != 2 {
		t.Errorf("now 1.0 s → slot %d, want 2", probe.last.Slot)
	}
	ad.Decide(ctsim.Observation{IdleTime: 1e6, Now: 0})
	if probe.last.IdleSlots != 1024 {
		t.Errorf("idle saturation → %d, want 1024", probe.last.IdleSlots)
	}
}

// probePolicy is a slotsim.Policy that records the observation it is
// handed, exposing what the adapter's quantization produced.
type probePolicy struct{ last slotsim.Observation }

func (p *probePolicy) Name() string { return "probe" }

func (p *probePolicy) Decide(o slotsim.Observation) device.StateID {
	p.last = o
	return o.Phase
}

func TestConfigValidation(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewAlwaysOn(psm)
	if err != nil {
		t.Fatal(err)
	}
	base := ctsim.Config{
		Device: psm, QueueCap: 8, Policy: pol,
		Source: traceSource(t, 1), Stream: rng.New(1),
	}
	bad := []func(c *ctsim.Config){
		func(c *ctsim.Config) { c.Device = nil },
		func(c *ctsim.Config) { c.Policy = nil },
		func(c *ctsim.Config) { c.Source = nil },
		func(c *ctsim.Config) { c.Stream = nil },
		func(c *ctsim.Config) { c.QueueCap = -1 },
		func(c *ctsim.Config) { c.LatencyWeight = -1 },
		func(c *ctsim.Config) { c.InitialState = 99 },
		func(c *ctsim.Config) { c.DecisionPeriod = -0.5 },
		func(c *ctsim.Config) { c.SlotCompatible = true }, // no period
		func(c *ctsim.Config) { c.ServiceTime = -1 },
		func(c *ctsim.Config) { c.DecisionPeriod = 0.1; c.SlotCompatible = true }, // period < service
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if _, err := ctsim.New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := ctsim.New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestSourceReset: both source kinds rewind in place — a reset renewal
// source replays the same arrival sequence a fresh one would, and a
// reset trace source restarts at the first recorded time.
func TestSourceReset(t *testing.T) {
	d, err := dist.NewExponential(2)
	if err != nil {
		t.Fatal(err)
	}
	ren, err := ctsim.NewRenewalSource(d)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3)
	for i := 0; i < 100; i++ {
		ren.Next(s)
	}
	ren.Reset()
	fresh, err := ctsim.NewRenewalSource(d)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := rng.New(8), rng.New(8)
	for i := 0; i < 200; i++ {
		if got, want := ren.Next(sa), fresh.Next(sb); got != want {
			t.Fatalf("arrival %d: reset source %v != fresh %v", i, got, want)
		}
	}

	tr, err := ctsim.NewTraceSource(&trace.Trace{Times: []float64{0.5, 1.5, 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	for !math.IsInf(tr.Next(nil), 1) {
	}
	tr.Reset()
	if got := tr.Next(nil); got != 0.5 {
		t.Fatalf("reset trace source starts at %v, want 0.5", got)
	}
}
