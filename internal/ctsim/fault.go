package ctsim

import (
	"fmt"
	"math"

	"repro/internal/eventq"
	"repro/internal/rng"
)

// Faults configures deterministic fault injection. nil (the default)
// disables the fault layer entirely: the simulator makes no fault
// branches' calls and no fault-stream draws, so a fault-free run is
// bit-identical to one on a build without the fault code.
//
// All randomness comes from Stream, a lane dedicated to faults and
// separate from the policy and arrival lanes, so enabling faults never
// perturbs the arrival or policy draw sequences and fault schedules
// are reproducible bit-for-bit for any worker-pool size.
type Faults struct {
	// CrashMTBF is the mean operating time between device crashes in
	// seconds (exponentially distributed; the crash clock runs only
	// while the device is up). 0 disables crashes.
	CrashMTBF float64
	// RepairMean is the mean repair (downtime) duration in seconds
	// (exponential). Required (> 0) when CrashMTBF > 0.
	RepairMean float64
	// FailProb is the probability that a completed service attempt
	// fails transiently, in [0, 1). 0 disables transient failures.
	FailProb float64
	// RetryMax is the per-request retry budget: a request may fail
	// RetryMax times and still be retried; failure RetryMax+1 drops it
	// as lost (Metrics.RetryExhausted). Must be in [0, 62] (the backoff
	// doubles per consecutive failure, so 62 bounds the shift).
	RetryMax int
	// Backoff is the delay before the first retry in seconds; each
	// consecutive failure of the same request doubles it. Required
	// (> 0) when FailProb > 0.
	Backoff float64
	// Stream supplies the fault randomness (crash times, repair times,
	// failure coin flips). Required when CrashMTBF > 0 or FailProb > 0.
	Stream *rng.Stream
}

// validateFaults checks c.Faults (nil is valid: faults disabled).
func (c *Config) validateFaults() error {
	f := c.Faults
	if f == nil {
		return nil
	}
	if c.SlotCompatible {
		return fmt.Errorf("ctsim: faults require sequential service (slot-compatible batching bypasses the service-completion hook)")
	}
	if f.CrashMTBF < 0 || math.IsNaN(f.CrashMTBF) || math.IsInf(f.CrashMTBF, 0) {
		return fmt.Errorf("ctsim: crash MTBF %v must be >= 0 and finite", f.CrashMTBF)
	}
	if f.CrashMTBF > 0 && (!(f.RepairMean > 0) || math.IsInf(f.RepairMean, 0)) {
		return fmt.Errorf("ctsim: repair mean %v must be positive and finite when crashes are enabled", f.RepairMean)
	}
	if !(f.FailProb >= 0 && f.FailProb < 1) {
		return fmt.Errorf("ctsim: failure probability %v must be in [0, 1)", f.FailProb)
	}
	if f.FailProb > 0 {
		if !(f.Backoff > 0) || math.IsInf(f.Backoff, 0) {
			return fmt.Errorf("ctsim: retry backoff %v must be positive and finite when transient failures are enabled", f.Backoff)
		}
		if f.RetryMax < 0 || f.RetryMax > 62 {
			return fmt.Errorf("ctsim: retry budget %d must be in [0, 62]", f.RetryMax)
		}
	}
	if (f.CrashMTBF > 0 || f.FailProb > 0) && f.Stream == nil {
		return fmt.Errorf("ctsim: faults need a dedicated rng stream")
	}
	return nil
}

// scheduleNextCrash draws the next time-to-failure and schedules the
// crash. The draw always happens (the fault stream's consumption is a
// function of simulated history alone), but a crash landing beyond the
// hard horizon can never fire and skips the kernel insert.
func (s *Sim) scheduleNextCrash() {
	f := s.cfg.Faults
	t := s.k.Now() + f.CrashMTBF*f.Stream.ExpFloat64()
	if t > s.hardHorizon {
		return
	}
	s.crashEv, _ = s.k.Schedule(t, s.hCrash)
}

// onCrash fails the device: in-flight work dies with it (an active
// service is aborted and its resource grant released, a queued resource
// wait withdrawn, a pending retry canceled — the head request keeps its
// failure history — and an in-progress transition is abandoned), and
// the device goes dark for a sampled repair time. Queued requests stay
// queued and keep aging; arrivals during the outage still queue (or
// drop against the cap, counted as LostToOutage).
func (s *Sim) onCrash(now float64) {
	s.crashEv = eventq.Ref{}
	s.advance(now)
	s.metrics.Crashes++
	s.abortService()
	if s.retryHold {
		s.k.Cancel(s.retryEv)
		s.retryEv = eventq.Ref{}
		s.retryHold = false
	}
	// Abandon any in-progress transition: its completion event must not
	// settle a dead device. Cancel tolerates the zero Ref, and advance
	// above has already charged the transition's energy up to now.
	s.k.Cancel(s.transEv)
	s.transEv = eventq.Ref{}
	s.transInProg = false
	s.k.Cancel(s.wakeEv)
	s.wakeEv = eventq.Ref{}
	s.faulted = true
	t := now + s.cfg.Faults.RepairMean*s.cfg.Faults.Stream.ExpFloat64()
	if t > s.hardHorizon {
		return // down through the horizon
	}
	s.repairEv, _ = s.k.Schedule(t, s.hRepair)
}

// onRepair brings the device back: it reboots into the configured
// initial state (settled, drawing that state's power again), the next
// crash clock starts, and service/decisions resume against whatever
// backlog accumulated during the outage.
func (s *Sim) onRepair(now float64) {
	s.repairEv = eventq.Ref{}
	s.advance(now) // closes the downtime span
	s.faulted = false
	s.phase = s.cfg.InitialState
	s.transTarget = s.cfg.InitialState
	s.settledAt = now
	s.lastAction = s.cfg.InitialState
	s.scheduleNextCrash()
	s.maybeStartService(now)
	if !s.periodic() {
		s.decisionPoint(now)
	}
}

// serveFailed handles a transient failure of the service attempt that
// just completed: the request stays at the queue head (its wait
// continues) and re-enters service after an exponential backoff, or is
// dropped once its retry budget is exhausted.
func (s *Sim) serveFailed(now float64, f *Faults) {
	s.advance(now) // close the accrual span before the outage-energy window
	s.retries++
	if s.retries > f.RetryMax {
		s.accrueBacklog(now)
		s.q.Pop()
		s.retries = 0
		s.metrics.Lost++
		s.metrics.RetryExhausted++
		s.maybeStartService(now)
		if !s.periodic() {
			s.decisionPoint(now)
		}
		return
	}
	s.metrics.Retries++
	s.retryHold = true
	s.retryEv, _ = s.k.After(f.Backoff*float64(uint64(1)<<uint(s.retries-1)), s.hRetry)
	if !s.periodic() {
		s.decisionPoint(now)
	}
}

// onRetry ends a backoff hold: the head request re-enters service
// through the normal start path (including resource arbitration, where
// it queues FIFO behind any waiters that accumulated meanwhile).
func (s *Sim) onRetry(now float64) {
	s.retryEv = eventq.Ref{}
	s.advance(now) // closes the outage-energy span
	s.retryHold = false
	s.maybeStartService(now)
	if !s.periodic() {
		s.decisionPoint(now)
	}
}
