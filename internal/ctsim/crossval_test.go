package ctsim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestCrossValidationSlotQuantized proves the two simulators implement the
// same semantics: a ctsim run in slot-compatible mode over slot-quantized
// arrivals (mid-slot timestamps) and slot-multiple transition latencies
// must reproduce a slotsim run of the same scenario EXACTLY — identical
// energy (bitwise: both accumulate the same per-slot terms in the same
// order), identical served/arrived/lost counts, identical accepted and
// clamped commands — for stateless baselines, adaptive heuristics, and
// the Q-DPM learner alike.
func TestCrossValidationSlotQuantized(t *testing.T) {
	const (
		slotD  = 0.5 // power of two: all slot instants are exact doubles
		nSlots = 20000
		qcap   = 4
		latW   = 0.3
		seed   = 1234
	)
	psm := device.Synthetic3()
	dev, err := psm.Slot(slotD)
	if err != nil {
		t.Fatal(err)
	}

	// A deterministic arrival pattern with occasional bursts (to exercise
	// queue buildup and loss) shared by both simulators: per-slot counts
	// for slotsim's playback workload, mid-slot timestamps for ctsim's
	// trace source. Mid-slot placement keeps arrival events strictly
	// inside governor intervals, so the slotted decide→arrive→serve order
	// is reproduced without same-instant event ties.
	counts := make([]int, nSlots)
	gen := rng.New(99)
	var times []float64
	for i := range counts {
		u := gen.Float64()
		switch {
		case u < 0.10:
			counts[i] = 1
		case u < 0.13:
			counts[i] = 2
		case u < 0.14:
			counts[i] = 6 // burst: overflows the capacity-4 queue
		}
		for c := 0; c < counts[i]; c++ {
			times = append(times, (float64(i)+0.5)*slotD)
		}
	}
	tr := &trace.Trace{Times: times}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}

	builders := []struct {
		name  string
		build func(stream *rng.Stream) (slotsim.Policy, error)
	}{
		{"always-on", func(*rng.Stream) (slotsim.Policy, error) { return policy.NewAlwaysOn(dev) }},
		{"greedy-off", func(*rng.Stream) (slotsim.Policy, error) { return policy.NewGreedyOff(dev) }},
		{"timeout-6", func(*rng.Stream) (slotsim.Policy, error) { return policy.NewFixedTimeout(dev, 6) }},
		{"adaptive-timeout", func(*rng.Stream) (slotsim.Policy, error) {
			return policy.NewAdaptiveTimeout(dev, 8, 1, 128)
		}},
		{"predictive", func(*rng.Stream) (slotsim.Policy, error) { return policy.NewPredictive(dev, 0.5) }},
		{"q-dpm", func(stream *rng.Stream) (slotsim.Policy, error) {
			return core.New(core.Config{
				Device: dev, QueueCap: qcap, LatencyWeight: latW, Stream: stream,
			})
		}},
	}

	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			// Slotted run. The stream layout mirrors the experiment
			// layer's replica contract: first split feeds the policy,
			// second the simulator.
			root := rng.New(seed)
			polS, err := b.build(root.Split())
			if err != nil {
				t.Fatal(err)
			}
			playback, err := workload.NewPlayback(counts)
			if err != nil {
				t.Fatal(err)
			}
			ssim, err := slotsim.New(slotsim.Config{
				Device: dev, Arrivals: playback, QueueCap: qcap,
				Policy: polS, Stream: root.Split(), LatencyWeight: latW,
			})
			if err != nil {
				t.Fatal(err)
			}
			sm, err := ssim.Run(nSlots, nil)
			if err != nil {
				t.Fatal(err)
			}

			// Continuous run over the same trace, same stream layout.
			root2 := rng.New(seed)
			polC, err := b.build(root2.Split())
			if err != nil {
				t.Fatal(err)
			}
			src, err := ctsim.NewTraceSource(tr)
			if err != nil {
				t.Fatal(err)
			}
			csim, err := ctsim.New(ctsim.Config{
				Device: psm, QueueCap: qcap,
				LatencyWeight: latW / slotD, // J/req-slot → J/req-second
				Policy:        ctsim.Adapt(polC, slotD),
				Source:        src, Stream: root2.Split(),
				DecisionPeriod: slotD, SlotCompatible: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := csim.Run(nSlots * slotD); err != nil {
				t.Fatal(err)
			}
			cm := csim.Metrics()

			if cm.EnergyJ != sm.EnergyJ {
				t.Errorf("energy: ct %.17g J != slotted %.17g J", cm.EnergyJ, sm.EnergyJ)
			}
			if cm.Served != sm.Served {
				t.Errorf("served: ct %d != slotted %d", cm.Served, sm.Served)
			}
			if cm.Arrived != sm.Arrived {
				t.Errorf("arrived: ct %d != slotted %d", cm.Arrived, sm.Arrived)
			}
			if cm.Lost != sm.Lost {
				t.Errorf("lost: ct %d != slotted %d", cm.Lost, sm.Lost)
			}
			if cm.Commands != sm.Commands {
				t.Errorf("commands: ct %d != slotted %d", cm.Commands, sm.Commands)
			}
			if cm.Clamped != sm.Clamped {
				t.Errorf("clamped: ct %d != slotted %d", cm.Clamped, sm.Clamped)
			}
			// State occupancy in seconds must equal slot counts × slot.
			for i, st := range cm.StateTime {
				if want := float64(sm.StateSlots[i]) * slotD; st != want {
					t.Errorf("state %d time: ct %v s != slotted %v s", i, st, want)
				}
			}
			if want := float64(sm.TransitionSlots) * slotD; cm.TransitionTime != want {
				t.Errorf("transition time: ct %v s != slotted %v s", cm.TransitionTime, want)
			}
			if sm.Arrived == 0 {
				t.Fatal("degenerate scenario: no arrivals")
			}
			if b.name != "always-on" && sm.Commands == 0 {
				t.Errorf("degenerate scenario: %s never issued a command", b.name)
			}
		})
	}
}
