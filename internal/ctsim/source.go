// Arrival sources: renewal processes over any continuous interarrival law
// and trace playback.
package ctsim

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Source emits successive absolute arrival times in seconds,
// nondecreasing. It returns +Inf when exhausted. Sources carry a cursor;
// build a fresh one per simulation.
type Source interface {
	// Next returns the next arrival time, drawing randomness from s.
	Next(s *rng.Stream) float64
	// String describes the source.
	String() string
}

// RenewalSource draws i.i.d. interarrival gaps from a continuous law —
// Poisson arrivals for Exponential, heavy-tailed renewal traffic for
// Pareto or Weibull.
type RenewalSource struct {
	// D is the interarrival distribution in seconds.
	D dist.Continuous

	t float64
}

// NewRenewalSource validates the distribution.
func NewRenewalSource(d dist.Continuous) (*RenewalSource, error) {
	if d == nil {
		return nil, fmt.Errorf("ctsim: renewal source needs a distribution")
	}
	return &RenewalSource{D: d}, nil
}

// Next advances by one sampled gap.
func (r *RenewalSource) Next(s *rng.Stream) float64 {
	r.t += r.D.Sample(s)
	return r.t
}

// Reset rewinds the cursor to time zero, so the source can drive a new
// simulation instance without reconstruction. The distribution is
// untouched (it is stateless by the dist.Continuous contract).
func (r *RenewalSource) Reset() { r.t = 0 }

func (r *RenewalSource) String() string { return fmt.Sprintf("renewal(%s)", r.D) }

// TraceSource replays a recorded trace's arrival times. Multiple sources
// may share one trace; each keeps its own cursor.
type TraceSource struct {
	times []float64
	pos   int
}

// NewTraceSource validates the trace and wraps it.
func NewTraceSource(tr *trace.Trace) (*TraceSource, error) {
	if tr == nil {
		return nil, fmt.Errorf("ctsim: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceSource{times: tr.Times}, nil
}

// Next returns the next recorded time, +Inf once exhausted. The stream is
// untouched: playback is deterministic by construction.
func (t *TraceSource) Next(*rng.Stream) float64 {
	if t.pos >= len(t.times) {
		return math.Inf(1)
	}
	v := t.times[t.pos]
	t.pos++
	return v
}

// Reset rewinds the playback cursor to the first recorded arrival.
func (t *TraceSource) Reset() { t.pos = 0 }

func (t *TraceSource) String() string { return fmt.Sprintf("trace(%d requests)", len(t.times)) }
