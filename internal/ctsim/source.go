// Arrival sources: renewal processes over any continuous interarrival law
// and trace playback.
package ctsim

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Source emits successive absolute arrival times in seconds,
// nondecreasing. It returns +Inf when exhausted. Sources carry a cursor;
// build a fresh one per simulation.
type Source interface {
	// Next returns the next arrival time, drawing randomness from s.
	Next(s *rng.Stream) float64
	// String describes the source.
	String() string
}

// renewalGapBlock sizes the interarrival gap buffer: block draws start
// at renewalMinBlock gaps and double per refill up to renewalMaxBlock,
// so a low-rate instance whose first gap already clears its horizon
// draws exactly one variate while long runs amortize one bulk-fill call
// across 64 events. SetLimit replaces the ramp with expectation-sized
// blocks (see refillSize), so a bounded-horizon instance typically pays
// one bulk fill total. Over-drawing is pure waste — at a million
// short-horizon instances discarded variates dominate the per-instance
// reset cost — so blocks never exceed the expected remaining draws.
const (
	renewalMinBlock = 1
	renewalMaxBlock = 64
)

// RenewalSource draws i.i.d. interarrival gaps from a continuous law —
// Poisson arrivals for Exponential, heavy-tailed renewal traffic for
// Pareto or Weibull.
//
// When the law implements dist.BulkSampler (every law in package dist
// does), the source draws gaps in geometrically growing blocks through
// one devirtualized SampleInto call instead of one interface dispatch
// per event. Block draws consume the stream exactly as sequential
// Sample calls would (the BulkSampler contract), so arrival sequences —
// and therefore all simulation output — are bit-identical with and
// without batching. The stream passed to Next must be dedicated to this
// source (the ctsim.Config.Stream contract): gaps are pre-drawn, so
// interleaving another consumer on the same stream would reorder draws.
type RenewalSource struct {
	// D is the interarrival distribution in seconds.
	D dist.Continuous

	t     float64
	bulk  dist.BulkSampler // D, when it supports block draws (else nil)
	buf   []float64        // pre-drawn gaps, buf[pos:] unconsumed
	pos   int
	blk   int     // next refill size cap
	limit float64 // consumer's time limit (0 = none); sizing hint only
	mean  float64 // D's mean gap when finite and positive (else 0)
	n     int64   // arrivals emitted since Reset (rate estimate input)
}

// NewRenewalSource validates the distribution and arms block drawing
// when the law supports it.
func NewRenewalSource(d dist.Continuous) (*RenewalSource, error) {
	if d == nil {
		return nil, fmt.Errorf("ctsim: renewal source needs a distribution")
	}
	r := &RenewalSource{D: d}
	if bs, ok := d.(dist.BulkSampler); ok {
		r.bulk = bs
		r.buf = make([]float64, 0, renewalMaxBlock)
		r.blk = renewalMinBlock
		if m := d.Mean(); m > 0 && !math.IsInf(m, 1) {
			r.mean = m
		}
	}
	return r, nil
}

// SetLimit declares the absolute time beyond which the consumer will
// stop asking for arrivals (0 clears it). It is purely a pre-draw
// sizing hint: refills past the limit draw one gap at a time, and
// refills near it are capped by an empirical estimate of the arrivals
// left before it, so a bounded-horizon consumer never buys a large
// block for its final draw. The emitted arrival sequence is unchanged —
// gaps are served from the stream in order regardless of how they are
// blocked — so output stays bit-identical for every limit value. The
// limit survives Reset (it is a property of the consumer, not the run).
func (r *RenewalSource) SetLimit(t float64) { r.limit = t }

// refillSize returns the next block size. Without a limit it is the ramp
// value. With one, it is the expected number of draws left before the
// limit plus one (the consumer's final past-limit draw): the law's mean
// before any arrival has been seen, the empirical rate after. Sizing the
// first block to the expectation replaces the 1,2,4,… ramp's refill-per-
// refill overhead (slice setup plus one interface dispatch each) with a
// single bulk fill per instance for typical bounded-horizon runs, while
// keeping the expected over-draw near the sampling fluctuation of the
// arrival count.
func (r *RenewalSource) refillSize() int {
	if r.limit <= 0 {
		return r.blk
	}
	rem := r.limit - r.t
	if rem <= 0 {
		// Past the limit every draw is speculative; the consumer
		// typically wants exactly one more.
		return 1
	}
	var est float64
	switch {
	case r.n > 0 && r.t > 0:
		est = rem * float64(r.n) / r.t
	case r.mean > 0:
		est = rem / r.mean
	default:
		return r.blk
	}
	n := int(est) + 1
	if n > renewalMaxBlock {
		n = renewalMaxBlock
	}
	return n
}

// Next advances by one sampled gap. Literal-constructed sources (no
// NewRenewalSource) have no buffer armed and fall back to per-call
// sampling — same bits, no batching.
func (r *RenewalSource) Next(s *rng.Stream) float64 {
	if r.pos < len(r.buf) {
		r.t += r.buf[r.pos]
		r.pos++
		r.n++
		return r.t
	}
	if r.bulk == nil {
		r.t += r.D.Sample(s)
		r.n++
		return r.t
	}
	r.buf = r.buf[:r.refillSize()]
	r.bulk.SampleInto(s, r.buf)
	if r.blk < renewalMaxBlock {
		r.blk *= 2
	}
	r.t = r.t + r.buf[0]
	r.pos = 1
	r.n++
	return r.t
}

// Reset rewinds the cursor to time zero and discards any pre-drawn gaps
// (they belong to the previous instance's stream), so the source can
// drive a new simulation instance without reconstruction and with the
// same stream-consumption pattern as a fresh source. The distribution is
// untouched (it is stateless by the dist.Continuous contract).
func (r *RenewalSource) Reset() {
	r.t = 0
	r.buf = r.buf[:0]
	r.pos = 0
	r.n = 0
	if r.bulk != nil {
		r.blk = renewalMinBlock
	}
}

func (r *RenewalSource) String() string { return fmt.Sprintf("renewal(%s)", r.D) }

// TraceSource replays a recorded trace's arrival times. Multiple sources
// may share one trace; each keeps its own cursor.
type TraceSource struct {
	times []float64
	pos   int
}

// NewTraceSource validates the trace and wraps it.
func NewTraceSource(tr *trace.Trace) (*TraceSource, error) {
	if tr == nil {
		return nil, fmt.Errorf("ctsim: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceSource{times: tr.Times}, nil
}

// Next returns the next recorded time, +Inf once exhausted. The stream is
// untouched: playback is deterministic by construction.
func (t *TraceSource) Next(*rng.Stream) float64 {
	if t.pos >= len(t.times) {
		return math.Inf(1)
	}
	v := t.times[t.pos]
	t.pos++
	return v
}

// Reset rewinds the playback cursor to the first recorded arrival.
func (t *TraceSource) Reset() { t.pos = 0 }

func (t *TraceSource) String() string { return fmt.Sprintf("trace(%d requests)", len(t.times)) }
