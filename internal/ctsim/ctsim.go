// Package ctsim implements the event-driven continuous-time simulation of
// a power-managed system on the eventq kernel: request arrivals at
// real-valued times (any renewal interarrival law or trace playback) →
// bounded queue → device PSM with real transition latencies and energies,
// under a pluggable decision policy.
//
// The paper's Q-DPM formulation is an SMDP over real-valued
// inter-decision times; the slotted simulator (internal/slotsim) studies
// its discretization. ctsim simulates the underlying continuous process
// directly, which opens workloads the slot grid cannot express
// (heavy-tailed Pareto/Weibull interarrivals at native resolution,
// measured traces) and cross-validates the slotted results: in
// slot-compatible mode (periodic decisions, batch service) a ctsim run
// over slot-quantized arrivals and latencies reproduces a slotsim run
// event for event — energy, service, and loss counts match exactly (see
// TestCrossValidationSlotQuantized).
//
// Two decision regimes:
//
//   - Periodic (Config.DecisionPeriod > 0): a governor tick polls the
//     policy every period seconds, the cadence OS-level power managers
//     actually run at. Any slotsim policy or learner runs unmodified via
//     Adapt, and the Q-DPM learner's SMDP update then discounts by the
//     actual sojourn time between decision points (k ticks = k·period
//     seconds) rather than an abstract slot count.
//   - Event-driven (DecisionPeriod == 0): the policy is consulted only
//     when the state changes (arrival, service completion, transition
//     completion) or when a timer it requested via Decision.Wake expires —
//     the native SMDP decision-epoch structure.
//
// Energy is accrued piecewise-exactly: state power × settled time, plus
// transition energy spread uniformly over the transition latency (a
// zero-latency transition charges its full energy at the switch instant),
// matching the slotted simulator's accounting.
package ctsim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/eventq"
	"repro/internal/rng"
)

// Config assembles a continuous-time simulation.
type Config struct {
	// Device is the physical PSM under management (unslotted: latencies in
	// seconds, powers in watts).
	Device *device.PSM
	// InitialState is the device state at time 0 (default: state 0).
	InitialState device.StateID
	// QueueCap bounds the request queue (0 = unbounded).
	QueueCap int
	// LatencyWeight converts backlog into cost units: joules per
	// request-second of queueing. Only the CostTotal metric uses it.
	LatencyWeight float64
	// Policy is the power manager (wrap a slotted policy with Adapt).
	Policy Policy
	// Source produces the arrival times. The simulator owns the value and
	// advances it; build a fresh Source per replica.
	Source Source
	// Stream supplies the Source's randomness (policies carry their own
	// streams). Required even for stream-free sources so the determinism
	// contract is uniform.
	Stream *rng.Stream
	// DecisionPeriod > 0 selects the periodic governor with the given tick
	// interval in seconds; 0 selects event-driven decisions.
	DecisionPeriod float64
	// SlotCompatible selects batch service at governor ticks (requires
	// DecisionPeriod > 0): while the device is settled in a servicing
	// state for a full period, up to BatchServe queued requests complete
	// instantly at the tick. This reproduces the slotted simulator's
	// service law exactly. Default (false): sequential service.
	SlotCompatible bool
	// BatchServe is the per-tick service capacity in slot-compatible mode
	// (default floor(DecisionPeriod/ServiceTime), matching device.Slot).
	BatchServe int
	// ServiceTime is the sequential per-request service duration in
	// seconds (default Device.ServiceTime). Ignored in slot-compatible
	// mode.
	ServiceTime float64
	// ServiceDist, when non-nil, draws each sequential service duration
	// i.i.d. from this law instead of the fixed ServiceTime (which then
	// only seeds defaults). Requires sequential service and a dedicated
	// ServiceStream. nil keeps deterministic service and makes no
	// service-stream draws — bit-identical to a build without this
	// field. The analytic conformance harness uses an exponential law
	// here to pin ctsim against M/M/1 and M/M/1/K closed forms.
	ServiceDist dist.Continuous
	// ServiceStream supplies ServiceDist's randomness. Required when
	// ServiceDist is non-nil; kept separate from Stream so arrival and
	// service draws stay independent streams under the determinism
	// contract.
	ServiceStream *rng.Stream
	// Resource, when non-nil, arbitrates shared capacity with the other
	// instances scheduling against the same kernel (see NewShared):
	// service starts go through Resource.RequestService and commanded
	// state changes through Resource.AllowTransition. Requires
	// sequential service (incompatible with SlotCompatible, whose
	// batched ticks bypass the service-start hook). nil disables
	// arbitration — the uncoupled path makes no hook calls at all.
	Resource Resource
	// Faults, when non-nil, enables deterministic fault injection:
	// device crash/repair cycles and transient service failures with
	// bounded retry + exponential backoff. Requires sequential service.
	// nil disables the layer — a fault-free run makes no fault-stream
	// draws and is bit-identical to a build without the fault code.
	Faults *Faults
}

// Validate checks the configuration and fills its defaults in place.
// New and Reset call it implicitly; callers that reuse one Config value
// across many instances (the fleet layer runs millions of Resets against
// per-class configs that never change) validate once up front and take
// the Sim.ResetValidated fast path thereafter.
func (c *Config) Validate() error { return c.validate() }

// validate checks the configuration and fills defaults.
func (c *Config) validate() error {
	if c.Device == nil {
		return fmt.Errorf("ctsim: config needs a device")
	}
	if c.Policy == nil {
		return fmt.Errorf("ctsim: config needs a policy")
	}
	if c.Source == nil {
		return fmt.Errorf("ctsim: config needs an arrival source")
	}
	if c.Stream == nil {
		return fmt.Errorf("ctsim: config needs an rng stream")
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("ctsim: negative queue capacity %d", c.QueueCap)
	}
	if c.LatencyWeight < 0 || math.IsNaN(c.LatencyWeight) {
		return fmt.Errorf("ctsim: latency weight %v must be >= 0", c.LatencyWeight)
	}
	if int(c.InitialState) < 0 || int(c.InitialState) >= c.Device.NumStates() {
		return fmt.Errorf("ctsim: initial state %d out of range", c.InitialState)
	}
	if c.DecisionPeriod < 0 || math.IsNaN(c.DecisionPeriod) || math.IsInf(c.DecisionPeriod, 0) {
		return fmt.Errorf("ctsim: decision period %v must be >= 0 and finite", c.DecisionPeriod)
	}
	if c.SlotCompatible && c.DecisionPeriod == 0 {
		return fmt.Errorf("ctsim: slot-compatible service requires a decision period")
	}
	if c.Resource != nil && c.SlotCompatible {
		return fmt.Errorf("ctsim: a shared resource requires sequential service (slot-compatible batching bypasses the service-start hook)")
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = c.Device.ServiceTime
	}
	if !(c.ServiceTime > 0) || math.IsInf(c.ServiceTime, 0) {
		return fmt.Errorf("ctsim: service time %v must be positive and finite", c.ServiceTime)
	}
	if c.SlotCompatible && c.BatchServe == 0 {
		c.BatchServe = int(math.Floor(c.DecisionPeriod/c.ServiceTime + 1e-9))
	}
	if c.SlotCompatible && c.BatchServe < 1 {
		return fmt.Errorf("ctsim: decision period %v shorter than service time %v", c.DecisionPeriod, c.ServiceTime)
	}
	if c.ServiceDist != nil {
		if c.SlotCompatible {
			return fmt.Errorf("ctsim: a service distribution requires sequential service (slot-compatible batching has no per-request durations)")
		}
		if c.ServiceStream == nil {
			return fmt.Errorf("ctsim: a service distribution needs a dedicated service stream")
		}
	}
	return c.validateFaults()
}

// Observation is what a policy sees at a decision point.
type Observation struct {
	// Phase is the current power state (the source state while a
	// transition is in progress).
	Phase device.StateID
	// Transitioning reports whether the device is mid-transition; while
	// true, Decide is not consulted.
	Transitioning bool
	// TransTarget is the destination of the in-progress (or most recent)
	// transition.
	TransTarget device.StateID
	// TransRemaining is the time in seconds until the transition settles
	// (0 when settled).
	TransRemaining float64
	// Queue is the number of buffered requests (including one in service).
	Queue int
	// IdleTime is the time in seconds since the last arrival.
	IdleTime float64
	// Now is the current simulation time in seconds.
	Now float64
}

// Feedback is the record handed to learning policies at the end of each
// decision interval: every governor tick in periodic mode (including
// intervals spent transitioning, where Action is the transition target),
// or the span between consecutive decision points in event-driven mode.
type Feedback struct {
	// Prev is the observation the interval's decision was made on.
	Prev Observation
	// Action is the state commanded for the interval (after clamping; the
	// transition target while switching).
	Action device.StateID
	// Sojourn is the interval length in seconds.
	Sojourn float64
	// Energy is the joules consumed during the interval. Instantaneous
	// transition energy charged by a zero-latency switch at the interval's
	// opening decision is excluded, mirroring the slotted simulator's
	// per-slot feedback.
	Energy float64
	// Cost is Energy plus LatencyWeight × the interval's backlog-seconds.
	Cost float64
	// Served, Arrived, and Lost count the interval's requests.
	Served, Arrived, Lost int
	// Next is the observation at the end of the interval.
	Next Observation
}

// Metrics summarizes a run.
type Metrics struct {
	// Horizon is the simulated time in seconds.
	Horizon float64
	// EnergyJ is the total energy in joules.
	EnergyJ float64
	// CostTotal is EnergyJ + LatencyWeight × BacklogSeconds.
	CostTotal float64
	// Arrived, Served, and Lost count requests.
	Arrived, Served, Lost int64
	// WaitSeconds is the cumulative sojourn (arrival → completion) of
	// served requests.
	WaitSeconds float64
	// BacklogSeconds is the time integral of the queue length.
	BacklogSeconds float64
	// StateTime[i] is the time in seconds spent settled in state i.
	StateTime []float64
	// TransitionTime is the time spent switching states.
	TransitionTime float64
	// Commands counts accepted state-change commands; Clamped counts
	// decisions rejected as disallowed transitions.
	Commands, Clamped int64
	// Decisions counts policy consultations.
	Decisions int64
	// ResourceWaitSec is the cumulative time spent queued for the
	// shared Resource before service could start — the cross-device
	// contention wait. Zero without a Resource.
	ResourceWaitSec float64
	// ResourceDrops counts service requests the Resource rejected with
	// a Drop verdict; each drop also counts in Lost.
	ResourceDrops int64
	// BudgetDenied counts commanded state changes the Resource vetoed
	// via AllowTransition (budget-denied transitions). Denied commands
	// are not counted in Commands or Clamped.
	BudgetDenied int64

	// Resilience metrics, all zero on a fault-free run (Config.Faults
	// nil and no DropOutage verdicts from the Resource).

	// DowntimeSec is the time spent crashed (no power draw, no state
	// occupancy, no service).
	DowntimeSec float64
	// EnergyOutageJ is the energy burned while the device was settled
	// but held idle by a retry backoff — power spent making no
	// progress because of a fault.
	EnergyOutageJ float64
	// Crashes counts crash events; Retries counts retried service
	// failures; RetryExhausted counts requests dropped after their
	// retry budget ran out (each also counts in Lost).
	Crashes, Retries, RetryExhausted int64
	// LostToOutage counts requests lost to an outage: dropped by a
	// DropOutage resource verdict, or shed against the queue cap while
	// the device was crashed. Each also counts in Lost.
	LostToOutage int64
}

// AvgPowerW returns the mean power in watts.
func (m *Metrics) AvgPowerW() float64 {
	if m.Horizon == 0 {
		return 0
	}
	return m.EnergyJ / m.Horizon
}

// MeanWaitSeconds returns the average served-request sojourn.
func (m *Metrics) MeanWaitSeconds() float64 {
	if m.Served == 0 {
		return 0
	}
	return m.WaitSeconds / float64(m.Served)
}

// MeanBacklog returns the time-average queue length.
func (m *Metrics) MeanBacklog() float64 {
	if m.Horizon == 0 {
		return 0
	}
	return m.BacklogSeconds / m.Horizon
}

// Availability returns the fraction of the horizon the device was up
// (1 on a fault-free run).
func (m *Metrics) Availability() float64 {
	if m.Horizon == 0 {
		return 1
	}
	return 1 - m.DowntimeSec/m.Horizon
}

// LossRate returns the fraction of arrivals that were dropped.
func (m *Metrics) LossRate() float64 {
	if m.Arrived == 0 {
		return 0
	}
	return float64(m.Lost) / float64(m.Arrived)
}

// Sim is a single continuous-time simulation instance. Create with New,
// drive with Run; not safe for concurrent use. Reset reinitializes an
// existing Sim for a new replica, reusing its buffers.
//
// The event loop is allocation-free in steady state: handlers are bound
// once at construction (no per-Schedule closure), the kernel recycles
// event slots through its arena free list (the tick, wake, arrival,
// service, and transition events each cycle through their own recycled
// slot), and the timed queue is a growth-amortized power-of-two ring.
// BenchmarkCTReplica* and TestCTHotPathAllocationFree guard this.
type Sim struct {
	cfg     Config
	k       *eventq.Kernel
	q       *timedQueue
	learner Learner

	// Pre-bound event handlers: method values are closures, so binding
	// them once here keeps every Schedule call on the hot path from
	// allocating a fresh one.
	hArrival   eventq.Handler
	hTick      eventq.Handler
	hDecision  eventq.Handler
	hServeDone eventq.Handler
	hTransDone eventq.Handler
	hWake      eventq.Handler
	hCrash     eventq.Handler
	hRepair    eventq.Handler
	hRetry     eventq.Handler

	// Device state.
	phase       device.StateID
	transInProg bool
	transTarget device.StateID
	transEnd    float64
	transPower  float64 // W drawn while transitioning (energy/latency)
	settledAt   float64 // time the device last became settled

	// Accrual clocks.
	accrueT  float64 // energy + state-time integrated up to here
	backlogT float64 // backlog integral advanced up to here

	lastArrival float64
	lastAction  device.StateID

	// Hard horizon (SetHorizonHint): the consumer's promise that no Run
	// will extend past this time (enforced by Run). Arrivals and
	// periodic ticks landing strictly beyond it skip the kernel insert,
	// and the final tick skips feedback/decision work that cannot
	// influence any pre-horizon observable. +Inf disables (the
	// default); the promise survives ResetValidated.
	hardHorizon float64

	// Sequential service.
	serving bool
	serveEv eventq.Ref

	// Shared-resource arbitration (cfg.Resource != nil).
	resWaiting bool    // queued in the resource's FIFO wait queue
	resHeld    bool    // holding a grant (serving through the resource)
	resReqAt   float64 // time the outstanding request was queued

	// Devirtualized resource hooks: method values cached off
	// cfg.Resource, rebound only when the Resource identity changes
	// (apply), so the warm Reset cycle of a pooled coupled lane — same
	// resource every replica — never rebinds and stays allocation-free.
	// A cached method value costs one closure load per call instead of
	// an itab lookup plus method-table load on every service event; nil
	// resRequest doubles as the "no resource" fast-path check.
	resBound   Resource
	resRequest func(now float64, g ResourceClient) Verdict
	resRelease func(now float64, g ResourceClient)
	resCancel  func(now float64, g ResourceClient)
	resAllow   func(now float64, g ResourceClient, deltaPowerW float64) bool

	// Fault injection (cfg.Faults != nil).
	faulted   bool       // crashed, awaiting repair
	retryHold bool       // head request backing off after a failure
	retries   int        // head request's consecutive failure count
	crashEv   eventq.Ref // pending crash
	repairEv  eventq.Ref // pending repair (while faulted)
	retryEv   eventq.Ref // pending backoff expiry (while retryHold)
	transEv   eventq.Ref // pending transition completion (canceled on crash)

	// kernelShared marks a simulator built by NewShared: the kernel's
	// lifecycle (Reset, Run) belongs to the coupled-group driver, so
	// apply must not reset it — other instances' events live there.
	kernelShared bool

	// Policy wake timer (event-driven mode).
	wakeEv eventq.Ref

	// Learner epoch bases.
	haveEpoch   bool
	epochObs    Observation
	epochEnergy float64
	epochCost   float64
	epochArr    int64
	epochSrv    int64
	epochLost   int64

	// fb is the per-interval feedback scratch, rewritten on every
	// emitFeedback and passed to the learner by pointer (the Learner
	// contract: receivers copy what they keep).
	fb Feedback

	metrics Metrics
}

// New validates cfg and returns a simulator with its initial events (the
// first arrival and the first decision) scheduled at a private 4-ary
// heap kernel.
func New(cfg Config) (*Sim, error) {
	return NewWithKernel(eventq.New(), cfg)
}

// NewWithKernel is New on a caller-supplied kernel, which the simulator
// then owns exclusively — Reset and ResetValidated reset it like New's
// private one. Use it to pick a kernel backing (eventq.NewCalendar for
// the calendar queue); the two backings fire in the identical (time,
// seq) order, so output is bit-identical either way. The kernel must be
// empty with its clock at 0 (freshly built or Reset).
func NewWithKernel(k *eventq.Kernel, cfg Config) (*Sim, error) {
	return newSim(k, false, cfg)
}

// NewShared builds a simulator whose event handlers schedule against a
// kernel SHARED with other instances: all members advance on the one
// clock, their event streams interleaved deterministically by (time,
// seq) — the coupled-fleet substrate. The caller owns the kernel's
// lifecycle: Reset it once per coupled run before building or
// (Re)setting the member sims (each applies its initial events at time
// 0, in call order, which fixes the FIFO tie-break among members), then
// drive it directly with Kernel.Run; do not call a member's Run, which
// would advance every member. Reset and ResetValidated on a shared-
// kernel sim reset the sim only, never the kernel.
func NewShared(k *eventq.Kernel, cfg Config) (*Sim, error) {
	return newSim(k, true, cfg)
}

// newSim binds the pre-bound handlers and applies cfg against k.
func newSim(k *eventq.Kernel, shared bool, cfg Config) (*Sim, error) {
	s := &Sim{k: k, kernelShared: shared, hardHorizon: math.Inf(1)}
	s.hArrival = s.onArrival
	s.hTick = s.tick
	s.hDecision = s.decisionPoint
	s.hServeDone = s.onServeDone
	s.hTransDone = s.onTransDone
	s.hWake = s.onWake
	s.hCrash = s.onCrash
	s.hRepair = s.onRepair
	s.hRetry = s.onRetry
	if err := s.init(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset reinitializes s for a new replica under cfg, reusing the kernel's
// event arena, the queue ring, and the StateTime buffer. A Reset simulator
// is behaviorally bit-identical to a fresh New(cfg) one — workers that run
// replicas back to back use it to keep replica turnover off the allocator.
func (s *Sim) Reset(cfg Config) error { return s.init(cfg) }

// ResetValidated is Reset minus the validation pass: cfg must already
// have been checked and default-filled by (*Config).Validate. It exists
// for callers that reset one simulator millions of times against a small
// set of immutable per-class configs; passing a config that Validate
// would reject leads to undefined simulation behavior.
func (s *Sim) ResetValidated(cfg Config) error { return s.apply(cfg) }

// init validates cfg and (re)sets every piece of run state, then schedules
// the initial events.
func (s *Sim) init(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	return s.apply(cfg)
}

// apply (re)sets every piece of run state from a validated cfg, then
// schedules the initial events.
func (s *Sim) apply(cfg Config) error {
	s.cfg = cfg
	if cfg.Resource != s.resBound {
		s.resBound = cfg.Resource
		if cfg.Resource != nil {
			s.resRequest = cfg.Resource.RequestService
			s.resRelease = cfg.Resource.ReleaseService
			s.resCancel = cfg.Resource.CancelWait
			s.resAllow = cfg.Resource.AllowTransition
		} else {
			s.resRequest = nil
			s.resRelease = nil
			s.resCancel = nil
			s.resAllow = nil
		}
	}
	if !s.kernelShared {
		s.k.Reset()
	}
	if s.q == nil {
		s.q = newTimedQueue(cfg.QueueCap)
	} else {
		s.q.reset(cfg.QueueCap)
	}
	n := cfg.Device.NumStates()
	st := s.metrics.StateTime
	if cap(st) < n {
		st = make([]float64, n)
	}
	st = st[:n]
	for i := range st {
		st[i] = 0
	}
	s.metrics = Metrics{StateTime: st}
	s.phase = cfg.InitialState
	s.transInProg = false
	s.transTarget = 0
	s.transEnd = 0
	s.transPower = 0
	s.settledAt = 0
	s.accrueT = 0
	s.backlogT = 0
	s.lastArrival = 0
	s.lastAction = cfg.InitialState
	s.serving = false
	s.serveEv = eventq.Ref{}
	s.resWaiting = false
	s.resHeld = false
	s.resReqAt = 0
	s.faulted = false
	s.retryHold = false
	s.retries = 0
	s.crashEv = eventq.Ref{}
	s.repairEv = eventq.Ref{}
	s.retryEv = eventq.Ref{}
	s.transEv = eventq.Ref{}
	s.wakeEv = eventq.Ref{}
	s.haveEpoch = false
	s.epochObs = Observation{}
	s.epochEnergy = 0
	s.epochCost = 0
	s.epochArr = 0
	s.epochSrv = 0
	s.epochLost = 0
	s.learner = nil
	if l, ok := cfg.Policy.(Learner); ok {
		s.learner = l
	}
	// The first decision fires before any time-0 arrival: it is scheduled
	// first, and the kernel breaks ties FIFO.
	if s.periodic() {
		if _, err := s.k.Schedule(0, s.hTick); err != nil {
			return err
		}
	} else {
		if _, err := s.k.Schedule(0, s.hDecision); err != nil {
			return err
		}
	}
	s.scheduleNextArrival()
	if f := cfg.Faults; f != nil && f.CrashMTBF > 0 {
		s.scheduleNextCrash()
	}
	return nil
}

func (s *Sim) periodic() bool { return s.cfg.DecisionPeriod > 0 }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.k.Now() }

// PendingEvents returns the kernel's live event count (O(1)); useful to
// detect a drained simulation.
func (s *Sim) PendingEvents() int { return s.k.Len() }

// FiredEvents returns the number of kernel events executed.
func (s *Sim) FiredEvents() uint64 { return s.k.Fired() }

// SetHorizonHint promises that no Run on this simulator will ever
// extend past time h — Run rejects a larger limit, so the promise
// cannot be broken silently. In exchange the scheduler drops arrivals
// and periodic ticks landing strictly beyond h (events that could
// never fire), and the final periodic tick skips its feedback,
// decision, and epoch bookkeeping — none of which can influence any
// observable at or before h. Arrival streams are consumed identically
// either way (draws are per-source, see RenewalSource.SetLimit), so
// metrics and output stay bit-identical; only the post-run internal
// state of a Learner may differ, since the horizon-edge feedback it
// could never act on is not delivered. The promise survives
// ResetValidated — set it once on a simulator recycled across
// bounded-horizon instances. +Inf restores the default.
func (s *Sim) SetHorizonHint(h float64) {
	if !(h > 0) {
		h = math.Inf(1)
	}
	s.hardHorizon = h
}

// Run advances the simulation to the given time. It may be called
// repeatedly with growing horizons; metrics accumulate.
func (s *Sim) Run(until float64) error {
	if until < s.k.Now() {
		return fmt.Errorf("ctsim: horizon %v precedes current time %v", until, s.k.Now())
	}
	if until > s.hardHorizon {
		return fmt.Errorf("ctsim: limit %v exceeds the promised horizon %v (SetHorizonHint)", until, s.hardHorizon)
	}
	return s.k.Run(until)
}

// RunChunked advances the simulation from the current clock to horizon
// in chunks of chunk simulated seconds, polling ctx between chunks so
// cancellation latency is bounded by one chunk. A run that fits in a
// single chunk never polls: the caller dispatching many short instances
// (the fleet shard loop) owns that poll, and keeping the per-instance
// context check out of here is measurable at a million instances (a
// canceled context's Err takes a mutex). It is the shared
// replica-execution loop of the experiment and fleet layers; metrics
// accumulate exactly as with Run.
func (s *Sim) RunChunked(ctx context.Context, horizon, chunk float64) error {
	if !(chunk > 0) {
		return fmt.Errorf("ctsim: chunk %v must be positive", chunk)
	}
	for until := s.k.Now() + chunk; ; until += chunk {
		if until > horizon {
			until = horizon
		}
		if err := s.Run(until); err != nil {
			return err
		}
		if until >= horizon {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// Metrics accrues energy and backlog up to the current clock and returns a
// snapshot. The snapshot owns its StateTime slice — it never aliases the
// simulator's internal accumulator or a previous snapshot.
func (s *Sim) Metrics() Metrics {
	var m Metrics
	s.MetricsInto(&m)
	return m
}

// MetricsInto is the reuse path of Metrics: it accrues up to the current
// clock and writes the snapshot into *out, recycling out's StateTime
// backing array when it has the capacity (so per-replica metric collection
// with a caller-provided scratch performs no allocation). The written
// snapshot never aliases simulator state.
func (s *Sim) MetricsInto(out *Metrics) {
	now := s.k.Now()
	s.advance(now)
	s.accrueBacklog(now)
	st := out.StateTime
	*out = s.metrics
	n := len(s.metrics.StateTime)
	if cap(st) < n {
		st = make([]float64, n)
	}
	st = st[:n]
	copy(st, s.metrics.StateTime)
	out.StateTime = st
	out.Horizon = now
	out.CostTotal = out.EnergyJ + s.cfg.LatencyWeight*out.BacklogSeconds
}

// MetricsView accrues up to the current clock and returns the
// simulator's internal metrics accumulator. The view ALIASES live
// simulator state: it is valid only until the next Run, Reset, or
// ResetValidated, and callers must not mutate it or retain it (or its
// StateTime slice) beyond that window. In particular, a pooled
// simulator that runs instances back to back (the fleet worker
// pattern) OVERWRITES the view in place on the next instance's reset —
// a view captured for instance A silently becomes instance B's
// numbers, so copy out every field you fold before the next
// ResetValidated (TestMetricsViewClobberedByNextPooledInstance pins
// both halves of this contract). It is the zero-copy finalize
// path for callers that drain many short instances through one reused
// Sim and read a handful of scalars per instance — the fleet shard
// loop — where MetricsInto's snapshot copy is measurable. Use Metrics
// or MetricsInto when the snapshot must own its storage.
func (s *Sim) MetricsView() *Metrics {
	now := s.k.Now()
	s.advance(now)
	s.accrueBacklog(now)
	s.metrics.Horizon = now
	s.metrics.CostTotal = s.metrics.EnergyJ + s.cfg.LatencyWeight*s.metrics.BacklogSeconds
	return &s.metrics
}

// Observe returns the current observation without advancing time.
func (s *Sim) Observe() Observation { return s.observe(s.k.Now()) }

func (s *Sim) observe(now float64) Observation {
	o := Observation{
		Phase:       s.phase,
		TransTarget: s.transTarget,
		Queue:       s.q.Len(),
		IdleTime:    now - s.lastArrival,
		Now:         now,
	}
	if s.transInProg {
		o.Transitioning = true
		o.TransRemaining = s.transEnd - now
	}
	return o
}

// advance integrates energy and state occupancy up to t, settling a
// transition whose end lies in the integration window. Each settled
// governor period contributes exactly one power×period product, so a
// slot-compatible run sums the same terms in the same order as the
// slotted simulator and the totals agree bit for bit.
func (s *Sim) advance(t float64) {
	if s.transInProg && s.transEnd <= t {
		dt := s.transEnd - s.accrueT
		if dt > 0 {
			s.metrics.EnergyJ += s.transPower * dt
			s.metrics.TransitionTime += dt
		}
		s.accrueT = s.transEnd
		s.phase = s.transTarget
		s.transInProg = false
		s.settledAt = s.transEnd
	}
	dt := t - s.accrueT
	if dt <= 0 {
		return
	}
	if s.faulted {
		// Crashed: no power draw, no state occupancy — only downtime.
		// (A crash abandons any in-progress transition, so the branch
		// above cannot race this one.)
		s.metrics.DowntimeSec += dt
	} else if s.transInProg {
		s.metrics.EnergyJ += s.transPower * dt
		s.metrics.TransitionTime += dt
	} else {
		p := s.cfg.Device.States[s.phase].Power
		s.metrics.EnergyJ += p * dt
		s.metrics.StateTime[s.phase] += dt
		if s.retryHold {
			// Settled but held idle by a retry backoff: the same joules
			// also count as outage energy (power spent not progressing).
			s.metrics.EnergyOutageJ += p * dt
		}
	}
	s.accrueT = t
}

// accrueBacklog integrates the queue length up to t; call before any
// queue mutation.
func (s *Sim) accrueBacklog(t float64) {
	if dt := t - s.backlogT; dt > 0 {
		s.metrics.BacklogSeconds += float64(s.q.Len()) * dt
	}
	s.backlogT = t
}

// ---------------------------------------------------------------------------
// Arrivals

func (s *Sim) scheduleNextArrival() {
	t := s.cfg.Source.Next(s.cfg.Stream)
	if math.IsInf(t, 1) {
		return // source exhausted
	}
	if t < s.k.Now() {
		t = s.k.Now() // a lagging source clamps to the present
	}
	if t > s.hardHorizon {
		return // can never fire (Run is bounded by the hard horizon)
	}
	if _, err := s.k.Schedule(t, s.hArrival); err != nil {
		// Only NaN can reach here given the clamp; drop the source.
		return
	}
}

func (s *Sim) onArrival(now float64) {
	s.accrueBacklog(now)
	s.metrics.Arrived++
	if !s.q.Push(now) {
		s.metrics.Lost++
		if s.faulted {
			s.metrics.LostToOutage++
		}
	}
	s.lastArrival = now
	s.scheduleNextArrival()
	if !s.periodic() {
		s.maybeStartService(now)
		s.decisionPoint(now)
	} else if !s.cfg.SlotCompatible {
		s.maybeStartService(now)
	}
}

// ---------------------------------------------------------------------------
// Sequential service

// maybeStartService begins serving the queue head when the device is
// settled in a servicing state and no request is in flight. No-op in
// slot-compatible mode, where service happens in batches at ticks, and
// while a shared-resource request is queued (the grant callback starts
// the service). With a Resource, the start is arbitrated first: Wait
// parks the instance in the resource's FIFO queue, Drop sheds the head
// request.
func (s *Sim) maybeStartService(now float64) {
	if s.cfg.SlotCompatible || s.serving || s.transInProg || s.resWaiting || s.q.Len() == 0 {
		return
	}
	if s.faulted || s.retryHold {
		return
	}
	if !s.cfg.Device.States[s.phase].CanService {
		return
	}
	if s.resRequest != nil {
		switch s.resRequest(now, s) {
		case Wait:
			s.resWaiting = true
			s.resReqAt = now
			return
		case Drop:
			// The head request is shed at the gate: it counts as lost
			// (it arrived, it will never be served) and as a resource
			// drop. The instance retries no earlier than its next state
			// change, so a saturated gateway sheds at most one request
			// per triggering event.
			s.accrueBacklog(now)
			s.q.Pop()
			s.retries = 0
			s.metrics.Lost++
			s.metrics.ResourceDrops++
			return
		case DropOutage:
			// Shed by a resource inside a scheduled outage window: same
			// mechanics as Drop, attributed to the outage instead of
			// steady-state contention.
			s.accrueBacklog(now)
			s.q.Pop()
			s.retries = 0
			s.metrics.Lost++
			s.metrics.LostToOutage++
			return
		}
		s.resHeld = true
	}
	s.serving = true
	s.serveEv, _ = s.k.After(s.serviceDraw(), s.hServeDone)
}

// serviceDraw returns the next sequential service duration: the fixed
// ServiceTime, or one ServiceDist variate when a law is configured.
func (s *Sim) serviceDraw() float64 {
	if s.cfg.ServiceDist == nil {
		return s.cfg.ServiceTime
	}
	return s.cfg.ServiceDist.Sample(s.cfg.ServiceStream)
}

// ResourceGranted implements ResourceClient: a deferred service grant
// arrives from the shared resource's FIFO queue. The invariant that the
// instance is still settled in a servicing state with a nonempty queue
// holds because any transition away cancels the wait (abortService) and
// queued requests only leave through service or request-time drops.
func (s *Sim) ResourceGranted(now float64) {
	s.resWaiting = false
	s.metrics.ResourceWaitSec += now - s.resReqAt
	s.resHeld = true
	s.serving = true
	s.serveEv, _ = s.k.After(s.serviceDraw(), s.hServeDone)
}

func (s *Sim) onServeDone(now float64) {
	s.serving = false
	s.serveEv = eventq.Ref{}
	if s.resHeld {
		// Release before popping: the release may synchronously grant
		// the head waiter (another sim on the shared kernel), and a
		// re-request below queues FIFO behind it — deterministic,
		// starvation-free ordering.
		s.resHeld = false
		s.resRelease(now, s)
	}
	// Transient failure coin flip: the attempt consumed its service time
	// (and resource occupancy) either way.
	if f := s.cfg.Faults; f != nil && f.FailProb > 0 && f.Stream.Float64() < f.FailProb {
		s.serveFailed(now, f)
		return
	}
	s.accrueBacklog(now)
	stamp := s.q.Pop()
	s.retries = 0
	s.metrics.Served++
	s.metrics.WaitSeconds += now - stamp
	s.maybeStartService(now)
	if !s.periodic() {
		s.decisionPoint(now)
	}
}

// abortService cancels an in-flight request when the device leaves its
// service state; the request stays at the queue head (its wait continues)
// and restarts from scratch when service resumes. A held resource grant
// is released and a queued resource wait withdrawn (its elapsed time
// still counts as contention).
func (s *Sim) abortService() {
	if s.resWaiting {
		now := s.k.Now()
		s.resCancel(now, s)
		s.metrics.ResourceWaitSec += now - s.resReqAt
		s.resWaiting = false
	}
	if !s.serving {
		return
	}
	s.k.Cancel(s.serveEv)
	s.serving = false
	s.serveEv = eventq.Ref{}
	if s.resHeld {
		s.resHeld = false
		s.resRelease(s.k.Now(), s)
	}
}

// ---------------------------------------------------------------------------
// Transitions

func (s *Sim) onTransDone(now float64) {
	s.transEv = eventq.Ref{}
	s.advance(now) // settles (idempotent if an earlier advance already did)
	if !s.cfg.SlotCompatible {
		s.maybeStartService(now) // no-op under batched service
	}
	if !s.periodic() {
		s.decisionPoint(now)
	}
}

// ---------------------------------------------------------------------------
// Decisions

// tick is the periodic governor: batch service for the elapsed period (if
// slot-compatible and the device was settled in a servicing state the
// whole period), learner feedback for the closing interval, then a policy
// decision — the exact per-slot order of the slotted simulator.
func (s *Sim) tick(now float64) {
	per := s.cfg.DecisionPeriod
	eligible := s.cfg.SlotCompatible && !s.transInProg &&
		now-s.settledAt >= per*(1-1e-9) &&
		s.cfg.Device.States[s.phase].CanService
	s.advance(now)
	if eligible {
		s.accrueBacklog(now)
		for n := 0; n < s.cfg.BatchServe && s.q.Len() > 0; n++ {
			stamp := s.q.Pop()
			s.metrics.Served++
			s.metrics.WaitSeconds += now - stamp
		}
	}
	if now >= s.hardHorizon {
		// Horizon-edge tick: the closing feedback, the decision, and
		// the next epoch could only influence evolution after now,
		// which the horizon promise puts out of reach — the batched
		// service and accrual above are this tick's only pre-horizon
		// effects. Skipping the rest also skips its policy-stream
		// draws; streams are per-source, so no other consumer sees the
		// difference. (A tick strictly before the horizon always runs
		// in full: its decision governs accrual up to the horizon even
		// when the next tick falls beyond it.)
		return
	}
	obs := s.observe(now)
	s.emitFeedback(now, obs)
	if s.transInProg {
		s.lastAction = s.transTarget
	} else if s.faulted {
		// Crashed: no decision to make — the device is down and the
		// feedback above is how a periodic learner sees the outage (a
		// growing queue, no service, no progress).
		s.lastAction = s.phase
	} else {
		s.decide(now, obs)
		if !s.cfg.SlotCompatible {
			// In slot-compatible mode service is batched above, so the
			// call would bail on its first test; skip the call outright.
			s.maybeStartService(now)
		}
	}
	s.openEpoch(now, obs)
	if next := now + per; next <= s.hardHorizon {
		s.k.Schedule(next, s.hTick)
	}
}

// decisionPoint is the event-driven decision hook: consult the policy if
// the device is settled (a transition in progress defers the decision to
// its completion, preserving the SMDP epoch structure).
func (s *Sim) decisionPoint(now float64) {
	if s.transInProg || s.faulted {
		return
	}
	s.advance(now)
	obs := s.observe(now)
	s.emitFeedback(now, obs)
	s.decide(now, obs)
	s.maybeStartService(now)
	s.openEpoch(now, obs)
}

// emitFeedback closes the current learner epoch against obs.
func (s *Sim) emitFeedback(now float64, obs Observation) {
	if s.learner == nil || !s.haveEpoch {
		return
	}
	backlog := s.metrics.BacklogSeconds
	if dt := now - s.backlogT; dt > 0 {
		backlog += float64(s.q.Len()) * dt
	}
	energy := s.metrics.EnergyJ - s.epochEnergy
	cost := energy + s.cfg.LatencyWeight*(backlog-s.epochCost)
	// Filled field by field: a composite literal would build a temporary
	// Feedback and block-copy it into the scratch.
	s.fb.Prev = s.epochObs
	s.fb.Action = s.lastAction
	s.fb.Sojourn = now - s.epochObs.Now
	s.fb.Energy = energy
	s.fb.Cost = cost
	s.fb.Served = int(s.metrics.Served - s.epochSrv)
	s.fb.Arrived = int(s.metrics.Arrived - s.epochArr)
	s.fb.Lost = int(s.metrics.Lost - s.epochLost)
	s.fb.Next = obs
	s.learner.Observe(&s.fb)
}

// openEpoch snapshots the bases for the next learner interval. It runs
// after decide so instantaneous zero-latency transition energy charged by
// the opening decision stays out of the interval's feedback (mirroring
// slotsim, where per-slot feedback carries only the slot's energy).
// Without a learner there is no feedback consumer, so the snapshot is
// skipped entirely — baseline policies pay nothing for the epoch
// machinery.
func (s *Sim) openEpoch(now float64, obs Observation) {
	if s.learner == nil {
		return
	}
	s.haveEpoch = true
	s.epochObs = obs
	s.epochEnergy = s.metrics.EnergyJ
	backlog := s.metrics.BacklogSeconds
	if dt := now - s.backlogT; dt > 0 {
		backlog += float64(s.q.Len()) * dt
	}
	s.epochCost = backlog
	s.epochArr = s.metrics.Arrived
	s.epochSrv = s.metrics.Served
	s.epochLost = s.metrics.Lost
}

// decide consults the policy and executes its command.
func (s *Sim) decide(now float64, obs Observation) {
	s.metrics.Decisions++
	d := s.cfg.Policy.Decide(obs)
	target := d.Target
	s.lastAction = s.phase
	dev := s.cfg.Device
	if target != s.phase {
		if int(target) >= 0 && int(target) < dev.NumStates() && dev.Trans[s.phase][target].Latency >= 0 {
			if s.resAllow != nil &&
				!s.resAllow(now, s, dev.States[target].Power-dev.States[s.phase].Power) {
				// Budget-denied: the device stays put this interval and
				// the policy retries at its next decision point. Falls
				// through to the wake-timer logic below like any other
				// decision.
				s.metrics.BudgetDenied++
			} else {
				s.execTransition(now, target)
			}
		} else {
			s.metrics.Clamped++
		}
	}
	// Wake timer: at most one outstanding; each decision replaces it.
	// Cancel tolerates the zero Ref and already-fired events, so no guard
	// is needed — the canceled slot is recycled by the next Schedule.
	s.k.Cancel(s.wakeEv)
	s.wakeEv = eventq.Ref{}
	if d.Wake > 0 && !s.periodic() && !math.IsInf(d.Wake, 1) {
		// A wake must strictly advance the clock. A threshold-style policy
		// re-arms with Wake = threshold - elapsed; when the timer lands an
		// ulp below its threshold, now + Wake can round back to exactly
		// now, and a same-instant wake would re-observe the same state and
		// re-arm forever (a float livelock, not a logic loop). Bumping to
		// the next representable instant preserves the intended fire time
		// to the last ulp and guarantees progress.
		t := now + d.Wake
		if t <= now {
			t = math.Nextafter(now, math.Inf(1))
		}
		s.wakeEv, _ = s.k.Schedule(t, s.hWake)
	}
}

// execTransition performs an admitted state-change command: instant
// switches charge their full energy at the switch, latent ones start
// the transition clock.
func (s *Sim) execTransition(now float64, target device.StateID) {
	dev := s.cfg.Device
	tr := dev.Trans[s.phase][target]
	s.metrics.Commands++
	s.lastAction = target
	if tr.Latency == 0 {
		// Instant switch: full transition energy at the switch.
		s.metrics.EnergyJ += tr.Energy
		s.phase = target
		s.transTarget = target
		s.settledAt = now
		if !dev.States[target].CanService {
			s.abortService()
		}
	} else {
		s.abortService()
		s.transInProg = true
		s.transTarget = target
		s.transEnd = now + tr.Latency
		s.transPower = tr.Energy / tr.Latency
		s.transEv, _ = s.k.Schedule(s.transEnd, s.hTransDone)
	}
}

func (s *Sim) onWake(now float64) {
	s.wakeEv = eventq.Ref{}
	s.decisionPoint(now)
}

// ---------------------------------------------------------------------------
// timedQueue — bounded FIFO of arrival timestamps

// timedQueue is the continuous-time analog of internal/queue: a bounded
// ring of float64 arrival times with a power-of-two backing array, so the
// hot-path index wrap is a mask instead of a division. Growth doubles the
// ring (amortized O(1), and only until the high-water mark — steady state
// never allocates). A capacity of 0 means unbounded.
type timedQueue struct {
	cap  int
	buf  []float64 // len is always a power of two
	head int
	n    int
}

func newTimedQueue(capacity int) *timedQueue {
	q := &timedQueue{}
	q.reset(capacity)
	return q
}

// reset empties the queue for a new replica, keeping the grown ring.
func (q *timedQueue) reset(capacity int) {
	q.cap = capacity
	q.head = 0
	q.n = 0
	if len(q.buf) == 0 {
		q.buf = make([]float64, 16)
	}
}

func (q *timedQueue) Len() int { return q.n }

// Push enqueues one arrival stamp, reporting false when the queue is full.
func (q *timedQueue) Push(stamp float64) bool {
	if q.cap > 0 && q.n == q.cap {
		return false
	}
	if q.n == len(q.buf) {
		// Full ring: every slot is live, oldest at head. Unroll into a
		// doubled buffer with two contiguous copies.
		nb := make([]float64, 2*len(q.buf))
		m := copy(nb, q.buf[q.head:])
		copy(nb[m:], q.buf[:q.head])
		q.buf = nb
		q.head = 0
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = stamp
	q.n++
	return true
}

// Pop dequeues the oldest stamp; it panics on an empty queue (programming
// error — callers check Len).
func (q *timedQueue) Pop() float64 {
	if q.n == 0 {
		panic("ctsim: pop from empty queue")
	}
	v := q.buf[q.head]
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return v
}
