package ctsim_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/rng"
)

// constDist is a degenerate service law returning a fixed duration; it
// lets the tests pin that the ServiceDist hook sits exactly on the fixed
// ServiceTime path.
type constDist struct{ v float64 }

func (c constDist) Sample(*rng.Stream) float64 { return c.v }
func (c constDist) Mean() float64              { return c.v }
func (c constDist) String() string             { return fmt.Sprintf("Const(%g)", c.v) }

func TestServiceDistValidation(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewAlwaysOn(psm)
	if err != nil {
		t.Fatal(err)
	}
	base := ctsim.Config{
		Device: psm, Policy: pol,
		Source: expSource(t, 0.4), Stream: rng.New(1),
		ServiceDist: constDist{v: 0.5},
	}
	if _, err := ctsim.New(base); err == nil {
		t.Error("New accepted a service distribution without a service stream")
	}
	slotted := base
	slotted.ServiceStream = rng.New(2)
	slotted.DecisionPeriod = 0.5
	slotted.SlotCompatible = true
	if _, err := ctsim.New(slotted); err == nil {
		t.Error("New accepted a service distribution with slot-compatible batching")
	}
	ok := base
	ok.ServiceStream = rng.New(2)
	if _, err := ctsim.New(ok); err != nil {
		t.Errorf("New rejected a valid service-distribution config: %v", err)
	}
}

// A degenerate service law at the fixed ServiceTime must reproduce the
// deterministic-service run metric for metric: the hook replaces the same
// durations at the same two service-start sites and draws from a stream
// the rest of the simulation never touches.
func TestConstServiceDistMatchesFixedServiceTime(t *testing.T) {
	psm := device.Synthetic3()
	run := func(withDist bool) ctsim.Metrics {
		pol, err := ctsim.NewTimeout(psm, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ctsim.Config{
			Device: psm, Policy: pol,
			Source: expSource(t, 0.4), Stream: rng.New(7),
		}
		if withDist {
			cfg.ServiceDist = constDist{v: psm.ServiceTime}
			cfg.ServiceStream = rng.New(99)
		}
		sim, err := ctsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(2000); err != nil {
			t.Fatal(err)
		}
		return sim.Metrics()
	}
	fixed, drawn := run(false), run(true)
	// StateTime is a slice; compare it element-wise and the rest by value.
	if len(fixed.StateTime) != len(drawn.StateTime) {
		t.Fatalf("StateTime lengths differ: %d vs %d", len(fixed.StateTime), len(drawn.StateTime))
	}
	for i := range fixed.StateTime {
		if fixed.StateTime[i] != drawn.StateTime[i] {
			t.Errorf("StateTime[%d]: %v vs %v", i, fixed.StateTime[i], drawn.StateTime[i])
		}
	}
	fixed.StateTime, drawn.StateTime = nil, nil
	if !reflect.DeepEqual(fixed, drawn) {
		t.Errorf("metrics diverge:\nfixed: %+v\ndrawn: %+v", fixed, drawn)
	}
}

// Exponential service under always-on turns ctsim into an M/M/1 queue;
// a moderate-horizon run must land near the textbook sojourn 1/(μ−λ).
// The tight-CI assertion lives in the experiment conformance harness —
// this is the package-local smoke that the law is actually applied.
func TestExponentialServiceApproachesMM1(t *testing.T) {
	psm := device.Synthetic3()
	pol, err := ctsim.NewAlwaysOn(psm)
	if err != nil {
		t.Fatal(err)
	}
	mu := 2.0
	lambda := 0.8
	sd, err := dist.NewExponential(mu)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ctsim.New(ctsim.Config{
		Device: psm, Policy: pol,
		Source: expSource(t, lambda), Stream: rng.New(11),
		ServiceDist: sd, ServiceStream: rng.New(12),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(50000); err != nil {
		t.Fatal(err)
	}
	m := sim.Metrics()
	want := 1 / (mu - lambda) // W = 0.8333…
	if got := m.MeanWaitSeconds(); math.Abs(got-want) > 0.08*want {
		t.Errorf("M/M/1 sojourn %v, want %v ± 8%%", got, want)
	}
	// Deterministic service at the same mean must wait strictly less
	// (P-K: the M/D/1 queueing term is half the M/M/1 one).
	det, err := ctsim.New(ctsim.Config{
		Device: psm, Policy: pol,
		Source: expSource(t, lambda), Stream: rng.New(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Run(50000); err != nil {
		t.Fatal(err)
	}
	dm := det.Metrics()
	if dw := dm.MeanWaitSeconds(); dw >= m.MeanWaitSeconds() {
		t.Errorf("M/D/1 sojourn %v not below M/M/1 sojourn %v", dw, m.MeanWaitSeconds())
	}
}
