package ctsim_test

import (
	"testing"

	"repro/internal/ctsim"
	"repro/internal/device"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/trace"
)

// The CT replica benchmarks drive one simulated second per op and report
// the kernel-level figures of merit next to the usual per-op numbers:
// ns/event (total benchmark time over fired kernel events) and events/op.
// With -benchmem, allocs/op is the steady-state allocation regression
// guard — the hot path must hold it at zero for every regime.

// benchTimeout is a minimal slotted fixed-timeout policy for the governor
// benchmarks (kept local, like slotsim's bench policy, so the benchmark
// exercises the adapter + kernel rather than policy construction).
type benchTimeout struct {
	deep  device.StateID
	slots int64
}

func (benchTimeout) Name() string { return "bench-timeout" }

func (p benchTimeout) Decide(o slotsim.Observation) device.StateID {
	if o.Queue > 0 || o.IdleSlots < p.slots {
		return 0
	}
	return p.deep
}

// benchSim assembles a replica in the requested regime. Governor runs use
// the slotted-policy adapter at a 0.5 s period (the Table CT path);
// event-driven runs use the native continuous-time timeout with its wake
// timers, which exercises Schedule + Cancel on every decision.
func benchSim(b *testing.B, src ctsim.Source, governor bool) *ctsim.Sim {
	b.Helper()
	psm := device.Synthetic3()
	cfg := ctsim.Config{
		Device:        psm,
		QueueCap:      8,
		LatencyWeight: 0.6,
		Source:        src,
		Stream:        rng.New(2),
	}
	if governor {
		cfg.DecisionPeriod = 0.5
		cfg.Policy = ctsim.Adapt(benchTimeout{deep: device.StateID(psm.NumStates() - 1), slots: 8}, 0.5)
	} else {
		pol, err := ctsim.NewTimeout(psm, 4)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Policy = pol
	}
	sim, err := ctsim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sim
}

func benchExpSource(b *testing.B, rate float64) ctsim.Source {
	b.Helper()
	d, err := dist.NewExponential(rate)
	if err != nil {
		b.Fatal(err)
	}
	src, err := ctsim.NewRenewalSource(d)
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// benchTraceSource replays a deterministic arrival every gap seconds,
// sized to outlast the benchmark horizon.
func benchTraceSource(b *testing.B, gap, horizon float64) ctsim.Source {
	b.Helper()
	n := int(horizon/gap) + 2
	times := make([]float64, n)
	for i := range times {
		times[i] = gap * float64(i+1)
	}
	src, err := ctsim.NewTraceSource(&trace.Trace{Times: times})
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// benchRun warms the replica (arena grown, ring sized), then advances it
// one simulated second per benchmark op.
func benchRun(b *testing.B, sim *ctsim.Sim) {
	const warm = 256.0
	if err := sim.Run(warm); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	before := sim.FiredEvents()
	if err := sim.Run(warm + float64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if ev := sim.FiredEvents() - before; ev > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ev), "ns/event")
		b.ReportMetric(float64(ev)/float64(b.N), "events/op")
	}
}

// BenchmarkCTReplicaRenewalGovernor: Poisson arrivals under the periodic
// governor with an adapted slotted policy — the Table CT configuration.
func BenchmarkCTReplicaRenewalGovernor(b *testing.B) {
	benchRun(b, benchSim(b, benchExpSource(b, 2), true))
}

// BenchmarkCTReplicaRenewalEventDriven: Poisson arrivals with native
// event-driven decisions and wake timers (Schedule + Cancel per decision).
func BenchmarkCTReplicaRenewalEventDriven(b *testing.B) {
	benchRun(b, benchSim(b, benchExpSource(b, 2), false))
}

// BenchmarkCTReplicaTraceGovernor: trace playback under the governor.
func BenchmarkCTReplicaTraceGovernor(b *testing.B) {
	const warm = 256.0
	benchRun(b, benchSim(b, benchTraceSource(b, 0.8, warm+float64(b.N)+1), true))
}

// BenchmarkCTReplicaTraceEventDriven: trace playback, event-driven.
func BenchmarkCTReplicaTraceEventDriven(b *testing.B) {
	const warm = 256.0
	benchRun(b, benchSim(b, benchTraceSource(b, 0.8, warm+float64(b.N)+1), false))
}
