// Package estimator implements the online parameter-estimation and change-
// detection machinery that model-based adaptive DPM needs and Q-DPM
// dispenses with: sliding-window and exponentially-weighted rate
// estimators for the arrival process, and CUSUM / Page–Hinkley detectors
// for the "mode-switch controller" that decides when the model has drifted
// enough to warrant re-running policy optimization.
//
// The paper's core claim is that this whole pipeline costs time and delays
// adaptation; this package exists so the claim can be measured (Fig. 2 and
// Table R1) rather than asserted.
package estimator

import (
	"fmt"
	"math"
)

// WindowRate estimates a Bernoulli per-slot arrival probability from the
// last W slots (sliding-window maximum likelihood: arrivals/W).
type WindowRate struct {
	buf  []uint8
	head int
	n    int
	sum  int
}

// NewWindowRate returns an estimator over a window of w slots.
func NewWindowRate(w int) (*WindowRate, error) {
	if w <= 0 {
		return nil, fmt.Errorf("estimator: window %d must be positive", w)
	}
	return &WindowRate{buf: make([]uint8, w)}, nil
}

// Add records one slot's arrival indicator (count clamped to {0,1}).
func (e *WindowRate) Add(arrivals int) {
	v := uint8(0)
	if arrivals > 0 {
		v = 1
	}
	if e.n == len(e.buf) {
		e.sum -= int(e.buf[e.head])
	} else {
		e.n++
	}
	e.buf[e.head] = v
	e.sum += int(v)
	e.head = (e.head + 1) % len(e.buf)
}

// Rate returns the MLE of the per-slot arrival probability (0 before any
// observation).
func (e *WindowRate) Rate() float64 {
	if e.n == 0 {
		return 0
	}
	return float64(e.sum) / float64(e.n)
}

// Full reports whether the window has filled once.
func (e *WindowRate) Full() bool { return e.n == len(e.buf) }

// N returns the number of retained observations.
func (e *WindowRate) N() int { return e.n }

// ---------------------------------------------------------------------------

// EWMARate is an exponentially weighted rate estimator; cheaper than a
// window but with a bias/variance trade-off set by alpha.
type EWMARate struct {
	alpha float64
	rate  float64
	init  bool
}

// NewEWMARate validates alpha ∈ (0,1].
func NewEWMARate(alpha float64) (*EWMARate, error) {
	if !(alpha > 0) || alpha > 1 {
		return nil, fmt.Errorf("estimator: EWMA alpha %v out of (0,1]", alpha)
	}
	return &EWMARate{alpha: alpha}, nil
}

// Add records one slot's arrival indicator.
func (e *EWMARate) Add(arrivals int) {
	v := 0.0
	if arrivals > 0 {
		v = 1
	}
	if !e.init {
		e.rate, e.init = v, true
		return
	}
	e.rate = e.alpha*v + (1-e.alpha)*e.rate
}

// Rate returns the current estimate.
func (e *EWMARate) Rate() float64 { return e.rate }

// ---------------------------------------------------------------------------

// CUSUM is a two-sided cumulative-sum change detector on a Bernoulli
// stream. It tracks deviations of the observed indicator from a reference
// rate; when either one-sided statistic exceeds the threshold h, a change
// is declared.
type CUSUM struct {
	ref    float64 // reference rate the statistics are centred on
	k      float64 // slack per observation
	h      float64 // decision threshold
	gPos   float64
	gNeg   float64
	alarms int64
}

// NewCUSUM returns a detector centred on rate ref with slack k and
// threshold h. Typical values: k = half the smallest shift worth
// detecting, h = 4..8 for Bernoulli streams.
func NewCUSUM(ref, k, h float64) (*CUSUM, error) {
	if ref < 0 || ref > 1 || math.IsNaN(ref) {
		return nil, fmt.Errorf("estimator: CUSUM reference %v out of [0,1]", ref)
	}
	if !(k >= 0) {
		return nil, fmt.Errorf("estimator: CUSUM slack %v must be >= 0", k)
	}
	if !(h > 0) {
		return nil, fmt.Errorf("estimator: CUSUM threshold %v must be positive", h)
	}
	return &CUSUM{ref: ref, k: k, h: h}, nil
}

// Reset re-centres the detector on a new reference rate.
func (c *CUSUM) Reset(ref float64) {
	c.ref = ref
	c.gPos, c.gNeg = 0, 0
}

// Add consumes one arrival indicator and reports whether a change fired
// this slot. After an alarm the statistics reset automatically.
func (c *CUSUM) Add(arrivals int) bool {
	v := 0.0
	if arrivals > 0 {
		v = 1
	}
	d := v - c.ref
	c.gPos = math.Max(0, c.gPos+d-c.k)
	c.gNeg = math.Max(0, c.gNeg-d-c.k)
	if c.gPos > c.h || c.gNeg > c.h {
		c.gPos, c.gNeg = 0, 0
		c.alarms++
		return true
	}
	return false
}

// Alarms returns the number of changes declared so far.
func (c *CUSUM) Alarms() int64 { return c.alarms }

// ---------------------------------------------------------------------------

// PageHinkley is the Page–Hinkley test for mean shift in a bounded stream:
// it accumulates deviations from the running mean and alarms when the
// accumulated drift leaves its running extremum by more than lambda.
type PageHinkley struct {
	delta  float64 // tolerated drift per step
	lambda float64 // alarm threshold
	n      int64
	mean   float64
	mPos   float64 // cumulative positive statistic
	mPosMn float64
	mNeg   float64
	mNegMx float64
	alarms int64
}

// NewPageHinkley returns a detector with drift tolerance delta and
// threshold lambda.
func NewPageHinkley(delta, lambda float64) (*PageHinkley, error) {
	if !(delta >= 0) {
		return nil, fmt.Errorf("estimator: Page-Hinkley delta %v must be >= 0", delta)
	}
	if !(lambda > 0) {
		return nil, fmt.Errorf("estimator: Page-Hinkley lambda %v must be positive", lambda)
	}
	return &PageHinkley{delta: delta, lambda: lambda}, nil
}

// Add consumes one observation and reports whether a change fired. After
// an alarm the statistics reset.
func (p *PageHinkley) Add(x float64) bool {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.mPos += x - p.mean - p.delta
	if p.mPos < p.mPosMn {
		p.mPosMn = p.mPos
	}
	p.mNeg += x - p.mean + p.delta
	if p.mNeg > p.mNegMx {
		p.mNegMx = p.mNeg
	}
	if p.mPos-p.mPosMn > p.lambda || p.mNegMx-p.mNeg > p.lambda {
		p.reset()
		p.alarms++
		return true
	}
	return false
}

func (p *PageHinkley) reset() {
	p.n = 0
	p.mean = 0
	p.mPos, p.mPosMn = 0, 0
	p.mNeg, p.mNegMx = 0, 0
}

// Alarms returns the number of changes declared so far.
func (p *PageHinkley) Alarms() int64 { return p.alarms }
