package estimator

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWindowRateMLE(t *testing.T) {
	e, err := NewWindowRate(4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rate() != 0 {
		t.Error("fresh estimator rate != 0")
	}
	for _, a := range []int{1, 0, 1, 1} {
		e.Add(a)
	}
	if !e.Full() {
		t.Error("window should be full")
	}
	if e.Rate() != 0.75 {
		t.Errorf("rate %v, want 0.75", e.Rate())
	}
	// Slide: evict the first 1, add 0 -> 2/4.
	e.Add(0)
	if e.Rate() != 0.5 {
		t.Errorf("rate after slide %v, want 0.5", e.Rate())
	}
}

func TestWindowRateClampsCounts(t *testing.T) {
	e, _ := NewWindowRate(2)
	e.Add(5) // multi-arrival slot counts as 1
	e.Add(0)
	if e.Rate() != 0.5 {
		t.Errorf("rate %v, want 0.5", e.Rate())
	}
}

func TestWindowRateValidation(t *testing.T) {
	if _, err := NewWindowRate(0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestWindowRateConvergence(t *testing.T) {
	e, _ := NewWindowRate(2000)
	s := rng.New(1)
	for i := 0; i < 10000; i++ {
		a := 0
		if s.Bool(0.3) {
			a = 1
		}
		e.Add(a)
	}
	if math.Abs(e.Rate()-0.3) > 0.04 {
		t.Errorf("window rate %v, want ~0.3", e.Rate())
	}
}

func TestEWMARate(t *testing.T) {
	e, err := NewEWMARate(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Add(1)
	if e.Rate() != 1 {
		t.Errorf("first rate %v, want 1", e.Rate())
	}
	e.Add(0)
	if e.Rate() != 0.5 {
		t.Errorf("rate %v, want 0.5", e.Rate())
	}
}

func TestEWMARateValidation(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		if _, err := NewEWMARate(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

func TestEWMATracksShift(t *testing.T) {
	e, _ := NewEWMARate(0.05)
	s := rng.New(2)
	for i := 0; i < 2000; i++ {
		a := 0
		if s.Bool(0.1) {
			a = 1
		}
		e.Add(a)
	}
	low := e.Rate()
	for i := 0; i < 2000; i++ {
		a := 0
		if s.Bool(0.8) {
			a = 1
		}
		e.Add(a)
	}
	high := e.Rate()
	if math.Abs(low-0.1) > 0.1 || math.Abs(high-0.8) > 0.1 {
		t.Errorf("EWMA did not track shift: low %v high %v", low, high)
	}
}

func TestCUSUMDetectsUpShift(t *testing.T) {
	c, err := NewCUSUM(0.1, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(3)
	// In-control stretch: no alarm expected (probabilistically).
	for i := 0; i < 2000; i++ {
		a := 0
		if s.Bool(0.1) {
			a = 1
		}
		c.Add(a)
	}
	preAlarms := c.Alarms()
	// Shift to 0.6: must alarm quickly.
	fired := -1
	for i := 0; i < 500; i++ {
		a := 0
		if s.Bool(0.6) {
			a = 1
		}
		if c.Add(a) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("CUSUM never fired on a 0.1->0.6 shift")
	}
	if fired > 100 {
		t.Errorf("CUSUM detection delay %d slots, want <= 100", fired)
	}
	if preAlarms > 2 {
		t.Errorf("CUSUM false-alarmed %d times in control", preAlarms)
	}
}

func TestCUSUMDetectsDownShift(t *testing.T) {
	c, _ := NewCUSUM(0.7, 0.05, 4)
	s := rng.New(4)
	for i := 0; i < 1000; i++ {
		a := 0
		if s.Bool(0.7) {
			a = 1
		}
		c.Add(a)
	}
	fired := -1
	for i := 0; i < 500; i++ {
		if c.Add(0) { // rate collapses to 0
			fired = i
			break
		}
	}
	if fired < 0 || fired > 30 {
		t.Errorf("CUSUM down-shift detection delay %d, want fast", fired)
	}
}

func TestCUSUMResetRecentres(t *testing.T) {
	c, _ := NewCUSUM(0.1, 0.05, 4)
	s := rng.New(5)
	// Shift and let it fire.
	for i := 0; i < 1000; i++ {
		a := 0
		if s.Bool(0.9) {
			a = 1
		}
		c.Add(a)
	}
	c.Reset(0.9)
	// Now 0.9 is in control: no further alarms for a while.
	alarms := c.Alarms()
	for i := 0; i < 1000; i++ {
		a := 0
		if s.Bool(0.9) {
			a = 1
		}
		c.Add(a)
	}
	if c.Alarms() > alarms+1 {
		t.Errorf("CUSUM false-alarmed %d times after re-centring", c.Alarms()-alarms)
	}
}

func TestCUSUMValidation(t *testing.T) {
	if _, err := NewCUSUM(-0.1, 0.05, 4); err == nil {
		t.Error("bad reference accepted")
	}
	if _, err := NewCUSUM(0.5, -1, 4); err == nil {
		t.Error("negative slack accepted")
	}
	if _, err := NewCUSUM(0.5, 0.05, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestPageHinkleyDetectsShift(t *testing.T) {
	// Bernoulli indicators are high-variance (per-step std ~0.4), so the
	// drift tolerance must eat the noise: delta = 0.1, lambda = 15.
	p, err := NewPageHinkley(0.1, 15)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(6)
	for i := 0; i < 3000; i++ {
		v := 0.0
		if s.Bool(0.2) {
			v = 1
		}
		p.Add(v)
	}
	inControl := p.Alarms()
	fired := -1
	for i := 0; i < 1000; i++ {
		v := 0.0
		if s.Bool(0.9) {
			v = 1
		}
		if p.Add(v) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("Page-Hinkley never fired on a 0.2->0.9 shift")
	}
	if fired > 200 {
		t.Errorf("Page-Hinkley delay %d, want <= 200", fired)
	}
	if inControl > 3 {
		t.Errorf("Page-Hinkley false alarms in control: %d", inControl)
	}
}

func TestPageHinkleyValidation(t *testing.T) {
	if _, err := NewPageHinkley(-1, 5); err == nil {
		t.Error("negative delta accepted")
	}
	if _, err := NewPageHinkley(0.01, 0); err == nil {
		t.Error("zero lambda accepted")
	}
}

func BenchmarkWindowRateAdd(b *testing.B) {
	e, _ := NewWindowRate(1000)
	for i := 0; i < b.N; i++ {
		e.Add(i & 1)
	}
}

func BenchmarkCUSUMAdd(b *testing.B) {
	c, _ := NewCUSUM(0.3, 0.05, 6)
	for i := 0; i < b.N; i++ {
		c.Add(i & 1)
	}
}
