package policy

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

// burstySchedule generates a deterministic on/off arrival schedule for
// oracle tests: bursts of ~50 slots at rate 0.8 separated by ~300 quiet
// slots.
func burstySchedule(n int, seed uint64) []int {
	oo, err := workload.NewOnOff(0.8, 50, 300)
	if err != nil {
		panic(err)
	}
	s := rng.New(seed)
	counts := make([]int, n)
	for i := range counts {
		counts[i] = oo.Next(s)
	}
	return counts
}

func runSchedule(t *testing.T, pol slotsim.Policy, counts []int, seed uint64) slotsim.Metrics {
	t.Helper()
	dev := synthDev(t)
	pb, err := workload.NewPlayback(counts)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := slotsim.New(slotsim.Config{
		Device: dev, Arrivals: pb, QueueCap: 8,
		Policy: pol, Stream: rng.New(seed), LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(int64(len(counts)), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOracleValidation(t *testing.T) {
	dev := synthDev(t)
	if _, err := NewOracle(dev, nil); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestOracleBeatsCausalHeuristics(t *testing.T) {
	// Clairvoyance must dominate every causal heuristic on total cost for
	// the same deterministic schedule.
	counts := burstySchedule(60000, 7)
	dev := synthDev(t)

	oracle, err := NewOracle(dev, counts)
	if err != nil {
		t.Fatal(err)
	}
	mOr := runSchedule(t, oracle, counts, 1)

	gr, _ := NewGreedyOff(dev)
	to, _ := NewFixedTimeout(dev, 8)
	ao, _ := NewAlwaysOn(dev)
	for _, other := range []slotsim.Policy{gr, to, ao} {
		m := runSchedule(t, other, counts, 1)
		if mOr.CostTotal > m.CostTotal*1.001 {
			t.Errorf("oracle cost %v exceeds %s cost %v", mOr.CostTotal, other.Name(), m.CostTotal)
		}
	}
}

func TestOracleSleepsThroughLongGapsOnly(t *testing.T) {
	// Schedule: requests at slots 0 and 100 — one long gap.
	counts := make([]int, 200)
	counts[0], counts[100] = 1, 1
	dev := synthDev(t)
	oracle, err := NewOracle(dev, counts)
	if err != nil {
		t.Fatal(err)
	}
	m := runSchedule(t, oracle, counts, 2)
	// It must have slept most of the run.
	if m.StateSlots[2] < 150 {
		t.Errorf("oracle slept only %d/200 slots across a 100-slot gap", m.StateSlots[2])
	}
	// Dense schedule: arrivals every slot — it must never sleep.
	dense := make([]int, 200)
	for i := range dense {
		dense[i] = 1
	}
	oracle2, err := NewOracle(dev, dense)
	if err != nil {
		t.Fatal(err)
	}
	m2 := runSchedule(t, oracle2, dense, 3)
	if m2.StateSlots[2] > 0 {
		t.Errorf("oracle slept %d slots under back-to-back arrivals", m2.StateSlots[2])
	}
}

func TestOracleSilentTailSleeps(t *testing.T) {
	// After the schedule ends the oracle sees infinite silence and must
	// park in the deep state.
	counts := []int{1, 0, 0}
	dev := synthDev(t)
	oracle, err := NewOracle(dev, counts)
	if err != nil {
		t.Fatal(err)
	}
	got := oracle.Decide(slotsim.Observation{Phase: 0, Queue: 0, Slot: 500})
	if got != 2 {
		t.Errorf("oracle beyond horizon chose %d, want deep sleep", got)
	}
}
