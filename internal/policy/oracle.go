package policy

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/slotsim"
)

// Oracle is the clairvoyant reference policy: it knows the entire future
// arrival schedule and sleeps exactly when the coming idle gap exceeds the
// device's break-even horizon. It lower-bounds what any *causal* policy —
// learned or model-based — can achieve on the same trace, so the derived
// tables use it to report "how much headroom is left".
//
// Use it with a workload.Playback built from the same counts so the
// simulated arrivals match the schedule the oracle saw.
type Oracle struct {
	r              roles
	nextArrival    []int64 // nextArrival[t] = first slot >= t with an arrival
	breakEvenSlots int64
	horizon        int64
}

var _ slotsim.Policy = (*Oracle)(nil)

// NewOracle precomputes next-arrival distances from the per-slot counts.
func NewOracle(dev *device.Slotted, counts []int) (*Oracle, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("policy: oracle needs a non-empty schedule")
	}
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		return nil, err
	}
	tbe, err := dev.PSM.BreakEven(r.shallow, r.deep)
	if err != nil {
		return nil, err
	}
	be := int64(tbe / dev.SlotDuration)
	if be < 1 {
		be = 1
	}
	n := len(counts)
	next := make([]int64, n+1)
	next[n] = int64(n) + 1<<40 // sentinel: silence forever after the trace
	for t := n - 1; t >= 0; t-- {
		if counts[t] > 0 {
			next[t] = int64(t)
		} else {
			next[t] = next[t+1]
		}
	}
	return &Oracle{r: r, nextArrival: next, breakEvenSlots: be, horizon: int64(n)}, nil
}

// Name identifies the policy.
func (p *Oracle) Name() string { return "oracle" }

// Decide wakes just in time for the next arrival and sleeps through gaps
// that beat the break-even horizon.
func (p *Oracle) Decide(obs slotsim.Observation) device.StateID {
	if obs.Queue > 0 {
		return p.r.wake
	}
	t := obs.Slot
	var gap int64
	if t >= p.horizon {
		gap = 1 << 40
	} else {
		gap = p.nextArrival[t] - t
	}
	if gap >= p.breakEvenSlots {
		return p.r.deep
	}
	if obs.Phase == p.r.wake {
		return p.r.shallow
	}
	return obs.Phase
}
