// Package policy implements the classical DPM policies Q-DPM is compared
// against in the derived tables, plus the adapter that turns an exactly-
// solved MDP policy into a simulator policy (the "optimal policy derived
// by analytical techniques" of Fig. 1):
//
//   - AlwaysOn: never leaves the service state (the energy-reduction
//     baseline every series is normalized against);
//   - GreedyOff: sleeps the instant the queue is empty;
//   - FixedTimeout: sleeps after a fixed idle period (the policy every
//     commercial OS ships);
//   - AdaptiveTimeout: multiplicative-increase/linear-decrease timeout
//     adjustment (Douglis-style);
//   - Predictive: exponential-average idle-period prediction (Hwang–Wu);
//   - Optimal: exact DTMDP policy from internal/mdp.
package policy

import (
	"fmt"
	"sort"

	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/slotsim"
)

// roles identifies the wake/shallow/deep states of a device by power
// ordering: wake = first servicing state, deep = thriftiest state
// reachable from wake (directly or via shallow), shallow = thriftiest
// non-servicing state directly reachable from wake that can reach wake.
type roles struct {
	wake    device.StateID
	shallow device.StateID
	deep    device.StateID
}

// Roles is the exported form of the wake/shallow/deep role derivation,
// shared with the continuous-time policies in internal/ctsim (which manage
// the physical PSM directly rather than a slotted form).
type Roles struct {
	// Wake is the first servicing state.
	Wake device.StateID
	// Shallow is the hungriest non-servicing parking state reachable from
	// Wake (and back).
	Shallow device.StateID
	// Deep is the thriftiest such parking state.
	Deep device.StateID
}

// DeriveRoles computes the role states of a PSM: wake = first servicing
// state; candidates are non-servicing states with an allowed round trip to
// wake; deep is the thriftiest candidate and shallow the hungriest.
func DeriveRoles(psm *device.PSM) (Roles, error) {
	r, err := deriveRoles(psm)
	if err != nil {
		return Roles{}, err
	}
	return Roles{Wake: r.wake, Shallow: r.shallow, Deep: r.deep}, nil
}

// deriveRoles computes the role states for a PSM.
func deriveRoles(psm *device.PSM) (roles, error) {
	var r roles
	found := false
	for i, st := range psm.States {
		if st.CanService {
			r.wake = device.StateID(i)
			found = true
			break
		}
	}
	if !found {
		return r, fmt.Errorf("policy: device %s has no service state", psm.Name)
	}
	// Candidates: reachable from wake, can reach wake back.
	type cand struct {
		id    device.StateID
		power float64
	}
	var cands []cand
	for j := range psm.States {
		id := device.StateID(j)
		if id == r.wake || psm.States[j].CanService {
			continue
		}
		if psm.Allowed(r.wake, id) && psm.Allowed(id, r.wake) {
			cands = append(cands, cand{id: id, power: psm.States[j].Power})
		}
	}
	if len(cands) == 0 {
		return r, fmt.Errorf("policy: device %s has no parking state reachable from wake", psm.Name)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].power < cands[b].power })
	r.deep = cands[0].id
	r.shallow = cands[len(cands)-1].id // hungriest parking state
	return r, nil
}

// ---------------------------------------------------------------------------

// AlwaysOn keeps the device in its service state forever.
type AlwaysOn struct{ wake device.StateID }

var _ slotsim.Policy = (*AlwaysOn)(nil)

// NewAlwaysOn derives the service state from the device.
func NewAlwaysOn(dev *device.Slotted) (*AlwaysOn, error) {
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		return nil, err
	}
	return &AlwaysOn{wake: r.wake}, nil
}

// Name identifies the policy.
func (p *AlwaysOn) Name() string { return "always-on" }

// Decide always returns the service state.
func (p *AlwaysOn) Decide(slotsim.Observation) device.StateID { return p.wake }

// Reset restores the freshly-constructed state (a no-op: AlwaysOn is
// stateless). Every classical policy carries a Reset so one instance can
// be reused across independent replicas without reconstruction.
func (p *AlwaysOn) Reset() {}

// ---------------------------------------------------------------------------

// GreedyOff sleeps the moment the queue is empty and wakes the moment it
// is not — optimal when transitions are free, pathological when they are
// not.
type GreedyOff struct{ r roles }

var _ slotsim.Policy = (*GreedyOff)(nil)

// NewGreedyOff derives role states from the device.
func NewGreedyOff(dev *device.Slotted) (*GreedyOff, error) {
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		return nil, err
	}
	return &GreedyOff{r: r}, nil
}

// Name identifies the policy.
func (p *GreedyOff) Name() string { return "greedy-off" }

// Decide wakes on backlog, sleeps otherwise.
func (p *GreedyOff) Decide(obs slotsim.Observation) device.StateID {
	if obs.Queue > 0 {
		return p.r.wake
	}
	return p.r.deep
}

// Reset restores the freshly-constructed state (a no-op: GreedyOff is
// stateless).
func (p *GreedyOff) Reset() {}

// ---------------------------------------------------------------------------

// FixedTimeout parks in the shallow state when idle and drops to the deep
// state once the idle period exceeds TimeoutSlots.
type FixedTimeout struct {
	r            roles
	TimeoutSlots int64
}

var _ slotsim.Policy = (*FixedTimeout)(nil)

// NewFixedTimeout validates the timeout (>= 0; 0 degenerates to greedy).
func NewFixedTimeout(dev *device.Slotted, timeoutSlots int64) (*FixedTimeout, error) {
	if timeoutSlots < 0 {
		return nil, fmt.Errorf("policy: negative timeout %d", timeoutSlots)
	}
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		return nil, err
	}
	return &FixedTimeout{r: r, TimeoutSlots: timeoutSlots}, nil
}

// Name identifies the policy.
func (p *FixedTimeout) Name() string { return fmt.Sprintf("timeout-%d", p.TimeoutSlots) }

// Decide wakes on backlog; otherwise parks shallow until the timeout
// expires, then deep.
func (p *FixedTimeout) Decide(obs slotsim.Observation) device.StateID {
	if obs.Queue > 0 {
		return p.r.wake
	}
	if obs.IdleSlots >= p.TimeoutSlots {
		return p.r.deep
	}
	if obs.Phase == p.r.wake {
		return p.r.shallow
	}
	return obs.Phase
}

// Reset restores the freshly-constructed state (a no-op: FixedTimeout
// is stateless — the idle counter lives in the observation).
func (p *FixedTimeout) Reset() {}

// ---------------------------------------------------------------------------

// AdaptiveTimeout adjusts a FixedTimeout online: a premature shutdown
// (sleep shorter than the device break-even) doubles the timeout; a
// well-amortized sleep shortens it by one slot.
type AdaptiveTimeout struct {
	r        roles
	timeout  int64
	initial  int64
	min, max int64

	breakEvenSlots int64
	sleepStart     int64 // slot the device entered deep (-1 = not sleeping)
}

var _ slotsim.Learner = (*AdaptiveTimeout)(nil)

// NewAdaptiveTimeout derives the break-even horizon from the device.
func NewAdaptiveTimeout(dev *device.Slotted, initial, min, max int64) (*AdaptiveTimeout, error) {
	if min < 0 || max < min || initial < min || initial > max {
		return nil, fmt.Errorf("policy: adaptive timeout bounds invalid: initial=%d min=%d max=%d", initial, min, max)
	}
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		return nil, err
	}
	tbe, err := dev.PSM.BreakEven(r.shallow, r.deep)
	if err != nil {
		return nil, err
	}
	be := int64(tbe / dev.SlotDuration)
	if be < 1 {
		be = 1
	}
	return &AdaptiveTimeout{
		r: r, timeout: initial, initial: initial, min: min, max: max,
		breakEvenSlots: be, sleepStart: -1,
	}, nil
}

// Reset restores the freshly-constructed state: the timeout returns to
// its initial value and any in-progress sleep judgement is discarded.
func (p *AdaptiveTimeout) Reset() {
	p.timeout = p.initial
	p.sleepStart = -1
}

// Name identifies the policy.
func (p *AdaptiveTimeout) Name() string { return "adaptive-timeout" }

// Timeout returns the current timeout in slots.
func (p *AdaptiveTimeout) Timeout() int64 { return p.timeout }

// Decide behaves like FixedTimeout with the current timeout.
func (p *AdaptiveTimeout) Decide(obs slotsim.Observation) device.StateID {
	if obs.Queue > 0 {
		return p.r.wake
	}
	if obs.IdleSlots >= p.timeout {
		return p.r.deep
	}
	if obs.Phase == p.r.wake {
		return p.r.shallow
	}
	return obs.Phase
}

// Observe adapts the timeout on sleep outcomes.
func (p *AdaptiveTimeout) Observe(fb *slotsim.Feedback) {
	// Entering deep sleep.
	if p.sleepStart < 0 && fb.Action == p.r.deep && fb.Prev.Phase != p.r.deep {
		p.sleepStart = fb.Prev.Slot
		return
	}
	// Waking up: judge the sleep length.
	if p.sleepStart >= 0 && fb.Arrived > 0 {
		sleptFor := fb.Next.Slot - p.sleepStart
		if sleptFor < p.breakEvenSlots {
			p.timeout *= 2
			if p.timeout > p.max {
				p.timeout = p.max
			}
		} else if p.timeout > p.min {
			p.timeout--
		}
		p.sleepStart = -1
	}
}

// ---------------------------------------------------------------------------

// Predictive implements Hwang–Wu exponential-average idle prediction: at
// the start of each idle period it predicts the period's length from an
// exponential average of past idle periods and sleeps immediately when the
// prediction exceeds the device break-even.
type Predictive struct {
	r              roles
	alpha          float64
	predicted      float64
	breakEvenSlots float64

	idleStart int64 // slot the current idle period began (-1 = busy)
}

var _ slotsim.Learner = (*Predictive)(nil)

// NewPredictive validates the smoothing factor.
func NewPredictive(dev *device.Slotted, alpha float64) (*Predictive, error) {
	if !(alpha > 0) || alpha > 1 {
		return nil, fmt.Errorf("policy: predictive alpha %v out of (0,1]", alpha)
	}
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		return nil, err
	}
	tbe, err := dev.PSM.BreakEven(r.shallow, r.deep)
	if err != nil {
		return nil, err
	}
	be := tbe / dev.SlotDuration
	if be < 1 {
		be = 1
	}
	return &Predictive{r: r, alpha: alpha, breakEvenSlots: be, idleStart: -1, predicted: be}, nil
}

// Reset restores the freshly-constructed state: the prediction returns
// to the break-even prior and the idle-period tracker clears.
func (p *Predictive) Reset() {
	p.predicted = p.breakEvenSlots
	p.idleStart = -1
}

// Name identifies the policy.
func (p *Predictive) Name() string { return "predictive" }

// Decide sleeps at idle start when the predicted idle period beats
// break-even, else parks shallow.
func (p *Predictive) Decide(obs slotsim.Observation) device.StateID {
	if obs.Queue > 0 {
		return p.r.wake
	}
	if p.predicted >= p.breakEvenSlots {
		return p.r.deep
	}
	if obs.Phase == p.r.wake {
		return p.r.shallow
	}
	return obs.Phase
}

// Observe tracks idle periods and updates the exponential average.
func (p *Predictive) Observe(fb *slotsim.Feedback) {
	busy := fb.Next.Queue > 0 || fb.Arrived > 0
	switch {
	case p.idleStart < 0 && !busy:
		p.idleStart = fb.Next.Slot
	case p.idleStart >= 0 && busy:
		actual := float64(fb.Next.Slot - p.idleStart)
		p.predicted = p.alpha*actual + (1-p.alpha)*p.predicted
		p.idleStart = -1
	}
}

// ---------------------------------------------------------------------------

// Optimal adapts an exactly-solved MDP policy (internal/mdp) to the
// simulator: the analytical reference of Fig. 1.
type Optimal struct {
	d   *mdp.DPM
	pol mdp.Policy
}

var _ slotsim.Policy = (*Optimal)(nil)

// NewOptimal wraps a solved policy. The policy must belong to the model.
func NewOptimal(d *mdp.DPM, pol mdp.Policy) (*Optimal, error) {
	if d == nil {
		return nil, fmt.Errorf("policy: nil model")
	}
	if len(pol) != d.N {
		return nil, fmt.Errorf("policy: policy length %d != model states %d", len(pol), d.N)
	}
	return &Optimal{d: d, pol: pol}, nil
}

// NewOptimalFromModel solves the average-cost problem and wraps the
// resulting policy.
func NewOptimalFromModel(d *mdp.DPM) (*Optimal, error) {
	if d == nil {
		return nil, fmt.Errorf("policy: nil model")
	}
	res, err := d.AverageCostRVI(1e-8, 500000)
	if err != nil {
		return nil, err
	}
	return NewOptimal(d, res.Policy)
}

// Name identifies the policy.
func (p *Optimal) Name() string { return "optimal" }

// Reset restores the freshly-constructed state (a no-op: the solved
// policy is immutable).
func (p *Optimal) Reset() {}

// Decide looks the commanded state up in the solved policy.
func (p *Optimal) Decide(obs slotsim.Observation) device.StateID {
	q := obs.Queue
	if q > p.d.Cfg.QueueCap {
		q = p.d.Cfg.QueueCap
	}
	target, err := p.d.ActionTarget(p.pol, obs.Phase, q)
	if err != nil {
		return obs.Phase
	}
	return target
}
