package policy

import (
	"testing"

	"repro/internal/device"
	"repro/internal/mdp"
	"repro/internal/rng"
	"repro/internal/slotsim"
	"repro/internal/workload"
)

func synthDev(t *testing.T) *device.Slotted {
	t.Helper()
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func runPolicy(t *testing.T, dev *device.Slotted, pol slotsim.Policy, p float64, n int64, seed uint64) slotsim.Metrics {
	t.Helper()
	arr, err := workload.NewBernoulli(p)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := slotsim.New(slotsim.Config{
		Device: dev, Arrivals: arr, QueueCap: 8,
		Policy: pol, Stream: rng.New(seed), LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeriveRolesSynthetic(t *testing.T) {
	dev := synthDev(t)
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		t.Fatal(err)
	}
	if r.wake != 0 || r.shallow != 1 || r.deep != 2 {
		t.Errorf("roles = %+v, want wake=0 shallow=1 deep=2", r)
	}
}

func TestDeriveRolesHDD(t *testing.T) {
	dev, err := device.HDD().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := deriveRoles(dev.PSM)
	if err != nil {
		t.Fatal(err)
	}
	active, _ := dev.PSM.StateByName("active")
	idle, _ := dev.PSM.StateByName("idle")
	standby, _ := dev.PSM.StateByName("standby")
	if r.wake != active {
		t.Errorf("wake = %d, want active", r.wake)
	}
	// Sleep is thriftier than standby but cannot reach active? It can
	// (1.9s). Sleep reachable from active and back -> deep = sleep.
	sleep, _ := dev.PSM.StateByName("sleep")
	if r.deep != sleep {
		t.Errorf("deep = %d, want sleep (%d)", r.deep, sleep)
	}
	if r.shallow != idle && r.shallow != standby {
		t.Errorf("shallow = %d, want idle or standby", r.shallow)
	}
}

func TestAlwaysOnExactCost(t *testing.T) {
	dev := synthDev(t)
	p, err := NewAlwaysOn(dev)
	if err != nil {
		t.Fatal(err)
	}
	m := runPolicy(t, dev, p, 0.3, 10000, 1)
	if m.EnergyJ != 10000 { // 1.0 J/slot on synthetic3
		t.Errorf("always-on energy %v, want 10000", m.EnergyJ)
	}
	if m.MeanBacklog() != 0 {
		t.Errorf("always-on backlog %v, want 0", m.MeanBacklog())
	}
}

func TestGreedyOffSleepsImmediately(t *testing.T) {
	dev := synthDev(t)
	p, err := NewGreedyOff(dev)
	if err != nil {
		t.Fatal(err)
	}
	// No arrivals: first decision must command deep sleep.
	if got := p.Decide(slotsim.Observation{Phase: 0, Queue: 0}); got != 2 {
		t.Errorf("greedy-off with empty queue chose %d, want sleep", got)
	}
	if got := p.Decide(slotsim.Observation{Phase: 2, Queue: 1}); got != 0 {
		t.Errorf("greedy-off with backlog chose %d, want wake", got)
	}
}

func TestGreedyOffThrashesAtModerateRate(t *testing.T) {
	// The classic failure: at a moderate rate, greedy shutdown pays the
	// wake penalty constantly and loses to always-on on total cost.
	dev := synthDev(t)
	gr, _ := NewGreedyOff(dev)
	ao, _ := NewAlwaysOn(dev)
	mGr := runPolicy(t, dev, gr, 0.45, 40000, 2)
	mAo := runPolicy(t, dev, ao, 0.45, 40000, 3)
	if mGr.AvgCost() <= mAo.AvgCost() {
		t.Errorf("greedy-off (%v) should lose to always-on (%v) at λ=0.45",
			mGr.AvgCost(), mAo.AvgCost())
	}
}

func TestGreedyOffWinsAtVeryLowRate(t *testing.T) {
	dev := synthDev(t)
	gr, _ := NewGreedyOff(dev)
	ao, _ := NewAlwaysOn(dev)
	mGr := runPolicy(t, dev, gr, 0.005, 40000, 4)
	mAo := runPolicy(t, dev, ao, 0.005, 40000, 5)
	if mGr.AvgCost() >= mAo.AvgCost() {
		t.Errorf("greedy-off (%v) should beat always-on (%v) at λ=0.005",
			mGr.AvgCost(), mAo.AvgCost())
	}
}

func TestFixedTimeoutBehaviour(t *testing.T) {
	dev := synthDev(t)
	p, err := NewFixedTimeout(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Decide(slotsim.Observation{Phase: 0, Queue: 2}); got != 0 {
		t.Errorf("backlog: chose %d, want wake", got)
	}
	if got := p.Decide(slotsim.Observation{Phase: 0, Queue: 0, IdleSlots: 1}); got != 1 {
		t.Errorf("short idle from active: chose %d, want shallow", got)
	}
	if got := p.Decide(slotsim.Observation{Phase: 1, Queue: 0, IdleSlots: 2}); got != 1 {
		t.Errorf("short idle from shallow: chose %d, want stay", got)
	}
	if got := p.Decide(slotsim.Observation{Phase: 1, Queue: 0, IdleSlots: 4}); got != 2 {
		t.Errorf("timeout expired: chose %d, want deep", got)
	}
}

func TestFixedTimeoutValidation(t *testing.T) {
	if _, err := NewFixedTimeout(synthDev(t), -1); err == nil {
		t.Error("negative timeout accepted")
	}
}

func TestTimeoutSweepMonotonyAtLowRate(t *testing.T) {
	// At a very low rate, shorter timeouts save more energy.
	dev := synthDev(t)
	var prev float64
	for i, timeout := range []int64{2, 16, 64} {
		p, _ := NewFixedTimeout(dev, timeout)
		m := runPolicy(t, dev, p, 0.005, 60000, 6)
		if i > 0 && m.EnergyJ < prev {
			t.Errorf("timeout %d used less energy than a shorter timeout (%v < %v)", timeout, m.EnergyJ, prev)
		}
		prev = m.EnergyJ
	}
}

func TestAdaptiveTimeoutValidation(t *testing.T) {
	dev := synthDev(t)
	if _, err := NewAdaptiveTimeout(dev, 5, 10, 20); err == nil {
		t.Error("initial < min accepted")
	}
	if _, err := NewAdaptiveTimeout(dev, 5, 1, 4); err == nil {
		t.Error("initial > max accepted")
	}
	if _, err := NewAdaptiveTimeout(dev, 5, -1, 10); err == nil {
		t.Error("negative min accepted")
	}
}

func TestAdaptiveTimeoutGrowsOnPrematureSleep(t *testing.T) {
	dev := synthDev(t)
	p, err := NewAdaptiveTimeout(dev, 2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	// At a moderate rate, a 2-slot timeout sleeps prematurely all the
	// time; the timeout must grow.
	runPolicy(t, dev, p, 0.25, 20000, 7)
	if p.Timeout() <= 2 {
		t.Errorf("adaptive timeout stayed at %d under thrashing", p.Timeout())
	}
}

func TestAdaptiveTimeoutShrinksOnLongIdle(t *testing.T) {
	dev := synthDev(t)
	p, err := NewAdaptiveTimeout(dev, 32, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	runPolicy(t, dev, p, 0.002, 40000, 8)
	if p.Timeout() >= 32 {
		t.Errorf("adaptive timeout stayed at %d under long idles", p.Timeout())
	}
}

func TestPredictiveValidation(t *testing.T) {
	dev := synthDev(t)
	for _, a := range []float64{0, -0.5, 1.5} {
		if _, err := NewPredictive(dev, a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

func TestPredictiveSleepsOnLongIdleHistory(t *testing.T) {
	dev := synthDev(t)
	p, err := NewPredictive(dev, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := runPolicy(t, dev, p, 0.005, 60000, 9)
	// Long idles dominate: predictive must sleep most of the time.
	if m.StateSlots[2] < m.Slots/2 {
		t.Errorf("predictive slept only %d/%d slots at λ=0.005", m.StateSlots[2], m.Slots)
	}
}

func TestPredictiveAvoidsSleepUnderDenseTraffic(t *testing.T) {
	dev := synthDev(t)
	p, err := NewPredictive(dev, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := runPolicy(t, dev, p, 0.8, 30000, 10)
	// Idle periods are ~1 slot; prediction collapses below break-even and
	// the device should almost never pay a deep-sleep round trip.
	if m.StateSlots[2] > m.Slots/10 {
		t.Errorf("predictive slept %d/%d slots at λ=0.8", m.StateSlots[2], m.Slots)
	}
}

func TestOptimalPolicyBeatsHeuristics(t *testing.T) {
	// Fig. 1's reference: the exact MDP policy must dominate the
	// heuristics on the objective it optimizes.
	dev := synthDev(t)
	const p = 0.1
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: p, QueueCap: 8, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimalFromModel(d)
	if err != nil {
		t.Fatal(err)
	}
	mOpt := runPolicy(t, dev, opt, p, 200000, 11)

	others := []slotsim.Policy{}
	ao, _ := NewAlwaysOn(dev)
	gr, _ := NewGreedyOff(dev)
	t8, _ := NewFixedTimeout(dev, 8)
	others = append(others, ao, gr, t8)
	for _, other := range others {
		m := runPolicy(t, dev, other, p, 200000, 11)
		if mOpt.AvgCost() > m.AvgCost()+0.01 {
			t.Errorf("optimal (%v) lost to %s (%v)", mOpt.AvgCost(), other.Name(), m.AvgCost())
		}
	}
}

func TestOptimalSimMatchesGain(t *testing.T) {
	// Simulated average cost of the optimal policy must match the RVI
	// gain — the strongest check that simulator and model share dynamics.
	dev := synthDev(t)
	const p = 0.15
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: p, QueueCap: 8, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.AverageCostRVI(1e-9, 500000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimal(d, res.Policy)
	if err != nil {
		t.Fatal(err)
	}
	m := runPolicy(t, dev, opt, p, 600000, 12)
	if got := m.AvgCost(); got > res.Gain*1.02+0.005 || got < res.Gain*0.98-0.005 {
		t.Errorf("simulated optimal cost %v vs RVI gain %v — model/simulator divergence", got, res.Gain)
	}
}

func TestNewOptimalValidation(t *testing.T) {
	dev := synthDev(t)
	d, _ := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: 0.1, QueueCap: 8, LatencyWeight: 0.3})
	if _, err := NewOptimal(nil, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewOptimal(d, mdp.Policy{0}); err == nil {
		t.Error("short policy accepted")
	}
	if _, err := NewOptimalFromModel(nil); err == nil {
		t.Error("nil model accepted by NewOptimalFromModel")
	}
}

func TestPolicyNames(t *testing.T) {
	dev := synthDev(t)
	ao, _ := NewAlwaysOn(dev)
	gr, _ := NewGreedyOff(dev)
	ft, _ := NewFixedTimeout(dev, 8)
	at, _ := NewAdaptiveTimeout(dev, 8, 1, 64)
	pr, _ := NewPredictive(dev, 0.5)
	names := map[string]bool{}
	for _, p := range []slotsim.Policy{ao, gr, ft, at, pr} {
		if p.Name() == "" {
			t.Error("empty policy name")
		}
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

func TestOptimalSimMatchesGainOnHDD(t *testing.T) {
	// Extend the model/simulator exactness check to a catalog device with
	// multi-request service (ServePerSlot = 41) and a forbidden
	// transition (sleep -> standby): the simulated average cost of the
	// exact policy must still match the RVI gain.
	dev, err := device.HDD().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.2
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: p, QueueCap: 6, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.AverageCostRVI(1e-9, 500000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimal(d, res.Policy)
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := workload.NewBernoulli(p)
	sim, err := slotsim.New(slotsim.Config{
		Device: dev, Arrivals: arr, QueueCap: 6,
		Policy: opt, Stream: rng.New(55), LatencyWeight: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(600000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AvgCost(); got > res.Gain*1.02+0.005 || got < res.Gain*0.98-0.005 {
		t.Errorf("HDD simulated optimal cost %v vs RVI gain %v — model/simulator divergence", got, res.Gain)
	}
}

func TestOptimalSimMatchesGainOnWLAN(t *testing.T) {
	// Same exactness check on the WLAN NIC (3 states, fast cheap wakeups).
	dev, err := device.WLAN().Slot(0.1)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.3
	d, err := mdp.BuildDPM(mdp.DPMConfig{Device: dev, ArrivalP: p, QueueCap: 6, LatencyWeight: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.AverageCostRVI(1e-9, 500000)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimal(d, res.Policy)
	if err != nil {
		t.Fatal(err)
	}
	arr, _ := workload.NewBernoulli(p)
	sim, err := slotsim.New(slotsim.Config{
		Device: dev, Arrivals: arr, QueueCap: 6,
		Policy: opt, Stream: rng.New(56), LatencyWeight: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run(600000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.AvgCost(); got > res.Gain*1.02+0.005 || got < res.Gain*0.98-0.005 {
		t.Errorf("WLAN simulated optimal cost %v vs RVI gain %v — model/simulator divergence", got, res.Gain)
	}
}

// TestResetRestoresAdaptiveState: after adaptation, Reset returns the
// stateful policies to their freshly-constructed behavior (the reuse
// contract fleet instances rely on); the stateless policies' Resets are
// exercised as no-ops. A reset policy replays a replica bit-identically
// to a fresh one.
func TestResetRestoresAdaptiveState(t *testing.T) {
	dev := synthDev(t)

	at, err := NewAdaptiveTimeout(dev, 2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	runPolicy(t, dev, at, 0.25, 20000, 7) // drives the timeout up
	if at.Timeout() <= 2 {
		t.Fatal("precondition: adaptation did not move the timeout")
	}
	at.Reset()
	if at.Timeout() != 2 {
		t.Errorf("reset timeout %d, want initial 2", at.Timeout())
	}
	fresh, err := NewAdaptiveTimeout(dev, 2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := runPolicy(t, dev, at, 0.25, 20000, 9), runPolicy(t, dev, fresh, 0.25, 20000, 9)
	if ma.EnergyJ != mb.EnergyJ || ma.Served != mb.Served || at.Timeout() != fresh.Timeout() {
		t.Errorf("reset adaptive-timeout replay diverges from fresh")
	}

	pr, err := NewPredictive(dev, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	runPolicy(t, dev, pr, 0.002, 40000, 8)
	pr.Reset()
	freshPr, err := NewPredictive(dev, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := runPolicy(t, dev, pr, 0.02, 20000, 11), runPolicy(t, dev, freshPr, 0.02, 20000, 11)
	if pa.EnergyJ != pb.EnergyJ || pa.Served != pb.Served {
		t.Errorf("reset predictive replay diverges from fresh")
	}

	// Stateless Resets are no-ops but part of the shared contract.
	ao, err := NewAlwaysOn(dev)
	if err != nil {
		t.Fatal(err)
	}
	ao.Reset()
	go_, err := NewGreedyOff(dev)
	if err != nil {
		t.Fatal(err)
	}
	go_.Reset()
	ft, err := NewFixedTimeout(dev, 4)
	if err != nil {
		t.Fatal(err)
	}
	ft.Reset()
	if ao.Name() != "always-on" || go_.Name() != "greedy-off" || ft.TimeoutSlots != 4 {
		t.Error("stateless reset mutated policy identity")
	}
}
