package qlearn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func defaultCfg() Config {
	return Config{
		NumStates:  4,
		NumActions: 2,
		Gamma:      0.9,
		Alpha:      Constant{C: 0.1},
		Explore:    EpsGreedy{Eps: 0.1},
	}
}

func TestNewAgentValidation(t *testing.T) {
	good := defaultCfg()
	if _, err := NewAgent(good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(Config) Config
	}{
		{"zero states", func(c Config) Config { c.NumStates = 0; return c }},
		{"zero actions", func(c Config) Config { c.NumActions = 0; return c }},
		{"gamma 0", func(c Config) Config { c.Gamma = 0; return c }},
		{"gamma 1", func(c Config) Config { c.Gamma = 1; return c }},
		{"nil schedule", func(c Config) Config { c.Alpha = nil; return c }},
		{"alpha > 1", func(c Config) Config { c.Alpha = Constant{C: 1.5}; return c }},
		{"alpha 0", func(c Config) Config { c.Alpha = Constant{C: 0}; return c }},
		{"nil explorer", func(c Config) Config { c.Explore = nil; return c }},
		{"bad trace lambda", func(c Config) Config { c.TraceLambda = 1; return c }},
		{"traces with sarsa", func(c Config) Config { c.Rule = SARSA; c.TraceLambda = 0.5; return c }},
	}
	for _, tc := range cases {
		if _, err := NewAgent(tc.mut(good)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestSchedules(t *testing.T) {
	if a := (Constant{C: 0.2}).Alpha(100); a != 0.2 {
		t.Errorf("constant alpha %v", a)
	}
	if a := (Harmonic{Scale: 1}).Alpha(4); a != 0.25 {
		t.Errorf("harmonic alpha %v", a)
	}
	p := Polynomial{Scale: 1, Omega: 0.5}
	if a := p.Alpha(4); math.Abs(a-0.5) > 1e-12 {
		t.Errorf("polynomial alpha %v", a)
	}
	// Monotone nonincreasing.
	for n := int64(1); n < 100; n++ {
		if p.Alpha(n+1) > p.Alpha(n) {
			t.Fatal("polynomial schedule not monotone")
		}
	}
}

func TestEpsGreedyDecay(t *testing.T) {
	e := EpsGreedy{Eps: 1, MinEps: 0.01, DecayTau: 100}
	if e.Epsilon(0) != 1 {
		t.Errorf("eps(0) = %v", e.Epsilon(0))
	}
	if e.Epsilon(1000000) != 0.01 {
		t.Errorf("eps floor = %v", e.Epsilon(1000000))
	}
	if e.Epsilon(100) >= e.Epsilon(0) {
		t.Error("epsilon did not decay")
	}
	// Constant when tau == 0.
	c := EpsGreedy{Eps: 0.3}
	if c.Epsilon(1e6) != 0.3 {
		t.Error("constant epsilon drifted")
	}
}

func TestEpsGreedySelectGreedyWhenEpsZero(t *testing.T) {
	e := EpsGreedy{Eps: 0}
	s := rng.New(1)
	q := []float64{1, 5, 3}
	for i := 0; i < 100; i++ {
		idx, explored := e.Select(q, 0, s)
		if idx != 1 || explored {
			t.Fatalf("greedy select returned %d explored=%v", idx, explored)
		}
	}
}

func TestEpsGreedyExplorationFraction(t *testing.T) {
	e := EpsGreedy{Eps: 0.25}
	s := rng.New(2)
	q := []float64{10, 0}
	exp := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if _, explored := e.Select(q, 0, s); explored {
			exp++
		}
	}
	if f := float64(exp) / n; math.Abs(f-0.25) > 0.01 {
		t.Errorf("exploration fraction %v, want 0.25", f)
	}
}

func TestArgmaxRandomTieBreak(t *testing.T) {
	s := rng.New(3)
	q := []float64{1, 1, 0}
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[argmax(q, s)]++
	}
	if counts[2] != 0 {
		t.Error("argmax picked a non-maximal action")
	}
	if counts[0] < 4000 || counts[1] < 4000 {
		t.Errorf("tie-break skewed: %v", counts)
	}
}

func TestBoltzmannPrefersHigherQ(t *testing.T) {
	b := Boltzmann{Temp: 1}
	s := rng.New(4)
	q := []float64{0, 2}
	hi := 0
	const n = 100000
	for i := 0; i < n; i++ {
		idx, _ := b.Select(q, 0, s)
		if idx == 1 {
			hi++
		}
	}
	// P(hi) = e^2/(1+e^2) ≈ 0.881.
	want := math.Exp(2) / (1 + math.Exp(2))
	if f := float64(hi) / n; math.Abs(f-want) > 0.01 {
		t.Errorf("boltzmann P(hi) = %v, want %v", f, want)
	}
}

func TestBoltzmannZeroTempIsGreedy(t *testing.T) {
	b := Boltzmann{Temp: 0}
	s := rng.New(5)
	q := []float64{0, 3, 1}
	for i := 0; i < 50; i++ {
		idx, explored := b.Select(q, 0, s)
		if idx != 1 || explored {
			t.Fatalf("zero-temp boltzmann returned %d explored=%v", idx, explored)
		}
	}
}

// twoStateQStar: deterministic 2-state MDP with known Q*.
// State 0: action 0 -> state 0, reward 0; action 1 -> state 1, reward 1.
// State 1: action 0 -> state 1, reward 2; action 1 -> state 0, reward 0.
// γ = 0.5. Optimal: from 0 go to 1, in 1 stay.
// Q*(1,0) = 2 + 0.5·Q*(1,0) -> 4. Q*(0,1) = 1 + 0.5·4 = 3.
// Q*(1,1) = 0 + 0.5·Q*(0,·)max = 0.5·3 = 1.5. Q*(0,0) = 0 + 0.5·3 = 1.5.
type toyEnv struct{ state int }

func (e *toyEnv) step(action int) (reward float64, next int) {
	switch {
	case e.state == 0 && action == 0:
		return 0, 0
	case e.state == 0 && action == 1:
		return 1, 1
	case e.state == 1 && action == 0:
		return 2, 1
	default:
		return 0, 0
	}
}

func runToy(t *testing.T, cfg Config, steps int, seed uint64) *Agent {
	t.Helper()
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(seed)
	env := &toyEnv{}
	legal := []int{0, 1}
	for i := 0; i < steps; i++ {
		st := env.state
		act, _ := agent.SelectAction(st, legal, s)
		r, next := env.step(act)
		env.state = next
		if cfg.Rule == SARSA {
			// Delayed: emulate by immediately selecting next action
			// deterministically for the update (greedy SARSA approx in
			// test harness: select then step loop keeps it on-policy).
			nextAct, _ := agent.SelectAction(next, legal, s)
			agent.UpdateSARSA(st, act, r, next, nextAct, 1)
			// Take the chosen action next iteration: rewind env by
			// setting a pending action is complex; instead accept the
			// extra selection — SARSA convergence in expectation still
			// holds for this smoke test.
			agent.stepBack()
			continue
		}
		agent.Update(st, act, r, next, legal, 1, s)
	}
	return agent
}

// stepBack undoes the extra SelectAction the SARSA test harness performs.
func (a *Agent) stepBack() { a.step-- }

func TestWatkinsConvergesToQStar(t *testing.T) {
	cfg := Config{
		NumStates: 2, NumActions: 2, Gamma: 0.5,
		Alpha:   Polynomial{Scale: 1, Omega: 0.7},
		Explore: EpsGreedy{Eps: 0.3},
	}
	agent := runToy(t, cfg, 200000, 7)
	want := map[[2]int]float64{
		{0, 0}: 1.5, {0, 1}: 3, {1, 0}: 4, {1, 1}: 1.5,
	}
	for k, w := range want {
		if got := agent.Q(k[0], k[1]); math.Abs(got-w) > 0.05 {
			t.Errorf("Q(%d,%d) = %v, want %v", k[0], k[1], got, w)
		}
	}
	if agent.Greedy(0, []int{0, 1}) != 1 || agent.Greedy(1, []int{0, 1}) != 0 {
		t.Error("greedy policy not optimal")
	}
}

func TestDoubleQConvergesToQStar(t *testing.T) {
	cfg := Config{
		NumStates: 2, NumActions: 2, Gamma: 0.5,
		Alpha:   Polynomial{Scale: 1, Omega: 0.7},
		Explore: EpsGreedy{Eps: 0.3},
		Rule:    DoubleQ,
	}
	agent := runToy(t, cfg, 300000, 8)
	if got := agent.Q(1, 0); math.Abs(got-4) > 0.1 {
		t.Errorf("double-Q Q(1,0) = %v, want 4", got)
	}
	if agent.Greedy(0, []int{0, 1}) != 1 {
		t.Error("double-Q greedy policy not optimal")
	}
}

func TestSARSAWithLowExplorationApproachesQStar(t *testing.T) {
	cfg := Config{
		NumStates: 2, NumActions: 2, Gamma: 0.5,
		Alpha:   Polynomial{Scale: 1, Omega: 0.7},
		Explore: EpsGreedy{Eps: 0.5, MinEps: 0.01, DecayTau: 20000},
		Rule:    SARSA,
	}
	agent := runToy(t, cfg, 300000, 9)
	// With ε → 0.01, SARSA's fixed point is within a whisker of Q*.
	if got := agent.Q(1, 0); math.Abs(got-4) > 0.25 {
		t.Errorf("SARSA Q(1,0) = %v, want ≈4", got)
	}
	if agent.Greedy(1, []int{0, 1}) != 0 {
		t.Error("SARSA greedy policy not optimal in state 1")
	}
}

func TestTracesAccelerateSparseReward(t *testing.T) {
	// Chain MDP: states 0..4, action 0 moves right, reward 1 only on
	// reaching state 4 (then reset to 0). With traces, credit flows back
	// along the chain in far fewer episodes.
	run := func(lambda float64, steps int) float64 {
		cfg := Config{
			NumStates: 5, NumActions: 1, Gamma: 0.9,
			Alpha:       Constant{C: 0.2},
			Explore:     EpsGreedy{Eps: 0},
			TraceLambda: lambda,
		}
		agent, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(10)
		state := 0
		legal := []int{0}
		for i := 0; i < steps; i++ {
			act, _ := agent.SelectAction(state, legal, s)
			var r float64
			next := state + 1
			if next == 4 {
				r, next = 1, 0
			}
			agent.Update(state, act, r, next, legal, 1, s)
			state = next
		}
		return agent.Q(0, 0)
	}
	const steps = 60
	without := run(0, steps)
	with := run(0.9, steps)
	if with <= without {
		t.Errorf("traces did not accelerate: Q(0,0) with=%v without=%v", with, without)
	}
}

func TestSMDPElapsedDiscount(t *testing.T) {
	// A 3-slot transition must discount the bootstrap by γ³.
	cfg := Config{
		NumStates: 2, NumActions: 1, Gamma: 0.5,
		Alpha:   Constant{C: 1}, // full overwrite for exactness
		Explore: EpsGreedy{Eps: 0},
	}
	agent, _ := NewAgent(cfg)
	agent.SetQ(1, 0, 8)
	s := rng.New(11)
	agent.Update(0, 0, 2, 1, []int{0}, 3, s)
	// target = 2 + 0.5³·8 = 3.
	if got := agent.Q(0, 0); math.Abs(got-3) > 1e-12 {
		t.Errorf("SMDP update gave %v, want 3", got)
	}
}

func TestUpdateSARSAOnWrongRulePanics(t *testing.T) {
	agent, _ := NewAgent(defaultCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateSARSA on Watkins agent did not panic")
		}
	}()
	agent.UpdateSARSA(0, 0, 0, 0, 0, 1)
}

func TestSelectActionEmptyLegalPanics(t *testing.T) {
	agent, _ := NewAgent(defaultCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("empty legal set did not panic")
		}
	}()
	agent.SelectAction(0, nil, rng.New(1))
}

func TestOptimisticInit(t *testing.T) {
	cfg := defaultCfg()
	cfg.InitQ = 5
	agent, _ := NewAgent(cfg)
	if agent.Q(3, 1) != 5 {
		t.Errorf("InitQ not applied: %v", agent.Q(3, 1))
	}
}

func TestBytesFootprint(t *testing.T) {
	cfg := defaultCfg() // 4 states × 2 actions
	agent, _ := NewAgent(cfg)
	if b := agent.Bytes(); b != 4*2*8*2 { // q + visits
		t.Errorf("Bytes = %d, want 128", b)
	}
	cfg.Rule = DoubleQ
	agent2, _ := NewAgent(cfg)
	if agent2.Bytes() <= agent.Bytes() {
		t.Error("DoubleQ footprint not larger")
	}
}

func TestVisitsAndUpdatesCounters(t *testing.T) {
	agent, _ := NewAgent(defaultCfg())
	s := rng.New(12)
	agent.Update(1, 0, 1, 2, []int{0, 1}, 1, s)
	agent.Update(1, 0, 1, 2, []int{0, 1}, 1, s)
	if agent.Visits(1, 0) != 2 {
		t.Errorf("visits %d, want 2", agent.Visits(1, 0))
	}
	if agent.Updates() != 2 {
		t.Errorf("updates %d, want 2", agent.Updates())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	mk := func() *Agent {
		return runToy(t, Config{
			NumStates: 2, NumActions: 2, Gamma: 0.5,
			Alpha:   Constant{C: 0.1},
			Explore: EpsGreedy{Eps: 0.2},
		}, 5000, 99)
	}
	a, b := mk(), mk()
	for s := 0; s < 2; s++ {
		for act := 0; act < 2; act++ {
			if a.Q(s, act) != b.Q(s, act) {
				t.Fatal("identical seeds produced different tables")
			}
		}
	}
}

func BenchmarkQStep(b *testing.B) {
	// One decision + one update: the paper's entire per-interval runtime.
	agent, err := NewAgent(Config{
		NumStates: 99, NumActions: 3, Gamma: 0.95,
		Alpha:   Constant{C: 0.1},
		Explore: EpsGreedy{Eps: 0.05},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := rng.New(1)
	legal := []int{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := i % 99
		act, _ := agent.SelectAction(st, legal, s)
		agent.Update(st, act, -0.5, (st+1)%99, legal, 1, s)
	}
}

// TestResetBitIdenticalToFresh: after a learning episode, Reset restores
// the agent so a second episode replays bit-identically to a fresh
// agent's first — and allocates nothing.
func TestResetBitIdenticalToFresh(t *testing.T) {
	for _, cfg := range []Config{
		{NumStates: 4, NumActions: 3, Gamma: 0.9, Alpha: Constant{C: 0.1},
			Explore: EpsGreedy{Eps: 0.2}, InitQ: 0.5},
		{NumStates: 4, NumActions: 3, Gamma: 0.9, Alpha: Constant{C: 0.1},
			Explore: EpsGreedy{Eps: 0.2}, Rule: DoubleQ},
		{NumStates: 4, NumActions: 3, Gamma: 0.9, Alpha: Constant{C: 0.1},
			Explore: EpsGreedy{Eps: 0.2}, TraceLambda: 0.5},
	} {
		reused, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		legal := []int{0, 1, 2}
		episode := func(a *Agent, seed uint64) {
			stream := rng.New(seed)
			s := 0
			for i := 0; i < 2000; i++ {
				act, _ := a.SelectAction(s, legal, stream)
				next := (s + act + 1) % cfg.NumStates
				a.Update(s, act, -float64(act), next, legal, 1+i%3, stream)
				s = next
			}
		}
		episode(reused, 7) // dirty every counter and table cell
		allocs := testing.AllocsPerRun(1, func() { reused.Reset() })
		if allocs != 0 {
			t.Fatalf("rule %v: Reset allocates %.1f times", cfg.Rule, allocs)
		}
		episode(reused, 11)
		fresh, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		episode(fresh, 11)
		for s := 0; s < cfg.NumStates; s++ {
			for act := 0; act < cfg.NumActions; act++ {
				if reused.Q(s, act) != fresh.Q(s, act) {
					t.Fatalf("rule %v: reset agent Q(%d,%d)=%v != fresh %v",
						cfg.Rule, s, act, reused.Q(s, act), fresh.Q(s, act))
				}
				if reused.Visits(s, act) != fresh.Visits(s, act) {
					t.Fatalf("rule %v: visit counters diverge at (%d,%d)", cfg.Rule, s, act)
				}
			}
		}
		if reused.Step() != fresh.Step() || reused.Updates() != fresh.Updates() {
			t.Fatalf("rule %v: counters diverge: step %d/%d updates %d/%d",
				cfg.Rule, reused.Step(), fresh.Step(), reused.Updates(), fresh.Updates())
		}
	}
}
