// Package qlearn implements tabular Q-learning — the algorithmic core of
// Q-DPM — together with the standard variations the ablation studies
// exercise: Watkins Q-learning, SARSA, double Q-learning, eligibility
// traces (Watkins Q(λ)), ε-greedy and Boltzmann exploration, and
// constant/harmonic/polynomial learning-rate schedules.
//
// The agent is domain-agnostic: states and actions are small integers.
// internal/core maps power-management observations onto this table. The
// per-step work is one argmax over the legal actions plus one table update
// (Eqn. 3 of the paper), and the memory footprint is the |S|×|A| float64
// table — the two properties the paper's efficiency argument rests on.
package qlearn

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Schedule yields the learning rate for the n-th visit of a state-action
// pair (n >= 1).
type Schedule interface {
	// Alpha returns the learning rate for visit n.
	Alpha(n int64) float64
	// String describes the schedule.
	String() string
}

// Constant is a fixed learning rate; the paper's choice for nonstationary
// tracking (a constant rate never stops adapting).
type Constant struct{ C float64 }

// Alpha returns C.
func (s Constant) Alpha(int64) float64 { return s.C }
func (s Constant) String() string      { return fmt.Sprintf("const(%g)", s.C) }

// Harmonic is α(n) = Scale/n; classical convergence schedule for
// stationary problems.
type Harmonic struct{ Scale float64 }

// Alpha returns Scale/n.
func (s Harmonic) Alpha(n int64) float64 { return s.Scale / float64(n) }
func (s Harmonic) String() string        { return fmt.Sprintf("harmonic(%g)", s.Scale) }

// Polynomial is α(n) = Scale/n^Omega with Omega in (0.5, 1]; the standard
// compromise between adaptation speed and convergence.
type Polynomial struct {
	Scale float64
	Omega float64
}

// Alpha returns Scale/n^Omega.
func (s Polynomial) Alpha(n int64) float64 { return s.Scale / math.Pow(float64(n), s.Omega) }
func (s Polynomial) String() string        { return fmt.Sprintf("poly(%g,ω=%g)", s.Scale, s.Omega) }

// validateSchedule rejects schedules that can produce rates outside (0,1].
func validateSchedule(s Schedule) error {
	if s == nil {
		return fmt.Errorf("qlearn: nil schedule")
	}
	a := s.Alpha(1)
	if !(a > 0) || a > 1 {
		return fmt.Errorf("qlearn: schedule %s yields first-visit rate %v outside (0,1]", s, a)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Exploration

// Explorer chooses among the legal actions given their Q-values. It
// returns an index into the qvals slice and whether the choice was
// exploratory (non-greedy), which Watkins Q(λ) needs to cut traces.
type Explorer interface {
	Select(qvals []float64, step int64, stream *rng.Stream) (idx int, explored bool)
	String() string
}

// EpsGreedy explores uniformly with probability ε(t) = max(MinEps,
// Eps·exp(−t/DecayTau)) (constant ε when DecayTau == 0).
type EpsGreedy struct {
	Eps      float64
	MinEps   float64
	DecayTau float64
}

// Epsilon returns the exploration probability at step t.
func (e EpsGreedy) Epsilon(t int64) float64 {
	if e.DecayTau <= 0 {
		return e.Eps
	}
	eps := e.Eps * math.Exp(-float64(t)/e.DecayTau)
	if eps < e.MinEps {
		eps = e.MinEps
	}
	return eps
}

// Select implements Explorer.
func (e EpsGreedy) Select(qvals []float64, step int64, stream *rng.Stream) (int, bool) {
	return selectEps(qvals, e.Epsilon(step), stream)
}

// selectEps is the ε-greedy choice at a resolved exploration rate — the
// shared kernel of EpsGreedy and its memoized wrapper.
func selectEps(qvals []float64, eps float64, stream *rng.Stream) (int, bool) {
	if stream.Float64() < eps {
		return stream.Intn(len(qvals)), true
	}
	return argmax(qvals, stream), false
}

func (e EpsGreedy) String() string {
	return fmt.Sprintf("eps-greedy(ε=%g,min=%g,τ=%g)", e.Eps, e.MinEps, e.DecayTau)
}

// epsMemo wraps a decaying EpsGreedy with a step-indexed memo of ε(t).
// Epsilon is a pure function of the step, so the memo is value-exact; it
// replaces the per-decision math.Exp of the decay schedule with a table
// load for the first epsMemoSize steps (short-episode workloads — fleet
// instances above all — never leave the table). NewAgent installs it
// transparently.
type epsMemo struct {
	e    EpsGreedy
	memo []float64
}

const epsMemoSize = 4096

func newEpsMemo(e EpsGreedy) *epsMemo {
	m := &epsMemo{e: e, memo: make([]float64, epsMemoSize)}
	for i := range m.memo {
		m.memo[i] = -1 // ε values are >= 0; -1 = unfilled
	}
	return m
}

// Select implements Explorer with the memoized rate.
func (m *epsMemo) Select(qvals []float64, step int64, stream *rng.Stream) (int, bool) {
	eps := -1.0
	if step < epsMemoSize {
		eps = m.memo[step]
	}
	if eps < 0 {
		eps = m.e.Epsilon(step)
		if step < epsMemoSize {
			m.memo[step] = eps
		}
	}
	return selectEps(qvals, eps, stream)
}

func (m *epsMemo) String() string { return m.e.String() }

// Boltzmann samples actions with probability ∝ exp(Q/T), T decaying like
// EpsGreedy's ε.
type Boltzmann struct {
	Temp     float64
	MinTemp  float64
	DecayTau float64
}

func (b Boltzmann) temperature(t int64) float64 {
	if b.DecayTau <= 0 {
		return b.Temp
	}
	temp := b.Temp * math.Exp(-float64(t)/b.DecayTau)
	if temp < b.MinTemp {
		temp = b.MinTemp
	}
	return temp
}

// Select implements Explorer.
func (b Boltzmann) Select(qvals []float64, step int64, stream *rng.Stream) (int, bool) {
	temp := b.temperature(step)
	if temp <= 0 {
		return argmax(qvals, stream), false
	}
	// Softmax with max-shift for stability. The weights are recomputed in
	// the selection pass rather than stored so the per-decision hot path
	// allocates nothing; exp is deterministic, so both passes agree.
	mx := qvals[0]
	for _, q := range qvals[1:] {
		if q > mx {
			mx = q
		}
	}
	total := 0.0
	for _, q := range qvals {
		total += math.Exp((q - mx) / temp)
	}
	u := stream.Float64() * total
	acc := 0.0
	choice := len(qvals) - 1
	for i, q := range qvals {
		acc += math.Exp((q - mx) / temp)
		if u < acc {
			choice = i
			break
		}
	}
	return choice, choice != argmaxDet(qvals)
}

func (b Boltzmann) String() string {
	return fmt.Sprintf("boltzmann(T=%g,min=%g,τ=%g)", b.Temp, b.MinTemp, b.DecayTau)
}

// argmax breaks ties uniformly at random so symmetric initial tables do
// not lock onto the first action.
func argmax(qvals []float64, stream *rng.Stream) int {
	best := qvals[0]
	n := 1
	idx := 0
	for i, q := range qvals[1:] {
		switch {
		case q > best+1e-12:
			best, idx, n = q, i+1, 1
		case q > best-1e-12:
			n++
			if stream.Intn(n) == 0 {
				idx = i + 1
			}
		}
	}
	return idx
}

// argmaxDet is the deterministic first-max, used only to classify a
// Boltzmann draw as exploratory.
func argmaxDet(qvals []float64) int {
	idx := 0
	for i, q := range qvals {
		if q > qvals[idx] {
			idx = i
		}
	}
	return idx
}

// ---------------------------------------------------------------------------
// Agent

// Rule selects the update target.
type Rule int

// Update rules.
const (
	// Watkins is standard Q-learning: target r + γ^k · max_b Q(s', b).
	Watkins Rule = iota
	// SARSA is on-policy: target r + γ^k · Q(s', a') with a' the action
	// actually taken next (supply it via UpdateSARSA).
	SARSA
	// DoubleQ keeps two tables and decouples argmax from evaluation,
	// correcting Watkins' overestimation bias.
	DoubleQ
)

func (r Rule) String() string {
	switch r {
	case Watkins:
		return "watkins"
	case SARSA:
		return "sarsa"
	case DoubleQ:
		return "double-q"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Config assembles an agent.
type Config struct {
	// NumStates and NumActions size the table.
	NumStates, NumActions int
	// Gamma is the discount factor in (0,1).
	Gamma float64
	// Alpha is the learning-rate schedule.
	Alpha Schedule
	// Explore is the exploration strategy.
	Explore Explorer
	// Rule selects Watkins, SARSA, or DoubleQ.
	Rule Rule
	// InitQ is the initial table value. Optimistic initialization
	// (higher than any reachable return) accelerates exploration.
	InitQ float64
	// TraceLambda enables Watkins Q(λ) eligibility traces when > 0
	// (Watkins rule only). Traces are replacing and are cut on
	// exploratory actions.
	TraceLambda float64
	// TraceCutoff drops trace entries below this weight (default 1e-4).
	TraceCutoff float64
}

// Agent is a tabular Q-learner. Not safe for concurrent use.
type Agent struct {
	cfg    Config
	q      []float64 // primary table
	q2     []float64 // second table (DoubleQ only)
	visits []int64
	step   int64

	traces map[int32]float64 // state*nA+action -> eligibility

	updates int64

	// scratch holds the legal-action Q values during SelectAction. One
	// selection runs per simulated slot, so this buffer keeps the
	// decision hot path allocation-free.
	scratch []float64

	// alphaMemo caches Alpha(n) for small visit counts. Schedules are
	// pure functions of n, so the memo is value-exact; it turns the
	// per-update math.Pow of the Polynomial schedule into a table load.
	// Allocated once at construction (fixed size), so the update hot
	// path stays allocation-free.
	alphaMemo []float64

	// touched journals the table indices written since the last Reset
	// (duplicates allowed), so Reset restores only those entries instead
	// of sweeping the whole table — a fleet instance touches a handful
	// of pairs while the table holds hundreds. Once the journal reaches
	// the sweep break-even it stops recording (dirtyAll) and Reset falls
	// back to the full clear.
	touched  []int32
	dirtyAll bool
}

// alphaMemoSize bounds the memo: visit counts beyond it (rare pairs in
// very long runs) fall back to the schedule. Index 0 is unused (visit
// counts start at 1).
const alphaMemoSize = 4096

// alpha returns the learning rate for visit n, memoized.
func (a *Agent) alpha(n int64) float64 {
	if n < alphaMemoSize {
		if v := a.alphaMemo[n]; v >= 0 {
			return v
		}
		v := a.cfg.Alpha.Alpha(n)
		a.alphaMemo[n] = v
		return v
	}
	return a.cfg.Alpha.Alpha(n)
}

// NewAgent validates the configuration and returns a zeroed agent.
func NewAgent(cfg Config) (*Agent, error) {
	if cfg.NumStates <= 0 || cfg.NumActions <= 0 {
		return nil, fmt.Errorf("qlearn: table dimensions %dx%d must be positive", cfg.NumStates, cfg.NumActions)
	}
	if !(cfg.Gamma > 0) || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("qlearn: discount %v out of (0,1)", cfg.Gamma)
	}
	if err := validateSchedule(cfg.Alpha); err != nil {
		return nil, err
	}
	if cfg.Explore == nil {
		return nil, fmt.Errorf("qlearn: nil explorer")
	}
	if cfg.TraceLambda < 0 || cfg.TraceLambda >= 1 {
		return nil, fmt.Errorf("qlearn: trace lambda %v out of [0,1)", cfg.TraceLambda)
	}
	if cfg.TraceLambda > 0 && cfg.Rule != Watkins {
		return nil, fmt.Errorf("qlearn: eligibility traces require the Watkins rule")
	}
	if cfg.TraceCutoff == 0 {
		cfg.TraceCutoff = 1e-4
	}
	// A decaying ε-greedy explorer pays one math.Exp per decision;
	// memoize it by step (value-exact — ε is a pure function of the
	// step). Constant-ε explorers (DecayTau <= 0) need no memo.
	if eg, ok := cfg.Explore.(EpsGreedy); ok && eg.DecayTau > 0 {
		cfg.Explore = newEpsMemo(eg)
	}
	n := cfg.NumStates * cfg.NumActions
	a := &Agent{cfg: cfg, q: make([]float64, n), visits: make([]int64, n),
		alphaMemo: make([]float64, alphaMemoSize)}
	for i := range a.alphaMemo {
		a.alphaMemo[i] = -1 // schedules yield rates in (0,1]; -1 = unfilled
	}
	for i := range a.q {
		a.q[i] = cfg.InitQ
	}
	if cfg.Rule == DoubleQ {
		a.q2 = make([]float64, n)
		for i := range a.q2 {
			a.q2[i] = cfg.InitQ
		}
	}
	if cfg.TraceLambda > 0 {
		a.traces = make(map[int32]float64)
	}
	return a, nil
}

// Reset restores the agent to its freshly-constructed state — tables at
// InitQ, visit/step/update counters zeroed, traces cleared — reusing
// every buffer. A Reset agent is behaviorally bit-identical to
// NewAgent(cfg); callers that cycle one agent through many independent
// episodes (one fleet instance per episode) use it to keep learner
// turnover off the allocator.
func (a *Agent) Reset() {
	if a.dirtyAll {
		for i := range a.q {
			a.q[i] = a.cfg.InitQ
		}
		if a.q2 != nil {
			for i := range a.q2 {
				a.q2[i] = a.cfg.InitQ
			}
		}
		for i := range a.visits {
			a.visits[i] = 0
		}
	} else {
		// Short episodes touch a handful of pairs; restoring just those
		// yields the same table as the full sweep (every untouched entry
		// still holds InitQ / zero visits).
		for _, i := range a.touched {
			a.q[i] = a.cfg.InitQ
			if a.q2 != nil {
				a.q2[i] = a.cfg.InitQ
			}
			a.visits[i] = 0
		}
	}
	a.touched = a.touched[:0]
	a.dirtyAll = false
	a.step = 0
	a.updates = 0
	if a.traces != nil {
		clear(a.traces)
	}
}

func (a *Agent) idx(s, act int) int { return s*a.cfg.NumActions + act }

// mark journals a table write for journaled Reset. Past the break-even
// point a full-table clear is cheaper than replaying the journal, so
// recording stops and dirtyAll routes Reset to the sweep.
func (a *Agent) mark(i int) {
	if a.dirtyAll {
		return
	}
	if len(a.touched) >= len(a.q)/4+16 {
		a.dirtyAll = true
		a.touched = a.touched[:0]
		return
	}
	a.touched = append(a.touched, int32(i))
}

// Q returns the current estimate for (s, act). For DoubleQ it returns the
// average of the two tables (the quantity used for action selection).
func (a *Agent) Q(s, act int) float64 {
	i := a.idx(s, act)
	if a.q2 != nil {
		return (a.q[i] + a.q2[i]) / 2
	}
	return a.q[i]
}

// SetQ overwrites the estimate; exported for fuzzy-aggregation updates and
// tests.
func (a *Agent) SetQ(s, act int, v float64) {
	i := a.idx(s, act)
	a.mark(i)
	a.q[i] = v
	if a.q2 != nil {
		a.q2[i] = v
	}
}

// Visits returns the visit count of (s, act).
func (a *Agent) Visits(s, act int) int64 { return a.visits[a.idx(s, act)] }

// Updates returns the total number of table updates performed.
func (a *Agent) Updates() int64 { return a.updates }

// Step returns the number of action selections made.
func (a *Agent) Step() int64 { return a.step }

// Bytes returns the approximate resident size of the learner state — the
// paper's "a little bit [of] memory space" claim, measured.
func (a *Agent) Bytes() int {
	b := len(a.q)*8 + len(a.visits)*8
	if a.q2 != nil {
		b += len(a.q2) * 8
	}
	return b
}

// MaxQ returns max over legal actions of Q(s, ·). It panics on an empty
// legal set (programming error).
func (a *Agent) MaxQ(s int, legal []int) float64 {
	best := math.Inf(-1)
	for _, act := range legal {
		if q := a.Q(s, act); q > best {
			best = q
		}
	}
	return best
}

// Greedy returns the deterministic greedy action among legal.
func (a *Agent) Greedy(s int, legal []int) int {
	best := legal[0]
	for _, act := range legal[1:] {
		if a.Q(s, act) > a.Q(s, best) {
			best = act
		}
	}
	return best
}

// SelectAction picks an action among legal using the exploration strategy
// and advances the step counter.
func (a *Agent) SelectAction(s int, legal []int, stream *rng.Stream) (action int, explored bool) {
	if len(legal) == 0 {
		panic("qlearn: SelectAction with no legal actions")
	}
	if cap(a.scratch) < len(legal) {
		a.scratch = make([]float64, len(legal))
	}
	qvals := a.scratch[:len(legal)]
	for i, act := range legal {
		qvals[i] = a.Q(s, act)
	}
	idx, explored := a.cfg.Explore.Select(qvals, a.step, stream)
	a.step++
	if explored && a.traces != nil {
		// Watkins Q(λ): exploratory actions invalidate the on-policy
		// trajectory; cut all traces.
		clear(a.traces)
	}
	return legal[idx], explored
}

// Update applies the Watkins/DoubleQ update for a transition that took
// `elapsed` slots (SMDP-style: the target discounts by γ^elapsed, so
// multi-slot device transitions are handled exactly). reward must already
// be the discounted sum of the per-slot rewards over those slots.
func (a *Agent) Update(s, act int, reward float64, next int, legalNext []int, elapsed int, stream *rng.Stream) {
	if elapsed < 1 {
		elapsed = 1
	}
	// One-slot transitions dominate every workload; Pow(γ, 1) is exactly
	// γ, so the fast path is value-identical and skips the pow.
	g := a.cfg.Gamma
	if elapsed > 1 {
		g = math.Pow(a.cfg.Gamma, float64(elapsed))
	}
	i := a.idx(s, act)
	a.mark(i)
	a.visits[i]++
	alpha := a.alpha(a.visits[i])
	a.updates++

	switch a.cfg.Rule {
	case DoubleQ:
		// Flip a coin: update one table using the other's evaluation.
		ta, tb := a.q, a.q2
		if stream.Bool(0.5) {
			ta, tb = a.q2, a.q
		}
		best := legalNext[0]
		for _, n2 := range legalNext[1:] {
			if ta[a.idx(next, n2)] > ta[a.idx(next, best)] {
				best = n2
			}
		}
		target := reward + g*tb[a.idx(next, best)]
		ta[i] += alpha * (target - ta[i])
	default: // Watkins
		target := reward + g*a.MaxQ(next, legalNext)
		delta := target - a.q[i]
		if a.traces == nil {
			a.q[i] += alpha * delta
			return
		}
		// Watkins Q(λ) with replacing traces.
		a.traces[int32(i)] = 1
		for k, e := range a.traces {
			a.q[k] += alpha * delta * e
			e *= a.cfg.Gamma * a.cfg.TraceLambda
			if e < a.cfg.TraceCutoff {
				delete(a.traces, k)
			} else {
				a.traces[k] = e
			}
		}
	}
}

// UpdateSARSA applies the on-policy update with the actually-chosen next
// action.
func (a *Agent) UpdateSARSA(s, act int, reward float64, next, nextAct int, elapsed int) {
	if a.cfg.Rule != SARSA {
		panic("qlearn: UpdateSARSA on a non-SARSA agent")
	}
	if elapsed < 1 {
		elapsed = 1
	}
	g := a.cfg.Gamma
	if elapsed > 1 {
		g = math.Pow(a.cfg.Gamma, float64(elapsed))
	}
	i := a.idx(s, act)
	a.mark(i)
	a.visits[i]++
	alpha := a.alpha(a.visits[i])
	a.updates++
	target := reward + g*a.Q(next, nextAct)
	a.q[i] += alpha * (target - a.q[i])
}

// Rule reports the configured update rule.
func (a *Agent) Rule() Rule { return a.cfg.Rule }

// Gamma reports the configured discount.
func (a *Agent) Gamma() float64 { return a.cfg.Gamma }
