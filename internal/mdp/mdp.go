// Package mdp builds the exact discrete-time Markov decision process
// corresponding to a slotted power-managed system (internal/slotsim with
// Bernoulli arrivals) and solves it with classical dynamic-programming
// methods: discounted value iteration, policy iteration, and average-cost
// relative value iteration.
//
// The MDP and the simulator are generated from the same device description
// and share slot semantics line for line, so the "optimal policy derived by
// analytical techniques which assume [the] model is completely known" that
// Fig. 1 of the paper compares against is exactly optimal for the simulated
// system, not merely an approximation.
package mdp

import (
	"fmt"
	"math"

	"repro/internal/device"
)

// Outcome is one probabilistic successor of a state-action pair.
type Outcome struct {
	// Next is the successor state index.
	Next int
	// P is the transition probability.
	P float64
}

// Model is a finite MDP with per-state action sets, sparse transitions,
// and expected immediate costs.
type Model struct {
	// N is the number of states.
	N int
	// Actions[s] lists the action labels available in state s. For DPM
	// models the label is the commanded device.StateID; uncontrollable
	// (transition) states have a single pseudo-action.
	Actions [][]int
	// Trans[s][ai] lists the outcomes of taking Actions[s][ai] in s.
	Trans [][][]Outcome
	// Costs[s][ai] is the expected immediate cost of Actions[s][ai].
	Costs [][]float64
	// Energy[s][ai] is the energy component of the cost (joules); nil for
	// generic models. DPM models fill it so constrained optimizers can
	// separate energy from latency.
	Energy [][]float64
	// Perf[s][ai] is the expected post-service backlog (requests); nil
	// for generic models.
	Perf [][]float64
	// Label[s] is a human-readable state description.
	Label []string
}

// Validate checks structural invariants: rows sum to 1, probabilities are
// valid, indices are in range, and every state has at least one action.
func (m *Model) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("mdp: model has %d states", m.N)
	}
	if len(m.Actions) != m.N || len(m.Trans) != m.N || len(m.Costs) != m.N {
		return fmt.Errorf("mdp: ragged model arrays")
	}
	for s := 0; s < m.N; s++ {
		if len(m.Actions[s]) == 0 {
			return fmt.Errorf("mdp: state %d has no actions", s)
		}
		if len(m.Trans[s]) != len(m.Actions[s]) || len(m.Costs[s]) != len(m.Actions[s]) {
			return fmt.Errorf("mdp: state %d has ragged action arrays", s)
		}
		for ai := range m.Actions[s] {
			sum := 0.0
			for _, o := range m.Trans[s][ai] {
				if o.Next < 0 || o.Next >= m.N {
					return fmt.Errorf("mdp: state %d action %d has successor %d out of range", s, ai, o.Next)
				}
				if o.P < 0 || o.P > 1+1e-12 || math.IsNaN(o.P) {
					return fmt.Errorf("mdp: state %d action %d has probability %v", s, ai, o.P)
				}
				sum += o.P
			}
			if math.Abs(sum-1) > 1e-9 {
				return fmt.Errorf("mdp: state %d action %d probabilities sum to %v", s, ai, sum)
			}
			if c := m.Costs[s][ai]; math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("mdp: state %d action %d cost %v", s, ai, c)
			}
		}
	}
	return nil
}

// Policy maps each state to an index into its action set.
type Policy []int

// ---------------------------------------------------------------------------
// DPM model builder

// DPMConfig describes the power-managed system to model. It must mirror a
// slotsim.Config with workload.Bernoulli arrivals.
type DPMConfig struct {
	// Device is the slotted PSM.
	Device *device.Slotted
	// ArrivalP is the per-slot Bernoulli arrival probability.
	ArrivalP float64
	// QueueCap bounds the queue; the model requires a finite bound >= 1.
	QueueCap int
	// LatencyWeight converts post-service backlog into cost units.
	LatencyWeight float64
}

// DPM is the constructed model plus the index maps needed to translate
// between simulator observations and MDP states.
type DPM struct {
	*Model
	Cfg DPMConfig

	// settledBase[i] is the state index of (device state i, queue 0).
	settledBase []int
	// transBase[(i,j)] is the state index of (transition i->j, k=1, queue
	// 0); -1 when the transition is forbidden or instantaneous.
	transBase [][]int
}

// BuildDPM enumerates the exact state space:
//
//	settled(i, q)          for each device state i, q in 0..cap
//	switching(i->j, k, q)  for each allowed transition with latency L >= 1,
//	                       k in 1..L (slots remaining), q in 0..cap
//
// Actions in settled states are the allowed target states (staying
// included); switching states have the single pseudo-action -1 ("wait").
func BuildDPM(cfg DPMConfig) (*DPM, error) {
	dev := cfg.Device
	if dev == nil {
		return nil, fmt.Errorf("mdp: config needs a device")
	}
	if cfg.ArrivalP < 0 || cfg.ArrivalP > 1 || math.IsNaN(cfg.ArrivalP) {
		return nil, fmt.Errorf("mdp: arrival probability %v out of [0,1]", cfg.ArrivalP)
	}
	if cfg.QueueCap < 1 {
		return nil, fmt.Errorf("mdp: queue capacity %d must be >= 1 (the model needs a finite queue)", cfg.QueueCap)
	}
	if cfg.LatencyWeight < 0 || math.IsNaN(cfg.LatencyWeight) {
		return nil, fmt.Errorf("mdp: latency weight %v must be >= 0", cfg.LatencyWeight)
	}

	nDev := dev.PSM.NumStates()
	qn := cfg.QueueCap + 1 // queue occupancies 0..cap

	d := &DPM{Cfg: cfg}
	d.settledBase = make([]int, nDev)
	d.transBase = make([][]int, nDev)

	// Enumerate states.
	n := 0
	for i := 0; i < nDev; i++ {
		d.settledBase[i] = n
		n += qn
	}
	for i := 0; i < nDev; i++ {
		d.transBase[i] = make([]int, nDev)
		for j := 0; j < nDev; j++ {
			d.transBase[i][j] = -1
			if i == j {
				continue
			}
			l := dev.TransSlots[i][j]
			if l >= 1 {
				d.transBase[i][j] = n
				n += l * qn // k = 1..L, each with qn queue levels
			}
		}
	}

	m := &Model{
		N:       n,
		Actions: make([][]int, n),
		Trans:   make([][][]Outcome, n),
		Costs:   make([][]float64, n),
		Energy:  make([][]float64, n),
		Perf:    make([][]float64, n),
		Label:   make([]string, n),
	}
	d.Model = m

	pA := cfg.ArrivalP
	cap := cfg.QueueCap
	w := cfg.LatencyWeight

	// arrivalsThen computes, for a slot spent with service flag `serves`
	// in post-decision queue q, the two (q', prob, backlog) outcomes.
	type after struct {
		q    int
		prob float64
	}
	arrivalsThen := func(q int, serves bool, serveN int) []after {
		var outs []after
		for a := 0; a <= 1; a++ {
			prob := pA
			if a == 0 {
				prob = 1 - pA
			}
			if prob == 0 {
				continue
			}
			q1 := q + a
			if q1 > cap {
				q1 = cap // overflow lost
			}
			if serves {
				q1 -= serveN
				if q1 < 0 {
					q1 = 0
				}
			}
			outs = append(outs, after{q: q1, prob: prob})
		}
		return outs
	}

	// Settled states.
	for i := 0; i < nDev; i++ {
		for q := 0; q <= cap; q++ {
			s := d.settledBase[i] + q
			m.Label[s] = fmt.Sprintf("%s q=%d", dev.PSM.States[i].Name, q)
			for j := 0; j < nDev; j++ {
				if i != j && dev.TransSlots[i][j] < 0 {
					continue // forbidden
				}
				var outs []Outcome
				var energy, perf float64
				switch {
				case i == j:
					// Stay: ordinary slot in state i.
					serves := dev.PSM.States[i].CanService
					energy = dev.StateEnergy[i]
					for _, af := range arrivalsThen(q, serves, dev.ServePerSlot) {
						outs = append(outs, Outcome{Next: d.settledBase[i] + af.q, P: af.prob})
						perf += af.prob * float64(af.q)
					}
				case dev.TransSlots[i][j] == 0:
					// Instant switch: slot spent in j, full switch energy now.
					serves := dev.PSM.States[j].CanService
					energy = dev.TransEnergy[i][j] + dev.StateEnergy[j]
					for _, af := range arrivalsThen(q, serves, dev.ServePerSlot) {
						outs = append(outs, Outcome{Next: d.settledBase[j] + af.q, P: af.prob})
						perf += af.prob * float64(af.q)
					}
				default:
					// First slot of an L-slot switch: no service.
					l := dev.TransSlots[i][j]
					energy = dev.TransEnergy[i][j] / float64(l)
					for _, af := range arrivalsThen(q, false, 0) {
						next := 0
						if l == 1 {
							next = d.settledBase[j] + af.q
						} else {
							next = d.transIndex(i, j, l-1, af.q)
						}
						outs = append(outs, Outcome{Next: next, P: af.prob})
						perf += af.prob * float64(af.q)
					}
				}
				m.Actions[s] = append(m.Actions[s], j)
				m.Trans[s] = append(m.Trans[s], outs)
				m.Costs[s] = append(m.Costs[s], energy+w*perf)
				m.Energy[s] = append(m.Energy[s], energy)
				m.Perf[s] = append(m.Perf[s], perf)
			}
		}
	}

	// Switching states.
	for i := 0; i < nDev; i++ {
		for j := 0; j < nDev; j++ {
			if d.transBase[i][j] < 0 {
				continue
			}
			l := dev.TransSlots[i][j]
			perSlot := dev.TransEnergy[i][j] / float64(l)
			for k := 1; k <= l; k++ {
				for q := 0; q <= cap; q++ {
					s := d.transIndex(i, j, k, q)
					m.Label[s] = fmt.Sprintf("%s->%s k=%d q=%d", dev.PSM.States[i].Name, dev.PSM.States[j].Name, k, q)
					var outs []Outcome
					perf := 0.0
					for _, af := range arrivalsThen(q, false, 0) {
						next := 0
						if k == 1 {
							next = d.settledBase[j] + af.q
						} else {
							next = d.transIndex(i, j, k-1, af.q)
						}
						outs = append(outs, Outcome{Next: next, P: af.prob})
						perf += af.prob * float64(af.q)
					}
					m.Actions[s] = []int{-1}
					m.Trans[s] = [][]Outcome{outs}
					m.Costs[s] = []float64{perSlot + w*perf}
					m.Energy[s] = []float64{perSlot}
					m.Perf[s] = []float64{perf}
				}
			}
		}
	}

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mdp: built model invalid: %w", err)
	}
	return d, nil
}

// transIndex returns the state index of (i->j, k slots remaining, queue q).
func (d *DPM) transIndex(i, j, k, q int) int {
	qn := d.Cfg.QueueCap + 1
	return d.transBase[i][j] + (k-1)*qn + q
}

// SettledState returns the model index of (device state i, queue q).
func (d *DPM) SettledState(i device.StateID, q int) (int, error) {
	if int(i) < 0 || int(i) >= len(d.settledBase) {
		return 0, fmt.Errorf("mdp: device state %d out of range", i)
	}
	if q < 0 || q > d.Cfg.QueueCap {
		return 0, fmt.Errorf("mdp: queue length %d out of range [0,%d]", q, d.Cfg.QueueCap)
	}
	return d.settledBase[int(i)] + q, nil
}

// ActionTarget resolves a policy's action in a settled state to the
// commanded device state.
func (d *DPM) ActionTarget(pol Policy, i device.StateID, q int) (device.StateID, error) {
	s, err := d.SettledState(i, q)
	if err != nil {
		return 0, err
	}
	if pol[s] < 0 || pol[s] >= len(d.Actions[s]) {
		return 0, fmt.Errorf("mdp: policy action index %d out of range in state %d", pol[s], s)
	}
	lbl := d.Actions[s][pol[s]]
	if lbl < 0 {
		return 0, fmt.Errorf("mdp: settled state %d has pseudo-action", s)
	}
	return device.StateID(lbl), nil
}
