package mdp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

// twoStateChain builds a tiny hand-checkable MDP:
// state 0, action 0: cost 1, stays in 0; action 1: cost 3, goes to 1.
// state 1, action 0: cost 0, stays in 1.
// Optimal discounted policy: state 0 should pay 3 once to reach the free
// state when gamma is high, stay when gamma is low.
func twoStateChain() *Model {
	return &Model{
		N:       2,
		Actions: [][]int{{0, 1}, {0}},
		Trans: [][][]Outcome{
			{{{Next: 0, P: 1}}, {{Next: 1, P: 1}}},
			{{{Next: 1, P: 1}}},
		},
		Costs: [][]float64{{1, 3}, {0}},
		Label: []string{"s0", "s1"},
	}
}

func TestValidateAcceptsGoodModel(t *testing.T) {
	if err := twoStateChain().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	mk := twoStateChain
	cases := []struct {
		name string
		mut  func(m *Model)
	}{
		{"probabilities not summing", func(m *Model) { m.Trans[0][0][0].P = 0.5 }},
		{"negative probability", func(m *Model) {
			m.Trans[0][0] = []Outcome{{Next: 0, P: -0.5}, {Next: 1, P: 1.5}}
		}},
		{"successor out of range", func(m *Model) { m.Trans[0][0][0].Next = 9 }},
		{"NaN cost", func(m *Model) { m.Costs[0][0] = math.NaN() }},
		{"no actions", func(m *Model) { m.Actions[1] = nil; m.Trans[1] = nil; m.Costs[1] = nil }},
		{"ragged actions", func(m *Model) { m.Costs[0] = m.Costs[0][:1] }},
	}
	for _, tc := range cases {
		m := mk()
		tc.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestValueIterationHandComputable(t *testing.T) {
	m := twoStateChain()
	// gamma = 0.9: staying in s0 forever costs 1/(1-0.9) = 10;
	// switching costs 3 + 0 = 3. Optimal: switch, V(s0)=3, V(s1)=0.
	res, err := m.ValueIteration(0.9, 1e-9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Actions[0][res.Policy[0]] != 1 {
		t.Errorf("gamma=0.9: policy stayed, want switch")
	}
	if math.Abs(res.Value[0]-3) > 1e-6 || math.Abs(res.Value[1]) > 1e-6 {
		t.Errorf("values %v, want [3 0]", res.Value)
	}
	// gamma = 0.5: staying costs 1/(1-0.5) = 2 < 3. Optimal: stay.
	res, err = m.ValueIteration(0.5, 1e-9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if m.Actions[0][res.Policy[0]] != 0 {
		t.Errorf("gamma=0.5: policy switched, want stay")
	}
	if math.Abs(res.Value[0]-2) > 1e-6 {
		t.Errorf("V(s0) = %v, want 2", res.Value[0])
	}
}

func TestValueIterationValidation(t *testing.T) {
	m := twoStateChain()
	if _, err := m.ValueIteration(0, 1e-6, 100); err == nil {
		t.Error("gamma=0 accepted")
	}
	if _, err := m.ValueIteration(1, 1e-6, 100); err == nil {
		t.Error("gamma=1 accepted")
	}
	if _, err := m.ValueIteration(0.9, 0, 100); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := m.ValueIteration(0.9, 1e-6, 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
}

func TestPolicyIterationMatchesValueIteration(t *testing.T) {
	m := twoStateChain()
	for _, gamma := range []float64{0.3, 0.5, 0.9, 0.99} {
		vi, err := m.ValueIteration(gamma, 1e-10, 1000000)
		if err != nil {
			t.Fatal(err)
		}
		pi, err := m.PolicyIteration(gamma, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < m.N; s++ {
			if math.Abs(vi.Value[s]-pi.Value[s]) > 1e-5 {
				t.Errorf("gamma=%v state %d: VI %v PI %v", gamma, s, vi.Value[s], pi.Value[s])
			}
		}
	}
}

func TestEvaluateDiscountedClosedForm(t *testing.T) {
	m := twoStateChain()
	// Policy: stay in s0. V(s0) = 1/(1-γ).
	v, err := m.EvaluateDiscounted(Policy{0, 0}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[0]-5) > 1e-9 {
		t.Errorf("V(s0) = %v, want 5", v[0])
	}
	if math.Abs(v[1]) > 1e-12 {
		t.Errorf("V(s1) = %v, want 0", v[1])
	}
}

func TestEvaluateDiscountedRejectsBadPolicy(t *testing.T) {
	m := twoStateChain()
	if _, err := m.EvaluateDiscounted(Policy{0}, 0.9); err == nil {
		t.Error("short policy accepted")
	}
	if _, err := m.EvaluateDiscounted(Policy{7, 0}, 0.9); err == nil {
		t.Error("out-of-range action accepted")
	}
}

func TestAverageCostRVIHandComputable(t *testing.T) {
	// Cycle MDP: two states, each with a single action moving to the
	// other. Costs 2 and 4: average cost must be 3 regardless of policy.
	m := &Model{
		N:       2,
		Actions: [][]int{{0}, {0}},
		Trans: [][][]Outcome{
			{{{Next: 1, P: 1}}},
			{{{Next: 0, P: 1}}},
		},
		Costs: [][]float64{{2}, {4}},
		Label: []string{"a", "b"},
	}
	res, err := m.AverageCostRVI(1e-10, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gain-3) > 1e-6 {
		t.Errorf("gain %v, want 3", res.Gain)
	}
}

func TestAverageCostRVIPicksCheaperRecurrentClass(t *testing.T) {
	// State 0 can stay (cost 2) or move to state 1 (cost 10 once) where
	// staying costs 1. Average-optimal: move, gain 1.
	m := &Model{
		N:       2,
		Actions: [][]int{{0, 1}, {0}},
		Trans: [][][]Outcome{
			{{{Next: 0, P: 1}}, {{Next: 1, P: 1}}},
			{{{Next: 1, P: 1}}},
		},
		Costs: [][]float64{{2, 10}, {1}},
	}
	res, err := m.AverageCostRVI(1e-10, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gain-1) > 1e-6 {
		t.Errorf("gain %v, want 1", res.Gain)
	}
	if m.Actions[0][res.Policy[0]] != 1 {
		t.Error("policy did not move to the cheap state")
	}
}

func TestEvaluateAverageMatchesRVI(t *testing.T) {
	d := buildSynthDPM(t, 0.15)
	res, err := d.AverageCostRVI(1e-9, 200000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.EvaluateAverage(res.Policy, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-res.Gain) > 1e-3 {
		t.Errorf("policy evaluation gain %v != RVI gain %v", g, res.Gain)
	}
}

// ---------------------------------------------------------------------------
// DPM model builder

func buildSynthDPM(t *testing.T, p float64) *DPM {
	t.Helper()
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildDPM(DPMConfig{Device: dev, ArrivalP: p, QueueCap: 8, LatencyWeight: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildDPMStateCount(t *testing.T) {
	d := buildSynthDPM(t, 0.1)
	// synthetic3: 3 settled states × 9 queue levels = 27.
	// Transitions with latency ≥ 1: active->sleep (1), idle->sleep (1),
	// sleep->active (3), sleep->idle (3) = 8 phase-slots × 9 = 72.
	if d.N != 27+72 {
		t.Errorf("state count %d, want 99", d.N)
	}
}

func TestBuildDPMValidation(t *testing.T) {
	dev, _ := device.Synthetic3().Slot(0.5)
	bad := []DPMConfig{
		{Device: nil, ArrivalP: 0.1, QueueCap: 4, LatencyWeight: 0.1},
		{Device: dev, ArrivalP: -0.1, QueueCap: 4, LatencyWeight: 0.1},
		{Device: dev, ArrivalP: 1.1, QueueCap: 4, LatencyWeight: 0.1},
		{Device: dev, ArrivalP: 0.1, QueueCap: 0, LatencyWeight: 0.1},
		{Device: dev, ArrivalP: 0.1, QueueCap: 4, LatencyWeight: -1},
	}
	for i, cfg := range bad {
		if _, err := BuildDPM(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBuildDPMSettledActions(t *testing.T) {
	d := buildSynthDPM(t, 0.1)
	// In a settled active state all 3 targets are allowed.
	s, err := d.SettledState(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Actions[s]) != 3 {
		t.Errorf("active state has %d actions, want 3", len(d.Actions[s]))
	}
	// Switching states have exactly the pseudo-action.
	idx := d.transIndex(2, 0, 2, 4) // sleep->active, 2 slots left, q=4
	if len(d.Actions[idx]) != 1 || d.Actions[idx][0] != -1 {
		t.Errorf("switching state actions %v, want [-1]", d.Actions[idx])
	}
}

func TestSettledStateBounds(t *testing.T) {
	d := buildSynthDPM(t, 0.1)
	if _, err := d.SettledState(5, 0); err == nil {
		t.Error("out-of-range device state accepted")
	}
	if _, err := d.SettledState(0, 9); err == nil {
		t.Error("out-of-range queue accepted")
	}
	if _, err := d.SettledState(0, -1); err == nil {
		t.Error("negative queue accepted")
	}
}

func TestDPMModelCostsNonNegative(t *testing.T) {
	d := buildSynthDPM(t, 0.25)
	for s := 0; s < d.N; s++ {
		for ai := range d.Actions[s] {
			if d.Costs[s][ai] < 0 {
				t.Fatalf("state %q action %d has negative cost %v", d.Label[s], ai, d.Costs[s][ai])
			}
		}
	}
}

func TestOptimalGainBelowAlwaysOnAndAboveZero(t *testing.T) {
	d := buildSynthDPM(t, 0.1)
	res, err := d.AverageCostRVI(1e-8, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// Always-active at λ=0.1 costs 1.0 J/slot with zero backlog.
	if res.Gain >= 1.0 {
		t.Errorf("optimal gain %v >= always-on cost 1.0", res.Gain)
	}
	// It can never beat the sleep floor (0.05 J/slot).
	if res.Gain <= 0.05 {
		t.Errorf("optimal gain %v <= sleep floor", res.Gain)
	}
}

func TestOptimalPolicyRateMonotonicity(t *testing.T) {
	// Higher arrival rates must not decrease the optimal average cost.
	var prev float64
	for i, p := range []float64{0.02, 0.1, 0.3, 0.6} {
		d := buildSynthDPM(t, p)
		res, err := d.AverageCostRVI(1e-8, 200000)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Gain < prev-1e-6 {
			t.Errorf("gain at p=%v (%v) below gain at lower rate (%v)", p, res.Gain, prev)
		}
		prev = res.Gain
	}
}

func TestOptimalPolicySleepsWhenIdle(t *testing.T) {
	// At a very low rate the optimal action in (idle, q=0) must be to head
	// for sleep, and in (active, q>0) to stay active.
	d := buildSynthDPM(t, 0.01)
	res, err := d.AverageCostRVI(1e-8, 200000)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := d.ActionTarget(res.Policy, 1, 0) // idle, empty queue
	if err != nil {
		t.Fatal(err)
	}
	if tgt != 2 {
		t.Errorf("optimal action in (idle, q=0) at p=0.01 is %d, want sleep (2)", tgt)
	}
	tgt, err = d.ActionTarget(res.Policy, 0, 4) // active, backlog
	if err != nil {
		t.Fatal(err)
	}
	if tgt != 0 {
		t.Errorf("optimal action in (active, q=4) is %d, want active (0)", tgt)
	}
}

func TestActionTargetErrors(t *testing.T) {
	d := buildSynthDPM(t, 0.1)
	pol := make(Policy, d.N)
	if _, err := d.ActionTarget(pol, 9, 0); err == nil {
		t.Error("bad device state accepted")
	}
	pol2 := make(Policy, d.N)
	s, _ := d.SettledState(0, 0)
	pol2[s] = 99
	if _, err := d.ActionTarget(pol2, 0, 0); err == nil {
		t.Error("out-of-range action index accepted")
	}
}

func TestGreedyFromValues(t *testing.T) {
	m := twoStateChain()
	res, _ := m.ValueIteration(0.9, 1e-9, 100000)
	pol, err := m.GreedyFromValues(res.Value, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for s := range pol {
		if pol[s] != res.Policy[s] {
			t.Errorf("greedy policy differs from VI policy at state %d", s)
		}
	}
	if _, err := m.GreedyFromValues([]float64{0}, 0.9); err == nil {
		t.Error("short value vector accepted")
	}
}

func TestSolveDenseSingularRejected(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	if _, err := solveDense(a, b); err == nil {
		t.Error("singular system accepted")
	}
}

// Property: for random arrival rates, the VI(γ→1) policy's average cost is
// within a whisker of the RVI gain (Blackwell optimality on these small
// chains), and both are bounded by the always-on cost.
func TestDiscountedApproachesAverageProperty(t *testing.T) {
	dev, err := device.Synthetic3().Slot(0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pRaw uint8) bool {
		p := 0.02 + 0.5*float64(pRaw)/255
		d, err := BuildDPM(DPMConfig{Device: dev, ArrivalP: p, QueueCap: 6, LatencyWeight: 0.3})
		if err != nil {
			return false
		}
		rvi, err := d.AverageCostRVI(1e-7, 400000)
		if err != nil {
			return false
		}
		vi, err := d.ValueIteration(0.999, 1e-4, 400000)
		if err != nil {
			return false
		}
		gVI, err := d.EvaluateAverage(vi.Policy, 8000)
		if err != nil {
			return false
		}
		return math.Abs(gVI-rvi.Gain) < 5e-3 && rvi.Gain < 1.0+0.3*6+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildDPM(b *testing.B) {
	dev, _ := device.Synthetic3().Slot(0.5)
	cfg := DPMConfig{Device: dev, ArrivalP: 0.1, QueueCap: 8, LatencyWeight: 0.3}
	for i := 0; i < b.N; i++ {
		if _, err := BuildDPM(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAverageCostRVI(b *testing.B) {
	dev, _ := device.Synthetic3().Slot(0.5)
	d, _ := BuildDPM(DPMConfig{Device: dev, ArrivalP: 0.1, QueueCap: 8, LatencyWeight: 0.3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AverageCostRVI(1e-6, 200000); err != nil {
			b.Fatal(err)
		}
	}
}
