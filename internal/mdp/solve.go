package mdp

import (
	"fmt"
	"math"
)

// SolveResult is the output of a planning algorithm.
type SolveResult struct {
	// Policy maps state -> action index.
	Policy Policy
	// Value is V(s) for discounted solvers and the bias/relative value
	// h(s) for average-cost solvers.
	Value []float64
	// Gain is the optimal long-run average cost per slot (average-cost
	// solvers only).
	Gain float64
	// Iterations is the number of sweeps performed.
	Iterations int
}

// backup computes min_a [c(s,a) + mix·Σ P(s'|s,a) v(s')] and the argmin.
func (m *Model) backup(s int, v []float64, mix float64) (float64, int) {
	best := math.Inf(1)
	bestA := 0
	for ai := range m.Actions[s] {
		x := m.Costs[s][ai]
		for _, o := range m.Trans[s][ai] {
			x += mix * o.P * v[o.Next]
		}
		if x < best-1e-15 {
			best = x
			bestA = ai
		}
	}
	return best, bestA
}

// ValueIteration solves the discounted problem min E[Σ γ^t c_t] to the
// given precision (sup-norm of successive iterates, scaled by the standard
// (1-γ)/2γ stopping bound). gamma must lie in (0, 1).
func (m *Model) ValueIteration(gamma, eps float64, maxIter int) (*SolveResult, error) {
	if !(gamma > 0) || gamma >= 1 {
		return nil, fmt.Errorf("mdp: discount %v out of (0,1)", gamma)
	}
	if !(eps > 0) {
		return nil, fmt.Errorf("mdp: precision %v must be positive", eps)
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("mdp: max iterations %d must be positive", maxIter)
	}
	v := make([]float64, m.N)
	nv := make([]float64, m.N)
	pol := make(Policy, m.N)
	thresh := eps * (1 - gamma) / (2 * gamma)
	for it := 1; it <= maxIter; it++ {
		delta := 0.0
		for s := 0; s < m.N; s++ {
			nv[s], pol[s] = m.backup(s, v, gamma)
			if d := math.Abs(nv[s] - v[s]); d > delta {
				delta = d
			}
		}
		v, nv = nv, v
		if delta < thresh {
			return &SolveResult{Policy: pol, Value: v, Iterations: it}, nil
		}
	}
	return nil, fmt.Errorf("mdp: value iteration did not converge in %d iterations", maxIter)
}

// PolicyIteration solves the discounted problem by alternating exact policy
// evaluation (dense linear solve) and greedy improvement. It terminates
// when the policy is stable, which for finite MDPs is guaranteed within a
// finite number of improvements.
func (m *Model) PolicyIteration(gamma float64, maxIter int) (*SolveResult, error) {
	if !(gamma > 0) || gamma >= 1 {
		return nil, fmt.Errorf("mdp: discount %v out of (0,1)", gamma)
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("mdp: max iterations %d must be positive", maxIter)
	}
	pol := make(Policy, m.N) // start with first action everywhere
	for it := 1; it <= maxIter; it++ {
		v, err := m.EvaluateDiscounted(pol, gamma)
		if err != nil {
			return nil, err
		}
		stable := true
		for s := 0; s < m.N; s++ {
			_, bestA := m.backup(s, v, gamma)
			// Keep the incumbent unless strictly better, for stability.
			cur := m.qValue(s, pol[s], v, gamma)
			best := m.qValue(s, bestA, v, gamma)
			if best < cur-1e-10 {
				pol[s] = bestA
				stable = false
			}
		}
		if stable {
			return &SolveResult{Policy: pol, Value: v, Iterations: it}, nil
		}
	}
	return nil, fmt.Errorf("mdp: policy iteration did not converge in %d iterations", maxIter)
}

func (m *Model) qValue(s, ai int, v []float64, gamma float64) float64 {
	x := m.Costs[s][ai]
	for _, o := range m.Trans[s][ai] {
		x += gamma * o.P * v[o.Next]
	}
	return x
}

// EvaluateDiscounted computes V^π for a fixed policy by solving
// (I − γ P_π) V = c_π with Gaussian elimination (partial pivoting).
func (m *Model) EvaluateDiscounted(pol Policy, gamma float64) ([]float64, error) {
	if len(pol) != m.N {
		return nil, fmt.Errorf("mdp: policy length %d != %d states", len(pol), m.N)
	}
	n := m.N
	// Build dense A = I - γP, b = c.
	a := make([][]float64, n)
	b := make([]float64, n)
	for s := 0; s < n; s++ {
		ai := pol[s]
		if ai < 0 || ai >= len(m.Actions[s]) {
			return nil, fmt.Errorf("mdp: policy action %d out of range in state %d", ai, s)
		}
		a[s] = make([]float64, n)
		a[s][s] = 1
		for _, o := range m.Trans[s][ai] {
			a[s][o.Next] -= gamma * o.P
		}
		b[s] = m.Costs[s][ai]
	}
	return solveDense(a, b)
}

// solveDense solves Ax = b in place with partial pivoting.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("mdp: singular system at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// AverageCostRVI solves the long-run average-cost problem with relative
// value iteration under the standard aperiodicity transformation (mix the
// transition kernel with the identity at τ = 1/2; the optimal policy is
// unchanged and the transformed gain is τ·g). It requires the MDP to be
// unichain under every stationary policy, which holds for the DPM models
// built here (the queue empties with positive probability from every
// state). Convergence is declared when the span of the Bellman residual
// drops below eps.
func (m *Model) AverageCostRVI(eps float64, maxIter int) (*SolveResult, error) {
	if !(eps > 0) {
		return nil, fmt.Errorf("mdp: precision %v must be positive", eps)
	}
	if maxIter <= 0 {
		return nil, fmt.Errorf("mdp: max iterations %d must be positive", maxIter)
	}
	const tau = 0.5
	h := make([]float64, m.N)
	w := make([]float64, m.N)
	pol := make(Policy, m.N)
	for it := 1; it <= maxIter; it++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for s := 0; s < m.N; s++ {
			// Transformed operator: τc + (1-τ)h(s) + τ Σ P h.
			best := math.Inf(1)
			bestA := 0
			for ai := range m.Actions[s] {
				x := tau * m.Costs[s][ai]
				for _, o := range m.Trans[s][ai] {
					x += tau * o.P * h[o.Next]
				}
				x += (1 - tau) * h[s]
				if x < best-1e-15 {
					best = x
					bestA = ai
				}
			}
			w[s] = best
			pol[s] = bestA
			d := w[s] - h[s]
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		if hi-lo < eps*tau {
			gain := (hi + lo) / 2 / tau
			// Normalize bias at state 0.
			ref := w[0]
			val := make([]float64, m.N)
			for s := range val {
				val[s] = w[s] - ref
			}
			return &SolveResult{Policy: pol, Value: val, Gain: gain, Iterations: it}, nil
		}
		// Relative normalization keeps h bounded.
		ref := w[0]
		for s := range h {
			h[s] = w[s] - ref
		}
	}
	return nil, fmt.Errorf("mdp: relative value iteration did not converge in %d iterations", maxIter)
}

// EvaluateAverage computes the long-run average cost (gain) of a fixed
// policy; see EvaluateAverageOf.
func (m *Model) EvaluateAverage(pol Policy, iters int) (float64, error) {
	return m.EvaluateAverageOf(pol, m.Costs, iters)
}

// EvaluateAverageOf computes the long-run average of an arbitrary
// per-(state, action) quantity under a fixed policy by power iteration on
// its stationary distribution. The chain must be unichain; the iteration
// mixes with the identity to kill periodicity.
func (m *Model) EvaluateAverageOf(pol Policy, values [][]float64, iters int) (float64, error) {
	if len(values) != m.N {
		return 0, fmt.Errorf("mdp: values length %d != %d states", len(values), m.N)
	}
	if len(pol) != m.N {
		return 0, fmt.Errorf("mdp: policy length %d != %d states", len(pol), m.N)
	}
	if iters <= 0 {
		return 0, fmt.Errorf("mdp: iteration count %d must be positive", iters)
	}
	pi := make([]float64, m.N)
	next := make([]float64, m.N)
	for s := range pi {
		pi[s] = 1 / float64(m.N)
	}
	for it := 0; it < iters; it++ {
		for s := range next {
			next[s] = 0.5 * pi[s] // lazy chain: stay with prob 1/2
		}
		for s := 0; s < m.N; s++ {
			ai := pol[s]
			if ai < 0 || ai >= len(m.Actions[s]) {
				return 0, fmt.Errorf("mdp: policy action %d out of range in state %d", ai, s)
			}
			for _, o := range m.Trans[s][ai] {
				next[o.Next] += 0.5 * pi[s] * o.P
			}
		}
		pi, next = next, pi
	}
	g := 0.0
	for s := 0; s < m.N; s++ {
		g += pi[s] * values[s][pol[s]]
	}
	return g, nil
}

// GreedyFromValues extracts the greedy policy for a value function under
// discount gamma; exported for Q-table diagnostics.
func (m *Model) GreedyFromValues(v []float64, gamma float64) (Policy, error) {
	if len(v) != m.N {
		return nil, fmt.Errorf("mdp: value length %d != %d states", len(v), m.N)
	}
	pol := make(Policy, m.N)
	for s := 0; s < m.N; s++ {
		_, pol[s] = m.backup(s, v, gamma)
	}
	return pol, nil
}
