package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

func empiricalRate(t *testing.T, a Arrivals, seed uint64, n int) float64 {
	t.Helper()
	s := rng.New(seed)
	sum := 0
	for i := 0; i < n; i++ {
		c := a.Next(s)
		if c < 0 {
			t.Fatalf("%s produced negative count %d", a, c)
		}
		sum += c
	}
	return float64(sum) / float64(n)
}

func TestBernoulliRate(t *testing.T) {
	b, err := NewBernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := empiricalRate(t, b, 1, 200000); math.Abs(got-0.3) > 0.01 {
		t.Errorf("empirical rate %v, want 0.3", got)
	}
	if b.MeanRate() != 0.3 {
		t.Errorf("MeanRate %v", b.MeanRate())
	}
}

func TestBernoulliValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewBernoulli(p); err == nil {
			t.Errorf("NewBernoulli(%v) accepted", p)
		}
	}
}

func TestBernoulliBinaryOutput(t *testing.T) {
	b, _ := NewBernoulli(0.5)
	s := rng.New(2)
	for i := 0; i < 1000; i++ {
		if c := b.Next(s); c != 0 && c != 1 {
			t.Fatalf("bernoulli emitted %d", c)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	p, err := NewPoisson(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if got := empiricalRate(t, p, 3, 200000); math.Abs(got-0.8) > 0.02 {
		t.Errorf("empirical rate %v, want 0.8", got)
	}
}

func TestMMPPValidation(t *testing.T) {
	b, _ := NewBernoulli(0.5)
	cases := []struct {
		name   string
		phases []Arrivals
		p      [][]float64
		start  int
	}{
		{"no phases", nil, nil, 0},
		{"row count", []Arrivals{b}, [][]float64{}, 0},
		{"row length", []Arrivals{b}, [][]float64{{0.5, 0.5}}, 0},
		{"bad sum", []Arrivals{b}, [][]float64{{0.5}}, 0},
		{"negative prob", []Arrivals{b, b}, [][]float64{{1.5, -0.5}, {0, 1}}, 0},
		{"bad start", []Arrivals{b}, [][]float64{{1}}, 5},
	}
	for _, tc := range cases {
		if _, err := NewMMPP(tc.phases, tc.p, tc.start); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestMMPPMeanRate(t *testing.T) {
	hi, _ := NewBernoulli(0.9)
	lo, _ := NewBernoulli(0.1)
	// Symmetric chain: stationary distribution (0.5, 0.5), mean rate 0.5.
	m, err := NewMMPP([]Arrivals{hi, lo}, [][]float64{{0.9, 0.1}, {0.1, 0.9}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MeanRate(); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("analytic mean rate %v, want 0.5", got)
	}
	if got := empiricalRate(t, m, 4, 400000); math.Abs(got-0.5) > 0.02 {
		t.Errorf("empirical mean rate %v, want 0.5", got)
	}
}

func TestMMPPBurstiness(t *testing.T) {
	// An on/off source must produce longer silent runs than a Bernoulli of
	// the same mean rate.
	oo, err := NewOnOff(0.8, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	meanRate := oo.MeanRate()
	bern, _ := NewBernoulli(meanRate)

	longestRun := func(a Arrivals, seed uint64) int {
		s := rng.New(seed)
		run, best := 0, 0
		for i := 0; i < 100000; i++ {
			if a.Next(s) == 0 {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
		return best
	}
	if lb, lo := longestRun(bern, 5), longestRun(oo, 5); lo < 2*lb {
		t.Errorf("on/off longest silent run %d not clearly burstier than bernoulli %d", lo, lb)
	}
}

func TestOnOffValidation(t *testing.T) {
	if _, err := NewOnOff(0.5, 0.5, 10); err == nil {
		t.Error("mean-on < 1 accepted")
	}
	if _, err := NewOnOff(1.5, 10, 10); err == nil {
		t.Error("pOn > 1 accepted")
	}
}

func TestPiecewiseSwitching(t *testing.T) {
	one, _ := NewBernoulli(1)
	zero, _ := NewBernoulli(0)
	p, err := NewPiecewise([]Segment{
		{Slots: 3, Proc: one},
		{Slots: 2, Proc: zero},
		{Slots: 2, Proc: one},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(6)
	var got []int
	for i := 0; i < 10; i++ {
		got = append(got, p.Next(s))
	}
	want := []int{1, 1, 1, 0, 0, 1, 1, 1, 1, 1} // last segment holds
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
	sp := p.SwitchPoints()
	if len(sp) != 2 || sp[0] != 3 || sp[1] != 5 {
		t.Fatalf("switch points %v, want [3 5]", sp)
	}
}

func TestPiecewiseValidation(t *testing.T) {
	one, _ := NewBernoulli(1)
	if _, err := NewPiecewise(nil); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewPiecewise([]Segment{{Slots: 0, Proc: one}}); err == nil {
		t.Error("zero-length segment accepted")
	}
	if _, err := NewPiecewise([]Segment{{Slots: 5, Proc: nil}}); err == nil {
		t.Error("nil process accepted")
	}
}

func TestPiecewiseMeanRate(t *testing.T) {
	a, _ := NewBernoulli(0.2)
	b, _ := NewBernoulli(0.8)
	p, _ := NewPiecewise([]Segment{{Slots: 30, Proc: a}, {Slots: 10, Proc: b}})
	want := (30*0.2 + 10*0.8) / 40
	if got := p.MeanRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean rate %v, want %v", got, want)
	}
}

func TestRenewalPoissonEquivalence(t *testing.T) {
	// Exponential interarrivals with mean 2 slots -> rate 0.5/slot.
	d, _ := dist.NewExponential(0.5)
	r, err := NewRenewal(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := empiricalRate(t, r, 7, 200000); math.Abs(got-0.5) > 0.01 {
		t.Errorf("renewal empirical rate %v, want 0.5", got)
	}
	if got := r.MeanRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("renewal MeanRate %v, want 0.5", got)
	}
}

func TestRenewalHeavyTailZeroRate(t *testing.T) {
	d, _ := dist.NewPareto(1, 0.9) // infinite mean
	r, err := NewRenewal(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanRate() != 0 {
		t.Errorf("infinite-mean renewal should report rate 0, got %v", r.MeanRate())
	}
}

func TestRenewalCountConservation(t *testing.T) {
	// Total arrivals over N slots must match the count of renewal points
	// below N.
	d, _ := dist.NewExponential(0.3)
	r, _ := NewRenewal(d)
	s := rng.New(8)
	total := 0
	for i := 0; i < 10000; i++ {
		total += r.Next(s)
	}
	// Regenerate the same point process and count directly.
	s2 := rng.New(8)
	t2 := d.Sample(s2)
	direct := 0
	for t2 < 10000 {
		direct++
		t2 += d.Sample(s2)
	}
	if total != direct {
		t.Errorf("binned total %d != direct count %d", total, direct)
	}
}

func TestPlayback(t *testing.T) {
	p, err := NewPlayback([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(9)
	got := []int{p.Next(s), p.Next(s), p.Next(s), p.Next(s), p.Next(s)}
	want := []int{2, 0, 1, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("playback %v, want %v", got, want)
		}
	}
	if mr := p.MeanRate(); mr != 1 {
		t.Errorf("MeanRate %v, want 1", mr)
	}
}

func TestPlaybackValidation(t *testing.T) {
	if _, err := NewPlayback([]int{1, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestFromTrace(t *testing.T) {
	tr := &trace.Trace{Times: []float64{0.1, 0.9, 1.5, 3.2}}
	p, err := FromTrace(tr, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(10)
	want := []int{2, 1, 0, 1}
	for i, w := range want {
		if got := p.Next(s); got != w {
			t.Fatalf("slot %d: %d, want %d", i, got, w)
		}
	}
}

func TestCloneResetsPhase(t *testing.T) {
	one, _ := NewBernoulli(1)
	zero, _ := NewBernoulli(0)
	p, _ := NewPiecewise([]Segment{{Slots: 2, Proc: one}, {Slots: 2, Proc: zero}})
	s := rng.New(11)
	for i := 0; i < 3; i++ {
		p.Next(s) // advance into segment 2
	}
	c := p.Clone()
	if got := c.Next(s); got != 1 {
		t.Fatalf("clone did not reset to first segment, got %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := NewOnOff(0.9, 10, 10)
	c := m.Clone()
	s1, s2 := rng.New(12), rng.New(12)
	// Advancing the original must not affect the clone's determinism.
	for i := 0; i < 100; i++ {
		m.Next(s1)
	}
	c2 := m.Clone()
	a, b := 0, 0
	for i := 0; i < 1000; i++ {
		a += c.Next(s2)
	}
	s3 := rng.New(12)
	for i := 0; i < 1000; i++ {
		b += c2.Next(s3)
	}
	if a != b {
		t.Errorf("clones with equal streams diverged: %d vs %d", a, b)
	}
}

// Property: every process's empirical rate over many slots is close to its
// declared MeanRate.
func TestMeanRatePropertyConsistency(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := float64(pRaw%100) / 100
		b, err := NewBernoulli(p)
		if err != nil {
			return false
		}
		got := 0
		s := rng.New(seed)
		const n = 20000
		for i := 0; i < n; i++ {
			got += b.Next(s)
		}
		rate := float64(got) / n
		return math.Abs(rate-p) < 0.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBernoulliNext(b *testing.B) {
	w, _ := NewBernoulli(0.3)
	s := rng.New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = w.Next(s)
	}
	_ = sink
}

func BenchmarkMMPPNext(b *testing.B) {
	w, _ := NewOnOff(0.8, 100, 300)
	s := rng.New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = w.Next(s)
	}
	_ = sink
}

// TestRenewalResetMatchesClone: an in-place Reset replays the same
// counts a fresh Clone would, without allocating.
func TestRenewalResetMatchesClone(t *testing.T) {
	d, err := dist.NewExponential(0.8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRenewal(d)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	for i := 0; i < 200; i++ {
		r.Next(s) // advance the phase
	}
	r.Reset()
	fresh := r.Clone()
	sa, sb := rng.New(9), rng.New(9)
	for i := 0; i < 500; i++ {
		if got, want := r.Next(sa), fresh.Next(sb); got != want {
			t.Fatalf("slot %d: reset renewal %d != clone %d", i, got, want)
		}
	}
	allocs := testing.AllocsPerRun(50, func() { r.Reset() })
	if allocs != 0 {
		t.Fatalf("Renewal.Reset allocates %.1f times", allocs)
	}
}
