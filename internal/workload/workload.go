// Package workload provides the slot-based arrival processes that drive
// the Q-DPM experiments: stationary processes for Fig. 1, the piecewise-
// stationary process for Fig. 2, Markov-modulated and on/off bursty
// processes for the derived tables, and trace playback.
//
// An arrival process emits the number of requests arriving in each
// successive slot. Processes carry internal phase (slot counters, Markov
// modulating state, renewal residue), so one value must not be shared
// between simulator instances; use Clone (or rebuild) per replica.
package workload

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Arrivals produces per-slot request counts.
type Arrivals interface {
	// Next returns the number of requests arriving in the next slot,
	// advancing the process state.
	Next(s *rng.Stream) int
	// MeanRate returns the long-run average arrivals per slot.
	MeanRate() float64
	// Clone returns an independent copy with the phase reset to the
	// initial state.
	Clone() Arrivals
	// String describes the process.
	String() string
}

// ---------------------------------------------------------------------------
// Bernoulli

// Bernoulli emits 0 or 1 arrival per slot with probability P. This is the
// process the exact DTMDP in internal/mdp models, so Fig. 1's "analytically
// optimal" comparison is exact.
type Bernoulli struct{ P float64 }

// NewBernoulli validates p ∈ [0,1].
func NewBernoulli(p float64) (*Bernoulli, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("workload: bernoulli rate %v out of [0,1]", p)
	}
	return &Bernoulli{P: p}, nil
}

// Next returns 0 or 1.
func (b *Bernoulli) Next(s *rng.Stream) int {
	if s.Float64() < b.P {
		return 1
	}
	return 0
}

// MeanRate returns P.
func (b *Bernoulli) MeanRate() float64 { return b.P }

// Clone returns a copy (Bernoulli is stateless).
func (b *Bernoulli) Clone() Arrivals { c := *b; return &c }

func (b *Bernoulli) String() string { return fmt.Sprintf("Bernoulli(p=%g)", b.P) }

// ---------------------------------------------------------------------------
// Poisson

// Poisson emits Poisson(Lambda) arrivals per slot.
type Poisson struct{ d dist.Poisson }

// NewPoisson validates lambda >= 0.
func NewPoisson(lambda float64) (*Poisson, error) {
	d, err := dist.NewPoisson(lambda)
	if err != nil {
		return nil, err
	}
	return &Poisson{d: d}, nil
}

// Next returns the slot's arrival count.
func (p *Poisson) Next(s *rng.Stream) int { return p.d.SampleInt(s) }

// MeanRate returns lambda.
func (p *Poisson) MeanRate() float64 { return p.d.Lambda }

// Clone returns a copy.
func (p *Poisson) Clone() Arrivals { c := *p; return &c }

func (p *Poisson) String() string { return fmt.Sprintf("Poisson(λ=%g/slot)", p.d.Lambda) }

// ---------------------------------------------------------------------------
// MMPP — Markov-modulated process

// MMPP is a Markov-modulated arrival process: a hidden Markov chain over
// modulating phases, each with its own per-slot arrival process. The chain
// steps once per slot. MMPPs generate the bursty, correlated traffic that
// makes timeout heuristics misfire.
type MMPP struct {
	// Phases holds the per-phase arrival processes.
	Phases []Arrivals
	// P is the phase transition matrix (rows sum to 1).
	P [][]float64
	// Start is the initial phase.
	Start int

	cur int
}

// NewMMPP validates the chain and returns the process.
func NewMMPP(phases []Arrivals, p [][]float64, start int) (*MMPP, error) {
	n := len(phases)
	if n == 0 {
		return nil, fmt.Errorf("workload: MMPP needs at least one phase")
	}
	if len(p) != n {
		return nil, fmt.Errorf("workload: MMPP transition matrix has %d rows, want %d", len(p), n)
	}
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("workload: MMPP row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("workload: MMPP P[%d][%d] = %v invalid", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("workload: MMPP row %d sums to %v, want 1", i, sum)
		}
	}
	if start < 0 || start >= n {
		return nil, fmt.Errorf("workload: MMPP start phase %d out of range", start)
	}
	return &MMPP{Phases: phases, P: p, Start: start, cur: start}, nil
}

// Next steps the modulating chain then samples the current phase.
func (m *MMPP) Next(s *rng.Stream) int {
	u := s.Float64()
	acc := 0.0
	row := m.P[m.cur]
	next := len(row) - 1
	for j, v := range row {
		acc += v
		if u < acc {
			next = j
			break
		}
	}
	m.cur = next
	return m.Phases[m.cur].Next(s)
}

// MeanRate returns the stationary-weighted mean rate, computed by power
// iteration on the modulating chain.
func (m *MMPP) MeanRate() float64 {
	n := len(m.Phases)
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 500; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * m.P[i][j]
			}
		}
		copy(pi, next)
	}
	rate := 0.0
	for i, ph := range m.Phases {
		rate += pi[i] * ph.MeanRate()
	}
	return rate
}

// Clone returns an independent copy reset to the start phase.
func (m *MMPP) Clone() Arrivals {
	phases := make([]Arrivals, len(m.Phases))
	for i, ph := range m.Phases {
		phases[i] = ph.Clone()
	}
	c, err := NewMMPP(phases, m.P, m.Start)
	if err != nil {
		panic("workload: clone of valid MMPP failed: " + err.Error())
	}
	return c
}

func (m *MMPP) String() string { return fmt.Sprintf("MMPP(%d phases)", len(m.Phases)) }

// NewOnOff builds the classic two-phase bursty process: an "on" phase with
// per-slot arrival probability pOn and a silent "off" phase, with geometric
// sojourns of the given mean lengths (in slots).
func NewOnOff(pOn float64, meanOn, meanOff float64) (*MMPP, error) {
	if !(meanOn >= 1) || !(meanOff >= 1) {
		return nil, fmt.Errorf("workload: on/off mean sojourns must be >= 1 slot, got %v/%v", meanOn, meanOff)
	}
	on, err := NewBernoulli(pOn)
	if err != nil {
		return nil, err
	}
	off, err := NewBernoulli(0)
	if err != nil {
		return nil, err
	}
	a, b := 1/meanOn, 1/meanOff
	return NewMMPP(
		[]Arrivals{on, off},
		[][]float64{{1 - a, a}, {b, 1 - b}},
		1, // start silent
	)
}

// ---------------------------------------------------------------------------
// Piecewise — the Fig. 2 driver

// Segment is one stationary stretch of a piecewise process.
type Segment struct {
	// Slots is the segment length.
	Slots int64
	// Proc is the arrival process active during the segment.
	Proc Arrivals
}

// Piecewise is a piecewise-stationary arrival process: it plays each
// segment for its duration, then switches. After the last segment it
// keeps playing the final process indefinitely. The slot indices at which
// switches occur are exposed for figure annotation (the vertical lines in
// Fig. 2).
type Piecewise struct {
	Segments []Segment

	seg  int
	used int64
}

// NewPiecewise validates the schedule.
func NewPiecewise(segments []Segment) (*Piecewise, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("workload: piecewise needs at least one segment")
	}
	for i, sg := range segments {
		if sg.Slots <= 0 {
			return nil, fmt.Errorf("workload: segment %d has non-positive length %d", i, sg.Slots)
		}
		if sg.Proc == nil {
			return nil, fmt.Errorf("workload: segment %d has nil process", i)
		}
	}
	return &Piecewise{Segments: segments}, nil
}

// Next plays the current segment, advancing to the next at its boundary.
func (p *Piecewise) Next(s *rng.Stream) int {
	if p.seg < len(p.Segments)-1 && p.used >= p.Segments[p.seg].Slots {
		p.seg++
		p.used = 0
	}
	p.used++
	return p.Segments[p.seg].Proc.Next(s)
}

// SwitchPoints returns the absolute slot indices at which the process
// changes segment (length = len(Segments)-1).
func (p *Piecewise) SwitchPoints() []int64 {
	var out []int64
	acc := int64(0)
	for _, sg := range p.Segments[:len(p.Segments)-1] {
		acc += sg.Slots
		out = append(out, acc)
	}
	return out
}

// MeanRate returns the duration-weighted mean rate over one pass of the
// schedule.
func (p *Piecewise) MeanRate() float64 {
	total := int64(0)
	acc := 0.0
	for _, sg := range p.Segments {
		total += sg.Slots
		acc += float64(sg.Slots) * sg.Proc.MeanRate()
	}
	return acc / float64(total)
}

// Clone returns a copy reset to the first segment.
func (p *Piecewise) Clone() Arrivals {
	segs := make([]Segment, len(p.Segments))
	for i, sg := range p.Segments {
		segs[i] = Segment{Slots: sg.Slots, Proc: sg.Proc.Clone()}
	}
	c, err := NewPiecewise(segs)
	if err != nil {
		panic("workload: clone of valid piecewise failed: " + err.Error())
	}
	return c
}

func (p *Piecewise) String() string {
	return fmt.Sprintf("Piecewise(%d segments)", len(p.Segments))
}

// ---------------------------------------------------------------------------
// Renewal — continuous interarrivals binned into slots

// Renewal bins a continuous renewal process (arbitrary interarrival
// distribution, in units of slots) into per-slot counts, carrying the
// residual across slot boundaries. Use it to drive the slotted simulator
// with Pareto or Weibull interarrivals.
type Renewal struct {
	// D is the interarrival distribution in slot units.
	D dist.Continuous

	nextAt float64 // absolute time of the next arrival, in slots
	now    float64 // current slot start
	primed bool
}

// NewRenewal validates the distribution has positive mean.
func NewRenewal(d dist.Continuous) (*Renewal, error) {
	if d == nil {
		return nil, fmt.Errorf("workload: renewal needs a distribution")
	}
	if m := d.Mean(); !(m > 0) {
		return nil, fmt.Errorf("workload: renewal interarrival mean %v must be positive", m)
	}
	return &Renewal{D: d}, nil
}

// Next counts arrivals inside the next slot.
func (r *Renewal) Next(s *rng.Stream) int {
	if !r.primed {
		r.nextAt = r.D.Sample(s)
		r.primed = true
	}
	end := r.now + 1
	n := 0
	for r.nextAt < end {
		n++
		r.nextAt += r.D.Sample(s)
	}
	r.now = end
	return n
}

// MeanRate returns 1/mean interarrival (0 when the mean is infinite, e.g.
// Pareto α <= 1).
func (r *Renewal) MeanRate() float64 {
	m := r.D.Mean()
	if math.IsInf(m, 1) {
		return 0
	}
	return 1 / m
}

// Reset rewinds the process to its initial phase in place — the
// allocation-free alternative to Clone for callers that cycle one
// Renewal through many independent replicas (the fleet slot kernel).
func (r *Renewal) Reset() {
	r.nextAt = 0
	r.now = 0
	r.primed = false
}

// Clone returns a reset copy.
func (r *Renewal) Clone() Arrivals { return &Renewal{D: r.D} }

func (r *Renewal) String() string { return fmt.Sprintf("Renewal(%s)", r.D) }

// ---------------------------------------------------------------------------
// Playback

// Playback replays a fixed sequence of per-slot counts; after the sequence
// is exhausted it returns 0 forever. Build from a trace with FromTrace.
type Playback struct {
	Counts []int
	pos    int
}

// NewPlayback validates counts are non-negative.
func NewPlayback(counts []int) (*Playback, error) {
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("workload: playback count %d at slot %d is negative", c, i)
		}
	}
	return &Playback{Counts: counts}, nil
}

// FromTrace bins tr into nSlots slots of slotDuration seconds and wraps
// the result in a Playback process.
func FromTrace(tr *trace.Trace, slotDuration float64, nSlots int) (*Playback, error) {
	counts, err := tr.Bin(slotDuration, nSlots)
	if err != nil {
		return nil, err
	}
	return NewPlayback(counts)
}

// Next returns the next recorded count.
func (p *Playback) Next(*rng.Stream) int {
	if p.pos >= len(p.Counts) {
		return 0
	}
	c := p.Counts[p.pos]
	p.pos++
	return c
}

// MeanRate returns the average of the recorded counts.
func (p *Playback) MeanRate() float64 {
	if len(p.Counts) == 0 {
		return 0
	}
	s := 0
	for _, c := range p.Counts {
		s += c
	}
	return float64(s) / float64(len(p.Counts))
}

// Clone returns a copy reset to the beginning.
func (p *Playback) Clone() Arrivals {
	return &Playback{Counts: p.Counts}
}

func (p *Playback) String() string { return fmt.Sprintf("Playback(%d slots)", len(p.Counts)) }
