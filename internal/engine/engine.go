// Package engine is the parallel experiment execution subsystem: a
// worker-pool job runner that fans independent simulation replicas
// (Scenario × PolicyFactory × seed in the experiment layer) across
// GOMAXPROCS workers.
//
// Design constraints, in priority order:
//
//  1. Determinism. Results are collected into an index-ordered slice and
//     reduced by the caller in that order, so a pooled run is bit-identical
//     to a serial run regardless of worker count or scheduling. The engine
//     never injects randomness; seed derivation (DeriveSeeds) is a pure
//     function of the base seed.
//  2. Prompt cancellation. Cancelling the context stops job dispatch
//     immediately and running jobs cooperatively (long replicas poll the
//     context between chunks in the experiment layer); Map returns the
//     context error without leaking goroutines.
//  3. Failure isolation. A panicking job is captured as a *PanicError
//     carrying the job index and stack; the first failure cancels the
//     remaining work and is returned to the caller.
//
// The engine is deliberately below the experiment layer in the dependency
// graph (it knows nothing about scenarios or policies), so every future
// workload — figure drivers, table sweeps, ablation grids, trace
// pipelines — plugs into the same pool.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/rng"
)

// Pool describes a worker pool. The zero value (and a nil *Pool) is valid
// and uses GOMAXPROCS workers with no progress reporting.
type Pool struct {
	// Workers is the number of concurrent workers; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, observes completion: it is called after each
	// job finishes with the number done so far and the total. Calls are
	// serialized by the engine, so the callback needs no locking of its
	// own, but it must not block for long — it runs on worker goroutines.
	Progress func(done, total int)
}

// Size reports the number of workers Map and MapWorkers will actually
// use for n jobs — and therefore the exclusive upper bound on the worker
// indices a MapWorkers fn observes. Callers preallocate per-worker
// scratch state with it.
func (p *Pool) Size(n int) int { return p.workers(n) }

// workers resolves the effective worker count for n jobs.
func (p *Pool) workers(n int) int {
	w := 0
	if p != nil {
		w = p.Workers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError reports a panic captured inside a pool job.
type PanicError struct {
	// Index is the job index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at the point of the panic.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %d panicked: %v", e.Index, e.Value)
}

// JobError records one failed job of a keep-going run.
type JobError struct {
	// Index is the failed job's index.
	Index int
	// Err is the job's error (a *PanicError if the job panicked).
	Err error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("engine: job %d: %v", e.Index, e.Err) }

// Unwrap exposes the job's underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PartialError reports that a keep-going run finished with some jobs
// failed: every other job ran and was reduced, and Failed lists the
// casualties in job-index order.
type PartialError struct {
	// Failed holds one entry per failed job, ascending by index.
	Failed []JobError
	// Total is the run's job count.
	Total int
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("engine: %d of %d jobs failed; first: %v", len(e.Failed), e.Total, &e.Failed[0])
}

// Map runs fn(ctx, i) for every i in [0, n) on p's worker pool and returns
// the results in index order — results[i] is fn's value for job i, so any
// order-sensitive reduction over the output is independent of worker count
// and scheduling.
//
// The first job error (or captured panic) cancels the remaining jobs and
// is returned alongside the partial results: slots whose jobs never ran or
// failed hold the zero value. If the parent context is cancelled, Map
// returns ctx's error. Map only returns once every started job has
// finished, so no worker goroutines outlive the call.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWorkers(ctx, p, n, func(ctx context.Context, _, i int) (T, error) {
		return fn(ctx, i)
	})
}

// MapWorkers is Map with worker identity: fn additionally receives the
// index (in [0, p.Size(n))) of the worker goroutine executing the job.
// Jobs that run on the same worker run sequentially, so fn may keep
// mutable per-worker scratch state — reusable simulators, metric
// buffers — indexed by worker without any locking. Determinism caveat:
// which jobs share a worker depends on scheduling, so per-worker state
// must never influence results (reuse buffers, not randomness).
func MapWorkers[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, worker, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("engine: negative job count %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	finish := func() {
		var cb func(done, total int)
		mu.Lock()
		done++
		d := done
		if p != nil {
			cb = p.Progress
		}
		if cb != nil {
			cb(d, n) // under mu: calls are serialized and ordered
		}
		mu.Unlock()
	}

	runJob := func(worker, i int) {
		defer func() {
			if v := recover(); v != nil {
				fail(&PanicError{Index: i, Value: v, Stack: debug.Stack()})
			}
		}()
		v, err := fn(ctx, worker, i)
		if err != nil {
			fail(fmt.Errorf("engine: job %d: %w", i, err))
			return
		}
		results[i] = v
		finish()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := p.workers(n) - 1; w >= 0; w-- {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				runJob(worker, i)
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return results, err
	}
	return results, ctx.Err()
}

// MapReduceWorkers runs fn(ctx, worker, i) like MapWorkers but streams
// the results into reduce in strict job-index order instead of
// collecting them: reduce(0, v0) completes before reduce(1, v1), and so
// on, so an order-sensitive fold (a merge tree reduced left to right)
// gets exactly the sequential reduction regardless of worker count.
//
// Memory is O(workers), not O(n): dispatch is gated by a window of
// 2×workers tokens, each held from the moment a job is handed out until
// its result has been folded, so at most 2×workers results ever exist
// at once (in flight or buffered waiting on a predecessor). This is
// what lets a million-device fleet stream per-shard summaries through a
// fold without materializing one summary per shard. The window also
// bounds head-of-line stalls: a slow job can idle the pool only after
// the workers run 2×workers jobs ahead of it.
//
// reduce calls are serialized (no locking needed inside) but run on
// worker goroutines, so a slow reduce backpressures the pool. A reduce
// error cancels the remaining work like a job error. Error, panic, and
// cancellation semantics otherwise match MapWorkers; on failure some
// prefix of the results may already have been reduced. MapWorkers is
// deliberately not implemented on top of this function: its callers
// want ungated dispatch (no token window, no head-of-line coupling
// between a slow job and later dispatch), which is the right discipline
// when all results are materialized anyway.
func MapReduceWorkers[T any](ctx context.Context, p *Pool, n int,
	fn func(ctx context.Context, worker, i int) (T, error),
	reduce func(i int, v T) error,
) error {
	return mapReduceWorkers(ctx, p, n, fn, reduce, false)
}

// MapReduceWorkersKeepGoing is MapReduceWorkers with failure isolation
// inverted: a job that errors or panics no longer cancels the run —
// its slot is skipped in the fold (reduce is never called for it) and
// every other job still runs and reduces in strict index order. If any
// jobs failed, the call returns a *PartialError listing them by index;
// context cancellation (and job errors caused by it) remains fatal and
// behaves exactly like MapReduceWorkers.
//
// This is the graceful-degradation discipline for long fan-outs where
// one poisoned shard should cost its own results, not the whole run.
func MapReduceWorkersKeepGoing[T any](ctx context.Context, p *Pool, n int,
	fn func(ctx context.Context, worker, i int) (T, error),
	reduce func(i int, v T) error,
) error {
	return mapReduceWorkers(ctx, p, n, fn, reduce, true)
}

// reduceSlot is one buffered mapReduceWorkers result: a value to fold,
// or (keep-going mode) a failure to skip past.
type reduceSlot[T any] struct {
	v   T
	err error // non-nil: the job failed; skip the fold for this index
}

func mapReduceWorkers[T any](ctx context.Context, p *Pool, n int,
	fn func(ctx context.Context, worker, i int) (T, error),
	reduce func(i int, v T) error,
	keepGoing bool,
) error {
	if n < 0 {
		return fmt.Errorf("engine: negative job count %d", n)
	}
	if n == 0 {
		return ctx.Err()
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.workers(n)
	window := 2 * workers
	// tokens gates dispatch: acquired before a job is handed out,
	// released after its result is folded. Capacity bounds live results.
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	var (
		mu       sync.Mutex
		done     int
		firstErr error
		next     int
		pending  = make(map[int]reduceSlot[T], window)
		failed   []JobError
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	// deliver buffers one result (or, keep-going, one failure) and folds
	// every consecutively available result from `next` on, releasing one
	// token per advanced index. Calls are serialized under mu, so reduce
	// needs no locking of its own and the fold order is exactly 0, 1,
	// 2, ... — failed slots are skipped, never reduced, and recorded in
	// `failed` in that same order.
	deliver := func(i int, s reduceSlot[T]) error {
		mu.Lock()
		defer mu.Unlock()
		pending[i] = s
		for {
			s, ok := pending[next]
			if !ok {
				return nil
			}
			delete(pending, next)
			if s.err != nil {
				failed = append(failed, JobError{Index: next, Err: s.err})
			} else if err := reduce(next, s.v); err != nil {
				return fmt.Errorf("engine: reduce %d: %w", next, err)
			}
			next++
			tokens <- struct{}{} // never blocks: releases <= acquisitions
			done++
			if p != nil && p.Progress != nil {
				p.Progress(done, n)
			}
		}
	}

	runJob := func(worker, i int) {
		defer func() {
			if v := recover(); v != nil {
				perr := &PanicError{Index: i, Value: v, Stack: debug.Stack()}
				if !keepGoing {
					fail(perr)
					return
				}
				if err := deliver(i, reduceSlot[T]{err: perr}); err != nil {
					fail(err)
				}
			}
		}()
		v, err := fn(ctx, worker, i)
		if err != nil {
			// Cancellation-shaped errors stay fatal even in keep-going
			// mode: once the context is done, skipping ahead would just
			// churn jobs that are all about to fail the same way.
			if !keepGoing || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fail(fmt.Errorf("engine: job %d: %w", i, err))
				return
			}
			if err := deliver(i, reduceSlot[T]{err: err}); err != nil {
				fail(err)
			}
			return
		}
		if err := deliver(i, reduceSlot[T]{v: v}); err != nil {
			fail(err)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := workers - 1; w >= 0; w-- {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range jobs {
				runJob(worker, i)
			}
		}(w)
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-tokens:
		case <-ctx.Done():
			break dispatch
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(failed) > 0 {
		return &PartialError{Failed: failed, Total: n}
	}
	return nil
}

// DeriveSeeds expands a base seed into n deterministic, statistically
// independent replica seeds. The expansion is a pure function of (base, n
// prefix): DeriveSeeds(b, m)[:k] == DeriveSeeds(b, k) for k <= m, so
// growing a replication never perturbs existing replicas.
func DeriveSeeds(base uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	src := rng.New(base)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = src.Uint64()
	}
	return seeds
}

// SeedFor returns member i's derived seed as a pure O(1) function of
// (base, i) — random access into an unbounded seed sequence. DeriveSeeds
// materializes a vector (the right shape for replica lists); SeedFor is
// for populations too large to hold one word per member — the fleet
// layer seeds a million instances with it while keeping resident memory
// independent of the device count. The two derivations are distinct
// sequences; a consumer must pick one and stay with it.
func SeedFor(base, i uint64) uint64 {
	// SplitMix64 finalizer over a golden-ratio-strided index: the
	// standard O(1) sequence splitter (avalanching mixer, distinct
	// odd-stride inputs), statistically independent across i and base.
	x := base + 0x9e3779b97f4a7c15*(i+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
