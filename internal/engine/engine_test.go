package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 0} {
		got, err := Map(context.Background(), &Pool{Workers: workers}, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), nil, 0,
		func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapNegativeJobs(t *testing.T) {
	if _, err := Map(context.Background(), nil, -1,
		func(context.Context, int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative job count accepted")
	}
}

func TestMapNilPool(t *testing.T) {
	got, err := Map(context.Background(), nil, 8,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 || got[7] != 7 {
		t.Fatalf("got %v", got)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), &Pool{Workers: 2}, 1000,
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("error %q does not name the failing job", err)
	}
	// Cancellation must stop dispatch well before all 1000 jobs run.
	if n := started.Load(); n == 1000 {
		t.Errorf("all %d jobs ran despite early failure", n)
	}
}

func TestMapPanicCaptured(t *testing.T) {
	_, err := Map(context.Background(), &Pool{Workers: 4}, 10,
		func(_ context.Context, i int) (int, error) {
			if i == 5 {
				panic("kaput")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if pe.Index != 5 || fmt.Sprint(pe.Value) != "kaput" {
		t.Errorf("panic error %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}

func TestMapContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, nil, 50, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > int64(runtime.GOMAXPROCS(0)) {
		t.Errorf("%d jobs ran after pre-cancelled context", n)
	}
}

func TestMapCancellationPromptNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Map(ctx, &Pool{Workers: 4}, 10000,
		func(ctx context.Context, i int) (int, error) {
			// A cooperative job: waits on the context like a chunked
			// replica run does.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-release:
				return i, nil
			}
		})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	close(release)
	// All worker goroutines must be gone once Map returns.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 { // +1 for the canceller
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestMapProgressSerializedAndComplete(t *testing.T) {
	var calls []int
	_, err := Map(context.Background(), &Pool{
		Workers: 4,
		// Progress runs under the engine's mutex; appending without extra
		// locking is the documented contract.
		Progress: func(done, total int) {
			if total != 64 {
				t.Errorf("total = %d, want 64", total)
			}
			calls = append(calls, done)
		},
	}, 64, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 64 {
		t.Fatalf("progress called %d times, want 64", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress sequence %v not monotone at %d", calls[:i+1], i)
		}
	}
}

func TestDeriveSeedsPrefixStable(t *testing.T) {
	long := DeriveSeeds(42, 20)
	short := DeriveSeeds(42, 5)
	for i, s := range short {
		if long[i] != s {
			t.Fatalf("prefix instability at %d: %d vs %d", i, long[i], s)
		}
	}
	seen := map[uint64]bool{}
	for _, s := range long {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	if other := DeriveSeeds(43, 5); other[0] == short[0] {
		t.Error("different base seeds produced identical first replica seed")
	}
	if DeriveSeeds(1, 0) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestPoolWorkersResolution(t *testing.T) {
	var nilPool *Pool
	if w := nilPool.workers(8); w != min(8, runtime.GOMAXPROCS(0)) {
		t.Errorf("nil pool workers = %d", w)
	}
	if w := (&Pool{Workers: 16}).workers(4); w != 4 {
		t.Errorf("workers not capped at job count: %d", w)
	}
	if w := (&Pool{Workers: 3}).workers(100); w != 3 {
		t.Errorf("explicit workers ignored: %d", w)
	}
}

// MapWorkers: worker indices stay in [0, Size(n)), jobs sharing a worker
// run sequentially (per-worker scratch needs no locking), and every job
// runs exactly once with index-ordered results.
func TestMapWorkersIdentity(t *testing.T) {
	const n = 64
	p := &Pool{Workers: 3}
	if s := p.Size(n); s != 3 {
		t.Fatalf("Size = %d, want 3", s)
	}
	// Per-worker counters: only safe if same-worker jobs are sequential.
	counts := make([]int, p.Size(n))
	var inFlight [3]atomic.Int32
	results, err := MapWorkers(context.Background(), p, n,
		func(_ context.Context, worker, i int) (int, error) {
			if worker < 0 || worker >= 3 {
				t.Errorf("worker index %d out of range", worker)
			}
			if inFlight[worker].Add(1) != 1 {
				t.Errorf("two jobs on worker %d at once", worker)
			}
			counts[worker]++
			time.Sleep(time.Microsecond)
			inFlight[worker].Add(-1)
			return i * i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("ran %d jobs, want %d", total, n)
	}
	for i, v := range results {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// Per-worker scratch reuse through MapWorkers must deliver every job a
// scratch no other in-flight job holds — the experiment layer's reusable
// simulator pattern.
func TestMapWorkersScratchReuse(t *testing.T) {
	const n = 40
	p := &Pool{Workers: 4}
	type scratch struct {
		busy atomic.Bool
		uses int
	}
	pads := make([]scratch, p.Size(n))
	_, err := MapWorkers(context.Background(), p, n,
		func(_ context.Context, worker, i int) (struct{}, error) {
			ws := &pads[worker]
			if !ws.busy.CompareAndSwap(false, true) {
				t.Errorf("scratch %d used concurrently", worker)
			}
			ws.uses++
			time.Sleep(time.Microsecond)
			ws.busy.Store(false)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range pads {
		total += pads[i].uses
	}
	if total != n {
		t.Fatalf("scratch uses %d, want %d", total, n)
	}
}

// TestMapReduceWorkersOrderedFold: under adversarial scheduling (random
// per-job sleeps, many workers) the reduce sees every index exactly
// once, in strict ascending order, with the right value — so an
// order-sensitive fold matches the sequential reduction bit for bit.
func TestMapReduceWorkersOrderedFold(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 3, 16} {
		var got []int
		var buffered, maxBuffered atomic.Int64
		err := MapReduceWorkers(context.Background(), &Pool{Workers: workers}, n,
			func(_ context.Context, _, i int) (int, error) {
				time.Sleep(time.Duration(i%7) * 100 * time.Microsecond)
				if b := buffered.Add(1); b > maxBuffered.Load() {
					maxBuffered.Store(b)
				}
				return i * i, nil
			},
			func(i, v int) error {
				buffered.Add(-1)
				got = append(got, v) // no lock: reduce calls are serialized
				if v != i*i {
					return fmt.Errorf("reduce(%d) got %d", i, v)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: reduced %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: reduce order broken at %d: %d", workers, i, v)
			}
		}
		// Completed-but-unfolded results stay within the dispatch window
		// of 2×workers tokens (the O(workers) memory contract).
		if mb := maxBuffered.Load(); mb > int64(2*workers) {
			t.Fatalf("workers=%d: %d results buffered at once (window %d)", workers, mb, 2*workers)
		}
		maxBuffered.Store(0)
	}
}

// TestMapReduceWorkersErrors: job errors and reduce errors both cancel
// the run and surface; a cancelled context aborts promptly.
func TestMapReduceWorkersErrors(t *testing.T) {
	boom := errors.New("boom")
	err := MapReduceWorkers(context.Background(), &Pool{Workers: 4}, 50,
		func(_ context.Context, _, i int) (int, error) {
			if i == 13 {
				return 0, boom
			}
			return i, nil
		},
		func(int, int) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("job error lost: %v", err)
	}

	err = MapReduceWorkers(context.Background(), &Pool{Workers: 4}, 50,
		func(_ context.Context, _, i int) (int, error) { return i, nil },
		func(i, _ int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("reduce error lost: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = MapReduceWorkers(ctx, nil, 50,
		func(ctx context.Context, _, i int) (int, error) { return i, ctx.Err() },
		func(int, int) error { return nil })
	if err == nil {
		t.Fatal("cancelled context returned nil")
	}
}

// TestMapReduceKeepGoingSkipsFailures: in keep-going mode a job error
// or panic drops only its own slot — every other job still reduces, in
// strict index order — and the run reports the casualties as a
// *PartialError listing them ascending by index.
func TestMapReduceKeepGoingSkipsFailures(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var got []int
		err := MapReduceWorkersKeepGoing(context.Background(), &Pool{Workers: workers}, 60,
			func(_ context.Context, _, i int) (int, error) {
				switch {
				case i%10 == 3:
					return 0, boom
				case i == 25:
					panic("job 25 exploded")
				}
				return i, nil
			},
			func(i, v int) error {
				got = append(got, v) // no lock: reduce calls are serialized
				if v != i {
					return fmt.Errorf("reduce(%d) got %d", i, v)
				}
				return nil
			})
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PartialError, got %v", workers, err)
		}
		wantFailed := []int{3, 13, 23, 25, 33, 43, 53}
		if pe.Total != 60 || len(pe.Failed) != len(wantFailed) {
			t.Fatalf("workers=%d: partial = %v", workers, pe)
		}
		for j, je := range pe.Failed {
			if je.Index != wantFailed[j] {
				t.Fatalf("workers=%d: failed[%d].Index = %d, want %d (ascending order)", workers, j, je.Index, wantFailed[j])
			}
			if je.Index == 25 {
				var perr *PanicError
				if !errors.As(je.Err, &perr) || perr.Index != 25 {
					t.Fatalf("workers=%d: panic not captured as PanicError: %v", workers, je.Err)
				}
			} else if !errors.Is(je.Err, boom) {
				t.Fatalf("workers=%d: job %d error lost: %v", workers, je.Index, je.Err)
			}
		}
		if len(got) != 60-len(wantFailed) {
			t.Fatalf("workers=%d: reduced %d results, want %d", workers, len(got), 60-len(wantFailed))
		}
		want := 0
		for _, v := range got {
			for want%10 == 3 || want == 25 {
				want++
			}
			if v != want {
				t.Fatalf("workers=%d: fold order broken: got %d, want %d", workers, v, want)
			}
			want++
		}
	}
}

// TestMapReduceKeepGoingCleanRun: with no failures, keep-going mode is
// indistinguishable from MapReduceWorkers (nil error, full fold).
func TestMapReduceKeepGoingCleanRun(t *testing.T) {
	var got []int
	err := MapReduceWorkersKeepGoing(context.Background(), &Pool{Workers: 3}, 40,
		func(_ context.Context, _, i int) (int, error) { return i, nil },
		func(i, v int) error {
			got = append(got, v)
			return nil
		})
	if err != nil || len(got) != 40 {
		t.Fatalf("clean keep-going run: err=%v, reduced=%d", err, len(got))
	}
}

// TestMapReduceKeepGoingCancellationStillFatal: context cancellation —
// and job errors shaped like it — aborts a keep-going run exactly like
// the fail-fast variant; it must not be recorded as a skippable
// failure.
func TestMapReduceKeepGoingCancellationStillFatal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	reduced := 0
	err := MapReduceWorkersKeepGoing(ctx, &Pool{Workers: 2}, 500,
		func(ctx context.Context, _, i int) (int, error) {
			if i == 20 {
				cancel()
			}
			return i, ctx.Err()
		},
		func(int, int) error { reduced++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatalf("cancellation misreported as partial failure: %v", pe)
	}
	if reduced >= 500 {
		t.Fatal("cancellation did not stop the run")
	}

	// A reduce error is also still fatal.
	boom := errors.New("boom")
	err = MapReduceWorkersKeepGoing(context.Background(), &Pool{Workers: 2}, 50,
		func(_ context.Context, _, i int) (int, error) { return i, nil },
		func(i, _ int) error {
			if i == 7 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("reduce error lost: %v", err)
	}
}

// TestSeedForProperties: SeedFor is deterministic, O(1)-pure (same
// (base, i) -> same seed), and collision-free across a large index range
// and across nearby bases.
func TestSeedForProperties(t *testing.T) {
	if SeedFor(7, 3) != SeedFor(7, 3) {
		t.Fatal("SeedFor not deterministic")
	}
	seen := make(map[uint64]string, 300000)
	for base := uint64(0); base < 3; base++ {
		for i := uint64(0); i < 100000; i++ {
			s := SeedFor(base, i)
			key := fmt.Sprintf("%d/%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%s) and (%s) both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
