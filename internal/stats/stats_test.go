package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %v, want %v", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 || r.CI95() != 0 {
		t.Error("empty Running should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Var() != 0 {
		t.Error("variance of one sample must be 0")
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("min/max of single sample wrong")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	s := rng.New(1)
	var all, a, b Running
	for i := 0; i < 1000; i++ {
		x := s.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N %d != %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Errorf("merged var %v != %v", a.Var(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestRunningMergeSingletonBitIdenticalToAdd(t *testing.T) {
	// The parallel experiment engine reduces one-sample accumulators in
	// replica order and promises bit-identical results versus the serial
	// Add loop; this pins the property down at the stats layer.
	s := rng.New(9)
	var serial, merged Running
	for i := 0; i < 500; i++ {
		x := s.NormFloat64()*2 + 1
		serial.Add(x)
		var one Running
		one.Add(x)
		merged.Merge(&one)
	}
	if serial != merged {
		t.Errorf("singleton merges diverged from serial adds:\n merged %+v\n serial %+v", merged, serial)
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a.Mean()
	a.Merge(&b) // merging empty is a no-op
	if a.Mean() != before || a.N() != 2 {
		t.Error("merge with empty changed accumulator")
	}
	var c Running
	c.Merge(&a) // merging into empty copies
	if c.N() != 2 || c.Mean() != before {
		t.Error("merge into empty did not copy")
	}
}

func TestRunningNumericalStability(t *testing.T) {
	// Large offset + small variance: naive sum-of-squares would lose all
	// precision here.
	var r Running
	const offset = 1e9
	for i := 0; i < 10000; i++ {
		r.Add(offset + float64(i%2)) // values 1e9 and 1e9+1
	}
	if math.Abs(r.Var()-0.25000025) > 1e-4 {
		t.Errorf("variance %v lost precision (want ~0.25)", r.Var())
	}
}

func TestEWMA(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Initialized() {
		t.Error("fresh EWMA claims initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first value %v, want 10", e.Value())
	}
	e.Add(0)
	if e.Value() != 5 {
		t.Errorf("value %v, want 5", e.Value())
	}
	e.Add(5)
	if e.Value() != 5 {
		t.Errorf("value %v, want 5", e.Value())
	}
}

func TestEWMARejectsBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5, math.NaN()} {
		if _, err := NewEWMA(a); err == nil {
			t.Errorf("NewEWMA(%v) accepted", a)
		}
	}
}

func TestWindowSlides(t *testing.T) {
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(1)
	w.Add(2)
	if w.Full() {
		t.Error("window full too early")
	}
	if w.Mean() != 1.5 {
		t.Errorf("mean %v, want 1.5", w.Mean())
	}
	w.Add(3)
	if !w.Full() || w.Mean() != 2 {
		t.Errorf("mean %v, want 2", w.Mean())
	}
	w.Add(10) // evicts 1
	if w.Mean() != 5 {
		t.Errorf("mean %v, want 5", w.Mean())
	}
	if w.N() != 3 {
		t.Errorf("N %d, want 3", w.N())
	}
}

func TestWindowEmptyAndBadCapacity(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Error("NewWindow(0) accepted")
	}
	w, _ := NewWindow(4)
	if w.Mean() != 0 {
		t.Error("empty window mean must be 0")
	}
}

// Property: sliding window mean equals brute-force mean of last k values.
func TestWindowPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		w, _ := NewWindow(capacity)
		s := rng.New(seed)
		var hist []float64
		for i := 0; i < 100; i++ {
			x := s.Float64() * 100
			w.Add(x)
			hist = append(hist, x)
			lo := len(hist) - capacity
			if lo < 0 {
				lo = 0
			}
			want := Mean(hist[lo:])
			if math.Abs(w.Mean()-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	counts := h.Counts()
	want := []int64{2, 1, 1, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", under, over)
	}
	if h.Total() != 8 {
		t.Errorf("total %d, want 8", h.Total())
	}
	if c := h.BinCenter(0); c != 1 {
		t.Errorf("bin 0 center %v, want 1", c)
	}
}

func TestHistogramRejectsBadParams(t *testing.T) {
	if _, err := NewHistogram(1, 1, 5); err == nil {
		t.Error("degenerate range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q>1 accepted")
	}
}

func TestQuantileSingle(t *testing.T) {
	got, err := Quantile([]float64{7}, 0.99)
	if err != nil || got != 7 {
		t.Errorf("Quantile singleton = %v, %v", got, err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean([1,2,3]) != 2")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(10-i))
	}
	if s.Len() != 10 {
		t.Fatalf("len %d", s.Len())
	}
	if s.YMin() != 1 || s.YMax() != 10 {
		t.Errorf("ymin/ymax = %v/%v", s.YMin(), s.YMax())
	}
	// Last 20% of ys = {2, 1}; mean 1.5.
	if tm := s.TailMean(0.2); math.Abs(tm-1.5) > 1e-12 {
		t.Errorf("TailMean(0.2) = %v, want 1.5", tm)
	}
	if tm := s.TailMean(1); math.Abs(tm-5.5) > 1e-12 {
		t.Errorf("TailMean(1) = %v, want 5.5", tm)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.YMin() != 0 || s.YMax() != 0 || s.TailMean(0.5) != 0 {
		t.Error("empty series should report zeros")
	}
}

// Property: Running mean always lies within [min, max].
func TestRunningPropertyMeanBounded(t *testing.T) {
	f := func(seed uint64) bool {
		s := rng.New(seed)
		var r Running
		for i := 0; i < 50; i++ {
			r.Add(s.NormFloat64() * 100)
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
