// Package stats provides the summary statistics used by the simulator's
// metric accounting and the experiment harness: numerically stable running
// moments, exponentially weighted and sliding-window means, histograms,
// quantiles, and normal-approximation confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates mean and variance with Welford's algorithm, which is
// numerically stable over the multi-million-sample runs the Fig. 1/Fig. 2
// experiments produce.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance (0 if fewer than 2 samples).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// Merge combines another accumulator into r (parallel Welford merge), so
// per-replica statistics can be pooled across seeds. A single-observation
// merge takes the exact Add path, which makes reducing one-sample
// accumulators in order bit-identical to adding the samples serially —
// the property the parallel experiment engine's determinism guarantee
// rests on.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	if o.n == 1 {
		r.Add(o.mean)
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.Std() / math.Sqrt(float64(r.n))
}

// ---------------------------------------------------------------------------

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; higher alpha weights recent observations more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA validates alpha and returns an EWMA.
func NewEWMA(alpha float64) (*EWMA, error) {
	if !(alpha > 0) || alpha > 1 {
		return nil, fmt.Errorf("stats: EWMA alpha %v out of (0,1]", alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Add incorporates one observation.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value, e.init = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation was added.
func (e *EWMA) Initialized() bool { return e.init }

// ---------------------------------------------------------------------------

// Window is a fixed-size sliding-window mean over the last Cap observations,
// used for the windowed power/energy-reduction series in Figs. 1 and 2.
type Window struct {
	buf  []float64
	head int
	n    int
	sum  float64
}

// NewWindow returns a window of the given capacity (must be positive).
func NewWindow(capacity int) (*Window, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stats: window capacity %d must be positive", capacity)
	}
	return &Window{buf: make([]float64, capacity)}, nil
}

// Add pushes one observation, evicting the oldest when full.
func (w *Window) Add(x float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
	} else {
		w.n++
	}
	w.buf[w.head] = x
	w.sum += x
	w.head = (w.head + 1) % len(w.buf)
}

// Mean returns the mean of the retained observations (0 if empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.sum / float64(w.n)
}

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// N returns the number of retained observations.
func (w *Window) N() int { return w.n }

// ---------------------------------------------------------------------------

// Histogram is a fixed-bin histogram over [Low, High) with overflow and
// underflow counters.
type Histogram struct {
	low, high float64
	width     float64
	bins      []int64
	under     int64
	over      int64
	total     int64
}

// NewHistogram returns a histogram with nbins equal bins on [low, high).
func NewHistogram(low, high float64, nbins int) (*Histogram, error) {
	if !(low < high) {
		return nil, fmt.Errorf("stats: histogram requires low < high, got [%v,%v)", low, high)
	}
	if nbins <= 0 {
		return nil, fmt.Errorf("stats: histogram bin count %d must be positive", nbins)
	}
	return &Histogram{low: low, high: high, width: (high - low) / float64(nbins), bins: make([]int64, nbins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.low:
		h.under++
	case x >= h.high:
		h.over++
	default:
		i := int((x - h.low) / h.width)
		if i >= len(h.bins) { // float edge case at the upper boundary
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Merge folds another histogram with the identical binning (same range,
// same bin count) into h; bin, underflow, and overflow counters add.
// Integer addition makes the merge exact: any merge-tree shape over the
// same observations yields bit-identical counts (the same property the
// fleet quantile sketch's Merge builds on). o is not modified.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if h.low != o.low || h.high != o.high || len(h.bins) != len(o.bins) {
		return fmt.Errorf("stats: merging histograms with different binning: [%v,%v)/%d vs [%v,%v)/%d",
			h.low, h.high, len(h.bins), o.low, o.high, len(o.bins))
	}
	mergeCounts(h.bins, o.bins)
	h.under += o.under
	h.over += o.over
	h.total += o.total
	return nil
}

// Counts returns a copy of the in-range bin counts.
func (h *Histogram) Counts() []int64 { return append([]int64(nil), h.bins...) }

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 { return h.total }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.low + (float64(i)+0.5)*h.width
}

// ---------------------------------------------------------------------------

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for empty
// input or out-of-range q. The input slice is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile level %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---------------------------------------------------------------------------

// Series accumulates an (x, y) time series, e.g. slot index vs windowed
// average power; the experiment harness renders these as figure data.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YMin returns the minimum y value (0 for empty series).
func (s *Series) YMin() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// YMax returns the maximum y value (0 for empty series).
func (s *Series) YMax() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	m := s.Y[0]
	for _, v := range s.Y[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// TailMean returns the mean of the last frac portion of the series
// (frac in (0,1]); used to measure post-convergence level in Fig. 1.
func (s *Series) TailMean(frac float64) float64 {
	if len(s.Y) == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	start := len(s.Y) - int(math.Ceil(frac*float64(len(s.Y))))
	if start < 0 {
		start = 0
	}
	return Mean(s.Y[start:])
}
