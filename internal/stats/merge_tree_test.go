package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// The fleet layer reduces per-shard Running accumulators in shard-index
// order — the same sequential reduction the engine's index-ordered
// results induce everywhere else. These tests pin the merge-tree
// properties that determinism contract rests on, under the tree shapes
// fleets actually produce: singleton shards (the replica grids), equal
// blocks (fleet shards), a ragged tail, unbalanced splits, and deep
// left-leaning chains.

// sample returns n deterministic pseudo-random observations spanning
// several orders of magnitude, the shape that stresses Welford merging.
func mergeTreeSample(n int) []float64 {
	s := rng.New(12345)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (s.Float64() - 0.3) * math.Pow(10, float64(s.Intn(6))-3)
	}
	return xs
}

// bits flattens an accumulator to comparable bit patterns.
func bits(r *Running) [5]uint64 {
	return [5]uint64{
		uint64(r.N()),
		math.Float64bits(r.Mean()),
		math.Float64bits(r.Var()),
		math.Float64bits(r.Min()),
		math.Float64bits(r.Max()),
	}
}

// shardReduce splits xs at the given boundaries, accumulates each shard
// sequentially, and merges the shard accumulators left to right — the
// exact reduction shape of fleet.Run (shards) and engine.Map (parts).
func shardReduce(xs []float64, bounds []int) Running {
	var total Running
	lo := 0
	for _, hi := range append(bounds, len(xs)) {
		var shard Running
		for _, x := range xs[lo:hi] {
			shard.Add(x)
		}
		total.Merge(&shard)
		lo = hi
	}
	return total
}

// TestMergeSingletonShardsBitIdenticalToSerial: reducing one-sample
// accumulators in order is bit-identical to adding the samples serially
// — the exactness the replica grids rely on (Merge's n==1 path).
func TestMergeSingletonShardsBitIdenticalToSerial(t *testing.T) {
	xs := mergeTreeSample(1000)
	var serial Running
	for _, x := range xs {
		serial.Add(x)
	}
	bounds := make([]int, len(xs)-1)
	for i := range bounds {
		bounds[i] = i + 1
	}
	merged := shardReduce(xs, bounds)
	if bits(&serial) != bits(&merged) {
		t.Fatalf("singleton-shard reduction diverged from serial Add:\n%+v\nvs\n%+v", serial, merged)
	}
}

// TestMergeTreeDeterministicAcrossComputationOrder: for a fixed shard
// decomposition, the reduced result is a pure function of the
// decomposition — recomputing shards in any order (as a worker pool
// does) changes nothing, because reduction order is fixed by index.
func TestMergeTreeDeterministicAcrossComputationOrder(t *testing.T) {
	xs := mergeTreeSample(997) // prime: ragged tail shard
	bounds := []int{128, 256, 384, 512, 640, 768, 896}
	want := shardReduce(xs, bounds)
	// Recompute the shard accumulators in reverse and in interleaved
	// order, then merge in index order — identical bits.
	type shardSpan struct{ lo, hi int }
	spans := make([]shardSpan, 0, len(bounds)+1)
	lo := 0
	for _, hi := range append(append([]int{}, bounds...), len(xs)) {
		spans = append(spans, shardSpan{lo, hi})
		lo = hi
	}
	for name, order := range map[string][]int{
		"reverse":     {7, 6, 5, 4, 3, 2, 1, 0},
		"interleaved": {3, 7, 1, 5, 0, 4, 2, 6},
	} {
		acc := make([]Running, len(spans))
		for _, si := range order {
			for _, x := range xs[spans[si].lo:spans[si].hi] {
				acc[si].Add(x)
			}
		}
		var got Running
		for i := range acc {
			got.Merge(&acc[i])
		}
		if bits(&want) != bits(&got) {
			t.Fatalf("%s computation order changed the reduction:\n%+v\nvs\n%+v", name, want, got)
		}
	}
}

// TestMergeUnbalancedAndDeepTrees: extreme shard shapes — one giant
// shard plus crumbs, alternating sizes, a deep left chain of tiny
// shards, and empty shards interleaved — all reproduce their own bits
// exactly and agree with the direct two-pass moments to float
// tolerance.
func TestMergeUnbalancedAndDeepTrees(t *testing.T) {
	xs := mergeTreeSample(2048)
	// Direct two-pass reference.
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	m2 := 0.0
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	wantVar := m2 / float64(len(xs)-1)

	shapes := map[string][]int{
		"one-giant-plus-crumbs": {2040, 2041, 2042, 2043, 2044, 2045, 2046, 2047},
		"alternating":           {1, 513, 514, 1026, 1027, 1539, 1540},
		"deep-left-chain":       nil, // filled below: 512 shards of 4
		"empty-shards":          {0, 0, 1024, 1024, 1024, 2048, 2048},
	}
	deep := make([]int, 0, 511)
	for i := 4; i < 2048; i += 4 {
		deep = append(deep, i)
	}
	shapes["deep-left-chain"] = deep

	for name, bounds := range shapes {
		a := shardReduce(xs, bounds)
		b := shardReduce(xs, bounds)
		if bits(&a) != bits(&b) {
			t.Fatalf("%s: reduction not reproducible", name)
		}
		if a.N() != int64(len(xs)) {
			t.Fatalf("%s: pooled %d samples, want %d", name, a.N(), len(xs))
		}
		if relDiff(a.Mean(), mean) > 1e-12 {
			t.Fatalf("%s: mean %v, want %v", name, a.Mean(), mean)
		}
		if relDiff(a.Var(), wantVar) > 1e-9 {
			t.Fatalf("%s: var %v, want %v", name, a.Var(), wantVar)
		}
	}
}

// TestMergeTwoLevelTreeMatchesFlat: merging shard summaries that were
// themselves produced by merges (the replicated-fleet shape: shards →
// replica summary → pooled summary) is reproducible and agrees with the
// flat reduction to float tolerance.
func TestMergeTwoLevelTreeMatchesFlat(t *testing.T) {
	xs := mergeTreeSample(1200)
	flat := shardReduce(xs, []int{300, 600, 900})
	// Two levels: 12 shards of 100, merged 3-at-a-time into 4 groups,
	// then the groups merged in order.
	var groups [4]Running
	for g := 0; g < 4; g++ {
		for s := 0; s < 3; s++ {
			var shard Running
			for _, x := range xs[(g*3+s)*100 : (g*3+s+1)*100] {
				shard.Add(x)
			}
			groups[g].Merge(&shard)
		}
	}
	var got Running
	for g := range groups {
		got.Merge(&groups[g])
	}
	if got.N() != flat.N() {
		t.Fatalf("two-level tree pooled %d samples, want %d", got.N(), flat.N())
	}
	if relDiff(got.Mean(), flat.Mean()) > 1e-12 || relDiff(got.Var(), flat.Var()) > 1e-9 {
		t.Fatalf("two-level tree diverged beyond float tolerance: %+v vs %+v", got, flat)
	}
	if got.Min() != flat.Min() || got.Max() != flat.Max() {
		t.Fatalf("extrema differ across tree shapes: %+v vs %+v", got, flat)
	}
}

// relDiff returns |a-b| scaled by magnitude.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}
