// Log-binned mergeable quantile sketch.
//
// The fleet layer needs latency percentiles over millions of instances
// without holding one float per instance. QuantileSketch is a DDSketch-
// style structure: nonnegative values are counted into geometrically
// spaced bins keyed by ceil(log_gamma(x)) with gamma = (1+a)/(1-a) for a
// configured relative accuracy a, so any value in a bin is within a
// relative distance a of the bin's representative value. Memory is
// O(log(max/min)/log(gamma)) — a few hundred int64 counters for
// second-scale waits at a = 1% — independent of the number of
// observations.
//
// Error bound. For q in (0, 1), Quantile(q) estimates the exact order
// statistic x of rank floor(q·(n-1)) (0-based): if x > MinTracked the
// estimate v satisfies |v - x| <= a·x up to floating-point rounding of
// log/pow; values in [0, MinTracked] are returned exactly as 0.
// Quantile(0) and Quantile(1) return the exactly tracked min and max.
//
// Merge contract. Sketch state is integer bin counts plus exact min/max,
// so merging is exact integer addition: merges are associative and
// commutative at the bit level, and a merge tree of any shape over the
// same observations yields the same bits. (The fleet layer still merges
// in shard-index order, matching the contract of the float accumulators
// it carries alongside.)
package stats

import (
	"fmt"
	"math"
)

// MinTracked is the smallest positive value the sketch resolves; values
// at or below it (including zeros — instances that served no requests)
// are counted exactly in a dedicated zero bin and reported as 0.
const MinTracked = 1e-12

// QuantileSketch is a mergeable log-binned quantile estimator for
// nonnegative observations. The zero value is not valid; use
// NewQuantileSketch. Not safe for concurrent use.
type QuantileSketch struct {
	alpha  float64
	gamma  float64
	lg     float64 // log(gamma)
	zero   int64   // observations <= MinTracked
	offset int     // bin key of counts[0]
	counts []int64
	n      int64
	min    float64
	max    float64
}

// NewQuantileSketch returns a sketch with the given relative accuracy
// (0 < alpha < 1). alpha = 0.01 bounds every quantile within 1% of the
// corresponding exact order statistic.
func NewQuantileSketch(alpha float64) (*QuantileSketch, error) {
	if !(alpha > 0) || alpha >= 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("stats: sketch relative accuracy %v out of (0,1)", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &QuantileSketch{alpha: alpha, gamma: gamma, lg: math.Log(gamma)}, nil
}

// RelativeAccuracy returns the configured bound alpha.
func (s *QuantileSketch) RelativeAccuracy() float64 { return s.alpha }

// N returns the number of observations.
func (s *QuantileSketch) N() int64 { return s.n }

// Min returns the smallest observation (0 if empty).
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 if empty).
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Bins returns the number of allocated bin counters — the sketch's
// memory footprint in 8-byte words, up to the fixed header.
func (s *QuantileSketch) Bins() int { return len(s.counts) }

// key maps a value > MinTracked to its bin: values in
// (gamma^(k-1), gamma^k] share key k.
func (s *QuantileSketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lg))
}

// Add counts one observation. Negative and NaN values (which the wait
// metrics never produce) are clamped into the zero bin.
func (s *QuantileSketch) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		x = 0
	}
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	if x <= MinTracked {
		s.zero++
		return
	}
	k := s.key(x)
	// In-range increment without the ensure call: after the range's
	// high-water mark is reached every Add lands here.
	if i := k - s.offset; uint(i) < uint(len(s.counts)) {
		s.counts[i]++
		return
	}
	s.ensure(k, k)
	s.counts[k-s.offset]++
}

// ensure grows the bin array to cover keys [lo, hi]. Growth doubles the
// backing array and only happens until the observed value range's
// high-water mark, so steady-state Adds allocate nothing.
func (s *QuantileSketch) ensure(lo, hi int) {
	if len(s.counts) == 0 {
		s.offset = lo
		s.counts = append(s.counts, make([]int64, hi-lo+1)...)
		return
	}
	if lo >= s.offset && hi < s.offset+len(s.counts) {
		return
	}
	newLo, newHi := s.offset, s.offset+len(s.counts)-1
	if lo < newLo {
		newLo = lo
	}
	if hi > newHi {
		newHi = hi
	}
	need := newHi - newLo + 1
	if need < 2*len(s.counts) {
		need = 2 * len(s.counts)
		// Bias the slack toward the side being extended.
		if lo < s.offset {
			newLo = newHi - need + 1
		} else {
			newHi = newLo + need - 1
		}
	}
	nb := make([]int64, need)
	copy(nb[s.offset-newLo:], s.counts)
	s.offset = newLo
	s.counts = nb
}

// Merge folds another sketch into s — exact integer addition of bin
// counts, so the result is bit-identical for any merge order. Both
// sketches must share the same relative accuracy; merging mismatched
// sketches is a programming error and panics. o is not modified.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.n == 0 {
		return
	}
	if s.alpha != o.alpha {
		panic(fmt.Sprintf("stats: merging sketches with accuracies %v and %v", s.alpha, o.alpha))
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.n += o.n
	s.zero += o.zero
	// Fold only o's nonzero span. A reset-then-reused sketch keeps its
	// widest-ever bin array (see Reset), so growing s to o's full extent
	// would make s's bin layout depend on o's reuse history — and with
	// pooled shard summaries, on worker scheduling. Trimming keeps the
	// merged layout a pure function of the observations.
	lo, hi := 0, len(o.counts)-1
	for lo <= hi && o.counts[lo] == 0 {
		lo++
	}
	for hi >= lo && o.counts[hi] == 0 {
		hi--
	}
	if lo <= hi {
		s.ensure(o.offset+lo, o.offset+hi)
		mergeCounts(s.counts[o.offset+lo-s.offset:], o.counts[lo:hi+1])
	}
}

// Reset returns the sketch to its freshly constructed state — no
// observations — while keeping the bin array at capacity (zeroed in
// place) and its key offset. A reset sketch's observable behavior is
// bit-identical to a fresh one's: quantiles, merges, and adds depend
// only on the nonzero bin counts and the exact min/max/n header, never
// on the bin array's extent, so pooled shard summaries can recycle
// sketches without perturbing any downstream number.
func (s *QuantileSketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.zero = 0
	s.n = 0
	s.min = 0
	s.max = 0
}

// Clone returns an independent deep copy.
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := *s
	c.counts = append([]int64(nil), s.counts...)
	return &c
}

// Quantile returns the estimate for the exact order statistic of rank
// floor(q·(n-1)), within the documented relative-error bound. It errors
// on an empty sketch or q outside [0, 1].
func (s *QuantileSketch) Quantile(q float64) (float64, error) {
	if s == nil || s.n == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sketch")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile level %v out of [0,1]", q)
	}
	if q == 0 {
		return s.min, nil
	}
	if q == 1 {
		return s.max, nil
	}
	rank := int64(math.Floor(q * float64(s.n-1)))
	if rank < s.zero {
		return 0, nil
	}
	cum := s.zero
	for i, c := range s.counts {
		cum += c
		if cum > rank {
			// Representative value of bin k = (gamma^(k-1), gamma^k]:
			// the harmonic-style midpoint 2·gamma^k/(gamma+1), within
			// relative distance alpha of every value in the bin. Clamping
			// into the exact [min, max] envelope only moves the estimate
			// toward the true order statistic.
			v := 2 * math.Pow(s.gamma, float64(s.offset+i)) / (1 + s.gamma)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v, nil
		}
	}
	return s.max, nil // counts exhausted: the top-ranked observation
}

// mergeCounts adds src into dst element-wise (len(dst) >= len(src)) —
// the shared integer-accumulation kernel of Histogram.Merge and
// QuantileSketch.Merge; integer addition is what makes both merges
// bit-exact under any merge-tree shape.
func mergeCounts(dst, src []int64) {
	for i, c := range src {
		dst[i] += c
	}
}
