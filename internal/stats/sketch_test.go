package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/rng"
)

// sketchOf builds a sketch over xs at the given accuracy.
func sketchOf(t *testing.T, alpha float64, xs []float64) *QuantileSketch {
	t.Helper()
	s, err := NewQuantileSketch(alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// checkBound asserts the documented bound at level q: the estimate is
// within relative error alpha of the exact order statistic of rank
// floor(q·(n-1)), with a sliver of slack for log/pow rounding.
func checkBound(t *testing.T, s *QuantileSketch, sorted []float64, q float64) {
	t.Helper()
	got, err := s.Quantile(q)
	if err != nil {
		t.Fatal(err)
	}
	x := sorted[int(math.Floor(q*float64(len(sorted)-1)))]
	if x <= MinTracked {
		if got != 0 {
			t.Fatalf("q=%v: estimate %v for sub-resolution order statistic %v, want 0", q, got, x)
		}
		return
	}
	tol := s.RelativeAccuracy()*x + 1e-9*x
	if math.Abs(got-x) > tol {
		t.Fatalf("q=%v: estimate %v off exact order statistic %v by %v (> %v)",
			q, got, x, math.Abs(got-x), tol)
	}
}

func TestSketchValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 1, 1.5, math.NaN()} {
		if _, err := NewQuantileSketch(alpha); err == nil {
			t.Errorf("accuracy %v accepted", alpha)
		}
	}
	s, err := NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Quantile(0.5); err == nil {
		t.Error("empty sketch quantile succeeded")
	}
	s.Add(1)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := s.Quantile(q); err == nil {
			t.Errorf("quantile level %v accepted", q)
		}
	}
}

// TestSketchErrorBoundProperty: on random heavy-tailed inputs spanning
// ten orders of magnitude, every quantile honours the documented
// relative-error bound against the exact order statistics.
func TestSketchErrorBoundProperty(t *testing.T) {
	stream := rng.New(17)
	for _, alpha := range []float64{0.05, 0.01, 0.001} {
		for trial := 0; trial < 20; trial++ {
			n := 1 + stream.Intn(3000)
			xs := make([]float64, n)
			for i := range xs {
				switch stream.Intn(4) {
				case 0:
					xs[i] = 0 // instances that served nothing
				case 1:
					xs[i] = stream.Float64() * 1e-6
				case 2:
					xs[i] = stream.Float64() * 10
				default:
					xs[i] = math.Exp(stream.Float64()*14 - 7) // log-uniform e^-7..e^7
				}
			}
			s := sketchOf(t, alpha, xs)
			sorted := append([]float64(nil), xs...)
			sortFloats(sorted)
			if got, _ := s.Quantile(0); got != sorted[0] {
				t.Fatalf("q=0 is %v, want exact min %v", got, sorted[0])
			}
			if got, _ := s.Quantile(1); got != sorted[n-1] {
				t.Fatalf("q=1 is %v, want exact max %v", got, sorted[n-1])
			}
			for _, q := range []float64{1e-6, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999} {
				checkBound(t, s, sorted, q)
			}
		}
	}
}

// TestSketchMergeBitIdenticalAnyOrder: merging shard sketches in any
// order — sequential, reversed, pairwise tree — produces bit-identical
// sketch state and quantiles, and matches the sketch built serially.
func TestSketchMergeBitIdenticalAnyOrder(t *testing.T) {
	stream := rng.New(23)
	const shards = 16
	var all []float64
	parts := make([]*QuantileSketch, shards)
	for i := range parts {
		n := 1 + stream.Intn(200)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = math.Exp(stream.NormFloat64() * 3)
		}
		all = append(all, xs...)
		parts[i] = sketchOf(t, 0.01, xs)
	}
	serial := sketchOf(t, 0.01, all)

	fold := func(order []int) *QuantileSketch {
		m, err := NewQuantileSketch(0.01)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			m.Merge(parts[i])
		}
		return m
	}
	fwd := make([]int, shards)
	rev := make([]int, shards)
	for i := range fwd {
		fwd[i], rev[i] = i, shards-1-i
	}
	a, b := fold(fwd), fold(rev)

	// Pairwise tree.
	level := make([]*QuantileSketch, shards)
	for i := range level {
		level[i] = parts[i].Clone()
	}
	for len(level) > 1 {
		var next []*QuantileSketch
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				level[i].Merge(level[i+1])
			}
			next = append(next, level[i])
		}
		level = next
	}
	c := level[0]

	norm := func(s *QuantileSketch) *QuantileSketch {
		// Trim the counts window so differently-grown arrays compare
		// equal: state equality means equal counts per bin key.
		out := s.Clone()
		lo, hi := 0, len(out.counts)
		for lo < hi && out.counts[lo] == 0 {
			lo++
		}
		for hi > lo && out.counts[hi-1] == 0 {
			hi--
		}
		out.offset += lo
		out.counts = append([]int64(nil), out.counts[lo:hi]...)
		return out
	}
	sa := norm(a)
	for name, s := range map[string]*QuantileSketch{"reverse": b, "tree": c, "serial": serial} {
		if !reflect.DeepEqual(sa, norm(s)) {
			t.Fatalf("%s merge state differs from forward merge", name)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			qa, _ := a.Quantile(q)
			qs, _ := s.Quantile(q)
			if qa != qs {
				t.Fatalf("%s merge quantile(%v) %v != forward %v", name, q, qa, qs)
			}
		}
	}

	// Mismatched accuracies are a programming error.
	other, err := NewQuantileSketch(0.05)
	if err != nil {
		t.Fatal(err)
	}
	other.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched accuracies did not panic")
		}
	}()
	a.Merge(other)
}

// TestSketchAddSteadyStateAllocationFree: after the bin array covers the
// value range, Add performs no allocations — the property that keeps
// fleet summary accumulation off the allocator.
func TestSketchAddSteadyStateAllocationFree(t *testing.T) {
	s, err := NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.New(5)
	for i := 0; i < 1000; i++ {
		s.Add(math.Exp(stream.NormFloat64() * 2))
	}
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = math.Exp(stream.NormFloat64() * 2)
		s.Add(vals[i]) // pre-touch so the range is covered
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		s.Add(vals[i%len(vals)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Add allocates %.1f times", allocs)
	}
}

// TestSketchResetBehavesFresh: a reset sketch refilled with new
// observations is observably bit-identical to a freshly constructed one
// over the same observations — quantiles at every level, min/max/n, and
// merge behavior — even though Reset keeps the old bin array (zeroed)
// and its key offset. This is the contract the fleet shard-summary pool
// relies on.
func TestSketchResetBehavesFresh(t *testing.T) {
	stream := rng.New(11)
	recycled, err := NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// First life: a wide value range, so the retained bin array extends
	// well past what the second life needs.
	for i := 0; i < 500; i++ {
		recycled.Add(math.Exp(stream.NormFloat64() * 4))
	}
	recycled.Reset()
	if recycled.N() != 0 || recycled.Min() != 0 || recycled.Max() != 0 {
		t.Fatalf("reset sketch not empty: n=%d min=%v max=%v", recycled.N(), recycled.Min(), recycled.Max())
	}
	second := make([]float64, 300)
	for i := range second {
		second[i] = math.Exp(stream.NormFloat64())
	}
	second[0], second[1] = 0, MinTracked // exercise the zero bin too
	fresh := sketchOf(t, 0.01, second)
	for _, x := range second {
		recycled.Add(x)
	}
	if recycled.N() != fresh.N() || recycled.Min() != fresh.Min() || recycled.Max() != fresh.Max() {
		t.Fatalf("header mismatch: recycled (n=%d min=%v max=%v) vs fresh (n=%d min=%v max=%v)",
			recycled.N(), recycled.Min(), recycled.Max(), fresh.N(), fresh.Min(), fresh.Max())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		a, errA := recycled.Quantile(q)
		b, errB := fresh.Quantile(q)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("q=%v: recycled %v (%v) vs fresh %v (%v)", q, a, errA, b, errB)
		}
	}
	// Merging the recycled sketch into a target matches merging the
	// fresh one — the reset sketch's wider (zeroed) bin range must not
	// change any downstream number.
	tgtA := sketchOf(t, 0.01, []float64{0.5, 2.5, 9})
	tgtB := tgtA.Clone()
	tgtA.Merge(recycled)
	tgtB.Merge(fresh)
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		a, _ := tgtA.Quantile(q)
		b, _ := tgtB.Quantile(q)
		if a != b {
			t.Fatalf("merge target q=%v: via recycled %v, via fresh %v", q, a, b)
		}
	}
}

// TestSketchCloneIndependent: Clone produces a deep copy.
func TestSketchCloneIndependent(t *testing.T) {
	s := sketchOf(t, 0.01, []float64{1, 2, 3})
	c := s.Clone()
	c.Add(1000)
	if s.N() != 3 || s.Max() != 3 {
		t.Fatalf("clone mutation leaked into original: n=%d max=%v", s.N(), s.Max())
	}
}

// TestHistogramMerge: matching binning adds counts exactly and matches a
// serially filled histogram; mismatched binning errors.
func TestHistogramMerge(t *testing.T) {
	mk := func() *Histogram {
		h, err := NewHistogram(0, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b, serial := mk(), mk(), mk()
	stream := rng.New(3)
	for i := 0; i < 500; i++ {
		x := stream.Float64()*14 - 2 // spans under/in/over
		serial.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Counts(), serial.Counts()) {
		t.Fatalf("merged counts %v != serial %v", a.Counts(), serial.Counts())
	}
	au, ao := a.OutOfRange()
	su, so := serial.OutOfRange()
	if au != su || ao != so || a.Total() != serial.Total() {
		t.Fatalf("merged out-of-range/total differ: %d/%d/%d vs %d/%d/%d",
			au, ao, a.Total(), su, so, serial.Total())
	}
	if err := a.Merge(nil); err != nil {
		t.Fatal("nil merge errored")
	}

	narrow, err := NewHistogram(0, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(narrow); err == nil {
		t.Fatal("mismatched binning accepted")
	}
	coarse, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(coarse); err == nil {
		t.Fatal("mismatched bin count accepted")
	}
}

// sortFloats sorts test inputs ascending.
func sortFloats(xs []float64) { sort.Float64s(xs) }
