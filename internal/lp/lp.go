// Package lp implements a dense two-phase tableau simplex solver for
// linear programs, from scratch on the standard library.
//
// This is the "widely applied linear programming policy optimization" the
// Q-DPM paper positions itself against: the Benini-style stochastic DPM
// baseline in internal/stochpm formulates optimal randomized policies as an
// occupancy-measure LP and solves it here. Bland's anti-cycling rule is
// used throughout because occupancy LPs are heavily degenerate.
//
// The solver accepts problems in computational standard form —
// minimize c·x subject to Ax = b, x ≥ 0 — and a small builder converts
// ≤/≥/= constraint systems into that form with slack and surplus
// variables.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible reports that no feasible point exists.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded reports that the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrNumerical reports that the simplex terminated but its solution fails
// the final feasibility verification — the tableau degraded beyond repair
// on a degenerate instance. Callers should treat it like a solver failure
// and use an alternative method.
var ErrNumerical = errors.New("lp: numerical breakdown")

// Problem is a standard-form LP: minimize C·x subject to A x = B, x ≥ 0.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Validate checks dimensions and finiteness.
func (p *Problem) Validate() error {
	m := len(p.B)
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: no variables")
	}
	if len(p.A) != m {
		return fmt.Errorf("lp: A has %d rows, B has %d entries", len(p.A), m)
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: A[%d][%d] = %v", i, j, v)
			}
		}
	}
	for i, v := range p.B {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: B[%d] = %v", i, v)
		}
	}
	for j, v := range p.C {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: C[%d] = %v", j, v)
		}
	}
	return nil
}

// Solution is an optimal basic feasible solution.
type Solution struct {
	// X is the optimal point.
	X []float64
	// Objective is C·X.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Numerical tolerances. optEps classifies a reduced cost as improving;
// ratioEps classifies a pivot-column entry as usable in the ratio test;
// driveOutEps is the minimum magnitude for pivoting a zero-valued
// artificial variable out of the basis (pivoting on smaller elements
// destroys the tableau's conditioning). Tolerances looser than the classic
// 1e-9 are deliberate: occupancy-measure LPs carry probabilities down to
// 1e-4, and 1e-9-scale noise otherwise keeps Bland's rule spinning on
// zero-improvement pivots.
const (
	optEps      = 1e-7
	ratioEps    = 1e-7
	driveOutEps = 1e-6
)

// Solve runs two-phase simplex with Bland's rule. It returns
// ErrInfeasible or ErrUnbounded as appropriate.
//
// The tableau is a single backing []float64 with row stride `width` (one
// allocation, contiguous rows) rather than an [][]float64: a pivot walks
// every entry, so row locality and a flat index computation dominate the
// solver's runtime and allocation profile on the occupancy LPs stochpm
// feeds it.
func Solve(p Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := len(p.B)
	n := len(p.C)

	// Phase 1: add artificial variables, minimize their sum.
	// Tableau columns: n structural + m artificial + 1 rhs; rows: m
	// constraints + 1 objective, flattened row-major into one slice.
	// Constraint rows are filled straight from the problem data with b
	// normalized to >= 0 (sign-flipping the row inline), so no
	// intermediate copy of A is made.
	width := n + m + 1
	t := make([]float64, (m+1)*width)
	for i := 0; i < m; i++ {
		row := t[i*width : (i+1)*width]
		copy(row, p.A[i])
		bi := p.B[i]
		if bi < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			bi = -bi
		}
		row[n+i] = 1
		row[width-1] = bi
	}
	obj := t[m*width : (m+1)*width] // phase-1 objective row
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		basis[i] = n + i
	}
	// Objective row = -(sum of constraint rows) over structural columns,
	// expressing artificial cost in terms of nonbasic variables.
	for j := 0; j < width; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			s += t[i*width+j]
		}
		if j < n || j == width-1 {
			obj[j] = -s
		}
	}

	iters, err := simplexLoop(t, width, basis, n+m)
	if err != nil {
		return nil, err
	}
	if obj[width-1] < -1e-7 {
		return nil, ErrInfeasible
	}

	// Drive any artificial variables out of the basis (degenerate rows).
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		row := t[i*width : (i+1)*width]
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(row[j]) > driveOutEps {
				pivot(t, width, basis, i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is (numerically) all zeros over structural columns: a
			// redundant constraint. Zero the row outright so its noise
			// entries can never win a ratio test — pivoting on a ~1e-7
			// residue would destroy the tableau's conditioning.
			for j := range row {
				row[j] = 0
			}
		}
	}

	// Phase 2: replace the objective row with the true costs (reduced).
	for j := 0; j < width; j++ {
		obj[j] = 0
	}
	copy(obj, p.C)
	// Make reduced costs of basic variables zero.
	for i := 0; i < m; i++ {
		if basis[i] >= n {
			continue
		}
		c := obj[basis[i]]
		if c == 0 {
			continue
		}
		row := t[i*width : (i+1)*width]
		for j := 0; j < width; j++ {
			obj[j] -= c * row[j]
		}
	}
	it2, err := simplexLoop(t, width, basis, n) // artificial columns excluded
	iters += it2
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i*width+width-1]
		}
	}

	// Final verification against the ORIGINAL problem data: every dense
	// pivot loses precision, and on heavily degenerate instances the
	// tableau can degrade silently. Returning a wrong "optimum" is worse
	// than returning an error.
	bScale := 1.0
	for _, v := range p.B {
		if math.Abs(v) > bScale {
			bScale = math.Abs(v)
		}
	}
	for j := 0; j < n; j++ {
		if x[j] < -1e-6*bScale {
			return nil, fmt.Errorf("%w: negative variable x[%d]=%v", ErrNumerical, j, x[j])
		}
		if x[j] < 0 {
			x[j] = 0
		}
	}
	for i := 0; i < len(p.B); i++ {
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += p.A[i][j] * x[j]
		}
		if math.Abs(dot-p.B[i]) > 1e-6*bScale {
			return nil, fmt.Errorf("%w: row %d residual %v", ErrNumerical, i, dot-p.B[i])
		}
	}

	val := 0.0
	for j := 0; j < n; j++ {
		val += p.C[j] * x[j]
	}
	return &Solution{X: x, Objective: val, Iterations: iters}, nil
}

// simplexLoop pivots until optimal over the first `cols` columns of the
// flat row-major tableau t (row stride width, len(basis) constraint rows
// followed by the objective row). The entering rule is Dantzig's (most
// negative reduced cost), which reaches the optimum of these occupancy
// LPs in a handful of pivots; while the objective stalls on a degenerate
// vertex it falls back to Bland's rule (smallest index), whose
// anti-cycling guarantee breaks the stall. Keeping the pivot count low
// matters beyond speed: every dense tableau pivot accumulates rounding
// error, and hundreds of degenerate Bland pivots can corrupt the tableau
// outright.
func simplexLoop(t []float64, width int, basis []int, cols int) (int, error) {
	m := len(basis)
	obj := t[m*width : (m+1)*width]
	iters := 0
	maxIters := 50000 + 200*(m+cols)
	stall := 0
	lastObj := obj[width-1]
	for {
		// Entering column.
		col := -1
		if stall > 25 {
			// Bland: smallest index with negative reduced cost.
			for j := 0; j < cols; j++ {
				if obj[j] < -optEps {
					col = j
					break
				}
			}
		} else {
			// Dantzig: most negative reduced cost.
			best := -optEps
			for j := 0; j < cols; j++ {
				if obj[j] < best {
					best = obj[j]
					col = j
				}
			}
		}
		if col < 0 {
			return iters, nil // optimal
		}
		// Leaving row: min ratio, Bland tie-break on basis index.
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if piv := t[i*width+col]; piv > ratioEps {
				ratio := t[i*width+width-1] / piv
				if ratio < bestRatio-1e-12 || (math.Abs(ratio-bestRatio) <= 1e-12 && (row < 0 || basis[i] < basis[row])) {
					bestRatio = ratio
					row = i
				}
			}
		}
		if row < 0 {
			// No leaving row. For a genuinely improving direction this
			// means the LP is unbounded; for a noise-level reduced cost
			// (degenerate vertex, accumulated float error) it only means
			// the column cannot improve — zero it and continue.
			if obj[col] > -1e-5 {
				obj[col] = 0
				continue
			}
			return iters, ErrUnbounded
		}
		pivot(t, width, basis, row, col)
		iters++
		// Track objective progress (the rhs of the objective row carries
		// the negated objective, which rises as we minimize).
		if obj[width-1] > lastObj+1e-12 {
			stall = 0
			lastObj = obj[width-1]
		} else {
			stall++
		}
		if iters > maxIters {
			return iters, fmt.Errorf("lp: simplex exceeded %d iterations", maxIters)
		}
	}
}

// pivot performs a full tableau pivot on (row, col) of the flat tableau.
// Rows are materialized as subslices once per row, which keeps the inner
// update loop free of index arithmetic and lets the compiler elide bounds
// checks over the contiguous spans.
func pivot(t []float64, width int, basis []int, row, col int) {
	pr := t[row*width : (row+1)*width]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	rows := len(t) / width
	for i := 0; i < rows; i++ {
		if i == row {
			continue
		}
		ri := t[i*width : (i+1)*width]
		f := ri[col]
		if f == 0 {
			continue
		}
		for j, v := range pr {
			ri[j] -= f * v
		}
	}
	basis[row] = col
}

// ---------------------------------------------------------------------------
// Builder

// Sense is a constraint relation.
type Sense int

// Constraint relations.
const (
	LE Sense = iota // ≤
	GE              // ≥
	EQ              // =
)

// Builder assembles an LP from ≤/≥/= rows and converts to standard form.
type Builder struct {
	nVars  int
	obj    []float64
	rows   [][]float64
	rhs    []float64
	senses []Sense
}

// NewBuilder returns a builder over nVars structural variables (all ≥ 0).
func NewBuilder(nVars int) (*Builder, error) {
	if nVars <= 0 {
		return nil, fmt.Errorf("lp: builder needs at least one variable, got %d", nVars)
	}
	return &Builder{nVars: nVars, obj: make([]float64, nVars)}, nil
}

// SetObjective sets the minimization coefficients.
func (bl *Builder) SetObjective(c []float64) error {
	if len(c) != bl.nVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(c), bl.nVars)
	}
	copy(bl.obj, c)
	return nil
}

// Add appends a constraint row·x (sense) rhs.
func (bl *Builder) Add(row []float64, sense Sense, rhs float64) error {
	if len(row) != bl.nVars {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(row), bl.nVars)
	}
	bl.rows = append(bl.rows, append([]float64(nil), row...))
	bl.rhs = append(bl.rhs, rhs)
	bl.senses = append(bl.senses, sense)
	return nil
}

// Build converts to standard form (slack for ≤, surplus for ≥).
func (bl *Builder) Build() Problem {
	extra := 0
	for _, s := range bl.senses {
		if s != EQ {
			extra++
		}
	}
	n := bl.nVars + extra
	p := Problem{
		C: make([]float64, n),
		A: make([][]float64, len(bl.rows)),
		B: append([]float64(nil), bl.rhs...),
	}
	copy(p.C, bl.obj)
	slack := bl.nVars
	for i, row := range bl.rows {
		r := make([]float64, n)
		copy(r, row)
		switch bl.senses[i] {
		case LE:
			r[slack] = 1
			slack++
		case GE:
			r[slack] = -1
			slack++
		}
		p.A[i] = r
	}
	return p
}

// SolveBuilder builds and solves, returning only the structural variables.
func (bl *Builder) Solve() (*Solution, error) {
	sol, err := Solve(bl.Build())
	if err != nil {
		return nil, err
	}
	sol.X = sol.X[:bl.nVars]
	return sol, nil
}
