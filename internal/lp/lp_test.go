package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleEqualityLP(t *testing.T) {
	// min x1 + 2x2  s.t.  x1 + x2 = 4, x1 - x2 = 0  =>  x = (2,2), obj 6.
	sol, err := Solve(Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, 1}, {1, -1}},
		B: []float64{4, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 6, 1e-9) {
		t.Errorf("objective %v, want 6", sol.Objective)
	}
	if !approx(sol.X[0], 2, 1e-9) || !approx(sol.X[1], 2, 1e-9) {
		t.Errorf("x = %v, want (2,2)", sol.X)
	}
}

func TestClassicTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's example).
	// Optimum: x=2, y=6, obj=36. We minimize the negation.
	b, err := NewBuilder(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetObjective([]float64{-3, -5}); err != nil {
		t.Fatal(err)
	}
	b.Add([]float64{1, 0}, LE, 4)
	b.Add([]float64{0, 2}, LE, 12)
	b.Add([]float64{3, 2}, LE, 18)
	sol, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -36, 1e-9) {
		t.Errorf("objective %v, want -36", sol.Objective)
	}
	if !approx(sol.X[0], 2, 1e-9) || !approx(sol.X[1], 6, 1e-9) {
		t.Errorf("x = %v, want (2,6)", sol.X)
	}
}

func TestInfeasibleDetected(t *testing.T) {
	// x1 = 1 and x1 = 2 simultaneously.
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {1}},
		B: []float64{1, 2},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleViaBuilder(t *testing.T) {
	b, _ := NewBuilder(1)
	b.SetObjective([]float64{1})
	b.Add([]float64{1}, LE, 1)
	b.Add([]float64{1}, GE, 2)
	if _, err := b.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestInfeasibleOccupancyShape pins ErrInfeasible for the exact problem
// shape stochpm.SolveLP builds — a probability-mass equality row over
// occupancy variables plus a LE side constraint — when the side bound
// contradicts the mass: Σx = 1 but Σx ≤ 0.5. The analytic bound pipeline
// depends on this surfacing as ErrInfeasible (wrapped, matchable with
// errors.Is) rather than as a numeric failure or a bogus solution.
func TestInfeasibleOccupancyShape(t *testing.T) {
	b, err := NewBuilder(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetObjective([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b.Add([]float64{1, 1, 1}, EQ, 1)   // occupancy mass
	b.Add([]float64{1, 1, 1}, LE, 0.5) // unattainable side bound
	if _, err := b.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnboundedDetected(t *testing.T) {
	// min -x s.t. x - y = 0: x can grow without bound.
	_, err := Solve(Problem{
		C: []float64{-1, 0},
		A: [][]float64{{1, -1}},
		B: []float64{0},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalized(t *testing.T) {
	// -x1 - x2 = -4 is the same as x1 + x2 = 4.
	sol, err := Solve(Problem{
		C: []float64{1, 2},
		A: [][]float64{{-1, -1}},
		B: []float64{-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 4, 1e-9) { // all weight on x1
		t.Errorf("objective %v, want 4", sol.Objective)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate rows: still solvable.
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {1, 1}, {2, 2}},
		B: []float64{3, 3, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 3, 1e-9) {
		t.Errorf("objective %v, want 3", sol.Objective)
	}
}

func TestDegenerateLPTerminates(t *testing.T) {
	// Klee–Minty-flavoured degenerate system; Bland's rule must not cycle.
	b, _ := NewBuilder(3)
	b.SetObjective([]float64{-100, -10, -1})
	b.Add([]float64{1, 0, 0}, LE, 1)
	b.Add([]float64{20, 1, 0}, LE, 100)
	b.Add([]float64{200, 20, 1}, LE, 10000)
	sol, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, -10000, 1e-6) {
		t.Errorf("objective %v, want -10000", sol.Objective)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Problem{
		{C: nil, A: nil, B: nil},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{math.NaN()}, A: [][]float64{{1}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{math.Inf(1)}}, B: []float64{1}},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.NaN()}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(0); err == nil {
		t.Error("zero variables accepted")
	}
	b, _ := NewBuilder(2)
	if err := b.SetObjective([]float64{1}); err == nil {
		t.Error("short objective accepted")
	}
	if err := b.Add([]float64{1}, LE, 0); err == nil {
		t.Error("short row accepted")
	}
}

func TestGESurplusVariables(t *testing.T) {
	// min x s.t. x >= 5  =>  x = 5.
	b, _ := NewBuilder(1)
	b.SetObjective([]float64{1})
	b.Add([]float64{1}, GE, 5)
	sol, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 5, 1e-9) {
		t.Errorf("x = %v, want 5", sol.X[0])
	}
}

func TestMixedSenses(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x >= 2, y <= 7  =>  x=3,y=7? Check:
	// cost 2x+3y with x+y=10 → minimize means maximize x: x ≤ 10, y ≥ 0,
	// y ≤ 7 → x ≥ 3. Max x = 10 − y, y min = 0? y ≥ 10 − x... constraints:
	// x≥2, y≤7, x+y=10 → x = 10−y ≥ 3. Best: y as small as allowed → y=0
	// violates x+y=10? No: y=0 → x=10, satisfies x≥2, y≤7. Obj = 20.
	b, _ := NewBuilder(2)
	b.SetObjective([]float64{2, 3})
	b.Add([]float64{1, 1}, EQ, 10)
	b.Add([]float64{1, 0}, GE, 2)
	b.Add([]float64{0, 1}, LE, 7)
	sol, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 20, 1e-9) {
		t.Errorf("objective %v, want 20", sol.Objective)
	}
}

// bruteForceLP solves min c·x over {x >= 0 : Ax <= b} for 2-variable
// problems by dense grid + vertex enumeration, as an oracle.
func bruteForceLP2(c []float64, rows [][]float64, rhs []float64) (float64, bool) {
	best := math.Inf(1)
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for i, r := range rows {
			if r[0]*x+r[1]*y > rhs[i]+1e-9 {
				return false
			}
		}
		return true
	}
	// Candidate vertices: intersections of all constraint pairs (incl.
	// axes).
	all := append([][]float64{{1, 0}, {0, 1}}, rows...)
	allRhs := append([]float64{0, 0}, rhs...)
	found := false
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a1, b1, c1 := all[i][0], all[i][1], allRhs[i]
			a2, b2, c2 := all[j][0], all[j][1], allRhs[j]
			det := a1*b2 - a2*b1
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (c1*b2 - c2*b1) / det
			y := (a1*c2 - a2*c1) / det
			if feasible(x, y) {
				found = true
				if v := c[0]*x + c[1]*y; v < best {
					best = v
				}
			}
		}
	}
	if feasible(0, 0) {
		found = true
		if v := 0.0; v < best {
			best = v
		}
	}
	return best, found
}

// Property: on random 2-variable ≤-form LPs with bounded feasible region,
// simplex matches brute-force vertex enumeration.
func TestSimplexMatchesBruteForceProperty(t *testing.T) {
	s := rng.New(42)
	f := func() bool {
		c := []float64{s.Float64()*4 - 2, s.Float64()*4 - 2}
		nRows := 2 + s.Intn(3)
		rows := make([][]float64, nRows)
		rhs := make([]float64, nRows)
		for i := range rows {
			rows[i] = []float64{s.Float64() * 2, s.Float64() * 2}
			rhs[i] = 1 + s.Float64()*5
		}
		// Bound the region so minimizing negative costs stays bounded.
		rows = append(rows, []float64{1, 0}, []float64{0, 1})
		rhs = append(rhs, 10, 10)

		want, ok := bruteForceLP2(c, rows, rhs)
		if !ok {
			return true // skip degenerate instance
		}
		b, err := NewBuilder(2)
		if err != nil {
			return false
		}
		b.SetObjective(c)
		for i := range rows {
			b.Add(rows[i], LE, rhs[i])
		}
		sol, err := b.Solve()
		if err != nil {
			return false
		}
		return approx(sol.Objective, want, 1e-6)
	}
	for i := 0; i < 200; i++ {
		if !f() {
			t.Fatalf("simplex disagreed with brute force on random instance %d", i)
		}
	}
}

// Property: solution of a feasible standard-form problem satisfies its own
// constraints.
func TestSolutionFeasibilityProperty(t *testing.T) {
	s := rng.New(7)
	check := func() bool {
		n := 3 + s.Intn(4)
		m := 1 + s.Intn(3)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = s.Float64()
		}
		// Construct b from a known feasible point to guarantee feasibility.
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = s.Float64() * 3
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			dot := 0.0
			for j := 0; j < n; j++ {
				p.A[i][j] = s.Float64()*2 - 0.5
				dot += p.A[i][j] * x0[j]
			}
			p.B[i] = dot
		}
		sol, err := Solve(p)
		if err != nil {
			return errors.Is(err, ErrUnbounded) // possible with random c... no, c >= 0; treat as failure
		}
		for i := 0; i < m; i++ {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += p.A[i][j] * sol.X[j]
			}
			if !approx(dot, p.B[i], 1e-6) {
				return false
			}
		}
		for _, v := range sol.X {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The flat-tableau solver fills its tableau straight from the problem
// data (no defensive copy of A), including an inline sign flip for
// negative rhs rows — the caller's Problem must come back untouched.
func TestSolveDoesNotMutateProblem(t *testing.T) {
	p := Problem{
		C: []float64{1, 2, 3},
		A: [][]float64{{1, 1, 1}, {-1, 1, 0}},
		B: []float64{6, -1}, // negative rhs forces the sign-flip path
	}
	wantA := [][]float64{{1, 1, 1}, {-1, 1, 0}}
	wantB := []float64{6, -1}
	if _, err := Solve(p); err != nil {
		t.Fatal(err)
	}
	for i := range wantA {
		if p.B[i] != wantB[i] {
			t.Fatalf("Solve mutated B[%d]: %v", i, p.B[i])
		}
		for j := range wantA[i] {
			if p.A[i][j] != wantA[i][j] {
				t.Fatalf("Solve mutated A[%d][%d]: %v", i, j, p.A[i][j])
			}
		}
	}
}

func BenchmarkSolveSmall(b *testing.B) {
	p := Problem{
		C: []float64{1, 2, 3},
		A: [][]float64{{1, 1, 1}, {1, -1, 0}},
		B: []float64{6, 1},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
