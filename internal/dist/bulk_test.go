package dist

// SampleInto bit-equivalence audit: for every law, a block fill must
// consume the stream and produce values exactly as the same number of
// single Sample calls — including rejection-looped laws (Pareto's
// Float64Open) and multi-draw laws (Erlang phases, HyperExp's phase
// pick). The batched arrival source's output bit-identity reduces to
// this property.

import (
	"testing"

	"repro/internal/rng"
)

func bulkLaws(t *testing.T) []BulkSampler {
	t.Helper()
	var laws []BulkSampler
	for _, name := range Names() {
		d, err := ByName(name, 2.5)
		if err != nil {
			t.Fatal(err)
		}
		bs, ok := d.(BulkSampler)
		if !ok {
			t.Fatalf("%s does not implement BulkSampler", name)
		}
		laws = append(laws, bs)
	}
	// A general-path Pareto (Alpha != 1.5) on top of ByName's fast path.
	p, err := NewPareto(0.5, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	return append(laws, p)
}

func TestSampleIntoMatchesSample(t *testing.T) {
	for _, law := range bulkLaws(t) {
		law := law
		t.Run(law.String(), func(t *testing.T) {
			for _, n := range []int{0, 1, 2, 5, 64, 257} {
				a := rng.New(99)
				b := rng.New(99)
				want := make([]float64, n)
				for i := range want {
					want[i] = law.Sample(a)
				}
				got := make([]float64, n)
				law.SampleInto(b, got)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d: SampleInto[%d] = %v, Sample %v", n, i, got[i], want[i])
					}
				}
				if a.State() != b.State() {
					t.Fatalf("n=%d: stream states diverged", n)
				}
			}
		})
	}
}

// TestSampleIntoAllocationFree: block fills into a caller buffer perform
// no heap allocation for any law (the batched arrival hot path).
func TestSampleIntoAllocationFree(t *testing.T) {
	for _, law := range bulkLaws(t) {
		law := law
		t.Run(law.String(), func(t *testing.T) {
			s := rng.New(7)
			buf := make([]float64, 64)
			avg := testing.AllocsPerRun(20, func() { law.SampleInto(s, buf) })
			if avg > 0 {
				t.Errorf("SampleInto allocates %.2f per block, want 0", avg)
			}
		})
	}
}

func BenchmarkSampleIntoPareto(b *testing.B) {
	d, err := ByName("pareto", 2.5)
	if err != nil {
		b.Fatal(err)
	}
	law := d.(BulkSampler)
	s := rng.New(1)
	buf := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		law.SampleInto(s, buf)
	}
}
