// Package dist provides the parametric probability distributions used by
// the workload generators and the trace synthesizer: continuous
// interarrival laws (exponential, Pareto, Weibull, Erlang, two-phase
// hyperexponential, uniform) and the discrete Poisson counting law.
//
// All sampling draws exclusively from an rng.Stream so every consumer
// inherits the repository-wide determinism guarantee: a distribution value
// plus a stream state fully determines the sample sequence.
package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Continuous is a continuous distribution over the positive reals, used
// for interarrival times measured in slots.
type Continuous interface {
	// Sample draws one variate.
	Sample(s *rng.Stream) float64
	// Mean returns the expectation (+Inf when it does not exist, e.g.
	// Pareto with alpha <= 1).
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// BulkSampler is the block-draw extension of Continuous: SampleInto
// fills dst with exactly the sequence len(dst) successive Sample calls
// would produce — same stream consumption, same bits — in one concrete
// (devirtualized) call. Batched consumers such as ctsim's arrival source
// draw a block per interface dispatch instead of one variate per event;
// rejection steps inside a law (Float64Open) stay per-variate and
// in-order, which is what makes the bit-equivalence unconditional.
// Every law in this package implements it; TestSampleIntoMatchesSample
// audits the equivalence for each.
type BulkSampler interface {
	Continuous
	// SampleInto fills dst with len(dst) variates.
	SampleInto(s *rng.Stream, dst []float64)
}

// ---------------------------------------------------------------------------
// Exponential

// Exponential is the memoryless law with rate Rate (mean 1/Rate).
type Exponential struct {
	Rate float64
}

// NewExponential validates rate > 0.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return Exponential{}, fmt.Errorf("dist: exponential rate %v must be positive and finite", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Sample draws via inverse CDF.
func (e Exponential) Sample(s *rng.Stream) float64 { return s.ExpFloat64() / e.Rate }

// SampleInto fills dst, bit-identical to len(dst) Sample calls.
func (e Exponential) SampleInto(s *rng.Stream, dst []float64) {
	for i := range dst {
		dst[i] = s.ExpFloat64() / e.Rate
	}
}

// Mean returns 1/Rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

func (e Exponential) String() string { return fmt.Sprintf("Exp(rate=%g)", e.Rate) }

// ---------------------------------------------------------------------------
// Pareto

// Pareto is the heavy-tailed law with scale Xm (minimum value) and shape
// Alpha. The mean is infinite for Alpha <= 1.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// NewPareto validates xm > 0 and alpha > 0.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if !(xm > 0) {
		return Pareto{}, fmt.Errorf("dist: pareto scale %v must be positive", xm)
	}
	if !(alpha > 0) {
		return Pareto{}, fmt.Errorf("dist: pareto shape %v must be positive", alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Sample draws via inverse CDF.
func (p Pareto) Sample(s *rng.Stream) float64 {
	u := s.Float64Open()
	if p.Alpha == 1.5 {
		// Exactly the ByName recipe's shape: u^(1/1.5) = cbrt(u²), ~5x
		// cheaper than the general pow — Pareto sampling is the hottest
		// arrival draw in heavy-tailed fleet mixes. May differ from Pow
		// in the last ulp, but the branch keys on the parameter VALUE,
		// so the sampler stays a pure function of (Xm, Alpha, stream) —
		// every construction route with the same parameters draws the
		// same sequence. Other shapes take the general path.
		return p.Xm / math.Cbrt(u*u)
	}
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// SampleInto fills dst, bit-identical to len(dst) Sample calls. The
// Alpha == 1.5 value test is hoisted out of the loop; both branches draw
// exactly Sample's sequence.
func (p Pareto) SampleInto(s *rng.Stream, dst []float64) {
	if p.Alpha == 1.5 {
		for i := range dst {
			u := s.Float64Open()
			dst[i] = p.Xm / math.Cbrt(u*u)
		}
		return
	}
	inv := 1 / p.Alpha
	for i := range dst {
		dst[i] = p.Xm / math.Pow(s.Float64Open(), inv)
	}
}

// Mean returns alpha·xm/(alpha-1), or +Inf when alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g, α=%g)", p.Xm, p.Alpha) }

// ---------------------------------------------------------------------------
// Weibull

// Weibull has scale Lambda and shape K; K < 1 gives a heavier-than-
// exponential tail.
type Weibull struct {
	Lambda float64
	K      float64
}

// NewWeibull validates lambda > 0 and k > 0.
func NewWeibull(lambda, k float64) (Weibull, error) {
	if !(lambda > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull scale %v must be positive", lambda)
	}
	if !(k > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull shape %v must be positive", k)
	}
	return Weibull{Lambda: lambda, K: k}, nil
}

// Sample draws via inverse CDF.
func (w Weibull) Sample(s *rng.Stream) float64 {
	return w.Lambda * math.Pow(s.ExpFloat64(), 1/w.K)
}

// SampleInto fills dst, bit-identical to len(dst) Sample calls.
func (w Weibull) SampleInto(s *rng.Stream, dst []float64) {
	inv := 1 / w.K
	for i := range dst {
		dst[i] = w.Lambda * math.Pow(s.ExpFloat64(), inv)
	}
}

// Mean returns lambda·Γ(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

func (w Weibull) String() string { return fmt.Sprintf("Weibull(λ=%g, k=%g)", w.Lambda, w.K) }

// ---------------------------------------------------------------------------
// Erlang

// Erlang is the sum of K independent Exponential(Rate) phases.
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang validates k >= 1 and rate > 0.
func NewErlang(k int, rate float64) (Erlang, error) {
	if k < 1 {
		return Erlang{}, fmt.Errorf("dist: erlang phase count %d must be >= 1", k)
	}
	if !(rate > 0) {
		return Erlang{}, fmt.Errorf("dist: erlang rate %v must be positive", rate)
	}
	return Erlang{K: k, Rate: rate}, nil
}

// Sample sums K exponential phases.
func (e Erlang) Sample(s *rng.Stream) float64 {
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += s.ExpFloat64()
	}
	return sum / e.Rate
}

// SampleInto fills dst, bit-identical to len(dst) Sample calls.
func (e Erlang) SampleInto(s *rng.Stream, dst []float64) {
	for i := range dst {
		sum := 0.0
		for j := 0; j < e.K; j++ {
			sum += s.ExpFloat64()
		}
		dst[i] = sum / e.Rate
	}
}

// Mean returns K/Rate.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

func (e Erlang) String() string { return fmt.Sprintf("Erlang(k=%d, rate=%g)", e.K, e.Rate) }

// ---------------------------------------------------------------------------
// HyperExp

// HyperExp is the two-phase hyperexponential: with probability P the draw
// is Exponential(Rate1), otherwise Exponential(Rate2). CV > 1 whenever the
// rates differ — the standard model for high-variance interarrivals.
type HyperExp struct {
	P     float64
	Rate1 float64
	Rate2 float64
}

// NewHyperExp validates p in [0,1] and both rates positive.
func NewHyperExp(p, rate1, rate2 float64) (HyperExp, error) {
	if !(p >= 0 && p <= 1) {
		return HyperExp{}, fmt.Errorf("dist: hyperexp mix %v out of [0,1]", p)
	}
	if !(rate1 > 0) || !(rate2 > 0) {
		return HyperExp{}, fmt.Errorf("dist: hyperexp rates (%v, %v) must be positive", rate1, rate2)
	}
	return HyperExp{P: p, Rate1: rate1, Rate2: rate2}, nil
}

// Sample picks a phase then draws exponentially.
func (h HyperExp) Sample(s *rng.Stream) float64 {
	rate := h.Rate2
	if s.Float64() < h.P {
		rate = h.Rate1
	}
	return s.ExpFloat64() / rate
}

// SampleInto fills dst, bit-identical to len(dst) Sample calls (the
// phase pick and the exponential draw stay sequential per variate).
func (h HyperExp) SampleInto(s *rng.Stream, dst []float64) {
	for i := range dst {
		rate := h.Rate2
		if s.Float64() < h.P {
			rate = h.Rate1
		}
		dst[i] = s.ExpFloat64() / rate
	}
}

// Mean returns p/rate1 + (1-p)/rate2.
func (h HyperExp) Mean() float64 { return h.P/h.Rate1 + (1-h.P)/h.Rate2 }

func (h HyperExp) String() string {
	return fmt.Sprintf("HyperExp(p=%g, rates=%g/%g)", h.P, h.Rate1, h.Rate2)
}

// ---------------------------------------------------------------------------
// Uniform

// Uniform is the continuous uniform law on [A, B).
type Uniform struct {
	A float64
	B float64
}

// NewUniform validates a < b and a >= 0 (interarrivals are nonnegative).
func NewUniform(a, b float64) (Uniform, error) {
	if !(a < b) {
		return Uniform{}, fmt.Errorf("dist: uniform requires a < b, got [%v,%v)", a, b)
	}
	if a < 0 {
		return Uniform{}, fmt.Errorf("dist: uniform lower bound %v must be >= 0", a)
	}
	return Uniform{A: a, B: b}, nil
}

// Sample draws uniformly on [A, B).
func (u Uniform) Sample(s *rng.Stream) float64 { return u.A + (u.B-u.A)*s.Float64() }

// SampleInto fills dst, bit-identical to len(dst) Sample calls. The
// uniform law has no rejection step, so it rides the stream's bulk fill
// and applies the affine map in place.
func (u Uniform) SampleInto(s *rng.Stream, dst []float64) {
	s.FillFloat64(dst)
	w := u.B - u.A
	for i := range dst {
		dst[i] = u.A + w*dst[i]
	}
}

// Mean returns (A+B)/2.
func (u Uniform) Mean() float64 { return (u.A + u.B) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g)", u.A, u.B) }

// ---------------------------------------------------------------------------
// Named constructors

// ByName builds one of the stock interarrival laws used by the trace
// generator and the continuous-time experiments, calibrated so the mean
// interarrival time is exactly 1/rate — i.e. every law produces `rate`
// arrivals per second in the long run. This is the single source of truth
// for the shape parameters; TestByNameMeansMatchRate audits every branch.
func ByName(name string, rate float64) (Continuous, error) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return nil, fmt.Errorf("dist: rate %v must be positive and finite", rate)
	}
	mean := 1 / rate
	switch name {
	case "exp":
		return NewExponential(rate)
	case "pareto":
		// Heavy tail with finite mean: alpha = 1.5, xm solved from the
		// mean formula alpha·xm/(alpha-1) = mean.
		const alpha = 1.5
		return NewPareto(mean*(alpha-1)/alpha, alpha)
	case "weibull":
		// Heavier-than-exponential tail (k < 1), rescaled to the mean.
		const k = 0.7
		w, err := NewWeibull(1, k)
		if err != nil {
			return nil, err
		}
		w.Lambda = mean / w.Mean()
		return w, nil
	case "erlang":
		// Three phases: smoother than exponential (CV = 1/sqrt(3)).
		return NewErlang(3, 3*rate)
	case "hyperexp":
		// Two-phase hyperexponential, CV ≈ 1.24: with probability 0.3 a
		// fast phase of mean mean/5, otherwise a slow phase calibrated so
		// the mixture mean is exactly `mean`:
		//   0.3·mean/5 + 0.7·(0.94·mean/0.7) = (0.06 + 0.94)·mean.
		// (An earlier version used rates 5/mean and 0.5/mean, whose
		// mixture mean is 1.46·mean — a ~32% arrival-rate error.)
		return NewHyperExp(0.3, 5*rate, 0.7/(0.94*mean))
	case "uniform":
		return NewUniform(0, 2*mean)
	default:
		return nil, fmt.Errorf("dist: unknown distribution %q (want exp, pareto, weibull, erlang, hyperexp, or uniform)", name)
	}
}

// Names lists the distributions ByName accepts, in display order.
func Names() []string {
	return []string{"exp", "pareto", "weibull", "erlang", "hyperexp", "uniform"}
}

// ---------------------------------------------------------------------------
// Poisson

// Poisson is the discrete counting law with mean Lambda per slot.
type Poisson struct {
	Lambda float64
}

// NewPoisson validates lambda >= 0 and finite.
func NewPoisson(lambda float64) (Poisson, error) {
	if lambda < 0 || math.IsNaN(lambda) || math.IsInf(lambda, 1) {
		return Poisson{}, fmt.Errorf("dist: poisson lambda %v must be finite and >= 0", lambda)
	}
	return Poisson{Lambda: lambda}, nil
}

// SampleInt draws one count. Small means use Knuth's product method; large
// means (> 30) sum an exact Poisson split so the loop stays short without
// losing exactness: Poisson(λ) = Poisson(λ/2) + Poisson(λ/2).
func (p Poisson) SampleInt(s *rng.Stream) int {
	return samplePoisson(p.Lambda, s)
}

func samplePoisson(lambda float64, s *rng.Stream) int {
	if lambda == 0 {
		return 0
	}
	if lambda > 30 {
		half := lambda / 2
		return samplePoisson(half, s) + samplePoisson(half, s)
	}
	// Knuth: count multiplications until the product drops below e^-λ.
	limit := math.Exp(-lambda)
	n := 0
	prod := s.Float64Open()
	for prod > limit {
		n++
		prod *= s.Float64Open()
	}
	return n
}

// Mean returns Lambda.
func (p Poisson) Mean() float64 { return p.Lambda }

func (p Poisson) String() string { return fmt.Sprintf("Poisson(λ=%g)", p.Lambda) }
