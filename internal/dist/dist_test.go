package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// sampleMean draws n variates and returns their mean.
func sampleMean(d Continuous, n int, seed uint64) float64 {
	s := rng.New(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(s)
	}
	return sum / float64(n)
}

func TestValidation(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("exp rate 0 accepted")
	}
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("pareto xm 0 accepted")
	}
	if _, err := NewPareto(1, 0); err == nil {
		t.Error("pareto alpha 0 accepted")
	}
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("weibull scale 0 accepted")
	}
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("erlang k 0 accepted")
	}
	if _, err := NewHyperExp(1.5, 1, 1); err == nil {
		t.Error("hyperexp p > 1 accepted")
	}
	if _, err := NewUniform(2, 2); err == nil {
		t.Error("empty uniform accepted")
	}
	if _, err := NewPoisson(-1); err == nil {
		t.Error("negative poisson accepted")
	}
	if _, err := NewPoisson(math.Inf(1)); err == nil {
		t.Error("infinite poisson accepted")
	}
}

func TestMeans(t *testing.T) {
	cases := []struct {
		d    Continuous
		want float64
	}{
		{mustExp(t, 2), 0.5},
		{mustPareto(t, 1, 3), 1.5},
		{mustErlang(t, 3, 6), 0.5},
		{mustUniform(t, 1, 3), 2},
	}
	for _, c := range cases {
		if got := c.d.Mean(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Mean() = %v, want %v", c.d, got, c.want)
		}
		// Empirical mean within 3% on 200k samples.
		if got := sampleMean(c.d, 200000, 1); math.Abs(got-c.want)/c.want > 0.03 {
			t.Errorf("%s: empirical mean %v, want ~%v", c.d, got, c.want)
		}
	}
	w := mustWeibull(t, 2, 1) // k=1 degenerates to Exp(1/2): mean 2
	if math.Abs(w.Mean()-2) > 1e-12 {
		t.Errorf("weibull mean %v, want 2", w.Mean())
	}
	h, _ := NewHyperExp(0.3, 5, 0.5)
	want := 0.3/5 + 0.7/0.5
	if math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("hyperexp mean %v, want %v", h.Mean(), want)
	}
	if got := sampleMean(h, 300000, 2); math.Abs(got-want)/want > 0.03 {
		t.Errorf("hyperexp empirical mean %v, want ~%v", got, want)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := mustPareto(t, 1, 0.9)
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("Pareto(α=0.9) mean %v, want +Inf", p.Mean())
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, lambda := range []float64{0, 0.1, 3, 50} {
		p, err := NewPoisson(lambda)
		if err != nil {
			t.Fatal(err)
		}
		s := rng.New(7)
		n := 200000
		sum, sq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(p.SampleInt(s))
			sum += v
			sq += v * v
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if lambda == 0 {
			if mean != 0 {
				t.Errorf("Poisson(0) emitted arrivals")
			}
			continue
		}
		if math.Abs(mean-lambda)/lambda > 0.03 {
			t.Errorf("Poisson(%g) empirical mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.06 {
			t.Errorf("Poisson(%g) empirical variance %v, want ~λ", lambda, variance)
		}
	}
}

func TestDeterministicSampling(t *testing.T) {
	d := mustExp(t, 1)
	a, b := rng.New(3), rng.New(3)
	for i := 0; i < 100; i++ {
		if d.Sample(a) != d.Sample(b) {
			t.Fatal("equal streams diverged")
		}
	}
}

func mustExp(t *testing.T, rate float64) Exponential {
	t.Helper()
	d, err := NewExponential(rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustPareto(t *testing.T, xm, alpha float64) Pareto {
	t.Helper()
	d, err := NewPareto(xm, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustWeibull(t *testing.T, lambda, k float64) Weibull {
	t.Helper()
	d, err := NewWeibull(lambda, k)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustErlang(t *testing.T, k int, rate float64) Erlang {
	t.Helper()
	d, err := NewErlang(k, rate)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustUniform(t *testing.T, a, b float64) Uniform {
	t.Helper()
	d, err := NewUniform(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Every named law must have mean interarrival exactly 1/rate: the trace
// generator advertises `-rate R` as "R arrivals per second", so a
// miscalibrated mixture (the old hyperexp had mean 1.46/R) silently skews
// every downstream experiment.
func TestByNameMeansMatchRate(t *testing.T) {
	for _, name := range Names() {
		for _, rate := range []float64{0.25, 1, 2, 8} {
			d, err := ByName(name, rate)
			if err != nil {
				t.Errorf("%s rate %g: %v", name, rate, err)
				continue
			}
			want := 1 / rate
			if got := d.Mean(); math.Abs(got-want) > 1e-12*want {
				t.Errorf("%s rate %g: mean %v, want %v", name, rate, got, want)
			}
		}
	}
}

// The hyperexponential must keep its defining property, CV > 1, after the
// mean recalibration.
func TestByNameHyperExpHighVariance(t *testing.T) {
	d, err := ByName("hyperexp", 2)
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(5)
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := d.Sample(s)
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	cv := math.Sqrt(sumsq/float64(n)-mean*mean) / mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("empirical mean %v, want ~0.5", mean)
	}
	if cv < 1.1 {
		t.Errorf("CV %v, want > 1.1 (high-variance mixture)", cv)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := ByName("exp", 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := ByName("exp", -2); err == nil {
		t.Error("negative rate accepted")
	}
}
