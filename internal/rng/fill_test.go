package rng

// Tests for the bulk-fill API: FillUint64 and FillFloat64 must consume
// the stream and produce values exactly as the equivalent sequence of
// single draws would — the batched arrival path's bit-identity rests on
// this equivalence.

import "testing"

func TestFillUint64MatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a := New(12345)
		b := New(12345)
		want := make([]uint64, n)
		for i := range want {
			want[i] = a.Uint64()
		}
		got := make([]uint64, n)
		b.FillUint64(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: FillUint64[%d] = %d, sequential %d", n, i, got[i], want[i])
			}
		}
		if a.State() != b.State() {
			t.Fatalf("n=%d: stream states diverged after fill", n)
		}
	}
}

func TestFillFloat64MatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 513} {
		a := New(6789)
		b := New(6789)
		want := make([]float64, n)
		for i := range want {
			want[i] = a.Float64()
		}
		got := make([]float64, n)
		b.FillFloat64(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: FillFloat64[%d] = %v, sequential %v", n, i, got[i], want[i])
			}
		}
		if a.State() != b.State() {
			t.Fatalf("n=%d: stream states diverged after fill", n)
		}
	}
}

// TestFillResumesMidSequence: interleaving fills with single draws stays
// on the one global sequence.
func TestFillResumesMidSequence(t *testing.T) {
	a := New(42)
	b := New(42)
	var buf [16]float64
	var seq []float64
	b.FillFloat64(buf[:7])
	seq = append(seq, buf[:7]...)
	seq = append(seq, b.Float64())
	b.FillFloat64(buf[:16])
	seq = append(seq, buf[:16]...)
	for i, v := range seq {
		if w := a.Float64(); v != w {
			t.Fatalf("draw %d: interleaved %v, sequential %v", i, v, w)
		}
	}
}

func BenchmarkFillUint64(b *testing.B) {
	s := New(1)
	buf := make([]uint64, 256)
	b.SetBytes(int64(len(buf) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FillUint64(buf)
	}
}

func BenchmarkFillFloat64(b *testing.B) {
	s := New(1)
	buf := make([]float64, 256)
	b.SetBytes(int64(len(buf) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FillFloat64(buf)
	}
}
